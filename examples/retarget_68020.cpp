/**
 * @file
 * Retargetability (the paper's Figure 6): the recurrence optimization
 * is machine-independent — "the algorithm is largely machine-
 * independent. The routine that replaces memory references with
 * register references is machine-specific."
 *
 * This example compiles an IIR filter for the scalar target, prints
 * the Motorola 68020 assembly (auto-increment addressing from strength
 * reduction), and times it under two of the Table-I machine models.
 *
 *   $ ./build/examples/retarget_68020
 */

#include <cstdio>

#include "driver/compiler.h"
#include "m68k/printer.h"
#include "timing/scalar_sim.h"

using namespace wmstream;

int
main()
{
    const char *source = R"(
int n = 512;
double x[512];
double y[512];

int main(void)
{
    int i;
    double acc;
    for (i = 0; i < n; i++)
        x[i] = ((i * 13) & 31) * 0.25 - 3.0;
    y[0] = 0.5 * x[0];
    for (i = 1; i < n; i++)
        y[i] = 0.5 * x[i] + 0.25 * x[i - 1] + 0.2 * y[i - 1];
    acc = 0.0;
    for (i = 0; i < n; i++)
        acc = acc + y[i];
    return acc;
}
)";

    for (bool recurrence : {false, true}) {
        driver::CompileOptions options;
        options.target = rtl::MachineKind::Scalar;
        options.recurrence = recurrence;
        auto result = driver::compileSource(source, options);
        if (!result.ok) {
            std::fprintf(stderr, "compile failed\n");
            return 1;
        }
        if (recurrence) {
            std::printf("---- 68020 assembly (recurrence optimized) "
                        "----\n%s\n",
                        m68k::printFunction(
                            *result.program->findFunction("main"))
                            .c_str());
        }
        for (const auto &model :
                 {timing::sun3_280Model(), timing::m88100Model()}) {
            auto run = timing::runScalar(*result.program, model);
            if (!run.ok) {
                std::fprintf(stderr, "run failed: %s\n",
                             run.error.c_str());
                return 1;
            }
            std::printf("%-28s recurrence=%-3s  result=%lld  "
                        "cycles=%.0f  memrefs=%llu\n",
                        model.name.c_str(), recurrence ? "on" : "off",
                        static_cast<long long>(run.returnValue),
                        run.cycles,
                        static_cast<unsigned long long>(run.memoryRefs));
        }
    }
    std::printf("\nThe y[i-1] recurrence is carried in a register on "
                "both machines; the\nmemory-reference count drops "
                "accordingly (paper Table I's effect).\n");
    return 0;
}
