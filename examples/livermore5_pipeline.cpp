/**
 * @file
 * The paper's running example, end to end: the 5th Livermore loop at
 * each optimization stage (Figures 4, 5, and 7), with partition dumps
 * in the paper's (lno, acc, iv, cee, dee, roffset) notation and the
 * cycle counts of each stage.
 *
 *   $ ./build/examples/livermore5_pipeline
 */

#include <cstdio>

#include "driver/compiler.h"
#include "programs/programs.h"
#include "wm/printer.h"
#include "wmsim/sim.h"

using namespace wmstream;

namespace {

uint64_t
stage(const char *title, const driver::CompileOptions &opts,
      const std::string &src, bool printPartitions)
{
    auto cr = driver::compileSource(src, opts);
    if (!cr.ok) {
        std::fprintf(stderr, "compile failed: %s\n",
                     cr.diagnostics.c_str());
        std::exit(1);
    }
    std::printf("================ %s ================\n\n", title);
    std::printf("%s\n",
                wm::printFunction(*cr.program->findFunction("main"))
                    .c_str());
    if (printPartitions && !cr.recurrenceReports.empty()) {
        std::printf("-- memory-reference partitions (paper notation):\n");
        for (const auto &dump : cr.recurrenceReports[0].partitionDumps)
            std::printf("%s\n", dump.c_str());
    }
    auto res = wmsim::simulate(*cr.program);
    if (!res.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     res.error.c_str());
        std::exit(1);
    }
    std::printf("checksum %lld in %llu cycles\n\n",
                static_cast<long long>(res.returnValue),
                static_cast<unsigned long long>(res.stats.cycles));
    return res.stats.cycles;
}

} // namespace

int
main()
{
    std::string src = programs::livermore5Source(200);
    std::printf("for (i = 2; i < n; i++)\n"
                "    x[i] = z[i] * (y[i] - x[i-1]);   /* n = 200 */\n\n");

    driver::CompileOptions fig4;
    fig4.recurrence = false;
    fig4.streaming = false;
    uint64_t c4 = stage("Figure 4: no loop optimizations", fig4, src,
                        false);

    driver::CompileOptions fig5;
    fig5.streaming = false;
    uint64_t c5 = stage("Figure 5: recurrences optimized", fig5, src,
                        true);

    driver::CompileOptions fig7;
    uint64_t c7 = stage("Figure 7: recurrences + streaming", fig7, src,
                        false);

    std::printf("================ summary ================\n");
    std::printf("unoptimized : %8llu cycles\n",
                static_cast<unsigned long long>(c4));
    std::printf("recurrence  : %8llu cycles (%.1f%% better)\n",
                static_cast<unsigned long long>(c5),
                100.0 * (double)(c4 - c5) / (double)c4);
    std::printf("streamed    : %8llu cycles (%.1f%% better)\n",
                static_cast<unsigned long long>(c7),
                100.0 * (double)(c4 - c7) / (double)c4);
    return 0;
}
