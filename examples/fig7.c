/* The paper's Figure 7 stream kernel: an element-wise vector sum
 * c[i] = a[i] + b[i]. Both loads and the store stream, so the loop
 * body reduces to one FIFO-to-FIFO add. Try:
 *
 *   wmc --remarks examples/fig7.c
 *   wmc --remarks=json examples/fig7.c
 *   wmc --run --stats-json=stats.json examples/fig7.c
 *   wmreport remarks.json stats.json
 */
int n = 100;
double a[100];
double b[100];
double c[100];

int main(void)
{
    int i;
    for (i = 0; i < n; i++) {
        a[i] = 1.0 + i * 0.5;
        b[i] = 2.0 + i * 0.25;
    }
    for (i = 0; i < n; i++)
        c[i] = a[i] + b[i];
    return c[99];
}
