/**
 * @file
 * The vector execution unit: fully-streamed element-wise loops
 * collapse into single VEU instructions ("conceptually the iterations
 * of the loop are performed simultaneously by the vector execution
 * unit"), while recurrences — the paper's motivating case — stay on
 * the streamed scalar pipeline.
 *
 *   $ ./build/examples/vector_kernels
 */

#include <cstdio>

#include "driver/compiler.h"
#include "wm/printer.h"
#include "wmsim/sim.h"

using namespace wmstream;

int
main()
{
    const char *source = R"(
int n = 1000;
double a[1000];
double b[1000];
double c[1000];
double w[1000];

int main(void)
{
    int i;
    double s;
    for (i = 0; i < n; i++) {
        a[i] = 0.25 + (i & 15) * 0.125;
        b[i] = 3.0 - (i & 7) * 0.25;
    }
    /* element-wise: vectorizable */
    for (i = 0; i < n; i++)
        c[i] = a[i] * b[i];
    /* first-order recurrence: NOT vectorizable (paper: "difficult
       and often impossible to vectorize") — handled by recurrence
       registers + streams instead */
    w[0] = c[0];
    for (i = 1; i < n; i++)
        w[i] = c[i] - 0.5 * w[i - 1];
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + w[i];
    return s;
}
)";

    for (bool vectorize : {false, true}) {
        driver::CompileOptions options;
        options.vectorize = vectorize;
        auto compiled = driver::compileSource(source, options);
        if (!compiled.ok) {
            std::fprintf(stderr, "compile failed:\n%s\n",
                         compiled.diagnostics.c_str());
            return 1;
        }
        int vecLoops = 0;
        for (const auto &r : compiled.vectorizeReports)
            vecLoops += r.loopsVectorized;

        wmsim::SimConfig config;
        config.memPorts = 8;
        config.scuBurst = 4;
        config.dataFifoDepth = 32;
        auto run = wmsim::simulate(*compiled.program, config);
        if (!run.ok) {
            std::fprintf(stderr, "simulation failed: %s\n",
                         run.error.c_str());
            return 1;
        }
        std::printf("vectorize=%-3s  loops vectorized=%d  result=%lld  "
                    "cycles=%llu  vector elements=%llu\n",
                    vectorize ? "on" : "off", vecLoops,
                    static_cast<long long>(run.returnValue),
                    static_cast<unsigned long long>(run.stats.cycles),
                    static_cast<unsigned long long>(
                        run.stats.vectorElements));
        if (vectorize) {
            std::printf("\n---- generated code (note the Vop where the "
                        "c[i]=a[i]*b[i] loop was,\n     and the streamed "
                        "scalar loop that carries the w recurrence) "
                        "----\n%s\n",
                        wm::printFunction(
                            *compiled.program->findFunction("main"))
                            .c_str());
        }
    }
    return 0;
}
