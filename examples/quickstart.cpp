/**
 * @file
 * Quickstart: compile a mini-C program for the WM access/execute
 * architecture, look at the generated code, and run it on the cycle
 * simulator.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "driver/compiler.h"
#include "wm/printer.h"
#include "wmsim/sim.h"

using namespace wmstream;

int
main()
{
    // 1. A mini-C program: a small vector scale-and-sum.
    const char *source = R"(
int n = 256;
double v[256];

int main(void)
{
    int i;
    double sum;
    for (i = 0; i < n; i++)
        v[i] = 0.5 * i;
    sum = 0.0;
    for (i = 0; i < n; i++)
        sum = sum + v[i] * 2.0;
    return sum;
}
)";

    // 2. Compile with the full pipeline: classic optimizations,
    //    recurrence detection, streaming, register assignment, and WM
    //    FIFO-form lowering.
    driver::CompileOptions options; // defaults: everything on
    driver::CompileResult result = driver::compileSource(source, options);
    if (!result.ok) {
        std::fprintf(stderr, "compilation failed:\n%s\n",
                     result.diagnostics.c_str());
        return 1;
    }

    std::printf("==== Generated WM assembly ====\n%s\n",
                wm::printFunction(*result.program->findFunction("main"))
                    .c_str());
    std::printf("Streams created: %d\n\n", result.totalStreams());

    // 3. Run on the cycle-level simulator of the decoupled machine.
    wmsim::SimConfig config; // default: 4-cycle memory, 2 ports
    wmsim::SimResult run = wmsim::simulate(*result.program, config);
    if (!run.ok) {
        std::fprintf(stderr, "simulation failed: %s\n", run.error.c_str());
        return 1;
    }

    std::printf("==== Simulation ====\n");
    std::printf("result        : %lld (expect %d)\n",
                static_cast<long long>(run.returnValue), 255 * 256 / 2);
    std::printf("cycles        : %llu\n",
                static_cast<unsigned long long>(run.stats.cycles));
    std::printf("IEU/FEU insts : %llu / %llu\n",
                static_cast<unsigned long long>(run.stats.ieuExecuted),
                static_cast<unsigned long long>(run.stats.feuExecuted));
    std::printf("stream elems  : %llu in, %llu out\n",
                static_cast<unsigned long long>(
                    run.stats.streamElementsIn),
                static_cast<unsigned long long>(
                    run.stats.streamElementsOut));
    return 0;
}
