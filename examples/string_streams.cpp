/**
 * @file
 * Streaming beyond numeric kernels: the paper's "pleasant surprise"
 * that Unix utilities (cal, od, sort, diff, nroff, yacc...) use
 * streams for copying strings, searching data structures, and
 * initializing arrays.
 *
 * This example compiles a small string library (copy, length, find,
 * fill) and shows which loops become streams — including the unbounded
 * ("infinite") streams with stream-stop instructions at the loop exits
 * that data-dependent while loops need.
 *
 *   $ ./build/examples/string_streams
 */

#include <cstdio>

#include "driver/compiler.h"
#include "wm/printer.h"
#include "wmsim/sim.h"

using namespace wmstream;

int
main()
{
    const char *source = R"(
char text[64] = "the quick brown fox jumps over the lazy dog";
char copy[64];
char blank[64];

int length(char *s)
{
    int n;
    n = 0;
    while (s[n])
        n = n + 1;
    return n;
}

void copyString(char *d, char *s)
{
    while (*s) {
        *d = *s;
        d = d + 1;
        s = s + 1;
    }
    *d = 0;
}

int find(char *s, int ch)
{
    int i;
    i = 0;
    while (s[i] && s[i] != ch)
        i = i + 1;
    if (s[i])
        return i;
    return -1;
}

void fill(char *d, int n, int ch)
{
    int i;
    for (i = 0; i < n; i++)
        d[i] = ch;
}

int main(void)
{
    int sum;
    copyString(copy, text);
    fill(blank, 64, ' ');
    sum = length(copy) * 1000;
    sum = sum + find(text, 'q') * 10;
    sum = sum + blank[63];
    return sum;
}
)";

    driver::CompileOptions options;
    auto result = driver::compileSource(source, options);
    if (!result.ok) {
        std::fprintf(stderr, "compile failed:\n%s\n",
                     result.diagnostics.c_str());
        return 1;
    }

    int infinite = 0, finite = 0, stops = 0;
    for (const auto &r : result.streamingReports) {
        infinite += r.infiniteStreams;
        finite += r.streamsIn + r.streamsOut - r.infiniteStreams;
    }
    for (const auto &fn : result.program->functions())
        for (const auto &b : fn->blocks())
            for (const auto &inst : b->insts)
                if (inst.kind == rtl::InstKind::StreamStop)
                    ++stops;

    std::printf("streams: %d bounded, %d unbounded; %d stream-stop "
                "instructions at loop exits\n\n",
                finite, infinite, stops);

    std::printf("---- copyString: the paper's canonical while(*s) "
                "loop ----\n%s\n",
                wm::printFunction(
                    *result.program->findFunction("copyString"))
                    .c_str());

    auto run = wmsim::simulate(*result.program);
    if (!run.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     run.error.c_str());
        return 1;
    }
    std::printf("checksum: %lld (length 43 -> 43000, 'q' at 4 -> +40, "
                "blank ' ' -> +32 = 43072)\n",
                static_cast<long long>(run.returnValue));
    std::printf("cycles: %llu\n",
                static_cast<unsigned long long>(run.stats.cycles));
    return 0;
}
