/* Double-precision dot product in the mini-C dialect — the paper's
 * running example. Compile and run with:
 *
 *   wmc --run --stats examples/dotproduct.c
 *   wmc --run --stats-json=- --trace-out=trace.json examples/dotproduct.c
 */
int n = 200;
double a[200];
double b[200];

int main(void)
{
    int i;
    double s;
    for (i = 0; i < n; i++) {
        a[i] = 0.25 + (i & 31) * 0.03125;
        b[i] = 1.5 - (i & 7) * 0.125;
    }
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + a[i] * b[i];
    return s;
}
