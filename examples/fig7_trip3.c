/* The Figure 7 kernel with a trip count of 3 — below the streaming
 * threshold (paper Step 1: at least 4 iterations), so the optimizer
 * must reject the loops and `wmc --remarks` reports missed remarks
 * with reason `trip-count-too-small`.
 */
double a[3];
double b[3];
double c[3];

int main(void)
{
    int i;
    int j;
    for (j = 0; j < 3; j++) {
        a[j] = 1.0 + j * 0.5;
        b[j] = 2.0 + j * 0.25;
    }
    for (i = 0; i < 3; i++)
        c[i] = a[i] + b[i];
    return c[2];
}
