/**
 * @file
 * Dataflow-engine throughput: liveness solves and whole-program static
 * FIFO analysis on large generated TUs.
 *
 * Not a paper table — a harness health metric for the pooled-bitset
 * dataflow framework (src/dataflow) and the static FIFO depth analysis
 * built on it (src/verify/fifodepth.cc). The printed table pins the
 * deterministic shape of the analysis (block/register counts, inferred
 * depths, verdicts) so the benchdiff gate catches silent changes to
 * the solver or the occupancy model; "wall_ms" columns are
 * host-dependent and excluded automatically (benchdiff's
 * HOST_METRIC_MARKERS).
 *
 * The google-benchmark loops time the two hot paths the framework
 * exists for: repeated Liveness construction (the DCE pipeline's
 * per-pass rebuild) and analyzeFifoRequirements (the wmfuzz agreement
 * oracle runs it once per generated program).
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "cfg/liveness.h"
#include "obs/pass_profiler.h"
#include "verify/verify.h"

using namespace wmstream;

namespace {

/**
 * A TU with @p loops sequential streamable kernels over shared arrays:
 * every loop lowers to a streamed region, so the FIFO analysis has one
 * claimed queue set per loop to prove out.
 */
std::string
bigTuSource(int loops, int n)
{
    std::string src = "int main() {\n"
                      "  int n = " + std::to_string(n) + ";\n"
                      "  double a[" + std::to_string(n) + "];\n"
                      "  double b[" + std::to_string(n) + "];\n"
                      "  double c[" + std::to_string(n) + "];\n"
                      "  int i;\n"
                      "  for (i = 0; i < n; i = i + 1) {\n"
                      "    a[i] = 1.0; b[i] = 2.0; c[i] = 0.0;\n"
                      "  }\n";
    for (int l = 0; l < loops; ++l)
        src += "  for (i = 0; i < n; i = i + 1) {\n"
               "    c[i] = c[i] + a[i] * b[i];\n"
               "  }\n";
    src += "  return c[" + std::to_string(n - 1) + "];\n"
           "}\n";
    return src;
}

driver::CompileResult
compileBigTu(int loops, int n)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(bigTuSource(loops, n), opts);
    if (!cr.ok) {
        std::fprintf(stderr, "compile failed:\n%s\n",
                     cr.diagnostics.c_str());
        std::abort();
    }
    return cr;
}

size_t
totalBlocks(const rtl::Program &prog)
{
    size_t n = 0;
    for (const auto &fn : prog.functions())
        n += fn->blocks().size();
    return n;
}

void
printTable(wsbench::JsonReport &report)
{
    std::printf("Dataflow engine: liveness + static FIFO analysis on "
                "generated TUs.\n\n");
    std::printf("%-16s %7s %7s %6s %9s %9s %11s %11s\n", "TU", "blocks",
                "regs", "words", "mindepth", "verdict", "live ms",
                "fifo ms");
    for (int loops : {4, 16, 64}) {
        auto cr = compileBigTu(loops, 256);
        rtl::Function &main = *cr.program->functions().front();

        obs::PhaseTimer liveTimer;
        cfg::Liveness live(main, cr.traits);
        // Force the solve's outputs to materialize.
        size_t words = live.bitsetWords();
        double liveMs = liveTimer.elapsedMs();

        obs::PhaseTimer fifoTimer;
        verify::FifoRequirements req = verify::analyzeFifoRequirements(
            *cr.program, cr.traits, /*configuredDepth=*/8);
        double fifoMs = fifoTimer.elapsedMs();

        std::string label = "bigtu.l" + std::to_string(loops);
        std::printf("%-16s %7zu %7zu %6zu %9d %9s %11.2f %11.2f\n",
                    label.c_str(), totalBlocks(*cr.program),
                    live.numKeys(), words, req.minDepth,
                    req.verdict.c_str(), liveMs, fifoMs);
        report.row(label)
            .num("blocks", static_cast<double>(totalBlocks(*cr.program)))
            .num("regs", static_cast<double>(live.numKeys()))
            .num("bitset_words", static_cast<double>(words))
            .num("fifo_min_depth", static_cast<double>(req.minDepth))
            .num("deadlock_free", req.deadlockFree ? 1.0 : 0.0)
            .num("queues_analyzed",
                 static_cast<double>(req.queues.size()))
            .num("liveness_wall_ms", liveMs)
            .num("fifo_wall_ms", fifoMs);
    }
    std::printf("\n");
}

/** Repeated liveness construction — the per-pass rebuild the pooled
 *  solver is meant to make cheap. */
void
BM_LivenessSolve(benchmark::State &state)
{
    auto cr = compileBigTu(static_cast<int>(state.range(0)), 256);
    rtl::Function &main = *cr.program->functions().front();
    for (auto _ : state) {
        cfg::Liveness live(main, cr.traits);
        benchmark::DoNotOptimize(live.numKeys());
    }
}
BENCHMARK(BM_LivenessSolve)->Arg(4)->Arg(64);

/** The full static FIFO analysis, as run once per wmfuzz program. */
void
BM_FifoRequirements(benchmark::State &state)
{
    auto cr = compileBigTu(static_cast<int>(state.range(0)), 256);
    for (auto _ : state) {
        auto req = verify::analyzeFifoRequirements(*cr.program,
                                                   cr.traits, 8);
        benchmark::DoNotOptimize(req.minDepth);
    }
}
BENCHMARK(BM_FifoRequirements)->Arg(4)->Arg(64);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    if (!wsbench::emitJson(jsonOut, "dataflowbench", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
