# Run one bench binary with --json-out, check the emitted file is
# valid JSON, and (when BASELINE/BENCHDIFF are set) diff its cycle
# metrics against the committed BENCH_baseline.json — more than 5%
# growth fails the test. Invoked by the bench-smoke ctest; see
# CMakeLists.txt.
execute_process(
    COMMAND ${BENCH_BIN} --json-out=${OUT_JSON} "--benchmark_filter=^$"
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
            "${BENCH_BIN} failed (rc=${run_rc}):\n${run_out}${run_err}")
endif()
if(NOT EXISTS ${OUT_JSON})
    message(FATAL_ERROR "${BENCH_BIN} did not write ${OUT_JSON}")
endif()
execute_process(
    COMMAND ${PYTHON} -m json.tool ${OUT_JSON}
    RESULT_VARIABLE json_rc
    OUTPUT_QUIET
    ERROR_VARIABLE json_err)
if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "invalid JSON in ${OUT_JSON}:\n${json_err}")
endif()
if(DEFINED BASELINE AND DEFINED BENCHDIFF)
    execute_process(
        COMMAND ${PYTHON} ${BENCHDIFF} diff ${BASELINE} ${OUT_JSON}
        RESULT_VARIABLE diff_rc
        OUTPUT_VARIABLE diff_out
        ERROR_VARIABLE diff_err)
    if(NOT diff_rc EQUAL 0)
        message(FATAL_ERROR
                "cycle regression vs ${BASELINE}:\n${diff_out}${diff_err}")
    endif()
    message(STATUS "${diff_out}")
endif()
