/**
 * @file
 * Figure 7: WM code for the 5th Livermore loop with stream
 * instructions.
 *
 * The paper's final form: SinD/SinD/SoutD started in the preheader,
 * a loop body of two FEU instructions, and a jump-on-stream-not-
 * exhausted — no address computations execute inside the loop.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "programs/programs.h"
#include "wm/printer.h"

using namespace wmstream;

namespace {

void
printFigure(wsbench::JsonReport &report)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(programs::livermore5Source(100), opts);
    if (!cr.ok)
        std::abort();
    std::printf("Figure 7. WM code with stream instructions\n\n%s\n",
                wm::printFunction(*cr.program->findFunction("main"))
                    .c_str());
    int streams = 0, tests = 0;
    for (const auto &r : cr.streamingReports) {
        streams += r.streamsIn + r.streamsOut;
        tests += r.loopTestsReplaced;
    }
    std::printf("Streams created: %d, loop tests replaced with "
                "jump-on-stream: %d\n",
                streams, tests);
    auto res = wmsim::simulate(*cr.program);
    if (!res.ok)
        std::abort();
    report.row("livermore5")
        .num("streams", streams)
        .num("loop_tests_replaced", tests)
        .num("cycles", static_cast<double>(res.stats.cycles));
}

void
BM_FullWmPipeline(benchmark::State &state)
{
    std::string src = programs::livermore5Source(100);
    for (auto _ : state) {
        driver::CompileOptions opts;
        auto cr = driver::compileSource(src, opts);
        benchmark::DoNotOptimize(cr.ok);
    }
}
BENCHMARK(BM_FullWmPipeline);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printFigure(report);
    if (!wsbench::emitJson(jsonOut, "fig7_stream_code", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
