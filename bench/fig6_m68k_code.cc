/**
 * @file
 * Figure 6: Motorola 68020 code for the 5th Livermore loop with
 * recurrences optimized.
 *
 * Demonstrates the retargetability claim: the recurrence pass is
 * machine-independent, and on the 68020 strength reduction plus
 * instruction selection yields the auto-increment loop of the paper's
 * figure (fmoved a0@+, fsubx, fmulx, fmoved fp0,a2@+, addql, cmpl,
 * jlt).
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "m68k/printer.h"
#include "programs/programs.h"

using namespace wmstream;

namespace {

void
printFigure()
{
    driver::CompileOptions opts;
    opts.target = rtl::MachineKind::Scalar;
    opts.recurrence = true;
    auto cr = driver::compileSource(programs::livermore5Source(100), opts);
    if (!cr.ok)
        std::abort();
    std::printf("Figure 6. Motorola 68020 code for the 5th Livermore "
                "loop with recurrences optimized\n\n%s\n",
                m68k::printFunction(*cr.program->findFunction("main"))
                    .c_str());
}

void
BM_CompileScalarWithStrengthReduction(benchmark::State &state)
{
    std::string src = programs::livermore5Source(100);
    for (auto _ : state) {
        driver::CompileOptions opts;
        opts.target = rtl::MachineKind::Scalar;
        auto cr = driver::compileSource(src, opts);
        benchmark::DoNotOptimize(cr.ok);
    }
}
BENCHMARK(BM_CompileScalarWithStrengthReduction);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
