/**
 * @file
 * Figure 4: unoptimized WM code for the 5th Livermore loop.
 *
 * The paper's Figure 4 shows the loop after expansion, loop detection,
 * and code motion, but before recurrence detection: four memory
 * references per iteration (z[i], y[i], x[i-1] reads and the x[i]
 * write), each an address generation feeding the data FIFOs.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "programs/programs.h"
#include "wm/printer.h"

using namespace wmstream;

namespace {

void
printFigure()
{
    driver::CompileOptions opts;
    opts.recurrence = false;
    opts.streaming = false;
    auto cr = driver::compileSource(programs::livermore5Source(100), opts);
    if (!cr.ok)
        std::abort();
    std::printf("Figure 4. Unoptimized WM code for the 5th Livermore "
                "loop\n(recurrence and streaming optimizations "
                "disabled)\n\n%s\n",
                wm::printFunction(*cr.program->findFunction("main"))
                    .c_str());
}

void
BM_CompileNoLoopOpts(benchmark::State &state)
{
    std::string src = programs::livermore5Source(100);
    for (auto _ : state) {
        driver::CompileOptions opts;
        opts.recurrence = false;
        opts.streaming = false;
        auto cr = driver::compileSource(src, opts);
        benchmark::DoNotOptimize(cr.ok);
    }
}
BENCHMARK(BM_CompileNoLoopOpts);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
