/**
 * @file
 * Section 2 claim: "With a relatively simple hardware implementation,
 * the code will produce the dot product in N clock cycles."
 *
 * The streamed dot-product loop is one FEU multiply-add plus an
 * IFU-executed jump, so its steady-state rate is one element per
 * cycle. This harness measures cycles-per-element of the dot-product
 * kernel for growing N (total cycles include initialization, so the
 * marginal cost between two sizes is the kernel rate).
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "programs/programs.h"
#include "support/str.h"

using namespace wmstream;

namespace {

/** Dot product with the kernel repeated @p reps times. */
std::string
dotSource(int n, int reps)
{
    return strFormat(R"(
int n = %d;
int reps = %d;
double a[%d];
double b[%d];
int main(void)
{
    int i, rep;
    double s;
    for (i = 0; i < n; i++) {
        a[i] = 0.25 + (i & 31) * 0.03125;
        b[i] = 1.5 - (i & 7) * 0.125;
    }
    s = 0.0;
    for (rep = 0; rep < reps; rep++)
        for (i = 0; i < n; i++)
            s = s + a[i] * b[i];
    return s;
}
)",
                     n, reps, n, n);
}

wmsim::SimResult
resultFor(int n, int reps, bool streaming)
{
    driver::CompileOptions opts;
    opts.streaming = streaming;
    return wsbench::runWm(dotSource(n, reps), opts);
}

void
printTable(wsbench::JsonReport &report)
{
    std::printf("Dot product cycle rate (paper Section 2: \"the dot "
                "product in N clock cycles\")\n\n");
    // Differencing over kernel repetitions isolates the kernel from
    // the initialization loop.
    constexpr int kN = 2000;
    std::printf("Kernel cycles/element at n=%d (marginal over kernel "
                "repetitions):\n\n", kN);
    std::printf("%10s %22s %22s\n", "", "scalar", "streamed");
    auto r0a = resultFor(kN, 1, false);
    auto r0b = resultFor(kN, 5, false);
    auto r1a = resultFor(kN, 1, true);
    auto r1b = resultFor(kN, 5, true);
    uint64_t s0a = r0a.stats.cycles, s0b = r0b.stats.cycles;
    uint64_t s1a = r1a.stats.cycles, s1b = r1b.stats.cycles;
    double scalarRate = static_cast<double>(s0b - s0a) / (4.0 * kN);
    double streamRate = static_cast<double>(s1b - s1a) / (4.0 * kN);
    std::printf("%10s %22.3f %22.3f\n", "cyc/elem", scalarRate,
                streamRate);
    report.row("scalar")
        .num("n", kN)
        .num("cycles_per_element", scalarRate)
        .sim(r0b.stats);
    report.row("streamed")
        .num("n", kN)
        .num("cycles_per_element", streamRate)
        .sim(r1b.stats);
    std::printf("\nThe streamed kernel sustains ~1 cycle per element: "
                "one FEU multiply-add\n(f4 := (f0*f1)+f4) plus a "
                "zero-cost IFU jump — the paper's \"dot product in\n"
                "N clock cycles\".\n\n");
}

void
BM_SimulateStreamedDot(benchmark::State &state)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(programs::dotProductSource(2048),
                                    opts);
    for (auto _ : state) {
        auto res = wmsim::simulate(*cr.program);
        benchmark::DoNotOptimize(res.stats.cycles);
    }
}
BENCHMARK(BM_SimulateStreamedDot);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    if (!wsbench::emitJson(jsonOut, "dotproduct_cycles", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
