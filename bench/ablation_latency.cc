/**
 * @file
 * Ablation: memory-latency tolerance of the access/execute model.
 *
 * The paper's motivation: "in concert with the compiler, it allows the
 * processor to mask memory latency by issuing loads in advance of the
 * data consumption. The result is a machine that is less sensitive to
 * memory latency and cache misses." Streams push this further: the
 * SCUs prefetch arbitrarily far ahead.
 *
 * This harness sweeps the memory latency and reports cycles for the
 * dot product compiled scalar vs. streamed.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "programs/programs.h"

using namespace wmstream;

namespace {

void
printTable(wsbench::JsonReport &report)
{
    std::string src = programs::dotProductSource(2000);
    driver::CompileOptions scalarOpts;
    scalarOpts.streaming = false;
    driver::CompileOptions streamOpts;

    auto scalarProg = driver::compileSource(src, scalarOpts);
    auto streamProg = driver::compileSource(src, streamOpts);
    if (!scalarProg.ok || !streamProg.ok)
        std::abort();

    std::printf("Ablation: cycles vs. memory latency (dot product, "
                "n=2000)\n\n");
    std::printf("%10s %16s %16s %14s\n", "latency", "scalar cycles",
                "streamed cycles", "stream speedup");
    for (int lat : {1, 2, 4, 8, 16, 32}) {
        wmsim::SimConfig cfg;
        cfg.memLatency = lat;
        cfg.maxCycles = 1'000'000'000ull;
        auto s0 = wmsim::simulate(*scalarProg.program, cfg);
        auto s1 = wmsim::simulate(*streamProg.program, cfg);
        if (!s0.ok || !s1.ok)
            std::abort();
        std::printf("%10d %16llu %16llu %13.2fx\n", lat,
                    static_cast<unsigned long long>(s0.stats.cycles),
                    static_cast<unsigned long long>(s1.stats.cycles),
                    static_cast<double>(s0.stats.cycles) /
                        static_cast<double>(s1.stats.cycles));
        report.row("latency=" + std::to_string(lat))
            .num("scalar_cycles", static_cast<double>(s0.stats.cycles))
            .num("streamed_cycles",
                 static_cast<double>(s1.stats.cycles));
    }
    std::printf("\nScalar code already tolerates moderate latency (loads "
                "issue ahead through the\nFIFOs); streamed code is nearly "
                "flat because the SCUs run arbitrarily far\nahead of the "
                "consuming unit.\n\n");
}

void
BM_SimulateHighLatency(benchmark::State &state)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(programs::dotProductSource(1000),
                                    opts);
    wmsim::SimConfig cfg;
    cfg.memLatency = 16;
    for (auto _ : state) {
        auto res = wmsim::simulate(*cr.program, cfg);
        benchmark::DoNotOptimize(res.stats.cycles);
    }
}
BENCHMARK(BM_SimulateHighLatency);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    if (!wsbench::emitJson(jsonOut, "ablation_latency", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
