/**
 * @file
 * Simulator throughput: simulated cycles per wall-clock second over
 * the Table II programs.
 *
 * Not a paper table — a harness health metric. ROADMAP's planned
 * event-driven simulator core needs a wall-clock baseline to beat;
 * this harness is that baseline. Each program is compiled once
 * (streaming on) and then timed through the cycle simulator alone, so
 * the rate is pure simulator throughput, not compile time.
 *
 * The per-row "cycles" column is deterministic and participates in
 * the benchdiff regression gate; "wall_ms" and "sim_cycles_per_sec"
 * are host-dependent and explicitly excluded from it (see
 * tools/benchdiff.py).
 *
 * A second table measures the critical-path recorder's overhead: the
 * same programs simulated with the scheduling-event DAG on. The
 * deterministic columns there are the DAG size (events, deps) and the
 * cycle count (which must not change — recording is passive);
 * "critpath_wall_ms" is host-dependent and excluded.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "obs/pass_profiler.h"
#include "programs/programs.h"

using namespace wmstream;

namespace {

/** Compile @p source for WM with streaming on; aborts on error. */
driver::CompileResult
compileWm(const std::string &source)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(source, opts);
    if (!cr.ok) {
        std::fprintf(stderr, "compile failed:\n%s\n",
                     cr.diagnostics.c_str());
        std::abort();
    }
    return cr;
}

void
printTable(wsbench::JsonReport &report)
{
    std::printf("Simulator throughput over the Table II programs "
                "(streaming on).\n\n");
    std::printf("%-14s %12s %10s %16s\n", "Program", "cycles",
                "wall ms", "sim cycles/sec");
    uint64_t totalCycles = 0;
    double totalMs = 0.0;
    for (const auto &prog : programs::tableIIPrograms()) {
        auto cr = compileWm(prog.source);
        wmsim::SimConfig cfg;
        cfg.maxCycles = 4'000'000'000ull;
        obs::PhaseTimer timer;
        auto res = wmsim::simulate(*cr.program, cfg);
        double ms = timer.elapsedMs();
        if (!res.ok) {
            std::fprintf(stderr, "simulation failed for %s: %s\n",
                         prog.name.c_str(), res.error.c_str());
            std::abort();
        }
        double rate = ms > 0.0
                          ? static_cast<double>(res.stats.cycles) /
                                (ms / 1000.0)
                          : 0.0;
        std::printf("%-14s %12llu %10.2f %16.0f\n", prog.name.c_str(),
                    static_cast<unsigned long long>(res.stats.cycles),
                    ms, rate);
        report.row(prog.name)
            .num("cycles", static_cast<double>(res.stats.cycles))
            .num("wall_ms", ms)
            .num("sim_cycles_per_sec", rate);
        totalCycles += res.stats.cycles;
        totalMs += ms;
    }
    double totalRate =
        totalMs > 0.0
            ? static_cast<double>(totalCycles) / (totalMs / 1000.0)
            : 0.0;
    std::printf("%-14s %12llu %10.2f %16.0f\n\n", "total",
                static_cast<unsigned long long>(totalCycles), totalMs,
                totalRate);
    report.row("total")
        .num("cycles", static_cast<double>(totalCycles))
        .num("wall_ms", totalMs)
        .num("sim_cycles_per_sec", totalRate);
}

/**
 * Critical-path recorder overhead over the Table II programs: time
 * each simulation with the DAG off and on. Cycle counts must match
 * (recording never perturbs timing); events/deps are deterministic
 * DAG sizes and gate regressions in recording coverage.
 */
void
printCritPathOverhead(wsbench::JsonReport &report)
{
    std::printf("\nCritical-path recorder overhead (DAG on vs off).\n\n");
    std::printf("%-14s %12s %10s %10s %12s %12s\n", "Program",
                "cycles", "events", "deps", "base ms", "critpath ms");
    for (const auto &prog : programs::tableIIPrograms()) {
        auto cr = compileWm(prog.source);
        wmsim::SimConfig base;
        base.maxCycles = 4'000'000'000ull;
        obs::PhaseTimer baseTimer;
        auto baseRes = wmsim::simulate(*cr.program, base);
        double baseMs = baseTimer.elapsedMs();
        obs::CritPath cp;
        wmsim::SimConfig cfg = base;
        cfg.critpath = &cp;
        obs::PhaseTimer cpTimer;
        auto res = wmsim::simulate(*cr.program, cfg);
        double cpMs = cpTimer.elapsedMs();
        if (!baseRes.ok || !res.ok ||
            baseRes.stats.cycles != res.stats.cycles) {
            std::fprintf(stderr,
                         "critpath recording perturbed %s: %llu vs "
                         "%llu cycles\n",
                         prog.name.c_str(),
                         static_cast<unsigned long long>(
                             baseRes.stats.cycles),
                         static_cast<unsigned long long>(
                             res.stats.cycles));
            std::abort();
        }
        std::printf("%-14s %12llu %10zu %10zu %12.2f %12.2f\n",
                    prog.name.c_str(),
                    static_cast<unsigned long long>(res.stats.cycles),
                    cp.eventCount(), cp.depCount(), baseMs, cpMs);
        report.row("critpath." + prog.name)
            .num("cycles", static_cast<double>(res.stats.cycles))
            .num("events", static_cast<double>(cp.eventCount()))
            .num("deps", static_cast<double>(cp.depCount()))
            .num("base_wall_ms", baseMs)
            .num("critpath_wall_ms", cpMs);
    }
    std::printf("\n");
}

/** Simulator-only throughput on a streamed kernel (no compile). */
void
BM_SimulateDotProduct(benchmark::State &state)
{
    auto cr = compileWm(programs::dotProductSource(
        static_cast<int>(state.range(0))));
    uint64_t cycles = 0;
    for (auto _ : state) {
        auto res = wmsim::simulate(*cr.program);
        cycles = res.stats.cycles;
        benchmark::DoNotOptimize(res.returnValue);
    }
    state.counters["sim_cycles_per_sec"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SimulateDotProduct)->Arg(512)->Arg(4096);

/** Flight recorder overhead: the same kernel with sampling on. */
void
BM_SimulateDotProductSampled(benchmark::State &state)
{
    auto cr = compileWm(programs::dotProductSource(
        static_cast<int>(state.range(0))));
    auto channels = wmsim::simTimeSeriesChannels();
    for (auto _ : state) {
        obs::TimeSeries ts(channels, 1024);
        wmsim::SimConfig cfg;
        cfg.timeseries = &ts;
        auto res = wmsim::simulate(*cr.program, cfg);
        benchmark::DoNotOptimize(res.returnValue);
    }
}
BENCHMARK(BM_SimulateDotProductSampled)->Arg(512)->Arg(4096);

/** Critical-path recorder overhead: the same kernel with the DAG on. */
void
BM_SimulateDotProductCritPath(benchmark::State &state)
{
    auto cr = compileWm(programs::dotProductSource(
        static_cast<int>(state.range(0))));
    for (auto _ : state) {
        obs::CritPath cp;
        wmsim::SimConfig cfg;
        cfg.critpath = &cp;
        auto res = wmsim::simulate(*cr.program, cfg);
        benchmark::DoNotOptimize(res.returnValue);
    }
}
BENCHMARK(BM_SimulateDotProductCritPath)->Arg(512)->Arg(4096);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    printCritPathOverhead(report);
    if (!wsbench::emitJson(jsonOut, "simthroughput", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
