/**
 * @file
 * Figure 5: WM code for the 5th Livermore loop with recurrences
 * optimized.
 *
 * The x[i-1] load disappears: the value is retained in a register
 * (paper: f22), the loop preheader primes it with x[1], and only three
 * memory references per iteration remain.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "programs/programs.h"
#include "wm/printer.h"

using namespace wmstream;

namespace {

void
printFigure()
{
    driver::CompileOptions opts;
    opts.recurrence = true;
    opts.streaming = false;
    auto cr = driver::compileSource(programs::livermore5Source(100), opts);
    if (!cr.ok)
        std::abort();
    std::printf("Figure 5. WM code for the 5th Livermore loop with "
                "recurrences optimized\n\n%s\n",
                wm::printFunction(*cr.program->findFunction("main"))
                    .c_str());
    std::printf("Recurrences optimized: %d (loads deleted: %d)\n",
                cr.recurrenceReports.empty()
                    ? 0
                    : cr.recurrenceReports[0].recurrencesOptimized,
                cr.recurrenceReports.empty()
                    ? 0
                    : cr.recurrenceReports[0].loadsDeleted);
}

void
BM_CompileWithRecurrence(benchmark::State &state)
{
    std::string src = programs::livermore5Source(100);
    for (auto _ : state) {
        driver::CompileOptions opts;
        opts.streaming = false;
        auto cr = driver::compileSource(src, opts);
        benchmark::DoNotOptimize(cr.ok);
    }
}
BENCHMARK(BM_CompileWithRecurrence);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
