/**
 * @file
 * Ablation: data-FIFO depth vs. streamed performance.
 *
 * The FIFO depth bounds how far the SCUs can prefetch ahead of the
 * consuming unit. With short FIFOs and long memory latency the stream
 * cannot cover the latency; the paper's "burst mode" remark assumes
 * deep enough buffering. This harness sweeps the depth at two memory
 * latencies for the streamed dot product.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "programs/programs.h"

using namespace wmstream;

namespace {

void
printTable(wsbench::JsonReport &report)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(programs::dotProductSource(2000),
                                    opts);
    if (!cr.ok)
        std::abort();

    std::printf("Ablation: streamed dot product (n=2000) cycles vs. "
                "FIFO depth\n\n");
    std::printf("%12s %18s %18s\n", "FIFO depth", "latency 4",
                "latency 16");
    for (int depth : {2, 4, 8, 16, 32}) {
        uint64_t cyc[2];
        int lats[2] = {4, 16};
        for (int i = 0; i < 2; ++i) {
            wmsim::SimConfig cfg;
            cfg.dataFifoDepth = depth;
            cfg.memLatency = lats[i];
            cfg.maxCycles = 1'000'000'000ull;
            auto res = wmsim::simulate(*cr.program, cfg);
            if (!res.ok)
                std::abort();
            cyc[i] = res.stats.cycles;
        }
        std::printf("%12d %18llu %18llu\n", depth,
                    static_cast<unsigned long long>(cyc[0]),
                    static_cast<unsigned long long>(cyc[1]));
        report.row("depth=" + std::to_string(depth))
            .num("cycles_latency4", static_cast<double>(cyc[0]))
            .num("cycles_latency16", static_cast<double>(cyc[1]));
    }
    std::printf("\nOnce the depth covers the memory latency the "
                "streamed loop runs at its\ncompute-bound rate; "
                "shallower FIFOs leave the FEU waiting for "
                "deliveries.\n\n");
}

void
BM_ShallowFifoSimulation(benchmark::State &state)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(programs::dotProductSource(500),
                                    opts);
    wmsim::SimConfig cfg;
    cfg.dataFifoDepth = 2;
    for (auto _ : state) {
        auto res = wmsim::simulate(*cr.program, cfg);
        benchmark::DoNotOptimize(res.stats.cycles);
    }
}
BENCHMARK(BM_ShallowFifoSimulation);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    if (!wsbench::emitJson(jsonOut, "ablation_fifodepth", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
