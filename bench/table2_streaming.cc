/**
 * @file
 * Table II: execution performance improvements by streaming.
 *
 * The paper compiled nine programs with and without streaming and
 * measured the percent reduction in cycles executed on an exact-cycle
 * WM simulator (including memory delays):
 *
 *     banner 5, bubblesort 18, cal 17, dhrystone 39, dot-product 43,
 *     iir 13, quicksort 1, sieve 18, whetstone 3.
 *
 * This harness runs the mini-C reproductions of those programs (see
 * src/programs) through the same pipeline and the WM cycle simulator.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "programs/programs.h"

using namespace wmstream;

namespace {

const int kPaperNumbers[] = {5, 18, 17, 39, 43, 13, 1, 18, 3};

void
printTable()
{
    std::printf("Table II. Execution Performance improvements by "
                "streaming.\n\n");
    std::printf("%-14s %14s %14s %12s %10s\n", "Program", "base cycles",
                "stream cycles", "measured %", "paper %");
    const auto &programs = programs::tableIIPrograms();
    for (size_t i = 0; i < programs.size(); ++i) {
        uint64_t cyc[2];
        int64_t ret[2];
        for (int s = 0; s < 2; ++s) {
            driver::CompileOptions opts;
            opts.streaming = s != 0;
            auto res = wsbench::runWm(programs[i].source, opts);
            cyc[s] = res.stats.cycles;
            ret[s] = res.returnValue;
        }
        if (ret[0] != ret[1]) {
            std::fprintf(stderr, "checksum mismatch for %s!\n",
                         programs[i].name.c_str());
            std::abort();
        }
        std::printf("%-14s %14llu %14llu %12.1f %10d\n",
                    programs[i].name.c_str(),
                    static_cast<unsigned long long>(cyc[0]),
                    static_cast<unsigned long long>(cyc[1]),
                    wsbench::pctReduction(static_cast<double>(cyc[0]),
                                          static_cast<double>(cyc[1])),
                    kPaperNumbers[i]);
    }
    std::printf("\n");
}

void
BM_CompileAndSimulateDotProduct(benchmark::State &state)
{
    std::string src = programs::dotProductSource(512);
    for (auto _ : state) {
        driver::CompileOptions opts;
        auto res = wsbench::runWm(src, opts);
        benchmark::DoNotOptimize(res.stats.cycles);
    }
}
BENCHMARK(BM_CompileAndSimulateDotProduct);

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
