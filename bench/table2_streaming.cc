/**
 * @file
 * Table II: execution performance improvements by streaming.
 *
 * The paper compiled nine programs with and without streaming and
 * measured the percent reduction in cycles executed on an exact-cycle
 * WM simulator (including memory delays):
 *
 *     banner 5, bubblesort 18, cal 17, dhrystone 39, dot-product 43,
 *     iir 13, quicksort 1, sieve 18, whetstone 3.
 *
 * This harness runs the mini-C reproductions of those programs (see
 * src/programs) through the same pipeline and the WM cycle simulator.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "programs/programs.h"

using namespace wmstream;

namespace {

const int kPaperNumbers[] = {5, 18, 17, 39, 43, 13, 1, 18, 3};

void
printTable(wsbench::JsonReport &report)
{
    std::printf("Table II. Execution Performance improvements by "
                "streaming.\n\n");
    std::printf("%-14s %14s %14s %12s %10s\n", "Program", "base cycles",
                "stream cycles", "measured %", "paper %");
    const auto &programs = programs::tableIIPrograms();
    for (size_t i = 0; i < programs.size(); ++i) {
        uint64_t cyc[2];
        int64_t ret[2];
        wmsim::SimStats streamedStats;
        for (int s = 0; s < 2; ++s) {
            driver::CompileOptions opts;
            opts.streaming = s != 0;
            auto res = wsbench::runWm(programs[i].source, opts);
            cyc[s] = res.stats.cycles;
            ret[s] = res.returnValue;
            if (s == 1)
                streamedStats = res.stats;
        }
        if (ret[0] != ret[1]) {
            std::fprintf(stderr, "checksum mismatch for %s!\n",
                         programs[i].name.c_str());
            std::abort();
        }
        double measured = wsbench::pctReduction(
            static_cast<double>(cyc[0]), static_cast<double>(cyc[1]));
        std::printf("%-14s %14llu %14llu %12.1f %10d\n",
                    programs[i].name.c_str(),
                    static_cast<unsigned long long>(cyc[0]),
                    static_cast<unsigned long long>(cyc[1]), measured,
                    kPaperNumbers[i]);
        report.row(programs[i].name)
            .num("base_cycles", static_cast<double>(cyc[0]))
            .num("stream_cycles", static_cast<double>(cyc[1]))
            .num("measured_pct", measured)
            .num("paper_pct", kPaperNumbers[i])
            .sim(streamedStats);
    }
    std::printf("\n");
}

void
BM_CompileAndSimulateDotProduct(benchmark::State &state)
{
    std::string src = programs::dotProductSource(512);
    for (auto _ : state) {
        driver::CompileOptions opts;
        auto res = wsbench::runWm(src, opts);
        benchmark::DoNotOptimize(res.stats.cycles);
    }
}
BENCHMARK(BM_CompileAndSimulateDotProduct);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    if (!wsbench::emitJson(jsonOut, "table2_streaming", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
