/**
 * @file
 * Ablation: recurrence degree vs. register cost and benefit.
 *
 * The paper (Step 4a): "The maximum difference determines the number
 * of registers needed to handle the recurrence. ... In general, you
 * need one more register than the degree of the recurrence", and the
 * pass gives up "because there may not be enough registers".
 *
 * This harness sweeps the recurrence distance d in
 * x[i] = z[i]*(y[i] - x[i-d]) and reports whether the pass fired, the
 * chain length it used, and the cycle effect on WM.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "programs/programs.h"

using namespace wmstream;

namespace {

void
printTable(wsbench::JsonReport &report)
{
    std::printf("Ablation: recurrence degree (x[i] = z[i]*(y[i] - "
                "x[i-d]), n=2000)\n\n");
    std::printf("%8s %10s %12s %14s %14s %10s\n", "degree", "fired?",
                "registers", "base cycles", "opt cycles", "gain %");
    for (int d : {1, 2, 3, 4, 5, 6}) {
        std::string src = programs::recurrenceDegreeSource(2000, d);
        uint64_t cyc[2];
        int fired = 0, degree = 0;
        for (int rec = 0; rec < 2; ++rec) {
            driver::CompileOptions opts;
            opts.recurrence = rec != 0;
            opts.streaming = false;
            opts.maxRecurrenceDegree = 4; // the register budget
            auto cr = driver::compileSource(src, opts);
            if (!cr.ok)
                std::abort();
            if (rec) {
                for (const auto &r : cr.recurrenceReports) {
                    fired += r.recurrencesOptimized;
                    degree = std::max(degree, r.maxDegree);
                }
            }
            auto res = wmsim::simulate(*cr.program);
            if (!res.ok)
                std::abort();
            cyc[rec] = res.stats.cycles;
        }
        std::printf("%8d %10s %12d %14llu %14llu %10.1f\n", d,
                    fired ? "yes" : "no", fired ? degree + 1 : 0,
                    static_cast<unsigned long long>(cyc[0]),
                    static_cast<unsigned long long>(cyc[1]),
                    wsbench::pctReduction(static_cast<double>(cyc[0]),
                                          static_cast<double>(cyc[1])));
        report.row("degree=" + std::to_string(d))
            .num("fired", fired)
            .num("base_cycles", static_cast<double>(cyc[0]))
            .num("opt_cycles", static_cast<double>(cyc[1]));
    }
    std::printf("\nDegrees beyond the register budget (4) are left to "
                "memory, exactly the\npaper's \"not enough registers\" "
                "bail-out.\n\n");
}

void
BM_RecurrenceAnalysis(benchmark::State &state)
{
    std::string src = programs::recurrenceDegreeSource(200, 2);
    for (auto _ : state) {
        driver::CompileOptions opts;
        opts.streaming = false;
        auto cr = driver::compileSource(src, opts);
        benchmark::DoNotOptimize(cr.ok);
    }
}
BENCHMARK(BM_RecurrenceAnalysis);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    if (!wsbench::emitJson(jsonOut, "ablation_degree", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
