/**
 * @file
 * Ablation: the paper's Step 1 threshold ("If the number of iterations
 * is determined to be three or fewer, do not use streams. ... setting
 * up the stream instructions would result in code that executes slower
 * than the code without streaming").
 *
 * We sweep a copy kernel's (compile-time constant) trip count with the
 * threshold disabled, showing where streaming starts to win and that
 * the paper's cut-off sits near the crossover.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "support/str.h"

using namespace wmstream;

namespace {

std::string
copyKernel(int trip)
{
    // An outer repeat loop amplifies the inner loop's cost; only the
    // inner loop (constant trip count) is subject to streaming.
    return strFormat(R"(
double a[64];
double b[64];
int main(void)
{
    int i, rep, t;
    double s;
    for (i = 0; i < 64; i++)
        a[i] = 1.0 + i;
    for (rep = 0; rep < 500; rep++) {
        for (i = 0; i < %d; i++)
            b[i] = a[i];
    }
    s = 0.0;
    for (t = 0; t < %d; t++)
        s = s + b[t];
    return s;
}
)",
                     trip, trip);
}

void
printTable(wsbench::JsonReport &report)
{
    std::printf("Ablation: stream profitability vs. loop trip count\n"
                "(paper Step 1: trip counts of three or fewer are not "
                "streamed)\n\n");
    std::printf("%6s %16s %16s %12s %20s\n", "trip", "scalar cycles",
                "streamed cycles", "streamed?", "stream wins?");
    for (int trip : {1, 2, 3, 4, 6, 8, 16, 32, 64}) {
        std::string src = copyKernel(trip);
        driver::CompileOptions noStream;
        noStream.streaming = false;
        uint64_t base = wsbench::runWm(src, noStream).stats.cycles;

        // Threshold disabled: stream even tiny loops.
        driver::CompileOptions force;
        force.minStreamTripCount = 0;
        auto cr = driver::compileSource(src, force);
        if (!cr.ok)
            std::abort();
        int streams = 0;
        for (const auto &r : cr.streamingReports)
            streams += r.streamsIn + r.streamsOut;
        auto res = wmsim::simulate(*cr.program);
        if (!res.ok)
            std::abort();
        uint64_t forced = res.stats.cycles;

        std::printf("%6d %16llu %16llu %12s %20s\n", trip,
                    static_cast<unsigned long long>(base),
                    static_cast<unsigned long long>(forced),
                    streams ? "yes" : "no",
                    forced < base ? "yes" : "NO (slower)");
        report.row("trip=" + std::to_string(trip))
            .num("scalar_cycles", static_cast<double>(base))
            .num("streamed_cycles", static_cast<double>(forced));
    }
    std::printf("\nWith the paper's default threshold (4), loops of "
                "three or fewer iterations\nkeep their scalar code.\n\n");
}

void
BM_TinyLoopCompile(benchmark::State &state)
{
    std::string src = copyKernel(4);
    for (auto _ : state) {
        driver::CompileOptions opts;
        auto cr = driver::compileSource(src, opts);
        benchmark::DoNotOptimize(cr.ok);
    }
}
BENCHMARK(BM_TinyLoopCompile);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    if (!wsbench::emitJson(jsonOut, "ablation_tripcount", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
