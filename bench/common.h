/**
 * @file
 * Shared helpers for the experiment harnesses.
 *
 * Every bench binary reproduces one table or figure from the paper:
 * it prints the paper-style rows first (the reproduction artifact) and
 * then runs google-benchmark timings of the underlying compile/simulate
 * machinery.
 */

#ifndef WMSTREAM_BENCH_COMMON_H
#define WMSTREAM_BENCH_COMMON_H

#include <cstdint>
#include <cstdio>
#include <string>

#include "driver/compiler.h"
#include "wmsim/sim.h"

namespace wsbench {

/** Compile for WM and run on the cycle simulator; panics on error. */
inline wmstream::wmsim::SimResult
runWm(const std::string &source, const wmstream::driver::CompileOptions &opts,
      wmstream::wmsim::SimConfig cfg = {})
{
    auto cr = wmstream::driver::compileSource(source, opts);
    if (!cr.ok) {
        std::fprintf(stderr, "compile failed:\n%s\n",
                     cr.diagnostics.c_str());
        std::abort();
    }
    cfg.maxCycles = 4'000'000'000ull;
    auto res = wmstream::wmsim::simulate(*cr.program, cfg);
    if (!res.ok) {
        std::fprintf(stderr, "simulation failed: %s\n", res.error.c_str());
        std::abort();
    }
    return res;
}

/** Percentage reduction from @p base to @p opt. */
inline double
pctReduction(double base, double opt)
{
    return 100.0 * (base - opt) / base;
}

} // namespace wsbench

#endif // WMSTREAM_BENCH_COMMON_H
