/**
 * @file
 * Shared helpers for the experiment harnesses.
 *
 * Every bench binary reproduces one table or figure from the paper:
 * it prints the paper-style rows first (the reproduction artifact) and
 * then runs google-benchmark timings of the underlying compile/simulate
 * machinery.
 */

#ifndef WMSTREAM_BENCH_COMMON_H
#define WMSTREAM_BENCH_COMMON_H

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "driver/compiler.h"
#include "obs/counters.h"
#include "obs/json.h"
#include "wmsim/sim.h"

namespace wsbench {

/** Compile for WM and run on the cycle simulator; panics on error. */
inline wmstream::wmsim::SimResult
runWm(const std::string &source, const wmstream::driver::CompileOptions &opts,
      wmstream::wmsim::SimConfig cfg = {})
{
    auto cr = wmstream::driver::compileSource(source, opts);
    if (!cr.ok) {
        std::fprintf(stderr, "compile failed:\n%s\n",
                     cr.diagnostics.c_str());
        std::abort();
    }
    cfg.maxCycles = 4'000'000'000ull;
    auto res = wmstream::wmsim::simulate(*cr.program, cfg);
    if (!res.ok) {
        std::fprintf(stderr, "simulation failed: %s\n", res.error.c_str());
        std::abort();
    }
    return res;
}

/** Percentage reduction from @p base to @p opt. */
inline double
pctReduction(double base, double opt)
{
    return 100.0 * (base - opt) / base;
}

/**
 * Machine-readable mirror of a harness's printed table: one row per
 * table line, each a label plus numeric columns, optionally with the
 * full simulator counter set attached. Build rows while printing, then
 * serialize with emitJson().
 */
class JsonReport
{
public:
    /** Start a new row. Subsequent num()/sim() calls attach to it. */
    JsonReport &row(std::string label)
    {
        rows_.emplace_back();
        rows_.back().label = std::move(label);
        return *this;
    }

    /** Add numeric column @p key = @p v to the current row. */
    JsonReport &num(std::string key, double v)
    {
        rows_.back().nums.emplace_back(std::move(key), v);
        return *this;
    }

    /** Attach the simulator counters (stall causes etc.) to the row. */
    JsonReport &sim(const wmstream::wmsim::SimStats &stats)
    {
        wmstream::obs::CounterRegistry reg;
        stats.exportCounters(reg);
        rows_.back().counters = reg.entries();
        return *this;
    }

    bool empty() const { return rows_.empty(); }

    /**
     * Serialize as {"schema_version":1, "bench": name, "rows": [...]}
     * (schema documented in DESIGN.md "JSON schemas").
     */
    std::string str(const std::string &bench) const
    {
        wmstream::obs::JsonWriter w;
        w.beginObject();
        w.field("schema_version", int64_t{1});
        w.field("bench", bench);
        w.key("rows");
        w.beginArray();
        for (const auto &r : rows_) {
            w.beginObject();
            w.field("label", r.label);
            for (const auto &kv : r.nums)
                w.field(kv.first, kv.second);
            if (!r.counters.empty()) {
                w.key("sim");
                w.beginObject();
                for (const auto &kv : r.counters)
                    w.field(kv.first,
                            static_cast<uint64_t>(kv.second));
                w.endObject();
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
        return w.str();
    }

private:
    struct Row
    {
        std::string label;
        std::vector<std::pair<std::string, double>> nums;
        std::vector<std::pair<std::string, uint64_t>> counters;
    };
    std::vector<Row> rows_;
};

/**
 * Pull `--json-out=FILE` out of argv before benchmark::Initialize sees
 * it (google-benchmark aborts on unknown flags). Returns the FILE
 * value, or "" when the flag is absent.
 */
inline std::string
extractJsonOutFlag(int *argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            path = argv[i] + 11;
        else
            argv[out++] = argv[i];
    }
    *argc = out;
    return path;
}

/**
 * Write @p report to @p path ("-" for stdout); no-op when @p path is
 * empty. Returns false (after a diagnostic) if the file can't be
 * written.
 */
inline bool
emitJson(const std::string &path, const std::string &bench,
         const JsonReport &report)
{
    if (path.empty())
        return true;
    std::string text = report.str(bench);
    if (path == "-") {
        std::printf("%s\n", text.c_str());
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = n == text.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace wsbench

#endif // WMSTREAM_BENCH_COMMON_H
