/**
 * @file
 * Ablation: the vector execution unit.
 *
 * The paper describes the VEU ("conceptually the iterations of the
 * loop are performed simultaneously by the vector execution unit") and
 * notes "when vector code is possible, the compiler generates code
 * that uses the vector unit" — but publishes no VEU measurements.
 * This harness quantifies the extension: an element-wise kernel
 * compiled scalar, streamed, and streamed+vectorized, across VEU lane
 * counts, with the memory system given the bandwidth (ports/burst)
 * vector rates need.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "support/str.h"

using namespace wmstream;

namespace {

std::string
kernel(int n)
{
    return strFormat(R"(
int n = %d;
double a[%d];
double b[%d];
double c[%d];
int main(void) {
    int i, rep;
    double s;
    for (i = 0; i < n; i++) {
        a[i] = 0.5 + (i & 7) * 0.25;
        b[i] = 2.0 - (i & 3) * 0.5;
    }
    for (rep = 0; rep < 8; rep++)
        for (i = 0; i < n; i++)
            c[i] = a[i] + b[i];
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + c[i];
    return s;
}
)",
                     n, n, n, n);
}

void
printTable(wsbench::JsonReport &report)
{
    std::string src = kernel(2000);

    driver::CompileOptions scalarOpts;
    scalarOpts.streaming = false;
    driver::CompileOptions streamOpts;
    driver::CompileOptions vecOpts;
    vecOpts.vectorize = true;

    auto scalar = driver::compileSource(src, scalarOpts);
    auto streamed = driver::compileSource(src, streamOpts);
    auto vectored = driver::compileSource(src, vecOpts);
    if (!scalar.ok || !streamed.ok || !vectored.ok)
        std::abort();
    int vl = 0;
    for (const auto &r : vectored.vectorizeReports)
        vl += r.loopsVectorized;

    std::printf("Ablation: VEU vectorization of c[i] = a[i] + b[i] "
                "(n=2000, kernel x8)\n");
    std::printf("(memory: 12 ports, SCU burst 4, 64-entry FIFOs; %d "
                "loop(s) vectorized)\n\n", vl);
    std::printf("%10s %14s %14s %16s\n", "VEU lanes", "scalar",
                "streamed", "stream+vector");
    for (int lanes : {1, 2, 4, 8}) {
        wmsim::SimConfig cfg;
        cfg.veuLanes = lanes;
        cfg.memPorts = 12;
        cfg.scuBurst = 4;
        cfg.dataFifoDepth = 64;
        cfg.maxCycles = 1'000'000'000ull;
        auto r0 = wmsim::simulate(*scalar.program, cfg);
        auto r1 = wmsim::simulate(*streamed.program, cfg);
        auto r2 = wmsim::simulate(*vectored.program, cfg);
        if (!r0.ok || !r1.ok || !r2.ok)
            std::abort();
        if (r0.returnValue != r2.returnValue)
            std::abort();
        std::printf("%10d %14llu %14llu %16llu\n", lanes,
                    static_cast<unsigned long long>(r0.stats.cycles),
                    static_cast<unsigned long long>(r1.stats.cycles),
                    static_cast<unsigned long long>(r2.stats.cycles));
        report.row("lanes=" + std::to_string(lanes))
            .num("scalar_cycles", static_cast<double>(r0.stats.cycles))
            .num("streamed_cycles",
                 static_cast<double>(r1.stats.cycles))
            .num("vector_cycles",
                 static_cast<double>(r2.stats.cycles));
    }
    std::printf("\nThe streamed-scalar loop is pinned at one element "
                "per cycle by the FEU; the\nVEU scales with its lanes "
                "until the memory system saturates.\n\n");
}

void
BM_VectorizedSimulation(benchmark::State &state)
{
    driver::CompileOptions opts;
    opts.vectorize = true;
    auto cr = driver::compileSource(kernel(500), opts);
    for (auto _ : state) {
        auto res = wmsim::simulate(*cr.program);
        benchmark::DoNotOptimize(res.stats.cycles);
    }
}
BENCHMARK(BM_VectorizedSimulation);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    if (!wsbench::emitJson(jsonOut, "ablation_vector", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
