/**
 * @file
 * Table I: effect of recurrence optimization on execution time.
 *
 * The paper compiled the 5th Livermore loop (array size 100,000) with
 * and without recurrence detection and ran it on five machines:
 *
 *     Sun 3/280 19%, HP 9000/345 12%, VAX 8600 6%, Motorola 88100 7%,
 *     WM 18%.
 *
 * Here the four stock machines are per-instruction timing models over
 * the compiled scalar RTL and WM is the cycle simulator (see DESIGN.md
 * substitution 3). The kernel is repeated so it dominates, as in the
 * paper's timing runs.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "programs/programs.h"
#include "timing/scalar_sim.h"

using namespace wmstream;

namespace {

constexpr int kArraySize = 4000;
constexpr int kReps = 16;

struct Row
{
    std::string machine;
    double improvement;
    int paper;
};

std::vector<Row>
computeTable()
{
    std::string src = programs::livermore5Source(kArraySize, kReps);

    driver::CompileResult scalar[2];
    for (int rec = 0; rec < 2; ++rec) {
        driver::CompileOptions opts;
        opts.target = rtl::MachineKind::Scalar;
        opts.recurrence = rec != 0;
        scalar[rec] = driver::compileSource(src, opts);
        if (!scalar[rec].ok)
            std::abort();
    }

    std::vector<Row> rows;
    const std::pair<timing::CostModel, int> machines[] = {
        {timing::sun3_280Model(), 19},
        {timing::hp9000_345Model(), 12},
        {timing::vax8600Model(), 6},
        {timing::m88100Model(), 7},
    };
    for (const auto &[model, paper] : machines) {
        double cyc[2];
        for (int rec = 0; rec < 2; ++rec) {
            auto res = timing::runScalar(*scalar[rec].program, model,
                                         4'000'000'000ull);
            if (!res.ok)
                std::abort();
            cyc[rec] = res.cycles;
        }
        rows.push_back({model.name, wsbench::pctReduction(cyc[0], cyc[1]),
                        paper});
    }

    double wm[2];
    for (int rec = 0; rec < 2; ++rec) {
        driver::CompileOptions opts;
        opts.recurrence = rec != 0;
        opts.streaming = false; // Table I isolates the recurrence effect
        wm[rec] = static_cast<double>(
            wsbench::runWm(src, opts).stats.cycles);
    }
    rows.push_back({"WM (cycle simulator)",
                    wsbench::pctReduction(wm[0], wm[1]), 18});
    return rows;
}

void
printTable(wsbench::JsonReport &report)
{
    std::printf("Table I. Effect of Recurrence Optimization on Execution "
                "Time\n");
    std::printf("(5th Livermore loop, n=%d, kernel repeated %d times)\n\n",
                kArraySize, kReps);
    std::printf("%-28s %12s %10s\n", "Machine", "measured %", "paper %");
    auto rows = computeTable();
    for (const Row &r : rows) {
        std::printf("%-28s %12.1f %10d\n", r.machine.c_str(),
                    r.improvement, r.paper);
        report.row(r.machine)
            .num("improvement_pct", r.improvement)
            .num("paper_pct", r.paper);
    }
    std::printf("\n");
}

void
BM_CompileLivermore5Scalar(benchmark::State &state)
{
    std::string src = programs::livermore5Source(256, 1);
    for (auto _ : state) {
        driver::CompileOptions opts;
        opts.target = rtl::MachineKind::Scalar;
        auto cr = driver::compileSource(src, opts);
        benchmark::DoNotOptimize(cr.ok);
    }
}
BENCHMARK(BM_CompileLivermore5Scalar);

void
BM_ScalarTimingRun(benchmark::State &state)
{
    driver::CompileOptions opts;
    opts.target = rtl::MachineKind::Scalar;
    auto cr = driver::compileSource(programs::livermore5Source(256, 1),
                                    opts);
    auto model = timing::sun3_280Model();
    for (auto _ : state) {
        auto res = timing::runScalar(*cr.program, model);
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_ScalarTimingRun);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    if (!wsbench::emitJson(jsonOut, "table1_recurrence", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
