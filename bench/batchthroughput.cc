/**
 * @file
 * Batch compile-service throughput: TUs per wall-clock second through
 * serve::runBatch, plus the overhead of fault isolation.
 *
 * Not a paper table — a harness health metric for the batch service
 * (`wmc --batch`). Two tables:
 *
 *  - batch_cold: a healthy all-streamable batch compiled at several
 *    worker counts. The deterministic columns (tus, ok, attempts)
 *    participate in the benchdiff regression gate; "wall_ms" and
 *    "compiles_per_sec" are host-dependent and excluded (see
 *    tools/benchdiff.py's HOST_METRIC_MARKERS).
 *
 *  - batch_degraded: the same batch with every fourth TU poisoned
 *    (alternating injected panics and verifier bugs), pinning the
 *    ladder's deterministic work: attempts, demotions, quarantined.
 *    A regression here means the retry/demotion policy changed
 *    silently.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "obs/pass_profiler.h"
#include "programs/programs.h"
#include "serve/batch.h"

using namespace wmstream;

namespace {

constexpr int kTus = 24;

/** The benched batch: kTus streamable kernels of varying size. */
std::vector<serve::TuJob>
healthyJobs()
{
    std::vector<serve::TuJob> jobs;
    for (int i = 0; i < kTus; ++i) {
        serve::TuJob j;
        j.id = "tu-" + std::to_string(i) + ".c";
        j.source = programs::dotProductSource(16 + 16 * (i % 8));
        jobs.push_back(std::move(j));
    }
    return jobs;
}

/** healthyJobs() with every fourth TU poisoned. */
std::vector<serve::TuJob>
poisonedJobs()
{
    auto jobs = healthyJobs();
    for (size_t i = 3; i < jobs.size(); i += 4) {
        if ((i / 4) % 2 == 0)
            jobs[i].injectPanic = true;
        else
            jobs[i].injectVerifierBug = true;
    }
    return jobs;
}

serve::BatchOptions
batchOptions(int workers)
{
    serve::BatchOptions bo;
    bo.base.verify = driver::VerifyMode::Each;
    bo.jobs = workers;
    bo.backoffBaseMs = 0;
    return bo;
}

void
printTable(wsbench::JsonReport &report)
{
    std::printf("Batch compile service throughput (%d TUs, verify "
                "each).\n\n",
                kTus);
    std::printf("%-20s %6s %6s %10s %10s %10s %12s\n", "Batch", "ok",
                "quar", "attempts", "demotions", "wall ms",
                "compiles/sec");
    for (int workers : {1, 4}) {
        for (bool degraded : {false, true}) {
            auto jobs = degraded ? poisonedJobs() : healthyJobs();
            obs::PhaseTimer timer;
            auto rep = serve::runBatch(jobs, batchOptions(workers));
            double ms = timer.elapsedMs();
            double rate =
                ms > 0.0 ? static_cast<double>(rep.attempts) /
                               (ms / 1000.0)
                         : 0.0;
            std::string label =
                std::string(degraded ? "batch_degraded" : "batch_cold") +
                ".j" + std::to_string(workers);
            std::printf("%-20s %6d %6d %10lld %10d %10.2f %12.0f\n",
                        label.c_str(), rep.ok, rep.quarantined(),
                        static_cast<long long>(rep.attempts),
                        rep.demotions, ms, rate);
            report.row(label)
                .num("tus", static_cast<double>(rep.total))
                .num("ok", static_cast<double>(rep.ok))
                .num("ok_degraded", static_cast<double>(rep.okDegraded))
                .num("failed", static_cast<double>(rep.failed))
                .num("quarantined",
                     static_cast<double>(rep.quarantined()))
                .num("attempts", static_cast<double>(rep.attempts))
                .num("demotions", static_cast<double>(rep.demotions))
                .num("wall_ms", ms)
                .num("compiles_per_sec", rate);
        }
    }
    std::printf("\n");
}

/** Throughput of the batch runner proper (healthy TUs). */
void
BM_BatchCompileHealthy(benchmark::State &state)
{
    auto jobs = healthyJobs();
    auto bo = batchOptions(static_cast<int>(state.range(0)));
    int64_t compiles = 0;
    for (auto _ : state) {
        auto rep = serve::runBatch(jobs, bo);
        compiles += rep.attempts;
        benchmark::DoNotOptimize(rep.ok);
    }
    state.counters["compiles_per_sec"] = benchmark::Counter(
        static_cast<double>(compiles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchCompileHealthy)->Arg(1)->Arg(4);

/** The fault-isolation overhead: same batch, every fourth TU bad. */
void
BM_BatchCompilePoisoned(benchmark::State &state)
{
    auto jobs = poisonedJobs();
    auto bo = batchOptions(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto rep = serve::runBatch(jobs, bo);
        benchmark::DoNotOptimize(rep.quarantined());
    }
}
BENCHMARK(BM_BatchCompilePoisoned)->Arg(1)->Arg(4);

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut = wsbench::extractJsonOutFlag(&argc, argv);
    wsbench::JsonReport report;
    printTable(report);
    if (!wsbench::emitJson(jsonOut, "batchthroughput", report))
        return 1;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
