file(REMOVE_RECURSE
  "CMakeFiles/vectorize_test.dir/vectorize_test.cc.o"
  "CMakeFiles/vectorize_test.dir/vectorize_test.cc.o.d"
  "vectorize_test"
  "vectorize_test.pdb"
  "vectorize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vectorize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
