# Empty compiler generated dependencies file for recurrence_test.
# This may be replaced when dependencies are built.
