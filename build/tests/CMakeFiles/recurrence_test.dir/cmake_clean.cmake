file(REMOVE_RECURSE
  "CMakeFiles/recurrence_test.dir/recurrence_test.cc.o"
  "CMakeFiles/recurrence_test.dir/recurrence_test.cc.o.d"
  "recurrence_test"
  "recurrence_test.pdb"
  "recurrence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurrence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
