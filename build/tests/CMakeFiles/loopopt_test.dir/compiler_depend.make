# Empty compiler generated dependencies file for loopopt_test.
# This may be replaced when dependencies are built.
