file(REMOVE_RECURSE
  "CMakeFiles/loopopt_test.dir/loopopt_test.cc.o"
  "CMakeFiles/loopopt_test.dir/loopopt_test.cc.o.d"
  "loopopt_test"
  "loopopt_test.pdb"
  "loopopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loopopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
