file(REMOVE_RECURSE
  "CMakeFiles/wmsim_test.dir/wmsim_test.cc.o"
  "CMakeFiles/wmsim_test.dir/wmsim_test.cc.o.d"
  "wmsim_test"
  "wmsim_test.pdb"
  "wmsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
