# Empty compiler generated dependencies file for wmsim_test.
# This may be replaced when dependencies are built.
