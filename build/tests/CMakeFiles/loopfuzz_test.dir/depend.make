# Empty dependencies file for loopfuzz_test.
# This may be replaced when dependencies are built.
