file(REMOVE_RECURSE
  "CMakeFiles/loopfuzz_test.dir/loopfuzz_test.cc.o"
  "CMakeFiles/loopfuzz_test.dir/loopfuzz_test.cc.o.d"
  "loopfuzz_test"
  "loopfuzz_test.pdb"
  "loopfuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loopfuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
