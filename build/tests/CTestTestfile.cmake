# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/loopopt_test[1]_include.cmake")
include("/root/repo/build/tests/recurrence_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/wmsim_test[1]_include.cmake")
include("/root/repo/build/tests/lowering_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/expander_test[1]_include.cmake")
include("/root/repo/build/tests/loopfuzz_test[1]_include.cmake")
include("/root/repo/build/tests/vectorize_test[1]_include.cmake")
