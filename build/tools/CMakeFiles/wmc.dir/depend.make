# Empty dependencies file for wmc.
# This may be replaced when dependencies are built.
