file(REMOVE_RECURSE
  "CMakeFiles/wmc.dir/wmc.cc.o"
  "CMakeFiles/wmc.dir/wmc.cc.o.d"
  "wmc"
  "wmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
