file(REMOVE_RECURSE
  "CMakeFiles/ws_streaming.dir/streaming.cc.o"
  "CMakeFiles/ws_streaming.dir/streaming.cc.o.d"
  "CMakeFiles/ws_streaming.dir/vectorize.cc.o"
  "CMakeFiles/ws_streaming.dir/vectorize.cc.o.d"
  "libws_streaming.a"
  "libws_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
