# Empty dependencies file for ws_streaming.
# This may be replaced when dependencies are built.
