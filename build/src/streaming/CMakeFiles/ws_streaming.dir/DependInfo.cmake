
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/streaming/streaming.cc" "src/streaming/CMakeFiles/ws_streaming.dir/streaming.cc.o" "gcc" "src/streaming/CMakeFiles/ws_streaming.dir/streaming.cc.o.d"
  "/root/repo/src/streaming/vectorize.cc" "src/streaming/CMakeFiles/ws_streaming.dir/vectorize.cc.o" "gcc" "src/streaming/CMakeFiles/ws_streaming.dir/vectorize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/recurrence/CMakeFiles/ws_recurrence.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ws_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/ws_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ws_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
