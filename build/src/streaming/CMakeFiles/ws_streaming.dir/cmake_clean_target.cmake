file(REMOVE_RECURSE
  "libws_streaming.a"
)
