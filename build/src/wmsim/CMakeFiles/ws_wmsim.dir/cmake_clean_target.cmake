file(REMOVE_RECURSE
  "libws_wmsim.a"
)
