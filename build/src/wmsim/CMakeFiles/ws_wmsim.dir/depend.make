# Empty dependencies file for ws_wmsim.
# This may be replaced when dependencies are built.
