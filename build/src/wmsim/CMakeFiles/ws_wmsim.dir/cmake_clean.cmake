file(REMOVE_RECURSE
  "CMakeFiles/ws_wmsim.dir/sim.cc.o"
  "CMakeFiles/ws_wmsim.dir/sim.cc.o.d"
  "libws_wmsim.a"
  "libws_wmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_wmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
