file(REMOVE_RECURSE
  "libws_frontend.a"
)
