file(REMOVE_RECURSE
  "CMakeFiles/ws_frontend.dir/lexer.cc.o"
  "CMakeFiles/ws_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/ws_frontend.dir/parser.cc.o"
  "CMakeFiles/ws_frontend.dir/parser.cc.o.d"
  "CMakeFiles/ws_frontend.dir/sema.cc.o"
  "CMakeFiles/ws_frontend.dir/sema.cc.o.d"
  "CMakeFiles/ws_frontend.dir/type.cc.o"
  "CMakeFiles/ws_frontend.dir/type.cc.o.d"
  "libws_frontend.a"
  "libws_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
