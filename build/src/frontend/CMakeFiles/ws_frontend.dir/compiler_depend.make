# Empty compiler generated dependencies file for ws_frontend.
# This may be replaced when dependencies are built.
