# Empty compiler generated dependencies file for ws_cfg.
# This may be replaced when dependencies are built.
