file(REMOVE_RECURSE
  "libws_cfg.a"
)
