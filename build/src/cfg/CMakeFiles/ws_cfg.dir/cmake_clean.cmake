file(REMOVE_RECURSE
  "CMakeFiles/ws_cfg.dir/dominators.cc.o"
  "CMakeFiles/ws_cfg.dir/dominators.cc.o.d"
  "CMakeFiles/ws_cfg.dir/liveness.cc.o"
  "CMakeFiles/ws_cfg.dir/liveness.cc.o.d"
  "CMakeFiles/ws_cfg.dir/loops.cc.o"
  "CMakeFiles/ws_cfg.dir/loops.cc.o.d"
  "libws_cfg.a"
  "libws_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
