file(REMOVE_RECURSE
  "libws_recurrence.a"
)
