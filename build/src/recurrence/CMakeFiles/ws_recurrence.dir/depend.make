# Empty dependencies file for ws_recurrence.
# This may be replaced when dependencies are built.
