file(REMOVE_RECURSE
  "CMakeFiles/ws_recurrence.dir/partitions.cc.o"
  "CMakeFiles/ws_recurrence.dir/partitions.cc.o.d"
  "CMakeFiles/ws_recurrence.dir/recurrence.cc.o"
  "CMakeFiles/ws_recurrence.dir/recurrence.cc.o.d"
  "libws_recurrence.a"
  "libws_recurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_recurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
