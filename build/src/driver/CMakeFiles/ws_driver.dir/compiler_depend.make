# Empty compiler generated dependencies file for ws_driver.
# This may be replaced when dependencies are built.
