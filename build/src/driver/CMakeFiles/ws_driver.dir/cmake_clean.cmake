file(REMOVE_RECURSE
  "CMakeFiles/ws_driver.dir/compiler.cc.o"
  "CMakeFiles/ws_driver.dir/compiler.cc.o.d"
  "libws_driver.a"
  "libws_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
