file(REMOVE_RECURSE
  "libws_driver.a"
)
