# Empty dependencies file for ws_programs.
# This may be replaced when dependencies are built.
