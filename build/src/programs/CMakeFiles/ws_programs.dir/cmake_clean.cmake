file(REMOVE_RECURSE
  "CMakeFiles/ws_programs.dir/programs.cc.o"
  "CMakeFiles/ws_programs.dir/programs.cc.o.d"
  "libws_programs.a"
  "libws_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
