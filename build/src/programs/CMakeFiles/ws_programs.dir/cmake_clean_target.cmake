file(REMOVE_RECURSE
  "libws_programs.a"
)
