# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("frontend")
subdirs("interp")
subdirs("rtl")
subdirs("cfg")
subdirs("expand")
subdirs("opt")
subdirs("recurrence")
subdirs("streaming")
subdirs("wm")
subdirs("m68k")
subdirs("wmsim")
subdirs("timing")
subdirs("driver")
subdirs("programs")
