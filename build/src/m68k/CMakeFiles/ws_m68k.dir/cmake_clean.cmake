file(REMOVE_RECURSE
  "CMakeFiles/ws_m68k.dir/printer.cc.o"
  "CMakeFiles/ws_m68k.dir/printer.cc.o.d"
  "libws_m68k.a"
  "libws_m68k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_m68k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
