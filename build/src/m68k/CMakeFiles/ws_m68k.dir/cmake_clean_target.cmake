file(REMOVE_RECURSE
  "libws_m68k.a"
)
