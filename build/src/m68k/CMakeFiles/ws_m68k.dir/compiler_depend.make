# Empty compiler generated dependencies file for ws_m68k.
# This may be replaced when dependencies are built.
