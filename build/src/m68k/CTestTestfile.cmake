# CMake generated Testfile for 
# Source directory: /root/repo/src/m68k
# Build directory: /root/repo/build/src/m68k
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
