# Empty dependencies file for ws_interp.
# This may be replaced when dependencies are built.
