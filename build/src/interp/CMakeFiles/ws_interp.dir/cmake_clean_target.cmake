file(REMOVE_RECURSE
  "libws_interp.a"
)
