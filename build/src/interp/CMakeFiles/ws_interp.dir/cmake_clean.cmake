file(REMOVE_RECURSE
  "CMakeFiles/ws_interp.dir/interp.cc.o"
  "CMakeFiles/ws_interp.dir/interp.cc.o.d"
  "libws_interp.a"
  "libws_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
