file(REMOVE_RECURSE
  "libws_support.a"
)
