file(REMOVE_RECURSE
  "CMakeFiles/ws_opt.dir/anticipate.cc.o"
  "CMakeFiles/ws_opt.dir/anticipate.cc.o.d"
  "CMakeFiles/ws_opt.dir/branchopt.cc.o"
  "CMakeFiles/ws_opt.dir/branchopt.cc.o.d"
  "CMakeFiles/ws_opt.dir/combine.cc.o"
  "CMakeFiles/ws_opt.dir/combine.cc.o.d"
  "CMakeFiles/ws_opt.dir/copyprop.cc.o"
  "CMakeFiles/ws_opt.dir/copyprop.cc.o.d"
  "CMakeFiles/ws_opt.dir/cse.cc.o"
  "CMakeFiles/ws_opt.dir/cse.cc.o.d"
  "CMakeFiles/ws_opt.dir/dce.cc.o"
  "CMakeFiles/ws_opt.dir/dce.cc.o.d"
  "CMakeFiles/ws_opt.dir/indvars.cc.o"
  "CMakeFiles/ws_opt.dir/indvars.cc.o.d"
  "CMakeFiles/ws_opt.dir/legal.cc.o"
  "CMakeFiles/ws_opt.dir/legal.cc.o.d"
  "CMakeFiles/ws_opt.dir/legalize.cc.o"
  "CMakeFiles/ws_opt.dir/legalize.cc.o.d"
  "CMakeFiles/ws_opt.dir/licm.cc.o"
  "CMakeFiles/ws_opt.dir/licm.cc.o.d"
  "CMakeFiles/ws_opt.dir/pipeline.cc.o"
  "CMakeFiles/ws_opt.dir/pipeline.cc.o.d"
  "CMakeFiles/ws_opt.dir/regalloc.cc.o"
  "CMakeFiles/ws_opt.dir/regalloc.cc.o.d"
  "CMakeFiles/ws_opt.dir/strength.cc.o"
  "CMakeFiles/ws_opt.dir/strength.cc.o.d"
  "libws_opt.a"
  "libws_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
