file(REMOVE_RECURSE
  "libws_opt.a"
)
