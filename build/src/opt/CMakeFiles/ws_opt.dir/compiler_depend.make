# Empty compiler generated dependencies file for ws_opt.
# This may be replaced when dependencies are built.
