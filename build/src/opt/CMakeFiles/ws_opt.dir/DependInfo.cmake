
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/anticipate.cc" "src/opt/CMakeFiles/ws_opt.dir/anticipate.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/anticipate.cc.o.d"
  "/root/repo/src/opt/branchopt.cc" "src/opt/CMakeFiles/ws_opt.dir/branchopt.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/branchopt.cc.o.d"
  "/root/repo/src/opt/combine.cc" "src/opt/CMakeFiles/ws_opt.dir/combine.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/combine.cc.o.d"
  "/root/repo/src/opt/copyprop.cc" "src/opt/CMakeFiles/ws_opt.dir/copyprop.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/copyprop.cc.o.d"
  "/root/repo/src/opt/cse.cc" "src/opt/CMakeFiles/ws_opt.dir/cse.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/cse.cc.o.d"
  "/root/repo/src/opt/dce.cc" "src/opt/CMakeFiles/ws_opt.dir/dce.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/dce.cc.o.d"
  "/root/repo/src/opt/indvars.cc" "src/opt/CMakeFiles/ws_opt.dir/indvars.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/indvars.cc.o.d"
  "/root/repo/src/opt/legal.cc" "src/opt/CMakeFiles/ws_opt.dir/legal.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/legal.cc.o.d"
  "/root/repo/src/opt/legalize.cc" "src/opt/CMakeFiles/ws_opt.dir/legalize.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/legalize.cc.o.d"
  "/root/repo/src/opt/licm.cc" "src/opt/CMakeFiles/ws_opt.dir/licm.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/licm.cc.o.d"
  "/root/repo/src/opt/pipeline.cc" "src/opt/CMakeFiles/ws_opt.dir/pipeline.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/pipeline.cc.o.d"
  "/root/repo/src/opt/regalloc.cc" "src/opt/CMakeFiles/ws_opt.dir/regalloc.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/regalloc.cc.o.d"
  "/root/repo/src/opt/strength.cc" "src/opt/CMakeFiles/ws_opt.dir/strength.cc.o" "gcc" "src/opt/CMakeFiles/ws_opt.dir/strength.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/ws_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ws_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
