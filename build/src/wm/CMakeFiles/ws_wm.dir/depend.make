# Empty dependencies file for ws_wm.
# This may be replaced when dependencies are built.
