file(REMOVE_RECURSE
  "libws_wm.a"
)
