file(REMOVE_RECURSE
  "CMakeFiles/ws_wm.dir/lowering.cc.o"
  "CMakeFiles/ws_wm.dir/lowering.cc.o.d"
  "CMakeFiles/ws_wm.dir/printer.cc.o"
  "CMakeFiles/ws_wm.dir/printer.cc.o.d"
  "libws_wm.a"
  "libws_wm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_wm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
