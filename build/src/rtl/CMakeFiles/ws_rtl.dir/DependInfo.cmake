
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/expr.cc" "src/rtl/CMakeFiles/ws_rtl.dir/expr.cc.o" "gcc" "src/rtl/CMakeFiles/ws_rtl.dir/expr.cc.o.d"
  "/root/repo/src/rtl/inst.cc" "src/rtl/CMakeFiles/ws_rtl.dir/inst.cc.o" "gcc" "src/rtl/CMakeFiles/ws_rtl.dir/inst.cc.o.d"
  "/root/repo/src/rtl/machine.cc" "src/rtl/CMakeFiles/ws_rtl.dir/machine.cc.o" "gcc" "src/rtl/CMakeFiles/ws_rtl.dir/machine.cc.o.d"
  "/root/repo/src/rtl/program.cc" "src/rtl/CMakeFiles/ws_rtl.dir/program.cc.o" "gcc" "src/rtl/CMakeFiles/ws_rtl.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
