file(REMOVE_RECURSE
  "libws_rtl.a"
)
