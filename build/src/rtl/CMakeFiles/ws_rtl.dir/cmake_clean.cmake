file(REMOVE_RECURSE
  "CMakeFiles/ws_rtl.dir/expr.cc.o"
  "CMakeFiles/ws_rtl.dir/expr.cc.o.d"
  "CMakeFiles/ws_rtl.dir/inst.cc.o"
  "CMakeFiles/ws_rtl.dir/inst.cc.o.d"
  "CMakeFiles/ws_rtl.dir/machine.cc.o"
  "CMakeFiles/ws_rtl.dir/machine.cc.o.d"
  "CMakeFiles/ws_rtl.dir/program.cc.o"
  "CMakeFiles/ws_rtl.dir/program.cc.o.d"
  "libws_rtl.a"
  "libws_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
