# Empty compiler generated dependencies file for ws_rtl.
# This may be replaced when dependencies are built.
