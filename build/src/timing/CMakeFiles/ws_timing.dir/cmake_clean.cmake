file(REMOVE_RECURSE
  "CMakeFiles/ws_timing.dir/scalar_sim.cc.o"
  "CMakeFiles/ws_timing.dir/scalar_sim.cc.o.d"
  "libws_timing.a"
  "libws_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
