file(REMOVE_RECURSE
  "libws_timing.a"
)
