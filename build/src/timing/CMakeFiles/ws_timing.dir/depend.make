# Empty dependencies file for ws_timing.
# This may be replaced when dependencies are built.
