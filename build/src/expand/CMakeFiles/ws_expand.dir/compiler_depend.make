# Empty compiler generated dependencies file for ws_expand.
# This may be replaced when dependencies are built.
