file(REMOVE_RECURSE
  "CMakeFiles/ws_expand.dir/expander.cc.o"
  "CMakeFiles/ws_expand.dir/expander.cc.o.d"
  "libws_expand.a"
  "libws_expand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_expand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
