file(REMOVE_RECURSE
  "libws_expand.a"
)
