
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expand/expander.cc" "src/expand/CMakeFiles/ws_expand.dir/expander.cc.o" "gcc" "src/expand/CMakeFiles/ws_expand.dir/expander.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/ws_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ws_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ws_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
