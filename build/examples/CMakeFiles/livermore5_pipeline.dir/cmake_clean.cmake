file(REMOVE_RECURSE
  "CMakeFiles/livermore5_pipeline.dir/livermore5_pipeline.cpp.o"
  "CMakeFiles/livermore5_pipeline.dir/livermore5_pipeline.cpp.o.d"
  "livermore5_pipeline"
  "livermore5_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livermore5_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
