# Empty compiler generated dependencies file for livermore5_pipeline.
# This may be replaced when dependencies are built.
