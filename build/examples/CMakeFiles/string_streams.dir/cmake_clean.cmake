file(REMOVE_RECURSE
  "CMakeFiles/string_streams.dir/string_streams.cpp.o"
  "CMakeFiles/string_streams.dir/string_streams.cpp.o.d"
  "string_streams"
  "string_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
