# Empty compiler generated dependencies file for string_streams.
# This may be replaced when dependencies are built.
