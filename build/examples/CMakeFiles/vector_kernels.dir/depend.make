# Empty dependencies file for vector_kernels.
# This may be replaced when dependencies are built.
