file(REMOVE_RECURSE
  "CMakeFiles/vector_kernels.dir/vector_kernels.cpp.o"
  "CMakeFiles/vector_kernels.dir/vector_kernels.cpp.o.d"
  "vector_kernels"
  "vector_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
