file(REMOVE_RECURSE
  "CMakeFiles/retarget_68020.dir/retarget_68020.cpp.o"
  "CMakeFiles/retarget_68020.dir/retarget_68020.cpp.o.d"
  "retarget_68020"
  "retarget_68020.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retarget_68020.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
