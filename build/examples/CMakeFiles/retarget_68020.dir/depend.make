# Empty dependencies file for retarget_68020.
# This may be replaced when dependencies are built.
