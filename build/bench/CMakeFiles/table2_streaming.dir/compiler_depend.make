# Empty compiler generated dependencies file for table2_streaming.
# This may be replaced when dependencies are built.
