file(REMOVE_RECURSE
  "CMakeFiles/table2_streaming.dir/table2_streaming.cc.o"
  "CMakeFiles/table2_streaming.dir/table2_streaming.cc.o.d"
  "table2_streaming"
  "table2_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
