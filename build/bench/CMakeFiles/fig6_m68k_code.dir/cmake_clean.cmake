file(REMOVE_RECURSE
  "CMakeFiles/fig6_m68k_code.dir/fig6_m68k_code.cc.o"
  "CMakeFiles/fig6_m68k_code.dir/fig6_m68k_code.cc.o.d"
  "fig6_m68k_code"
  "fig6_m68k_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_m68k_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
