# Empty compiler generated dependencies file for fig6_m68k_code.
# This may be replaced when dependencies are built.
