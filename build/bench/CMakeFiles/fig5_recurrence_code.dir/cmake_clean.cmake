file(REMOVE_RECURSE
  "CMakeFiles/fig5_recurrence_code.dir/fig5_recurrence_code.cc.o"
  "CMakeFiles/fig5_recurrence_code.dir/fig5_recurrence_code.cc.o.d"
  "fig5_recurrence_code"
  "fig5_recurrence_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_recurrence_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
