# Empty compiler generated dependencies file for fig5_recurrence_code.
# This may be replaced when dependencies are built.
