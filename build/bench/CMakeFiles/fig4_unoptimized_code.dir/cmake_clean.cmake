file(REMOVE_RECURSE
  "CMakeFiles/fig4_unoptimized_code.dir/fig4_unoptimized_code.cc.o"
  "CMakeFiles/fig4_unoptimized_code.dir/fig4_unoptimized_code.cc.o.d"
  "fig4_unoptimized_code"
  "fig4_unoptimized_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_unoptimized_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
