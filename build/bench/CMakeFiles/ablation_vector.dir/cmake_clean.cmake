file(REMOVE_RECURSE
  "CMakeFiles/ablation_vector.dir/ablation_vector.cc.o"
  "CMakeFiles/ablation_vector.dir/ablation_vector.cc.o.d"
  "ablation_vector"
  "ablation_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
