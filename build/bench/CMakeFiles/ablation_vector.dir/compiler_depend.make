# Empty compiler generated dependencies file for ablation_vector.
# This may be replaced when dependencies are built.
