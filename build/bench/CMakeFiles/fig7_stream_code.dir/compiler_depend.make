# Empty compiler generated dependencies file for fig7_stream_code.
# This may be replaced when dependencies are built.
