file(REMOVE_RECURSE
  "CMakeFiles/fig7_stream_code.dir/fig7_stream_code.cc.o"
  "CMakeFiles/fig7_stream_code.dir/fig7_stream_code.cc.o.d"
  "fig7_stream_code"
  "fig7_stream_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_stream_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
