# Empty dependencies file for ablation_degree.
# This may be replaced when dependencies are built.
