# Empty compiler generated dependencies file for table1_recurrence.
# This may be replaced when dependencies are built.
