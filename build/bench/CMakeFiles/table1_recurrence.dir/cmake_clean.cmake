file(REMOVE_RECURSE
  "CMakeFiles/table1_recurrence.dir/table1_recurrence.cc.o"
  "CMakeFiles/table1_recurrence.dir/table1_recurrence.cc.o.d"
  "table1_recurrence"
  "table1_recurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_recurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
