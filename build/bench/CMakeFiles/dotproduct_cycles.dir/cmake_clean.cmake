file(REMOVE_RECURSE
  "CMakeFiles/dotproduct_cycles.dir/dotproduct_cycles.cc.o"
  "CMakeFiles/dotproduct_cycles.dir/dotproduct_cycles.cc.o.d"
  "dotproduct_cycles"
  "dotproduct_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dotproduct_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
