# Empty dependencies file for dotproduct_cycles.
# This may be replaced when dependencies are built.
