file(REMOVE_RECURSE
  "CMakeFiles/ablation_fifodepth.dir/ablation_fifodepth.cc.o"
  "CMakeFiles/ablation_fifodepth.dir/ablation_fifodepth.cc.o.d"
  "ablation_fifodepth"
  "ablation_fifodepth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fifodepth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
