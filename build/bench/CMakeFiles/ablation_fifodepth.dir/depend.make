# Empty dependencies file for ablation_fifodepth.
# This may be replaced when dependencies are built.
