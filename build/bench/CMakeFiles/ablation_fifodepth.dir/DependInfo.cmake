
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_fifodepth.cc" "bench/CMakeFiles/ablation_fifodepth.dir/ablation_fifodepth.cc.o" "gcc" "bench/CMakeFiles/ablation_fifodepth.dir/ablation_fifodepth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/ws_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/programs/CMakeFiles/ws_programs.dir/DependInfo.cmake"
  "/root/repo/build/src/wmsim/CMakeFiles/ws_wmsim.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/ws_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/m68k/CMakeFiles/ws_m68k.dir/DependInfo.cmake"
  "/root/repo/build/src/wm/CMakeFiles/ws_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/ws_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/recurrence/CMakeFiles/ws_recurrence.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ws_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/expand/CMakeFiles/ws_expand.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/ws_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ws_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ws_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ws_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
