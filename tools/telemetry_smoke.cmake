# Telemetry smoke: run wmc with the full flight-recorder surface on
# one example and validate every artifact it produces:
#
#   - the run manifest parses as JSON and carries schema_version 1 /
#     kind "run_manifest";
#   - the Prometheus exposition exists and contains the wm_run_info
#     identity gauge and at least one wm_sim_ counter;
#   - `wmreport --timeline MANIFEST` renders it, re-deriving the
#     acceptance invariant (per-window samples sum EXACTLY to the
#     end-of-run aggregates for every unit and stall cause) and
#     exiting nonzero on any schema or attribution-sum violation.
#
# Invoked by the telemetry-smoke-* ctests; see tools/CMakeLists.txt.
file(MAKE_DIRECTORY ${OUT_DIR})
set(MANIFEST ${OUT_DIR}/manifest.json)
set(METRICS ${OUT_DIR}/metrics.prom)
execute_process(
    COMMAND ${WMC} --run --sample-window=64
            --manifest=${MANIFEST} --metrics-out=${METRICS} ${SOURCE}
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
            "wmc failed on ${SOURCE} (rc=${run_rc}):\n${run_out}${run_err}")
endif()
foreach(artifact ${MANIFEST} ${METRICS})
    if(NOT EXISTS ${artifact})
        message(FATAL_ERROR "wmc did not write ${artifact}")
    endif()
endforeach()

if(PYTHON)
    execute_process(
        COMMAND ${PYTHON} -c
"import json, sys
d = json.load(open(sys.argv[1]))
assert d.get('schema_version') == 1, 'manifest schema_version != 1'
assert d.get('kind') == 'run_manifest', 'manifest kind mismatch'
for section in ('host', 'remarks', 'stats', 'timeseries'):
    assert section in d, 'manifest missing ' + section
assert d['timeseries'].get('schema_version') == 1
print('manifest ok:', len(d['timeseries']['samples']), 'windows')"
                ${MANIFEST}
        RESULT_VARIABLE json_rc
        OUTPUT_VARIABLE json_out
        ERROR_VARIABLE json_err)
    if(NOT json_rc EQUAL 0)
        message(FATAL_ERROR "bad manifest ${MANIFEST}:\n${json_err}")
    endif()
    message(STATUS "${json_out}")
endif()

file(READ ${METRICS} metrics_text)
if(NOT metrics_text MATCHES "wm_run_info")
    message(FATAL_ERROR "${METRICS} lacks the wm_run_info gauge")
endif()
if(NOT metrics_text MATCHES "wm_sim_")
    message(FATAL_ERROR "${METRICS} lacks wm_sim_ counters")
endif()

execute_process(
    COMMAND ${WMREPORT} --timeline ${MANIFEST}
    RESULT_VARIABLE tl_rc
    OUTPUT_VARIABLE tl_out
    ERROR_VARIABLE tl_err)
if(NOT tl_rc EQUAL 0)
    message(FATAL_ERROR
            "wmreport --timeline failed (rc=${tl_rc}) — schema or "
            "attribution-sum violation:\n${tl_out}${tl_err}")
endif()
message(STATUS "timeline ok:\n${tl_out}")
