# Critical-path smoke: run wmc with the critical-path profiler on one
# example and enforce the acceptance invariants on the artifacts:
#
#   - the manifest carries a "critical_path" section whose rows sum
#     EXACTLY to the total simulated cycle count (the attribution
#     partitions (0, cycles] — no cycle unaccounted, none counted
#     twice);
#   - the what-if array carries the standard scenarios, and every
#     validated row's predicted speedup is within 10% of the
#     re-simulated speedup (the paper-facing acceptance criterion);
#   - `wmreport --critpath MANIFEST` renders the bottleneck tree,
#     re-deriving the same sum from the document and exiting nonzero
#     on any mismatch.
#
# Invoked by the critpath-smoke-* ctests; see tools/CMakeLists.txt.
file(MAKE_DIRECTORY ${OUT_DIR})
set(MANIFEST ${OUT_DIR}/manifest.json)
execute_process(
    COMMAND ${WMC} --run --critpath --critpath-validate
            --manifest=${MANIFEST} ${SOURCE}
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
            "wmc failed on ${SOURCE} (rc=${run_rc}):\n${run_out}${run_err}")
endif()
if(NOT EXISTS ${MANIFEST})
    message(FATAL_ERROR "wmc did not write ${MANIFEST}")
endif()

if(PYTHON)
    execute_process(
        COMMAND ${PYTHON} -c
"import json, sys
d = json.load(open(sys.argv[1]))
cp = d['critical_path']
assert cp.get('schema_version') == 1, 'critical_path schema_version != 1'
assert cp.get('kind') == 'critical_path', 'critical_path kind mismatch'
assert cp['valid'], 'recording truncated or unanalyzable'
total = cp['total_cycles']
sim_cycles = d['stats']['sim']['cycles']
assert total == sim_cycles, 'end event at %d, run took %d' % (total, sim_cycles)
row_sum = sum(r['cycles'] for r in cp['rows'])
assert cp['attributed_cycles'] == total, \
    'attributed %d != total %d' % (cp['attributed_cycles'], total)
assert row_sum == total, 'rows sum to %d, total is %d' % (row_sum, total)
names = [w['name'] for w in cp['what_if']]
for want in ('fifo_depth_plus_8', 'zero_latency_scu'):
    assert want in names, 'missing what-if scenario ' + want
validated = 0
for w in cp['what_if']:
    if not w.get('validated'):
        continue
    validated += 1
    assert w['error_pct'] <= 10.0, \
        '%s: predicted %.3fx vs measured %.3fx (%.1f%% err)' % (
            w['name'], w['predicted_speedup'], w['measured_speedup'],
            w['error_pct'])
print('critpath ok: %d cycles over %d classes, %d scenarios validated'
      % (total, len(cp['rows']), validated))"
                ${MANIFEST}
        RESULT_VARIABLE json_rc
        OUTPUT_VARIABLE json_out
        ERROR_VARIABLE json_err)
    if(NOT json_rc EQUAL 0)
        message(FATAL_ERROR "bad critical_path in ${MANIFEST}:\n${json_err}")
    endif()
    message(STATUS "${json_out}")
endif()

execute_process(
    COMMAND ${WMREPORT} --critpath ${MANIFEST}
    RESULT_VARIABLE cp_rc
    OUTPUT_VARIABLE cp_out
    ERROR_VARIABLE cp_err)
if(NOT cp_rc EQUAL 0)
    message(FATAL_ERROR
            "wmreport --critpath failed (rc=${cp_rc}) — schema or "
            "attribution-sum violation:\n${cp_out}${cp_err}")
endif()
message(STATUS "critpath view ok:\n${cp_out}")
