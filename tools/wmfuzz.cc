/**
 * @file
 * wmfuzz — the differential-fuzzing campaign runner.
 *
 * Generates random loop programs from a single seed, compiles each in
 * every CompileOptions configuration for both targets (WM on the
 * cycle simulator, scalar on the executing timing model), and diffs
 * every result against the AST interpreter oracle across N worker
 * threads. Divergences are deduplicated by (pass configuration,
 * divergence signature), delta-debugged down to minimal reproducers,
 * and written out as self-contained .c files plus a JSON campaign
 * report.
 *
 * Exit status: 0 on a clean campaign, 1 if any divergence survives,
 * 2 on usage errors. CI runs the time-boxed smoke mode:
 *
 *   wmfuzz --max-programs=500 --jobs=$(nproc) --seed=1 \
 *          --report-json=campaign.json --repro-dir=repros
 *
 * Usage:
 *   wmfuzz [options]
 *
 * Options:
 *   --seed=S           campaign seed (default 1); the program stream
 *                      is a pure function of the seed, independent of
 *                      --jobs
 *   --max-programs=N   programs to generate (default 1000)
 *   --jobs=N           worker threads (default: hardware concurrency)
 *   --report-json=FILE write the campaign report as JSON; "-" stdout
 *   --repro-dir=DIR    write minimized reproducer .c files here
 *   --no-minimize      keep raw divergences unminimized
 *   --quiet            suppress the per-100-programs progress line
 *   --chaos-seeds=N    arm the chaos determinism oracle: re-run every
 *                      clean WM simulation N more times under seeded
 *                      timing perturbation (memory latency jitter,
 *                      port withholding, fetch-width wobble) and
 *                      report any architectural divergence
 *
 * Hidden (self-test only):
 *   --inject-recurrence-bug   disable the recurrence optimizer's
 *                             same-cell legality check; the campaign
 *                             must catch the resulting miscompiles
 *   --inject-deadlock-bug     start every non-steering input stream
 *                             one element short; the watchdog must
 *                             classify the wedge and the campaign
 *                             must dedup it by wait-for signature
 *   --inject-verifier-bug     drop one input stream's FIFO dequeue;
 *                             the IR-verifier oracle must flag it at
 *                             compile time (verify_error) and the
 *                             campaign must dedup it by violation
 *                             signature
 *
 * Batch-campaign mode (`--batch-campaign`), the fourth fuzzing mode:
 * generate --max-programs TUs, deterministically poison
 * --fault-rate-pct percent of them with the hidden fault-injection
 * flags, compile the whole set through the serve batch runner, and
 * audit fault isolation: healthy TUs must compile bit-identically to
 * solo compiles, panic-poisoned TUs must be quarantined with typed
 * records, verifier-poisoned TUs must be rescued by the degradation
 * ladder (ok_degraded at the no-streaming rung). Exit 0 when every
 * property holds, 1 otherwise.
 *
 *   --batch-campaign          run the batch fault-isolation campaign
 *   --fault-rate-pct=N        percent of TUs to poison (default 5)
 *   --inject-panic-tu         arm unrescuable panic poisoning
 *   --inject-verifier-bug     (with --batch-campaign) arm rescuable
 *                             verifier-bug poisoning
 *   --tu-timeout-ms=N         per-TU deadline forwarded to the batch
 *   --max-retries=N           transient retries (default 2)
 *   --batch-dir=DIR           write the TU set + MANIFEST here so
 *                             `wmc --batch` can replay the campaign
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "fuzz/batch_campaign.h"
#include "fuzz/campaign.h"
#include "obs/json.h"
#include "support/diag.h"

using namespace wmstream;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: wmfuzz [--seed=S] [--max-programs=N] "
                 "[--jobs=N]\n"
                 "              [--report-json=FILE] [--repro-dir=DIR] "
                 "[--no-minimize]\n"
                 "              [--quiet] [--chaos-seeds=N]\n"
                 "       wmfuzz --batch-campaign [--fault-rate-pct=N]\n"
                 "              [--inject-panic-tu] "
                 "[--inject-verifier-bug]\n"
                 "              [--tu-timeout-ms=N] [--max-retries=N] "
                 "[--batch-dir=DIR]\n");
    return 2;
}

bool
parseUint(const char *arg, const char *name, uint64_t *out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    const char *val = arg + n + 1;
    char *end = nullptr;
    unsigned long long v = std::strtoull(val, &end, 10);
    if (end == val || *end != '\0') {
        std::fprintf(stderr, "wmfuzz: bad numeric value in %s\n", arg);
        std::exit(usage());
    }
    *out = v;
    return true;
}

bool
parseString(const char *arg, const char *name, std::string *out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    if (arg[n + 1] == '\0') {
        std::fprintf(stderr, "wmfuzz: empty value in %s\n", arg);
        std::exit(usage());
    }
    *out = arg + n + 1;
    return true;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        std::fputc('\n', stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "wmfuzz: cannot write %s\n", path.c_str());
        return false;
    }
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = n == text.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

/** The `--batch-campaign` mode: fault-isolation audit of the serve
 *  batch runner. */
int
runBatchCampaignMode(const fuzz::BatchCampaignOptions &opts,
                     const std::string &reportJsonPath)
{
    fuzz::BatchCampaignResult res = fuzz::runBatchCampaign(opts);

    if (!reportJsonPath.empty()) {
        obs::JsonWriter w;
        fuzz::writeBatchCampaignJson(w, opts, res);
        if (!writeTextFile(reportJsonPath, w.str()))
            return 1;
    }

    std::FILE *human = reportJsonPath == "-" ? stderr : stdout;
    std::fprintf(
        human,
        "wmfuzz: batch campaign: %d TUs (%d healthy, %d panic-"
        "poisoned, %d verifier-poisoned) in %.1fs (%d jobs, seed "
        "%llu)\n",
        res.tusGenerated, res.healthy, res.poisonedPanic,
        res.poisonedVerify, res.elapsedSeconds, opts.jobs,
        static_cast<unsigned long long>(opts.seed));
    std::fprintf(human, "%s", res.report.summaryText().c_str());
    if (res.clean()) {
        std::fprintf(human,
                     "wmfuzz: batch campaign clean: %d quarantined == "
                     "%d poisoned, healthy TUs bit-identical to solo "
                     "compiles\n",
                     res.report.quarantined(),
                     res.poisonedPanic + res.poisonedVerify);
        return 0;
    }
    std::fprintf(human, "wmfuzz: %d isolation problems:\n",
                 static_cast<int>(res.problems.size()));
    for (const std::string &p : res.problems)
        std::fprintf(human, "  %s\n", p.c_str());
    return 1;
}

} // namespace

static int
fuzzMain(int argc, char **argv)
{
    fuzz::CampaignOptions opts;
    opts.jobs =
        static_cast<int>(std::thread::hardware_concurrency());
    if (opts.jobs < 1)
        opts.jobs = 1;
    opts.progress = true;
    std::string reportJsonPath;
    bool batchCampaign = false;
    fuzz::BatchCampaignOptions batchOpts;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        uint64_t v = 0;
        if (parseUint(a, "--seed", &opts.seed)) {
        } else if (parseUint(a, "--max-programs", &v)) {
            opts.maxPrograms = static_cast<int>(v);
        } else if (parseUint(a, "--jobs", &v)) {
            if (v < 1 || v > 1024) {
                std::fprintf(stderr, "wmfuzz: bad --jobs value\n");
                return usage();
            }
            opts.jobs = static_cast<int>(v);
        } else if (parseString(a, "--report-json", &reportJsonPath)) {
        } else if (parseString(a, "--repro-dir", &opts.reproDir)) {
        } else if (std::strcmp(a, "--no-minimize") == 0) {
            opts.minimize = false;
        } else if (std::strcmp(a, "--quiet") == 0) {
            opts.progress = false;
        } else if (parseUint(a, "--chaos-seeds", &v)) {
            if (v > 10000) {
                std::fprintf(stderr,
                             "wmfuzz: bad --chaos-seeds value\n");
                return usage();
            }
            opts.chaosSeeds = static_cast<int>(v);
        } else if (std::strcmp(a, "--inject-recurrence-bug") == 0) {
            opts.injectRecurrenceBug = true;
        } else if (std::strcmp(a, "--inject-deadlock-bug") == 0) {
            opts.injectStreamCountBug = true;
        } else if (std::strcmp(a, "--inject-verifier-bug") == 0) {
            opts.injectVerifierBug = true;
            batchOpts.injectVerifierBug = true;
        } else if (std::strcmp(a, "--batch-campaign") == 0) {
            batchCampaign = true;
        } else if (std::strcmp(a, "--inject-panic-tu") == 0) {
            batchOpts.injectPanicTu = true;
        } else if (parseUint(a, "--fault-rate-pct", &v)) {
            if (v > 100) {
                std::fprintf(stderr,
                             "wmfuzz: bad --fault-rate-pct value\n");
                return usage();
            }
            batchOpts.faultRatePct = static_cast<int>(v);
        } else if (parseUint(a, "--tu-timeout-ms", &v)) {
            batchOpts.tuTimeoutMs = static_cast<int>(v);
        } else if (parseUint(a, "--max-retries", &v)) {
            batchOpts.maxRetries = static_cast<int>(v);
        } else if (parseString(a, "--batch-dir", &batchOpts.batchDir)) {
        } else {
            std::fprintf(stderr, "wmfuzz: unknown option %s\n", a);
            return usage();
        }
    }
    if (opts.maxPrograms < 1) {
        std::fprintf(stderr, "wmfuzz: --max-programs must be >= 1\n");
        return usage();
    }
    if (batchCampaign) {
        batchOpts.seed = opts.seed;
        batchOpts.numTus = opts.maxPrograms;
        batchOpts.jobs = opts.jobs;
        batchOpts.progress = opts.progress;
        return runBatchCampaignMode(batchOpts, reportJsonPath);
    }

    auto res = fuzz::runCampaign(opts);

    if (!reportJsonPath.empty()) {
        obs::JsonWriter w;
        fuzz::writeCampaignJson(w, opts, res);
        if (!writeTextFile(reportJsonPath, w.str()))
            return 1;
    }

    std::FILE *human = reportJsonPath == "-" ? stderr : stdout;
    std::fprintf(human,
                 "wmfuzz: %d programs x %lld checks in %.1fs "
                 "(%.0f programs/s, %d jobs, seed %llu)\n",
                 res.programsRun,
                 static_cast<long long>(
                     res.programsRun
                         ? res.checksRun / res.programsRun
                         : 0),
                 res.elapsedSeconds,
                 res.elapsedSeconds > 0
                     ? res.programsRun / res.elapsedSeconds
                     : 0.0,
                 opts.jobs,
                 static_cast<unsigned long long>(opts.seed));
    if (res.staticDeadlockFree + res.staticFlagged > 0)
        std::fprintf(human,
                     "wmfuzz: static FIFO verdicts: %lld "
                     "deadlock-free, %lld flagged\n",
                     static_cast<long long>(res.staticDeadlockFree),
                     static_cast<long long>(res.staticFlagged));
    if (res.clean()) {
        std::fprintf(human, "wmfuzz: campaign clean, no divergences\n");
        return 0;
    }
    std::fprintf(human,
                 "wmfuzz: %d raw divergences, %d unique after dedup:\n",
                 res.rawDivergences,
                 static_cast<int>(res.divergences.size()));
    for (const auto &d : res.divergences) {
        std::fprintf(human, "  [%s] %s (+%d duplicates)",
                     fuzz::divergenceKindName(d.kind),
                     d.signature.c_str(), d.duplicates);
        if (!d.reproPath.empty())
            std::fprintf(human, " -> %s", d.reproPath.c_str());
        std::fprintf(human, "\n");
    }
    return 1;
}

/** Translate an escaped InternalError to the historical exit 70 at
 *  the process boundary (see support/diag.h). Campaign workers catch
 *  panics per program; this shim only fires for bugs in the harness
 *  itself. */
int
main(int argc, char **argv)
{
    try {
        return fuzzMain(argc, argv);
    } catch (const InternalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 70;
    }
}
