# Golden-output test for one wmreport view. Runs wmc from inside the
# source's directory with a relative path (so every source location in
# the output is path-independent), renders the requested view, and
# byte-compares stdout against the checked-in golden.
#
# The simulator is deterministic, wmreport prints no wall-clock data,
# and the relative-path trick keeps build-tree paths out — so the
# golden is stable across machines. Regenerate after an intentional
# output change with -DUPDATE=1, then review the diff like any other
# source change.
#
# Arguments: WMC, WMREPORT, SOURCE (absolute), VIEW (e.g. --timeline),
# GOLDEN (checked-in file), OUT_DIR, optional UPDATE.
file(MAKE_DIRECTORY ${OUT_DIR})
set(MANIFEST ${OUT_DIR}/manifest.json)
get_filename_component(src_dir ${SOURCE} DIRECTORY)
get_filename_component(src_name ${SOURCE} NAME)
execute_process(
    COMMAND ${WMC} --run --sample-window=64 --critpath
            --critpath-validate --manifest=${MANIFEST} ${src_name}
    WORKING_DIRECTORY ${src_dir}
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
            "wmc failed on ${src_name} (rc=${run_rc}):\n${run_out}${run_err}")
endif()

execute_process(
    COMMAND ${WMREPORT} ${VIEW} ${MANIFEST}
    RESULT_VARIABLE view_rc
    OUTPUT_VARIABLE view_out
    ERROR_VARIABLE view_err)
if(NOT view_rc EQUAL 0)
    message(FATAL_ERROR
            "wmreport ${VIEW} failed (rc=${view_rc}):\n${view_err}")
endif()

if(UPDATE)
    file(WRITE ${GOLDEN} "${view_out}")
    message(STATUS "updated ${GOLDEN}")
    return()
endif()

if(NOT EXISTS ${GOLDEN})
    message(FATAL_ERROR
            "golden file ${GOLDEN} missing; regenerate with "
            "-DUPDATE=1")
endif()
file(READ ${GOLDEN} want)
if(NOT view_out STREQUAL want)
    set(GOT ${OUT_DIR}/got.txt)
    file(WRITE ${GOT} "${view_out}")
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            ${GOLDEN} ${GOT})
    message(FATAL_ERROR
            "wmreport ${VIEW} output differs from ${GOLDEN}\n"
            "--- got (${GOT}):\n${view_out}\n"
            "--- want:\n${want}\n"
            "If the change is intentional, regenerate with -DUPDATE=1.")
endif()
message(STATUS "golden ok: wmreport ${VIEW} matches ${GOLDEN}")
