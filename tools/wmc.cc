/**
 * @file
 * wmc — the command-line driver for the wmstream compiler.
 *
 * Compiles a mini-C source file for the WM access/execute architecture
 * (or the generic scalar target with 68020 output), optionally runs it
 * on the cycle simulator, and can dump the paper-style
 * memory-reference partition analysis. The observability flags emit
 * machine-readable artifacts: per-unit stall-cause counters and FIFO
 * occupancy histograms as JSON, a Chrome trace_event pipeline trace
 * (load in Perfetto / chrome://tracing), and per-pass compiler
 * profiles.
 *
 * Usage:
 *   wmc [options] file.c
 *
 * Options:
 *   --target=wm|68020     target machine            (default: wm)
 *   --no-opt              disable the classic optimizer phases
 *   --no-recurrence       disable recurrence detection/optimization
 *   --no-streaming        disable streaming
 *   --vectorize           enable VEU vectorization
 *   --min-trip=N          streaming trip-count threshold (default 4)
 *   --print-asm           print the generated assembly
 *   --trace-partitions    print the per-loop partition vectors
 *   --remarks[=text|json] print optimization remarks: every streaming /
 *                         recurrence decision with source location,
 *                         verdict, and reason code (default: text)
 *   --run                 execute on the simulator / timing model
 *   --stats               with --run: print cycle statistics
 *   --stats-json=FILE     with --run: write stats (stall causes, FIFO
 *                         occupancy, per-loop cycles, compile reports)
 *                         as JSON; "-" for stdout
 *   --manifest=FILE       write the unified run manifest: tool
 *                         identity, host throughput (wall-clock,
 *                         simulated cycles/second), remarks, stats,
 *                         and the flight-recorder time series as one
 *                         JSON document; "-" for stdout
 *   --metrics-out=FILE    write run counters and host throughput in
 *                         Prometheus text exposition format
 *   --sample-window=N     flight-recorder window span in simulated
 *                         cycles (default 1024); sampling is on
 *                         whenever --manifest or this flag is given
 *   --trace-out=FILE      with --run: write a Chrome trace-event
 *                         pipeline trace (WM target only); with
 *                         sampling on, adds per-window counter tracks
 *   --profile-passes      print per-pass wall time and RTL
 *                         instruction-count deltas
 *   --mem-latency=N       simulator memory latency    (default 4)
 *   --fifo-depth=N        simulator data FIFO depth   (default 8)
 *   --lanes=N             simulator VEU lanes         (default 4)
 *   --max-cycles=N        simulator cycle budget
 *   --watchdog-window=N   deadlock watchdog no-progress window in
 *                         cycles (0 disables; default 4096)
 *   --chaos-seed=N        nonzero: perturb simulator timing (latency
 *                         jitter, port withholding, fetch-width
 *                         wobble) from seed N; architectural results
 *                         must not change
 *   --fault-report[=text|json]
 *                         with --run: on deadlock/livelock print the
 *                         watchdog's forensic report (blocked units,
 *                         stall causes, wait-for graph, FIFO/stream
 *                         state); text goes to stderr, json to stdout
 *   --critpath[=text|json]
 *                         with --run (WM target): record the causal
 *                         scheduling DAG, attribute every simulated
 *                         cycle to one (unit, stall-cause, loop)
 *                         critical edge (exact sum), predict what-if
 *                         speedups by DAG replay, and print the
 *                         bottleneck table (default: text). The
 *                         manifest gains a "critical_path" section
 *                         and the metrics wm_critpath_* families;
 *                         per-loop "critical-edge" remarks name each
 *                         loop's dominant critical edge; with json
 *                         the document owns stdout (human lines move
 *                         to stderr)
 *   --critpath-validate   with --critpath: re-simulate each
 *                         validatable what-if scenario on the changed
 *                         machine and report prediction error
 *   --verify[=each|final] run the IR verifier (structural validity,
 *                         FIFO discipline, recurrence legality):
 *                         `each` re-checks after expansion and after
 *                         every pass, `final` once at the end
 *                         (default: each). Any violation is an
 *                         internal compiler error: exit 70
 *   --infer-fifo-depth    whole-program static FIFO analysis over the
 *                         lowered WM code: prove deadlock-freedom and
 *                         infer the minimal data-FIFO depth per queue.
 *                         Prints the per-queue requirements table,
 *                         adds a "fifo_requirements" section to
 *                         --stats-json/--manifest, and exits 1 when
 *                         --fifo-depth is below the inferred minimum
 *                         (a configuration error). Compiler-bug
 *                         findings (static-starved-pop,
 *                         static-unproven) exit 70 like any verifier
 *                         violation
 *   --inject-deadlock-bug (self-test) miscompile: start every
 *                         non-steering input stream one element short
 *   --inject-verifier-bug (self-test) miscompile: drop one input
 *                         stream's FIFO dequeue after streaming, for
 *                         the static linter to catch at compile time
 *   --inject-panic-tu     (self-test) panic (InternalError) after
 *                         expansion — solo: exit 70; batch: the TU is
 *                         quarantined while its neighbours complete
 *   --version             print the version and exit
 *
 * Batch service mode (instead of a single input file):
 *   --batch=MANIFEST      compile every TU listed in MANIFEST (one
 *                         path per line, # comments) with per-TU
 *                         fault isolation: a panicking, verifier-
 *                         rejected, or deadline-blown TU yields a
 *                         typed failure record while the rest of the
 *                         batch completes. Streaming-pass verifier
 *                         violations demote the TU down the
 *                         degradation ladder (full -> no-streaming ->
 *                         scalar-only) instead of failing it.
 *   --jobs=N              worker threads               (default 1)
 *   --tu-timeout-ms=N     per-TU attempt deadline      (0 = none)
 *   --max-retries=N       transient (timeout) retries  (default 2)
 *   --fail-fast           abort the batch on the first hard failure
 *   --batch-report=FILE   write the schema-versioned per-TU report
 *                         (status, attempts, degradation level, wall
 *                         time, aggregates) as JSON; "-" for stdout
 *
 * Exit status:
 *   0   success; a completed batch also exits 0 even when individual
 *       TUs were quarantined (the report carries per-TU status)
 *   1   user error (unreadable input, compile diagnostics, unwritable
 *       output file, unreadable manifest, aborted --fail-fast batch,
 *       --fifo-depth below the --infer-fifo-depth inferred minimum)
 *   2   usage error (unknown flag, bad value, no input)
 *   3   simulation runtime fault (out-of-bounds access, bad PC, ...)
 *   4   deadlock or livelock (watchdog / cycle-limit classification)
 *   70  internal compiler error (panic/assert — see support/diag.h —
 *       or --verify violations). Panics unwind as InternalError and
 *       are translated to this exit only here, at the tool boundary;
 *       in batch mode they are contained per TU and never exit.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "driver/compiler.h"
#include "m68k/printer.h"
#include "serve/batch.h"
#include "obs/counters.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/pass_profiler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "report/manifest.h"
#include "timing/scalar_sim.h"
#include "wm/printer.h"
#include "wmsim/sim.h"
#include "wmsim/whatif.h"

using namespace wmstream;

namespace {

const char kVersion[] = "0.5.0";

/**
 * Every flag wmc accepts, with its value shape. The table is the
 * single source of truth: usage(), the unknown-option error, and the
 * doc comment above must all agree with it.
 */
const struct {
    const char *flag;
    const char *help;
} kFlags[] = {
    {"--target=wm|68020", "target machine (default: wm)"},
    {"--no-opt", "disable the classic optimizer phases"},
    {"--no-recurrence", "disable recurrence detection/optimization"},
    {"--no-streaming", "disable streaming"},
    {"--vectorize", "enable VEU vectorization"},
    {"--min-trip=N", "streaming trip-count threshold (default 4)"},
    {"--print-asm", "print the generated assembly"},
    {"--trace-partitions", "print the per-loop partition vectors"},
    {"--remarks[=text|json]",
     "print optimization remarks (default: text)"},
    {"--run", "execute on the simulator / timing model"},
    {"--stats", "with --run: print cycle statistics"},
    {"--stats-json=FILE",
     "with --run: write stats as JSON (\"-\" for stdout)"},
    {"--manifest=FILE",
     "write the unified run manifest JSON (\"-\" for stdout)"},
    {"--metrics-out=FILE",
     "write Prometheus-format metrics (\"-\" for stdout)"},
    {"--sample-window=N",
     "flight-recorder window span in cycles (default 1024)"},
    {"--trace-out=FILE",
     "with --run: write a Chrome trace-event pipeline trace"},
    {"--profile-passes", "print per-pass wall time and size deltas"},
    {"--mem-latency=N", "simulator memory latency (default 4)"},
    {"--fifo-depth=N", "simulator data FIFO depth (default 8)"},
    {"--lanes=N", "simulator VEU lanes (default 4)"},
    {"--max-cycles=N", "simulator cycle budget"},
    {"--watchdog-window=N",
     "deadlock watchdog window, cycles (0 disables; default 4096)"},
    {"--chaos-seed=N",
     "perturb simulator timing from seed N (0 = off)"},
    {"--fault-report[=text|json]",
     "with --run: print deadlock/livelock forensics"},
    {"--critpath[=text|json]",
     "with --run: critical-path attribution and what-if predictions"},
    {"--critpath-validate",
     "with --critpath: re-simulate what-if scenarios for validation"},
    {"--verify[=each|final]",
     "run the IR verifier; any violation exits 70 (default: each)"},
    {"--infer-fifo-depth",
     "static FIFO deadlock/depth analysis; exit 1 when --fifo-depth "
     "is below the inferred minimum"},
    {"--inject-deadlock-bug",
     "(self-test) under-count input streams to force a deadlock"},
    {"--inject-verifier-bug",
     "(self-test) drop one stream dequeue for --verify to catch"},
    {"--inject-panic-tu",
     "(self-test) panic mid-pipeline; batch mode must quarantine"},
    {"--batch=MANIFEST",
     "compile every TU in MANIFEST with per-TU fault isolation"},
    {"--jobs=N", "batch worker threads (default 1)"},
    {"--tu-timeout-ms=N", "batch per-TU attempt deadline (0 = none)"},
    {"--max-retries=N", "batch transient retries (default 2)"},
    {"--fail-fast", "abort the batch on the first hard failure"},
    {"--batch-report=FILE",
     "write the per-TU batch report JSON (\"-\" for stdout)"},
    {"--version", "print the version and exit"},
};

void
printFlagList(std::FILE *out)
{
    std::fprintf(out, "valid options:\n");
    for (const auto &f : kFlags)
        std::fprintf(out, "  %-22s %s\n", f.flag, f.help);
}

int
usage()
{
    std::fprintf(stderr, "usage: wmc [options] file.c\n"
                         "       wmc --batch=MANIFEST [options]\n");
    printFlagList(stderr);
    return 2;
}

enum class FlagMatch { NoMatch, Ok, BadValue };

/** Match `NAME=N`; reject non-numeric or empty values. */
FlagMatch
flagValue(const char *arg, const char *name, int *out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return FlagMatch::NoMatch;
    const char *val = arg + n + 1;
    char *end = nullptr;
    long v = std::strtol(val, &end, 10);
    if (end == val || *end != '\0') {
        std::fprintf(stderr, "wmc: bad numeric value in %s\n", arg);
        return FlagMatch::BadValue;
    }
    *out = static_cast<int>(v);
    return FlagMatch::Ok;
}

/** Match `NAME=N` for 64-bit unsigned values (cycle counts, seeds). */
FlagMatch
flagValue64(const char *arg, const char *name, uint64_t *out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return FlagMatch::NoMatch;
    const char *val = arg + n + 1;
    char *end = nullptr;
    unsigned long long v = std::strtoull(val, &end, 10);
    if (end == val || *end != '\0') {
        std::fprintf(stderr, "wmc: bad numeric value in %s\n", arg);
        return FlagMatch::BadValue;
    }
    *out = v;
    return FlagMatch::Ok;
}

/** Match `NAME=STRING`; empty values are rejected. */
FlagMatch
flagString(const char *arg, const char *name, std::string *out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return FlagMatch::NoMatch;
    if (arg[n + 1] == '\0') {
        std::fprintf(stderr, "wmc: empty value in %s\n", arg);
        return FlagMatch::BadValue;
    }
    *out = arg + n + 1;
    return FlagMatch::Ok;
}

/** Write @p text to @p path, or stdout when @p path is "-". */
bool
writeTextFile(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        std::fputc('\n', stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "wmc: cannot write %s\n", path.c_str());
        return false;
    }
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = n == text.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

/**
 * `wmc --batch=MANIFEST`: the fault-isolated batch service mode.
 * Exit 0 when the batch completes (quarantined TUs are data in the
 * report, not a process failure), 1 on an unreadable manifest, an
 * unwritable report, or a --fail-fast abort.
 */
int
runBatchMode(const std::string &manifestPath,
             const std::string &reportPath,
             const serve::BatchOptions &opts)
{
    std::vector<serve::TuJob> jobs;
    std::string error;
    if (!serve::loadManifest(manifestPath, jobs, error)) {
        std::fprintf(stderr, "wmc: %s\n", error.c_str());
        return 1;
    }
    serve::BatchReport report = serve::runBatch(jobs, opts);
    std::FILE *human = reportPath == "-" ? stderr : stdout;
    std::fprintf(human, "%s", report.summaryText().c_str());
    if (!reportPath.empty()) {
        obs::JsonWriter w;
        report.writeJson(w);
        if (!writeTextFile(reportPath, w.str()))
            return 1;
    }
    return report.aborted ? 1 : 0;
}

} // namespace

static int
wmcMain(int argc, char **argv)
{
    driver::CompileOptions options;
    std::string file, statsJsonPath, traceOutPath, manifestPath,
        metricsOutPath;
    serve::BatchOptions batch;
    std::string batchManifest, batchReportPath;
    uint64_t sampleWindow = 1024;
    bool sampleWindowSet = false;
    bool printAsm = false, tracePartitions = false, run = false,
         stats = false, profilePasses = false;
    enum class RemarkFormat { Off, Text, Json };
    RemarkFormat remarkFormat = RemarkFormat::Off;
    enum class FaultFormat { Off, Text, Json };
    FaultFormat faultFormat = FaultFormat::Off;
    enum class CritFormat { Off, Text, Json };
    CritFormat critFormat = CritFormat::Off;
    bool critValidate = false;
    wmsim::SimConfig simCfg;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        int v = 0;
        FlagMatch m;
        auto numeric = [&](const char *name, int *out) {
            m = flagValue(a, name, out);
            return m != FlagMatch::NoMatch;
        };
        auto stringy = [&](const char *name, std::string *out) {
            m = flagString(a, name, out);
            return m != FlagMatch::NoMatch;
        };
        if (std::strcmp(a, "--target=wm") == 0) {
            options.target = rtl::MachineKind::WM;
        } else if (std::strcmp(a, "--target=68020") == 0) {
            options.target = rtl::MachineKind::Scalar;
        } else if (std::strcmp(a, "--no-opt") == 0) {
            options.optimize = false;
        } else if (std::strcmp(a, "--no-recurrence") == 0) {
            options.recurrence = false;
        } else if (std::strcmp(a, "--no-streaming") == 0) {
            options.streaming = false;
        } else if (std::strcmp(a, "--vectorize") == 0) {
            options.vectorize = true;
        } else if (numeric("--min-trip", &v)) {
            if (m == FlagMatch::BadValue)
                return usage();
            options.minStreamTripCount = v;
        } else if (std::strcmp(a, "--print-asm") == 0) {
            printAsm = true;
        } else if (std::strcmp(a, "--trace-partitions") == 0) {
            tracePartitions = true;
        } else if (std::strcmp(a, "--remarks") == 0 ||
                   std::strcmp(a, "--remarks=text") == 0) {
            remarkFormat = RemarkFormat::Text;
        } else if (std::strcmp(a, "--remarks=json") == 0) {
            remarkFormat = RemarkFormat::Json;
        } else if (std::strcmp(a, "--version") == 0) {
            std::printf("wmc (wmstream) %s\n", kVersion);
            return 0;
        } else if (std::strcmp(a, "--run") == 0) {
            run = true;
        } else if (std::strcmp(a, "--stats") == 0) {
            stats = true;
        } else if (std::strcmp(a, "--profile-passes") == 0) {
            profilePasses = true;
        } else if (stringy("--stats-json", &statsJsonPath) ||
                   stringy("--trace-out", &traceOutPath) ||
                   stringy("--manifest", &manifestPath) ||
                   stringy("--metrics-out", &metricsOutPath)) {
            if (m == FlagMatch::BadValue)
                return usage();
        } else if ((m = flagValue64(a, "--sample-window",
                                    &sampleWindow)) !=
                   FlagMatch::NoMatch) {
            if (m == FlagMatch::BadValue)
                return usage();
            if (sampleWindow == 0) {
                std::fprintf(stderr,
                             "wmc: --sample-window must be > 0\n");
                return usage();
            }
            sampleWindowSet = true;
        } else if (numeric("--mem-latency", &v)) {
            if (m == FlagMatch::BadValue)
                return usage();
            simCfg.memLatency = v;
        } else if (numeric("--fifo-depth", &v)) {
            if (m == FlagMatch::BadValue)
                return usage();
            // The hardware model cannot have empty or absurd FIFOs;
            // reject here so every downstream consumer (simulator,
            // depth inference, manifest) sees a sane value.
            if (v < 1 || v > 4096) {
                std::fprintf(stderr,
                             "wmc: --fifo-depth must be between 1 "
                             "and 4096 (got %d)\n",
                             v);
                return usage();
            }
            simCfg.dataFifoDepth = v;
        } else if (numeric("--lanes", &v)) {
            if (m == FlagMatch::BadValue)
                return usage();
            simCfg.veuLanes = v;
        } else if ((m = flagValue64(a, "--max-cycles",
                                    &simCfg.maxCycles)) !=
                   FlagMatch::NoMatch) {
            if (m == FlagMatch::BadValue)
                return usage();
        } else if ((m = flagValue64(a, "--watchdog-window",
                                    &simCfg.watchdogWindow)) !=
                   FlagMatch::NoMatch) {
            if (m == FlagMatch::BadValue)
                return usage();
        } else if ((m = flagValue64(a, "--chaos-seed",
                                    &simCfg.chaosSeed)) !=
                   FlagMatch::NoMatch) {
            if (m == FlagMatch::BadValue)
                return usage();
        } else if (std::strcmp(a, "--fault-report") == 0 ||
                   std::strcmp(a, "--fault-report=text") == 0) {
            faultFormat = FaultFormat::Text;
        } else if (std::strcmp(a, "--fault-report=json") == 0) {
            faultFormat = FaultFormat::Json;
        } else if (std::strcmp(a, "--critpath") == 0 ||
                   std::strcmp(a, "--critpath=text") == 0) {
            critFormat = CritFormat::Text;
        } else if (std::strcmp(a, "--critpath=json") == 0) {
            critFormat = CritFormat::Json;
        } else if (std::strcmp(a, "--critpath-validate") == 0) {
            critValidate = true;
        } else if (std::strcmp(a, "--verify") == 0 ||
                   std::strcmp(a, "--verify=each") == 0) {
            options.verify = driver::VerifyMode::Each;
        } else if (std::strcmp(a, "--verify=final") == 0) {
            options.verify = driver::VerifyMode::Final;
        } else if (std::strcmp(a, "--infer-fifo-depth") == 0) {
            options.inferFifoDepth = true;
        } else if (std::strcmp(a, "--inject-deadlock-bug") == 0) {
            options.injectStreamCountBug = true;
        } else if (std::strcmp(a, "--inject-verifier-bug") == 0) {
            options.injectVerifierBug = true;
        } else if (std::strcmp(a, "--inject-panic-tu") == 0) {
            options.injectPanicTu = true;
        } else if (stringy("--batch", &batchManifest) ||
                   stringy("--batch-report", &batchReportPath)) {
            if (m == FlagMatch::BadValue)
                return usage();
        } else if (numeric("--jobs", &batch.jobs) ||
                   numeric("--tu-timeout-ms", &batch.tuTimeoutMs) ||
                   numeric("--max-retries", &batch.maxRetries)) {
            if (m == FlagMatch::BadValue)
                return usage();
        } else if (std::strcmp(a, "--fail-fast") == 0) {
            batch.failFast = true;
        } else if (a[0] == '-') {
            std::fprintf(stderr, "wmc: unknown option %s\n", a);
            printFlagList(stderr);
            return 2;
        } else if (file.empty()) {
            file = a;
        } else {
            std::fprintf(stderr, "wmc: more than one input file "
                                 "(%s and %s)\n",
                         file.c_str(), a);
            return usage();
        }
    }
    // The depth inference checks against the depth the hardware model
    // will actually run with, whatever order the flags came in.
    options.configuredFifoDepth = simCfg.dataFifoDepth;
    if (!batchManifest.empty()) {
        if (!file.empty()) {
            std::fprintf(stderr, "wmc: --batch does not take an "
                                 "input file (got %s)\n",
                         file.c_str());
            return usage();
        }
        // The compile flags above (--target, --no-streaming, the
        // inject self-tests, ...) form the batch's full-level base
        // configuration; runBatch arms --verify=each itself unless a
        // mode was chosen explicitly.
        batch.base = options;
        return runBatchMode(batchManifest, batchReportPath, batch);
    }
    if (file.empty())
        return usage();

    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr, "wmc: cannot open %s\n", file.c_str());
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    options.profilePasses = profilePasses;
    obs::PhaseTimer compileTimer;
    auto compiled = driver::compileSource(buf.str(), options);
    const double compileWallMs = compileTimer.elapsedMs();
    if (!compiled.ok) {
        std::fprintf(stderr, "%s", compiled.diagnostics.c_str());
        return 1;
    }
    if (!compiled.verifyClean()) {
        // A verifier violation is a compiler bug, never a user error:
        // report every checkpoint's findings and refuse the output.
        std::fprintf(stderr,
                     "wmc: internal error: IR verifier found "
                     "violations (%d checkpoint(s) run)\n",
                     compiled.verifyCheckpoints);
        std::fprintf(stderr, "%s", compiled.verifyText().c_str());
        return 70;
    }

    if (options.inferFifoDepth && compiled.fifoRequirements.analyzed) {
        const verify::FifoRequirements &fr = compiled.fifoRequirements;
        // When a JSON document owns stdout the table moves to stderr,
        // mirroring the --run human/JSON split below.
        std::FILE *fout = statsJsonPath == "-" || manifestPath == "-" ||
                                  critFormat == CritFormat::Json
                              ? stderr
                              : stdout;
        std::fprintf(fout,
                     "fifo requirements: %s (configured depth %d, "
                     "required %d)\n",
                     fr.verdict.c_str(), fr.configuredDepth,
                     fr.minDepth);
        for (const auto &q : fr.queues)
            std::fprintf(fout, "  %-6s min-depth %d%s%s\n",
                         q.name.c_str(), q.minDepth,
                         q.streamed ? "  (streamed)" : "",
                         q.bounded ? "" : "  (unbounded)");
        // A depth shortfall is a configuration error against
        // --fifo-depth, not a compiler bug: report and exit 1. (The
        // compiler-bug findings took the exit-70 path above.)
        bool depthErr = false;
        for (const auto &viol : fr.findings.violations)
            if (viol.reason == "fifo-depth-exceeded") {
                std::fprintf(stderr, "wmc: %s\n", viol.str().c_str());
                depthErr = true;
            }
        if (depthErr) {
            std::fprintf(stderr,
                         "wmc: --fifo-depth=%d is below the inferred "
                         "minimum of %d\n",
                         fr.configuredDepth, fr.minDepth);
            return 1;
        }
    }

    if (profilePasses)
        std::printf("%s",
                    obs::passProfileTable(compiled.passProfiles).c_str());

    if (tracePartitions) {
        for (const auto &r : compiled.recurrenceReports)
            for (const auto &dump : r.partitionDumps)
                std::printf("%s\n", dump.c_str());
    }

    if (remarkFormat == RemarkFormat::Json) {
        obs::JsonWriter w;
        compiled.remarks.writeJson(w, file);
        std::printf("%s\n", w.str().c_str());
    } else if (remarkFormat == RemarkFormat::Text) {
        std::printf("%s", compiled.remarks.text(file).c_str());
    }

    if (printAsm) {
        if (options.target == rtl::MachineKind::WM)
            std::printf("%s", wm::printProgram(*compiled.program).c_str());
        else
            std::printf("%s",
                        m68k::printProgram(*compiled.program).c_str());
    }

    // The run manifest bundles identity, host throughput, remarks,
    // stats, and the flight-recorder time series; sections for work
    // that did not happen are simply absent (a compile-only manifest
    // has no "stats").
    report::RunManifest man;
    man.toolVersion = kVersion;
    man.source = file;
    man.target =
        options.target == rtl::MachineKind::WM ? "wm" : "68020";
    man.host.compileWallMs = compileWallMs;
    man.compiled = &compiled;
    auto emitManifestAndMetrics = [&]() -> bool {
        if (!manifestPath.empty()) {
            obs::JsonWriter w;
            man.writeJson(w);
            if (!writeTextFile(manifestPath, w.str()))
                return false;
        }
        if (!metricsOutPath.empty()) {
            obs::MetricsRegistry m;
            report::exportRunMetrics(m, man);
            if (!writeTextFile(metricsOutPath, m.renderText()))
                return false;
        }
        return true;
    };

    if (!run)
        return emitManifestAndMetrics() ? 0 : 1;

    // With --stats-json=-, --manifest=- or --critpath=json a JSON
    // document owns stdout; the human-readable lines move to stderr
    // so the output stays parseable.
    std::FILE *human = statsJsonPath == "-" || manifestPath == "-" ||
                               critFormat == CritFormat::Json
                           ? stderr
                           : stdout;

    if (options.target == rtl::MachineKind::WM) {
        obs::TraceWriter trace;
        if (!traceOutPath.empty())
            simCfg.trace = &trace;
        if (!statsJsonPath.empty() || !manifestPath.empty())
            simCfg.collectOccupancy = true;
        // Flight recorder: on whenever the manifest wants the time
        // series or the window span was set explicitly.
        const bool sampling = !manifestPath.empty() || sampleWindowSet;
        obs::TimeSeries timeseries(wmsim::simTimeSeriesChannels(),
                                   sampleWindow);
        if (sampling)
            simCfg.timeseries = &timeseries;
        const bool critEnabled =
            critFormat != CritFormat::Off || critValidate;
        obs::CritPath critRec;
        if (critEnabled)
            simCfg.critpath = &critRec;
        obs::PhaseTimer simTimer;
        auto res = wmsim::simulate(*compiled.program, simCfg);
        man.host.simWallMs = simTimer.elapsedMs();
        man.host.simCycles = res.stats.cycles;
        man.simConfig = &simCfg;
        man.simResult = &res;
        if (sampling)
            man.timeseries = &timeseries;
        // Critical-path attribution + what-if predictions. Built
        // before the fault branch below: a faulted run still has an
        // end event at its last cycle, so the partial DAG attributes
        // and lands in the manifest; only the what-if re-simulations
        // are skipped (a speedup over a faulted run means nothing).
        report::CritPathReport critReport;
        if (critEnabled) {
            critReport.dag = &critRec;
            critReport.analysis = critRec.analyze();
            if (critReport.analysis.valid) {
                critReport.replayBaselineCycles = critRec.replay({});
                for (const auto &wi :
                     wmsim::critPathWhatIfs(simCfg)) {
                    report::WhatIfRow row;
                    row.name = wi.name;
                    row.description = wi.description;
                    row.predictedCycles = critRec.replay(wi.replay);
                    if (row.predictedCycles > 0.0)
                        row.predictedSpeedup =
                            critReport.replayBaselineCycles /
                            row.predictedCycles;
                    if (critValidate && wi.validatable && res.ok) {
                        auto re = wmsim::simulate(*compiled.program,
                                                  wi.resim);
                        if (re.ok && re.stats.cycles > 0) {
                            row.validated = true;
                            row.measuredCycles = static_cast<double>(
                                re.stats.cycles);
                            row.measuredSpeedup =
                                static_cast<double>(
                                    res.stats.cycles) /
                                row.measuredCycles;
                            row.errorPct =
                                std::fabs(row.predictedSpeedup -
                                          row.measuredSpeedup) /
                                row.measuredSpeedup * 100.0;
                        }
                    }
                    critReport.whatIf.push_back(row);
                }
            }
            man.critpath = &critReport;
            // Why-not-faster: one remark per source loop on the
            // critical path, naming its dominant critical edge (rows
            // are sorted by cycles, so the first row per loop wins).
            std::set<int> remarked;
            for (const auto &r : critReport.analysis.rows) {
                if (r.loop < 0 || !remarked.insert(r.loop).second)
                    continue;
                const obs::LoopRecord *lr =
                    compiled.remarks.findLoop(r.loop);
                obs::Remark rem;
                rem.pass = "critpath";
                rem.function = lr ? lr->function : "";
                rem.loopId = r.loop;
                if (lr)
                    rem.loc = lr->loc;
                rem.verdict = obs::RemarkVerdict::Missed;
                rem.reason = "critical-edge";
                obs::Remark &added =
                    compiled.remarks.add(std::move(rem));
                added.arg("unit", critRec.unitName(r.unit))
                    .arg("cause", critRec.causeName(r.cause))
                    .arg("critical_cycles",
                         static_cast<int64_t>(r.cycles));
                if (remarkFormat == RemarkFormat::Text)
                    std::fprintf(human, "%s:%s\n", file.c_str(),
                                 added.str().c_str());
            }
        }
        if (sampling && !traceOutPath.empty())
            report::addTimelineCounterTracks(trace, timeseries);
        if (!traceOutPath.empty() && !trace.writeFile(traceOutPath)) {
            std::fprintf(stderr, "wmc: cannot write %s\n",
                         traceOutPath.c_str());
            return 1;
        }
        if (!res.ok) {
            std::fprintf(stderr, "wmc: runtime error: %s\n",
                         res.error.c_str());
            bool wedge = res.fault == wmsim::SimFault::Deadlock ||
                         res.fault == wmsim::SimFault::Livelock;
            if (wedge && faultFormat == FaultFormat::Text)
                std::fprintf(stderr, "%s",
                             res.faultReport.text().c_str());
            if (wedge && faultFormat == FaultFormat::Json) {
                obs::JsonWriter w;
                res.faultReport.writeJson(w);
                std::printf("%s\n", w.str().c_str());
            }
            // Even a faulted run leaves machine-readable artifacts
            // for CI: kind, message, and the full forensic report;
            // the manifest embeds the same fault document as its
            // "stats" section.
            if (!statsJsonPath.empty()) {
                obs::JsonWriter w;
                report::writeWmFaultDoc(w, file, res);
                if (!writeTextFile(statsJsonPath, w.str()))
                    return 1;
            }
            if (critFormat == CritFormat::Text)
                std::fprintf(
                    stderr, "%s",
                    report::renderCritPathText(critReport).c_str());
            if (critFormat == CritFormat::Json) {
                obs::JsonWriter w;
                report::writeCritPathDoc(w, critReport);
                std::printf("%s\n", w.str().c_str());
            }
            if (!emitManifestAndMetrics())
                return 1;
            return wedge ? 4 : 3;
        }
        std::fprintf(human, "exit value: %lld\n",
                     static_cast<long long>(res.returnValue));
        if (stats) {
            std::fprintf(human,
                "cycles %llu, IEU %llu, FEU %llu, IFU %llu, loads %llu, "
                "stores %llu,\nstream in %llu, stream out %llu, vector "
                "%llu\n",
                static_cast<unsigned long long>(res.stats.cycles),
                static_cast<unsigned long long>(res.stats.ieuExecuted),
                static_cast<unsigned long long>(res.stats.feuExecuted),
                static_cast<unsigned long long>(res.stats.ifuExecuted),
                static_cast<unsigned long long>(res.stats.loadsIssued),
                static_cast<unsigned long long>(
                    res.stats.storesCommitted),
                static_cast<unsigned long long>(
                    res.stats.streamElementsIn),
                static_cast<unsigned long long>(
                    res.stats.streamElementsOut),
                static_cast<unsigned long long>(
                    res.stats.vectorElements));
        }
        if (critFormat == CritFormat::Text)
            std::fprintf(human, "%s",
                         report::renderCritPathText(critReport).c_str());
        if (critFormat == CritFormat::Json) {
            obs::JsonWriter w;
            report::writeCritPathDoc(w, critReport);
            std::printf("%s\n", w.str().c_str());
        }
        if (!statsJsonPath.empty()) {
            obs::JsonWriter w;
            report::writeWmStatsDoc(w, file, compiled, simCfg, res);
            if (!writeTextFile(statsJsonPath, w.str()))
                return 1;
        }
        if (!emitManifestAndMetrics())
            return 1;
    } else {
        if (!traceOutPath.empty())
            std::fprintf(stderr, "wmc: --trace-out ignored for the "
                                 "68020 target\n");
        auto model = timing::sun3_280Model();
        obs::PhaseTimer simTimer;
        auto res = timing::runScalar(*compiled.program, model);
        man.host.simWallMs = simTimer.elapsedMs();
        man.modelName = model.name;
        man.scalarResult = &res;
        if (!res.ok) {
            std::fprintf(stderr, "wmc: runtime error: %s\n",
                         res.error.c_str());
            // Faulted scalar runs leave the same machine-readable
            // artifacts as faulted WM runs: the stats document gains
            // a "fault" section and the metrics a wm_sim_fault=1
            // gauge, so CI collects forensics from every exit path.
            if (!statsJsonPath.empty()) {
                obs::JsonWriter w;
                report::writeScalarStatsDoc(w, file, model.name,
                                            compiled, res);
                if (!writeTextFile(statsJsonPath, w.str()))
                    return 1;
            }
            if (!emitManifestAndMetrics())
                return 1;
            return 3;
        }
        std::fprintf(human, "exit value: %lld\n",
                     static_cast<long long>(res.returnValue));
        if (stats)
            std::fprintf(human, "weighted cycles %.0f (%s), %llu instructions, "
                        "%llu memory refs\n",
                        res.cycles, model.name.c_str(),
                        static_cast<unsigned long long>(
                            res.instsExecuted),
                        static_cast<unsigned long long>(res.memoryRefs));
        if (!statsJsonPath.empty()) {
            obs::JsonWriter w;
            report::writeScalarStatsDoc(w, file, model.name, compiled,
                                        res);
            if (!writeTextFile(statsJsonPath, w.str()))
                return 1;
        }
        if (!emitManifestAndMetrics())
            return 1;
    }
    return 0;
}

/**
 * The process boundary is the only place a panic becomes an exit
 * code: library code raises InternalError (support/diag.h) and stays
 * reentrant; embedders like the batch runner catch it per TU; the
 * solo tool translates it to the historical exit 70 here.
 */
int
main(int argc, char **argv)
{
    try {
        return wmcMain(argc, argv);
    } catch (const InternalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 70;
    }
}
