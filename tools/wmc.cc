/**
 * @file
 * wmc — the command-line driver for the wmstream compiler.
 *
 * Compiles a mini-C source file for the WM access/execute architecture
 * (or the generic scalar target with 68020 output), optionally runs it
 * on the cycle simulator, and can dump the paper-style
 * memory-reference partition analysis.
 *
 * Usage:
 *   wmc [options] file.c
 *
 * Options:
 *   --target=wm|68020     target machine            (default: wm)
 *   --no-opt              disable the classic optimizer phases
 *   --no-recurrence       disable recurrence detection/optimization
 *   --no-streaming        disable streaming
 *   --vectorize           enable VEU vectorization
 *   --min-trip=N          streaming trip-count threshold (default 4)
 *   --print-asm           print the generated assembly
 *   --trace-partitions    print the per-loop partition vectors
 *   --run                 execute on the simulator / timing model
 *   --stats               with --run: print cycle statistics
 *   --mem-latency=N       simulator memory latency    (default 4)
 *   --lanes=N             simulator VEU lanes         (default 4)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/compiler.h"
#include "m68k/printer.h"
#include "timing/scalar_sim.h"
#include "wm/printer.h"
#include "wmsim/sim.h"

using namespace wmstream;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: wmc [--target=wm|68020] [--no-opt] "
                 "[--no-recurrence]\n"
                 "           [--no-streaming] [--vectorize] "
                 "[--min-trip=N]\n"
                 "           [--print-asm] [--trace-partitions] [--run] "
                 "[--stats]\n"
                 "           [--mem-latency=N] [--lanes=N] file.c\n");
    return 2;
}

bool
flagValue(const char *arg, const char *name, int *out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    *out = std::atoi(arg + n + 1);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::CompileOptions options;
    std::string file;
    bool printAsm = false, tracePartitions = false, run = false,
         stats = false;
    wmsim::SimConfig simCfg;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        int v = 0;
        if (std::strcmp(a, "--target=wm") == 0) {
            options.target = rtl::MachineKind::WM;
        } else if (std::strcmp(a, "--target=68020") == 0) {
            options.target = rtl::MachineKind::Scalar;
        } else if (std::strcmp(a, "--no-opt") == 0) {
            options.optimize = false;
        } else if (std::strcmp(a, "--no-recurrence") == 0) {
            options.recurrence = false;
        } else if (std::strcmp(a, "--no-streaming") == 0) {
            options.streaming = false;
        } else if (std::strcmp(a, "--vectorize") == 0) {
            options.vectorize = true;
        } else if (flagValue(a, "--min-trip", &v)) {
            options.minStreamTripCount = v;
        } else if (std::strcmp(a, "--print-asm") == 0) {
            printAsm = true;
        } else if (std::strcmp(a, "--trace-partitions") == 0) {
            tracePartitions = true;
        } else if (std::strcmp(a, "--run") == 0) {
            run = true;
        } else if (std::strcmp(a, "--stats") == 0) {
            stats = true;
        } else if (flagValue(a, "--mem-latency", &v)) {
            simCfg.memLatency = v;
        } else if (flagValue(a, "--lanes", &v)) {
            simCfg.veuLanes = v;
        } else if (a[0] == '-') {
            std::fprintf(stderr, "wmc: unknown option %s\n", a);
            return usage();
        } else if (file.empty()) {
            file = a;
        } else {
            return usage();
        }
    }
    if (file.empty())
        return usage();

    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr, "wmc: cannot open %s\n", file.c_str());
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    auto compiled = driver::compileSource(buf.str(), options);
    if (!compiled.ok) {
        std::fprintf(stderr, "%s", compiled.diagnostics.c_str());
        return 1;
    }

    if (tracePartitions) {
        for (const auto &r : compiled.recurrenceReports)
            for (const auto &dump : r.partitionDumps)
                std::printf("%s\n", dump.c_str());
    }

    if (printAsm) {
        if (options.target == rtl::MachineKind::WM)
            std::printf("%s", wm::printProgram(*compiled.program).c_str());
        else
            std::printf("%s",
                        m68k::printProgram(*compiled.program).c_str());
    }

    if (!run)
        return 0;

    if (options.target == rtl::MachineKind::WM) {
        auto res = wmsim::simulate(*compiled.program, simCfg);
        if (!res.ok) {
            std::fprintf(stderr, "wmc: runtime error: %s\n",
                         res.error.c_str());
            return 1;
        }
        std::printf("exit value: %lld\n",
                    static_cast<long long>(res.returnValue));
        if (stats) {
            std::printf(
                "cycles %llu, IEU %llu, FEU %llu, IFU %llu, loads %llu, "
                "stores %llu,\nstream in %llu, stream out %llu, vector "
                "%llu\n",
                static_cast<unsigned long long>(res.stats.cycles),
                static_cast<unsigned long long>(res.stats.ieuExecuted),
                static_cast<unsigned long long>(res.stats.feuExecuted),
                static_cast<unsigned long long>(res.stats.ifuExecuted),
                static_cast<unsigned long long>(res.stats.loadsIssued),
                static_cast<unsigned long long>(
                    res.stats.storesCommitted),
                static_cast<unsigned long long>(
                    res.stats.streamElementsIn),
                static_cast<unsigned long long>(
                    res.stats.streamElementsOut),
                static_cast<unsigned long long>(
                    res.stats.vectorElements));
        }
    } else {
        auto model = timing::sun3_280Model();
        auto res = timing::runScalar(*compiled.program, model);
        if (!res.ok) {
            std::fprintf(stderr, "wmc: runtime error: %s\n",
                         res.error.c_str());
            return 1;
        }
        std::printf("exit value: %lld\n",
                    static_cast<long long>(res.returnValue));
        if (stats)
            std::printf("weighted cycles %.0f (%s), %llu instructions, "
                        "%llu memory refs\n",
                        res.cycles, model.name.c_str(),
                        static_cast<unsigned long long>(
                            res.instsExecuted),
                        static_cast<unsigned long long>(res.memoryRefs));
    }
    return 0;
}
