/**
 * @file
 * wmreport — join optimization remarks with simulator statistics into
 * a per-loop report.
 *
 * Takes the two JSON documents wmc emits for the same source file:
 *
 *   wmc --remarks=json prog.c            > remarks.json
 *   wmc --run --stats-json=stats.json prog.c
 *   wmreport remarks.json stats.json
 *
 * and joins them on the loop id (the remark collector's registry id,
 * which the compiler also stamps onto every RTL instruction so the
 * simulator can bucket cycles per source loop). The report shows, for
 * each source loop: where it is, what the optimizer did or refused to
 * do (with reason codes), how many cycles the loop cost, and the
 * dominant stall cause inside it.
 *
 * wmreport also checks the attribution invariant — per-loop cycle
 * buckets must sum exactly to the total simulated cycles — and exits
 * nonzero when it does not hold, so the CI smoke test catches any
 * regression in the join.
 *
 * Exit status: 0 on success, 1 on I/O, parse, schema, or invariant
 * errors, 2 on usage errors.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_parse.h"

using wmstream::obs::JsonValue;
using wmstream::obs::parseJson;

namespace {

int
usage()
{
    std::fprintf(stderr, "usage: wmreport remarks.json stats.json\n"
                         "       (\"-\" reads that document from stdin)\n");
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    if (path == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        out = buf.str();
        return true;
    }
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/** Load and parse one JSON document, with diagnostics on stderr. */
bool
loadJson(const std::string &path, JsonValue &doc)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "wmreport: cannot open %s\n", path.c_str());
        return false;
    }
    std::string err;
    if (!parseJson(text, doc, err)) {
        std::fprintf(stderr, "wmreport: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    if (!doc.isObject()) {
        std::fprintf(stderr, "wmreport: %s: not a JSON object\n",
                     path.c_str());
        return false;
    }
    return true;
}

/** One remark, reduced to what the report shows. */
struct RemarkRow
{
    std::string pass;
    std::string verdict; ///< "applied" / "missed"
    std::string reason;
    int line = 0;
    int column = 0;
    std::string argText; ///< "k=v k=v" in emission order
};

/** Everything known about one loop id after the join. */
struct LoopRow
{
    int id = -1;
    std::string function;
    int line = 0;
    int column = 0;
    uint64_t cycles = 0;
    uint64_t ieuStall = 0, feuStall = 0, ifuStall = 0;
    std::string dominantStall;
    bool inStats = false;
    std::vector<RemarkRow> remarks;
};

std::string
loc(const std::string &file, int line, int column)
{
    if (line <= 0)
        return "<unknown>";
    std::string s = file + ":" + std::to_string(line);
    if (column > 0)
        s += ":" + std::to_string(column);
    return s;
}

std::string
percent(uint64_t part, uint64_t whole)
{
    if (whole == 0)
        return "0.0%";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%",
                  100.0 * static_cast<double>(part) /
                      static_cast<double>(whole));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3)
        return usage();

    JsonValue remarksDoc, statsDoc;
    if (!loadJson(argv[1], remarksDoc) || !loadJson(argv[2], statsDoc))
        return 1;

    for (const auto *doc : {&remarksDoc, &statsDoc}) {
        int64_t v = doc->getInt("schema_version", -1);
        if (v != 1) {
            std::fprintf(stderr,
                         "wmreport: unsupported schema_version %lld "
                         "(expected 1)\n",
                         static_cast<long long>(v));
            return 1;
        }
    }

    std::string sourceFile = remarksDoc.getStr("file", "<unknown>");
    std::string statsSource = statsDoc.getStr("source");
    if (!statsSource.empty() && statsSource != sourceFile)
        std::fprintf(stderr,
                     "wmreport: warning: remarks are for %s but stats "
                     "are for %s\n",
                     sourceFile.c_str(), statsSource.c_str());

    // Loop registry from the remarks document.
    std::map<int, LoopRow> loops;
    if (const JsonValue *ls = remarksDoc.get("loops"); ls && ls->isArray())
        for (const JsonValue &l : ls->arr) {
            LoopRow row;
            row.id = static_cast<int>(l.getInt("id", -1));
            row.function = l.getStr("function");
            row.line = static_cast<int>(l.getInt("line"));
            row.column = static_cast<int>(l.getInt("column"));
            loops[row.id] = row;
        }

    // Attach remarks to their loops.
    if (const JsonValue *rs = remarksDoc.get("remarks");
        rs && rs->isArray())
        for (const JsonValue &r : rs->arr) {
            RemarkRow row;
            row.pass = r.getStr("pass");
            row.verdict = r.getStr("verdict");
            row.reason = r.getStr("reason");
            row.line = static_cast<int>(r.getInt("line"));
            row.column = static_cast<int>(r.getInt("column"));
            if (const JsonValue *args = r.get("args");
                args && args->isObject())
                for (const auto &kv : args->members) {
                    if (!row.argText.empty())
                        row.argText += " ";
                    row.argText += kv.first + "=";
                    row.argText += kv.second.kind ==
                                           JsonValue::Kind::String
                                       ? kv.second.strVal
                                       : (kv.second.isInt
                                              ? std::to_string(
                                                    kv.second.intVal)
                                              : std::to_string(
                                                    kv.second.numVal));
                }
            int id = static_cast<int>(r.getInt("loop", -1));
            LoopRow &lr = loops[id]; // loop-less remarks land on id -1
            lr.id = id;
            if (lr.function.empty())
                lr.function = r.getStr("function");
            loops[id].remarks.push_back(std::move(row));
        }

    // A faulted run writes a "fault" section instead of stats;
    // surface the watchdog forensics instead of complaining about the
    // missing join key.
    if (const JsonValue *fault = statsDoc.get("fault");
        fault && fault->isObject()) {
        std::printf("simulation fault for %s: %s\n", sourceFile.c_str(),
                    fault->getStr("kind", "?").c_str());
        std::string err = statsDoc.getStr("error");
        if (!err.empty())
            std::printf("  %s\n", err.c_str());
        if (const JsonValue *rep = fault->get("report");
            rep && rep->isObject()) {
            std::printf("  signature: %s\n",
                        rep->getStr("signature").c_str());
            if (const JsonValue *wf = rep->get("wait_for");
                wf && wf->isObject())
                if (const JsonValue *chain = wf->get("chain");
                    chain && chain->isArray() && !chain->arr.empty()) {
                    std::printf("  wait-for:");
                    for (size_t i = 0; i < chain->arr.size(); ++i)
                        std::printf("%s%s", i ? " -> " : " ",
                                    chain->arr[i].strVal.c_str());
                    std::printf("\n");
                }
            if (const JsonValue *units = rep->get("units");
                units && units->isArray())
                for (const JsonValue &u : units->arr)
                    if (u.get("blocked") && u.get("blocked")->boolVal)
                        std::printf("  blocked: %-5s %s\n",
                                    u.getStr("unit").c_str(),
                                    u.getStr("cause").c_str());
        }
        return 1;
    }

    // Per-loop cycle buckets from the stats document.
    uint64_t attributed = 0;
    if (const JsonValue *ls = statsDoc.get("loops"); ls && ls->isArray())
        for (const JsonValue &l : ls->arr) {
            int id = static_cast<int>(l.getInt("loop", -1));
            LoopRow &row = loops[id];
            row.id = id;
            row.inStats = true;
            row.cycles = static_cast<uint64_t>(l.getInt("cycles"));
            row.ieuStall =
                static_cast<uint64_t>(l.getInt("ieu_stall_cycles"));
            row.feuStall =
                static_cast<uint64_t>(l.getInt("feu_stall_cycles"));
            row.ifuStall =
                static_cast<uint64_t>(l.getInt("ifu_stall_cycles"));
            row.dominantStall = l.getStr("dominant_stall", "none");
            attributed += row.cycles;
        }
    else {
        std::fprintf(stderr,
                     "wmreport: %s has no \"loops\" section (need "
                     "wmc --run --stats-json for the wm target)\n",
                     argv[2]);
        return 1;
    }

    uint64_t totalCycles = 0;
    if (const JsonValue *sim = statsDoc.get("sim"); sim && sim->isObject())
        totalCycles = static_cast<uint64_t>(sim->getInt("cycles"));

    std::printf("per-loop report for %s (%llu cycles)\n\n",
                sourceFile.c_str(),
                static_cast<unsigned long long>(totalCycles));
    std::printf("%5s  %-28s %10s %7s  %-18s %s\n", "loop", "location",
                "cycles", "share", "dominant stall", "decisions");

    for (const auto &[id, row] : loops) {
        int applied = 0, missedCnt = 0;
        for (const RemarkRow &r : row.remarks)
            (r.verdict == "applied" ? applied : missedCnt) += 1;
        std::string decisions;
        if (id >= 0) {
            decisions = std::to_string(applied) + " applied, " +
                        std::to_string(missedCnt) + " missed";
        } else {
            decisions = "(outside loops)";
        }
        std::string where =
            id >= 0 ? loc(sourceFile, row.line, row.column) : "-";
        std::printf("%5d  %-28s %10llu %7s  %-18s %s\n", id,
                    where.c_str(),
                    static_cast<unsigned long long>(row.cycles),
                    percent(row.cycles, totalCycles).c_str(),
                    row.cycles ? row.dominantStall.c_str() : "-",
                    decisions.c_str());
        for (const RemarkRow &r : row.remarks) {
            std::printf("       %s %s: %s", r.pass.c_str(),
                        r.verdict.c_str(), r.reason.c_str());
            if (!r.argText.empty())
                std::printf(" [%s]", r.argText.c_str());
            if (r.line > 0)
                std::printf("  (%s)",
                            loc(sourceFile, r.line, r.column).c_str());
            std::printf("\n");
        }
    }

    std::printf("\nattributed %llu of %llu cycles\n",
                static_cast<unsigned long long>(attributed),
                static_cast<unsigned long long>(totalCycles));
    if (attributed != totalCycles) {
        std::fprintf(stderr,
                     "wmreport: attribution broken: per-loop buckets "
                     "sum to %llu, total is %llu\n",
                     static_cast<unsigned long long>(attributed),
                     static_cast<unsigned long long>(totalCycles));
        return 1;
    }
    return 0;
}
