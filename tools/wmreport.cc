/**
 * @file
 * wmreport — join optimization remarks with simulator statistics into
 * a per-loop report.
 *
 * Takes the two JSON documents wmc emits for the same source file:
 *
 *   wmc --remarks=json prog.c            > remarks.json
 *   wmc --run --stats-json=stats.json prog.c
 *   wmreport remarks.json stats.json
 *
 * and joins them on the loop id (the remark collector's registry id,
 * which the compiler also stamps onto every RTL instruction so the
 * simulator can bucket cycles per source loop). The report shows, for
 * each source loop: where it is, what the optimizer did or refused to
 * do (with reason codes), how many cycles the loop cost, and the
 * dominant stall cause inside it.
 *
 * A single-file invocation reads the unified run manifest instead
 * (`wmc --run --manifest=man.json`), which embeds the remarks and
 * stats documents plus the flight-recorder time series:
 *
 *   wmreport man.json
 *   wmreport --timeline man.json
 *
 * --timeline renders the time series as terminal heat-strips: one
 * busy/stall pair per unit (IFU/IEU/FEU) plus a live-stream strip,
 * one glyph per window, with a per-window dominant-stall-cause letter
 * strip and legend. Ramp-up, steady-state, and drain phases of a
 * streamed loop are visibly distinct.
 *
 * --critpath renders the critical-path profiler's bottleneck tree
 * from the manifest's "critical_path" section (`wmc --run
 * --critpath --manifest=...`): critical cycles grouped unit → stall
 * cause → source loop, plus the what-if speedup predictions with
 * their validation errors where the run measured them.
 *
 * wmreport also checks the attribution invariants — per-loop cycle
 * buckets must sum exactly to the total simulated cycles, (with
 * --timeline) every cumulative time-series channel must sum exactly
 * to its end-of-run aggregate counter, and (with --critpath) the
 * critical-path rows must sum exactly to the simulated cycle count —
 * and exits nonzero when they do not hold, so the CI smoke tests
 * catch any regression.
 *
 * Exit status: 0 on success, 1 on I/O, parse, schema, or invariant
 * errors, 2 on usage errors.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_parse.h"
#include "support/diag.h"

using wmstream::obs::JsonValue;
using wmstream::obs::parseJson;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: wmreport [--timeline] [--critpath] remarks.json "
        "stats.json\n"
        "       wmreport [--timeline] [--critpath] manifest.json\n"
        "       (\"-\" reads that document from stdin)\n"
        "  --timeline  render the flight-recorder time series as\n"
        "              per-unit heat-strips (needs a manifest with a\n"
        "              \"timeseries\" section)\n"
        "  --critpath  render the critical-path bottleneck tree and\n"
        "              what-if predictions (needs a manifest with a\n"
        "              \"critical_path\" section)\n");
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    if (path == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        out = buf.str();
        return true;
    }
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/** Load and parse one JSON document, with diagnostics on stderr. */
bool
loadJson(const std::string &path, JsonValue &doc)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "wmreport: cannot open %s\n", path.c_str());
        return false;
    }
    std::string err;
    if (!parseJson(text, doc, err)) {
        std::fprintf(stderr, "wmreport: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    if (!doc.isObject()) {
        std::fprintf(stderr, "wmreport: %s: not a JSON object\n",
                     path.c_str());
        return false;
    }
    return true;
}

/** One remark, reduced to what the report shows. */
struct RemarkRow
{
    std::string pass;
    std::string verdict; ///< "applied" / "missed"
    std::string reason;
    int line = 0;
    int column = 0;
    std::string argText; ///< "k=v k=v" in emission order
};

/** Everything known about one loop id after the join. */
struct LoopRow
{
    int id = -1;
    std::string function;
    int line = 0;
    int column = 0;
    uint64_t cycles = 0;
    uint64_t ieuStall = 0, feuStall = 0, ifuStall = 0;
    std::string dominantStall;
    bool inStats = false;
    std::vector<RemarkRow> remarks;
};

std::string
loc(const std::string &file, int line, int column)
{
    if (line <= 0)
        return "<unknown>";
    std::string s = file + ":" + std::to_string(line);
    if (column > 0)
        s += ":" + std::to_string(column);
    return s;
}

std::string
percent(uint64_t part, uint64_t whole)
{
    if (whole == 0)
        return "0.0%";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%",
                  100.0 * static_cast<double>(part) /
                      static_cast<double>(whole));
    return buf;
}

/** The flight-recorder time series, parsed out of a manifest. */
struct TsData
{
    std::vector<std::string> channels;
    struct Win
    {
        uint64_t start = 0;
        uint64_t cycles = 0;
        std::vector<uint64_t> counts;
    };
    std::vector<Win> wins;
    uint64_t windowCycles = 0;
    int64_t decimations = 0;

    int
    idx(const std::string &name) const
    {
        for (size_t i = 0; i < channels.size(); ++i)
            if (channels[i] == name)
                return static_cast<int>(i);
        return -1;
    }
    uint64_t
    total(size_t c) const
    {
        uint64_t sum = 0;
        for (const Win &w : wins)
            sum += w.counts[c];
        return sum;
    }
    uint64_t
    totalCycles() const
    {
        uint64_t sum = 0;
        for (const Win &w : wins)
            sum += w.cycles;
        return sum;
    }
};

bool
parseTimeseries(const JsonValue &doc, TsData &ts)
{
    if (doc.getInt("schema_version", -1) != 1 ||
        doc.getStr("kind") != "timeseries")
        return false;
    ts.windowCycles = static_cast<uint64_t>(doc.getInt("window_cycles"));
    ts.decimations = doc.getInt("decimations");
    const JsonValue *ch = doc.get("channels");
    const JsonValue *samples = doc.get("samples");
    if (!ch || !ch->isArray() || !samples || !samples->isArray())
        return false;
    for (const JsonValue &c : ch->arr)
        ts.channels.push_back(c.strVal);
    for (const JsonValue &s : samples->arr) {
        TsData::Win w;
        w.start = static_cast<uint64_t>(s.getInt("start"));
        w.cycles = static_cast<uint64_t>(s.getInt("cycles"));
        const JsonValue *counts = s.get("counts");
        if (!counts || !counts->isArray() ||
            counts->arr.size() != ts.channels.size())
            return false;
        for (const JsonValue &v : counts->arr)
            w.counts.push_back(static_cast<uint64_t>(v.intVal));
        ts.wins.push_back(std::move(w));
    }
    return true;
}

/** Heat glyph for @p v in [0,1]: '·' for zero, then eighth-blocks. */
const char *
heatGlyph(double v)
{
    static const char *const kGlyphs[] = {
        "·", "▁", "▂", "▃", "▄",
        "▅", "▆", "▇", "█"};
    if (v <= 0.0)
        return kGlyphs[0];
    int level = 1 + static_cast<int>(v * 8.0);
    if (level > 8)
        level = 8;
    return kGlyphs[level];
}

/**
 * Verify that every cumulative channel sums exactly to its
 * end-of-run aggregate in @p sim (absent keys are zero: the stats
 * exporter skips zero-valued stall causes) and that window cycles
 * sum to the total. Prints every violation; true when clean.
 */
bool
checkTimeseriesSums(const TsData &ts, const JsonValue &sim)
{
    bool ok = true;
    for (size_t c = 0; c < ts.channels.size(); ++c) {
        const std::string &name = ts.channels[c];
        if (name.rfind("occ.", 0) == 0 || name == "scu.active")
            continue; // level channels have no aggregate counter
        uint64_t want = static_cast<uint64_t>(sim.getInt(name, 0));
        uint64_t got = ts.total(c);
        if (got != want) {
            std::fprintf(stderr,
                         "wmreport: timeseries channel %s sums to "
                         "%llu, aggregate counter is %llu\n",
                         name.c_str(),
                         static_cast<unsigned long long>(got),
                         static_cast<unsigned long long>(want));
            ok = false;
        }
    }
    uint64_t wantCycles = static_cast<uint64_t>(sim.getInt("cycles"));
    if (ts.totalCycles() != wantCycles) {
        std::fprintf(stderr,
                     "wmreport: timeseries windows cover %llu cycles, "
                     "run took %llu\n",
                     static_cast<unsigned long long>(ts.totalCycles()),
                     static_cast<unsigned long long>(wantCycles));
        ok = false;
    }
    return ok;
}

/**
 * Render the per-unit heat-strips: for each unit a busy strip
 * (executed per cycle, normalized to the strip's peak), a stall strip
 * (stall fraction of the window, absolute), and a dominant-cause
 * letter strip; then the live-stream strip. One glyph per window.
 */
void
renderTimeline(const TsData &ts, const std::string &sourceFile)
{
    std::printf("flight-recorder timeline for %s: %zu windows x %llu "
                "cycles (%lld decimation%s, %llu cycles total)\n\n",
                sourceFile.c_str(), ts.wins.size(),
                static_cast<unsigned long long>(ts.windowCycles),
                static_cast<long long>(ts.decimations),
                ts.decimations == 1 ? "" : "s",
                static_cast<unsigned long long>(ts.totalCycles()));

    // Dominant-stall letters are assigned in order of first
    // appearance; the legend below decodes them.
    std::vector<std::string> causeNames;
    auto causeLetter = [&](const std::string &cause) {
        for (size_t i = 0; i < causeNames.size(); ++i)
            if (causeNames[i] == cause)
                return static_cast<char>('a' + i);
        causeNames.push_back(cause);
        return static_cast<char>('a' + causeNames.size() - 1);
    };

    for (const char *unit : {"ifu", "ieu", "feu"}) {
        std::string u(unit);
        int busyC = ts.idx(u + ".executed");
        int stallC = ts.idx(u + ".stall_cycles");
        if (busyC < 0 || stallC < 0)
            continue;
        // The unit's per-cause channels, for the dominant letter.
        std::vector<size_t> causeIdx;
        std::string prefix = u + ".stall.";
        for (size_t c = 0; c < ts.channels.size(); ++c)
            if (ts.channels[c].rfind(prefix, 0) == 0)
                causeIdx.push_back(c);

        double peakBusy = 0.0;
        for (const TsData::Win &w : ts.wins)
            if (w.cycles)
                peakBusy = std::max(
                    peakBusy,
                    static_cast<double>(
                        w.counts[static_cast<size_t>(busyC)]) /
                        static_cast<double>(w.cycles));

        std::string busyStrip, stallStrip, causeStrip;
        double peakStall = 0.0;
        for (const TsData::Win &w : ts.wins) {
            double cyc = static_cast<double>(w.cycles);
            if (w.cycles == 0)
                cyc = 1.0;
            double busy = static_cast<double>(
                              w.counts[static_cast<size_t>(busyC)]) /
                          cyc;
            double stall = static_cast<double>(
                               w.counts[static_cast<size_t>(stallC)]) /
                           cyc;
            peakStall = std::max(peakStall, stall);
            busyStrip +=
                heatGlyph(peakBusy > 0.0 ? busy / peakBusy : 0.0);
            stallStrip += heatGlyph(stall);
            uint64_t best = 0;
            size_t bestC = 0;
            for (size_t c : causeIdx)
                if (w.counts[c] > best) {
                    best = w.counts[c];
                    bestC = c;
                }
            causeStrip += best ? causeLetter(ts.channels[bestC].substr(
                                     prefix.size()))
                               : '.';
        }
        std::printf("  %s busy  |%s|  peak %.2f/cycle\n", unit,
                    busyStrip.c_str(), peakBusy);
        std::printf("  %s stall |%s|  peak %.0f%%  cause |%s|\n", unit,
                    stallStrip.c_str(), peakStall * 100.0,
                    causeStrip.c_str());
    }

    int liveC = ts.idx("scu.active");
    if (liveC >= 0) {
        double peak = 0.0;
        for (const TsData::Win &w : ts.wins)
            if (w.cycles)
                peak = std::max(
                    peak, static_cast<double>(
                              w.counts[static_cast<size_t>(liveC)]) /
                              static_cast<double>(w.cycles));
        std::string strip;
        for (const TsData::Win &w : ts.wins) {
            double v = w.cycles
                           ? static_cast<double>(
                                 w.counts[static_cast<size_t>(liveC)]) /
                                 static_cast<double>(w.cycles)
                           : 0.0;
            strip += heatGlyph(peak > 0.0 ? v / peak : 0.0);
        }
        std::printf("  streams   |%s|  peak %.1f live\n", strip.c_str(),
                    peak);
    }

    if (!causeNames.empty()) {
        std::printf("\n  cause legend:");
        for (size_t i = 0; i < causeNames.size(); ++i)
            std::printf(" %c=%s", static_cast<char>('a' + i),
                        causeNames[i].c_str());
        std::printf("\n");
    }
    std::printf("\n");
}

/**
 * Render the critical-path bottleneck tree (unit -> cause -> loop)
 * and the what-if prediction table from a manifest's "critical_path"
 * section, verifying the exact-sum invariant along the way. Returns
 * false when the invariant is broken (rows must sum to the total).
 */
bool
renderCritPath(const JsonValue &cp,
               const std::map<int, LoopRow> &loops,
               const std::string &sourceFile)
{
    const JsonValue *valid = cp.get("valid");
    if (!valid || valid->kind != JsonValue::Kind::Bool ||
        !valid->boolVal) {
        const JsonValue *tr = cp.get("truncated");
        std::printf("critical path for %s: %s\n", sourceFile.c_str(),
                    tr && tr->boolVal
                        ? "recording truncated (event cap hit); "
                          "attribution unavailable"
                        : "no attribution recorded");
        return true;
    }
    uint64_t total = static_cast<uint64_t>(cp.getInt("total_cycles"));
    uint64_t attributed =
        static_cast<uint64_t>(cp.getInt("attributed_cycles"));
    const JsonValue *rows = cp.get("rows");
    if (!rows || !rows->isArray()) {
        std::fprintf(stderr, "wmreport: critical_path section has no "
                             "\"rows\" array\n");
        return false;
    }

    // Nested aggregation, first-seen order (the rows arrive sorted
    // by cycles descending, so groups come out hottest-first).
    struct LoopLeaf
    {
        int loop;
        uint64_t cycles, edges;
    };
    struct CauseNode
    {
        std::string cause;
        uint64_t cycles = 0;
        std::vector<LoopLeaf> leaves;
    };
    struct UnitNode
    {
        std::string unit;
        uint64_t cycles = 0;
        std::vector<CauseNode> causes;
    };
    std::vector<UnitNode> units;
    uint64_t rowSum = 0;
    for (const JsonValue &r : rows->arr) {
        std::string unit = r.getStr("unit");
        std::string cause = r.getStr("cause");
        int loop = static_cast<int>(r.getInt("loop", -1));
        uint64_t cycles = static_cast<uint64_t>(r.getInt("cycles"));
        uint64_t edges = static_cast<uint64_t>(r.getInt("edges"));
        rowSum += cycles;
        UnitNode *un = nullptr;
        for (UnitNode &u : units)
            if (u.unit == unit)
                un = &u;
        if (!un) {
            units.push_back({unit, 0, {}});
            un = &units.back();
        }
        un->cycles += cycles;
        CauseNode *cn = nullptr;
        for (CauseNode &c : un->causes)
            if (c.cause == cause)
                cn = &c;
        if (!cn) {
            un->causes.push_back({cause, 0, {}});
            cn = &un->causes.back();
        }
        cn->cycles += cycles;
        cn->leaves.push_back({loop, cycles, edges});
    }
    std::stable_sort(units.begin(), units.end(),
                     [](const UnitNode &a, const UnitNode &b) {
                         return a.cycles > b.cycles;
                     });

    std::printf("critical-path bottleneck tree for %s (%llu cycles, "
                "%lld critical edges, %lld events)\n",
                sourceFile.c_str(),
                static_cast<unsigned long long>(total),
                static_cast<long long>(cp.getInt("path_length")),
                static_cast<long long>(cp.getInt("events")));
    for (const UnitNode &u : units) {
        std::printf("  %-22s %10llu  %s\n", u.unit.c_str(),
                    static_cast<unsigned long long>(u.cycles),
                    percent(u.cycles, total).c_str());
        for (const CauseNode &c : u.causes) {
            std::printf("    %-20s %10llu  %s\n", c.cause.c_str(),
                        static_cast<unsigned long long>(c.cycles),
                        percent(c.cycles, total).c_str());
            for (const LoopLeaf &l : c.leaves) {
                std::string where = "(outside loops)";
                if (l.loop >= 0) {
                    where = "loop " + std::to_string(l.loop);
                    auto it = loops.find(l.loop);
                    if (it != loops.end() && it->second.line > 0)
                        where += " " + loc(sourceFile,
                                           it->second.line,
                                           it->second.column);
                }
                std::printf("      %-18s %10llu  %s  (%llu edges)\n",
                            where.c_str(),
                            static_cast<unsigned long long>(l.cycles),
                            percent(l.cycles, total).c_str(),
                            static_cast<unsigned long long>(l.edges));
            }
        }
    }

    if (const JsonValue *wi = cp.get("what_if");
        wi && wi->isArray() && !wi->arr.empty()) {
        std::printf("\n  what-if predictions:\n");
        for (const JsonValue &w : wi->arr) {
            std::printf("    %-18s %-38s predicted %.2fx",
                        w.getStr("name").c_str(),
                        w.getStr("description").c_str(),
                        w.getNum("predicted_speedup"));
            const JsonValue *v = w.get("validated");
            if (v && v->boolVal)
                std::printf("  measured %.2fx  error %.1f%%",
                            w.getNum("measured_speedup"),
                            w.getNum("error_pct"));
            else
                std::printf("  (not validated)");
            std::printf("\n");
        }
    }
    std::printf("\n  attributed %llu of %llu cycles\n\n",
                static_cast<unsigned long long>(rowSum),
                static_cast<unsigned long long>(total));

    if (rowSum != total || attributed != total) {
        std::fprintf(stderr,
                     "wmreport: critical-path attribution broken: "
                     "rows sum to %llu (document says %llu), total "
                     "is %llu\n",
                     static_cast<unsigned long long>(rowSum),
                     static_cast<unsigned long long>(attributed),
                     static_cast<unsigned long long>(total));
        return false;
    }
    return true;
}

} // namespace

static int
reportMain(int argc, char **argv)
{
    bool timeline = false;
    bool critpath = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--timeline") == 0)
            timeline = true;
        else if (std::strcmp(argv[i], "--critpath") == 0)
            critpath = true;
        else if (argv[i][0] == '-' && argv[i][1] != '\0') {
            std::fprintf(stderr, "wmreport: unknown option %s\n",
                         argv[i]);
            return usage();
        } else
            paths.push_back(argv[i]);
    }

    JsonValue doc1, doc2;
    const JsonValue *remarksPtr = nullptr;
    const JsonValue *statsPtr = nullptr;
    const JsonValue *tsPtr = nullptr;
    const JsonValue *cpPtr = nullptr;
    std::string statsPath;
    if (paths.size() == 1) {
        // Manifest mode: one document embedding all the sections.
        if (!loadJson(paths[0], doc1))
            return 1;
        if (doc1.getStr("kind") != "run_manifest" ||
            doc1.getInt("schema_version", -1) != 1) {
            std::fprintf(stderr,
                         "wmreport: %s is not a schema_version 1 "
                         "run_manifest (wmc --manifest)\n",
                         paths[0].c_str());
            return 1;
        }
        remarksPtr = doc1.get("remarks");
        statsPtr = doc1.get("stats");
        tsPtr = doc1.get("timeseries");
        cpPtr = doc1.get("critical_path");
        if (!remarksPtr || !remarksPtr->isObject()) {
            std::fprintf(stderr,
                         "wmreport: %s has no \"remarks\" section\n",
                         paths[0].c_str());
            return 1;
        }
        if (!statsPtr || !statsPtr->isObject()) {
            std::fprintf(stderr,
                         "wmreport: %s has no \"stats\" section "
                         "(compile-only manifest? rerun wmc with "
                         "--run)\n",
                         paths[0].c_str());
            return 1;
        }
        statsPath = paths[0];
    } else if (paths.size() == 2) {
        if (!loadJson(paths[0], doc1) || !loadJson(paths[1], doc2))
            return 1;
        remarksPtr = &doc1;
        statsPtr = &doc2;
        statsPath = paths[1];
    } else
        return usage();

    const JsonValue &remarksDoc = *remarksPtr;
    const JsonValue &statsDoc = *statsPtr;

    for (const auto *doc : {&remarksDoc, &statsDoc}) {
        int64_t v = doc->getInt("schema_version", -1);
        if (v != 1) {
            std::fprintf(stderr,
                         "wmreport: unsupported schema_version %lld "
                         "(expected 1)\n",
                         static_cast<long long>(v));
            return 1;
        }
    }

    std::string sourceFile = remarksDoc.getStr("file", "<unknown>");
    std::string statsSource = statsDoc.getStr("source");
    if (!statsSource.empty() && statsSource != sourceFile)
        std::fprintf(stderr,
                     "wmreport: warning: remarks are for %s but stats "
                     "are for %s\n",
                     sourceFile.c_str(), statsSource.c_str());

    // Loop registry from the remarks document.
    std::map<int, LoopRow> loops;
    if (const JsonValue *ls = remarksDoc.get("loops"); ls && ls->isArray())
        for (const JsonValue &l : ls->arr) {
            LoopRow row;
            row.id = static_cast<int>(l.getInt("id", -1));
            row.function = l.getStr("function");
            row.line = static_cast<int>(l.getInt("line"));
            row.column = static_cast<int>(l.getInt("column"));
            loops[row.id] = row;
        }

    // Attach remarks to their loops.
    if (const JsonValue *rs = remarksDoc.get("remarks");
        rs && rs->isArray())
        for (const JsonValue &r : rs->arr) {
            RemarkRow row;
            row.pass = r.getStr("pass");
            row.verdict = r.getStr("verdict");
            row.reason = r.getStr("reason");
            row.line = static_cast<int>(r.getInt("line"));
            row.column = static_cast<int>(r.getInt("column"));
            if (const JsonValue *args = r.get("args");
                args && args->isObject())
                for (const auto &kv : args->members) {
                    if (!row.argText.empty())
                        row.argText += " ";
                    row.argText += kv.first + "=";
                    row.argText += kv.second.kind ==
                                           JsonValue::Kind::String
                                       ? kv.second.strVal
                                       : (kv.second.isInt
                                              ? std::to_string(
                                                    kv.second.intVal)
                                              : std::to_string(
                                                    kv.second.numVal));
                }
            int id = static_cast<int>(r.getInt("loop", -1));
            LoopRow &lr = loops[id]; // loop-less remarks land on id -1
            lr.id = id;
            if (lr.function.empty())
                lr.function = r.getStr("function");
            loops[id].remarks.push_back(std::move(row));
        }

    if (timeline) {
        if (!tsPtr || !tsPtr->isObject()) {
            std::fprintf(stderr,
                         "wmreport: --timeline needs a manifest with "
                         "a \"timeseries\" section (wmc --run "
                         "--manifest)\n");
            return 1;
        }
        TsData ts;
        if (!parseTimeseries(*tsPtr, ts)) {
            std::fprintf(stderr,
                         "wmreport: malformed \"timeseries\" section "
                         "in %s\n",
                         paths[0].c_str());
            return 1;
        }
        // The exact-sum invariant: every cumulative channel must sum
        // to its aggregate counter. A faulted run's final partial
        // cycle was never sampled, so the check only applies to
        // clean runs.
        const JsonValue *sim = statsDoc.get("sim");
        bool faulted = statsDoc.get("fault") != nullptr;
        if (!faulted && sim && sim->isObject() &&
            !checkTimeseriesSums(ts, *sim))
            return 1;
        renderTimeline(ts, sourceFile);
    }

    if (critpath) {
        if (!cpPtr || !cpPtr->isObject()) {
            std::fprintf(stderr,
                         "wmreport: --critpath needs a manifest with "
                         "a \"critical_path\" section (wmc --run "
                         "--critpath --manifest)\n");
            return 1;
        }
        if (!renderCritPath(*cpPtr, loops, sourceFile))
            return 1;
    }

    // A faulted run writes a "fault" section instead of stats;
    // surface the watchdog forensics instead of complaining about the
    // missing join key.
    if (const JsonValue *fault = statsDoc.get("fault");
        fault && fault->isObject()) {
        std::printf("simulation fault for %s: %s\n", sourceFile.c_str(),
                    fault->getStr("kind", "?").c_str());
        std::string err = statsDoc.getStr("error");
        if (!err.empty())
            std::printf("  %s\n", err.c_str());
        if (const JsonValue *rep = fault->get("report");
            rep && rep->isObject()) {
            std::printf("  signature: %s\n",
                        rep->getStr("signature").c_str());
            if (const JsonValue *wf = rep->get("wait_for");
                wf && wf->isObject())
                if (const JsonValue *chain = wf->get("chain");
                    chain && chain->isArray() && !chain->arr.empty()) {
                    std::printf("  wait-for:");
                    for (size_t i = 0; i < chain->arr.size(); ++i)
                        std::printf("%s%s", i ? " -> " : " ",
                                    chain->arr[i].strVal.c_str());
                    std::printf("\n");
                }
            if (const JsonValue *units = rep->get("units");
                units && units->isArray())
                for (const JsonValue &u : units->arr)
                    if (u.get("blocked") && u.get("blocked")->boolVal)
                        std::printf("  blocked: %-5s %s\n",
                                    u.getStr("unit").c_str(),
                                    u.getStr("cause").c_str());
        }
        return 1;
    }

    // Per-loop cycle buckets from the stats document.
    uint64_t attributed = 0;
    if (const JsonValue *ls = statsDoc.get("loops"); ls && ls->isArray())
        for (const JsonValue &l : ls->arr) {
            int id = static_cast<int>(l.getInt("loop", -1));
            LoopRow &row = loops[id];
            row.id = id;
            row.inStats = true;
            row.cycles = static_cast<uint64_t>(l.getInt("cycles"));
            row.ieuStall =
                static_cast<uint64_t>(l.getInt("ieu_stall_cycles"));
            row.feuStall =
                static_cast<uint64_t>(l.getInt("feu_stall_cycles"));
            row.ifuStall =
                static_cast<uint64_t>(l.getInt("ifu_stall_cycles"));
            row.dominantStall = l.getStr("dominant_stall", "none");
            attributed += row.cycles;
        }
    else {
        std::fprintf(stderr,
                     "wmreport: %s has no \"loops\" section (need "
                     "wmc --run --stats-json for the wm target)\n",
                     statsPath.c_str());
        return 1;
    }

    uint64_t totalCycles = 0;
    if (const JsonValue *sim = statsDoc.get("sim"); sim && sim->isObject())
        totalCycles = static_cast<uint64_t>(sim->getInt("cycles"));

    std::printf("per-loop report for %s (%llu cycles)\n\n",
                sourceFile.c_str(),
                static_cast<unsigned long long>(totalCycles));
    std::printf("%5s  %-28s %10s %7s  %-18s %s\n", "loop", "location",
                "cycles", "share", "dominant stall", "decisions");

    for (const auto &[id, row] : loops) {
        int applied = 0, missedCnt = 0;
        for (const RemarkRow &r : row.remarks)
            (r.verdict == "applied" ? applied : missedCnt) += 1;
        std::string decisions;
        if (id >= 0) {
            decisions = std::to_string(applied) + " applied, " +
                        std::to_string(missedCnt) + " missed";
        } else {
            decisions = "(outside loops)";
        }
        std::string where =
            id >= 0 ? loc(sourceFile, row.line, row.column) : "-";
        std::printf("%5d  %-28s %10llu %7s  %-18s %s\n", id,
                    where.c_str(),
                    static_cast<unsigned long long>(row.cycles),
                    percent(row.cycles, totalCycles).c_str(),
                    row.cycles ? row.dominantStall.c_str() : "-",
                    decisions.c_str());
        for (const RemarkRow &r : row.remarks) {
            std::printf("       %s %s: %s", r.pass.c_str(),
                        r.verdict.c_str(), r.reason.c_str());
            if (!r.argText.empty())
                std::printf(" [%s]", r.argText.c_str());
            if (r.line > 0)
                std::printf("  (%s)",
                            loc(sourceFile, r.line, r.column).c_str());
            std::printf("\n");
        }
    }

    std::printf("\nattributed %llu of %llu cycles\n",
                static_cast<unsigned long long>(attributed),
                static_cast<unsigned long long>(totalCycles));
    if (attributed != totalCycles) {
        std::fprintf(stderr,
                     "wmreport: attribution broken: per-loop buckets "
                     "sum to %llu, total is %llu\n",
                     static_cast<unsigned long long>(attributed),
                     static_cast<unsigned long long>(totalCycles));
        return 1;
    }
    return 0;
}

/** Translate an escaped InternalError (support/diag.h) to exit 70 at
 *  the process boundary, like wmc and wmfuzz. */
int
main(int argc, char **argv)
{
    try {
        return reportMain(argc, argv);
    } catch (const wmstream::InternalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 70;
    }
}
