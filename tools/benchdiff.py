#!/usr/bin/env python3
"""Compare bench --json-out results against a committed baseline.

The bench harnesses emit one JSON document each (schema_version 1,
see DESIGN.md "JSON schemas"):

    {"schema_version": 1, "bench": "<name>", "rows": [
        {"label": "...", "<metric>": <number>, ..., "sim": {...}}, ...]}

BENCH_baseline.json at the repo root is the merged form:

    {"schema_version": 1, "benches": {"<name>": <report doc>, ...}}

Two modes:

    benchdiff.py merge -o BENCH_baseline.json out1.json out2.json ...
        Merge per-harness documents into a baseline (how the committed
        baseline is [re]generated).

    benchdiff.py diff BENCH_baseline.json current1.json ... \
            [--threshold-pct 5]
        Compare current documents (single reports or merged files)
        against the baseline. Exits 1 when any gated metric regressed
        by more than the threshold, or when a baseline row/metric
        disappeared (coverage loss); improvements and new rows are
        reported but pass.

Only deterministic metrics are compared: cycle-like keys (equal to or
ending in "cycles", or starting with "cycles") plus the explicit
batch-service counters below (TU outcomes, compile attempts, ladder
demotions — pure functions of sources and options). Other numbers
(percentages, counts of streams) are descriptive, and the simulator
is deterministic, so a >5% growth in a gated metric is a real codegen,
simulator, or retry-policy regression, not noise.

Host-dependent throughput metrics (wall-clock times, cycles/second —
anything whose key mentions "wall" or "per_sec", as emitted by the
simthroughput harness and wmc --manifest host sections) are NEVER
compared, even when unknown keys are added later: they vary from
machine to machine and would trip the gate with noise rather than
regressions.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"benchdiff: {path}: {e}")
    ver = doc.get("schema_version")
    if ver != 1:
        sys.exit(f"benchdiff: {path}: unsupported schema_version {ver!r}")
    return doc


def as_benches(doc, path):
    """Normalize a document to {bench_name: report}."""
    if "benches" in doc:
        return doc["benches"]
    if "bench" in doc:
        return {doc["bench"]: doc}
    sys.exit(f"benchdiff: {path}: neither a bench report nor a baseline")


# Markers of host-dependent (wall-clock) metrics: never compared, no
# matter what other patterns the key matches.
HOST_METRIC_MARKERS = ("wall", "per_sec")


def is_host_metric(key):
    k = key.lower()
    return any(m in k for m in HOST_METRIC_MARKERS)


# Deterministic batch-service counters (bench/batchthroughput.cc):
# pure functions of (TU sources, options), so any drift is a real
# retry/demotion-policy change and gates exactly like a cycle count.
DETERMINISTIC_COUNTERS = frozenset({
    "tus", "ok", "ok_degraded", "failed", "quarantined", "attempts",
    "demotions",
})


def is_gated_metric(key):
    if is_host_metric(key):
        return False
    if key in DETERMINISTIC_COUNTERS:
        return True
    return key == "cycles" or key.endswith("cycles") or \
        key.startswith("cycles")


def row_metrics(row):
    metrics = {k: v for k, v in row.items()
               if isinstance(v, (int, float)) and not isinstance(v, bool)
               and is_gated_metric(k)}
    # Attached simulator counters: total cycles is the headline number.
    sim = row.get("sim")
    if isinstance(sim, dict) and isinstance(sim.get("cycles"), int):
        metrics["sim.cycles"] = sim["cycles"]
    return metrics


def merge(args):
    benches = {}
    for path in args.inputs:
        for name, report in as_benches(load(path), path).items():
            if name in benches:
                sys.exit(f"benchdiff: duplicate bench {name!r} in {path}")
            benches[name] = report
    out = {"schema_version": 1, "benches": benches}
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"benchdiff: wrote {args.output} "
          f"({len(benches)} benches)")
    return 0


def diff(args):
    base = as_benches(load(args.baseline), args.baseline)
    current = {}
    for path in args.current:
        current.update(as_benches(load(path), path))

    threshold = args.threshold_pct / 100.0
    failures = []
    compared = 0

    for name, cur_report in sorted(current.items()):
        base_report = base.get(name)
        if base_report is None:
            print(f"  new bench {name} (not in baseline)")
            continue
        base_rows = {r["label"]: r for r in base_report.get("rows", [])}
        cur_rows = {r["label"]: r for r in cur_report.get("rows", [])}
        for label, brow in base_rows.items():
            crow = cur_rows.get(label)
            if crow is None:
                failures.append(f"{name}/{label}: row disappeared")
                continue
            cmetrics = row_metrics(crow)
            for key, bval in row_metrics(brow).items():
                if key not in cmetrics:
                    failures.append(f"{name}/{label}/{key}: "
                                    f"metric disappeared")
                    continue
                cval = cmetrics[key]
                compared += 1
                if bval <= 0:
                    continue
                delta = (cval - bval) / bval
                tag = f"{name}/{label}/{key}"
                if delta > threshold:
                    failures.append(
                        f"{tag}: {bval:g} -> {cval:g} "
                        f"(+{100 * delta:.1f}% > "
                        f"{args.threshold_pct:g}%)")
                elif delta != 0:
                    print(f"  {tag}: {bval:g} -> {cval:g} "
                          f"({100 * delta:+.1f}%)")
        for label in cur_rows.keys() - base_rows.keys():
            print(f"  new row {name}/{label} (not in baseline)")

    print(f"benchdiff: compared {compared} gated metrics across "
          f"{len(current)} bench(es)")
    if failures:
        print("benchdiff: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("benchdiff: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="mode", required=True)

    mp = sub.add_parser("merge", help="merge reports into a baseline")
    mp.add_argument("-o", "--output", required=True)
    mp.add_argument("inputs", nargs="+")
    mp.set_defaults(func=merge)

    dp = sub.add_parser("diff", help="compare current against baseline")
    dp.add_argument("baseline")
    dp.add_argument("current", nargs="+")
    dp.add_argument("--threshold-pct", type=float, default=5.0,
                    help="max allowed cycle growth in percent "
                         "(default 5)")
    dp.set_defaults(func=diff)

    args = ap.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
