/**
 * @file
 * Semantics tests for the reference interpreter — the oracle the
 * compiled configurations are checked against, so its own behaviour is
 * pinned down here.
 */

#include <gtest/gtest.h>

#include "frontend/parser.h"
#include "interp/interp.h"

using namespace wmstream;

namespace {

int64_t
run(const std::string &src)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str();
    if (!unit)
        return INT64_MIN;
    interp::Interpreter in(*unit);
    auto res = in.run();
    EXPECT_TRUE(res.ok) << res.error;
    return res.returnValue;
}

std::string
runError(const std::string &src)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str();
    interp::Interpreter in(*unit);
    auto res = in.run();
    EXPECT_FALSE(res.ok);
    return res.error;
}

} // namespace

TEST(Interp, IntegerArithmetic)
{
    EXPECT_EQ(run("int main(void) { return 7 + 3 * 4 - 6 / 2; }"), 16);
    EXPECT_EQ(run("int main(void) { return 17 % 5; }"), 2);
    EXPECT_EQ(run("int main(void) { return -5 + 2; }"), -3);
    EXPECT_EQ(run("int main(void) { return 1 << 10; }"), 1024);
    EXPECT_EQ(run("int main(void) { return 1024 >> 3; }"), 128);
    EXPECT_EQ(run("int main(void) { return (12 & 10) | (1 ^ 3); }"), 10);
    EXPECT_EQ(run("int main(void) { return ~0; }"), -1);
}

TEST(Interp, Comparisons)
{
    EXPECT_EQ(run("int main(void) { return (1 < 2) + (2 <= 2) + (3 > 2) "
                  "+ (2 >= 3) + (1 == 1) + (1 != 1); }"),
              4);
}

TEST(Interp, DoubleArithmeticAndConversion)
{
    EXPECT_EQ(run("int main(void) { double d; d = 2.5 * 4.0; return d; }"),
              10);
    EXPECT_EQ(run("int main(void) { double d; d = 7; return d / 2.0; }"),
              3); // 3.5 truncates
    EXPECT_EQ(run("int main(void) { int i; i = 3.99; return i; }"), 3);
}

TEST(Interp, ShortCircuitEvaluation)
{
    // The right side of && must not evaluate when the left is false:
    // division by zero would error out.
    EXPECT_EQ(run("int main(void) { int z; z = 0; "
                  "return z != 0 && 10 / z > 0; }"),
              0);
    EXPECT_EQ(run("int main(void) { int z; z = 0; "
                  "return z == 0 || 10 / z > 0; }"),
              1);
}

TEST(Interp, ConditionalExpression)
{
    EXPECT_EQ(run("int main(void) { int a; a = 5; "
                  "return a > 3 ? a * 2 : a - 1; }"),
              10);
}

TEST(Interp, WhileAndDoWhile)
{
    EXPECT_EQ(run(R"(
int main(void) {
    int i, s;
    i = 0; s = 0;
    while (i < 5) { s = s + i; i = i + 1; }
    do { s = s + 100; } while (s < 0);
    return s;
})"),
              110);
}

TEST(Interp, BreakAndContinue)
{
    EXPECT_EQ(run(R"(
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 10; i++) {
        if (i == 3)
            continue;
        if (i == 6)
            break;
        s = s + i;
    }
    return s;
})"),
              0 + 1 + 2 + 4 + 5);
}

TEST(Interp, GlobalArraysAndInitializers)
{
    EXPECT_EQ(run(R"(
int a[5] = {10, 20, 30};
int main(void) { return a[0] + a[1] + a[2] + a[3] + a[4]; }
)"),
              60); // trailing elements zero
}

TEST(Interp, TwoDimensionalArrays)
{
    EXPECT_EQ(run(R"(
int g[3][4];
int main(void) {
    int r, c, s;
    for (r = 0; r < 3; r++)
        for (c = 0; c < 4; c++)
            g[r][c] = r * 10 + c;
    s = 0;
    for (r = 0; r < 3; r++)
        s = s + g[r][3];
    return s;
})"),
              3 + 13 + 23);
}

TEST(Interp, CharArraysTruncateAndZeroExtend)
{
    EXPECT_EQ(run(R"(
char c[4];
int main(void) {
    c[0] = 300;   /* truncates to 44 */
    c[1] = -1;    /* truncates to 255, loads back unsigned */
    return c[0] + c[1];
})"),
              44 + 255);
}

TEST(Interp, StringsInPool)
{
    EXPECT_EQ(run(R"(
int main(void) {
    char *s;
    int n;
    s = "abc";
    n = 0;
    while (s[n])
        n = n + 1;
    return n + s[0];
})"),
              3 + 'a');
}

TEST(Interp, PointerArithmeticAndDeref)
{
    EXPECT_EQ(run(R"(
int a[4] = {5, 6, 7, 8};
int main(void) {
    int *p, *q;
    p = a;
    q = p + 3;
    *p = 50;
    return *q + (q - p) + a[0];
})"),
              8 + 3 + 50);
}

TEST(Interp, PointerWalk)
{
    EXPECT_EQ(run(R"(
char src[8] = "hello";
char dst[8];
int main(void) {
    char *s, *d;
    s = src;
    d = dst;
    while (*s) {
        *d = *s;
        d = d + 1;
        s = s + 1;
    }
    *d = 0;
    return dst[0] + dst[4];
})"),
              'h' + 'o');
}

TEST(Interp, RecursionFibonacci)
{
    EXPECT_EQ(run(R"(
int fib(int n) {
    if (n < 2)
        return n;
    return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(12); }
)"),
              144);
}

TEST(Interp, MutualRecursion)
{
    EXPECT_EQ(run(R"(
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
int main(void) { return isEven(10) * 10 + isOdd(7); }
)"),
              11);
}

TEST(Interp, IncDecSemantics)
{
    EXPECT_EQ(run(R"(
int main(void) {
    int a, s;
    a = 5;
    s = a++;      /* s=5 a=6 */
    s = s + ++a;  /* a=7 s=12 */
    s = s + a--;  /* s=19 a=6 */
    s = s + --a;  /* a=5 s=24 */
    return s * 10 + a;
})"),
              245);
}

TEST(Interp, PostIncrementThroughPointer)
{
    EXPECT_EQ(run(R"(
char buf[4];
int main(void) {
    char *p;
    p = buf;
    *p++ = 'a';
    *p++ = 'b';
    return (p - buf) * 100 + buf[0] + buf[1];
})"),
              200 + 'a' + 'b');
}

TEST(Interp, AddressTakenLocals)
{
    EXPECT_EQ(run(R"(
void bump(int *p) { *p = *p + 7; }
int main(void) {
    int v;
    v = 10;
    bump(&v);
    return v;
})"),
              17);
}

TEST(Interp, LocalArrays)
{
    EXPECT_EQ(run(R"(
int main(void) {
    int a[8];
    int i, s;
    for (i = 0; i < 8; i++)
        a[i] = i * i;
    s = 0;
    for (i = 0; i < 8; i++)
        s = s + a[i];
    return s;
})"),
              140);
}

TEST(Interp, DivisionByZeroIsRuntimeError)
{
    EXPECT_NE(runError("int main(void) { int z; z = 0; return 4 / z; }"),
              "");
}

TEST(Interp, InfiniteLoopHitsStepBudget)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(
        "int main(void) { for (;;) {} return 0; }", diag);
    ASSERT_TRUE(unit != nullptr);
    interp::Interpreter in(*unit);
    auto res = in.run(/*stepBudget=*/10000);
    EXPECT_FALSE(res.ok);
}

TEST(Interp, MemoryInspection)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(R"(
double d = 2.5;
int i = 42;
char c = 'x';
int main(void) { return 0; }
)",
                                        diag);
    ASSERT_TRUE(unit != nullptr);
    interp::Interpreter in(*unit);
    ASSERT_TRUE(in.run().ok);
    EXPECT_DOUBLE_EQ(in.readDouble(in.globalAddress("d")), 2.5);
    EXPECT_EQ(in.readInt(in.globalAddress("i")), 42);
    EXPECT_EQ(in.readByte(in.globalAddress("c")), 'x');
}
