/**
 * @file
 * Tests for the code expander's output invariants: the contracts every
 * later phase relies on.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "expand/expander.h"
#include "frontend/parser.h"
#include "rtl/machine.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

std::unique_ptr<Program>
expandSrc(const std::string &src, MachineKind kind = MachineKind::WM)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str();
    auto prog = std::make_unique<Program>();
    expand::expandUnit(*unit, kind == MachineKind::WM ? wmTraits()
                                                      : scalarTraits(),
                       *prog);
    return prog;
}

const char *kKitchenSink = R"(
int n = 10;
double d[10];
char msg[6] = "abc";
int scale(int v) { return v * 3; }
int main(void) {
    int i, s;
    double acc;
    acc = 0.0;
    s = 0;
    for (i = 0; i < n; i++) {
        d[i] = i * 0.5;
        acc = acc + d[i];
        s = s + scale(i) + msg[i % 3];
    }
    if (acc > 10.0)
        s = s + 1;
    return s;
}
)";

} // namespace

TEST(Expander, NoMemNodesInsideAssigns)
{
    // The central invariant: all memory traffic is an explicit
    // Load/Store instruction; Mem expression nodes never appear in
    // Assign sources (machine-independent analyses depend on this).
    auto prog = expandSrc(kKitchenSink);
    for (const auto &fn : prog->functions()) {
        for (const auto &b : fn->blocks()) {
            for (const Inst &inst : b->insts) {
                if (inst.kind != InstKind::Assign)
                    continue;
                EXPECT_FALSE(containsMem(inst.src)) << inst.str();
            }
        }
    }
}

TEST(Expander, BranchesOnlyTerminateBlocks)
{
    auto prog = expandSrc(kKitchenSink);
    for (const auto &fn : prog->functions()) {
        for (const auto &b : fn->blocks()) {
            for (size_t i = 0; i + 1 < b->insts.size(); ++i)
                EXPECT_FALSE(b->insts[i].isTerminator())
                    << b->insts[i].str();
        }
    }
}

TEST(Expander, EveryPathEndsInReturn)
{
    auto prog = expandSrc(kKitchenSink);
    for (const auto &fn : prog->functions()) {
        fn->recomputeCfg();
        for (const auto &b : fn->blocks()) {
            if (b->succs.empty()) {
                const Inst *t = b->terminator();
                ASSERT_TRUE(t != nullptr) << fn->name();
                EXPECT_EQ(t->kind, InstKind::Return);
            }
        }
    }
}

TEST(Expander, GlobalsCarryInitializerBytes)
{
    auto prog = expandSrc(kKitchenSink);
    auto *n = prog->findGlobal("n");
    ASSERT_TRUE(n != nullptr);
    ASSERT_GE(n->init.size(), 8u);
    int64_t v;
    std::memcpy(&v, n->init.data(), 8);
    EXPECT_EQ(v, 10);

    auto *msg = prog->findGlobal("msg");
    ASSERT_TRUE(msg != nullptr);
    EXPECT_EQ(msg->size, 6);
    EXPECT_EQ(msg->init[0], 'a');
    EXPECT_EQ(msg->init[3], 0);
}

TEST(Expander, UnaliasedScalarGlobalMarked)
{
    auto prog = expandSrc(kKitchenSink);
    EXPECT_FALSE(prog->findGlobal("n")->mayBeAliased);
    EXPECT_TRUE(prog->findGlobal("d")->mayBeAliased); // array
}

TEST(Expander, FloatConstantsPooledAndDeduplicated)
{
    auto prog = expandSrc(R"(
int main(void) {
    double a, b;
    a = 2.5;
    b = 2.5;   /* same constant: one pool entry */
    return a + b + 7.25;
}
)");
    int poolEntries = 0;
    for (const auto &g : prog->globals()) {
        if (g.name.rfind("__fc", 0) == 0) {
            ++poolEntries;
            EXPECT_TRUE(g.readOnly);
            EXPECT_FALSE(g.mayBeAliased);
        }
    }
    EXPECT_EQ(poolEntries, 2); // 2.5 and 7.25
}

TEST(Expander, ZeroFloatUsesZeroRegister)
{
    auto prog = expandSrc("int main(void) { double d; d = 0.0; "
                          "return d; }");
    // No constant-pool entry for 0.0: f31 is hardwired zero.
    for (const auto &g : prog->globals())
        EXPECT_NE(g.name, "__fc0");
}

TEST(Expander, CallArgumentsUseArgRegisters)
{
    auto prog = expandSrc(R"(
int add3(int a, int b, int c) { return a + b + c; }
int main(void) { return add3(1, 2, 3); }
)");
    Function *fn = prog->findFunction("main");
    bool sawCall = false;
    for (const auto &b : fn->blocks()) {
        for (const Inst &inst : b->insts) {
            if (inst.kind != InstKind::Call)
                continue;
            sawCall = true;
            ASSERT_EQ(inst.extraUses.size(), 3u);
            for (size_t i = 0; i < 3; ++i) {
                EXPECT_EQ(inst.extraUses[i]->regFile(), RegFile::Int);
                EXPECT_EQ(inst.extraUses[i]->regIndex(),
                          2 + static_cast<int>(i));
            }
        }
    }
    EXPECT_TRUE(sawCall);
}

TEST(Expander, RotatedLoopShape)
{
    // for-loops expand to guarded bottom-test form (the paper's
    // Figure 4 structure): a guard compare+branch before the loop and
    // a compare+branch back edge at the bottom.
    auto prog = expandSrc(R"(
int n = 8;
int a[8];
int main(void) {
    int i;
    for (i = 0; i < n; i++)
        a[i] = i;
    return a[7];
}
)");
    Function *fn = prog->findFunction("main");
    fn->recomputeCfg();
    int backEdges = 0;
    for (const auto &b : fn->blocks()) {
        const Inst *t = b->terminator();
        if (t && t->kind == InstKind::CondJump) {
            // a conditional jump whose target appears earlier in layout
            for (const auto &b2 : fn->blocks()) {
                if (b2->label() == t->target) {
                    // is b2 at or before b in layout?
                    for (const auto &b3 : fn->blocks()) {
                        if (b3.get() == b2.get()) {
                            ++backEdges;
                            break;
                        }
                        if (b3.get() == b.get())
                            break;
                    }
                }
            }
        }
    }
    EXPECT_GE(backEdges, 1);
}

TEST(Expander, ShortCircuitProducesBranches)
{
    auto prog = expandSrc(R"(
int main(void) {
    int a, b;
    a = 1;
    b = 0;
    if (a && b)
        return 1;
    if (a || b)
        return 2;
    return 3;
}
)");
    // Multiple conditional branches, one per short-circuit leg.
    Function *fn = prog->findFunction("main");
    int condJumps = 0;
    for (const auto &b : fn->blocks())
        for (const Inst &inst : b->insts)
            if (inst.kind == InstKind::CondJump)
                ++condJumps;
    EXPECT_GE(condJumps, 3);
}

TEST(Expander, ScalarTargetSameShapeDifferentLegality)
{
    auto wm = expandSrc(kKitchenSink, MachineKind::WM);
    auto sc = expandSrc(kKitchenSink, MachineKind::Scalar);
    // Expansion is target-parameterized but the naive code is the
    // same shape; counts match.
    EXPECT_EQ(wm->functions().size(), sc->functions().size());
    for (size_t i = 0; i < wm->functions().size(); ++i) {
        EXPECT_EQ(wm->functions()[i]->instCount(),
                  sc->functions()[i]->instCount());
    }
}
