/**
 * @file
 * Tests for the causal critical-path profiler: recorder mechanics
 * (capacity resolution, truncation), the exact-sum attribution
 * invariant over real compiled programs and a fuzz-generated corpus,
 * and the what-if validation criterion — predicted speedup from DAG
 * replay within 10% of the re-simulated speedup on the Table II
 * programs for the deeper-FIFO and zero-latency-SCU scenarios.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "driver/compiler.h"
#include "fuzz/generator.h"
#include "obs/critpath.h"
#include "programs/programs.h"
#include "support/rng.h"
#include "wmsim/sim.h"
#include "wmsim/whatif.h"

using namespace wmstream;

namespace {

/** Compile @p src and simulate it with a fresh recorder attached. */
struct RecordedRun
{
    wmsim::SimResult res;
    obs::CritPath cp;
};

void
recordRun(const std::string &src, RecordedRun &out,
          wmsim::SimConfig cfg = {})
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(src, opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    cfg.critpath = &out.cp;
    cfg.maxCycles = 20'000'000ull;
    out.res = wmsim::simulate(*cr.program, cfg);
}

/** Exact-sum invariant: attribution partitions the simulated cycles. */
void
checkExactSum(const RecordedRun &r)
{
    ASSERT_TRUE(r.res.ok) << r.res.error;
    auto an = r.cp.analyze();
    ASSERT_TRUE(an.valid);
    EXPECT_EQ(an.totalCycles, r.res.stats.cycles);
    EXPECT_EQ(an.attributed, an.totalCycles);
    uint64_t rowSum = 0;
    for (const auto &row : an.rows)
        rowSum += row.cycles;
    EXPECT_EQ(rowSum, an.totalCycles);
}

} // namespace

TEST(CritPathRecorder, DirectDepsAndBackwardWalk)
{
    // Three events in a chain: 0 @c0 -> 1 @c4 -> end @c10. The walk
    // attributes (4,10] to the end's cause, (0,4] to event 1's, and
    // the root's own cycle 0 to "start".
    obs::CritPath cp;
    uint8_t ua = cp.unit("a");
    uint8_t ub = cp.unit("b");
    uint8_t cx = cp.cause("x");
    uint8_t cy = cp.cause("y");
    int32_t e0 = cp.event(0, ua, -1);
    int32_t e1 = cp.event(4, ua, 7);
    cp.dep(e0, cx, 1.0f);
    int32_t e2 = cp.event(10, ub, -1);
    cp.dep(e1, cy, 1.0f);
    cp.setEnd(e2);

    auto an = cp.analyze();
    ASSERT_TRUE(an.valid);
    EXPECT_EQ(an.totalCycles, 10u);
    EXPECT_EQ(an.attributed, 10u);
    EXPECT_EQ(an.pathLength, 2u);
    ASSERT_EQ(an.rows.size(), 3u);
    // Sorted by cycles descending: (b,y,-1)=6, (a,x,7)=4, (a,start)=0.
    EXPECT_EQ(an.rows[0].unit, ub);
    EXPECT_EQ(an.rows[0].cause, cy);
    EXPECT_EQ(an.rows[0].cycles, 6u);
    EXPECT_EQ(an.rows[1].unit, ua);
    EXPECT_EQ(an.rows[1].cause, cx);
    EXPECT_EQ(an.rows[1].loop, 7);
    EXPECT_EQ(an.rows[1].cycles, 4u);
    EXPECT_EQ(an.rows[2].cause, obs::CritPath::kCauseStart);
    EXPECT_EQ(an.rows[2].cycles, 0u);
}

TEST(CritPathRecorder, WaitCauseOverridesBindingEdgeCause)
{
    obs::CritPath cp;
    uint8_t u = cp.unit("u");
    uint8_t cx = cp.cause("x");
    uint8_t cw = cp.cause("w");
    int32_t e0 = cp.event(0, u, -1);
    int32_t e1 = cp.event(5, u, -1, cw); // stalled, last cause: w
    cp.dep(e0, cx, 1.0f);
    cp.setEnd(e1);
    auto an = cp.analyze();
    ASSERT_TRUE(an.valid);
    ASSERT_GE(an.rows.size(), 1u);
    EXPECT_EQ(an.rows[0].cause, cw);
    EXPECT_EQ(an.rows[0].cycles, 5u);
}

TEST(CritPathRecorder, CapacityDepResolvesAgainstPops)
{
    // Queue of depth 2. Pushes 0,1 never blocked; push 2 was enabled
    // by pop 0; with one extra slot, push 2 never blocked either.
    obs::CritPath cp;
    uint8_t u = cp.unit("u");
    uint8_t cf = cp.cause("full");
    int q = cp.queue("q", 2, /*dataFifo=*/true);

    int32_t p0 = cp.event(1, u, -1);
    cp.pushDep(q, cf, 1.0f);
    (void)p0;
    int32_t p1 = cp.event(2, u, -1);
    cp.pushDep(q, cf, 1.0f);
    (void)p1;
    int32_t c0 = cp.event(9, u, -1); // pop of push 0, late
    cp.pop(q, c0);
    int32_t p2 = cp.event(9, u, -1); // push 2: freed by c0
    cp.pushDep(q, cf, 1.0f);
    cp.setEnd(p2);

    auto an = cp.analyze();
    ASSERT_TRUE(an.valid);
    // Binding pred of the end is c0 (cycle 9), via the capacity dep.
    EXPECT_EQ(an.totalCycles, 9u);
    EXPECT_EQ(an.attributed, 9u);

    // Replay runs in model time (every dep-free event at t=0), so
    // p2 = t[c0] + 1 = 1. With one extra FIFO slot the capacity dep
    // vanishes and p2 replays at 0.
    obs::CritScenario base;
    base.name = "baseline";
    EXPECT_DOUBLE_EQ(cp.replay(base), 1.0);
    obs::CritScenario deeper;
    deeper.name = "deeper";
    deeper.extraDataFifoDepth = 1;
    EXPECT_DOUBLE_EQ(cp.replay(deeper), 0.0);
}

TEST(CritPathRecorder, TruncationInvalidatesAnalysis)
{
    obs::CritPath cp(/*maxEvents=*/2);
    uint8_t u = cp.unit("u");
    EXPECT_GE(cp.event(0, u, -1), 0);
    EXPECT_GE(cp.event(1, u, -1), 0);
    EXPECT_EQ(cp.event(2, u, -1), -1); // over the cap
    EXPECT_TRUE(cp.truncated());
    cp.setEnd(1);
    EXPECT_FALSE(cp.analyze().valid);
    EXPECT_EQ(cp.replay({}), 0.0);
}

TEST(CritPathSim, ExactSumOnScalarProgram)
{
    RecordedRun r;
    recordRun("int main() { int s; int i; s = 0; for (i = 0; i < 50; "
              "i = i + 1) { s = s + i; } return s; }",
              r);
    checkExactSum(r);
    EXPECT_EQ(r.res.returnValue, 50 * 49 / 2);
}

TEST(CritPathSim, ExactSumOnStreamingProgram)
{
    RecordedRun r;
    recordRun(programs::dotProductSource(512), r);
    checkExactSum(r);
}

TEST(CritPathSim, ExactSumOnLivermore5)
{
    RecordedRun r;
    recordRun(programs::livermore5Source(2000), r);
    checkExactSum(r);
}

TEST(CritPathSim, ExactSumOnTableII)
{
    for (const auto &p : programs::tableIIPrograms()) {
        SCOPED_TRACE(p.name);
        RecordedRun r;
        recordRun(p.source, r);
        checkExactSum(r);
    }
}

TEST(CritPathSim, RecordingDoesNotChangeTiming)
{
    for (const auto &p : programs::tableIIPrograms()) {
        SCOPED_TRACE(p.name);
        driver::CompileOptions opts;
        auto cr = driver::compileSource(p.source, opts);
        ASSERT_TRUE(cr.ok) << cr.diagnostics;
        wmsim::SimConfig plain;
        auto base = wmsim::simulate(*cr.program, plain);
        ASSERT_TRUE(base.ok) << base.error;
        obs::CritPath cp;
        wmsim::SimConfig rec;
        rec.critpath = &cp;
        auto instr = wmsim::simulate(*cr.program, rec);
        ASSERT_TRUE(instr.ok) << instr.error;
        EXPECT_EQ(base.stats.cycles, instr.stats.cycles);
        EXPECT_EQ(base.returnValue, instr.returnValue);
    }
}

TEST(CritPathSim, ExactSumOnFuzzCorpus)
{
    // 200 generator programs: the sum invariant must hold on every
    // WM-compilable one (the same corpus shape the wmfuzz smoke in CI
    // runs). Failures here mean a recorded dep points forward in time
    // or a push/pop site went unrecorded.
    support::Rng rng(0xC417'BA7Bull);
    int ran = 0;
    for (int i = 0; i < 200; ++i) {
        auto spec = fuzz::generateSpec(rng);
        std::string src = fuzz::renderProgram(spec);
        SCOPED_TRACE("program " + std::to_string(i));
        driver::CompileOptions opts;
        auto cr = driver::compileSource(src, opts);
        if (!cr.ok)
            continue;
        obs::CritPath cp;
        wmsim::SimConfig cfg;
        cfg.critpath = &cp;
        cfg.maxCycles = 20'000'000ull;
        auto res = wmsim::simulate(*cr.program, cfg);
        if (!res.ok)
            continue; // fault paths checked separately
        auto an = cp.analyze();
        ASSERT_TRUE(an.valid);
        ASSERT_EQ(an.totalCycles, res.stats.cycles);
        ASSERT_EQ(an.attributed, an.totalCycles);
        ++ran;
    }
    EXPECT_GT(ran, 100); // the corpus must mostly compile and run
}

TEST(CritPathSim, EndEventMarkedOnFaultedRun)
{
    // An infinite loop livelocks at maxCycles; the recorder must
    // still get its end event so the partial DAG is analyzable.
    driver::CompileOptions opts;
    auto cr = driver::compileSource(
        "int main() { int i; i = 0; while (1) { i = i + 1; } "
        "return i; }",
        opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    obs::CritPath cp;
    wmsim::SimConfig cfg;
    cfg.critpath = &cp;
    cfg.maxCycles = 20'000;
    auto res = wmsim::simulate(*cr.program, cfg);
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.fault, wmsim::SimFault::Livelock);
    auto an = cp.analyze();
    ASSERT_TRUE(an.valid);
    EXPECT_EQ(an.totalCycles, res.stats.cycles);
    EXPECT_EQ(an.attributed, an.totalCycles);
}

namespace {

/**
 * Run the what-if validation protocol for one program and scenario:
 * predict speedup by replaying the DAG, measure it by re-simulating
 * with the scenario's SimConfig, and return the relative error.
 */
double
whatIfError(const std::string &src, const std::string &scenario)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(src, opts);
    EXPECT_TRUE(cr.ok) << cr.diagnostics;
    if (!cr.ok)
        return 0.0;

    obs::CritPath cp;
    wmsim::SimConfig base;
    base.critpath = &cp;
    auto res = wmsim::simulate(*cr.program, base);
    EXPECT_TRUE(res.ok) << res.error;
    if (!res.ok)
        return 0.0;

    wmsim::SimConfig plain; // critpath cleared for re-simulation
    auto whatIfs = wmsim::critPathWhatIfs(plain);
    for (const auto &w : whatIfs) {
        if (w.name != scenario)
            continue;
        EXPECT_TRUE(w.validatable);
        double baseModel = cp.replay({});
        double scenModel = cp.replay(w.replay);
        EXPECT_GT(baseModel, 0.0);
        EXPECT_GT(scenModel, 0.0);
        double predicted = baseModel / scenModel;

        auto re = wmsim::simulate(*cr.program, w.resim);
        EXPECT_TRUE(re.ok) << re.error;
        EXPECT_EQ(re.returnValue, res.returnValue);
        double measured = static_cast<double>(res.stats.cycles) /
                          static_cast<double>(re.stats.cycles);
        return std::fabs(predicted - measured) / measured;
    }
    ADD_FAILURE() << "scenario not found: " << scenario;
    return 0.0;
}

} // namespace

TEST(CritPathWhatIf, FifoDepthPredictionWithinTenPercent)
{
    for (const auto &p : programs::tableIIPrograms()) {
        SCOPED_TRACE(p.name);
        double err = whatIfError(p.source, "fifo_depth_plus_8");
        EXPECT_LE(err, 0.10) << "relative error " << err;
    }
}

TEST(CritPathWhatIf, ZeroLatencyScuPredictionWithinTenPercent)
{
    for (const auto &p : programs::tableIIPrograms()) {
        SCOPED_TRACE(p.name);
        double err = whatIfError(p.source, "zero_latency_scu");
        EXPECT_LE(err, 0.10) << "relative error " << err;
    }
}
