/**
 * @file
 * Tests for VEU vectorization: pattern recognition, exclusions (the
 * paper: recurrences "are difficult and often impossible to
 * vectorize"), and end-to-end correctness on the vector unit.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "frontend/parser.h"
#include "interp/interp.h"
#include "programs/programs.h"
#include "wmsim/sim.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

int
vectorizedLoops(const driver::CompileResult &cr)
{
    int n = 0;
    for (const auto &r : cr.vectorizeReports)
        n += r.loopsVectorized;
    return n;
}

driver::CompileResult
compileVec(const std::string &src)
{
    driver::CompileOptions opts;
    opts.vectorize = true;
    auto cr = driver::compileSource(src, opts);
    EXPECT_TRUE(cr.ok) << cr.diagnostics;
    return cr;
}

int64_t
oracle(const std::string &src)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str();
    interp::Interpreter in(*unit);
    auto res = in.run();
    EXPECT_TRUE(res.ok) << res.error;
    return res.returnValue;
}

const char *kElementwise = R"(
int n = 500;
double a[500];
double b[500];
double c[500];
int main(void) {
    int i;
    double s;
    for (i = 0; i < n; i++) {
        a[i] = 0.5 + (i & 7) * 0.25;
        b[i] = 2.0 - (i & 3) * 0.5;
    }
    for (i = 0; i < n; i++)
        c[i] = a[i] + b[i];
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + c[i];
    return s;
}
)";

} // namespace

TEST(Vectorize, ElementwiseAddBecomesVecOp)
{
    auto cr = compileVec(kElementwise);
    EXPECT_GE(vectorizedLoops(cr), 1);
    bool hasVecOp = false;
    for (const auto &b : cr.program->findFunction("main")->blocks())
        for (const Inst &inst : b->insts)
            if (inst.kind == InstKind::VecOp)
                hasVecOp = true;
    EXPECT_TRUE(hasVecOp);
}

TEST(Vectorize, ResultMatchesOracle)
{
    int64_t expect = oracle(kElementwise);
    auto cr = compileVec(kElementwise);
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, expect);
    EXPECT_GT(res.stats.vectorElements, 0u);
}

TEST(Vectorize, CopyLoopVectorizes)
{
    const char *src = R"(
int n = 200;
int a[200];
int b[200];
int main(void) {
    int i, s;
    for (i = 0; i < n; i++)
        a[i] = i * 3;
    for (i = 0; i < n; i++)
        b[i] = a[i];
    s = 0;
    for (i = 0; i < n; i++)
        s = s + b[i];
    return s & 65535;
}
)";
    int64_t expect = oracle(src);
    auto cr = compileVec(src);
    EXPECT_GE(vectorizedLoops(cr), 1);
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, expect);
}

TEST(Vectorize, RecurrenceLoopIsNotVectorized)
{
    // The paper's central motivation: LL5's x[i-1] recurrence cannot
    // be vectorized (the body reads a register carried across
    // iterations after the recurrence pass).
    std::string src = programs::livermore5Source(128);
    int64_t expect = oracle(src);
    auto cr = compileVec(src);
    // The LL5 kernel itself must not be a VecOp; other loops (init,
    // checksum has an accumulator - also excluded) may or may not.
    // Verify: the only remaining VecOps never compute a value used by
    // the next element, trivially true by pattern; and correctness:
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, expect);
}

TEST(Vectorize, ReductionIsNotVectorized)
{
    // s = s + a[i]*b[i]: the accumulator is a recurrence; must run on
    // the FEU, not the VEU.
    std::string src = programs::dotProductSource(256);
    auto cr = compileVec(src);
    for (const auto &b : cr.program->findFunction("main")->blocks())
        for (const Inst &inst : b->insts)
            if (inst.kind == InstKind::VecOp) {
                // only stores of pure elementwise results allowed; the
                // dot kernel writes no array, so any VecOp here would
                // be from the init loop (a[i] = expr(i) is not
                // elementwise FIFO->FIFO either).
                FAIL() << "unexpected VecOp: " << inst.str();
            }
    int64_t expect = oracle(src);
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, expect);
}

TEST(Vectorize, ScalarOperandBroadcasts)
{
    const char *src = R"(
int n = 300;
double a[300];
double b[300];
double k;
int main(void) {
    int i;
    double s;
    k = 2.5;
    for (i = 0; i < n; i++)
        a[i] = 1.0 + (i & 15) * 0.125;
    for (i = 0; i < n; i++)
        b[i] = a[i] * k;
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + b[i];
    return s;
}
)";
    int64_t expect = oracle(src);
    auto cr = compileVec(src);
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, expect);
}

TEST(Vectorize, LanesScaleThroughputWithBandwidth)
{
    auto cr = compileVec(kElementwise);
    ASSERT_GE(vectorizedLoops(cr), 1);
    auto cycles = [&](int lanes) {
        wmsim::SimConfig cfg;
        cfg.veuLanes = lanes;
        cfg.scuBurst = 4;
        cfg.memPorts = 12;
        cfg.dataFifoDepth = 64;
        auto res = wmsim::simulate(*cr.program, cfg);
        EXPECT_TRUE(res.ok) << res.error;
        return res.stats.cycles;
    };
    EXPECT_LT(cycles(4), cycles(1));
}

TEST(Vectorize, AllTableIIProgramsCorrectWithVectorizeOn)
{
    for (const auto &p : programs::tableIIPrograms()) {
        int64_t expect = oracle(p.source);
        driver::CompileOptions opts;
        opts.vectorize = true;
        auto cr = driver::compileSource(p.source, opts);
        ASSERT_TRUE(cr.ok) << p.name;
        wmsim::SimConfig cfg;
        cfg.maxCycles = 10'000'000ull;
        auto res = wmsim::simulate(*cr.program, cfg);
        ASSERT_TRUE(res.ok) << p.name << ": " << res.error;
        EXPECT_EQ(res.returnValue, expect) << p.name;
    }
}
