/**
 * @file
 * Tests for the simulator's deadlock watchdog and wait-for forensics:
 * each canonical wedge shape (data-FIFO cycle, CC-FIFO starvation,
 * SCU ownership, store-queue wedge) must be detected within one
 * no-progress window and classified with the right blocked units,
 * stall causes, and wait-for chain; true livelocks must classify as
 * livelock at the cycle limit; and the hidden stream-under-count
 * miscompile must be caught end to end through the compiler.
 */

#include <gtest/gtest.h>

#include <functional>

#include "driver/compiler.h"
#include "wmsim/sim.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

/** Hand-build a program: one function around the given block filler. */
std::unique_ptr<Program>
handProgram(const std::function<void(Function &, Block *)> &fill)
{
    auto prog = std::make_unique<Program>();
    Function *fn = prog->addFunction("main");
    Block *b = fn->addBlock("entry");
    fill(*fn, b);
    fn->recomputeCfg();
    prog->layout();
    return prog;
}

/** Short watchdog window so wedge tests finish in microseconds. */
wmsim::SimConfig
watchdogCfg(uint64_t window = 256)
{
    wmsim::SimConfig cfg;
    cfg.watchdogWindow = window;
    cfg.maxCycles = 1'000'000;
    return cfg;
}

bool
hasBlockedUnit(const wmsim::FaultReport &r, const std::string &unit,
               wmsim::StallCause cause)
{
    for (const auto &u : r.units)
        if (u.unit == unit && u.blocked && u.cause == cause)
            return true;
    return false;
}

std::string
chainString(const wmsim::FaultReport &r)
{
    std::string s;
    for (size_t i = 0; i < r.waitChain.size(); ++i) {
        if (i)
            s += " -> ";
        s += r.waitChain[i];
    }
    return s;
}

} // namespace

TEST(Watchdog, DataFifoCycleBetweenQueuedInstructions)
{
    // The IEU's head instruction dequeues in_fifo.int0, but the Load
    // that would fill it is queued *behind* it in the same unit: a
    // genuine wait-for cycle ieu -> ieu.
    auto prog = std::make_unique<Program>();
    prog->addGlobal("g", 8, 8);
    Function *fn = prog->addFunction("main");
    Block *b = fn->addBlock("entry");
    auto r0 = makeReg(RegFile::Int, 0, DataType::I64);
    auto r2 = makeReg(RegFile::Int, 2, DataType::I64);
    auto addr = makeReg(RegFile::Int, 4, DataType::I64);
    b->insts.push_back(makeAssign(addr, makeSym("g")));
    b->insts.push_back(makeAssign(r2, r0)); // dequeue before produce
    b->insts.push_back(makeLoad(r0, addr, DataType::I64));
    b->insts.push_back(makeReturn());
    fn->recomputeCfg();
    prog->layout();

    auto res = wmsim::simulate(*prog, watchdogCfg());
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.fault, wmsim::SimFault::Deadlock);
    const auto &r = res.faultReport;
    EXPECT_TRUE(hasBlockedUnit(r, "ieu",
                               wmsim::StallCause::DataFifoEmpty))
        << r.text();
    EXPECT_TRUE(r.cycleFound) << r.text();
    EXPECT_NE(chainString(r).find("ieu"), std::string::npos)
        << r.text();
    // Detection within one no-progress window.
    EXPECT_EQ(r.cycle, r.lastProgressCycle + r.window);
    EXPECT_NE(res.error.find("deadlock"), std::string::npos);
}

TEST(Watchdog, CcFifoStarvationBlocksIfu)
{
    // A conditional branch waits on a CC cell that no relational
    // assign ever enqueues: the IFU starves on the CC FIFO.
    auto prog = std::make_unique<Program>();
    Function *fn = prog->addFunction("main");
    Block *entry = fn->addBlock("entry");
    Block *out = fn->addBlock("out");
    entry->insts.push_back(
        makeCondJump(UnitSide::Int, true, "out"));
    out->insts.push_back(
        makeAssign(makeReg(RegFile::Int, 2, DataType::I64),
                   makeConst(0)));
    out->insts.push_back(makeReturn());
    fn->recomputeCfg();
    prog->layout();

    auto res = wmsim::simulate(*prog, watchdogCfg());
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.fault, wmsim::SimFault::Deadlock);
    EXPECT_TRUE(hasBlockedUnit(res.faultReport, "ifu",
                               wmsim::StallCause::CcFifoEmpty))
        << res.faultReport.text();
    EXPECT_FALSE(res.faultReport.waitChain.empty())
        << res.faultReport.text();
}

TEST(Watchdog, ScuOwnershipWedge)
{
    // The first stream fills in_fifo.int0 (nobody dequeues) and never
    // finishes; the second Sin on the same FIFO then wedges the IFU
    // behind the busy stream.
    auto prog = std::make_unique<Program>();
    prog->addGlobal("g", 8 * 64, 8);
    Function *fn = prog->addFunction("main");
    Block *b = fn->addBlock("entry");
    auto base = makeReg(RegFile::Int, 4, DataType::I64);
    auto cnt = makeReg(RegFile::Int, 5, DataType::I64);
    b->insts.push_back(makeAssign(base, makeSym("g")));
    b->insts.push_back(makeAssign(cnt, makeConst(64)));
    b->insts.push_back(makeStreamIn(UnitSide::Int, 0, base, cnt, 8,
                                    DataType::I64));
    b->insts.push_back(makeStreamIn(UnitSide::Int, 0, base, cnt, 8,
                                    DataType::I64));
    b->insts.push_back(
        makeAssign(makeReg(RegFile::Int, 2, DataType::I64),
                   makeConst(0)));
    b->insts.push_back(makeReturn());
    fn->recomputeCfg();
    prog->layout();

    auto res = wmsim::simulate(*prog, watchdogCfg());
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.fault, wmsim::SimFault::Deadlock);
    const auto &r = res.faultReport;
    // The IFU is wedged behind the owning SCU, and the stream state
    // (with its FIFO) is part of the report.
    EXPECT_TRUE(hasBlockedUnit(r, "ifu",
                               wmsim::StallCause::ScuFifoBusy) ||
                hasBlockedUnit(r, "ifu",
                               wmsim::StallCause::ScuUnavailable))
        << r.text();
    ASSERT_FALSE(r.streams.empty()) << r.text();
    bool fifoShown = false;
    for (const auto &q : r.queues)
        if (q.name == "in_fifo.int0" && q.occupancy == q.capacity)
            fifoShown = true;
    EXPECT_TRUE(fifoShown) << r.text();
}

TEST(Watchdog, StoreQueueWedgeOnMissingData)
{
    // A store whose datum is dequeued from out_fifo.int0 that nothing
    // ever enqueues: the store queue holds the address forever and
    // the program can never drain.
    auto prog = std::make_unique<Program>();
    prog->addGlobal("g", 8, 8);
    Function *fn = prog->addFunction("main");
    Block *b = fn->addBlock("entry");
    auto addr = makeReg(RegFile::Int, 4, DataType::I64);
    auto r0 = makeReg(RegFile::Int, 0, DataType::I64);
    b->insts.push_back(makeAssign(addr, makeSym("g")));
    b->insts.push_back(makeStore(addr, r0, DataType::I64));
    b->insts.push_back(
        makeAssign(makeReg(RegFile::Int, 2, DataType::I64),
                   makeConst(0)));
    b->insts.push_back(makeReturn());
    fn->recomputeCfg();
    prog->layout();

    auto res = wmsim::simulate(*prog, watchdogCfg());
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.fault, wmsim::SimFault::Deadlock);
    bool storeQueueShown = false;
    for (const auto &q : res.faultReport.queues)
        if (q.name.find("store") != std::string::npos && q.occupancy)
            storeQueueShown = true;
    EXPECT_TRUE(storeQueueShown) << res.faultReport.text();
}

TEST(Watchdog, InfiniteLoopClassifiesAsLivelock)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(R"(
int main(void) {
    int i;
    i = 0;
    while (i < 10) { i = i * 1; }
    return i;
})",
                                    opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    wmsim::SimConfig cfg;
    cfg.maxCycles = 50'000;
    cfg.watchdogWindow = 4096;
    auto res = wmsim::simulate(*cr.program, cfg);
    ASSERT_FALSE(res.ok);
    // The loop keeps fetching and executing, so the watchdog never
    // fires; the cycle limit classifies it as livelock instead.
    EXPECT_EQ(res.fault, wmsim::SimFault::Livelock);
    EXPECT_NE(res.error.find("livelock"), std::string::npos);
    EXPECT_EQ(res.faultReport.kind, wmsim::SimFault::Livelock);
}

TEST(Watchdog, DisabledWindowFallsBackToCycleLimit)
{
    // watchdogWindow = 0 disables detection; the wedge then surfaces
    // only at the cycle limit.
    auto prog = handProgram([](Function &, Block *b) {
        auto r0 = makeReg(RegFile::Int, 0, DataType::I64);
        b->insts.push_back(
            makeAssign(makeReg(RegFile::Int, 2, DataType::I64), r0));
        b->insts.push_back(makeReturn());
    });
    wmsim::SimConfig cfg;
    cfg.watchdogWindow = 0;
    cfg.maxCycles = 20'000;
    auto res = wmsim::simulate(*prog, cfg);
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.fault, wmsim::SimFault::Livelock);
}

TEST(Watchdog, InjectedStreamUnderCountCaughtEndToEnd)
{
    driver::CompileOptions opts;
    opts.injectStreamCountBug = true;
    auto cr = driver::compileSource(R"(
int a[64]; int b[64]; int c[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i = i + 1)
        a[i] = b[i] + c[i];
    return a[63];
})",
                                    opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    auto res = wmsim::simulate(*cr.program, wmsim::SimConfig{});
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.fault, wmsim::SimFault::Deadlock);
    const auto &r = res.faultReport;
    // Detected within exactly one no-progress window.
    EXPECT_EQ(r.cycle, r.lastProgressCycle + r.window);
    EXPECT_TRUE(hasBlockedUnit(r, "ieu",
                               wmsim::StallCause::DataFifoEmpty))
        << r.text();
    EXPECT_FALSE(r.waitChain.empty()) << r.text();
    EXPECT_FALSE(r.edges.empty()) << r.text();
    // The signature is the dedup key: kind + blocked units + chain.
    std::string sig = r.signature();
    EXPECT_NE(sig.find("deadlock|"), std::string::npos) << sig;
    EXPECT_NE(sig.find("ieu=data_fifo_empty"), std::string::npos)
        << sig;
}

TEST(Watchdog, SignatureStableAcrossIncidentDetails)
{
    // Same shape at different cycles/occupancies must dedup together:
    // the signature ignores cycle numbers and counts.
    wmsim::FaultReport a, b;
    a.kind = b.kind = wmsim::SimFault::Deadlock;
    a.cycle = 1000;
    b.cycle = 99999;
    a.units.push_back({"ieu", true,
                       wmsim::StallCause::DataFifoEmpty, 5, "x", 0});
    b.units.push_back({"ieu", true,
                       wmsim::StallCause::DataFifoEmpty, 77, "y", 3});
    a.waitChain = {"ieu", "<no-producer>"};
    b.waitChain = {"ieu", "<no-producer>"};
    EXPECT_EQ(a.signature(), b.signature());

    b.units[0].cause = wmsim::StallCause::DataFifoFull;
    EXPECT_NE(a.signature(), b.signature());
}

TEST(Watchdog, CleanProgramsUnaffected)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(R"(
int a[64]; int b[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i = i + 1)
        a[i] = b[i] * 2;
    return a[10];
})",
                                    opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    // Tight window: a healthy streamed loop must never trip it.
    wmsim::SimConfig cfg;
    cfg.watchdogWindow = 256;
    auto res = wmsim::simulate(*cr.program, cfg);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.fault, wmsim::SimFault::None);
    EXPECT_EQ(res.returnValue, 0);
}

TEST(Watchdog, JsonReportRoundTrips)
{
    driver::CompileOptions opts;
    opts.injectStreamCountBug = true;
    auto cr = driver::compileSource(R"(
int a[32]; int b[32]; int c[32];
int main(void) {
    int i;
    for (i = 0; i < 32; i = i + 1)
        a[i] = b[i] + c[i];
    return 0;
})",
                                    opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    auto res = wmsim::simulate(*cr.program, wmsim::SimConfig{});
    ASSERT_EQ(res.fault, wmsim::SimFault::Deadlock);
    obs::JsonWriter w;
    res.faultReport.writeJson(w);
    std::string json = w.str();
    EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"kind\":\"deadlock\""), std::string::npos);
    EXPECT_NE(json.find("\"wait_for\""), std::string::npos);
    EXPECT_NE(json.find("\"units\""), std::string::npos);
    EXPECT_NE(json.find("\"streams\""), std::string::npos);
}
