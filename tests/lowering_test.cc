/**
 * @file
 * Tests for WM FIFO-form lowering, the register allocator, and the
 * assembly printers.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "wmsim/sim.h"
#include "m68k/printer.h"
#include "opt/passes.h"
#include "programs/programs.h"
#include "wm/lowering.h"
#include "wm/printer.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

bool
anyVirtualRegs(const Function &fn)
{
    bool found = false;
    for (const auto &b : fn.blocks()) {
        for (const Inst &inst : b->insts) {
            auto scan = [&](const ExprPtr &e) {
                if (!e)
                    return;
                forEachNode(e, [&](const Expr &n) {
                    if (n.kind() == Expr::Kind::Reg &&
                            isVirtualFile(n.regFile()))
                        found = true;
                });
            };
            scan(inst.dst);
            scan(inst.src);
            scan(inst.addr);
            scan(inst.count);
            for (const auto &e : inst.extraUses)
                scan(e);
        }
    }
    return found;
}

} // namespace

TEST(RegAlloc, NoVirtualRegistersSurvive)
{
    for (auto kind : {MachineKind::WM, MachineKind::Scalar}) {
        driver::CompileOptions opts;
        opts.target = kind;
        auto cr = driver::compileSource(programs::livermore5Source(32),
                                        opts);
        ASSERT_TRUE(cr.ok);
        for (const auto &fn : cr.program->functions())
            EXPECT_FALSE(anyVirtualRegs(*fn)) << fn->name();
    }
}

TEST(RegAlloc, SpillsUnderPressureAndStaysCorrect)
{
    // Force high register pressure: many simultaneously live values.
    std::string src = R"(
int main(void) {
    int a0,a1,a2,a3,a4,a5,a6,a7,a8,a9;
    int b0,b1,b2,b3,b4,b5,b6,b7,b8,b9;
    int c0,c1,c2,c3,c4,c5,c6,c7,c8,c9;
    a0=1;a1=2;a2=3;a3=4;a4=5;a5=6;a6=7;a7=8;a8=9;a9=10;
    b0=11;b1=12;b2=13;b3=14;b4=15;b5=16;b6=17;b7=18;b8=19;b9=20;
    c0=21;c1=22;c2=23;c3=24;c4=25;c5=26;c6=27;c7=28;c8=29;c9=30;
    return a0+a1+a2+a3+a4+a5+a6+a7+a8+a9
         + b0+b1+b2+b3+b4+b5+b6+b7+b8+b9
         + c0+c1+c2+c3+c4+c5+c6+c7+c8+c9
         + a0*b0 + a1*b1 + c0*c9 + a9*b9;
}
)";
    driver::CompileOptions opts;
    auto cr = driver::compileSource(src, opts);
    ASSERT_TRUE(cr.ok);
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 465 + 11 + 24 + 630 + 200);
}

TEST(RegAlloc, ValuesSurviveCalls)
{
    // A value live across a call must land in a callee-saved register
    // (or be spilled); either way the result is correct.
    std::string src = R"(
int id(int x) { return x; }
int main(void) {
    int a, b, c;
    a = 11;
    b = id(5);
    c = a + b;   /* a lived across the call */
    return c;
}
)";
    driver::CompileOptions opts;
    auto cr = driver::compileSource(src, opts);
    ASSERT_TRUE(cr.ok);
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 16);
}

TEST(Lowering, SplitsLoadsAndStores)
{
    driver::CompileOptions opts;
    opts.lowerFifo = false; // get the pre-lowered program
    auto cr = driver::compileSource(programs::livermore5Source(32), opts);
    ASSERT_TRUE(cr.ok);
    Function *fn = cr.program->findFunction("main");
    auto report = wm::lowerToFifoForm(*fn, wmTraits());
    EXPECT_GT(report.loadsLowered + report.storesLowered, 0);
    // After lowering, every Load's dst and Store's src is a FIFO reg.
    for (const auto &b : fn->blocks()) {
        for (const Inst &inst : b->insts) {
            if (inst.kind == InstKind::Load) {
                EXPECT_LE(inst.dst->regIndex(), 1) << inst.str();
            }
            if (inst.kind == InstKind::Store) {
                EXPECT_LE(inst.src->regIndex(), 1) << inst.str();
            }
        }
    }
}

TEST(Lowering, FoldsDequeuesAndEnqueues)
{
    driver::CompileOptions opts;
    opts.lowerFifo = false;
    opts.streaming = false;
    auto cr = driver::compileSource(programs::livermore5Source(32), opts);
    ASSERT_TRUE(cr.ok);
    Function *fn = cr.program->findFunction("main");
    auto report = wm::lowerToFifoForm(*fn, wmTraits());
    // The LL5 kernel folds at least one dequeue into the compute and
    // the store-data enqueue into the producing instruction.
    EXPECT_GT(report.dequeuesFolded, 0);
    EXPECT_GT(report.enqueuesFolded, 0);
}

TEST(WmPrinter, OpcodeMnemonics)
{
    EXPECT_EQ(wm::opcodeOf(makeLoad(makeReg(RegFile::Flt, 0, DataType::F64),
                                    makeReg(RegFile::Int, 4,
                                            DataType::I64),
                                    DataType::F64)),
              "l64f");
    EXPECT_EQ(wm::opcodeOf(makeStore(makeReg(RegFile::Int, 4,
                                             DataType::I64),
                                     makeReg(RegFile::Flt, 0,
                                             DataType::F64),
                                     DataType::F64)),
              "s64f");
    EXPECT_EQ(wm::opcodeOf(makeCondJump(UnitSide::Int, true, "L")),
              "JumpIT");
    EXPECT_EQ(wm::opcodeOf(makeCondJump(UnitSide::Int, false, "L")),
              "JumpIF");
    EXPECT_EQ(wm::opcodeOf(makeJumpStream(UnitSide::Flt, 1, "L")),
              "JNIf1");
    auto base = makeReg(RegFile::Int, 4, DataType::I64);
    auto cnt = makeReg(RegFile::Int, 5, DataType::I64);
    EXPECT_EQ(wm::opcodeOf(makeStreamIn(UnitSide::Flt, 0, base, cnt, 8,
                                        DataType::F64)),
              "SinD");
    EXPECT_EQ(wm::opcodeOf(makeStreamOut(UnitSide::Int, 0, base, cnt, 1,
                                         DataType::I8)),
              "SoutB");
    // literal materialization is the llh/sll pair
    EXPECT_EQ(wm::opcodeOf(makeAssign(makeReg(RegFile::Int, 3,
                                              DataType::I64),
                                      makeSym("x"))),
              "llh/sll");
}

TEST(WmPrinter, Livermore5ListingMentionsStreams)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(programs::livermore5Source(64), opts);
    ASSERT_TRUE(cr.ok);
    std::string listing =
        wm::printFunction(*cr.program->findFunction("main"));
    EXPECT_NE(listing.find("SinD"), std::string::npos);
    EXPECT_NE(listing.find("SoutD"), std::string::npos);
    EXPECT_NE(listing.find("JNIf"), std::string::npos);
}

TEST(M68kPrinter, AutoIncrementAppearsAfterStrengthReduction)
{
    driver::CompileOptions opts;
    opts.target = MachineKind::Scalar;
    auto cr = driver::compileSource(programs::livermore5Source(64), opts);
    ASSERT_TRUE(cr.ok);
    std::string listing =
        m68k::printFunction(*cr.program->findFunction("main"));
    // the paper's Figure 6 signature: fmoved with post-increment and
    // the fsubx/fmulx pair
    EXPECT_NE(listing.find("@+"), std::string::npos) << listing;
    EXPECT_NE(listing.find("fsubx"), std::string::npos);
    EXPECT_NE(listing.find("fmulx"), std::string::npos);
    EXPECT_NE(listing.find("fmoved"), std::string::npos);
}

TEST(M68kPrinter, NoPlaceholderAddressModes)
{
    driver::CompileOptions opts;
    opts.target = MachineKind::Scalar;
    auto cr = driver::compileSource(programs::livermore5Source(64), opts);
    ASSERT_TRUE(cr.ok);
    std::string listing =
        m68k::printFunction(*cr.program->findFunction("main"));
    EXPECT_EQ(listing.find('<'), std::string::npos)
        << "unlowered address mode in:\n" << listing;
}
