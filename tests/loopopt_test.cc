/**
 * @file
 * Tests for the loop-level passes: LICM (including the unaliased-global
 * load hoist), induction variables, strength reduction, and branch
 * anticipation. These are driven through compiled mini-C so the shapes
 * match what the passes actually see.
 */

#include <gtest/gtest.h>

#include "cfg/dominators.h"
#include "cfg/loops.h"
#include "driver/compiler.h"
#include "expand/expander.h"
#include "frontend/parser.h"
#include "opt/indvars.h"
#include "opt/legal.h"
#include "opt/passes.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

/** Expand source for a target without running any optimization. */
std::unique_ptr<Program>
expandOnly(const std::string &src, MachineKind kind)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str();
    auto prog = std::make_unique<Program>();
    expand::expandUnit(*unit, kind == MachineKind::WM ? wmTraits()
                                                      : scalarTraits(),
                       *prog);
    return prog;
}

const char *kSumLoop = R"(
int n = 100;
int a[100];
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < n; i++)
        s = s + a[i];
    return s;
}
)";

} // namespace

TEST(Licm, HoistsInvariantComputation)
{
    auto prog = expandOnly(kSumLoop, MachineKind::WM);
    auto traits = wmTraits();
    Function *fn = prog->findFunction("main");
    opt::runLegalize(*fn, traits);
    int hoisted = opt::runLoopInvariantCodeMotion(*fn, traits, prog.get());
    EXPECT_GT(hoisted, 0);
}

TEST(Licm, HoistsLoadOfUnaliasedGlobalBound)
{
    // `n` is a scalar global whose address is never taken: its load in
    // the loop test must be hoisted to the preheader.
    driver::CompileOptions opts;
    opts.streaming = false;
    opts.recurrence = false;
    auto cr = driver::compileSource(kSumLoop, opts);
    ASSERT_TRUE(cr.ok);
    Function *fn = cr.program->findFunction("main");

    // Find the loop and check no load of `n` remains inside it.
    fn->recomputeCfg();
    cfg::DominatorTree dt(*fn);
    cfg::LoopInfo li(*fn, dt);
    ASSERT_GE(li.loops().size(), 1u);
    for (auto &loop : li.loops()) {
        for (Block *b : loop.blocks) {
            for (const Inst &inst : b->insts) {
                if (inst.kind != InstKind::Load)
                    continue;
                // address must not be the symbol n (directly)
                bool loadsN = inst.addr->isSym() &&
                              inst.addr->symbol() == "n";
                EXPECT_FALSE(loadsN) << "bound load left in loop";
            }
        }
    }
}

TEST(Licm, DoesNotHoistLoadOfStoredGlobal)
{
    // g is stored inside the loop: its load cannot be hoisted.
    const char *src = R"(
int g = 5;
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 10; i++) {
        s = s + g;
        g = g + 1;
    }
    return s;
}
)";
    driver::CompileOptions opts;
    opts.streaming = false;
    auto cr = driver::compileSource(src, opts);
    ASSERT_TRUE(cr.ok);
    // correctness is checked end-to-end by the differential tests; here
    // we just assert the loop still loads g each iteration
    Function *fn = cr.program->findFunction("main");
    fn->recomputeCfg();
    cfg::DominatorTree dt(*fn);
    cfg::LoopInfo li(*fn, dt);
    bool loadInLoop = false;
    for (auto &loop : li.loops())
        for (Block *b : loop.blocks)
            for (const Inst &inst : b->insts)
                if (inst.kind == InstKind::Load)
                    loadInLoop = true;
    EXPECT_TRUE(loadInLoop);
}

TEST(IndVars, DetectsBasicIv)
{
    auto prog = expandOnly(kSumLoop, MachineKind::WM);
    Function *fn = prog->findFunction("main");
    auto traits = wmTraits();
    opt::runLegalize(*fn, traits);
    opt::runCleanupPipeline(*fn, traits, prog.get());

    fn->recomputeCfg();
    cfg::DominatorTree dt(*fn);
    cfg::LoopInfo li(*fn, dt);
    ASSERT_GE(li.loops().size(), 1u);
    // The innermost (only) loop has exactly one basic IV with step 1.
    opt::IndVarAnalysis ivs(*fn, li.loops()[0], dt, traits);
    ASSERT_GE(ivs.basicIVs().size(), 1u);
    EXPECT_EQ(ivs.basicIVs()[0].step, 1);
}

TEST(IndVars, LinearizesArrayAddress)
{
    auto prog = expandOnly(kSumLoop, MachineKind::WM);
    Function *fn = prog->findFunction("main");
    auto traits = wmTraits();
    opt::runLegalize(*fn, traits);
    opt::runCleanupPipeline(*fn, traits, prog.get());

    fn->recomputeCfg();
    cfg::DominatorTree dt(*fn);
    cfg::LoopInfo li(*fn, dt);
    cfg::Loop &loop = li.loops()[0];
    opt::IndVarAnalysis ivs(*fn, loop, dt, traits);
    ASSERT_FALSE(ivs.basicIVs().empty());

    bool checked = false;
    for (Block *b : loop.blocks) {
        for (size_t i = 0; i < b->insts.size(); ++i) {
            const Inst &inst = b->insts[i];
            if (inst.kind != InstKind::Load)
                continue;
            auto lin = ivs.linearize(inst.addr, ivs.basicIVs()[0],
                                     {b, i});
            ASSERT_TRUE(lin.valid);
            EXPECT_EQ(lin.coeff, 8); // the paper's cee for 8-byte elems
            EXPECT_EQ(lin.baseKind, opt::LinForm::Base::Sym);
            EXPECT_EQ(lin.sym, "a");
            checked = true;
        }
    }
    EXPECT_TRUE(checked);
}

TEST(StrengthReduce, RewritesToPointerForm)
{
    driver::CompileOptions opts;
    opts.target = MachineKind::Scalar;
    auto cr = driver::compileSource(kSumLoop, opts);
    ASSERT_TRUE(cr.ok);
    Function *fn = cr.program->findFunction("main");
    fn->recomputeCfg();
    cfg::DominatorTree dt(*fn);
    cfg::LoopInfo li(*fn, dt);
    // All in-loop loads use a plain register (walking pointer) or
    // register+constant address after strength reduction.
    for (auto &loop : li.loops()) {
        for (Block *b : loop.blocks) {
            for (const Inst &inst : b->insts) {
                if (inst.kind != InstKind::Load)
                    continue;
                bool simple =
                    inst.addr->isReg() ||
                    (inst.addr->kind() == Expr::Kind::Bin &&
                     inst.addr->op() == Op::Add &&
                     inst.addr->lhs()->isReg() &&
                     inst.addr->rhs()->isConst());
                EXPECT_TRUE(simple) << inst.addr->str();
            }
        }
    }
}

TEST(Anticipate, MovesCompareAboveIncrement)
{
    driver::CompileOptions opts;
    opts.streaming = false; // keep the compare/branch form
    auto cr = driver::compileSource(kSumLoop, opts);
    ASSERT_TRUE(cr.ok);
    Function *fn = cr.program->findFunction("main");
    fn->recomputeCfg();
    cfg::DominatorTree dt(*fn);
    cfg::LoopInfo li(*fn, dt);
    ASSERT_GE(li.loops().size(), 1u);
    // In the loop latch, the compare must not be the instruction
    // immediately before the branch (it was hoisted earlier).
    bool foundAnticipated = false;
    for (auto &loop : li.loops()) {
        for (Block *latch : loop.latches) {
            const Inst *term = latch->terminator();
            if (!term || term->kind != InstKind::CondJump)
                continue;
            size_t cmpIdx = latch->insts.size();
            for (size_t i = 0; i + 1 < latch->insts.size(); ++i)
                if (latch->insts[i].kind == InstKind::Assign &&
                        latch->insts[i].dst->regFile() == RegFile::CC) {
                    cmpIdx = i;
                }
            if (cmpIdx + 2 <= latch->insts.size() - 1)
                foundAnticipated = true;
        }
    }
    EXPECT_TRUE(foundAnticipated);
}

TEST(Legalize, MaterializesSymbolOperands)
{
    auto prog = expandOnly(kSumLoop, MachineKind::WM);
    Function *fn = prog->findFunction("main");
    auto traits = wmTraits();
    opt::runLegalize(*fn, traits);
    // After legalization every Assign source and Load/Store address is
    // a legal WM shape.
    for (const auto &b : fn->blocks()) {
        for (const Inst &inst : b->insts) {
            switch (inst.kind) {
              case InstKind::Assign:
                if (inst.dst->regFile() == RegFile::CC)
                    EXPECT_TRUE(opt::fitsCompareSrc(inst.src, traits))
                        << inst.str();
                else
                    EXPECT_TRUE(opt::fitsAssignSrc(inst.src, traits))
                        << inst.str();
                break;
              case InstKind::Load:
              case InstKind::Store:
                EXPECT_TRUE(opt::fitsAddr(inst.addr, traits))
                    << inst.str();
                break;
              default:
                break;
            }
        }
    }
}
