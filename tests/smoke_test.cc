/**
 * @file
 * End-to-end smoke tests: parse -> interpret, and compile -> simulate
 * on both targets, checking the checksums agree.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "frontend/parser.h"
#include "programs/programs.h"
#include "timing/scalar_sim.h"
#include "wmsim/sim.h"

using namespace wmstream;

namespace {

int64_t
interpret(const std::string &src)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str();
    if (!unit)
        return -1;
    interp::Interpreter in(*unit);
    auto res = in.run();
    EXPECT_TRUE(res.ok) << res.error;
    return res.returnValue;
}

} // namespace

TEST(Smoke, InterpreterRunsTinyProgram)
{
    EXPECT_EQ(interpret("int main(void) { return 2 + 3 * 4; }"), 14);
}

TEST(Smoke, InterpreterRunsLoop)
{
    EXPECT_EQ(interpret(R"(
int main(void) {
    int i, s;
    s = 0;
    for (i = 1; i <= 10; i++)
        s = s + i;
    return s;
})"),
              55);
}

TEST(Smoke, ScalarCompileAndRunTiny)
{
    std::string src = "int main(void) { return 2 + 3 * 4; }";
    driver::CompileOptions opts;
    opts.target = rtl::MachineKind::Scalar;
    auto cr = driver::compileSource(src, opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    auto model = timing::m88100Model();
    auto res = timing::runScalar(*cr.program, model);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 14);
}

TEST(Smoke, WmCompileAndRunTiny)
{
    std::string src = "int main(void) { return 2 + 3 * 4; }";
    driver::CompileOptions opts;
    opts.target = rtl::MachineKind::WM;
    auto cr = driver::compileSource(src, opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 14);
}

TEST(Smoke, Livermore5SmallAllConfigsAgree)
{
    std::string src = programs::livermore5Source(64);
    int64_t expect = interpret(src);

    for (bool rec : {false, true}) {
        for (bool stream : {false, true}) {
            driver::CompileOptions opts;
            opts.target = rtl::MachineKind::WM;
            opts.recurrence = rec;
            opts.streaming = stream;
            auto cr = driver::compileSource(src, opts);
            ASSERT_TRUE(cr.ok) << cr.diagnostics;
            auto res = wmsim::simulate(*cr.program);
            ASSERT_TRUE(res.ok)
                << "rec=" << rec << " stream=" << stream << ": "
                << res.error;
            EXPECT_EQ(res.returnValue, expect)
                << "rec=" << rec << " stream=" << stream;
        }
    }

    for (bool rec : {false, true}) {
        driver::CompileOptions opts;
        opts.target = rtl::MachineKind::Scalar;
        opts.recurrence = rec;
        auto cr = driver::compileSource(src, opts);
        ASSERT_TRUE(cr.ok) << cr.diagnostics;
        auto model = timing::sun3_280Model();
        auto res = timing::runScalar(*cr.program, model);
        ASSERT_TRUE(res.ok) << "rec=" << rec << ": " << res.error;
        EXPECT_EQ(res.returnValue, expect) << "rec=" << rec;
    }
}
