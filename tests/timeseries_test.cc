/**
 * @file
 * Flight-recorder time series: window bookkeeping, adaptive
 * decimation exactness, JSON round-trip, and the end-to-end
 * acceptance invariant — per-window samples sum EXACTLY to the
 * end-of-run aggregate counters, for every unit and stall cause.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "obs/counters.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/timeseries.h"
#include "report/manifest.h"
#include "wmsim/sim.h"

using namespace wmstream;
using obs::JsonValue;
using obs::TimeSeries;

namespace {

std::vector<std::string>
twoChannels()
{
    return {"a", "b"};
}

TEST(TimeSeries, EmptyRunProducesNoWindows)
{
    TimeSeries ts(twoChannels(), 16);
    ts.finish(0);
    EXPECT_TRUE(ts.windows().empty());
    EXPECT_EQ(ts.totalCycles(), 0u);
    EXPECT_EQ(ts.channelTotal(0), 0u);
}

TEST(TimeSeries, SinglePartialWindow)
{
    TimeSeries ts(twoChannels(), 16);
    for (uint64_t cycle = 0; cycle < 5; ++cycle) {
        ts.advanceTo(cycle);
        ts.add(0);
    }
    ts.finish(5);
    ASSERT_EQ(ts.windows().size(), 1u);
    EXPECT_EQ(ts.windows()[0].start, 0u);
    EXPECT_EQ(ts.windows()[0].cycles, 5u);
    EXPECT_EQ(ts.windows()[0].counts[0], 5u);
    EXPECT_EQ(ts.windows()[0].counts[1], 0u);
    EXPECT_EQ(ts.totalCycles(), 5u);
}

TEST(TimeSeries, WindowLargerThanRun)
{
    TimeSeries ts(twoChannels(), 1u << 20);
    ts.advanceTo(0);
    ts.add(1, 7);
    ts.finish(3);
    ASSERT_EQ(ts.windows().size(), 1u);
    EXPECT_EQ(ts.windows()[0].cycles, 3u);
    EXPECT_EQ(ts.channelTotal(1), 7u);
    EXPECT_EQ(ts.decimations(), 0);
}

TEST(TimeSeries, WindowsPartitionTheRun)
{
    TimeSeries ts(twoChannels(), 8);
    for (uint64_t cycle = 0; cycle < 30; ++cycle) {
        ts.advanceTo(cycle);
        ts.add(0, cycle);
    }
    ts.finish(30);
    ASSERT_EQ(ts.windows().size(), 4u); // 8+8+8+6
    uint64_t next = 0;
    for (const TimeSeries::Window &w : ts.windows()) {
        EXPECT_EQ(w.start, next);
        next += w.cycles;
    }
    EXPECT_EQ(next, 30u);
    EXPECT_EQ(ts.channelTotal(0), 29u * 30u / 2u);
}

TEST(TimeSeries, DecimationPreservesMassAndAlignment)
{
    // Cap at 4 windows of 2 cycles; a 64-cycle run forces repeated
    // decimation. Every count must survive, windows must stay
    // contiguous, and the span must double per decimation.
    TimeSeries ts(twoChannels(), 2, 4);
    uint64_t expectA = 0, expectB = 0;
    for (uint64_t cycle = 0; cycle < 64; ++cycle) {
        ts.advanceTo(cycle);
        ts.add(0, cycle % 3);
        ts.add(1, 1);
        expectA += cycle % 3;
        expectB += 1;
    }
    ts.finish(64);
    EXPECT_GT(ts.decimations(), 0);
    EXPECT_EQ(ts.windowCycles(),
              ts.initialWindowCycles() << ts.decimations());
    EXPECT_LE(ts.windows().size(), 4u);
    EXPECT_EQ(ts.channelTotal(0), expectA);
    EXPECT_EQ(ts.channelTotal(1), expectB);
    EXPECT_EQ(ts.totalCycles(), 64u);
    uint64_t next = 0;
    for (const TimeSeries::Window &w : ts.windows()) {
        EXPECT_EQ(w.start, next);
        next += w.cycles;
    }
    EXPECT_EQ(next, 64u);
}

TEST(TimeSeries, DecimatedWindowsSumToUnDecimatedWindows)
{
    // The same add() stream through a decimating and a non-decimating
    // series: the decimated windows must be exact pair-merges.
    TimeSeries fine(twoChannels(), 4, 1024);
    TimeSeries coarse(twoChannels(), 4, 4);
    for (uint64_t cycle = 0; cycle < 40; ++cycle) {
        uint64_t v = (cycle * 7) % 5;
        fine.advanceTo(cycle);
        coarse.advanceTo(cycle);
        fine.add(0, v);
        coarse.add(0, v);
    }
    fine.finish(40);
    coarse.finish(40);
    // Each coarse window's count equals the sum of the fine windows
    // it covers.
    for (const TimeSeries::Window &cw : coarse.windows()) {
        uint64_t sum = 0;
        for (const TimeSeries::Window &fw : fine.windows())
            if (fw.start >= cw.start &&
                fw.start < cw.start + cw.cycles)
                sum += fw.counts[0];
        EXPECT_EQ(cw.counts[0], sum)
            << "coarse window at " << cw.start;
    }
}

TEST(TimeSeries, ChannelIndexLookup)
{
    TimeSeries ts({"x", "y.z"}, 4);
    EXPECT_EQ(ts.channelIndex("x"), 0);
    EXPECT_EQ(ts.channelIndex("y.z"), 1);
    EXPECT_EQ(ts.channelIndex("nope"), -1);
}

TEST(TimeSeries, JsonRoundTrip)
{
    TimeSeries ts(twoChannels(), 4);
    for (uint64_t cycle = 0; cycle < 10; ++cycle) {
        ts.advanceTo(cycle);
        ts.add(0, 2);
        ts.add(1, cycle);
    }
    ts.finish(10);

    obs::JsonWriter w;
    ts.writeJson(w);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::parseJson(w.str(), doc, err)) << err;
    EXPECT_EQ(doc.getInt("schema_version"), 1);
    EXPECT_EQ(doc.getStr("kind"), "timeseries");
    EXPECT_EQ(doc.getInt("window_cycles"), 4);
    EXPECT_EQ(doc.getInt("decimations"), 0);

    const JsonValue *channels = doc.get("channels");
    ASSERT_TRUE(channels && channels->isArray());
    ASSERT_EQ(channels->arr.size(), 2u);
    EXPECT_EQ(channels->arr[0].strVal, "a");

    const JsonValue *samples = doc.get("samples");
    ASSERT_TRUE(samples && samples->isArray());
    ASSERT_EQ(samples->arr.size(), ts.windows().size());
    uint64_t total1 = 0, cycles = 0;
    for (size_t i = 0; i < samples->arr.size(); ++i) {
        const JsonValue &s = samples->arr[i];
        EXPECT_EQ(static_cast<uint64_t>(s.getInt("start")),
                  ts.windows()[i].start);
        cycles += static_cast<uint64_t>(s.getInt("cycles"));
        const JsonValue *counts = s.get("counts");
        ASSERT_TRUE(counts && counts->isArray());
        ASSERT_EQ(counts->arr.size(), 2u);
        total1 += static_cast<uint64_t>(counts->arr[1].intVal);
    }
    EXPECT_EQ(cycles, 10u);
    EXPECT_EQ(total1, ts.channelTotal(1));
}

// ---- end-to-end: simulator feed and the exact-sum invariant ----

const char kStreamProgram[] = R"(
int n; double a[200]; double b[200]; double c[200];
int main() {
    int i;
    n = 200;
    for (i = 0; i < n; i = i + 1) {
        a[i] = i * 1.5;
        b[i] = i * 0.5;
    }
    for (i = 0; i < n; i = i + 1)
        c[i] = a[i] * b[i] + 2.0;
    return c[199];
}
)";

/** Compile and run @p source with the flight recorder attached. */
wmsim::SimResult
runSampled(const std::string &source, TimeSeries &ts,
           wmsim::SimConfig cfg = {})
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(source, opts);
    EXPECT_TRUE(cr.ok) << cr.diagnostics;
    cfg.timeseries = &ts;
    return wmsim::simulate(*cr.program, cfg);
}

TEST(TimeSeriesSim, WindowSumsEqualAggregates)
{
    TimeSeries ts(wmsim::simTimeSeriesChannels(), 64);
    auto res = runSampled(kStreamProgram, ts);
    ASSERT_TRUE(res.ok) << res.error;

    obs::CounterRegistry reg;
    res.stats.exportCounters(reg);
    std::map<std::string, uint64_t> agg;
    for (const auto &kv : reg.entries())
        agg[kv.first] = kv.second;

    // Every cumulative channel sums exactly to its aggregate counter
    // (absent keys are zero: the exporter skips zero-valued causes).
    const auto &names = ts.channelNames();
    int checked = 0;
    for (size_t c = 0; c < names.size(); ++c) {
        if (names[c].rfind("occ.", 0) == 0 || names[c] == "scu.active")
            continue;
        auto it = agg.find(names[c]);
        uint64_t want = it == agg.end() ? 0 : it->second;
        EXPECT_EQ(ts.channelTotal(c), want) << names[c];
        ++checked;
    }
    EXPECT_GT(checked, 50); // all units and stall causes covered
    EXPECT_EQ(ts.totalCycles(), res.stats.cycles);
    EXPECT_GT(ts.windows().size(), 1u);
}

TEST(TimeSeriesSim, SumsSurviveDecimation)
{
    // Tiny windows and a tiny cap force many decimations on the same
    // run; totals must still match exactly.
    TimeSeries ts(wmsim::simTimeSeriesChannels(), 2, 4);
    auto res = runSampled(kStreamProgram, ts);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_GT(ts.decimations(), 3);

    obs::CounterRegistry reg;
    res.stats.exportCounters(reg);
    for (const auto &kv : reg.entries()) {
        int c = ts.channelIndex(kv.first);
        if (c < 0)
            continue; // occupancy.* / loop.* have no channel
        EXPECT_EQ(ts.channelTotal(static_cast<size_t>(c)), kv.second)
            << kv.first;
    }
    EXPECT_EQ(ts.totalCycles(), res.stats.cycles);
}

TEST(TimeSeriesSim, OccupancyLevelsMatchHistogramMass)
{
    // Level channels: the occ.* window sums must equal the occupancy
    // histograms' total mass (both sample once per cycle).
    TimeSeries ts(wmsim::simTimeSeriesChannels(), 32);
    wmsim::SimConfig cfg;
    cfg.collectOccupancy = true;
    auto res = runSampled(kStreamProgram, ts, cfg);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_FALSE(res.stats.occupancy.empty());
    for (const auto &series : res.stats.occupancy) {
        int c = ts.channelIndex("occ." + series.name);
        ASSERT_GE(c, 0) << series.name;
        EXPECT_EQ(ts.channelTotal(static_cast<size_t>(c)),
                  static_cast<uint64_t>(series.hist.sum()))
            << series.name;
    }
}

TEST(TimeSeriesSim, ManifestRoundTripThroughJsonParse)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(kStreamProgram, opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    TimeSeries ts(wmsim::simTimeSeriesChannels(), 64);
    wmsim::SimConfig cfg;
    cfg.collectOccupancy = true;
    cfg.timeseries = &ts;
    auto res = wmsim::simulate(*cr.program, cfg);
    ASSERT_TRUE(res.ok) << res.error;

    report::RunManifest man;
    man.toolVersion = "test";
    man.source = "stream.c";
    man.target = "wm";
    man.host.compileWallMs = 1.25;
    man.host.simWallMs = 2.5;
    man.host.simCycles = res.stats.cycles;
    man.compiled = &cr;
    man.simConfig = &cfg;
    man.simResult = &res;
    man.timeseries = &ts;

    obs::JsonWriter w;
    man.writeJson(w);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::parseJson(w.str(), doc, err)) << err;

    EXPECT_EQ(doc.getInt("schema_version"), 1);
    EXPECT_EQ(doc.getStr("kind"), "run_manifest");
    EXPECT_EQ(doc.getStr("tool"), "wmc");
    EXPECT_EQ(doc.getStr("source"), "stream.c");

    const JsonValue *host = doc.get("host");
    ASSERT_TRUE(host && host->isObject());
    EXPECT_DOUBLE_EQ(host->getNum("compile_wall_ms"), 1.25);
    EXPECT_GT(host->getNum("sim_cycles_per_sec"), 0.0);

    const JsonValue *remarks = doc.get("remarks");
    ASSERT_TRUE(remarks && remarks->isObject());
    EXPECT_EQ(remarks->getInt("schema_version"), 1);

    const JsonValue *stats = doc.get("stats");
    ASSERT_TRUE(stats && stats->isObject());
    const JsonValue *sim = stats->get("sim");
    ASSERT_TRUE(sim && sim->isObject());
    EXPECT_EQ(static_cast<uint64_t>(sim->getInt("cycles")),
              res.stats.cycles);

    // The embedded time series round-trips: channel totals recomputed
    // from the parsed samples equal the aggregates.
    const JsonValue *tsDoc = doc.get("timeseries");
    ASSERT_TRUE(tsDoc && tsDoc->isObject());
    const JsonValue *channels = tsDoc->get("channels");
    const JsonValue *samples = tsDoc->get("samples");
    ASSERT_TRUE(channels && channels->isArray());
    ASSERT_TRUE(samples && samples->isArray());
    std::vector<uint64_t> totals(channels->arr.size(), 0);
    uint64_t cycles = 0;
    for (const JsonValue &s : samples->arr) {
        cycles += static_cast<uint64_t>(s.getInt("cycles"));
        const JsonValue *counts = s.get("counts");
        ASSERT_TRUE(counts &&
                    counts->arr.size() == channels->arr.size());
        for (size_t i = 0; i < totals.size(); ++i)
            totals[i] +=
                static_cast<uint64_t>(counts->arr[i].intVal);
    }
    EXPECT_EQ(cycles, res.stats.cycles);
    for (size_t i = 0; i < channels->arr.size(); ++i) {
        const std::string &name = channels->arr[i].strVal;
        if (name.rfind("occ.", 0) == 0 || name == "scu.active")
            continue;
        EXPECT_EQ(totals[i], static_cast<uint64_t>(
                                 sim->getInt(name, 0)))
            << name;
    }
}

TEST(TimeSeriesSim, FaultedRunStillFinishesSeries)
{
    // An out-of-bounds access faults mid-run; the series must still
    // be finished (windows partition [0, cycles)) even though the
    // partial faulting cycle is unsampled.
    // The stride walks the address past the simulator's memory image
    // after a few iterations, well into the run.
    const char *bad = R"(
int a[4];
int main() { int i; for (i = 0; i < 100000; i = i + 1)
                 a[i * 1000000] = i;
             return 0; }
)";
    TimeSeries ts(wmsim::simTimeSeriesChannels(), 16);
    auto res = runSampled(bad, ts);
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(ts.totalCycles(), res.stats.cycles);
}

} // namespace
