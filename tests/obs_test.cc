/**
 * @file
 * Unit tests for the observability layer: JSON writer escaping and
 * structure, counter registry, histogram, pass profiler, and the
 * Chrome trace_event sink.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <string>

#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/pass_profiler.h"
#include "obs/trace.h"

using namespace wmstream::obs;

namespace {

/**
 * Minimal recursive-descent JSON validator: enough grammar to check
 * that everything the writers emit round-trips as structurally valid
 * JSON (objects, arrays, strings with escapes, numbers, literals).
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool valid()
    {
        pos_ = 0;
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool parseValue()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return parseString();
        case 't': return parseLit("true");
        case 'f': return parseLit("false");
        case 'n': return parseLit("null");
        default: return parseNumber();
        }
    }

    bool parseObject()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool parseArray()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool parseString()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control char: escaping failed
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i)
                        if (pos_ + i >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + i])))
                            return false;
                    pos_ += 4;
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool parseLit(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t'))
            ++pos_;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

TEST(JsonEscape, PlainStringUnchanged)
{
    EXPECT_EQ(jsonEscape("ieu.stall.data_fifo_empty"),
              "ieu.stall.data_fifo_empty");
}

TEST(JsonEscape, SpecialCharacters)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
    EXPECT_EQ(jsonEscape("\b\f\r"), "\\b\\f\\r");
}

TEST(JsonWriter, ObjectStructure)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", "dot \"product\"");
    w.field("cycles", static_cast<uint64_t>(852));
    w.field("rate", 0.5);
    w.field("ok", true);
    w.key("missing");
    w.valueNull();
    w.key("rows");
    w.beginArray();
    w.value(1);
    w.value(-2);
    w.beginObject();
    w.field("k", "v");
    w.endObject();
    w.endArray();
    w.endObject();
    const std::string &s = w.str();
    EXPECT_TRUE(JsonChecker(s).valid()) << s;
    EXPECT_NE(s.find("\"name\":\"dot \\\"product\\\"\""),
              std::string::npos);
    EXPECT_NE(s.find("\"cycles\":852"), std::string::npos);
    EXPECT_NE(s.find("\"missing\":null"), std::string::npos);
    EXPECT_NE(s.find("[1,-2,{\"k\":\"v\"}]"), std::string::npos);
}

TEST(JsonWriter, EmptyContainers)
{
    JsonWriter w;
    w.beginObject();
    w.key("a");
    w.beginArray();
    w.endArray();
    w.key("b");
    w.beginObject();
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":[],\"b\":{}}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(1.0 / 0.0);
    w.value(0.0 / 0.0);
    w.endArray();
    EXPECT_EQ(w.str(), "[null,null]");
}

TEST(CounterRegistry, InsertionOrderAndLookup)
{
    CounterRegistry reg;
    reg.set("cycles", 100);
    reg.add("ieu.stall.data_fifo_empty", 7);
    reg.add("ieu.stall.data_fifo_empty", 3);
    reg.set("ieu.stall.mem_port_contention", 5);
    ++reg.counter("feu.executed");

    EXPECT_EQ(reg.size(), 4u);
    EXPECT_EQ(reg.get("cycles"), 100u);
    EXPECT_EQ(reg.get("ieu.stall.data_fifo_empty"), 10u);
    EXPECT_EQ(reg.get("feu.executed"), 1u);
    EXPECT_EQ(reg.get("nonexistent"), 0u);
    EXPECT_TRUE(reg.has("cycles"));
    EXPECT_FALSE(reg.has("nonexistent"));

    // Registration order is preserved for stable output.
    EXPECT_EQ(reg.entries()[0].first, "cycles");
    EXPECT_EQ(reg.entries()[1].first, "ieu.stall.data_fifo_empty");
    EXPECT_EQ(reg.entries()[3].first, "feu.executed");
}

TEST(CounterRegistry, SumPrefix)
{
    CounterRegistry reg;
    reg.set("ieu.stall.data_fifo_empty", 4);
    reg.set("ieu.stall.mem_port_contention", 6);
    reg.set("ieu.stall_cycles", 10);
    reg.set("ieu.executed", 99);

    // "ieu.stall" matches "ieu.stall.*" and exact "ieu.stall" only —
    // "ieu.stall_cycles" does not start with "ieu.stall.".
    EXPECT_EQ(reg.sumPrefix("ieu.stall"), 10u);
    EXPECT_EQ(reg.sumPrefix("ieu"), 119u);
    EXPECT_EQ(reg.sumPrefix("ieu.executed"), 99u);
    EXPECT_EQ(reg.sumPrefix("nope"), 0u);
}

TEST(CounterRegistry, JsonRoundTrip)
{
    CounterRegistry reg;
    reg.set("cycles", 42);
    reg.set("scu.startup_wait_cycles", 3);
    JsonWriter w;
    reg.writeJson(w);
    const std::string &s = w.str();
    EXPECT_TRUE(JsonChecker(s).valid()) << s;
    EXPECT_EQ(s, "{\"cycles\":42,\"scu.startup_wait_cycles\":3}");
}

TEST(Histogram, BucketsAndMoments)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0);

    h.add(0, 2);
    h.add(1);
    h.add(3);
    h.add(-5); // clamps to 0
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 3);
    EXPECT_EQ(h.at(0), 3u);
    EXPECT_EQ(h.at(1), 1u);
    EXPECT_EQ(h.at(2), 0u);
    EXPECT_EQ(h.at(3), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0 / 5.0);
    EXPECT_EQ(h.percentile(0.5), 0);
    EXPECT_EQ(h.percentile(0.8), 1);
    EXPECT_EQ(h.percentile(1.0), 3);

    JsonWriter w;
    h.writeJson(w);
    EXPECT_TRUE(JsonChecker(w.str()).valid()) << w.str();
    EXPECT_NE(w.str().find("\"buckets\":[3,1,0,1]"), std::string::npos)
        << w.str();
}

TEST(PassProfiler, DisabledRunsBodyOnly)
{
    PassProfiler prof(false);
    int bodyRuns = 0, countRuns = 0;
    prof.measure(
        "cleanup",
        [&] {
            ++countRuns;
            return int64_t{0};
        },
        [&] { ++bodyRuns; });
    EXPECT_EQ(bodyRuns, 1);
    EXPECT_EQ(countRuns, 0); // disabled: no instruction counting
    EXPECT_TRUE(prof.profiles().empty());
}

TEST(PassProfiler, MergesCallsByName)
{
    PassProfiler prof(true);
    int64_t insts = 10;
    auto count = [&] { return insts; };
    prof.measure("cleanup", count, [&] { insts = 8; });
    prof.measure("cleanup", count, [&] { insts = 5; });
    prof.measure("streaming", count, [&] { insts = 7; });
    prof.addCounter("streaming", "loops_streamed", 2);
    prof.addCounter("streaming", "loops_streamed", 1);

    ASSERT_EQ(prof.profiles().size(), 2u);
    const PassProfile &cleanup = prof.profiles()[0];
    EXPECT_EQ(cleanup.name, "cleanup");
    EXPECT_EQ(cleanup.calls, 2);
    EXPECT_EQ(cleanup.instsBefore, 10 + 8);
    EXPECT_EQ(cleanup.instsAfter, 8 + 5);
    EXPECT_EQ(cleanup.instsDelta(), -5);
    const PassProfile &streaming = prof.profiles()[1];
    EXPECT_EQ(streaming.calls, 1);
    EXPECT_EQ(streaming.instsDelta(), 2);
    ASSERT_EQ(streaming.counters.size(), 1u);
    EXPECT_EQ(streaming.counters[0].first, "loops_streamed");
    EXPECT_EQ(streaming.counters[0].second, 3);

    std::string table = prof.table();
    EXPECT_NE(table.find("cleanup"), std::string::npos);
    EXPECT_NE(table.find("loops_streamed=3"), std::string::npos);

    JsonWriter w;
    prof.writeJson(w);
    EXPECT_TRUE(JsonChecker(w.str()).valid()) << w.str();
}

TEST(TraceWriter, ValidTraceDocument)
{
    TraceWriter t;
    int scu = t.track("SCU 0");
    EXPECT_GE(scu, 1);
    t.counter("in_fifo.flt0", 0, 0);
    t.counter("in_fifo.flt0", 5, 3);
    t.complete(scu, "Sin flt.f0 n=100 stride=8", 2, 100);
    t.instant(scu, "drain", 102);

    EXPECT_EQ(t.eventCount(), 5u); // track meta + 2 counters + X + i
    std::string s = t.str();
    EXPECT_TRUE(JsonChecker(s).valid()) << s;
    EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(s.find("\"dur\":100"), std::string::npos);
}

TEST(JsonEscape, EveryControlCharacterEscapes)
{
    // All 32 C0 control characters must come out as an escape — either
    // a short one (\n, \t, ...) or \u00XX — never as a raw byte.
    for (int c = 0; c < 0x20; ++c) {
        std::string in(1, static_cast<char>(c));
        std::string out = jsonEscape(in);
        ASSERT_GE(out.size(), 2u) << "control char " << c;
        EXPECT_EQ(out[0], '\\') << "control char " << c;
        std::string doc = "\"" + out + "\"";
        EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
    }
    // NUL in the middle of a string survives as  .
    std::string withNul = std::string("a") + '\0' + "b";
    EXPECT_EQ(jsonEscape(withNul), "a\\u0000b");
}

TEST(JsonEscape, NonAsciiBytesPassThrough)
{
    // UTF-8 multibyte sequences are passed through verbatim (JSON
    // strings are UTF-8; no escaping required).
    EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
    EXPECT_EQ(jsonEscape("\xe2\x86\x92"), "\xe2\x86\x92"); // U+2192
    // 0x7F (DEL) is not a C0 control and passes through too.
    EXPECT_EQ(jsonEscape("\x7f"), "\x7f");
}

TEST(JsonEscape, RoundTripsThroughParser)
{
    const std::string nasty =
        std::string("quote\" back\\slash \n\t\r\b\f ctrl") + '\x01' +
        " caf\xc3\xa9 end";
    std::string doc = "\"" + jsonEscape(nasty) + "\"";
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(doc, v, err)) << err;
    EXPECT_EQ(v.kind, JsonValue::Kind::String);
    EXPECT_EQ(v.strVal, nasty);
}

TEST(Histogram, EmptyHistogram)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.0), 0);
    EXPECT_EQ(h.percentile(1.0), 0);
    EXPECT_EQ(h.at(0), 0u);
    EXPECT_TRUE(h.buckets().empty());

    JsonWriter w;
    h.writeJson(w);
    EXPECT_TRUE(JsonChecker(w.str()).valid()) << w.str();
    EXPECT_NE(w.str().find("\"buckets\":[]"), std::string::npos);
}

TEST(Histogram, SingleBucket)
{
    Histogram h;
    h.add(5, 10);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_EQ(h.min(), 5);
    EXPECT_EQ(h.max(), 5);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    // Every percentile of a one-valued distribution is that value.
    EXPECT_EQ(h.percentile(0.0), 5);
    EXPECT_EQ(h.percentile(0.5), 5);
    EXPECT_EQ(h.percentile(1.0), 5);
    // Leading buckets 0..4 exist but are empty.
    EXPECT_EQ(h.buckets().size(), 6u);
    EXPECT_EQ(h.at(4), 0u);
    EXPECT_EQ(h.at(5), 10u);
}

TEST(Histogram, OverflowBucketGrowsOnDemand)
{
    Histogram h;
    h.add(0);
    EXPECT_EQ(h.buckets().size(), 1u);
    // A value past the current range grows the bucket vector instead
    // of dropping the sample.
    h.add(40);
    EXPECT_EQ(h.buckets().size(), 41u);
    EXPECT_EQ(h.at(40), 1u);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), 40);
    // Out-of-range and negative queries answer zero, not UB.
    EXPECT_EQ(h.at(41), 0u);
    EXPECT_EQ(h.at(-1), 0u);
}

TEST(Histogram, ZeroCountAndClampedPercentiles)
{
    Histogram h;
    h.add(3, 0); // count 0: a no-op, not a bucket
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(h.buckets().empty());

    h.add(1);
    h.add(2);
    // Out-of-domain p clamps instead of reading out of bounds.
    EXPECT_EQ(h.percentile(-0.5), 1);
    EXPECT_EQ(h.percentile(2.0), 2);
}

TEST(JsonParse, ScalarsAndNesting)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(
        R"({"a": 1, "b": -2.5, "c": "x", "d": [true, false, null],
            "e": {"nested": 9007199254740993}})",
        v, err))
        << err;
    EXPECT_TRUE(v.isObject());
    EXPECT_EQ(v.getInt("a"), 1);
    ASSERT_NE(v.get("a"), nullptr);
    EXPECT_TRUE(v.get("a")->isInt);
    EXPECT_DOUBLE_EQ(v.getNum("b"), -2.5);
    EXPECT_FALSE(v.get("b")->isInt);
    EXPECT_EQ(v.getStr("c"), "x");
    const JsonValue *d = v.get("d");
    ASSERT_NE(d, nullptr);
    ASSERT_TRUE(d->isArray());
    ASSERT_EQ(d->arr.size(), 3u);
    EXPECT_TRUE(d->arr[0].boolVal);
    EXPECT_FALSE(d->arr[1].boolVal);
    EXPECT_TRUE(d->arr[2].isNull());
    // Integers beyond double precision stay exact in intVal.
    EXPECT_EQ(v.get("e")->getInt("nested"), 9007199254740993LL);
    // Typed accessors fall back to defaults on absent keys.
    EXPECT_EQ(v.getInt("missing", -7), -7);
    EXPECT_EQ(v.getStr("missing", "dflt"), "dflt");
    EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(JsonParse, UnicodeEscapes)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(R"("Aé→😀")", v, err))
        << err;
    // A, é, →, 😀 (surrogate pair) as UTF-8.
    EXPECT_EQ(v.strVal, "A\xc3\xa9\xe2\x86\x92\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("", v, err));
    EXPECT_FALSE(parseJson("{", v, err));
    EXPECT_FALSE(parseJson("{\"a\":}", v, err));
    EXPECT_FALSE(parseJson("[1,]", v, err));
    EXPECT_FALSE(parseJson("\"unterminated", v, err));
    EXPECT_FALSE(parseJson("tru", v, err));
    EXPECT_FALSE(parseJson("{} trailing", v, err));
    EXPECT_FALSE(parseJson("nan", v, err)); // no lenient extensions
    // Errors carry an offset for debugging.
    ASSERT_FALSE(parseJson("[1, x]", v, err));
    EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version", int64_t{1});
    w.field("name", "weird \"name\"\n");
    w.key("hist");
    Histogram h;
    h.add(0, 2);
    h.add(3);
    h.writeJson(w);
    w.endObject();

    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(w.str(), v, err)) << err;
    EXPECT_EQ(v.getInt("schema_version"), 1);
    EXPECT_EQ(v.getStr("name"), "weird \"name\"\n");
    const JsonValue *hist = v.get("hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->getInt("count"), 3);
    ASSERT_TRUE(hist->get("buckets")->isArray());
    EXPECT_EQ(hist->get("buckets")->arr.size(), 4u);
}

} // namespace
