/**
 * @file
 * Unit tests for the WM cycle simulator: decoupled units, FIFOs,
 * condition-code discipline, streams, and memory ordering.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "driver/compiler.h"
#include "programs/programs.h"
#include "wmsim/sim.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

wmsim::SimResult
runSrc(const std::string &src, wmsim::SimConfig cfg = {})
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(src, opts);
    EXPECT_TRUE(cr.ok) << cr.diagnostics;
    cfg.maxCycles = 10'000'000ull;
    return wmsim::simulate(*cr.program, cfg);
}

/** Hand-build a program: one function around the given block filler. */
std::unique_ptr<Program>
handProgram(const std::function<void(Function &, Block *)> &fill)
{
    auto prog = std::make_unique<Program>();
    Function *fn = prog->addFunction("main");
    Block *b = fn->addBlock("entry");
    fill(*fn, b);
    fn->recomputeCfg();
    prog->layout();
    return prog;
}

} // namespace

TEST(WmSim, ReturnValueInR2)
{
    auto prog = handProgram([](Function &, Block *b) {
        b->insts.push_back(
            makeAssign(makeReg(RegFile::Int, 2, DataType::I64),
                       makeConst(99)));
        b->insts.push_back(makeReturn());
    });
    auto res = wmsim::simulate(*prog);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 99);
}

TEST(WmSim, ZeroRegisterReadsZeroAndDiscardsWrites)
{
    auto prog = handProgram([](Function &, Block *b) {
        auto r31 = makeReg(RegFile::Int, 31, DataType::I64);
        b->insts.push_back(makeAssign(r31, makeConst(123)));
        b->insts.push_back(
            makeAssign(makeReg(RegFile::Int, 2, DataType::I64),
                       makeBin(Op::Add, r31, makeConst(1))));
        b->insts.push_back(makeReturn());
    });
    auto res = wmsim::simulate(*prog);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.returnValue, 1);
}

TEST(WmSim, LoadGoesThroughInputFifo)
{
    auto prog = std::make_unique<Program>();
    auto &g = prog->addGlobal("g", 8, 8);
    g.init.resize(8);
    int64_t v = 777;
    std::memcpy(g.init.data(), &v, 8);
    Function *fn = prog->addFunction("main");
    Block *b = fn->addBlock("entry");
    auto addr = makeReg(RegFile::Int, 4, DataType::I64);
    b->insts.push_back(makeAssign(addr, makeSym("g")));
    // lowered form: address generation to FIFO, then dequeue
    b->insts.push_back(makeLoad(makeReg(RegFile::Int, 0, DataType::I64),
                                addr, DataType::I64));
    b->insts.push_back(
        makeAssign(makeReg(RegFile::Int, 2, DataType::I64),
                   makeReg(RegFile::Int, 0, DataType::I64)));
    b->insts.push_back(makeReturn());
    fn->recomputeCfg();
    prog->layout();
    auto res = wmsim::simulate(*prog);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 777);
}

TEST(WmSim, StorePairsAddressWithEnqueuedData)
{
    auto prog = std::make_unique<Program>();
    prog->addGlobal("g", 8, 8);
    Function *fn = prog->addFunction("main");
    Block *b = fn->addBlock("entry");
    auto addr = makeReg(RegFile::Int, 4, DataType::I64);
    auto r0out = makeReg(RegFile::Int, 0, DataType::I64);
    b->insts.push_back(makeAssign(addr, makeSym("g")));
    b->insts.push_back(makeAssign(r0out, makeConst(55))); // enqueue
    b->insts.push_back(makeStore(addr, r0out, DataType::I64));
    b->insts.push_back(
        makeAssign(makeReg(RegFile::Int, 2, DataType::I64), makeConst(0)));
    b->insts.push_back(makeReturn());
    fn->recomputeCfg();
    prog->layout();
    wmsim::Simulator sim(*prog);
    auto res = sim.run();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(sim.readInt(prog->globalAddress("g")), 55);
}

TEST(WmSim, ConditionalBranchConsumesCcFifo)
{
    EXPECT_EQ(runSrc(R"(
int main(void) {
    int a;
    a = 5;
    if (a > 3)
        return 1;
    return 2;
})")
                  .returnValue,
              1);
}

TEST(WmSim, MemoryLatencyAffectsScalarCode)
{
    std::string src = programs::dotProductSource(200);
    driver::CompileOptions opts;
    opts.streaming = false;
    auto cr = driver::compileSource(src, opts);
    ASSERT_TRUE(cr.ok);
    wmsim::SimConfig fast, slow;
    fast.memLatency = 1;
    slow.memLatency = 24;
    auto rf = wmsim::simulate(*cr.program, fast);
    auto rs = wmsim::simulate(*cr.program, slow);
    ASSERT_TRUE(rf.ok && rs.ok);
    EXPECT_EQ(rf.returnValue, rs.returnValue);
    EXPECT_GT(rs.stats.cycles, rf.stats.cycles);
}

TEST(WmSim, StreamedCodeToleratesLatencyBetter)
{
    std::string src = programs::dotProductSource(500);
    driver::CompileOptions base, stream;
    base.streaming = false;
    auto crBase = driver::compileSource(src, base);
    auto crStream = driver::compileSource(src, stream);
    wmsim::SimConfig lat;
    lat.memLatency = 24;
    auto rb = wmsim::simulate(*crBase.program, lat);
    auto rs = wmsim::simulate(*crStream.program, lat);
    ASSERT_TRUE(rb.ok && rs.ok);
    EXPECT_EQ(rb.returnValue, rs.returnValue);
    EXPECT_LT(rs.stats.cycles, rb.stats.cycles);
}

TEST(WmSim, StatsCountStreamElements)
{
    auto cr = driver::compileSource(programs::dotProductSource(100), {});
    ASSERT_TRUE(cr.ok);
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok);
    // two in-streams of 100 elements each in the kernel
    EXPECT_GE(res.stats.streamElementsIn, 200u);
}

TEST(WmSim, SmallDataFifoStillCorrect)
{
    wmsim::SimConfig cfg;
    cfg.dataFifoDepth = 2;
    auto res = runSrc(programs::livermore5Source(32), cfg);
    ASSERT_TRUE(res.ok) << res.error;
    driver::CompileOptions opts;
    auto noOpt = driver::compileSource(programs::livermore5Source(32),
                                       opts);
    auto big = wmsim::simulate(*noOpt.program);
    EXPECT_EQ(res.returnValue, big.returnValue);
}

TEST(WmSim, SingleMemoryPortStillCorrect)
{
    wmsim::SimConfig cfg;
    cfg.memPorts = 1;
    auto res = runSrc(programs::livermore5Source(32), cfg);
    ASSERT_TRUE(res.ok) << res.error;
}

TEST(WmSim, TinyInstructionQueuesStillCorrect)
{
    wmsim::SimConfig cfg;
    cfg.instQueueDepth = 1;
    auto res = runSrc(programs::livermore5Source(32), cfg);
    ASSERT_TRUE(res.ok) << res.error;
}

TEST(WmSim, DivideByZeroReported)
{
    // the divisor must come from memory so constant folding cannot
    // evaluate the division at compile time
    auto res = runSrc("int z = 0;\nint main(void) { return 7 / z; }");
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("divide"), std::string::npos);
}

TEST(WmSim, RecursionWorks)
{
    auto res = runSrc(R"(
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int main(void) { return fact(10); }
)");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 3628800);
}

TEST(WmSim, ScalarStoreAfterStreamedLoopIsOrdered)
{
    // Regression: a scalar store dispatched right after a streamed
    // loop must not be swallowed as a stream element.
    auto res = runSrc(R"(
int n = 16;
int a[17];
int main(void) {
    int i;
    for (i = 0; i < n; i++)
        a[i] = i;
    a[16] = 999;          /* scalar store right after the stream */
    return a[16] + a[3];
})");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 1002);
}

TEST(WmSim, ScalarLoadAfterStreamedLoopIsOrdered)
{
    // Regression: the load of the checksum constant must not interleave
    // with in-stream deliveries on the same FIFO.
    auto res = runSrc(R"(
int n = 16;
double x[16];
int main(void) {
    int i;
    double s;
    for (i = 0; i < n; i++)
        x[i] = 1.0 + i;
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + x[i];
    return s * 16.0;   /* 16.0 loads from the constant pool */
})");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, (16 * 17 / 2) * 16);
}

TEST(WmSim, StallCausesSumToUnitStallTotals)
{
    // Attribution invariant: every stalled unit-cycle is charged to
    // exactly one cause, so the per-cause counts must sum to the
    // legacy per-unit stall totals — streamed and non-streamed.
    for (bool streaming : {false, true}) {
        driver::CompileOptions opts;
        opts.streaming = streaming;
        auto cr =
            driver::compileSource(programs::dotProductSource(64), opts);
        ASSERT_TRUE(cr.ok) << cr.diagnostics;
        auto res = wmsim::simulate(*cr.program);
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_EQ(res.stats.ieuStalls.total(), res.stats.ieuStallCycles)
            << "streaming=" << streaming;
        EXPECT_EQ(res.stats.feuStalls.total(), res.stats.feuStallCycles)
            << "streaming=" << streaming;
        EXPECT_EQ(res.stats.ifuStalls.total(), res.stats.ifuStallCycles)
            << "streaming=" << streaming;
        // Queue-empty cycles are idleness, not stalls: the unit-queue
        // causes must never appear in the IEU/FEU stall breakdown.
        EXPECT_EQ(res.stats.ieuStalls.at(wmsim::StallCause::InstQueueEmpty),
                  0u);
        EXPECT_EQ(res.stats.feuStalls.at(wmsim::StallCause::InstQueueEmpty),
                  0u);
    }
}

TEST(WmSim, MemoryLatencyStallsAttributeToDataFifoEmpty)
{
    // Non-streamed dot product at high memory latency: the FEU burns
    // most of its stalled cycles waiting on load data, which the
    // taxonomy calls data_fifo_empty (the latency is visible as an
    // empty input FIFO at the consumer).
    driver::CompileOptions opts;
    opts.streaming = false;
    auto cr = driver::compileSource(programs::dotProductSource(128), opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    wmsim::SimConfig cfg;
    cfg.memLatency = 24;
    auto res = wmsim::simulate(*cr.program, cfg);
    ASSERT_TRUE(res.ok) << res.error;
    uint64_t fifoEmpty =
        res.stats.feuStalls.at(wmsim::StallCause::DataFifoEmpty);
    EXPECT_GT(fifoEmpty, 0u);
    EXPECT_GE(2 * fifoEmpty, res.stats.feuStallCycles)
        << "data_fifo_empty should dominate FEU stalls at high latency";
}

TEST(WmSim, OccupancyHistogramsCollectedWhenEnabled)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(programs::dotProductSource(64), opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;

    auto off = wmsim::simulate(*cr.program);
    ASSERT_TRUE(off.ok) << off.error;
    EXPECT_TRUE(off.stats.occupancy.empty());

    wmsim::SimConfig cfg;
    cfg.collectOccupancy = true;
    auto on = wmsim::simulate(*cr.program, cfg);
    ASSERT_TRUE(on.ok) << on.error;
    ASSERT_FALSE(on.stats.occupancy.empty());
    bool sawFltInFifo = false;
    for (const auto &s : on.stats.occupancy) {
        // One sample per series per cycle.
        EXPECT_EQ(s.hist.count(), on.stats.cycles) << s.name;
        if (s.name == "in_fifo.flt0" && s.hist.max() > 0)
            sawFltInFifo = true;
    }
    EXPECT_TRUE(sawFltInFifo)
        << "streamed dot product must enqueue into the float in-FIFO";
}

TEST(WmSim, TraceWriterReceivesPipelineEvents)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(programs::dotProductSource(64), opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    obs::TraceWriter trace;
    wmsim::SimConfig cfg;
    cfg.trace = &trace;
    auto res = wmsim::simulate(*cr.program, cfg);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_GT(trace.eventCount(), 0u);
    std::string doc = trace.str();
    // At least one event per pipeline unit.
    for (const char *series :
         {"busy.ieu", "busy.feu", "ifu.dispatched", "scu.active",
          "in_fifo.flt0"})
        EXPECT_NE(doc.find(series), std::string::npos) << series;
    // The streamed loops must show up as SCU duration events.
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("SCU 0"), std::string::npos);
}

TEST(WmSim, CounterExportMatchesStats)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(programs::dotProductSource(64), opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    obs::CounterRegistry reg;
    res.stats.exportCounters(reg);
    EXPECT_EQ(reg.get("cycles"), res.stats.cycles);
    EXPECT_EQ(reg.get("ieu.executed"), res.stats.ieuExecuted);
    EXPECT_EQ(reg.get("feu.stall_cycles"), res.stats.feuStallCycles);
    // The dotted stall namespace sums back to the exported total.
    EXPECT_EQ(reg.sumPrefix("ifu.stall"), reg.get("ifu.stall_cycles"));
    EXPECT_EQ(reg.sumPrefix("ieu.stall"), reg.get("ieu.stall_cycles"));
    EXPECT_EQ(reg.sumPrefix("feu.stall"), reg.get("feu.stall_cycles"));
}

TEST(WmSim, ConstFoldedGlobalInitializersExecute)
{
    // %, comparisons, and logical operators in constant initializers
    // fold at expand time and must survive a full simulation.
    auto res = runSrc(R"(
int g = 7 % 2;
int h = (1 < 2) && (3 > 1);
int k = 10 / (5 - 2);
int main(void) { return g + h + k; }
)");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 5);
}

TEST(WmSim, OversizedGlobalFailsGracefully)
{
    // A data segment larger than simulated memory must surface as a
    // runtime error, not an assert/abort.
    driver::CompileOptions opts;
    auto cr = driver::compileSource(R"(
int a[9000000];
int main(void) { return 0; }
)",
                                    opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    auto res = wmsim::simulate(*cr.program);
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.fault, wmsim::SimFault::RuntimeError);
    EXPECT_NE(res.error.find("exceeds simulated memory"),
              std::string::npos)
        << res.error;
}
