/**
 * @file
 * Tests for the support utilities and diagnostics engine.
 */

#include <gtest/gtest.h>

#include "support/diag.h"
#include "support/str.h"

using namespace wmstream;

TEST(Str, Split)
{
    auto parts = splitString("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(Str, Trim)
{
    EXPECT_EQ(trimString("  hi \t\n"), "hi");
    EXPECT_EQ(trimString("hi"), "hi");
    EXPECT_EQ(trimString("   "), "");
    EXPECT_EQ(trimString(""), "");
}

TEST(Str, StartsWith)
{
    EXPECT_TRUE(startsWith("streaming", "stream"));
    EXPECT_FALSE(startsWith("stream", "streaming"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Str, Format)
{
    EXPECT_EQ(strFormat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strFormat("%s", ""), "");
    // long outputs are not truncated
    std::string big(300, 'a');
    EXPECT_EQ(strFormat("%s!", big.c_str()).size(), 301u);
}

TEST(Diag, CollectsAndCounts)
{
    DiagEngine diag;
    EXPECT_FALSE(diag.hasErrors());
    diag.warning({1, 2}, "w");
    EXPECT_FALSE(diag.hasErrors());
    diag.error({3, 4}, "e");
    diag.note({3, 5}, "n");
    EXPECT_TRUE(diag.hasErrors());
    EXPECT_EQ(diag.errorCount(), 1);
    ASSERT_EQ(diag.messages().size(), 3u);
    EXPECT_NE(diag.str().find("error at 3:4: e"), std::string::npos);
    EXPECT_NE(diag.str().find("warning at 1:2: w"), std::string::npos);
}

TEST(Diag, PositionRendering)
{
    SourcePos p{7, 12};
    EXPECT_EQ(p.str(), "7:12");
    EXPECT_TRUE(p.valid());
    EXPECT_FALSE(SourcePos{}.valid());
}
