/**
 * @file
 * Tests for the support utilities: strings, diagnostics, the seeded
 * splittable PRNG, and the thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/diag.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/thread_pool.h"

using namespace wmstream;

TEST(Str, Split)
{
    auto parts = splitString("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(Str, Trim)
{
    EXPECT_EQ(trimString("  hi \t\n"), "hi");
    EXPECT_EQ(trimString("hi"), "hi");
    EXPECT_EQ(trimString("   "), "");
    EXPECT_EQ(trimString(""), "");
}

TEST(Str, StartsWith)
{
    EXPECT_TRUE(startsWith("streaming", "stream"));
    EXPECT_FALSE(startsWith("stream", "streaming"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Str, Format)
{
    EXPECT_EQ(strFormat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strFormat("%s", ""), "");
    // long outputs are not truncated
    std::string big(300, 'a');
    EXPECT_EQ(strFormat("%s!", big.c_str()).size(), 301u);
}

TEST(Diag, CollectsAndCounts)
{
    DiagEngine diag;
    EXPECT_FALSE(diag.hasErrors());
    diag.warning({1, 2}, "w");
    EXPECT_FALSE(diag.hasErrors());
    diag.error({3, 4}, "e");
    diag.note({3, 5}, "n");
    EXPECT_TRUE(diag.hasErrors());
    EXPECT_EQ(diag.errorCount(), 1);
    ASSERT_EQ(diag.messages().size(), 3u);
    EXPECT_NE(diag.str().find("error at 3:4: e"), std::string::npos);
    EXPECT_NE(diag.str().find("warning at 1:2: w"), std::string::npos);
}

TEST(Diag, PositionRendering)
{
    SourcePos p{7, 12};
    EXPECT_EQ(p.str(), "7:12");
    EXPECT_TRUE(p.valid());
    EXPECT_FALSE(SourcePos{}.valid());
}

TEST(Rng, DeterministicAndSeedSensitive)
{
    support::Rng a(5), b(5), c(6);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    support::Rng a2(5);
    for (int i = 0; i < 64; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
    // A zero seed must not produce a stuck generator.
    support::Rng z(0);
    EXPECT_NE(z.next(), z.next());
}

TEST(Rng, RangeIsInclusiveAndCoversEndpoints)
{
    support::Rng rng(1);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        int v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
    EXPECT_EQ(rng.range(4, 4), 4); // degenerate single-value range
}

TEST(Rng, NextBelowIsUnbiased)
{
    // With a bound just above a power of two, naive modulo sampling
    // visibly over-weights small values (the old loopfuzz Rng bug);
    // Lemire rejection keeps every bucket within a few percent.
    support::Rng rng(99);
    constexpr uint64_t kBound = 3;
    constexpr int kDraws = 30000;
    int counts[kBound] = {0, 0, 0};
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.nextBelow(kBound)];
    for (uint64_t v = 0; v < kBound; ++v) {
        EXPECT_GT(counts[v], kDraws / 3 - kDraws / 20) << v;
        EXPECT_LT(counts[v], kDraws / 3 + kDraws / 20) << v;
    }
}

TEST(Rng, SplitIsStableAndIndependent)
{
    support::Rng root(7);
    support::Rng c1 = root.split(1);
    support::Rng c1again = root.split(1);
    support::Rng c2 = root.split(2);
    EXPECT_EQ(c1.next(), c1again.next());   // pure in (seed, id)
    support::Rng c1b = root.split(1);
    EXPECT_NE(c1b.next(), c2.next());       // distinct streams
    // Splitting does not advance the parent.
    support::Rng fresh(7);
    EXPECT_EQ(root.next(), fresh.next());
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce)
{
    support::ThreadPool pool(4);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    support::parallelFor(pool, kN, [&](int64_t i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
}

TEST(ThreadPool, SubmitAndWaitDrainsAllTasks)
{
    support::ThreadPool pool(3);
    EXPECT_EQ(pool.numThreads(), 3);
    std::atomic<int> done{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ParallelForHandlesZeroAndSingleThread)
{
    support::ThreadPool pool(1);
    std::atomic<int> count{0};
    support::parallelFor(pool, 0, [&](int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 0);
    support::parallelFor(pool, 7, [&](int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 7);
}

TEST(ThreadPool, CancelPendingDropsOnlyUnstartedJobs)
{
    // The serve --fail-fast abort path: occupy every worker with a
    // gated job, queue more work behind them, cancel, then release
    // the gates. The cancelled jobs must never run, the in-flight
    // ones must finish normally, and accounting must be exact:
    // executed + dropped == submitted.
    constexpr int kWorkers = 2;
    constexpr int kQueued = 40;
    support::ThreadPool pool(kWorkers);

    auto state = std::make_shared<std::atomic<int>>(0);
    std::mutex gateMu;
    std::condition_variable gateCv;
    bool gateOpen = false;
    std::atomic<int> parked{0};

    for (int i = 0; i < kWorkers; ++i)
        pool.submit([&, state] {
            parked.fetch_add(1);
            std::unique_lock<std::mutex> lock(gateMu);
            gateCv.wait(lock, [&] { return gateOpen; });
            state->fetch_add(1);
        });
    // Wait until both workers are provably inside the gated jobs, so
    // every job below is queued-but-unstarted when we cancel.
    while (parked.load() < kWorkers)
        std::this_thread::yield();
    for (int i = 0; i < kQueued; ++i)
        pool.submit([state] { state->fetch_add(1); });

    size_t dropped = pool.cancelPending();
    {
        std::lock_guard<std::mutex> lock(gateMu);
        gateOpen = true;
    }
    gateCv.notify_all();
    pool.wait();

    EXPECT_EQ(dropped, static_cast<size_t>(kQueued));
    EXPECT_EQ(state->load(), kWorkers);

    // The pool stays usable after an abort: drain-or-cancel, not
    // poison.
    pool.submit([state] { state->fetch_add(1); });
    pool.wait();
    EXPECT_EQ(state->load(), kWorkers + 1);
}

TEST(ThreadPool, CancelPendingOnIdlePoolIsANoOp)
{
    support::ThreadPool pool(2);
    EXPECT_EQ(pool.cancelPending(), 0u);
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}
