/**
 * @file
 * Tests for the scalar executing timing models (Table I substrate).
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "programs/programs.h"
#include "timing/scalar_sim.h"

using namespace wmstream;

namespace {

timing::ScalarRunResult
run(const std::string &src, const timing::CostModel &model,
    bool recurrence = true)
{
    driver::CompileOptions opts;
    opts.target = rtl::MachineKind::Scalar;
    opts.recurrence = recurrence;
    auto cr = driver::compileSource(src, opts);
    EXPECT_TRUE(cr.ok) << cr.diagnostics;
    return timing::runScalar(*cr.program, model, 4'000'000'000ull);
}

} // namespace

TEST(Timing, ComputesCorrectResult)
{
    auto res = run("int main(void) { return 6 * 7; }",
                   timing::vax8600Model());
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 42);
    EXPECT_GT(res.cycles, 0);
}

TEST(Timing, CountsMemoryReferences)
{
    auto res = run(R"(
int a[8];
int main(void) {
    int i;
    for (i = 0; i < 8; i++)
        a[i] = i;
    return a[3];
})",
                   timing::m88100Model());
    ASSERT_TRUE(res.ok);
    EXPECT_GE(res.memoryRefs, 9u); // 8 stores + 1 load
}

TEST(Timing, RecurrenceOptReducesCyclesOnEveryModel)
{
    std::string src = programs::livermore5Source(512, 8);
    for (const auto &model :
             {timing::sun3_280Model(), timing::hp9000_345Model(),
              timing::vax8600Model(), timing::m88100Model()}) {
        auto without = run(src, model, /*recurrence=*/false);
        auto with = run(src, model, /*recurrence=*/true);
        ASSERT_TRUE(without.ok && with.ok) << model.name;
        EXPECT_EQ(without.returnValue, with.returnValue) << model.name;
        EXPECT_LT(with.cycles, without.cycles) << model.name;
    }
}

TEST(Timing, ImprovementOrderingMatchesPaper)
{
    // Paper Table I ordering: Sun 3/280 (19) > HP 9000/345 (12) >
    // M88100 (7) > VAX 8600 (6).
    std::string src = programs::livermore5Source(512, 8);
    auto improvement = [&](const timing::CostModel &m) {
        auto without = run(src, m, false);
        auto with = run(src, m, true);
        return (without.cycles - with.cycles) / without.cycles;
    };
    double sun = improvement(timing::sun3_280Model());
    double hp = improvement(timing::hp9000_345Model());
    double m88 = improvement(timing::m88100Model());
    double vax = improvement(timing::vax8600Model());
    EXPECT_GT(sun, hp);
    EXPECT_GT(hp, m88);
    EXPECT_GT(m88, vax);
}

TEST(Timing, MemoryCostDrivesTheEffect)
{
    // Doubling only the memory costs must increase the benefit of
    // removing a load — the mechanism behind Table I's spread.
    std::string src = programs::livermore5Source(256, 8);
    timing::CostModel cheap = timing::vax8600Model();
    timing::CostModel dear = cheap;
    dear.cyclesLoad *= 8;
    dear.cyclesStore *= 8;
    auto improvement = [&](const timing::CostModel &m) {
        auto without = run(src, m, false);
        auto with = run(src, m, true);
        return (without.cycles - with.cycles) / without.cycles;
    };
    EXPECT_GT(improvement(dear), improvement(cheap));
}

TEST(Timing, InstructionBudgetGuardsRunaways)
{
    driver::CompileOptions opts;
    opts.target = rtl::MachineKind::Scalar;
    auto cr = driver::compileSource(
        "int main(void) { for (;;) {} return 0; }", opts);
    ASSERT_TRUE(cr.ok);
    auto res = timing::runScalar(*cr.program, timing::vax8600Model(),
                                 /*maxInsts=*/10000);
    EXPECT_FALSE(res.ok);
}

TEST(Timing, CostClassAttributionSumsToTotals)
{
    auto res = run(programs::dotProductSource(64), timing::sun3_280Model());
    ASSERT_TRUE(res.ok) << res.error;

    double cyc = 0;
    uint64_t insts = 0;
    for (size_t c = 0;
         c < static_cast<size_t>(timing::CostClass::kCount); ++c) {
        cyc += res.cyclesByClass[c];
        insts += res.instsByClass[c];
    }
    EXPECT_NEAR(cyc, res.cycles, 1e-6);
    EXPECT_EQ(insts, res.instsExecuted);
    // The kernel is loads + float multiply-adds; those classes must
    // have been charged.
    EXPECT_GT(res.instsOf(timing::CostClass::Load), 0u);
    EXPECT_GT(res.instsOf(timing::CostClass::FltMul), 0u);
    EXPECT_EQ(res.instsOf(timing::CostClass::Load) +
                  res.instsOf(timing::CostClass::Store),
              res.memoryRefs);
}

TEST(Timing, CounterExportRoundTrips)
{
    auto res = run(programs::dotProductSource(64), timing::sun3_280Model());
    ASSERT_TRUE(res.ok) << res.error;
    obs::CounterRegistry reg;
    res.exportCounters(reg);
    EXPECT_EQ(reg.get("insts_executed"), res.instsExecuted);
    EXPECT_EQ(reg.get("memory_refs"), res.memoryRefs);
    EXPECT_EQ(reg.sumPrefix("insts"), res.instsExecuted);
    // millicycles.* (scaled 1000x) sums back to the weighted total,
    // within rounding of each class.
    double milli = static_cast<double>(reg.sumPrefix("millicycles")) -
                   static_cast<double>(reg.get("millicycles.total"));
    EXPECT_NEAR(milli / 1000.0, res.cycles,
                0.001 * static_cast<double>(
                            timing::CostClass::kCount));
}

TEST(ScalarSim, OversizedGlobalFailsGracefully)
{
    driver::CompileOptions opts;
    opts.target = rtl::MachineKind::Scalar;
    auto cr = driver::compileSource(R"(
int a[9000000];
int main(void) { return 0; }
)",
                                    opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    auto res = timing::runScalar(*cr.program, timing::sun3_280Model());
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("exceeds simulated memory"),
              std::string::npos)
        << res.error;
}
