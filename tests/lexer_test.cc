/**
 * @file
 * Unit tests for the mini-C lexer.
 */

#include <gtest/gtest.h>

#include "frontend/lexer.h"

using namespace wmstream;
using namespace wmstream::frontend;

namespace {

std::vector<Token>
lex(const std::string &src, bool expectOk = true)
{
    DiagEngine diag;
    Lexer lexer(src, diag);
    auto toks = lexer.lexAll();
    EXPECT_EQ(!diag.hasErrors(), expectOk) << diag.str();
    return toks;
}

std::vector<Tok>
kinds(const std::vector<Token> &toks)
{
    std::vector<Tok> out;
    for (const auto &t : toks)
        out.push_back(t.kind);
    return out;
}

} // namespace

TEST(Lexer, EmptyInputYieldsEnd)
{
    auto toks = lex("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, Tok::End);
}

TEST(Lexer, Keywords)
{
    auto toks = lex("int char double void if else while for do return "
                    "break continue");
    std::vector<Tok> expect = {
        Tok::KwInt, Tok::KwChar, Tok::KwDouble, Tok::KwVoid, Tok::KwIf,
        Tok::KwElse, Tok::KwWhile, Tok::KwFor, Tok::KwDo, Tok::KwReturn,
        Tok::KwBreak, Tok::KwContinue, Tok::End,
    };
    EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, IdentifiersAreNotKeywords)
{
    auto toks = lex("integer if0 _while");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].kind, Tok::Ident);
    EXPECT_EQ(toks[0].text, "integer");
    EXPECT_EQ(toks[1].kind, Tok::Ident);
    EXPECT_EQ(toks[2].kind, Tok::Ident);
    EXPECT_EQ(toks[2].text, "_while");
}

TEST(Lexer, DecimalAndHexIntegers)
{
    auto toks = lex("0 42 1000000 0x10 0xFF");
    EXPECT_EQ(toks[0].ival, 0);
    EXPECT_EQ(toks[1].ival, 42);
    EXPECT_EQ(toks[2].ival, 1000000);
    EXPECT_EQ(toks[3].ival, 16);
    EXPECT_EQ(toks[4].ival, 255);
}

TEST(Lexer, FloatLiterals)
{
    auto toks = lex("0.5 1.25 2e3 1.5e-2");
    EXPECT_EQ(toks[0].kind, Tok::FloatLit);
    EXPECT_DOUBLE_EQ(toks[0].fval, 0.5);
    EXPECT_DOUBLE_EQ(toks[1].fval, 1.25);
    EXPECT_DOUBLE_EQ(toks[2].fval, 2000.0);
    EXPECT_DOUBLE_EQ(toks[3].fval, 0.015);
}

TEST(Lexer, IntegerFollowedByDotIsNotFloat)
{
    // "5." without a digit after the dot should not parse as a float
    // in this grammar (arrays use a[5]. patterns never arise, but the
    // lexer must not consume the dot).
    DiagEngine diag;
    Lexer lexer("5 .", diag);
    auto toks = lexer.lexAll();
    EXPECT_EQ(toks[0].kind, Tok::IntLit);
    // the lone '.' is an error character
    EXPECT_TRUE(diag.hasErrors());
}

TEST(Lexer, CharLiteralsAndEscapes)
{
    auto toks = lex(R"('A' 'z' '\n' '\t' '\0' '\\' '\'')");
    EXPECT_EQ(toks[0].ival, 'A');
    EXPECT_EQ(toks[1].ival, 'z');
    EXPECT_EQ(toks[2].ival, '\n');
    EXPECT_EQ(toks[3].ival, '\t');
    EXPECT_EQ(toks[4].ival, 0);
    EXPECT_EQ(toks[5].ival, '\\');
    EXPECT_EQ(toks[6].ival, '\'');
}

TEST(Lexer, StringLiterals)
{
    auto toks = lex(R"("hello" "a\nb" "")");
    EXPECT_EQ(toks[0].kind, Tok::StrLit);
    EXPECT_EQ(toks[0].text, "hello");
    EXPECT_EQ(toks[1].text, "a\nb");
    EXPECT_EQ(toks[2].text, "");
}

TEST(Lexer, OperatorsMaximalMunch)
{
    auto toks = lex("+ ++ += - -- -= << <= < >> >= > == = != ! && & || | "
                    "^ ~ * *= / /= % %=");
    std::vector<Tok> expect = {
        Tok::Plus, Tok::PlusPlus, Tok::PlusAssign, Tok::Minus,
        Tok::MinusMinus, Tok::MinusAssign, Tok::Shl, Tok::Le, Tok::Lt,
        Tok::Shr, Tok::Ge, Tok::Gt, Tok::Eq, Tok::Assign, Tok::Ne,
        Tok::Bang, Tok::AmpAmp, Tok::Amp, Tok::PipePipe, Tok::Pipe,
        Tok::Caret, Tok::Tilde, Tok::Star, Tok::StarAssign, Tok::Slash,
        Tok::SlashAssign, Tok::Percent, Tok::PercentAssign, Tok::End,
    };
    EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, LineAndBlockComments)
{
    auto toks = lex("a // comment with * and /\nb /* multi\nline */ c");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, UnterminatedCommentIsError)
{
    lex("a /* never closed", /*expectOk=*/false);
}

TEST(Lexer, UnterminatedStringIsError)
{
    lex("\"never closed", /*expectOk=*/false);
}

TEST(Lexer, PositionsTrackLinesAndColumns)
{
    auto toks = lex("a\n  b");
    EXPECT_EQ(toks[0].pos.line, 1);
    EXPECT_EQ(toks[0].pos.column, 1);
    EXPECT_EQ(toks[1].pos.line, 2);
    EXPECT_EQ(toks[1].pos.column, 3);
}

TEST(Lexer, UnknownCharacterIsError)
{
    lex("a @ b", /*expectOk=*/false);
}
