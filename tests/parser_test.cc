/**
 * @file
 * Unit tests for the mini-C parser (and Sema error detection through
 * parseAndCheck).
 */

#include <gtest/gtest.h>

#include "frontend/parser.h"

using namespace wmstream;
using namespace wmstream::frontend;

namespace {

std::unique_ptr<TranslationUnit>
parseOk(const std::string &src)
{
    DiagEngine diag;
    auto unit = parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str();
    return unit;
}

void
parseFail(const std::string &src)
{
    DiagEngine diag;
    auto unit = parseAndCheck(src, diag);
    EXPECT_TRUE(unit == nullptr) << "expected failure for: " << src;
}

} // namespace

TEST(Parser, GlobalScalarsAndArrays)
{
    auto unit = parseOk(R"(
int a;
double b = 1.5;
char buf[10];
int m[4] = {1, 2, 3, 4};
int main(void) { return 0; }
)");
    ASSERT_EQ(unit->globals.size(), 4u);
    EXPECT_EQ(unit->globals[0]->name, "a");
    EXPECT_TRUE(unit->globals[1]->type->isDouble());
    EXPECT_TRUE(unit->globals[2]->type->isArray());
    EXPECT_EQ(unit->globals[2]->type->arraySize(), 10);
    EXPECT_EQ(unit->globals[3]->init.list.size(), 4u);
}

TEST(Parser, TwoDimensionalArray)
{
    auto unit = parseOk(R"(
char grid[3][7];
int main(void) { grid[1][2] = 'x'; return grid[1][2]; }
)");
    const auto &t = unit->globals[0]->type;
    ASSERT_TRUE(t->isArray());
    EXPECT_EQ(t->arraySize(), 3);
    ASSERT_TRUE(t->base()->isArray());
    EXPECT_EQ(t->base()->arraySize(), 7);
}

TEST(Parser, StringInitializer)
{
    auto unit = parseOk(R"(
char msg[8] = "hi";
int main(void) { return msg[0]; }
)");
    EXPECT_TRUE(unit->globals[0]->init.isString);
    EXPECT_EQ(unit->globals[0]->init.stringInit, "hi");
}

TEST(Parser, FunctionsWithParamsAndPrototypes)
{
    auto unit = parseOk(R"(
int add(int a, int b);
int add(int a, int b) { return a + b; }
double scale(double x, int k) { return x * k; }
void nothing(void) { return; }
int main(void) { return add(1, 2); }
)");
    EXPECT_EQ(unit->functions.size(), 5u);
    FuncDecl *add = unit->findFunction("add");
    ASSERT_TRUE(add != nullptr);
    EXPECT_EQ(add->params.size(), 2u);
}

TEST(Parser, PointerParamsAndArrayDecay)
{
    auto unit = parseOk(R"(
int sum(int *p, int n) {
    int i, s;
    s = 0;
    for (i = 0; i < n; i++)
        s = s + p[i];
    return s;
}
int data[4] = {1, 2, 3, 4};
int main(void) { return sum(data, 4); }
)");
    FuncDecl *sum = unit->findFunction("sum");
    ASSERT_TRUE(sum != nullptr);
    EXPECT_TRUE(sum->params[0]->type->isPointer());
}

TEST(Parser, PrecedenceMulOverAdd)
{
    auto unit = parseOk("int main(void) { return 2 + 3 * 4; }");
    auto *ret = static_cast<ReturnStmt *>(
        unit->findFunction("main")->body->stmts[0].get());
    auto *bin = static_cast<BinaryExpr *>(ret->value.get());
    EXPECT_EQ(bin->op, BinOp::Add);
    EXPECT_EQ(static_cast<BinaryExpr *>(bin->rhs.get())->op, BinOp::Mul);
}

TEST(Parser, PrecedenceShiftRelationalEquality)
{
    // (1 << 2) < 8 == 1  parses as  ((1<<2) < 8) == 1
    auto unit = parseOk("int main(void) { return 1 << 2 < 8 == 1; }");
    auto *ret = static_cast<ReturnStmt *>(
        unit->findFunction("main")->body->stmts[0].get());
    auto *eq = static_cast<BinaryExpr *>(ret->value.get());
    EXPECT_EQ(eq->op, BinOp::Eq);
    auto *lt = static_cast<BinaryExpr *>(eq->lhs.get());
    EXPECT_EQ(lt->op, BinOp::Lt);
}

TEST(Parser, AssignmentIsRightAssociative)
{
    auto unit = parseOk("int main(void) { int a, b; a = b = 3; return a; }");
    auto *stmt = static_cast<ExprStmt *>(
        unit->findFunction("main")->body->stmts[1].get());
    auto *outer = static_cast<AssignExpr *>(stmt->expr.get());
    EXPECT_EQ(outer->rhs->kind(), NodeKind::Assign);
}

TEST(Parser, ConditionalExpression)
{
    auto unit = parseOk("int main(void) { int a; a = 3; "
                        "return a > 2 ? 10 : 20; }");
    auto *ret = static_cast<ReturnStmt *>(
        unit->findFunction("main")->body->stmts[2].get());
    EXPECT_EQ(ret->value->kind(), NodeKind::Cond);
}

TEST(Parser, ForWithEmptyClauses)
{
    parseOk(R"(
int main(void) {
    int i;
    i = 0;
    for (;;) {
        i = i + 1;
        if (i > 3)
            break;
    }
    return i;
}
)");
}

TEST(Parser, DoWhile)
{
    parseOk(R"(
int main(void) {
    int i;
    i = 0;
    do {
        i = i + 1;
    } while (i < 5);
    return i;
}
)");
}

TEST(Parser, CompoundAssignmentAndIncDec)
{
    parseOk(R"(
int main(void) {
    int a;
    a = 10;
    a += 5;
    a -= 2;
    a *= 3;
    a /= 4;
    a %= 7;
    a++;
    ++a;
    a--;
    --a;
    return a;
}
)");
}

TEST(Parser, PointerOperations)
{
    parseOk(R"(
int g;
int main(void) {
    int *p;
    p = &g;
    *p = 42;
    return *p + g;
}
)");
}

// ---- syntax errors ----

TEST(Parser, MissingSemicolonFails)
{
    parseFail("int main(void) { return 0 }");
}

TEST(Parser, UnbalancedParenFails)
{
    parseFail("int main(void) { return (1 + 2; }");
}

TEST(Parser, MissingArrayDimensionFails)
{
    parseFail("int a[]; int main(void) { return 0; }");
}

// ---- semantic errors (via Sema) ----

TEST(Sema, UndeclaredIdentifierFails)
{
    parseFail("int main(void) { return nope; }");
}

TEST(Sema, RedeclarationFails)
{
    parseFail("int main(void) { int a; int a; return 0; }");
}

TEST(Sema, CallArityMismatchFails)
{
    parseFail(R"(
int f(int a) { return a; }
int main(void) { return f(1, 2); }
)");
}

TEST(Sema, AssignToRValueFails)
{
    parseFail("int main(void) { 3 = 4; return 0; }");
}

TEST(Sema, DereferenceOfIntFails)
{
    parseFail("int main(void) { int a; a = 0; return *a; }");
}

TEST(Sema, GlobalInitializerMustBeConstant)
{
    parseFail(R"(
int f(void) { return 3; }
int g = f();
int main(void) { return g; }
)");
}

TEST(Sema, StringInitRequiresCharArray)
{
    parseFail("int a[4] = \"abc\"; int main(void) { return 0; }");
}

TEST(Sema, TooManyInitializersFails)
{
    parseFail("int a[2] = {1, 2, 3}; int main(void) { return 0; }");
}

TEST(Sema, AddressTakenIsMarked)
{
    DiagEngine diag;
    auto unit = parseAndCheck(R"(
int main(void) {
    int a, b;
    int *p;
    a = 1;
    b = 2;
    p = &a;
    return *p + b;
}
)",
                              diag);
    ASSERT_TRUE(unit != nullptr);
    auto *body = unit->findFunction("main")->body.get();
    auto *decl = static_cast<DeclStmt *>(body->stmts[0].get());
    EXPECT_TRUE(decl->vars[0]->addressTaken);  // a
    EXPECT_FALSE(decl->vars[1]->addressTaken); // b
}

TEST(Sema, ImplicitIntToDoubleConversionInserted)
{
    DiagEngine diag;
    auto unit = parseAndCheck(R"(
int main(void) {
    double d;
    d = 3;
    return d;
}
)",
                              diag);
    ASSERT_TRUE(unit != nullptr);
    auto *stmt = static_cast<ExprStmt *>(
        unit->findFunction("main")->body->stmts[1].get());
    auto *assign = static_cast<AssignExpr *>(stmt->expr.get());
    EXPECT_EQ(assign->rhs->kind(), NodeKind::Cast);
}

TEST(Sema, LocalArrayInitializerListRejected)
{
    parseFail(R"(
int main(void) {
    int a[3] = {1, 2, 3};
    return a[0];
}
)");
}

TEST(Sema, LocalStringInitializerRejected)
{
    parseFail(R"(
int main(void) {
    char s[8] = "hi";
    return s[0];
}
)");
}

TEST(Sema, BreakOutsideLoopRejected)
{
    // The expander would otherwise hit an internal assert on a
    // loopless break; Sema must reject it with a positioned error.
    parseFail(R"(
int main(void) {
    break;
    return 0;
}
)");
}

TEST(Sema, ContinueOutsideLoopRejected)
{
    parseFail(R"(
int main(void) {
    if (1)
        continue;
    return 0;
}
)");
}

TEST(Sema, BreakAndContinueInsideLoopsAccepted)
{
    parseOk(R"(
int main(void) {
    int i; int n;
    n = 0;
    for (i = 0; i < 10; i = i + 1) {
        if (i == 3)
            continue;
        while (n < 100) {
            n = n + i;
            if (n > 50)
                break;
        }
        if (i == 7)
            break;
    }
    return n;
}
)");
}

TEST(Sema, ConstDivisionByZeroRejected)
{
    parseFail(R"(
int g = 1 / 0;
int main(void) { return g; }
)");
}

TEST(Sema, ConstRemainderByZeroRejected)
{
    parseFail(R"(
int g = 7 % 0;
int main(void) { return g; }
)");
}

TEST(Sema, ConstZeroDivisorThroughFoldingRejected)
{
    // The divisor is constant zero only after folding (3 - 3) and a
    // float-to-int cast; the checker evaluates, not pattern-matches.
    parseFail(R"(
int g = 10 / (3 - 3);
int main(void) { return g; }
)");
    parseFail(R"(
int g = 10 / (int)0.5;
int main(void) { return g; }
)");
}

TEST(Sema, ConstFoldedInitializersAccepted)
{
    // Valid constant arithmetic — including %, comparisons, and
    // logical operators — must still be accepted and expanded.
    parseOk(R"(
int g = 7 % 2;
int h = (1 < 2) && (3 > 1);
int k = -6 / 3;
int m = 10 / (5 - 3);
double d = 1.0 / 4.0;
int main(void) { return g + h + k + m; }
)");
}
