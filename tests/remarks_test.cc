/**
 * @file
 * Tests for the optimization-remarks subsystem: exact reason codes for
 * each streaming/recurrence rejection path, applied remarks with
 * correct source locations, the loop-id registry, the JSON
 * serialization, and the remark/cycle join invariant (per-loop cycle
 * buckets sum exactly to total simulated cycles).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "driver/compiler.h"
#include "obs/json_parse.h"
#include "obs/remarks.h"
#include "wmsim/sim.h"

using namespace wmstream;

namespace {

driver::CompileResult
compile(const std::string &src, driver::CompileOptions opts = {})
{
    auto cr = driver::compileSource(src, opts);
    EXPECT_TRUE(cr.ok) << cr.diagnostics;
    return cr;
}

/** 1-based line of the first occurrence of @p needle in @p src. */
int
lineOf(const std::string &src, const std::string &needle)
{
    size_t pos = src.find(needle);
    EXPECT_NE(pos, std::string::npos) << needle;
    if (pos == std::string::npos)
        return -1;
    return 1 + static_cast<int>(
                   std::count(src.begin(),
                              src.begin() + static_cast<long>(pos), '\n'));
}

const obs::RemarkArg *
findArg(const obs::Remark &r, const std::string &name)
{
    for (const auto &a : r.args)
        if (a.name == name)
            return &a;
    return nullptr;
}

} // namespace

TEST(Remarks, TripCountTooSmall)
{
    const std::string src = R"(
double a[3];
double b[3];
int main(void) {
    int i;
    for (i = 0; i < 3; i++)
        b[i] = a[i];
    return b[0];
}
)";
    auto cr = compile(src);
    auto missed = cr.remarks.byReason("trip-count-too-small");
    ASSERT_EQ(missed.size(), 1u);
    const obs::Remark &r = *missed[0];
    EXPECT_EQ(r.pass, "streaming");
    EXPECT_EQ(r.verdict, obs::RemarkVerdict::Missed);
    EXPECT_EQ(r.function, "main");
    EXPECT_EQ(r.loc.line, lineOf(src, "for (i"));
    ASSERT_NE(findArg(r, "trip_count"), nullptr);
    EXPECT_EQ(findArg(r, "trip_count")->value, "3");
    ASSERT_NE(findArg(r, "min_trip_count"), nullptr);
    EXPECT_EQ(findArg(r, "min_trip_count")->value, "4");
    EXPECT_GE(r.loopId, 0);
    ASSERT_NE(cr.remarks.findLoop(r.loopId), nullptr);

    // The loop did not stream.
    EXPECT_EQ(cr.remarks.byReason("loop-streamed").size(), 0u);
}

TEST(Remarks, MemoryRecurrenceRemains)
{
    // With the recurrence optimizer disabled the a[i-1]/a[i] chain
    // stays in memory, so streaming must refuse the whole loop.
    const std::string src = R"(
int n = 100;
double a[100];
double b[100];
int main(void) {
    int i;
    for (i = 1; i < n; i++)
        a[i] = a[i - 1] + b[i];
    return a[99];
}
)";
    driver::CompileOptions opts;
    opts.recurrence = false;
    auto cr = compile(src, opts);
    auto missed = cr.remarks.byReason("memory-recurrence-remains");
    ASSERT_GE(missed.size(), 1u);
    EXPECT_EQ(missed[0]->pass, "streaming");
    EXPECT_EQ(missed[0]->verdict, obs::RemarkVerdict::Missed);
    EXPECT_EQ(missed[0]->loc.line, lineOf(src, "a[i] ="));
    ASSERT_NE(findArg(*missed[0], "partition"), nullptr);
    EXPECT_EQ(findArg(*missed[0], "partition")->value, "_a");
    // Only the recurrence partition is excluded — the independent b[i]
    // load still streams, but nothing from a[] does (no out-streams).
    for (const obs::Remark *r : cr.remarks.byReason("loop-streamed")) {
        ASSERT_NE(findArg(*r, "streams_out"), nullptr);
        EXPECT_EQ(findArg(*r, "streams_out")->value, "0");
    }
}

TEST(Remarks, RecurrenceOptimizedAndThenStreamed)
{
    // Same kernel with the recurrence optimizer on: the chain moves
    // into registers (applied recurrence remark) and the remaining
    // b[i] load plus the a[] store stream (applied streaming remark).
    const std::string src = R"(
int n = 100;
double a[100];
double b[100];
int main(void) {
    int i;
    for (i = 1; i < n; i++)
        a[i] = a[i - 1] + b[i];
    return a[99];
}
)";
    auto cr = compile(src);
    auto rec = cr.remarks.byReason("recurrence-optimized");
    ASSERT_GE(rec.size(), 1u);
    EXPECT_EQ(rec[0]->pass, "recurrence");
    EXPECT_EQ(rec[0]->verdict, obs::RemarkVerdict::Applied);
    EXPECT_EQ(rec[0]->loc.line, lineOf(src, "a[i] ="));
    ASSERT_NE(findArg(*rec[0], "degree"), nullptr);
    EXPECT_EQ(findArg(*rec[0], "degree")->value, "1");

    auto streamed = cr.remarks.byReason("loop-streamed");
    ASSERT_GE(streamed.size(), 1u);
    // Both passes talk about the same registry loop id.
    EXPECT_EQ(rec[0]->loopId, streamed[0]->loopId);
}

TEST(Remarks, NotEveryIteration)
{
    // The guarded store does not execute every iteration, so it cannot
    // become a stream (the SCU would run ahead of the guard).
    const std::string src = R"(
int n = 100;
int a[100];
int main(void) {
    int i;
    for (i = 0; i < n; i++)
        if (i & 1)
            a[i] = i;
    return a[99];
}
)";
    auto cr = compile(src);
    auto missed = cr.remarks.byReason("not-every-iteration");
    ASSERT_GE(missed.size(), 1u);
    EXPECT_EQ(missed[0]->pass, "streaming");
    EXPECT_EQ(missed[0]->verdict, obs::RemarkVerdict::Missed);
}

TEST(Remarks, NoFifoAvailable)
{
    // Three integer input streams compete for the two integer input
    // FIFOs; one candidate must be dropped with no-fifo-available.
    const std::string src = R"(
int n = 100;
int a[100];
int b[100];
int c[100];
int main(void) {
    int i;
    int s;
    s = 0;
    for (i = 0; i < n; i++)
        s = s + a[i] + b[i] + c[i];
    return s;
}
)";
    auto cr = compile(src);
    auto missed = cr.remarks.byReason("no-fifo-available");
    // Two references lose out: one at allocation (only two input FIFOs
    // per side) and one more to the conservative fifo-0 eviction — the
    // leftover scalar load needs FIFO 0 for its own reply data.
    ASSERT_GE(missed.size(), 2u);
    for (const obs::Remark *r : missed) {
        EXPECT_EQ(r->pass, "streaming");
        EXPECT_EQ(r->verdict, obs::RemarkVerdict::Missed);
        ASSERT_NE(findArg(*r, "side"), nullptr);
        EXPECT_EQ(findArg(*r, "side")->value, "int");
        ASSERT_NE(findArg(*r, "direction"), nullptr);
        EXPECT_EQ(findArg(*r, "direction")->value, "in");
    }
    // The surviving candidate still streams (on FIFO 1).
    auto applied = cr.remarks.byReason("streamed");
    ASSERT_GE(applied.size(), 1u);
}

TEST(Remarks, AppliedStreamedCarriesLocation)
{
    const std::string src = R"(
int n = 100;
double a[100];
double b[100];
double c[100];
int main(void) {
    int i;
    for (i = 0; i < n; i++)
        c[i] = a[i] + b[i];
    return c[99];
}
)";
    auto cr = compile(src);
    auto applied = cr.remarks.byReason("streamed");
    ASSERT_GE(applied.size(), 3u); // a in, b in, c out
    int bodyLine = lineOf(src, "c[i] =");
    for (const obs::Remark *r : applied) {
        EXPECT_EQ(r->pass, "streaming");
        EXPECT_EQ(r->verdict, obs::RemarkVerdict::Applied);
        EXPECT_EQ(r->loc.line, bodyLine);
        EXPECT_NE(findArg(*r, "fifo"), nullptr);
        EXPECT_NE(findArg(*r, "stride"), nullptr);
    }
    auto loop = cr.remarks.byReason("loop-streamed");
    ASSERT_EQ(loop.size(), 1u);
    EXPECT_EQ(loop[0]->loc.line, lineOf(src, "for (i"));
    ASSERT_NE(findArg(*loop[0], "streams_in"), nullptr);
    EXPECT_EQ(findArg(*loop[0], "streams_in")->value, "2");
    ASSERT_NE(findArg(*loop[0], "streams_out"), nullptr);
    EXPECT_EQ(findArg(*loop[0], "streams_out")->value, "1");
}

TEST(Remarks, JsonSerializationJoinsWithRegistry)
{
    const std::string src = R"(
double a[3];
int main(void) {
    int i;
    for (i = 0; i < 3; i++)
        a[i] = i;
    return a[2];
}
)";
    auto cr = compile(src);
    obs::JsonWriter w;
    cr.remarks.writeJson(w, "t.c");
    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::parseJson(w.str(), doc, err)) << err;
    EXPECT_EQ(doc.getInt("schema_version"), 1);
    EXPECT_EQ(doc.getStr("file"), "t.c");

    const obs::JsonValue *loops = doc.get("loops");
    ASSERT_NE(loops, nullptr);
    ASSERT_TRUE(loops->isArray());
    ASSERT_GE(loops->arr.size(), 1u);
    const obs::JsonValue *remarks = doc.get("remarks");
    ASSERT_NE(remarks, nullptr);
    ASSERT_TRUE(remarks->isArray());
    ASSERT_GE(remarks->arr.size(), 1u);

    // Every remark's loop id resolves in the loops table (or is -1).
    for (const obs::JsonValue &r : remarks->arr) {
        int64_t id = r.getInt("loop", -1);
        if (id < 0)
            continue;
        bool found = false;
        for (const obs::JsonValue &l : loops->arr)
            found = found || l.getInt("id", -2) == id;
        EXPECT_TRUE(found) << "remark references unknown loop " << id;
    }
}

TEST(Remarks, LoopCyclesSumToTotal)
{
    // The attribution invariant behind wmreport: every simulated cycle
    // lands in exactly one loop bucket, so the buckets sum to the
    // total (and the streamed loop's id appears among them).
    const std::string src = R"(
int n = 50;
double a[50];
double b[50];
double c[50];
int main(void) {
    int i;
    int j;
    for (j = 0; j < n; j++) {
        a[j] = 1.0 + j;
        b[j] = 2.0 + j;
    }
    for (i = 0; i < n; i++)
        c[i] = a[i] + b[i];
    return c[49];
}
)";
    auto cr = compile(src);
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    uint64_t sum = 0;
    bool sawRealLoop = false;
    for (const auto &lb : res.stats.loops) {
        sum += lb.cycles;
        if (lb.loopId >= 0 && lb.cycles > 0)
            sawRealLoop = true;
        EXPECT_NE(cr.remarks.findLoop(lb.loopId) == nullptr,
                  lb.loopId >= 0)
            << "bucket loop id " << lb.loopId
            << " not in the remark registry";
    }
    EXPECT_EQ(sum, res.stats.cycles);
    EXPECT_TRUE(sawRealLoop);

    // Streamed-loop remarks reference ids that got cycle buckets.
    for (const obs::Remark *r : cr.remarks.byReason("loop-streamed")) {
        bool found = false;
        for (const auto &lb : res.stats.loops)
            found = found || lb.loopId == r->loopId;
        EXPECT_TRUE(found) << "no cycles attributed to streamed loop "
                           << r->loopId;
    }
}

TEST(Remarks, CollectorDeduplicatesAndUpgradesLoc)
{
    obs::RemarkCollector rc;
    int id = rc.loopId("main", "L1");
    EXPECT_EQ(rc.loopId("main", "L1"), id);
    EXPECT_FALSE(rc.findLoop(id)->loc.valid());
    // A later registration with a position upgrades the record.
    EXPECT_EQ(rc.loopId("main", "L1", {7, 3}), id);
    EXPECT_EQ(rc.findLoop(id)->loc.line, 7);
    // Different function, same header label: a different loop.
    EXPECT_NE(rc.loopId("f", "L1"), id);

    obs::Remark r;
    r.pass = "streaming";
    r.function = "main";
    r.loopId = id;
    r.reason = "zero-stride";
    r.arg("partition", "a");
    rc.add(r);
    rc.add(r); // exact duplicate: dropped
    EXPECT_EQ(rc.remarks().size(), 1u);
    r.arg("extra", static_cast<int64_t>(1));
    rc.add(r); // different args: kept
    EXPECT_EQ(rc.remarks().size(), 2u);
}
