/**
 * @file
 * Unit tests for the pooled-bitset dataflow framework (src/dataflow):
 * bitset primitives with tail masking, arena reuse across rounds,
 * gen/kill solver results checked against a brute-force reference on
 * hand-built CFGs, Intersect TOP semantics, convergence counts, and
 * the seeded general solver's edge filter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "dataflow/bitset.h"
#include "dataflow/cfg_index.h"
#include "dataflow/pool.h"
#include "dataflow/solver.h"
#include "rtl/machine.h"

using namespace wmstream;
using namespace wmstream::dataflow;
using namespace wmstream::rtl;

namespace {

ExprPtr
vint(int idx)
{
    return makeReg(RegFile::VInt, idx, DataType::I64);
}

ExprPtr
ccReg()
{
    return makeReg(RegFile::CC, 0, DataType::I64);
}

void
pushCc(Block *b)
{
    b->insts.push_back(makeAssign(ccReg(), makeConst(1)));
}

/** entry -> {left, right} -> join -> (return). */
Function
makeDiamond()
{
    Function fn("diamond");
    Block *entry = fn.addBlock("entry");
    Block *left = fn.addBlock("left");
    Block *right = fn.addBlock("right");
    Block *join = fn.addBlock("join");

    pushCc(entry);
    entry->insts.push_back(makeCondJump(UnitSide::Int, true, "right"));
    left->insts.push_back(makeJump("join"));
    right->insts.push_back(makeJump("join"));
    join->insts.push_back(makeReturn());
    fn.recomputeCfg();
    return fn;
}

/** entry -> header <-> latch, header -> exit (a natural loop). */
Function
makeLoop()
{
    Function fn("loop");
    Block *entry = fn.addBlock("entry");
    Block *header = fn.addBlock("header");
    Block *latch = fn.addBlock("latch");
    Block *exit = fn.addBlock("exit");

    entry->insts.push_back(makeJump("header"));
    pushCc(header);
    header->insts.push_back(makeCondJump(UnitSide::Int, true, "exit"));
    latch->insts.push_back(makeJump("header"));
    exit->insts.push_back(makeReturn());
    fn.recomputeCfg();
    return fn;
}

/**
 * Brute-force reference: iterate the gen/kill equations with no
 * worklist or ordering cleverness until nothing changes, on plain
 * std::set<int> states. Any disagreement with BitsetSolver is a
 * solver bug by definition.
 */
struct BruteResult
{
    std::vector<std::set<int>> in, out;
};

BruteResult
bruteForce(const CfgIndex &cfg,
           const std::vector<std::set<int>> &gen,
           const std::vector<std::set<int>> &kill, size_t bits,
           Direction dir, Join join)
{
    size_t n = cfg.size();
    BruteResult r;
    r.in.resize(n);
    r.out.resize(n);
    std::set<int> top;
    for (size_t i = 0; i < bits; ++i)
        top.insert(static_cast<int>(i));
    if (join == Join::Intersect) {
        for (size_t b = 0; b < n; ++b) {
            bool boundary = dir == Direction::Forward
                                ? cfg.preds(b).empty()
                                : cfg.succs(b).empty();
            if (!boundary)
                (dir == Direction::Forward ? r.in : r.out)[b] = top;
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = 0; b < n; ++b) {
            const auto &edges = dir == Direction::Forward
                                    ? cfg.preds(b)
                                    : cfg.succs(b);
            std::set<int> &joined =
                (dir == Direction::Forward ? r.in : r.out)[b];
            if (!edges.empty()) {
                std::set<int> acc;
                bool first = true;
                for (size_t e : edges) {
                    const std::set<int> &src =
                        (dir == Direction::Forward ? r.out : r.in)[e];
                    if (first) {
                        acc = src;
                        first = false;
                    } else if (join == Join::Union) {
                        acc.insert(src.begin(), src.end());
                    } else {
                        std::set<int> tmp;
                        std::set_intersection(
                            acc.begin(), acc.end(), src.begin(),
                            src.end(),
                            std::inserter(tmp, tmp.begin()));
                        acc = tmp;
                    }
                }
                if (acc != joined) {
                    joined = acc;
                    changed = true;
                }
            }
            std::set<int> res = gen[b];
            for (int v : joined)
                if (!kill[b].count(v))
                    res.insert(v);
            std::set<int> &result =
                (dir == Direction::Forward ? r.out : r.in)[b];
            if (res != result) {
                result = res;
                changed = true;
            }
        }
    }
    return r;
}

std::set<int>
bitsToSet(const BitsetWord *p, size_t bits)
{
    std::set<int> s;
    bitsetForEach(bitsetWords(bits), p, [&](size_t i) {
        s.insert(static_cast<int>(i));
    });
    return s;
}

/** Run BitsetSolver and the reference on the same problem; compare. */
void
expectParity(Function &fn, const std::vector<std::set<int>> &gen,
             const std::vector<std::set<int>> &kill, size_t bits,
             Direction dir, Join join)
{
    CfgIndex cfg(fn);
    ASSERT_EQ(gen.size(), cfg.size());
    BitsetPool pool;
    BitsetSolver solver(pool, cfg, bits, dir, join);
    for (size_t b = 0; b < cfg.size(); ++b) {
        for (int v : gen[b])
            bitsetSet(solver.gen(b), static_cast<size_t>(v));
        for (int v : kill[b])
            bitsetSet(solver.kill(b), static_cast<size_t>(v));
    }
    solver.solve();
    BruteResult ref = bruteForce(cfg, gen, kill, bits, dir, join);
    for (size_t b = 0; b < cfg.size(); ++b) {
        EXPECT_EQ(bitsToSet(solver.in(b), bits), ref.in[b])
            << "in() of block " << b;
        EXPECT_EQ(bitsToSet(solver.out(b), bits), ref.out[b])
            << "out() of block " << b;
    }
}

} // namespace

// ---- bitset primitives ----

TEST(Bitset, SetTestResetAcrossWordBoundary)
{
    const size_t bits = 130; // three words, partial tail
    std::vector<BitsetWord> v(bitsetWords(bits), 0);
    for (size_t i : {size_t{0}, size_t{63}, size_t{64}, size_t{129}})
        bitsetSet(v.data(), i);
    EXPECT_TRUE(bitsetTest(v.data(), 0));
    EXPECT_TRUE(bitsetTest(v.data(), 63));
    EXPECT_TRUE(bitsetTest(v.data(), 64));
    EXPECT_TRUE(bitsetTest(v.data(), 129));
    EXPECT_FALSE(bitsetTest(v.data(), 1));
    EXPECT_FALSE(bitsetTest(v.data(), 128));
    bitsetReset(v.data(), 64);
    EXPECT_FALSE(bitsetTest(v.data(), 64));
    EXPECT_EQ(bitsetCount(v.size(), v.data()), 3u);
}

TEST(Bitset, SetAllMasksTheTailWord)
{
    const size_t bits = 70;
    std::vector<BitsetWord> v(bitsetWords(bits), 0);
    bitsetSetAll(v.size(), v.data(), bits);
    EXPECT_EQ(bitsetCount(v.size(), v.data()), bits);
    // No bit beyond `bits` may be set, or Intersect TOP states would
    // compare unequal to genuinely-full states.
    EXPECT_FALSE(bitsetTest(v.data(), 70));
    EXPECT_FALSE(bitsetTest(v.data(), 127));
}

TEST(Bitset, OrAndAndNotReportChange)
{
    const size_t bits = 100;
    size_t words = bitsetWords(bits);
    std::vector<BitsetWord> a(words, 0), b(words, 0);
    bitsetSet(a.data(), 3);
    bitsetSet(b.data(), 3);
    bitsetSet(b.data(), 99);
    EXPECT_TRUE(bitsetOr(words, a.data(), b.data()));  // gains 99
    EXPECT_FALSE(bitsetOr(words, a.data(), b.data())); // fixpoint
    EXPECT_TRUE(bitsetEqual(words, a.data(), b.data()));
    bitsetSet(a.data(), 50);
    EXPECT_TRUE(bitsetAnd(words, a.data(), b.data())); // drops 50
    EXPECT_FALSE(bitsetAnd(words, a.data(), b.data()));
    bitsetAndNot(words, a.data(), b.data());
    EXPECT_EQ(bitsetCount(words, a.data()), 0u);
}

TEST(Bitset, ForEachVisitsExactlyTheSetBits)
{
    const size_t bits = 200;
    std::vector<BitsetWord> v(bitsetWords(bits), 0);
    std::set<size_t> expect{0, 1, 63, 64, 65, 127, 128, 199};
    for (size_t i : expect)
        bitsetSet(v.data(), i);
    std::set<size_t> got;
    bitsetForEach(v.size(), v.data(),
                  [&](size_t i) { got.insert(i); });
    EXPECT_EQ(got, expect);
}

// ---- arena pool ----

TEST(BitsetPool, AllocZeroesAndClearRetainsSlabs)
{
    BitsetPool pool;
    BitsetWord *p = pool.alloc(8);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(p[i], 0u);
    p[0] = ~BitsetWord{0};
    pool.clear();
    // Same arena, rewound: the next alloc re-zeroes the words.
    BitsetWord *q = pool.alloc(8);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(q[i], 0u);
}

TEST(BitsetPool, SteadyStateRoundsAllocateNoNewChunks)
{
    BitsetPool pool;
    // Warm-up round sizes the arena.
    for (int i = 0; i < 100; ++i)
        pool.alloc(32);
    size_t warm = pool.chunkCount();
    ASSERT_GT(warm, 0u);
    // Ten steady-state rounds of the same shape: chunk count must
    // not grow — this is the no-allocation-per-pass property the
    // framework exists for.
    for (int round = 0; round < 10; ++round) {
        pool.clear();
        for (int i = 0; i < 100; ++i)
            pool.alloc(32);
        EXPECT_EQ(pool.chunkCount(), warm) << "round " << round;
    }
    EXPECT_EQ(pool.allocCount(), 100u * 11u);
}

// ---- CfgIndex ----

TEST(CfgIndex, DiamondOrdersAndEdges)
{
    Function fn = makeDiamond();
    CfgIndex cfg(fn);
    ASSERT_EQ(cfg.size(), 4u);
    size_t entry = cfg.indexOf(fn.findBlock("entry"));
    size_t join = cfg.indexOf(fn.findBlock("join"));
    EXPECT_EQ(cfg.succs(entry).size(), 2u);
    EXPECT_EQ(cfg.preds(join).size(), 2u);
    // RPO starts at the entry; post-order ends there.
    EXPECT_EQ(cfg.rpo().front(), entry);
    EXPECT_EQ(cfg.postOrder().back(), entry);
    // Both orders are permutations of all blocks.
    std::set<size_t> rpo(cfg.rpo().begin(), cfg.rpo().end());
    EXPECT_EQ(rpo.size(), cfg.size());
}

// ---- gen/kill solver vs brute force ----

TEST(Solver, ForwardUnionParityOnDiamond)
{
    Function fn = makeDiamond();
    // "Reaching definitions" shape: defs 0,1 in entry; left kills 0
    // and gens 2; right kills 1 and gens 3.
    std::vector<std::set<int>> gen{{0, 1}, {2}, {3}, {}};
    std::vector<std::set<int>> kill{{}, {0}, {1}, {}};
    expectParity(fn, gen, kill, 5, Direction::Forward, Join::Union);
}

TEST(Solver, BackwardUnionParityOnLoop)
{
    Function fn = makeLoop();
    // "Liveness" shape: uses in the latch keep a bit live around the
    // back edge; the exit uses another.
    std::vector<std::set<int>> gen{{}, {0}, {1}, {2}};
    std::vector<std::set<int>> kill{{1}, {}, {0}, {}};
    expectParity(fn, gen, kill, 3, Direction::Backward, Join::Union);
}

TEST(Solver, ForwardIntersectParityOnDiamond)
{
    Function fn = makeDiamond();
    // "Available copies" shape: only facts valid on BOTH arms
    // survive the join.
    std::vector<std::set<int>> gen{{0, 1}, {2}, {2, 3}, {}};
    std::vector<std::set<int>> kill{{}, {1}, {}, {}};
    expectParity(fn, gen, kill, 4, Direction::Forward,
                 Join::Intersect);
}

TEST(Solver, ForwardIntersectParityOnLoop)
{
    Function fn = makeLoop();
    std::vector<std::set<int>> gen{{0}, {}, {1}, {}};
    std::vector<std::set<int>> kill{{}, {}, {0}, {}};
    expectParity(fn, gen, kill, 2, Direction::Forward,
                 Join::Intersect);
}

TEST(Solver, IntersectInteriorStartsAtTopNotEmpty)
{
    // A fact generated in the entry must flow through the diamond's
    // join: if interior blocks started empty (instead of TOP), the
    // first visit of `join` before both arms settled would lower it
    // to the empty set forever.
    Function fn = makeDiamond();
    CfgIndex cfg(fn);
    BitsetPool pool;
    BitsetSolver solver(pool, cfg, 1, Direction::Forward,
                        Join::Intersect);
    bitsetSet(solver.gen(cfg.indexOf(fn.findBlock("entry"))), 0);
    solver.solve();
    EXPECT_TRUE(bitsetTest(
        solver.in(cfg.indexOf(fn.findBlock("join"))), 0));
}

TEST(Solver, AcyclicForwardConvergesInTwoSweeps)
{
    // RPO scheduling settles an acyclic forward problem in one
    // working sweep plus one no-change sweep; a loop needs one more
    // to carry facts around the back edge.
    Function diamond = makeDiamond();
    CfgIndex cfg(diamond);
    BitsetPool pool;
    BitsetSolver solver(pool, cfg, 4, Direction::Forward, Join::Union);
    bitsetSet(solver.gen(cfg.rpo().front()), 0);
    EXPECT_EQ(solver.solve(), 2u);
    EXPECT_EQ(solver.iterations(), 2u);

    Function loop = makeLoop();
    CfgIndex lcfg(loop);
    BitsetPool lpool;
    BitsetSolver lsolver(lpool, lcfg, 4, Direction::Backward,
                         Join::Union);
    bitsetSet(lsolver.gen(lcfg.indexOf(loop.findBlock("latch"))), 0);
    EXPECT_LE(lsolver.solve(), 3u);
}

// ---- general solver ----

TEST(SolverGeneral, SeededForwardCountsPathsAndFiltersEdges)
{
    Function fn = makeDiamond();
    CfgIndex cfg(fn);
    size_t entry = cfg.indexOf(fn.findBlock("entry"));
    size_t right = cfg.indexOf(fn.findBlock("right"));
    size_t join = cfg.indexOf(fn.findBlock("join"));

    // State = max block-count along any path; join keeps the max.
    auto transfer = [](size_t, int depth) { return depth + 1; };
    auto joinFn = [](int &accum, const int &incoming, size_t) {
        if (incoming > accum) {
            accum = incoming;
            return true;
        }
        return false;
    };
    std::vector<std::pair<size_t, int>> seeds{{entry, 0}};

    auto all = solveGeneralSeeded(
        cfg, Direction::Forward, seeds, transfer, joinFn,
        [](size_t, size_t) { return true; });
    ASSERT_TRUE(all.reached[join]);
    EXPECT_EQ(all.in[join], 2); // entry + one arm

    // Prune every edge into `right`: it must stay unreached (TOP),
    // and the join only sees the left arm.
    auto pruned = solveGeneralSeeded(
        cfg, Direction::Forward, seeds, transfer, joinFn,
        [&](size_t, size_t to) { return to != right; });
    EXPECT_FALSE(pruned.reached[right]);
    ASSERT_TRUE(pruned.reached[join]);
    EXPECT_EQ(pruned.in[join], 2);
}

TEST(SolverGeneral, JoinReceivesTheTargetBlockIndex)
{
    Function fn = makeDiamond();
    CfgIndex cfg(fn);
    size_t entry = cfg.indexOf(fn.findBlock("entry"));
    size_t join = cfg.indexOf(fn.findBlock("join"));
    std::set<size_t> joinedAt;
    auto res = solveGeneralSeeded(
        cfg, Direction::Forward,
        std::vector<std::pair<size_t, int>>{{entry, 0}},
        [](size_t, int s) { return s; },
        [&](int &, const int &, size_t b) {
            joinedAt.insert(b);
            return false;
        },
        [](size_t, size_t) { return true; });
    ASSERT_TRUE(res.reached[join]);
    // Every reached block re-offers its out along each sweep, so the
    // join closure fires at any block with an incoming offer — which
    // is everything except the seed: the entry has no predecessors
    // and must never appear as a join target.
    EXPECT_TRUE(joinedAt.count(join));
    EXPECT_FALSE(joinedAt.count(entry));
}
