/**
 * @file
 * Tests for the streaming optimization algorithm (paper, second
 * algorithm): trip-count thresholds, FIFO budgeting, infinite streams,
 * loop-test replacement, and dead induction variable deletion.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "programs/programs.h"
#include "wmsim/sim.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

driver::CompileResult
compile(const std::string &src, int minTrip = 4)
{
    driver::CompileOptions opts;
    opts.minStreamTripCount = minTrip;
    auto cr = driver::compileSource(src, opts);
    EXPECT_TRUE(cr.ok) << cr.diagnostics;
    return cr;
}

int
totalOf(const driver::CompileResult &cr,
        int streaming::StreamingReport::*field)
{
    int n = 0;
    for (const auto &r : cr.streamingReports)
        n += r.*field;
    return n;
}

int
countKind(const Function &fn, InstKind kind)
{
    int n = 0;
    for (const auto &b : fn.blocks())
        for (const Inst &inst : b->insts)
            if (inst.kind == kind)
                ++n;
    return n;
}

} // namespace

TEST(Streaming, Livermore5GetsThreeStreamsAndJumpStream)
{
    auto cr = compile(programs::livermore5Source(64));
    // main loop: z in, y in, x out; init loop: out-streams;
    // checksum loop: x in.
    EXPECT_GE(totalOf(cr, &streaming::StreamingReport::streamsIn), 3);
    EXPECT_GE(totalOf(cr, &streaming::StreamingReport::streamsOut), 2);
    EXPECT_GE(totalOf(cr, &streaming::StreamingReport::loopTestsReplaced),
              2);
    EXPECT_GE(totalOf(cr,
                      &streaming::StreamingReport::inductionVarsDeleted),
              1);
    Function *fn = cr.program->findFunction("main");
    EXPECT_GE(countKind(*fn, InstKind::StreamIn), 3);
    EXPECT_GE(countKind(*fn, InstKind::StreamOut), 2);
    EXPECT_GE(countKind(*fn, InstKind::JumpStream), 2);
}

TEST(Streaming, MainLoopBodyIsThreeInstructions)
{
    // The paper's Figure 7 punchline: the streamed LL5 loop is
    // compute + enqueue + jump (no address computations in the loop).
    auto cr = compile(programs::livermore5Source(64));
    Function *fn = cr.program->findFunction("main");
    bool found = false;
    for (const auto &b : fn->blocks()) {
        if (b->insts.empty() ||
                b->insts.back().kind != InstKind::JumpStream)
            continue;
        if (b->insts.back().target != b->label())
            continue; // only self-loops
        // find the FP compute loop (reads two FIFOs)
        bool fp = false;
        for (const Inst &inst : b->insts)
            if (inst.kind == InstKind::Assign &&
                    inst.dst->regFile() == RegFile::Flt)
                fp = true;
        if (fp && b->insts.size() <= 3u)
            found = true;
    }
    EXPECT_TRUE(found) << "no three-instruction streamed FP loop";
}

TEST(Streaming, TripCountThresholdSuppressesTinyLoops)
{
    const char *src = R"(
double a[3];
double b[3];
int main(void) {
    int i;
    for (i = 0; i < 3; i++)
        b[i] = a[i];
    return b[0];
}
)";
    auto cr = compile(src, /*minTrip=*/4);
    EXPECT_EQ(totalOf(cr, &streaming::StreamingReport::streamsIn), 0);
    EXPECT_EQ(totalOf(cr, &streaming::StreamingReport::streamsOut), 0);

    // With the threshold lowered the same loop streams.
    auto forced = compile(src, /*minTrip=*/0);
    EXPECT_GT(totalOf(forced, &streaming::StreamingReport::streamsIn) +
                  totalOf(forced,
                          &streaming::StreamingReport::streamsOut),
              0);
}

TEST(Streaming, CallInLoopPreventsStreaming)
{
    const char *src = R"(
int n = 32;
int a[32];
int f(int x) { return x + 1; }
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < n; i++)
        s = s + f(a[i]);
    return s;
}
)";
    auto cr = compile(src);
    // The callee shares the data FIFOs: the a[i] load must not stream.
    EXPECT_EQ(totalOf(cr, &streaming::StreamingReport::streamsIn), 0);
}

TEST(Streaming, ConditionalReferenceDoesNotStream)
{
    const char *src = R"(
int n = 32;
int a[32];
int b[32];
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < n; i++) {
        if (i & 1)
            s = s + b[i];   /* conditional: not every iteration */
        a[i] = s;           /* unconditional: streams */
    }
    return s;
}
)";
    auto cr = compile(src);
    EXPECT_EQ(totalOf(cr, &streaming::StreamingReport::streamsIn), 0);
    EXPECT_GE(totalOf(cr, &streaming::StreamingReport::streamsOut), 1);
}

TEST(Streaming, UnknownTripCountUsesInfiniteStreamsWithStops)
{
    // A data-dependent while loop: the paper's "infinite streams" with
    // stream-stop instructions at the loop exits.
    const char *src = R"(
char s1[16] = "hello world";
char s2[16];
int main(void) {
    char *s, *d;
    s = s1;
    d = s2;
    while (*s) {
        *d = *s;
        d = d + 1;
        s = s + 1;
    }
    *d = 0;
    return s2[4];
}
)";
    auto cr = compile(src);
    EXPECT_GT(totalOf(cr, &streaming::StreamingReport::infiniteStreams),
              0);
    Function *fn = cr.program->findFunction("main");
    EXPECT_GT(countKind(*fn, InstKind::StreamStop), 0);
    // and it must run correctly
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, 'o');
}

TEST(Streaming, RemainingRecurrenceBlocksStreams)
{
    // Disable the recurrence pass: x keeps its loop-carried read/write
    // pair, so the x partition must not stream (paper Step 2a), while
    // y and z still stream in.
    driver::CompileOptions opts;
    opts.recurrence = false;
    auto cr = driver::compileSource(programs::livermore5Source(64), opts);
    ASSERT_TRUE(cr.ok);
    Function *fn = cr.program->findFunction("main");
    // x writes must remain scalar stores in the kernel loop: find a
    // Store in a block ending with JumpStream (mixed loop).
    bool mixedLoop = false;
    for (const auto &b : fn->blocks()) {
        bool hasStore = false, hasJumpStream = false;
        for (const Inst &inst : b->insts) {
            if (inst.kind == InstKind::Store)
                hasStore = true;
            if (inst.kind == InstKind::JumpStream)
                hasJumpStream = true;
        }
        if (hasStore && hasJumpStream)
            mixedLoop = true;
    }
    EXPECT_TRUE(mixedLoop);
    // still correct
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
}

TEST(Streaming, FifoBudgetLimitsStreams)
{
    // Four candidate input streams on the float side but only two
    // input FIFOs: at most two may stream.
    const char *src = R"(
int n = 32;
double a[32];
double b[32];
double c[32];
double d[32];
double o[32];
int main(void) {
    int i;
    double s;
    for (i = 0; i < n; i++)
        o[i] = a[i] + b[i] + c[i] + d[i];
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + o[i];
    return s;
}
)";
    auto cr = compile(src);
    // count StreamIn instructions inside main's kernel loop region
    Function *fn = cr.program->findFunction("main");
    int ins = countKind(*fn, InstKind::StreamIn);
    // kernel can have at most 2 float in-streams; checksum adds 1 more
    EXPECT_LE(ins, 3);
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
}

TEST(Streaming, ReportsNoteLoopsExamined)
{
    auto cr = compile(programs::livermore5Source(64));
    int loops = 0;
    for (const auto &r : cr.streamingReports)
        loops += r.loopsExamined;
    EXPECT_GE(loops, 3); // init, kernel, checksum
}

TEST(Streaming, OverlappingWritesDoNotStream)
{
    // Two writes to the same array whose cells coincide across
    // iterations (a[i] and a[i+1]): streaming both would race two
    // output streams on the shared cells, so neither may stream.
    const char *src = R"(
int n = 32;
int a[40];
int b[40];
int main(void) {
    int i, s;
    for (i = 0; i < n; i++) {
        a[i] = i;
        a[i + 1] = i * 2;
        b[i] = i;          /* control: this one may stream */
    }
    s = 0;
    for (i = 0; i < n; i++)
        s = s + a[i] + b[i];
    return s & 65535;
}
)";
    auto cr = compile(src);
    // Verify correctness end-to-end and that the kernel loop still
    // contains scalar stores (the a-partition writes).
    Function *fn = cr.program->findFunction("main");
    bool scalarStoreInStreamLoop = false;
    for (const auto &b : fn->blocks()) {
        bool hasStore = false, hasJs = false;
        for (const Inst &inst : b->insts) {
            if (inst.kind == InstKind::Store)
                hasStore = true;
            if (inst.kind == InstKind::JumpStream)
                hasJs = true;
        }
        if (hasStore && hasJs)
            scalarStoreInStreamLoop = true;
    }
    EXPECT_TRUE(scalarStoreInStreamLoop);
    auto res = wmsim::simulate(*cr.program);
    ASSERT_TRUE(res.ok) << res.error;
}
