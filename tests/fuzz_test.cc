/**
 * @file
 * Tests for the differential-fuzzing campaign subsystem (src/fuzz):
 * generator determinism, divergence signatures, delta-debugging
 * minimization, and whole-campaign reproducibility — including the
 * self-test that a deliberately injected miscompile (the hidden
 * recurrence same-cell legality bypass) is caught, deduplicated, and
 * minimized down to a golden-size reproducer.
 */

#include <gtest/gtest.h>

#include "fuzz/campaign.h"
#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "support/rng.h"

using namespace wmstream;
using namespace wmstream::fuzz;

namespace {

/** The configuration under which the injected recurrence bug bites. */
FuzzConfig
injectedRecConfig()
{
    FuzzConfig cfg;
    cfg.key = "wm/rec";
    cfg.opts.target = rtl::MachineKind::WM;
    cfg.opts.recurrence = true;
    cfg.opts.streaming = false;
    cfg.opts.injectRecurrenceDistanceBug = true;
    return cfg;
}

/**
 * A known-bad spec for the injected bug: a same-cell read+write pair
 * (distance 0) that the recurrence pass must not rewrite, plus noise
 * statements for the minimizer to strip.
 */
ProgramSpec
handSeededBadSpec()
{
    ProgramSpec spec;
    spec.arraySize = 48;
    spec.countUp = false; // minimizer should flip this
    // Noise must not touch B: a second reference to the recurrence
    // array would merge the partitions and (correctly) block the
    // rewrite even with the legality check bypassed.
    StmtSpec noise;
    noise.dst = 2;
    noise.src1 = 0;
    noise.off1 = 3;
    noise.src2 = 0;
    noise.off2 = -2;
    spec.stmts.push_back(noise);
    StmtSpec bad; // B[i+1] = B[i+1] + B[i+1]: same-cell pair
    bad.dst = 1;
    bad.dstOff = 1;
    bad.src1 = 1;
    bad.off1 = 1;
    bad.src2 = 1;
    bad.off2 = 1;
    bad.accumulate = true;
    spec.stmts.push_back(bad);
    return spec;
}

} // namespace

TEST(Generator, DeterministicFromSeed)
{
    support::Rng a(7), b(7), c(8);
    ProgramSpec sa = generateSpec(a);
    ProgramSpec sb = generateSpec(b);
    ProgramSpec sc = generateSpec(c);
    EXPECT_EQ(renderProgram(sa), renderProgram(sb));
    EXPECT_NE(renderProgram(sa), renderProgram(sc));
}

TEST(Generator, SplitStreamsAreOrderIndependent)
{
    // Children derived from one root are a pure function of
    // (seed, streamId): splitting in any order gives the same spec.
    support::Rng root(42);
    std::string forward[4], backward[4];
    for (int i = 0; i < 4; ++i) {
        support::Rng child = root.split(static_cast<uint64_t>(i));
        forward[i] = renderProgram(generateSpec(child));
    }
    for (int i = 3; i >= 0; --i) {
        support::Rng child = root.split(static_cast<uint64_t>(i));
        backward[i] = renderProgram(generateSpec(child));
    }
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(forward[i], backward[i]) << "stream " << i;
    EXPECT_NE(forward[0], forward[1]); // distinct streams differ
}

TEST(Generator, RendersOnlyUsedArrays)
{
    ProgramSpec spec;
    spec.stmts.push_back(StmtSpec{}); // A[i] = A[i] + A[i]
    std::string src = renderProgram(spec);
    EXPECT_NE(src.find("int A["), std::string::npos);
    EXPECT_EQ(src.find("int B["), std::string::npos);
    EXPECT_EQ(src.find("int C["), std::string::npos);
}

TEST(Generator, SpecsStayInBounds)
{
    support::Rng rng(123);
    for (int i = 0; i < 200; ++i) {
        ProgramSpec spec = generateSpec(rng);
        ASSERT_GE(spec.arraySize, kMinArraySize);
        ASSERT_FALSE(spec.stmts.empty());
        for (const StmtSpec &s : spec.stmts) {
            EXPECT_GE(s.dstOff, -2);
            EXPECT_LE(s.dstOff, 2);
            EXPECT_GE(s.off1, -4);
            EXPECT_LE(s.off1, 4);
            EXPECT_GE(s.off2, -4);
            EXPECT_LE(s.off2, 4);
            EXPECT_GE(s.dst, 0);
            EXPECT_LT(s.dst, kNumArrays);
        }
    }
}

TEST(Signature, KeysOnStructuralFeatures)
{
    FuzzConfig cfg = injectedRecConfig();
    CheckOutcome out;
    out.diverged = true;
    out.kind = DivergenceKind::Mismatch;

    ProgramSpec sameCell;
    sameCell.stmts.push_back(StmtSpec{}); // dst==src, distance 0
    std::string sig = divergenceSignature(sameCell, cfg, out);
    EXPECT_NE(sig.find("wm/rec"), std::string::npos);
    EXPECT_NE(sig.find("mismatch"), std::string::npos);
    EXPECT_NE(sig.find("cell0"), std::string::npos);

    ProgramSpec carried; // A[i] = A[i-1] + B[i]: carried distance 1
    StmtSpec s;
    s.off1 = -1;
    s.src2 = 1;
    carried.stmts.push_back(s);
    std::string sig2 = divergenceSignature(carried, cfg, out);
    EXPECT_EQ(sig2.find("cell0"), std::string::npos);
    EXPECT_NE(sig2.find("carry"), std::string::npos);
    EXPECT_NE(sig, sig2);
}

TEST(Minimizer, InjectedBugConvergesToGoldenSize)
{
    // The acceptance bar from the campaign design: a hand-seeded
    // same-cell miscompile must minimize to a reproducer no larger
    // than the golden form (single statement, single array, smallest
    // legal arrays — 14 non-blank source lines) and still diverge.
    FuzzConfig cfg = injectedRecConfig();
    ProgramSpec bad = handSeededBadSpec();
    CheckOutcome before = checkSpec(bad, cfg);
    ASSERT_TRUE(before.diverged) << "seed spec must diverge";
    ASSERT_EQ(before.kind, DivergenceKind::Mismatch);

    auto predicate = [&](const ProgramSpec &cand) {
        CheckOutcome out = checkSpec(cand, cfg);
        return out.diverged && out.kind == before.kind;
    };
    MinimizeResult res = minimizeSpec(bad, predicate);

    constexpr int kGoldenLines = 14;
    EXPECT_LE(sourceLineCount(renderProgram(res.spec)), kGoldenLines)
        << renderProgram(res.spec);
    EXPECT_EQ(res.spec.stmts.size(), 1u);
    EXPECT_EQ(res.spec.arraySize, kMinArraySize);
    EXPECT_TRUE(res.spec.countUp);
    EXPECT_TRUE(predicate(res.spec)) << "minimized spec must diverge";
    EXPECT_GT(res.attempts, 0);
}

TEST(Minimizer, RequiresFewerAttemptsThanExhaustiveSearch)
{
    // Sanity bound: the fixpoint loop terminates quickly on the
    // hand-seeded spec (guards against the offset-oscillation class
    // of bug, where `changed` never settles).
    FuzzConfig cfg = injectedRecConfig();
    ProgramSpec bad = handSeededBadSpec();
    auto predicate = [&](const ProgramSpec &cand) {
        return checkSpec(cand, cfg).diverged;
    };
    MinimizeResult res = minimizeSpec(bad, predicate);
    EXPECT_LT(res.attempts, 200);
}

TEST(Campaign, CleanOnHealthyCompiler)
{
    CampaignOptions opts;
    opts.seed = 3;
    opts.maxPrograms = 12;
    opts.jobs = 2;
    CampaignResult res = runCampaign(opts);
    EXPECT_EQ(res.programsRun, 12);
    EXPECT_EQ(res.checksRun, 12 * 7);
    EXPECT_TRUE(res.clean())
        << res.divergences.size() << " divergences, first: "
        << (res.divergences.empty()
                ? ""
                : res.divergences[0].signature + "\n" +
                      renderProgram(res.divergences[0].spec));
}

TEST(Campaign, DigestIndependentOfJobCount)
{
    CampaignOptions one;
    one.seed = 11;
    one.maxPrograms = 10;
    one.jobs = 1;
    CampaignOptions four = one;
    four.jobs = 4;
    CampaignResult a = runCampaign(one);
    CampaignResult b = runCampaign(four);
    EXPECT_EQ(a.streamDigest, b.streamDigest);
    EXPECT_NE(a.streamDigest, 0u);

    CampaignOptions other = one;
    other.seed = 12;
    EXPECT_NE(runCampaign(other).streamDigest, a.streamDigest);
}

TEST(Campaign, CatchesInjectedRecurrenceBug)
{
    // The fuzzer's end-to-end self-test: with the hidden legality
    // bypass on, the campaign must find miscompiles, attribute every
    // one to the same-cell structural feature, and minimize each
    // exemplar to the golden reproducer size.
    CampaignOptions opts;
    opts.seed = 42;
    opts.maxPrograms = 100;
    opts.jobs = 2;
    opts.injectRecurrenceBug = true;
    CampaignResult res = runCampaign(opts);
    ASSERT_FALSE(res.clean());
    EXPECT_GT(res.rawDivergences,
              static_cast<int>(res.divergences.size()))
        << "expected dedup to fold duplicate signatures";
    for (const Divergence &d : res.divergences) {
        EXPECT_EQ(d.kind, DivergenceKind::Mismatch) << d.signature;
        EXPECT_NE(d.signature.find("cell0"), std::string::npos)
            << d.signature;
        EXPECT_LE(sourceLineCount(renderProgram(d.minimizedSpec)), 15)
            << renderProgram(d.minimizedSpec);
    }
}

TEST(Campaign, CatchesInjectedDeadlockBug)
{
    // The watchdog's end-to-end self-test: with input streams started
    // one element short, streamed programs wedge; the campaign must
    // classify every finding as a deadlock and dedup by the wait-for
    // signature, not per program.
    CampaignOptions opts;
    opts.seed = 21;
    opts.maxPrograms = 40;
    opts.jobs = 2;
    opts.injectStreamCountBug = true;
    CampaignResult res = runCampaign(opts);
    ASSERT_FALSE(res.clean());
    EXPECT_GT(res.rawDivergences,
              static_cast<int>(res.divergences.size()))
        << "expected wait-for-signature dedup to fold duplicates";
    bool sawDeadlock = false;
    for (const Divergence &d : res.divergences) {
        EXPECT_EQ(d.kind, DivergenceKind::Deadlock) << d.signature;
        EXPECT_NE(d.signature.find("deadlock"), std::string::npos)
            << d.signature;
        if (d.signature.find("data_fifo_empty") != std::string::npos)
            sawDeadlock = true;
    }
    EXPECT_TRUE(sawDeadlock);
}

TEST(Campaign, ChaosOracleCleanOnHealthyCompiler)
{
    CampaignOptions opts;
    opts.seed = 5;
    opts.maxPrograms = 8;
    opts.jobs = 2;
    opts.chaosSeeds = 2;
    opts.minimize = false;
    CampaignResult res = runCampaign(opts);
    EXPECT_TRUE(res.clean())
        << res.divergences.size() << " divergences, first: "
        << (res.divergences.empty() ? ""
                                    : res.divergences[0].signature +
                                          "\n" +
                                          res.divergences[0].detail);
}

TEST(Signature, DeadlockKeysOnWaitForShape)
{
    FuzzConfig cfg;
    cfg.key = "wm/rec+stream";
    CheckOutcome out;
    out.diverged = true;
    out.kind = DivergenceKind::Deadlock;
    out.faultSignature =
        "deadlock|ieu=data_fifo_empty|chain:ieu-><no-producer>";

    // Two structurally different programs with the same wait-for
    // shape must collide; program features are ignored.
    ProgramSpec p1;
    p1.stmts.push_back(StmtSpec{});
    ProgramSpec p2;
    StmtSpec s;
    s.off1 = -1;
    s.conditional = true;
    p2.stmts.push_back(s);
    EXPECT_EQ(divergenceSignature(p1, cfg, out),
              divergenceSignature(p2, cfg, out));
    EXPECT_NE(divergenceSignature(p1, cfg, out)
                  .find("data_fifo_empty"),
              std::string::npos);
}
