/**
 * @file
 * Tests for the IR verifier (src/verify): one deliberately-malformed
 * RTL program per invariant class, each asserting its stable reason
 * code; driver-level checkpoint plumbing; the --inject-verifier-bug
 * self-test; and the wmfuzz third-oracle integration.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "fuzz/campaign.h"
#include "opt/passes.h"
#include "rtl/machine.h"
#include "verify/verify.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

/** The paper's dot product: two input streams, one reduction. */
const char kDotProduct[] = R"(
int n = 64;
double a[64];
double b[64];

int main(void)
{
    int i;
    double s;
    for (i = 0; i < n; i++) {
        a[i] = 0.25 + (i & 31) * 0.03125;
        b[i] = 1.5 - (i & 7) * 0.125;
    }
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + a[i] * b[i];
    return s;
}
)";

bool
hasReason(const verify::VerifyReport &rep, const std::string &reason)
{
    for (const verify::Violation &v : rep.violations)
        if (v.reason == reason)
            return true;
    return false;
}

bool
anyReportHasReason(const driver::CompileResult &cr,
                   const std::string &reason)
{
    for (const auto &rep : cr.verifyReports)
        if (hasReason(rep, reason))
            return true;
    return false;
}

verify::VerifyReport
check(Function &fn, verify::Stage stage)
{
    verify::VerifyOptions vo;
    vo.stage = stage;
    vo.pass = "test";
    return verify::verifyFunction(fn, wmTraits(), vo);
}

ExprPtr
vint(int idx)
{
    return makeReg(RegFile::VInt, idx, DataType::I64);
}

ExprPtr
cc0()
{
    return makeReg(RegFile::CC, 0, DataType::I64);
}

} // namespace

// ---- invariant class: structural validity ----

TEST(Verify, BadArity)
{
    Function fn("f");
    Block *b = fn.addBlock("entry");
    Inst broken;
    broken.kind = InstKind::Assign; // no dst, no src
    b->insts.push_back(std::move(broken));
    b->insts.push_back(makeReturn());

    auto rep = check(fn, verify::Stage::PostExpand);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(hasReason(rep, "bad-operand"));
}

TEST(Verify, BranchTargetUnknown)
{
    Function fn("f");
    Block *b = fn.addBlock("entry");
    b->insts.push_back(makeJump("nowhere"));

    auto rep = check(fn, verify::Stage::PostExpand);
    EXPECT_TRUE(hasReason(rep, "branch-target-unknown"));
}

TEST(Verify, UseBeforeDef)
{
    Function fn("f");
    Block *b = fn.addBlock("entry");
    // vr5 is read but never written on any path.
    b->insts.push_back(
        makeAssign(vint(6), makeBin(Op::Add, vint(5), makeConst(1))));
    b->insts.push_back(makeReturn());

    auto rep = check(fn, verify::Stage::PostExpand);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(hasReason(rep, "use-before-def"));
}

TEST(Verify, WellFormedFunctionIsClean)
{
    Function fn("f");
    Block *b = fn.addBlock("entry");
    b->insts.push_back(makeAssign(vint(2), makeConst(7)));
    b->insts.push_back(
        makeAssign(vint(3), makeBin(Op::Add, vint(2), makeConst(1))));
    b->insts.push_back(makeReturn());

    auto rep = check(fn, verify::Stage::PostExpand);
    EXPECT_TRUE(rep.ok()) << rep.str();
}

// ---- invariant class: FIFO balance ----

TEST(Verify, UnbalancedFifoPath)
{
    // A streamed loop that claims in:r0 (StreamIn in the preheader,
    // JumpStream latch) but never dequeues inside the body: zero pops
    // per iteration where exactly one is required.
    Function fn("f");
    Block *pre = fn.addBlock("pre");
    Block *loop = fn.addBlock("loop");
    Block *exit = fn.addBlock("exit");

    pre->insts.push_back(makeAssign(vint(2), makeConst(0)));
    pre->insts.push_back(makeStreamIn(UnitSide::Int, 0, makeConst(4096),
                                      makeConst(10), 8, DataType::I64));
    loop->insts.push_back(
        makeAssign(vint(2), makeBin(Op::Add, vint(2), makeConst(1))));
    loop->insts.push_back(makeJumpStream(UnitSide::Int, 0, "loop"));
    exit->insts.push_back(makeReturn());

    auto rep = check(fn, verify::Stage::PostOpt);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(hasReason(rep, "fifo-pop-imbalance")) << rep.str();
}

TEST(Verify, ReorderedPops)
{
    // Two dequeues of the same FIFO inside one instruction: the pop
    // order is not defined by the program, so the value each operand
    // sees depends on evaluation order.
    Function fn("f");
    Block *b = fn.addBlock("entry");
    ExprPtr fifo = makeReg(RegFile::Int, 0, DataType::I64);
    b->insts.push_back(
        makeAssign(vint(4), makeBin(Op::Add, fifo, fifo)));
    b->insts.push_back(makeReturn());

    auto rep = check(fn, verify::Stage::PostOpt);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(hasReason(rep, "ambiguous-pop-order")) << rep.str();
}

// ---- invariant class: CC discipline ----

TEST(Verify, CcOverProduction)
{
    // Two compares feed one branch: the second CC push is never
    // consumed and is still queued when the function returns.
    Function fn("f");
    Block *b = fn.addBlock("entry");
    Block *exit = fn.addBlock("exit");
    b->insts.push_back(makeAssign(cc0(), makeConst(1)));
    b->insts.push_back(makeAssign(cc0(), makeConst(0)));
    b->insts.push_back(makeCondJump(UnitSide::Int, true, "exit"));
    exit->insts.push_back(makeReturn());

    auto rep = check(fn, verify::Stage::PostOpt);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(hasReason(rep, "cc-overproduction")) << rep.str();
}

TEST(Verify, CcUnderflow)
{
    // A branch with no compare before it pops an empty CC queue.
    Function fn("f");
    Block *b = fn.addBlock("entry");
    Block *exit = fn.addBlock("exit");
    b->insts.push_back(makeCondJump(UnitSide::Int, true, "exit"));
    exit->insts.push_back(makeReturn());

    auto rep = check(fn, verify::Stage::PostOpt);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(hasReason(rep, "cc-underflow")) << rep.str();
}

// ---- invariant class: recurrence legality ----

TEST(Verify, BrokenRecurrenceShiftChain)
{
    // The chain metadata promises the shift vr4 := vr3 in the loop
    // header, but the header does not contain it.
    Function fn("f");
    Block *pre = fn.addBlock("pre");
    Block *header = fn.addBlock("header");
    Block *exit = fn.addBlock("exit");
    pre->insts.push_back(makeAssign(vint(3), makeConst(0)));
    header->insts.push_back(
        makeAssign(vint(3), makeBin(Op::Add, vint(3), makeConst(1))));
    header->insts.push_back(makeAssign(cc0(), makeConst(1)));
    header->insts.push_back(makeCondJump(UnitSide::Int, true, "header"));
    exit->insts.push_back(makeReturn());

    recurrence::RecurrenceChain chain;
    chain.function = "f";
    chain.header = "header";
    chain.preheader = "pre";
    chain.flt = false;
    chain.degree = 1;
    chain.chainRegs = {3, 4};

    auto rep = verify::verifyRecurrenceChains(fn, wmTraits(), {chain},
                                              "recurrence");
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(hasReason(rep, "recurrence-shift-mismatch"))
        << rep.str();
}

TEST(Verify, RecurrenceShiftCycle)
{
    // A chain register appearing at two distances is a cycle: the
    // shift would feed a value back into its own slot.
    Function fn("f");
    fn.addBlock("pre");
    fn.addBlock("header");

    recurrence::RecurrenceChain chain;
    chain.function = "f";
    chain.header = "header";
    chain.preheader = "pre";
    chain.degree = 1;
    chain.chainRegs = {3, 3};

    auto rep = verify::verifyRecurrenceChains(fn, wmTraits(), {chain},
                                              "recurrence");
    EXPECT_TRUE(hasReason(rep, "recurrence-shift-cycle")) << rep.str();
}

// ---- violation plumbing ----

TEST(Verify, SignatureIsProgramIndependent)
{
    Function fn("f");
    Block *b = fn.addBlock("entry");
    ExprPtr fifo = makeReg(RegFile::Int, 0, DataType::I64);
    b->insts.push_back(
        makeAssign(vint(4), makeBin(Op::Add, fifo, fifo)));
    b->insts.push_back(makeReturn());

    auto rep = check(fn, verify::Stage::PostOpt);
    ASSERT_FALSE(rep.ok());
    bool found = false;
    for (const verify::Violation &v : rep.violations)
        if (v.reason == "ambiguous-pop-order") {
            // reason@invariant only: no function, block, or
            // instruction id, so the same compiler bug collides
            // across different generated programs.
            EXPECT_EQ(v.signature(), "ambiguous-pop-order@in:r0");
            found = true;
        }
    EXPECT_TRUE(found);
}

// ---- pass-ordering regression ----

TEST(VerifyOpt, BranchOptThenDceCollectsOrphanCompare)
{
    // Branch optimization deletes a CondJump to the fallthrough
    // block, leaving its compare as an unconsumed CC enqueue. The
    // cleanup rounds run DCE after branchopt for exactly this case;
    // run the two passes in that order and let the verifier confirm
    // the CC queue balances. (With the reverse order — DCE first,
    // branchopt as the round's last step — the orphan compare
    // survives into final code as cc-overproduction.)
    Function fn("f");
    Block *a = fn.addBlock("a");
    Block *b = fn.addBlock("b");
    a->insts.push_back(makeAssign(cc0(), makeConst(1)));
    a->insts.push_back(makeCondJump(UnitSide::Int, true, "b"));
    b->insts.push_back(makeReturn());
    fn.recomputeCfg();

    opt::runBranchOpt(fn);
    opt::runDeadCodeElim(fn, wmTraits());

    auto rep = check(fn, verify::Stage::PostOpt);
    EXPECT_TRUE(rep.ok()) << rep.str();
    for (const auto &bp : fn.blocks())
        for (const Inst &inst : bp->insts)
            if (inst.kind == InstKind::Assign) {
                EXPECT_NE(inst.dst->regFile(), RegFile::CC);
            }
}

// ---- driver integration ----

TEST(VerifyDriver, CleanCompileUnderVerifyEach)
{
    driver::CompileOptions opts;
    opts.verify = driver::VerifyMode::Each;
    auto cr = driver::compileSource(kDotProduct, opts);
    ASSERT_TRUE(cr.ok);
    EXPECT_TRUE(cr.verifyClean()) << cr.verifyText();
    // expand + per-pass checkpoints + recurrence chains + lower-fifo.
    EXPECT_GT(cr.verifyCheckpoints, 5);
}

TEST(VerifyDriver, FinalModeRunsOneProgramCheckpoint)
{
    driver::CompileOptions opts;
    opts.verify = driver::VerifyMode::Final;
    opts.recurrence = false; // no chain checkpoints
    auto cr = driver::compileSource(kDotProduct, opts);
    ASSERT_TRUE(cr.ok);
    EXPECT_TRUE(cr.verifyClean()) << cr.verifyText();
    EXPECT_EQ(cr.verifyCheckpoints, 1);
}

TEST(VerifyDriver, InjectedPopDropIsCaughtStatically)
{
    driver::CompileOptions opts;
    opts.verify = driver::VerifyMode::Each;
    opts.injectVerifierBug = true;
    auto cr = driver::compileSource(kDotProduct, opts);
    ASSERT_TRUE(cr.ok); // it compiles; the *verifier* must object
    EXPECT_FALSE(cr.verifyClean());
    EXPECT_TRUE(anyReportHasReason(cr, "fifo-pop-imbalance"))
        << cr.verifyText();
    // The violation is mirrored into the remarks stream with pass
    // provenance, joinable like any other remark.
    bool mirrored = false;
    for (const obs::Remark &r : cr.remarks.remarks())
        if (r.pass == "verify" && r.reason == "fifo-pop-imbalance")
            mirrored = true;
    EXPECT_TRUE(mirrored);
}

TEST(VerifyDriver, InjectedStreamUnderCountIsCaughtStatically)
{
    // The deadlock self-test miscompile (PR 4's dynamic-only bug):
    // the static linter now catches the count disagreement between
    // sibling streams at compile time.
    driver::CompileOptions opts;
    opts.verify = driver::VerifyMode::Each;
    opts.injectStreamCountBug = true;
    auto cr = driver::compileSource(kDotProduct, opts);
    ASSERT_TRUE(cr.ok);
    EXPECT_FALSE(cr.verifyClean());
    EXPECT_TRUE(anyReportHasReason(cr, "stream-count-mismatch"))
        << cr.verifyText();
}

TEST(VerifyDriver, VerifyOffCollectsNothing)
{
    driver::CompileOptions opts;
    opts.injectVerifierBug = true; // broken code, but nobody looks
    auto cr = driver::compileSource(kDotProduct, opts);
    ASSERT_TRUE(cr.ok);
    EXPECT_TRUE(cr.verifyClean());
    EXPECT_EQ(cr.verifyCheckpoints, 0);
}

// ---- wmfuzz third-oracle integration ----

TEST(VerifyFuzz, CampaignFlagsInjectedBugAsVerifyError)
{
    fuzz::CampaignOptions opts;
    opts.seed = 7;
    opts.maxPrograms = 40;
    opts.jobs = 4;
    opts.injectVerifierBug = true;
    opts.minimize = false;
    auto res = fuzz::runCampaign(opts);
    ASSERT_FALSE(res.divergences.empty());
    bool sawVerify = false;
    for (const auto &d : res.divergences) {
        if (d.kind != fuzz::DivergenceKind::VerifyError)
            continue;
        sawVerify = true;
        // Deduped by the program-independent violation signature.
        EXPECT_NE(d.signature.find("fifo-pop-imbalance"),
                  std::string::npos)
            << d.signature;
    }
    EXPECT_TRUE(sawVerify);
}

// ---- whole-program static FIFO analysis (fifodepth.cc) ----

namespace {

/** The paper's Figure 7 kernel, embedded so the test needs no file
 *  access: all three arrays stream, every queue's inferred minimum
 *  must fit the default depth. */
const char kFig7[] = R"(
int n = 100;
double a[100];
double b[100];
double c[100];

int main(void)
{
    int i;
    for (i = 0; i < n; i++) {
        a[i] = 1.0 + i * 0.5;
        b[i] = 2.0 + i * 0.25;
    }
    for (i = 0; i < n; i++)
        c[i] = a[i] + b[i];
    return c[99];
}
)";

bool
findingsHaveReason(const verify::FifoRequirements &fr,
                   const std::string &reason)
{
    return hasReason(fr.findings, reason);
}

} // namespace

TEST(FifoDepth, Fig7IsDeadlockFreeWithinDefaultDepth)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(kFig7, opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    auto fr = verify::analyzeFifoRequirements(*cr.program,
                                              cr.traits, 8);
    ASSERT_TRUE(fr.analyzed);
    EXPECT_TRUE(fr.deadlockFree) << fr.findings.str();
    EXPECT_EQ(fr.verdict, "deadlock-free");
    EXPECT_TRUE(fr.depthSatisfied());
    EXPECT_LE(fr.minDepth, 8);
    EXPECT_GE(fr.minDepth, 1);
    // The three streamed arrays claim queues; every claimed queue is
    // SCU-throttled and needs exactly depth 1.
    bool sawStreamed = false;
    for (const auto &q : fr.queues)
        if (q.streamed) {
            sawStreamed = true;
            EXPECT_EQ(q.minDepth, 1) << q.name;
        }
    EXPECT_TRUE(sawStreamed);
}

TEST(FifoDepth, DriverWiresResultAndScalarIsNotAnalyzed)
{
    driver::CompileOptions opts;
    opts.inferFifoDepth = true;
    opts.configuredFifoDepth = 8;
    auto cr = driver::compileSource(kFig7, opts);
    ASSERT_TRUE(cr.ok);
    EXPECT_TRUE(cr.fifoRequirements.analyzed);
    EXPECT_EQ(cr.fifoRequirements.verdict, "deadlock-free");
    EXPECT_TRUE(cr.verifyClean()); // clean verdict adds no reports

    driver::CompileOptions scalar;
    scalar.target = rtl::MachineKind::Scalar;
    scalar.inferFifoDepth = true;
    auto sr = driver::compileSource(kFig7, scalar);
    ASSERT_TRUE(sr.ok);
    EXPECT_FALSE(sr.fifoRequirements.analyzed);
    EXPECT_EQ(sr.fifoRequirements.verdict, "not-analyzed");
}

TEST(FifoDepth, StarvedPopAcrossLoopIsNotDeadlockFree)
{
    // Cross-loop deadlock, invariant class static-starved-pop: the
    // consumer loop pops in:r0 every iteration but no load or stream
    // ever feeds that queue — the IEU blocks forever on the first
    // dequeue. Occupancy is provably [0,0] at the pop on every path
    // around the loop.
    Program prog;
    Function *fn = prog.addFunction("f");
    Block *entry = fn->addBlock("entry");
    Block *header = fn->addBlock("header");
    Block *exitB = fn->addBlock("exit");
    ExprPtr fifo = makeReg(RegFile::Int, 0, DataType::I64);

    entry->insts.push_back(makeJump("header"));
    header->insts.push_back(makeAssign(makeReg(RegFile::Int, 2, DataType::I64), fifo)); // starved pop
    header->insts.push_back(
        makeAssign(cc0(), makeBin(Op::Lt, makeReg(RegFile::Int, 2, DataType::I64), makeConst(8))));
    header->insts.push_back(
        makeCondJump(UnitSide::Int, true, "header"));
    exitB->insts.push_back(makeReturn());
    fn->recomputeCfg();

    auto fr = verify::analyzeFifoRequirements(prog, wmTraits(), 8);
    ASSERT_TRUE(fr.analyzed);
    EXPECT_FALSE(fr.deadlockFree);
    EXPECT_EQ(fr.verdict, "not-proven");
    EXPECT_TRUE(findingsHaveReason(fr, "static-starved-pop"))
        << fr.findings.str();
}

TEST(FifoDepth, DisciplineViolationYieldsStaticUnproven)
{
    // Invariant class static-unproven: a streamed loop that claims
    // in:r0 but never pops it breaks queue discipline, so
    // deadlock-freedom cannot be proven (this exact shape wedges the
    // SCU against a full FIFO at runtime).
    Program prog;
    Function *fn = prog.addFunction("f");
    Block *pre = fn->addBlock("pre");
    Block *loop = fn->addBlock("loop");
    Block *exitB = fn->addBlock("exit");

    pre->insts.push_back(makeAssign(makeReg(RegFile::Int, 2, DataType::I64), makeConst(0)));
    pre->insts.push_back(
        makeStreamIn(UnitSide::Int, 0, makeConst(4096),
                     makeConst(10), 8, DataType::I64));
    loop->insts.push_back(
        makeAssign(makeReg(RegFile::Int, 2, DataType::I64), makeBin(Op::Add, makeReg(RegFile::Int, 2, DataType::I64), makeConst(1))));
    loop->insts.push_back(makeJumpStream(UnitSide::Int, 0, "loop"));
    exitB->insts.push_back(makeReturn());
    fn->recomputeCfg();

    auto fr = verify::analyzeFifoRequirements(prog, wmTraits(), 8);
    ASSERT_TRUE(fr.analyzed);
    EXPECT_FALSE(fr.deadlockFree);
    EXPECT_TRUE(findingsHaveReason(fr, "static-unproven"))
        << fr.findings.str();
    // The dedup key carries the underlying discipline signature so
    // wmfuzz folds identical bugs across programs.
    bool carried = false;
    for (const auto &v : fr.findings.violations)
        if (v.reason == "static-unproven" &&
            v.invariant.find("fifo-pop-imbalance") != std::string::npos)
            carried = true;
    EXPECT_TRUE(carried) << fr.findings.str();
}

TEST(FifoDepth, PushBurstBeyondConfiguredDepthIsFlagged)
{
    // Invariant class fifo-depth-exceeded: five values queued on
    // out:r0 before the first store drains them. Discipline is clean
    // (balanced, nothing leaks), but a depth-2 FIFO provably blocks
    // the producer on the third push.
    Program prog;
    Function *fn = prog.addFunction("f");
    Block *b = fn->addBlock("entry");
    ExprPtr outFifo = makeReg(RegFile::Int, 0, DataType::I64);
    const int kPushes = 5;
    for (int i = 0; i < kPushes; ++i)
        b->insts.push_back(makeAssign(outFifo, makeConst(i)));
    for (int i = 0; i < kPushes; ++i)
        b->insts.push_back(makeStore(makeConst(0x2000 + 8 * i),
                                     outFifo, DataType::I64));
    b->insts.push_back(makeReturn());
    fn->recomputeCfg();

    auto shallow = verify::analyzeFifoRequirements(prog, wmTraits(), 2);
    ASSERT_TRUE(shallow.analyzed);
    EXPECT_EQ(shallow.minDepth, kPushes);
    EXPECT_FALSE(shallow.depthSatisfied());
    EXPECT_FALSE(shallow.deadlockFree);
    EXPECT_TRUE(findingsHaveReason(shallow, "fifo-depth-exceeded"))
        << shallow.findings.str();

    // The same program is provably fine once the FIFO is deep enough.
    auto deep = verify::analyzeFifoRequirements(prog, wmTraits(), 8);
    EXPECT_TRUE(deep.deadlockFree) << deep.findings.str();
    EXPECT_EQ(deep.minDepth, kPushes);
}

TEST(FifoDepth, InjectedStreamUnderCountIsStaticallyNotProven)
{
    // The wmfuzz agreement oracle's static half: the planted
    // stream-count miscompile must be flagged without any verifier
    // checkpoint (fuzz configs compile it with verify off).
    driver::CompileOptions opts;
    opts.injectStreamCountBug = true;
    auto cr = driver::compileSource(kDotProduct, opts);
    ASSERT_TRUE(cr.ok);
    EXPECT_TRUE(cr.verifyClean()); // nobody ran the verifier...
    auto fr = verify::analyzeFifoRequirements(*cr.program,
                                              cr.traits, 8);
    ASSERT_TRUE(fr.analyzed);
    EXPECT_FALSE(fr.deadlockFree); // ...yet the analysis objects
    EXPECT_TRUE(findingsHaveReason(fr, "static-unproven"))
        << fr.findings.str();
}

TEST(FifoDepth, DepthExceededIsConfigErrorNotVerifierReport)
{
    // fifo-depth-exceeded stays out of verifyReports (wmc reports it
    // against --fifo-depth and exits 1, not 70); the verdict and the
    // finding itself remain in fifoRequirements.
    driver::CompileOptions opts;
    opts.inferFifoDepth = true;
    opts.configuredFifoDepth = 1;
    auto cr = driver::compileSource(kDotProduct, opts);
    ASSERT_TRUE(cr.ok);
    ASSERT_TRUE(cr.fifoRequirements.analyzed);
    if (!cr.fifoRequirements.depthSatisfied()) {
        EXPECT_TRUE(cr.verifyClean()) << cr.verifyText();
        EXPECT_TRUE(findingsHaveReason(cr.fifoRequirements,
                                       "fifo-depth-exceeded"));
    }
}

TEST(FifoDepthFuzz, CampaignAgreesWithWatchdogAndCountsVerdicts)
{
    // 60-program agreement sweep: no static_fifo_break may surface
    // (a statically-proven-free program that still deadlocked), and
    // the static verdict tallies must cover every WM check.
    fuzz::CampaignOptions opts;
    opts.seed = 11;
    opts.maxPrograms = 60;
    opts.jobs = 4;
    opts.minimize = false;
    auto res = fuzz::runCampaign(opts);
    for (const auto &d : res.divergences)
        EXPECT_NE(d.kind, fuzz::DivergenceKind::StaticFifoBreak)
            << d.signature << "\n" << d.detail;
    EXPECT_GT(res.staticDeadlockFree, 0);
    EXPECT_EQ(res.staticFlagged, 0);
}

TEST(FifoDepthFuzz, InjectedDeadlockBugIsFlaggedStatically)
{
    // The planted under-count must be caught by the static analysis
    // on every configuration where it bites — the deduped deadlock
    // divergences stay (the watchdog self-test needs them), but none
    // may carry a clean static verdict (that would be the
    // static_fifo_break agreement failure).
    fuzz::CampaignOptions opts;
    opts.seed = 7;
    opts.maxPrograms = 10;
    opts.jobs = 4;
    opts.injectStreamCountBug = true;
    opts.minimize = false;
    auto res = fuzz::runCampaign(opts);
    EXPECT_GT(res.staticFlagged, 0);
    bool sawDeadlock = false;
    for (const auto &d : res.divergences) {
        EXPECT_NE(d.kind, fuzz::DivergenceKind::StaticFifoBreak)
            << d.signature << "\n" << d.detail;
        if (d.kind == fuzz::DivergenceKind::Deadlock)
            sawDeadlock = true;
    }
    EXPECT_TRUE(sawDeadlock);
}
