/**
 * @file
 * Unit tests for the RTL expression and instruction layer.
 */

#include <gtest/gtest.h>

#include "rtl/expr.h"
#include "rtl/inst.h"
#include "rtl/program.h"

using namespace wmstream::rtl;

TEST(RtlExpr, ConstantFoldingInteger)
{
    auto e = makeBin(Op::Add, makeConst(2), makeConst(3));
    ASSERT_TRUE(e->isConst());
    EXPECT_EQ(e->ival(), 5);

    EXPECT_EQ(makeBin(Op::Mul, makeConst(6), makeConst(7))->ival(), 42);
    EXPECT_EQ(makeBin(Op::Shl, makeConst(1), makeConst(4))->ival(), 16);
    EXPECT_EQ(makeBin(Op::Lt, makeConst(1), makeConst(2))->ival(), 1);
}

TEST(RtlExpr, ConstantFoldingFloat)
{
    auto e = makeBin(Op::Mul, makeFConst(2.5), makeFConst(4.0));
    ASSERT_TRUE(e->isConst());
    EXPECT_DOUBLE_EQ(e->fval(), 10.0);
}

TEST(RtlExpr, DivisionByZeroNotFolded)
{
    auto e = makeBin(Op::Div, makeConst(1), makeConst(0));
    // folded to 0 by our total-function fold (documented); check it is
    // at least not a crash and produces a Const
    EXPECT_TRUE(e->isConst());
}

TEST(RtlExpr, SymbolOffsetFolding)
{
    auto e = makeBin(Op::Add, makeSym("x"), makeConst(8));
    ASSERT_TRUE(e->isSym());
    EXPECT_EQ(e->symbol(), "x");
    EXPECT_EQ(e->symOffset(), 8);

    auto f = makeBin(Op::Sub, makeSym("x", 8), makeConst(16));
    EXPECT_EQ(f->symOffset(), -8);
}

TEST(RtlExpr, IdentitySimplifications)
{
    auto r = makeReg(RegFile::VInt, 3, DataType::I64);
    EXPECT_TRUE(exprEqual(makeBin(Op::Add, r, makeConst(0)), r));
    EXPECT_TRUE(exprEqual(makeBin(Op::Mul, r, makeConst(1)), r));
    EXPECT_TRUE(makeBin(Op::Mul, r, makeConst(0))->isIntConst(0));
    EXPECT_TRUE(exprEqual(makeBin(Op::Shl, r, makeConst(0)), r));
}

TEST(RtlExpr, AddChainReassociation)
{
    // (r + 4) + 4  ->  r + 8
    auto r = makeReg(RegFile::VInt, 1, DataType::I64);
    auto e = makeBin(Op::Add, makeBin(Op::Add, r, makeConst(4)),
                     makeConst(4));
    ASSERT_EQ(e->kind(), Expr::Kind::Bin);
    EXPECT_TRUE(e->rhs()->isIntConst(8));
}

TEST(RtlExpr, CommutativeCanonicalization)
{
    // constant moves to the right of a commutative operator
    auto r = makeReg(RegFile::VInt, 1, DataType::I64);
    auto e = makeBin(Op::Add, makeConst(5), r);
    EXPECT_TRUE(e->lhs()->isReg());
    EXPECT_TRUE(e->rhs()->isConst());
}

TEST(RtlExpr, StructuralEquality)
{
    auto a = makeBin(Op::Add, makeReg(RegFile::Int, 2, DataType::I64),
                     makeConst(4));
    auto b = makeBin(Op::Add, makeReg(RegFile::Int, 2, DataType::I64),
                     makeConst(4));
    auto c = makeBin(Op::Add, makeReg(RegFile::Int, 3, DataType::I64),
                     makeConst(4));
    EXPECT_TRUE(exprEqual(a, b));
    EXPECT_FALSE(exprEqual(a, c));
}

TEST(RtlExpr, SubstReg)
{
    auto r2 = makeReg(RegFile::VInt, 2, DataType::I64);
    auto r9 = makeReg(RegFile::VInt, 9, DataType::I64);
    auto e = makeBin(Op::Add, makeBin(Op::Shl, r2, makeConst(3)), r9);
    auto s = substReg(e, RegFile::VInt, 2,
                      makeReg(RegFile::Int, 22, DataType::I64));
    EXPECT_TRUE(usesReg(s, RegFile::Int, 22));
    EXPECT_FALSE(usesReg(s, RegFile::VInt, 2));
    EXPECT_TRUE(usesReg(s, RegFile::VInt, 9));
}

TEST(RtlExpr, NegationOfRelational)
{
    EXPECT_EQ(negateRelational(Op::Lt), Op::Ge);
    EXPECT_EQ(negateRelational(Op::Eq), Op::Ne);
    EXPECT_EQ(swapRelational(Op::Lt), Op::Gt);
    EXPECT_EQ(swapRelational(Op::Eq), Op::Eq);
}

TEST(RtlInst, UsesAndDefs)
{
    auto dst = makeReg(RegFile::VInt, 5, DataType::I64);
    auto a = makeReg(RegFile::VInt, 1, DataType::I64);
    auto b = makeReg(RegFile::VInt, 2, DataType::I64);
    Inst inst = makeAssign(dst, makeBin(Op::Add, a, b));
    auto uses = instUses(inst);
    EXPECT_EQ(uses.size(), 2u);
    EXPECT_TRUE(instDef(inst)->isReg(RegFile::VInt, 5));

    Inst store = makeStore(a, b, DataType::I64);
    EXPECT_EQ(instUses(store).size(), 2u);
    EXPECT_TRUE(instDef(store) == nullptr);
}

TEST(RtlInst, TerminatorClassification)
{
    EXPECT_TRUE(makeJump("L1").isTerminator());
    EXPECT_TRUE(makeCondJump(UnitSide::Int, true, "L1").isTerminator());
    EXPECT_TRUE(makeJumpStream(UnitSide::Flt, 0, "L1").isTerminator());
    EXPECT_TRUE(makeReturn().isTerminator());
    EXPECT_FALSE(makeCall("f").isTerminator());
    EXPECT_FALSE(makeStreamStop(UnitSide::Int, 0).isTerminator());
}

TEST(RtlFunction, BlocksAndCfg)
{
    Function fn("f");
    Block *b0 = fn.addBlock("entry");
    Block *b1 = fn.addBlock("body");
    Block *b2 = fn.addBlock("exit");
    b0->insts.push_back(makeCondJump(UnitSide::Int, true, "exit"));
    b1->insts.push_back(makeJump("exit"));
    b2->insts.push_back(makeReturn());
    fn.recomputeCfg();

    ASSERT_EQ(b0->succs.size(), 2u); // branch target + fallthrough
    EXPECT_EQ(b1->succs.size(), 1u);
    EXPECT_EQ(b2->preds.size(), 2u);
}

TEST(RtlFunction, RemoveUnreachable)
{
    Function fn("f");
    Block *b0 = fn.addBlock("entry");
    fn.addBlock("orphan"); // never targeted; entry returns first
    b0->insts.push_back(makeReturn());
    fn.removeUnreachable();
    EXPECT_EQ(fn.blocks().size(), 1u);
}

TEST(RtlFunction, RenumberAssignsSequentialIds)
{
    Function fn("f");
    Block *b0 = fn.addBlock();
    b0->insts.push_back(makeAssign(fn.newVReg(DataType::I64),
                                   makeConst(1)));
    b0->insts.push_back(makeReturn());
    fn.renumber();
    EXPECT_EQ(b0->insts[0].id, 0);
    EXPECT_EQ(b0->insts[1].id, 1);
}

TEST(RtlProgram, LayoutAssignsAlignedAddresses)
{
    Program prog;
    prog.addGlobal("a", 3, 1);
    prog.addGlobal("b", 8, 8);
    prog.addGlobal("c", 1, 1);
    int64_t end = prog.layout(0x1000);
    EXPECT_EQ(prog.globalAddress("a"), 0x1000);
    EXPECT_EQ(prog.globalAddress("b") % 8, 0);
    EXPECT_GT(prog.globalAddress("c"), prog.globalAddress("b"));
    EXPECT_GE(end, prog.globalAddress("c") + 1);
}

TEST(RtlProgram, FrameSlots)
{
    Function fn("f");
    int64_t a = fn.allocFrameSlot(8, 8);
    int64_t b = fn.allocFrameSlot(1, 1);
    int64_t c = fn.allocFrameSlot(8, 8);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 8);
    EXPECT_EQ(c % 8, 0);
    EXPECT_GE(fn.frameSize, 17);
}
