/**
 * @file
 * Randomized loop-program differential tests.
 *
 * Generates loops with random affine array accesses — including
 * loop-carried recurrences of random distance, negative-direction
 * loops, multiple arrays, conditional bodies, and accumulator
 * reductions — and checks that every compiled configuration matches
 * the interpreter. This is the adversarial workload for the
 * recurrence and streaming passes: any unsound rewrite shows up as a
 * checksum mismatch.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "frontend/parser.h"
#include "interp/interp.h"
#include "support/str.h"
#include "wmsim/sim.h"

using namespace wmstream;

namespace {

struct Rng
{
    uint64_t s;
    uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    int
    range(int lo, int hi)
    {
        return lo + static_cast<int>(next() % (hi - lo + 1));
    }
    bool
    flip()
    {
        return next() & 1;
    }
};

/**
 * One random loop nest over int arrays A, B, C of size kArr.
 * Index expressions stay within [0, kArr) by construction: the loop
 * runs over [4, kArr-4) and offsets are in [-4, 4].
 */
constexpr int kArr = 48;

std::string
genLoopProgram(uint64_t seed)
{
    Rng rng{seed * 0x9E3779B97F4A7C15ull + 1};
    std::string body;

    // Random loop direction.
    bool up = rng.flip();
    if (up) {
        body += "    for (i = 4; i < n - 4; i++) {\n";
    } else {
        body += "    for (i = n - 5; i >= 4; i--) {\n";
    }

    const char *arrays[3] = {"A", "B", "C"};
    int stmts = rng.range(1, 3);
    for (int k = 0; k < stmts; ++k) {
        const char *dst = arrays[rng.range(0, 2)];
        int dOff = rng.range(-2, 2);
        const char *s1 = arrays[rng.range(0, 2)];
        int o1 = rng.range(-4, 4);
        const char *s2 = arrays[rng.range(0, 2)];
        int o2 = rng.range(-4, 4);
        const char *op = rng.flip() ? "+" : "-";
        if (rng.range(0, 3) == 0) {
            // conditional statement: blocks streaming of this ref
            body += strFormat("        if ((i & 1) == 0)\n"
                              "            %s[i + %d] = %s[i + %d] %s "
                              "%s[i + %d];\n",
                              dst, dOff, s1, o1, op, s2, o2);
        } else {
            body += strFormat("        %s[i + %d] = %s[i + %d] %s "
                              "%s[i + %d];\n",
                              dst, dOff, s1, o1, op, s2, o2);
        }
        if (rng.range(0, 2) == 0)
            body += strFormat("        acc = acc + %s[i + %d];\n", dst,
                              dOff);
    }
    body += "    }\n";

    return strFormat(R"(
int n = %d;
int A[%d];
int B[%d];
int C[%d];

int main(void)
{
    int i, acc;
    for (i = 0; i < n; i++) {
        A[i] = (i * 7 + 3) %% 23;
        B[i] = (i * 5 + 1) %% 19;
        C[i] = (i * 11 + 7) %% 29;
    }
    acc = 0;
%s
    for (i = 0; i < n; i++)
        acc = acc + A[i] + B[i] * 2 + C[i] * 3;
    return acc & 1048575;
}
)",
                     kArr, kArr, kArr, kArr, body.c_str());
}

int64_t
oracle(const std::string &src)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str() << src;
    interp::Interpreter in(*unit);
    auto res = in.run();
    EXPECT_TRUE(res.ok) << res.error;
    return res.returnValue;
}

class LoopFuzz : public ::testing::TestWithParam<uint64_t>
{
};

} // namespace

TEST_P(LoopFuzz, AllWmConfigsMatchOracle)
{
    std::string src = genLoopProgram(GetParam());
    int64_t expect = oracle(src);
    for (bool rec : {false, true}) {
        for (bool stream : {false, true}) {
            driver::CompileOptions opts;
            opts.recurrence = rec;
            opts.streaming = stream;
            opts.vectorize = stream && (GetParam() & 1);
            // Stress the thresholds too.
            opts.minStreamTripCount = GetParam() % 3 == 0 ? 0 : 4;
            auto cr = driver::compileSource(src, opts);
            ASSERT_TRUE(cr.ok) << cr.diagnostics << src;
            wmsim::SimConfig cfg;
            cfg.maxCycles = 100'000'000ull;
            // Vary the machine a little, seeded by the test parameter.
            cfg.memLatency = 1 + static_cast<int>(GetParam() % 9);
            cfg.dataFifoDepth = 2 + static_cast<int>(GetParam() % 7);
            auto res = wmsim::simulate(*cr.program, cfg);
            ASSERT_TRUE(res.ok)
                << res.error << "\nrec=" << rec << " stream=" << stream
                << "\n" << src;
            EXPECT_EQ(res.returnValue, expect)
                << "rec=" << rec << " stream=" << stream << "\n" << src;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopFuzz,
                         ::testing::Range<uint64_t>(1, 61));
