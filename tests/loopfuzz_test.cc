/**
 * @file
 * Randomized loop-program differential tests.
 *
 * Draws random loop programs from the shared fuzz generator
 * (src/fuzz/generator.h) — loop-carried recurrences of random
 * distance, negative-direction loops, multiple arrays, conditional
 * bodies, and accumulator reductions — and checks that every compiled
 * configuration matches the interpreter. This is the adversarial
 * workload for the recurrence and streaming passes: any unsound
 * rewrite shows up as a checksum mismatch.
 *
 * This is the bounded in-gtest twin of the wmfuzz campaign runner:
 * same generator, same configuration matrix, same oracle diff, just
 * few enough seeds to run in CI's ctest budget. The generator used to
 * live in this file with an ad-hoc xorshift PRNG whose
 * `next() % (hi - lo + 1)` range sampling was modulo-biased; both now
 * come from src/support/rng.h (exactly uniform) and src/fuzz.
 */

#include <gtest/gtest.h>

#include "fuzz/campaign.h"
#include "fuzz/generator.h"
#include "support/rng.h"

using namespace wmstream;

namespace {

class LoopFuzz : public ::testing::TestWithParam<uint64_t>
{
};

} // namespace

TEST_P(LoopFuzz, AllConfigsMatchOracle)
{
    // Same derivation as runCampaign: one split child per index, so a
    // failure here reproduces under `wmfuzz --seed=1` at this index.
    support::Rng root(1);
    support::Rng rng = root.split(GetParam());
    fuzz::ProgramSpec spec = fuzz::generateSpec(rng);
    for (const fuzz::FuzzConfig &cfg :
         fuzz::configMatrix(GetParam(), /*injectRecurrenceBug=*/false)) {
        fuzz::CheckOutcome out = fuzz::checkSpec(spec, cfg);
        EXPECT_FALSE(out.diverged)
            << cfg.key << ": " << fuzz::divergenceKindName(out.kind)
            << " expected=" << out.expected << " actual=" << out.actual
            << "\n" << out.detail << "\n" << fuzz::renderProgram(spec);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopFuzz,
                         ::testing::Range<uint64_t>(1, 61));
