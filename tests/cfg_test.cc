/**
 * @file
 * Unit tests for dominators, natural loops, preheaders, and liveness.
 */

#include <gtest/gtest.h>

#include "cfg/dominators.h"
#include "cfg/liveness.h"
#include "cfg/loops.h"
#include "rtl/machine.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

/** Build the canonical rotated loop:
 *  entry -> guard(condjump exit) -> pre -> header(body, condjump header)
 *  -> exit */
Function
makeLoopFunction()
{
    Function fn("f");
    Block *entry = fn.addBlock("entry");
    Block *header = fn.addBlock("header");
    Block *exit = fn.addBlock("exit");

    auto iv = makeReg(RegFile::VInt, 0, DataType::I64);
    entry->insts.push_back(makeAssign(iv, makeConst(0)));
    entry->insts.push_back(
        makeAssign(makeReg(RegFile::CC, 0, DataType::I64),
                   makeBin(Op::Ge, iv, makeConst(10))));
    entry->insts.push_back(makeCondJump(UnitSide::Int, true, "exit"));

    header->insts.push_back(
        makeAssign(iv, makeBin(Op::Add, iv, makeConst(1))));
    header->insts.push_back(
        makeAssign(makeReg(RegFile::CC, 0, DataType::I64),
                   makeBin(Op::Lt, iv, makeConst(10))));
    header->insts.push_back(makeCondJump(UnitSide::Int, true, "header"));

    exit->insts.push_back(makeReturn());
    fn.recomputeCfg();
    return fn;
}

} // namespace

TEST(Dominators, EntryDominatesAll)
{
    Function fn = makeLoopFunction();
    cfg::DominatorTree dt(fn);
    Block *entry = fn.findBlock("entry");
    for (auto &b : fn.blocks())
        EXPECT_TRUE(dt.dominates(entry, b.get()));
}

TEST(Dominators, SelfDominance)
{
    Function fn = makeLoopFunction();
    cfg::DominatorTree dt(fn);
    for (auto &b : fn.blocks())
        EXPECT_TRUE(dt.dominates(b.get(), b.get()));
}

TEST(Dominators, LoopBodyDoesNotDominateExit)
{
    Function fn = makeLoopFunction();
    cfg::DominatorTree dt(fn);
    // the guard can jump straight to exit, so header !dom exit
    EXPECT_FALSE(dt.dominates(fn.findBlock("header"),
                              fn.findBlock("exit")));
}

TEST(Dominators, Idom)
{
    Function fn = makeLoopFunction();
    cfg::DominatorTree dt(fn);
    EXPECT_EQ(dt.idom(fn.findBlock("entry")), nullptr);
    EXPECT_EQ(dt.idom(fn.findBlock("header")), fn.findBlock("entry"));
}

TEST(Loops, DetectsSingleBlockLoop)
{
    Function fn = makeLoopFunction();
    cfg::DominatorTree dt(fn);
    cfg::LoopInfo li(fn, dt);
    ASSERT_EQ(li.loops().size(), 1u);
    const cfg::Loop &loop = li.loops()[0];
    EXPECT_EQ(loop.header, fn.findBlock("header"));
    EXPECT_EQ(loop.blocks.size(), 1u);
    ASSERT_EQ(loop.latches.size(), 1u);
    EXPECT_EQ(loop.latches[0], loop.header);
    EXPECT_EQ(loop.exiting.size(), 1u);
}

TEST(Loops, EnsurePreheaderCreatesOne)
{
    Function fn = makeLoopFunction();
    fn.recomputeCfg();
    cfg::DominatorTree dt(fn);
    cfg::LoopInfo li(fn, dt);
    cfg::Loop &loop = li.loops()[0];

    size_t before = fn.blocks().size();
    Block *pre = cfg::ensurePreheader(fn, loop);
    ASSERT_TRUE(pre != nullptr);
    EXPECT_EQ(fn.blocks().size(), before + 1);
    // preheader's single successor is the header
    fn.recomputeCfg();
    ASSERT_EQ(pre->succs.size(), 1u);
    EXPECT_EQ(pre->succs[0], loop.header);
    // calling again returns the same block
    EXPECT_EQ(cfg::ensurePreheader(fn, loop), pre);
}

TEST(Loops, NestedLoopsOrderedInnermostFirst)
{
    Function fn("f");
    Block *entry = fn.addBlock("entry");
    fn.addBlock("outer");
    Block *inner = fn.addBlock("inner");
    Block *latch = fn.addBlock("latch");
    Block *exit = fn.addBlock("exit");

    auto cc = makeReg(RegFile::CC, 0, DataType::I64);
    auto r = makeReg(RegFile::VInt, 0, DataType::I64);
    entry->insts.push_back(makeAssign(r, makeConst(0)));
    // inner: self loop
    inner->insts.push_back(makeAssign(cc, makeBin(Op::Lt, r, makeConst(3))));
    inner->insts.push_back(makeCondJump(UnitSide::Int, true, "inner"));
    // latch: back to outer
    latch->insts.push_back(makeAssign(cc, makeBin(Op::Lt, r, makeConst(9))));
    latch->insts.push_back(makeCondJump(UnitSide::Int, true, "outer"));
    exit->insts.push_back(makeReturn());
    fn.recomputeCfg();

    cfg::DominatorTree dt(fn);
    cfg::LoopInfo li(fn, dt);
    ASSERT_EQ(li.loops().size(), 2u);
    EXPECT_EQ(li.loops()[0].header->label(), "inner");
    EXPECT_EQ(li.loops()[1].header->label(), "outer");
    EXPECT_TRUE(li.loops()[1].contains(li.loops()[0]));
}

TEST(Liveness, StraightLine)
{
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto a = makeReg(RegFile::VInt, 0, DataType::I64);
    auto c = makeReg(RegFile::VInt, 1, DataType::I64);
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(a, makeConst(1)));
    b->insts.push_back(makeAssign(c, makeBin(Op::Add, a, makeConst(2))));
    b->insts.push_back(makeAssign(ret, c));
    Inst r = makeReturn();
    r.extraUses.push_back(ret);
    b->insts.push_back(std::move(r));
    fn.recomputeCfg();

    cfg::Liveness lv(fn, scalarTraits());
    // a is live after its def (index 0) and dead after its use (1)
    EXPECT_TRUE(lv.liveAfter(b, 0, {RegFile::VInt, 0}));
    EXPECT_FALSE(lv.liveAfter(b, 1, {RegFile::VInt, 0}));
    EXPECT_TRUE(lv.liveAfter(b, 1, {RegFile::VInt, 1}));
}

TEST(Liveness, LoopCarriedValueLiveAroundBackEdge)
{
    Function fn = makeLoopFunction();
    cfg::Liveness lv(fn, wmTraits());
    Block *header = fn.findBlock("header");
    // the IV is live into the header (used by its own increment)
    EXPECT_TRUE(lv.liveIn(header).count({RegFile::VInt, 0}));
    EXPECT_TRUE(lv.liveOut(header).count({RegFile::VInt, 0}));
}

TEST(Liveness, CallClobbersCallerSaved)
{
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto v = makeReg(RegFile::VInt, 0, DataType::I64);
    b->insts.push_back(makeAssign(v, makeConst(7)));
    b->insts.push_back(makeCall("g"));
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(ret, v));
    Inst r = makeReturn();
    r.extraUses.push_back(ret);
    b->insts.push_back(std::move(r));
    fn.recomputeCfg();

    auto traits = wmTraits();
    auto defs = cfg::instDefKeys(b->insts[1], traits);
    // Call defines every caller-saved register in both files plus CC.
    bool hasR2 = false, hasF2 = false, hasCC = false;
    for (const auto &k : defs) {
        if (k.file == RegFile::Int && k.index == 2)
            hasR2 = true;
        if (k.file == RegFile::Flt && k.index == 2)
            hasF2 = true;
        if (k.file == RegFile::CC)
            hasCC = true;
    }
    EXPECT_TRUE(hasR2);
    EXPECT_TRUE(hasF2);
    EXPECT_TRUE(hasCC);
}

TEST(Liveness, CondJumpUsesCc)
{
    Inst j = makeCondJump(UnitSide::Flt, true, "L");
    auto uses = cfg::instUseKeys(j);
    ASSERT_EQ(uses.size(), 1u);
    EXPECT_EQ(uses[0].file, RegFile::CC);
    EXPECT_EQ(uses[0].index, 1);
}
