/**
 * @file
 * Property-style tests: parameterized sweeps that assert invariants
 * across a family of inputs rather than single cases.
 *
 *  - Livermore-5 checksum equality across array sizes and recurrence
 *    degrees (compiler vs. interpreter).
 *  - Simulator determinism and configuration-independence of results.
 *  - Pseudo-random straight-line expression programs (seeded generator)
 *    agree between the interpreter and both compiled targets.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "frontend/parser.h"
#include "interp/interp.h"
#include "programs/programs.h"
#include "support/str.h"
#include "timing/scalar_sim.h"
#include "wmsim/sim.h"

using namespace wmstream;

namespace {

int64_t
oracle(const std::string &src)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str() << "\n" << src;
    interp::Interpreter in(*unit);
    auto res = in.run();
    EXPECT_TRUE(res.ok) << res.error;
    return res.returnValue;
}

int64_t
wmValue(const std::string &src, bool streaming = true)
{
    driver::CompileOptions opts;
    opts.streaming = streaming;
    auto cr = driver::compileSource(src, opts);
    EXPECT_TRUE(cr.ok) << cr.diagnostics;
    wmsim::SimConfig cfg;
    cfg.maxCycles = 10'000'000ull;
    auto res = wmsim::simulate(*cr.program, cfg);
    EXPECT_TRUE(res.ok) << res.error;
    return res.returnValue;
}

int64_t
scalarValue(const std::string &src)
{
    driver::CompileOptions opts;
    opts.target = rtl::MachineKind::Scalar;
    auto cr = driver::compileSource(src, opts);
    EXPECT_TRUE(cr.ok) << cr.diagnostics;
    auto model = timing::vax8600Model();
    auto res = timing::runScalar(*cr.program, model, 4'000'000'000ull);
    EXPECT_TRUE(res.ok) << res.error;
    return res.returnValue;
}

// ------------------------------------------------ LL5 size sweep

class Livermore5Sweep : public ::testing::TestWithParam<int>
{
};

TEST_P(Livermore5Sweep, ChecksumMatchesOracle)
{
    std::string src = programs::livermore5Source(GetParam());
    int64_t expect = oracle(src);
    EXPECT_EQ(wmValue(src), expect);
    EXPECT_EQ(scalarValue(src), expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Livermore5Sweep,
                         ::testing::Values(4, 5, 8, 16, 33, 64, 127, 256));

// ------------------------------------------------ degree sweep

class DegreeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DegreeSweep, ChecksumMatchesOracle)
{
    std::string src = programs::recurrenceDegreeSource(96, GetParam());
    int64_t expect = oracle(src);
    EXPECT_EQ(wmValue(src), expect);
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

// ------------------------------------------------ sim config sweep

struct SimCfgParam
{
    int latency;
    int fifoDepth;
    int ports;
    int queueDepth;
};

class SimConfigSweep : public ::testing::TestWithParam<SimCfgParam>
{
};

TEST_P(SimConfigSweep, ResultsAreConfigurationIndependent)
{
    auto p = GetParam();
    std::string src = programs::livermore5Source(48);
    int64_t expect = oracle(src);
    driver::CompileOptions opts;
    auto cr = driver::compileSource(src, opts);
    ASSERT_TRUE(cr.ok);
    wmsim::SimConfig cfg;
    cfg.memLatency = p.latency;
    cfg.dataFifoDepth = p.fifoDepth;
    cfg.memPorts = p.ports;
    cfg.instQueueDepth = p.queueDepth;
    cfg.maxCycles = 10'000'000ull;
    auto res = wmsim::simulate(*cr.program, cfg);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.returnValue, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SimConfigSweep,
    ::testing::Values(SimCfgParam{1, 2, 1, 1}, SimCfgParam{2, 4, 1, 2},
                      SimCfgParam{4, 8, 2, 8}, SimCfgParam{16, 4, 2, 4},
                      SimCfgParam{32, 16, 4, 16},
                      SimCfgParam{8, 2, 1, 2}));

TEST(SimDeterminism, SameProgramSameCycles)
{
    std::string src = programs::dotProductSource(300);
    driver::CompileOptions opts;
    auto cr = driver::compileSource(src, opts);
    ASSERT_TRUE(cr.ok);
    auto a = wmsim::simulate(*cr.program);
    auto b = wmsim::simulate(*cr.program);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.returnValue, b.returnValue);
}

// ------------------------------------------------ random programs

/** Tiny deterministic PRNG (no global state, reproducible). */
struct Rng
{
    uint64_t s;
    uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    int
    range(int lo, int hi)
    {
        return lo + static_cast<int>(next() % (hi - lo + 1));
    }
};

/** Generate a random integer expression over variables a..e. */
std::string
genExpr(Rng &rng, int depth)
{
    if (depth <= 0 || rng.range(0, 3) == 0) {
        if (rng.range(0, 1))
            return std::string(1, static_cast<char>('a' + rng.range(0, 4)));
        return std::to_string(rng.range(1, 99));
    }
    static const char *ops[] = {"+", "-", "*", "&", "|", "^", "<<"};
    const char *op = ops[rng.range(0, 6)];
    std::string l = genExpr(rng, depth - 1);
    std::string r = genExpr(rng, depth - 1);
    if (std::string(op) == "<<")
        r = std::to_string(rng.range(0, 5)); // bounded shifts
    return "(" + l + " " + op + " " + r + ")";
}

std::string
genProgram(uint64_t seed)
{
    Rng rng{seed * 2654435761u + 12345};
    std::string body;
    body += "    int a, b, c, d, e, s;\n";
    body += "    a = " + std::to_string(rng.range(-50, 50)) + ";\n";
    body += "    b = " + std::to_string(rng.range(-50, 50)) + ";\n";
    body += "    c = " + std::to_string(rng.range(1, 50)) + ";\n";
    body += "    d = " + std::to_string(rng.range(1, 50)) + ";\n";
    body += "    e = " + std::to_string(rng.range(-9, 9)) + ";\n";
    body += "    s = 0;\n";
    int stmts = rng.range(3, 9);
    for (int i = 0; i < stmts; ++i) {
        char dst = static_cast<char>('a' + rng.range(0, 4));
        body += strFormat("    %c = %s;\n", dst,
                          genExpr(rng, rng.range(1, 3)).c_str());
        if (rng.range(0, 2) == 0) {
            body += strFormat("    if (%c > %d)\n        s = s + %d;\n",
                              dst, rng.range(-20, 20), rng.range(1, 9));
        }
        body += strFormat("    s = s + %c;\n", dst);
    }
    body += "    return s & 65535;\n";
    return "int main(void) {\n" + body + "}\n";
}

class RandomProgramSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomProgramSweep, CompiledMatchesInterpreter)
{
    std::string src = genProgram(GetParam());
    int64_t expect = oracle(src);
    EXPECT_EQ(wmValue(src), expect) << src;
    EXPECT_EQ(scalarValue(src), expect) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep,
                         ::testing::Range<uint64_t>(1, 25));

} // namespace
