/**
 * @file
 * Unit tests for the classic optimizer phases.
 */

#include <gtest/gtest.h>

#include "cfg/liveness.h"
#include "opt/legal.h"
#include "opt/passes.h"
#include "rtl/machine.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

ExprPtr
vi(Function &fn)
{
    return fn.newVReg(DataType::I64);
}

Inst
retWith(const ExprPtr &reg)
{
    Inst r = makeReturn();
    r.extraUses.push_back(reg);
    return r;
}

int
countInsts(const Function &fn)
{
    return fn.instCount();
}

} // namespace

// ---------------------------------------------------------------- legal

TEST(Legal, WmOperandShapes)
{
    auto traits = wmTraits();
    EXPECT_TRUE(opt::fitsOperand(makeReg(RegFile::Int, 5, DataType::I64),
                                 traits));
    EXPECT_TRUE(opt::fitsOperand(makeConst(100), traits));
    EXPECT_FALSE(opt::fitsOperand(makeConst(1 << 20), traits));
    EXPECT_FALSE(opt::fitsOperand(makeSym("x"), traits));
}

TEST(Legal, WmDualOpShapes)
{
    auto traits = wmTraits();
    auto r1 = makeReg(RegFile::Int, 1, DataType::I64);
    auto r2 = makeReg(RegFile::Int, 2, DataType::I64);
    auto r3 = makeReg(RegFile::Int, 3, DataType::I64);
    // (r1 << 3) + r2 : the paper's canonical address computation
    auto dual = makeBinRaw(Op::Add,
                           makeBinRaw(Op::Shl, r1, makeConst(3),
                                      DataType::I64),
                           r2, DataType::I64);
    EXPECT_TRUE(opt::fitsAssignSrc(dual, traits));
    EXPECT_TRUE(opt::fitsAddr(dual, traits));
    // commuted dual: r3 + (r1*r2) is encodable by swapping
    auto commuted = makeBinRaw(Op::Add, r3,
                               makeBinRaw(Op::Mul, r1, r2, DataType::I64),
                               DataType::I64);
    EXPECT_TRUE(opt::fitsAssignSrc(commuted, traits));
    // non-commutative outer with inner on the right is NOT encodable
    auto bad = makeBinRaw(Op::Sub, r3,
                          makeBinRaw(Op::Mul, r1, r2, DataType::I64),
                          DataType::I64);
    EXPECT_FALSE(opt::fitsAssignSrc(bad, traits));
    // triple-deep trees are not single instructions
    auto deep = makeBinRaw(Op::Add,
                           makeBinRaw(Op::Add, dual, r3, DataType::I64),
                           r3, DataType::I64);
    EXPECT_FALSE(opt::fitsAssignSrc(deep, traits));
}

TEST(Legal, ScalarHasNoDualOp)
{
    auto traits = scalarTraits();
    auto r1 = makeReg(RegFile::Int, 1, DataType::I64);
    auto r2 = makeReg(RegFile::Int, 2, DataType::I64);
    auto dual = makeBinRaw(Op::Add,
                           makeBinRaw(Op::Shl, r1, makeConst(3),
                                      DataType::I64),
                           r2, DataType::I64);
    EXPECT_FALSE(opt::fitsAssignSrc(dual, traits));
    // ... but it IS a legal 68020 address mode (scaled index)
    EXPECT_TRUE(opt::fitsAddr(dual, traits));
    EXPECT_TRUE(opt::fitsAddr(makeSym("x"), traits));
}

TEST(Legal, CompareShapes)
{
    auto traits = wmTraits();
    auto r1 = makeReg(RegFile::Int, 1, DataType::I64);
    auto cmp = makeBinRaw(Op::Le,
                          makeBinRaw(Op::Sub, r1, makeConst(1),
                                     DataType::I64),
                          makeConst(0), DataType::I64);
    // paper Figure 7 line 1: r31 := (r21-1) <= 0
    EXPECT_TRUE(opt::fitsCompareSrc(cmp, traits));
    EXPECT_FALSE(opt::fitsCompareSrc(r1, traits)); // not relational
}

// -------------------------------------------------------------- combine

TEST(Combine, FoldsSingleUseDefIntoDualOp)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto t = vi(fn);
    auto a = makeReg(RegFile::Int, 4, DataType::I64);
    auto d = vi(fn);
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(t, makeBin(Op::Shl, a, makeConst(3))));
    b->insts.push_back(makeAssign(d, makeBin(Op::Add, t, a)));
    b->insts.push_back(makeAssign(ret, d));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    int before = countInsts(fn);
    int folded = opt::runCombine(fn, traits);
    EXPECT_GE(folded, 1);
    EXPECT_LT(countInsts(fn), before);
}

TEST(Combine, DoesNotFoldMultiUseDef)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto t = vi(fn);
    auto a = makeReg(RegFile::Int, 4, DataType::I64);
    auto d1 = vi(fn);
    auto d2 = vi(fn);
    b->insts.push_back(makeAssign(t, makeBin(Op::Shl, a, makeConst(3))));
    b->insts.push_back(makeAssign(d1, makeBin(Op::Add, t, a)));
    b->insts.push_back(makeAssign(d2, makeBin(Op::Sub, t, a)));
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(ret, makeBin(Op::Add, d1, d2)));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    opt::runCombine(fn, traits);
    // t has two uses: its def must survive (other folds may happen)
    ASSERT_FALSE(b->insts.empty());
    EXPECT_TRUE(b->insts[0].dst->isReg(t->regFile(), t->regIndex()));
    bool tUsed = false;
    for (const Inst &inst : b->insts)
        for (const auto &u : instUses(inst))
            if (u->isReg(t->regFile(), t->regIndex()))
                tUsed = true;
    EXPECT_TRUE(tUsed);
}

TEST(Combine, BlockedByInterveningRedefinition)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto t = vi(fn);
    auto a = makeReg(RegFile::Int, 4, DataType::I64);
    auto d = vi(fn);
    b->insts.push_back(makeAssign(t, makeBin(Op::Shl, a, makeConst(3))));
    // redefinition of the source register a between def and use
    b->insts.push_back(makeAssign(a, makeConst(0)));
    b->insts.push_back(makeAssign(d, makeBin(Op::Add, t, a)));
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(ret, d));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    opt::runCombine(fn, traits);
    // folding t's shl over the redefinition of a would change meaning:
    // t's definition must still be the first instruction
    ASSERT_FALSE(b->insts.empty());
    EXPECT_TRUE(b->insts[0].dst->isReg(t->regFile(), t->regIndex()));
    EXPECT_EQ(b->insts[0].src->op(), Op::Shl);
}

// ------------------------------------------------------------- copyprop

TEST(CopyProp, PropagatesRegisterCopies)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto a = vi(fn);
    auto c = vi(fn);
    auto d = vi(fn);
    b->insts.push_back(makeAssign(a, makeConst(3)));
    b->insts.push_back(makeAssign(c, a));
    b->insts.push_back(makeAssign(d, makeBin(Op::Add, c, c)));
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(ret, d));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    EXPECT_GT(opt::runCopyPropagate(fn, traits), 0);
    // the add now reads `a` (or the constant), not `c`
    EXPECT_FALSE(usesReg(b->insts[2].src, c->regFile(), c->regIndex()));
}

TEST(CopyProp, InvalidatedByRedefinition)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto a = vi(fn);
    auto c = vi(fn);
    b->insts.push_back(makeAssign(a, makeConst(3)));
    b->insts.push_back(makeAssign(c, a));
    b->insts.push_back(makeAssign(a, makeConst(9))); // kills the copy
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(ret, makeBin(Op::Add, c, makeConst(0))));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    opt::runCopyPropagate(fn, traits);
    // c must NOT be replaced by a after a was redefined
    EXPECT_FALSE(usesReg(b->insts[3].src, a->regFile(), a->regIndex()));
}

// ------------------------------------------------------------------ dce

TEST(Dce, RemovesDeadAssign)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto dead = vi(fn);
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(dead, makeConst(3)));
    b->insts.push_back(makeAssign(ret, makeConst(0)));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    EXPECT_EQ(opt::runDeadCodeElim(fn, traits), 1);
    EXPECT_EQ(b->insts.size(), 2u);
}

TEST(Dce, RemovesDeadChains)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto a = vi(fn), c = vi(fn);
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(a, makeConst(3)));
    b->insts.push_back(makeAssign(c, makeBin(Op::Add, a, makeConst(1))));
    b->insts.push_back(makeAssign(ret, makeConst(0)));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    EXPECT_EQ(opt::runDeadCodeElim(fn, traits), 2);
}

TEST(Dce, KeepsStoresAndFifoOperations)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto addr = makeReg(RegFile::Int, 4, DataType::I64);
    auto f0 = makeReg(RegFile::Flt, 0, DataType::F64);
    auto v = makeReg(RegFile::Flt, 20, DataType::F64);
    // enqueue (writes FIFO): must never be deleted even though no
    // visible consumer exists
    b->insts.push_back(makeAssign(f0, v));
    // dequeue (reads FIFO): likewise
    b->insts.push_back(makeAssign(v, f0));
    b->insts.push_back(makeStore(addr, v, DataType::F64));
    b->insts.push_back(makeReturn());
    fn.recomputeCfg();

    opt::runDeadCodeElim(fn, traits);
    EXPECT_EQ(b->insts.size(), 4u);
}

TEST(Dce, RemovesSelfCopy)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto a = makeReg(RegFile::Int, 4, DataType::I64);
    b->insts.push_back(makeAssign(a, a));
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(ret, a));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    EXPECT_GE(opt::runDeadCodeElim(fn, traits), 1);
    EXPECT_EQ(b->insts.size(), 2u);
}

TEST(Dce, UnconsumedCompareIsDeleted)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto a = makeReg(RegFile::Int, 4, DataType::I64);
    b->insts.push_back(makeAssign(makeReg(RegFile::CC, 0, DataType::I64),
                                  makeBin(Op::Lt, a, makeConst(4))));
    b->insts.push_back(makeReturn());
    fn.recomputeCfg();
    EXPECT_EQ(opt::runDeadCodeElim(fn, traits), 1);
}

// ------------------------------------------------------------ branchopt

TEST(BranchOpt, ThreadsJumpChains)
{
    Function fn("f");
    Block *b0 = fn.addBlock("entry");
    Block *b1 = fn.addBlock("hop");
    Block *b2 = fn.addBlock("end");
    b0->insts.push_back(makeJump("hop"));
    b1->insts.push_back(makeJump("end"));
    b2->insts.push_back(makeReturn());
    fn.recomputeCfg();

    EXPECT_GT(opt::runBranchOpt(fn), 0);
    // everything collapses to entry -> return
    EXPECT_EQ(fn.blocks().size(), 1u);
    EXPECT_EQ(fn.entry()->insts.back().kind, InstKind::Return);
}

TEST(BranchOpt, RemovesJumpToNext)
{
    Function fn("f");
    Block *b0 = fn.addBlock("entry");
    Block *b1 = fn.addBlock("next");
    b0->insts.push_back(makeJump("next"));
    b1->insts.push_back(makeReturn());
    fn.recomputeCfg();

    EXPECT_GT(opt::runBranchOpt(fn), 0);
    EXPECT_EQ(fn.blocks().size(), 1u);
}

// ------------------------------------------------------------------ cse

TEST(Cse, ReusesAddressComputation)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto i = makeReg(RegFile::Int, 4, DataType::I64);
    auto a = vi(fn), c = vi(fn);
    b->insts.push_back(makeAssign(a, makeBin(Op::Shl, i, makeConst(3))));
    b->insts.push_back(makeAssign(c, makeBin(Op::Shl, i, makeConst(3))));
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(ret, makeBin(Op::Add, a, c)));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    EXPECT_EQ(opt::runLocalCSE(fn, traits), 1);
    // the second computation became a copy of the first
    EXPECT_TRUE(b->insts[1].src->isReg());
}

TEST(Cse, InvalidatedByOperandRedefinition)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto i = makeReg(RegFile::Int, 4, DataType::I64);
    auto a = vi(fn), c = vi(fn);
    b->insts.push_back(makeAssign(a, makeBin(Op::Shl, i, makeConst(3))));
    b->insts.push_back(makeAssign(i, makeBin(Op::Add, i, makeConst(1))));
    b->insts.push_back(makeAssign(c, makeBin(Op::Shl, i, makeConst(3))));
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(ret, makeBin(Op::Add, a, c)));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    EXPECT_EQ(opt::runLocalCSE(fn, traits), 0);
}

TEST(Cse, RedundantLoadEliminated)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto p = makeReg(RegFile::Int, 4, DataType::I64);
    auto a = vi(fn), c = vi(fn);
    b->insts.push_back(makeLoad(a, p, DataType::I64));
    b->insts.push_back(makeLoad(c, p, DataType::I64));
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(ret, makeBin(Op::Add, a, c)));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    EXPECT_EQ(opt::runLocalCSE(fn, traits), 1);
    EXPECT_EQ(b->insts[1].kind, InstKind::Assign);
}

TEST(Cse, LoadNotReusedAcrossStore)
{
    auto traits = wmTraits();
    Function fn("f");
    Block *b = fn.addBlock("entry");
    auto p = makeReg(RegFile::Int, 4, DataType::I64);
    auto q = makeReg(RegFile::Int, 5, DataType::I64);
    auto a = vi(fn), c = vi(fn);
    b->insts.push_back(makeLoad(a, p, DataType::I64));
    b->insts.push_back(makeStore(q, a, DataType::I64)); // may alias p
    b->insts.push_back(makeLoad(c, p, DataType::I64));
    auto ret = makeReg(RegFile::Int, 2, DataType::I64);
    b->insts.push_back(makeAssign(ret, makeBin(Op::Add, a, c)));
    b->insts.push_back(retWith(ret));
    fn.recomputeCfg();

    // Conservative: the second load must stay (q may alias p). The
    // store-to-load forwarding table may still rewrite it through q's
    // stored value only if addresses match structurally — they don't.
    opt::runLocalCSE(fn, traits);
    EXPECT_EQ(b->insts[2].kind, InstKind::Load);
}
