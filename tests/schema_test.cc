/**
 * @file
 * Schema audit: every machine-readable JSON document the toolchain
 * emits must parse, be a JSON object, and carry schema_version 1.
 *
 * One parametrized test covers all emitters so adding a document kind
 * without versioning it (or bumping a version without updating the
 * others deliberately) fails here, not in a downstream consumer.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/common.h"
#include "driver/compiler.h"
#include "fuzz/batch_campaign.h"
#include "fuzz/campaign.h"
#include "serve/batch.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/timeseries.h"
#include "report/manifest.h"
#include "timing/scalar_sim.h"
#include "wmsim/sim.h"

using namespace wmstream;

namespace {

const char kProgram[] = R"(
int n; double a[64]; double b[64];
int main() {
    int i;
    n = 64;
    for (i = 0; i < n; i = i + 1) a[i] = i * 2.0;
    for (i = 0; i < n; i = i + 1) b[i] = a[i] + 1.0;
    return b[63];
}
)";

// The stride walks the store address out of the simulator's memory
// image after a few iterations, so the run faults mid-flight.
const char kFaultingProgram[] = R"(
int a[4];
int main() { int i; for (i = 0; i < 100000; i = i + 1)
                 a[i * 1000000] = i;
             return 0; }
)";

struct SchemaCase
{
    std::string name; ///< emitter under audit (test parameter name)
    std::string json; ///< the document it produced
};

/** Produce one document of every kind the toolchain can emit. */
std::vector<SchemaCase>
allDocuments()
{
    std::vector<SchemaCase> cases;
    auto emit = [&cases](const std::string &name, auto &&writer) {
        obs::JsonWriter w;
        writer(w);
        cases.push_back({name, w.str()});
    };

    // WM pipeline: compile + sample + simulate once, reuse everywhere.
    // FIFO-depth inference on, so the fifo_requirements section of
    // the stats/manifest documents is part of the audit.
    driver::CompileOptions wmOpts;
    wmOpts.inferFifoDepth = true;
    auto wm = driver::compileSource(kProgram, wmOpts);
    if (!wm.ok) {
        ADD_FAILURE() << "WM compile failed:\n" << wm.diagnostics;
        return cases;
    }
    obs::TimeSeries ts(wmsim::simTimeSeriesChannels(), 64);
    wmsim::SimConfig cfg;
    cfg.collectOccupancy = true;
    cfg.timeseries = &ts;
    auto res = wmsim::simulate(*wm.program, cfg);
    if (!res.ok) {
        ADD_FAILURE() << "simulation failed: " << res.error;
        return cases;
    }

    emit("remarks", [&](obs::JsonWriter &w) {
        wm.remarks.writeJson(w, "schema.c");
    });
    emit("timeseries", [&](obs::JsonWriter &w) { ts.writeJson(w); });
    emit("wm_stats", [&](obs::JsonWriter &w) {
        report::writeWmStatsDoc(w, "schema.c", wm, cfg, res);
    });

    report::RunManifest man;
    man.toolVersion = "test";
    man.source = "schema.c";
    man.target = "wm";
    man.host.compileWallMs = 1.0;
    man.host.simWallMs = 1.0;
    man.host.simCycles = res.stats.cycles;
    man.compiled = &wm;
    man.simConfig = &cfg;
    man.simResult = &res;
    man.timeseries = &ts;
    emit("run_manifest",
         [&](obs::JsonWriter &w) { man.writeJson(w); });

    // Faulted-run documents.
    auto bad = driver::compileSource(kFaultingProgram, wmOpts);
    if (bad.ok) {
        auto badRes = wmsim::simulate(*bad.program);
        EXPECT_FALSE(badRes.ok);
        emit("wm_fault_stats", [&](obs::JsonWriter &w) {
            report::writeWmFaultDoc(w, "schema.c", badRes);
        });
        emit("fault_report", [&](obs::JsonWriter &w) {
            badRes.faultReport.writeJson(w);
        });
    } else {
        ADD_FAILURE() << "faulting-program compile failed:\n"
                      << bad.diagnostics;
    }

    // Scalar (68020) target.
    driver::CompileOptions scalarOpts;
    scalarOpts.target = rtl::MachineKind::Scalar;
    auto scalar = driver::compileSource(kProgram, scalarOpts);
    if (scalar.ok) {
        auto model = timing::sun3_280Model();
        auto sres = timing::runScalar(*scalar.program, model);
        EXPECT_TRUE(sres.ok) << sres.error;
        emit("scalar_stats", [&](obs::JsonWriter &w) {
            report::writeScalarStatsDoc(w, "schema.c", model.name,
                                        scalar, sres);
        });
    } else {
        ADD_FAILURE() << "scalar compile failed:\n"
                      << scalar.diagnostics;
    }

    // Fuzz-campaign summary (empty campaign is a valid document).
    emit("fuzz_campaign", [&](obs::JsonWriter &w) {
        fuzz::writeCampaignJson(w, fuzz::CampaignOptions{},
                                fuzz::CampaignResult{});
    });

    // Batch compile report (wmc --batch-report).
    serve::TuJob tu;
    tu.id = "schema.c";
    tu.source = kProgram;
    serve::BatchOptions batchOpts;
    batchOpts.base.verify = driver::VerifyMode::Each;
    batchOpts.backoffBaseMs = 0;
    serve::BatchReport batchReport = serve::runBatch({tu}, batchOpts);
    emit("batch_report",
         [&](obs::JsonWriter &w) { batchReport.writeJson(w); });

    // Batch-campaign summary (embeds a batch report).
    emit("batch_campaign", [&](obs::JsonWriter &w) {
        fuzz::BatchCampaignResult empty;
        empty.report = batchReport;
        fuzz::writeBatchCampaignJson(w, fuzz::BatchCampaignOptions{},
                                     empty);
    });

    // Bench harness report (bench/common.h).
    {
        wsbench::JsonReport report;
        report.row("r0").num("cycles", 42.0).sim(res.stats);
        cases.push_back({"bench_report", report.str("schema_test")});
    }

    return cases;
}

class SchemaAudit : public testing::TestWithParam<SchemaCase>
{
};

TEST_P(SchemaAudit, ParsesAsVersionedObject)
{
    const SchemaCase &c = GetParam();
    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::parseJson(c.json, doc, err))
        << c.name << ": " << err;
    ASSERT_TRUE(doc.isObject()) << c.name;
    EXPECT_EQ(doc.getInt("schema_version", -1), 1) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllEmitters, SchemaAudit, testing::ValuesIn(allDocuments()),
    [](const testing::TestParamInfo<SchemaCase> &info) {
        return info.param.name;
    });

// The audit must actually cover every emitter: if a document failed
// to build, allDocuments() already ADD_FAILUREd; this pins the count
// so silently dropping an emitter from the list is caught too.
TEST(SchemaAuditCoverage, CoversAllKnownEmitters)
{
    EXPECT_EQ(allDocuments().size(), 11u);
}

} // namespace

