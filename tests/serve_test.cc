/**
 * @file
 * Tests for the fault-isolated batch compile runner (src/serve).
 *
 * The contract under test is the acceptance criterion of the batch
 * service: one poisoned TU must never leak into its neighbours.
 * Healthy TUs compiled in a batch must be bit-identical to solo
 * compiles, poisoned TUs must be quarantined with typed records, the
 * degradation ladder must demote exactly as far as needed and no
 * further, and the report must be deterministic for any worker count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "obs/json.h"
#include "programs/programs.h"
#include "serve/batch.h"
#include "wm/printer.h"

using namespace wmstream;
using serve::BatchOptions;
using serve::BatchReport;
using serve::FailureKind;
using serve::LadderLevel;
using serve::TuJob;
using serve::TuStatus;

namespace {

/** A healthy, streamable TU (two input streams, one reduction). */
std::string
healthySource(int n)
{
    return programs::dotProductSource(n);
}

TuJob
job(const std::string &id, const std::string &source)
{
    TuJob j;
    j.id = id;
    j.source = source;
    return j;
}

/** Batch options tuned for tests: verify each, no backoff sleeps. */
BatchOptions
testOptions()
{
    BatchOptions bo;
    bo.base.verify = driver::VerifyMode::Each;
    bo.backoffBaseMs = 0;
    return bo;
}

/** Hash of a solo compile, via the same printer the batch uses. */
uint64_t
soloHash(const std::string &source)
{
    driver::CompileOptions opts;
    opts.verify = driver::VerifyMode::Each;
    auto cr = driver::compileSource(source, opts);
    EXPECT_TRUE(cr.ok);
    return serve::artifactHash(wm::printProgram(*cr.program));
}

} // anonymous namespace

TEST(ServeLadder, NamesAndOptionDemotions)
{
    EXPECT_STREQ(serve::ladderLevelName(LadderLevel::Full), "full");
    EXPECT_STREQ(serve::ladderLevelName(LadderLevel::NoStreaming),
                 "no-streaming");
    EXPECT_STREQ(serve::ladderLevelName(LadderLevel::ScalarOnly),
                 "scalar-only");

    driver::CompileOptions base;
    base.vectorize = true;
    auto full = serve::applyLadder(base, LadderLevel::Full);
    EXPECT_TRUE(full.streaming);
    EXPECT_TRUE(full.recurrence);

    auto noStream = serve::applyLadder(base, LadderLevel::NoStreaming);
    EXPECT_FALSE(noStream.streaming);
    EXPECT_FALSE(noStream.vectorize);
    EXPECT_TRUE(noStream.recurrence);

    auto scalar = serve::applyLadder(base, LadderLevel::ScalarOnly);
    EXPECT_FALSE(scalar.streaming);
    EXPECT_FALSE(scalar.vectorize);
    EXPECT_FALSE(scalar.recurrence);
}

TEST(ServeFailure, TaxonomyClassification)
{
    // Transient: retried at the same rung.
    EXPECT_TRUE(serve::failureIsTransient(FailureKind::Timeout));
    EXPECT_FALSE(serve::failureIsTransient(FailureKind::Panic));

    // Degradable: demoted one rung.
    EXPECT_TRUE(serve::failureIsDegradable(FailureKind::Panic));
    EXPECT_TRUE(serve::failureIsDegradable(FailureKind::VerifyError));
    EXPECT_TRUE(serve::failureIsDegradable(FailureKind::RtlBudget));

    // Non-degradable: the user's bug; no pipeline change helps.
    EXPECT_FALSE(serve::failureIsDegradable(FailureKind::UserError));
    EXPECT_FALSE(serve::failureIsTransient(FailureKind::UserError));

    EXPECT_STREQ(serve::failureKindName(FailureKind::VerifyError),
                 "verify_error");
    EXPECT_STREQ(serve::tuStatusName(TuStatus::OkDegraded), "ok_degraded");
}

TEST(ServeHash, Fnv1a64KnownValues)
{
    // FNV-1a 64 reference vectors.
    EXPECT_EQ(serve::artifactHash(""), 14695981039346656037ull);
    EXPECT_EQ(serve::artifactHash("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_NE(serve::artifactHash("move r1"), serve::artifactHash("move r2"));
}

TEST(ServeBatch, IsolatesPanicTuAndKeepsNeighboursBitIdentical)
{
    std::vector<TuJob> jobs;
    jobs.push_back(job("healthy-a.c", healthySource(16)));
    TuJob poisoned = job("poisoned.c", healthySource(16));
    poisoned.injectPanic = true;
    jobs.push_back(poisoned);
    jobs.push_back(job("healthy-b.c", healthySource(32)));

    BatchOptions bo = testOptions();
    bo.jobs = 3;
    bo.keepArtifacts = true;
    BatchReport report = serve::runBatch(jobs, bo);

    ASSERT_EQ(report.tus.size(), 3u);
    EXPECT_EQ(report.total, 3);
    EXPECT_EQ(report.ok, 2);
    EXPECT_EQ(report.failed, 1);
    EXPECT_EQ(report.quarantined(), 1);
    EXPECT_FALSE(report.aborted);

    // Records sit in manifest order regardless of completion order.
    EXPECT_EQ(report.tus[0].id, "healthy-a.c");
    EXPECT_EQ(report.tus[1].id, "poisoned.c");
    EXPECT_EQ(report.tus[2].id, "healthy-b.c");

    // The poisoned TU is quarantined with a typed panic record; the
    // ladder tried every rung (the injected panic fires at all of
    // them) before giving up.
    const auto &bad = report.tus[1];
    EXPECT_EQ(bad.status, TuStatus::Failed);
    EXPECT_EQ(bad.failure.kind, FailureKind::Panic);
    EXPECT_EQ(bad.failure.signature.rfind("panic@", 0), 0u)
        << bad.failure.signature;
    EXPECT_EQ(bad.level, LadderLevel::ScalarOnly);
    EXPECT_EQ(bad.attempts, 3);
    EXPECT_EQ(bad.artifactHash, 0u);

    // The acceptance criterion: healthy neighbours are bit-identical
    // to solo compiles of the same source.
    EXPECT_EQ(report.tus[0].status, TuStatus::Ok);
    EXPECT_EQ(report.tus[2].status, TuStatus::Ok);
    EXPECT_EQ(report.tus[0].artifactHash, soloHash(healthySource(16)));
    EXPECT_EQ(report.tus[2].artifactHash, soloHash(healthySource(32)));
    EXPECT_EQ(serve::artifactHash(report.tus[0].artifact),
              report.tus[0].artifactHash);
}

TEST(ServeBatch, DeadlineExpiryYieldsTimeoutRecord)
{
    TuJob j = job("stall.c", healthySource(16));
    BatchOptions bo = testOptions();
    bo.base.testStallMs = 5000; // stalls at the first checkpoint...
    bo.tuTimeoutMs = 30;        // ...far past the deadline
    bo.maxRetries = 1;
    bo.watchdogPollMs = 1;
    BatchReport report = serve::runBatch({j}, bo);

    ASSERT_EQ(report.tus.size(), 1u);
    const auto &rec = report.tus[0];
    EXPECT_EQ(rec.status, TuStatus::Timeout);
    EXPECT_EQ(rec.failure.kind, FailureKind::Timeout);
    EXPECT_EQ(rec.failure.signature, "deadline");
    // Transient: retried at the same rung, never demoted.
    EXPECT_EQ(rec.level, LadderLevel::Full);
    EXPECT_EQ(rec.attempts, 2); // initial + maxRetries
    EXPECT_EQ(rec.degradation, "");
    ASSERT_EQ(rec.trail.size(), 2u);
    for (const auto &a : rec.trail) {
        EXPECT_EQ(a.outcome, FailureKind::Timeout);
        EXPECT_EQ(a.level, LadderLevel::Full);
    }
    EXPECT_EQ(report.timeouts, 1);
    EXPECT_EQ(report.retries, 1);
    EXPECT_EQ(report.quarantined(), 1);
}

TEST(ServeBatch, LadderDemotesStreamingExactlyOnce)
{
    // The injected verifier bug drops a non-steering stream dequeue,
    // so the TU fails verify at the full level but compiles clean one
    // rung down where no streams exist. The ladder must demote once
    // and stop, not fall through to scalar-only.
    TuJob j = job("verify-poisoned.c", healthySource(16));
    j.injectVerifierBug = true;
    BatchReport report = serve::runBatch({j}, testOptions());

    ASSERT_EQ(report.tus.size(), 1u);
    const auto &rec = report.tus[0];
    ASSERT_EQ(rec.status, TuStatus::OkDegraded);
    EXPECT_EQ(rec.level, LadderLevel::NoStreaming);
    EXPECT_EQ(rec.degradation, "degraded-no-streaming");
    EXPECT_EQ(rec.attempts, 2);
    ASSERT_EQ(rec.trail.size(), 2u);
    EXPECT_EQ(rec.trail[0].outcome, FailureKind::VerifyError);
    EXPECT_EQ(rec.trail[0].level, LadderLevel::Full);
    EXPECT_EQ(rec.trail[1].outcome, FailureKind::None);
    EXPECT_EQ(rec.trail[1].level, LadderLevel::NoStreaming);
    EXPECT_NE(rec.artifactHash, 0u);
    EXPECT_EQ(report.okDegraded, 1);
    EXPECT_EQ(report.demotions, 1);
    EXPECT_EQ(report.quarantined(), 1);

    // The demoted artifact matches a solo compile at the same rung.
    driver::CompileOptions demoted =
        serve::applyLadder(testOptions().base, LadderLevel::NoStreaming);
    auto cr = driver::compileSource(healthySource(16), demoted);
    ASSERT_TRUE(cr.ok);
    EXPECT_EQ(rec.artifactHash,
              serve::artifactHash(wm::printProgram(*cr.program)));
}

TEST(ServeBatch, RtlBudgetTripFailsDeterministically)
{
    TuJob j = job("over-budget.c", healthySource(16));
    BatchOptions bo = testOptions();
    bo.base.maxRtlInsts = 1; // trips at the first checkpoint, every rung
    BatchReport report = serve::runBatch({j}, bo);

    ASSERT_EQ(report.tus.size(), 1u);
    const auto &rec = report.tus[0];
    EXPECT_EQ(rec.status, TuStatus::Failed);
    EXPECT_EQ(rec.failure.kind, FailureKind::RtlBudget);
    EXPECT_EQ(rec.failure.signature, "rtl-budget");
    // Degradable: walked the whole ladder before failing hard.
    EXPECT_EQ(rec.level, LadderLevel::ScalarOnly);
    EXPECT_EQ(rec.attempts, 3);
}

TEST(ServeBatch, UserErrorIsNotRetriedOrDemoted)
{
    TuJob j = job("broken.c", "int main() { return undeclared; }");
    BatchReport report = serve::runBatch({j}, testOptions());

    ASSERT_EQ(report.tus.size(), 1u);
    const auto &rec = report.tus[0];
    EXPECT_EQ(rec.status, TuStatus::UserError);
    EXPECT_EQ(rec.failure.kind, FailureKind::UserError);
    EXPECT_EQ(rec.attempts, 1); // deterministic, non-degradable: one shot
    EXPECT_EQ(rec.level, LadderLevel::Full);
    EXPECT_EQ(report.userErrors, 1);
    // User errors are the user's fault, not quarantine material.
    EXPECT_EQ(report.quarantined(), 0);
}

TEST(ServeBatch, LoadErrorBecomesUserErrorRecord)
{
    TuJob j;
    j.id = "missing.c";
    j.loadError = "open failed";
    BatchReport report = serve::runBatch({j}, testOptions());
    ASSERT_EQ(report.tus.size(), 1u);
    EXPECT_EQ(report.tus[0].status, TuStatus::UserError);
    EXPECT_EQ(report.tus[0].failure.signature, "load-error");
    EXPECT_EQ(report.tus[0].attempts, 0);
}

TEST(ServeBatch, ReportDeterministicAcrossWorkerCounts)
{
    std::vector<TuJob> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back(job("tu-" + std::to_string(i) + ".c",
                           healthySource(8 + 8 * i)));
    TuJob poisoned = job("tu-poisoned.c", healthySource(16));
    poisoned.injectPanic = true;
    jobs.insert(jobs.begin() + 3, poisoned);

    BatchOptions solo = testOptions();
    solo.jobs = 1;
    BatchOptions wide = testOptions();
    wide.jobs = 8;
    BatchReport a = serve::runBatch(jobs, solo);
    BatchReport b = serve::runBatch(jobs, wide);

    ASSERT_EQ(a.tus.size(), jobs.size());
    ASSERT_EQ(b.tus.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(a.tus[i].id, jobs[i].id);
        EXPECT_EQ(b.tus[i].id, a.tus[i].id);
        EXPECT_EQ(b.tus[i].status, a.tus[i].status);
        EXPECT_EQ(b.tus[i].attempts, a.tus[i].attempts);
        EXPECT_EQ(b.tus[i].level, a.tus[i].level);
        EXPECT_EQ(b.tus[i].degradation, a.tus[i].degradation);
        EXPECT_EQ(b.tus[i].artifactHash, a.tus[i].artifactHash);
        EXPECT_EQ(b.tus[i].failure.signature, a.tus[i].failure.signature);
    }
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.demotions, b.demotions);
    EXPECT_EQ(a.quarantined(), b.quarantined());
}

TEST(ServeBatch, FailFastAbortsAndMarksRemainderSkipped)
{
    std::vector<TuJob> jobs;
    TuJob poisoned = job("poisoned.c", healthySource(16));
    poisoned.injectPanic = true;
    jobs.push_back(poisoned);
    for (int i = 0; i < 6; ++i)
        jobs.push_back(job("tu-" + std::to_string(i) + ".c",
                           healthySource(16)));

    BatchOptions bo = testOptions();
    bo.jobs = 1; // deterministic: the poisoned TU fails before any other runs
    bo.failFast = true;
    BatchReport report = serve::runBatch(jobs, bo);

    EXPECT_TRUE(report.aborted);
    EXPECT_EQ(report.failed, 1);
    EXPECT_GT(report.skipped, 0);
    EXPECT_EQ(report.tus[0].status, TuStatus::Failed);
    int skipped = 0;
    for (const auto &rec : report.tus)
        if (rec.status == TuStatus::Skipped) {
            ++skipped;
            EXPECT_EQ(rec.attempts, 0);
        }
    EXPECT_EQ(skipped, report.skipped);
    EXPECT_EQ(report.ok + report.failed + report.skipped, report.total);
}

TEST(ServeBatch, ManifestParsingResolvesPathsAndPoisonTokens)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() /
                   ("ws_serve_test_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    std::ofstream(dir / "one.c") << healthySource(8);
    std::ofstream(dir / "two.c") << healthySource(16);
    std::ofstream(dir / "MANIFEST")
        << "# comment line\n"
        << "\n"
        << "one.c\n"
        << "two.c inject-panic\n"
        << "missing.c\n";

    std::vector<TuJob> jobs;
    std::string error;
    ASSERT_TRUE(serve::loadManifest((dir / "MANIFEST").string(), jobs, error))
        << error;
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_EQ(jobs[0].source, healthySource(8));
    EXPECT_TRUE(jobs[0].loadError.empty());
    EXPECT_FALSE(jobs[0].injectPanic);
    EXPECT_TRUE(jobs[1].injectPanic);
    EXPECT_FALSE(jobs[2].loadError.empty()); // per-TU record, not a load fail

    std::vector<TuJob> none;
    EXPECT_FALSE(serve::loadManifest((dir / "ABSENT").string(), none, error));
    EXPECT_FALSE(error.empty());
    fs::remove_all(dir);
}

TEST(ServeBatch, ReportJsonCarriesSchemaAndCounters)
{
    TuJob poisoned = job("poisoned.c", healthySource(16));
    poisoned.injectPanic = true;
    BatchReport report =
        serve::runBatch({job("ok.c", healthySource(8)), poisoned},
                        testOptions());

    obs::JsonWriter w;
    report.writeJson(w);
    const std::string &json = w.str();
    EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"wmc-batch-report\""), std::string::npos);
    EXPECT_NE(json.find("\"quarantined\":1"), std::string::npos);
    EXPECT_NE(json.find("\"panic@"), std::string::npos);
    EXPECT_NE(json.find("\"tus\""), std::string::npos);

    std::string summary = report.summaryText();
    EXPECT_NE(summary.find("2 TUs"), std::string::npos);
    EXPECT_NE(summary.find("poisoned.c"), std::string::npos);
}
