/**
 * @file
 * Tests for the memory-reference partitions (paper Steps 1-3) and the
 * recurrence detection/optimization algorithm (Step 4).
 */

#include <gtest/gtest.h>

#include "cfg/dominators.h"
#include "cfg/loops.h"
#include "driver/compiler.h"
#include "expand/expander.h"
#include "frontend/parser.h"
#include "opt/indvars.h"
#include "opt/passes.h"
#include "programs/programs.h"
#include "recurrence/partitions.h"
#include "recurrence/recurrence.h"
#include "wmsim/sim.h"

using namespace wmstream;
using namespace wmstream::rtl;

namespace {

/** Compile up to (but not including) the recurrence pass. */
std::unique_ptr<Program>
prepare(const std::string &src, MachineKind kind = MachineKind::WM)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str();
    auto prog = std::make_unique<Program>();
    auto traits = kind == MachineKind::WM ? wmTraits() : scalarTraits();
    expand::expandUnit(*unit, traits, *prog);
    for (auto &fn : prog->functions())
        opt::runCleanupPipeline(*fn, traits, prog.get());
    return prog;
}

/** Find the innermost loop whose blocks contain a given memory symbol
 *  reference (by scanning partition dumps); here we just take the loop
 *  with the most memory references. */
cfg::Loop *
busiestLoop(Function &, cfg::LoopInfo &li)
{
    cfg::Loop *best = nullptr;
    int bestRefs = -1;
    for (auto &loop : li.loops()) {
        int refs = 0;
        for (Block *b : loop.blocks)
            for (const Inst &inst : b->insts)
                if (inst.kind == InstKind::Load ||
                        inst.kind == InstKind::Store)
                    ++refs;
        if (refs > bestRefs) {
            bestRefs = refs;
            best = &loop;
        }
    }
    return best;
}

} // namespace

TEST(Partitions, Livermore5HasThreePartitions)
{
    // The paper's running example: X = {read x[i-1], write x[i]},
    // Y = {read y[i]}, Z = {read z[i]}, all with cee 8.
    auto prog = prepare(programs::livermore5Source(64));
    Function *fn = prog->findFunction("main");
    auto traits = wmTraits();
    fn->recomputeCfg();
    cfg::DominatorTree dt(*fn);
    cfg::LoopInfo li(*fn, dt);
    cfg::Loop *loop = busiestLoop(*fn, li);
    ASSERT_TRUE(loop != nullptr);

    opt::IndVarAnalysis ivs(*fn, *loop, dt, traits);
    auto parts = recurrence::buildPartitions(*fn, *loop, dt, ivs, traits);

    const recurrence::Partition *px = nullptr, *py = nullptr,
                                *pz = nullptr;
    for (const auto &p : parts.parts) {
        if (p.key == "_x")
            px = &p;
        if (p.key == "_y")
            py = &p;
        if (p.key == "_z")
            pz = &p;
    }
    ASSERT_TRUE(px && py && pz) << parts.str();

    // X: one read at relative offset -8 and one write at 0, cee 8.
    ASSERT_EQ(px->refs.size(), 2u) << px->str();
    EXPECT_TRUE(px->safe);
    const recurrence::MemRef *read = nullptr, *write = nullptr;
    for (const auto &r : px->refs)
        (r.isWrite ? write : read) = &r;
    ASSERT_TRUE(read && write);
    EXPECT_EQ(read->cee, 8);
    EXPECT_EQ(write->cee, 8);
    EXPECT_EQ(write->roffset - read->roffset, 8);

    // Y and Z: single reads.
    EXPECT_EQ(py->refs.size(), 1u);
    EXPECT_FALSE(py->refs[0].isWrite);
    EXPECT_EQ(pz->refs.size(), 1u);
    EXPECT_TRUE(py->safe && pz->safe);
}

TEST(Partitions, PaperNotationRendering)
{
    recurrence::MemRef ref;
    ref.lno = 14;
    ref.isWrite = false;
    ref.analyzable = true;
    ref.cee = 8;
    ref.roffset = -8;
    opt::BasicIV iv;
    iv.reg = makeReg(RegFile::Int, 22, DataType::I64);
    iv.step = 1;
    ref.iv = &iv;
    ref.dee.valid = true;
    ref.dee.baseKind = opt::LinForm::Base::Sym;
    ref.dee.sym = "x";
    ref.dee.offset = -8;
    EXPECT_EQ(ref.str(), "(14,r,r22+,8,_x-8,-8)");
}

TEST(Recurrence, FiresOnLivermore5)
{
    auto prog = prepare(programs::livermore5Source(64));
    Function *fn = prog->findFunction("main");
    auto report = recurrence::runRecurrenceOpt(*fn, wmTraits());
    EXPECT_GE(report.recurrencesOptimized, 1);
    EXPECT_GE(report.loadsDeleted, 1);
    EXPECT_EQ(report.maxDegree, 1); // x[i-1]: first-order recurrence
}

TEST(Recurrence, DegreeTwo)
{
    auto prog = prepare(programs::recurrenceDegreeSource(64, 2));
    Function *fn = prog->findFunction("main");
    auto report = recurrence::runRecurrenceOpt(*fn, wmTraits());
    EXPECT_GE(report.recurrencesOptimized, 1);
    EXPECT_EQ(report.maxDegree, 2);
}

TEST(Recurrence, RespectsRegisterBudget)
{
    auto prog = prepare(programs::recurrenceDegreeSource(64, 5));
    Function *fn = prog->findFunction("main");
    auto report = recurrence::runRecurrenceOpt(*fn, wmTraits(),
                                               /*maxDegree=*/4);
    EXPECT_EQ(report.recurrencesOptimized, 0);
}

TEST(Recurrence, SkipsInterleavedNonRecurrence)
{
    // write x[2i], read x[2i-8 bytes... delta not a multiple of the
    // 16-byte stride: the cells never coincide, nothing to optimize.
    const char *src = R"(
int n = 32;
double x[70];
int main(void) {
    int i;
    double s;
    for (i = 1; i < n; i++)
        x[2 * i] = x[2 * i - 1] + 1.0;
    s = 0.0;
    for (i = 0; i < 2 * n; i++)
        s = s + x[i];
    return s;
}
)";
    auto prog = prepare(src);
    Function *fn = prog->findFunction("main");
    auto report = recurrence::runRecurrenceOpt(*fn, wmTraits());
    EXPECT_EQ(report.recurrencesOptimized, 0);
}

TEST(Recurrence, UnknownPointerWriteBlocksOptimization)
{
    // The loop writes through a pointer parameter that could alias x:
    // the paper's conservative treatment adds the reference to every
    // partition, so nothing may be rewritten.
    const char *src = R"(
int n = 32;
double x[40];
double sink[40];
void kernel(double *p) {
    int i;
    for (i = 2; i < n; i++) {
        x[i] = x[i - 1] + 1.0;
        p[i] = x[i];
    }
}
int main(void) {
    int i;
    double s;
    kernel(sink);
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + x[i] + sink[i];
    return s;
}
)";
    auto prog = prepare(src);
    Function *fn = prog->findFunction("kernel");
    ASSERT_TRUE(fn != nullptr);
    auto report = recurrence::runRecurrenceOpt(*fn, wmTraits());
    // The p[i] write resolves to an opaque register base: a distinct
    // region under the paper's model (pointer walks get their own
    // partitions), BUT here p's base register makes it a Reg-based
    // partition, not unknown — the x recurrence is still optimizable.
    // What must NOT happen is a crash or wrong code; the differential
    // tests verify semantics. Document the decision by asserting the
    // pass ran.
    EXPECT_GE(report.loopsExamined, 1);
}

TEST(Recurrence, MemoryAccumulatorNotRewritten)
{
    // Same-cell read+write (distance 0) is ordering-sensitive; the
    // pass must leave it alone.
    const char *src = R"(
int n = 16;
double acc[1];
double x[16];
int main(void) {
    int i;
    for (i = 0; i < n; i++)
        acc[0] = acc[0] + x[i];
    return acc[0];
}
)";
    auto prog = prepare(src);
    Function *fn = prog->findFunction("main");
    auto report = recurrence::runRecurrenceOpt(*fn, wmTraits());
    EXPECT_EQ(report.recurrencesOptimized, 0);
}

TEST(Recurrence, ScalarTargetAlsoOptimizes)
{
    // The algorithm is machine-independent (paper: it "applies to
    // other machines as well").
    auto prog = prepare(programs::livermore5Source(64),
                        MachineKind::Scalar);
    Function *fn = prog->findFunction("main");
    auto report = recurrence::runRecurrenceOpt(*fn, scalarTraits());
    EXPECT_GE(report.recurrencesOptimized, 1);
}

TEST(Recurrence, ReducesLoadCount)
{
    // The paper: "the number of memory references that will be
    // executed is reduced by one quarter" for the LL5 kernel. Measure
    // dynamically: the preheader priming load runs once, the deleted
    // x[i-1] load ran every iteration.
    uint64_t executed[2];
    for (int rec = 0; rec < 2; ++rec) {
        driver::CompileOptions opts;
        opts.recurrence = rec != 0;
        opts.streaming = false;
        auto cr = driver::compileSource(programs::livermore5Source(64),
                                        opts);
        ASSERT_TRUE(cr.ok);
        auto res = wmsim::simulate(*cr.program);
        ASSERT_TRUE(res.ok) << res.error;
        executed[rec] = res.stats.loadsIssued;
    }
    EXPECT_LT(executed[1] + 50, executed[0]);
}

TEST(Partitions, PointerWalkGetsIvPartition)
{
    // *d++ / *s++ loops: the address IS the induction variable; the
    // paper notes pointer references generally have no separate IV —
    // here the walking pointer identifies the region.
    const char *src = R"(
char a[32] = "abcdefghij";
char b[32];
int main(void) {
    char *s, *d;
    s = a;
    d = b;
    while (*s) {
        *d = *s;
        d = d + 1;
        s = s + 1;
    }
    return b[2];
}
)";
    auto prog = prepare(src);
    Function *fn = prog->findFunction("main");
    fn->recomputeCfg();
    cfg::DominatorTree dt(*fn);
    cfg::LoopInfo li(*fn, dt);
    cfg::Loop *loop = busiestLoop(*fn, li);
    ASSERT_TRUE(loop != nullptr);
    auto traits = wmTraits();
    opt::IndVarAnalysis ivs(*fn, *loop, dt, traits);
    auto parts = recurrence::buildPartitions(*fn, *loop, dt, ivs, traits);
    // Two walking pointers -> two "iv:" partitions, coefficient 1.
    int ivParts = 0;
    for (const auto &p : parts.parts) {
        if (p.key.rfind("iv:", 0) == 0) {
            ++ivParts;
            for (const auto &r : p.refs)
                EXPECT_EQ(r.cee, 1) << p.str();
        }
    }
    EXPECT_GE(ivParts, 2) << parts.str();
}

TEST(Partitions, PointerParameterGetsRegPartition)
{
    const char *src = R"(
int n = 16;
int g[16];
int sum(int *p) {
    int i, s;
    s = 0;
    for (i = 0; i < n; i++)
        s = s + p[i];
    return s;
}
int main(void) { return sum(g); }
)";
    auto prog = prepare(src);
    Function *fn = prog->findFunction("sum");
    ASSERT_TRUE(fn != nullptr);
    fn->recomputeCfg();
    cfg::DominatorTree dt(*fn);
    cfg::LoopInfo li(*fn, dt);
    cfg::Loop *loop = busiestLoop(*fn, li);
    ASSERT_TRUE(loop != nullptr);
    auto traits = wmTraits();
    opt::IndVarAnalysis ivs(*fn, *loop, dt, traits);
    auto parts = recurrence::buildPartitions(*fn, *loop, dt, ivs, traits);
    bool regPart = false;
    for (const auto &p : parts.parts)
        if (p.key.rfind("reg:", 0) == 0)
            regPart = true;
    EXPECT_TRUE(regPart) << parts.str();
}
