/**
 * @file
 * Chaos-mode property test: seeded timing perturbation (memory-latency
 * jitter, port withholding, SCU startup delay, fetch-width wobble)
 * must never change architectural results. Every seed must produce the
 * same return value and the same final memory image as the
 * deterministic run, over a program that exercises integer and float
 * streams, vectorization, a data-dependent while loop, and stores.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "wmsim/sim.h"

using namespace wmstream;

namespace {

const char *kMixedProgram = R"(
int a[48]; int b[48]; int c[48];
double x[48]; double y[48];
int main(void) {
    int i; int n; int r;
    for (i = 0; i < 48; i = i + 1) {
        b[i] = i * 3;
        c[i] = 48 - i;
        y[i] = i * 1.5;
    }
    for (i = 0; i < 48; i = i + 1)
        a[i] = b[i] + c[i];
    for (i = 0; i < 48; i = i + 1)
        x[i] = y[i] * 2.0;
    n = 0;
    r = 0;
    while (n < 40) {
        r = r + a[n];
        n = n + 3;
    }
    return r;
})";

} // namespace

TEST(Chaos, ArchitecturalResultsIdenticalOverHundredSeeds)
{
    driver::CompileOptions opts;
    opts.vectorize = true;
    auto cr = driver::compileSource(kMixedProgram, opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;

    // Reference: deterministic run, return value plus memory oracle.
    wmsim::SimConfig ref;
    wmsim::Simulator refSim(*cr.program, ref);
    auto refRes = refSim.run();
    ASSERT_TRUE(refRes.ok) << refRes.error;
    int64_t aAddr = cr.program->globalAddress("a");
    int64_t xAddr = cr.program->globalAddress("x");
    ASSERT_GE(aAddr, 0);
    ASSERT_GE(xAddr, 0);

    int divergent = 0;
    for (uint64_t seed = 1; seed <= 120; ++seed) {
        wmsim::SimConfig cfg;
        cfg.chaosSeed = seed * 0x9E3779B97F4A7C15ull | 1;
        wmsim::Simulator sim(*cr.program, cfg);
        auto res = sim.run();
        ASSERT_TRUE(res.ok)
            << "seed " << seed << ": " << res.error;
        if (res.returnValue != refRes.returnValue)
            ++divergent;
        for (int i = 0; i < 48; ++i) {
            if (sim.readInt(aAddr + 8 * i) !=
                refSim.readInt(aAddr + 8 * i))
                ++divergent;
            if (sim.readDouble(xAddr + 8 * i) !=
                refSim.readDouble(xAddr + 8 * i))
                ++divergent;
        }
    }
    EXPECT_EQ(divergent, 0);
}

TEST(Chaos, PerturbationActuallyChangesTiming)
{
    // Guard against the jitter silently becoming a no-op: chaos runs
    // must (almost always) take a different number of cycles than the
    // deterministic run.
    driver::CompileOptions opts;
    auto cr = driver::compileSource(kMixedProgram, opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;

    auto det = wmsim::simulate(*cr.program, wmsim::SimConfig{});
    ASSERT_TRUE(det.ok);
    int changed = 0;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        wmsim::SimConfig cfg;
        cfg.chaosSeed = seed;
        auto res = wmsim::simulate(*cr.program, cfg);
        ASSERT_TRUE(res.ok) << res.error;
        if (res.stats.cycles != det.stats.cycles)
            ++changed;
    }
    EXPECT_GT(changed, 0);
}

TEST(Chaos, SameSeedIsReproducible)
{
    driver::CompileOptions opts;
    auto cr = driver::compileSource(kMixedProgram, opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    wmsim::SimConfig cfg;
    cfg.chaosSeed = 777;
    auto a = wmsim::simulate(*cr.program, cfg);
    auto b = wmsim::simulate(*cr.program, cfg);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.returnValue, b.returnValue);
}

TEST(Chaos, WatchdogStillCatchesWedgesUnderChaos)
{
    driver::CompileOptions opts;
    opts.injectStreamCountBug = true;
    auto cr = driver::compileSource(R"(
int a[64]; int b[64]; int c[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i = i + 1)
        a[i] = b[i] + c[i];
    return 0;
})",
                                    opts);
    ASSERT_TRUE(cr.ok) << cr.diagnostics;
    wmsim::SimConfig cfg;
    cfg.chaosSeed = 99;
    auto res = wmsim::simulate(*cr.program, cfg);
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.fault, wmsim::SimFault::Deadlock);
}
