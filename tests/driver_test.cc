/**
 * @file
 * Tests for the compiler driver's option plumbing.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "programs/programs.h"

using namespace wmstream;
using namespace wmstream::rtl;

TEST(Driver, RecurrenceOffProducesNoReports)
{
    driver::CompileOptions opts;
    opts.recurrence = false;
    auto cr = driver::compileSource(programs::livermore5Source(32), opts);
    ASSERT_TRUE(cr.ok);
    EXPECT_TRUE(cr.recurrenceReports.empty());
    EXPECT_EQ(cr.totalRecurrences(), 0);
}

TEST(Driver, StreamingOffProducesNoStreams)
{
    driver::CompileOptions opts;
    opts.streaming = false;
    auto cr = driver::compileSource(programs::livermore5Source(32), opts);
    ASSERT_TRUE(cr.ok);
    EXPECT_EQ(cr.totalStreams(), 0);
    for (const auto &fn : cr.program->functions())
        for (const auto &b : fn->blocks())
            for (const Inst &inst : b->insts)
                EXPECT_TRUE(inst.kind != InstKind::StreamIn &&
                            inst.kind != InstKind::StreamOut);
}

TEST(Driver, ScalarTargetNeverStreams)
{
    driver::CompileOptions opts;
    opts.target = MachineKind::Scalar;
    opts.streaming = true; // requested, but the target has no SCUs
    auto cr = driver::compileSource(programs::livermore5Source(32), opts);
    ASSERT_TRUE(cr.ok);
    EXPECT_EQ(cr.totalStreams(), 0);
}

TEST(Driver, DiagnosticsSurfaceFrontEndErrors)
{
    auto cr = driver::compileSource("int main(void) { return x; }", {});
    EXPECT_FALSE(cr.ok);
    EXPECT_NE(cr.diagnostics.find("undeclared"), std::string::npos);
}

TEST(Driver, ProgramIsLaidOut)
{
    auto cr = driver::compileSource(programs::livermore5Source(16), {});
    ASSERT_TRUE(cr.ok);
    EXPECT_GE(cr.program->globalAddress("x"), 0x1000);
}

TEST(Driver, ReportsCountStreamsAndRecurrences)
{
    auto cr = driver::compileSource(programs::livermore5Source(64), {});
    ASSERT_TRUE(cr.ok);
    EXPECT_GE(cr.totalRecurrences(), 1);
    EXPECT_GE(cr.totalStreams(), 4);
}

TEST(Driver, TraitsMatchTarget)
{
    auto wm = driver::compileSource("int main(void){return 0;}", {});
    EXPECT_TRUE(wm.traits.isWM());
    driver::CompileOptions s;
    s.target = MachineKind::Scalar;
    auto sc = driver::compileSource("int main(void){return 0;}", s);
    EXPECT_FALSE(sc.traits.isWM());
    EXPECT_FALSE(sc.traits.hasDualOp);
}

TEST(Driver, PassProfilesOffByDefault)
{
    driver::CompileOptions opts;
    auto res = driver::compileSource(programs::dotProductSource(16), opts);
    ASSERT_TRUE(res.ok) << res.diagnostics;
    EXPECT_TRUE(res.passProfiles.empty());
}

TEST(Driver, PassProfilesRecordPipeline)
{
    driver::CompileOptions opts;
    opts.profilePasses = true;
    auto res = driver::compileSource(programs::dotProductSource(16), opts);
    ASSERT_TRUE(res.ok) << res.diagnostics;
    ASSERT_FALSE(res.passProfiles.empty());

    auto find = [&](const std::string &name) -> const obs::PassProfile * {
        for (const auto &p : res.passProfiles)
            if (p.name == name)
                return &p;
        return nullptr;
    };
    // The WM pipeline must have run these phases, in this order.
    const char *expected[] = {"frontend", "expand",    "cleanup",
                              "recurrence", "streaming", "regalloc",
                              "lower-fifo"};
    size_t last = 0;
    for (const char *name : expected) {
        const obs::PassProfile *p = find(name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_GE(p->calls, 1) << name;
        EXPECT_GE(p->wallMs, 0.0) << name;
        size_t idx = static_cast<size_t>(p - res.passProfiles.data());
        EXPECT_GE(idx, last) << name << " out of order";
        last = idx;
    }
    // Expansion creates the program, so its delta is the whole count.
    EXPECT_GT(find("expand")->instsDelta(), 0);
    // Streaming on the dot product finds streams and says so.
    const obs::PassProfile *streaming = find("streaming");
    bool sawStreams = false;
    for (const auto &kv : streaming->counters)
        if (kv.first == "streams_in" && kv.second > 0)
            sawStreams = true;
    EXPECT_TRUE(sawStreams);
}
