/**
 * @file
 * The semantic safety net: every Table-II program, compiled in every
 * configuration for both targets, must return the interpreter's
 * checksum. This is the property that makes the aggressive loop
 * rewrites trustworthy.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "frontend/parser.h"
#include "interp/interp.h"
#include "programs/programs.h"
#include "timing/scalar_sim.h"
#include "wmsim/sim.h"

using namespace wmstream;

namespace {

int64_t
oracle(const std::string &src)
{
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(src, diag);
    EXPECT_TRUE(unit != nullptr) << diag.str();
    interp::Interpreter in(*unit);
    auto res = in.run();
    EXPECT_TRUE(res.ok) << res.error;
    return res.returnValue;
}

class DifferentialTest
    : public ::testing::TestWithParam<programs::BenchmarkProgram>
{
};

} // namespace

TEST_P(DifferentialTest, WmAllConfigs)
{
    const auto &prog = GetParam();
    int64_t expect = oracle(prog.source);
    for (bool rec : {false, true}) {
        for (bool stream : {false, true}) {
            driver::CompileOptions opts;
            opts.recurrence = rec;
            opts.streaming = stream;
            auto cr = driver::compileSource(prog.source, opts);
            ASSERT_TRUE(cr.ok) << prog.name << ": " << cr.diagnostics;
            wmsim::SimConfig cfg;
            cfg.maxCycles = 10'000'000ull;
            auto res = wmsim::simulate(*cr.program, cfg);
            ASSERT_TRUE(res.ok)
                << prog.name << " rec=" << rec << " stream=" << stream
                << ": " << res.error;
            EXPECT_EQ(res.returnValue, expect)
                << prog.name << " rec=" << rec << " stream=" << stream;
        }
    }
}

TEST_P(DifferentialTest, ScalarBothRecurrenceSettings)
{
    const auto &prog = GetParam();
    int64_t expect = oracle(prog.source);
    auto model = timing::m88100Model();
    for (bool rec : {false, true}) {
        driver::CompileOptions opts;
        opts.target = rtl::MachineKind::Scalar;
        opts.recurrence = rec;
        auto cr = driver::compileSource(prog.source, opts);
        ASSERT_TRUE(cr.ok) << prog.name;
        auto res = timing::runScalar(*cr.program, model,
                                     4'000'000'000ull);
        ASSERT_TRUE(res.ok) << prog.name << ": " << res.error;
        EXPECT_EQ(res.returnValue, expect)
            << prog.name << " rec=" << rec;
    }
}

TEST_P(DifferentialTest, UnoptimizedWmStillCorrect)
{
    const auto &prog = GetParam();
    int64_t expect = oracle(prog.source);
    driver::CompileOptions opts;
    opts.optimize = false;
    opts.recurrence = false;
    opts.streaming = false;
    auto cr = driver::compileSource(prog.source, opts);
    ASSERT_TRUE(cr.ok) << prog.name;
    wmsim::SimConfig cfg;
    cfg.maxCycles = 10'000'000ull;
    auto res = wmsim::simulate(*cr.program, cfg);
    ASSERT_TRUE(res.ok) << prog.name << ": " << res.error;
    EXPECT_EQ(res.returnValue, expect) << prog.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableII, DifferentialTest,
    ::testing::ValuesIn(programs::tableIIPrograms()),
    [](const ::testing::TestParamInfo<programs::BenchmarkProgram> &info) {
        std::string name = info.param.name;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });
