/**
 * @file
 * Reference interpreter for mini-C ASTs.
 *
 * The interpreter executes a checked TranslationUnit over a flat byte
 * memory with the same data layout rules the compiler uses (int and
 * double are 8 bytes, char is 1). It is the oracle for differential
 * testing: every compiled configuration of every benchmark must return
 * the same value from main() as this interpreter.
 */

#ifndef WMSTREAM_INTERP_INTERP_H
#define WMSTREAM_INTERP_INTERP_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "frontend/ast.h"

namespace wmstream::interp {

/** A runtime scalar: integer/pointer or double. */
struct Value
{
    bool isFloat = false;
    int64_t i = 0;
    double f = 0.0;

    static Value ofInt(int64_t v) { return {false, v, 0.0}; }
    static Value ofFloat(double v) { return {true, 0, v}; }

    bool truthy() const { return isFloat ? f != 0.0 : i != 0; }
};

/** Result of a program run. */
struct InterpResult
{
    bool ok = false;
    int64_t returnValue = 0;
    std::string error;          ///< set when !ok
    uint64_t stepsExecuted = 0; ///< AST nodes evaluated (budget metric)
};

/**
 * Evaluate a semantically checked AST's constant expression.
 * Used for global initializers. Panics on non-constant input.
 */
Value evalConstExpr(const frontend::Expr &e);

/**
 * Interpreter for one TranslationUnit.
 *
 * Construction lays out globals in a private memory image; run() calls
 * main(). A step budget guards against runaway loops in differential
 * tests.
 */
class Interpreter
{
  public:
    explicit Interpreter(const frontend::TranslationUnit &unit,
                         size_t memBytes = 8u << 20);

    /** Execute main() and return its value. */
    InterpResult run(uint64_t stepBudget = 2'000'000'000);

    /** Address of a global after construction (for memory inspection). */
    int64_t globalAddress(const std::string &name) const;

    /** Read raw memory (for test assertions on final data). */
    int64_t readInt(int64_t addr) const;
    double readDouble(int64_t addr) const;
    uint8_t readByte(int64_t addr) const;

  private:
    struct Frame
    {
        std::unordered_map<const frontend::Decl *, Value> regs;
        std::unordered_map<const frontend::Decl *, int64_t> slots;
        int64_t savedSp = 0;
    };

    /** Non-local control transfer through statement execution. */
    enum class Flow { Normal, Break, Continue, Return };

    struct RunError : std::runtime_error
    {
        using std::runtime_error::runtime_error;
    };

    void layoutGlobals();
    void storeInit(int64_t addr, const frontend::TypePtr &ty,
                   const frontend::Initializer &init);

    Value callFunction(const frontend::FuncDecl &fn,
                       std::vector<Value> args);
    Flow execStmt(const frontend::Stmt &s, Frame &frame, Value &retVal);
    Value evalExpr(const frontend::Expr &e, Frame &frame);

    /** An lvalue: either a register slot or a memory address. */
    struct LValue
    {
        const frontend::Decl *reg = nullptr; ///< register-resident
        int64_t addr = 0;
        frontend::TypePtr type;
    };
    LValue evalLValue(const frontend::Expr &e, Frame &frame);
    Value loadLValue(const LValue &lv, Frame &frame);
    void storeLValue(const LValue &lv, Value v, Frame &frame);

    void storeScalar(int64_t addr, const frontend::TypePtr &ty, Value v);
    Value loadScalar(int64_t addr, const frontend::TypePtr &ty) const;

    void checkAddr(int64_t addr, int64_t size) const;
    void budget();

    const frontend::TranslationUnit &unit_;
    std::vector<uint8_t> mem_;
    std::unordered_map<std::string, int64_t> globalAddrs_;
    int64_t sp_ = 0; ///< interpreter stack pointer (grows down)
    uint64_t steps_ = 0;
    uint64_t stepBudget_ = 0;
    int callDepth_ = 0;
};

} // namespace wmstream::interp

#endif // WMSTREAM_INTERP_INTERP_H
