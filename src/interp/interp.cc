#include "interp/interp.h"

#include <cstring>

#include "support/str.h"

namespace wmstream::interp {

using namespace frontend;

namespace {

int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

int64_t
wrapMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

} // anonymous namespace

Value
evalConstExpr(const Expr &e)
{
    switch (e.kind()) {
      case NodeKind::IntLit:
        return Value::ofInt(static_cast<const IntLitExpr &>(e).value);
      case NodeKind::FloatLit:
        return Value::ofFloat(static_cast<const FloatLitExpr &>(e).value);
      case NodeKind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(e);
        WS_ASSERT(u.op == UnOp::Neg, "non-constant unary initializer");
        Value v = evalConstExpr(*u.operand);
        return v.isFloat ? Value::ofFloat(-v.f) : Value::ofInt(-v.i);
      }
      case NodeKind::Cast: {
        const auto &c = static_cast<const CastExpr &>(e);
        Value v = evalConstExpr(*c.operand);
        if (c.type->isDouble() && !v.isFloat)
            return Value::ofFloat(static_cast<double>(v.i));
        if (!c.type->isDouble() && v.isFloat)
            return Value::ofInt(static_cast<int64_t>(v.f));
        return v;
      }
      case NodeKind::Binary: {
        const auto &b = static_cast<const BinaryExpr &>(e);
        Value l = evalConstExpr(*b.lhs);
        Value r = evalConstExpr(*b.rhs);
        if (l.isFloat || r.isFloat) {
            double a = l.isFloat ? l.f : static_cast<double>(l.i);
            double c = r.isFloat ? r.f : static_cast<double>(r.i);
            switch (b.op) {
              case BinOp::Add: return Value::ofFloat(a + c);
              case BinOp::Sub: return Value::ofFloat(a - c);
              case BinOp::Mul: return Value::ofFloat(a * c);
              case BinOp::Div: return Value::ofFloat(a / c);
              case BinOp::Eq: return Value::ofInt(a == c);
              case BinOp::Ne: return Value::ofInt(a != c);
              case BinOp::Lt: return Value::ofInt(a < c);
              case BinOp::Le: return Value::ofInt(a <= c);
              case BinOp::Gt: return Value::ofInt(a > c);
              case BinOp::Ge: return Value::ofInt(a >= c);
              case BinOp::LogAnd:
                return Value::ofInt(a != 0.0 && c != 0.0);
              case BinOp::LogOr:
                return Value::ofInt(a != 0.0 || c != 0.0);
              default: WS_PANIC("bad constant float operator");
            }
        }
        switch (b.op) {
          case BinOp::Add: return Value::ofInt(wrapAdd(l.i, r.i));
          case BinOp::Sub: return Value::ofInt(wrapSub(l.i, r.i));
          case BinOp::Mul: return Value::ofInt(wrapMul(l.i, r.i));
          case BinOp::Div:
            // Sema rejects constant zero divisors before expansion.
            WS_ASSERT(r.i != 0, "constant division by zero");
            return Value::ofInt(l.i / r.i);
          case BinOp::Rem:
            WS_ASSERT(r.i != 0, "constant remainder by zero");
            return Value::ofInt(l.i % r.i);
          case BinOp::Shl: return Value::ofInt(l.i << (r.i & 63));
          case BinOp::Shr: return Value::ofInt(l.i >> (r.i & 63));
          case BinOp::BitAnd: return Value::ofInt(l.i & r.i);
          case BinOp::BitOr: return Value::ofInt(l.i | r.i);
          case BinOp::BitXor: return Value::ofInt(l.i ^ r.i);
          case BinOp::Eq: return Value::ofInt(l.i == r.i);
          case BinOp::Ne: return Value::ofInt(l.i != r.i);
          case BinOp::Lt: return Value::ofInt(l.i < r.i);
          case BinOp::Le: return Value::ofInt(l.i <= r.i);
          case BinOp::Gt: return Value::ofInt(l.i > r.i);
          case BinOp::Ge: return Value::ofInt(l.i >= r.i);
          case BinOp::LogAnd: return Value::ofInt(l.i && r.i);
          case BinOp::LogOr: return Value::ofInt(l.i || r.i);
          default: WS_PANIC("bad constant integer operator");
        }
      }
      default:
        WS_PANIC("non-constant initializer expression");
    }
}

Interpreter::Interpreter(const TranslationUnit &unit, size_t memBytes)
    : unit_(unit), mem_(memBytes, 0)
{
    sp_ = static_cast<int64_t>(mem_.size()) - 64;
    layoutGlobals();
}

void
Interpreter::layoutGlobals()
{
    int64_t addr = 0x1000;
    auto place = [&](const std::string &name, int64_t size, int64_t align) {
        addr = (addr + align - 1) & ~(align - 1);
        globalAddrs_[name] = addr;
        int64_t at = addr;
        addr += size;
        return at;
    };

    for (const auto &[name, bytes] : unit_.stringPool) {
        int64_t at = place(name, static_cast<int64_t>(bytes.size()), 1);
        checkAddr(at, static_cast<int64_t>(bytes.size()));
        std::memcpy(&mem_[at], bytes.data(), bytes.size());
    }
    for (const auto &g : unit_.globals) {
        int64_t at = place(g->name, g->type->size(), g->type->align());
        storeInit(at, g->type, g->init);
    }
}

void
Interpreter::storeInit(int64_t addr, const TypePtr &ty,
                       const Initializer &init)
{
    if (init.empty())
        return;
    if (init.isString) {
        checkAddr(addr, static_cast<int64_t>(init.stringInit.size()) + 1);
        std::memcpy(&mem_[addr], init.stringInit.data(),
                    init.stringInit.size());
        mem_[addr + init.stringInit.size()] = 0;
        return;
    }
    if (!init.list.empty()) {
        int64_t esz = ty->base()->size();
        for (size_t i = 0; i < init.list.size(); ++i) {
            Value v = evalConstExpr(*init.list[i]);
            storeScalar(addr + static_cast<int64_t>(i) * esz, ty->base(),
                        v);
        }
        return;
    }
    storeScalar(addr, ty, evalConstExpr(*init.scalar));
}

int64_t
Interpreter::globalAddress(const std::string &name) const
{
    auto it = globalAddrs_.find(name);
    WS_ASSERT(it != globalAddrs_.end(), "unknown global " + name);
    return it->second;
}

int64_t
Interpreter::readInt(int64_t addr) const
{
    checkAddr(addr, 8);
    int64_t v;
    std::memcpy(&v, &mem_[addr], 8);
    return v;
}

double
Interpreter::readDouble(int64_t addr) const
{
    checkAddr(addr, 8);
    double v;
    std::memcpy(&v, &mem_[addr], 8);
    return v;
}

uint8_t
Interpreter::readByte(int64_t addr) const
{
    checkAddr(addr, 1);
    return mem_[addr];
}

void
Interpreter::checkAddr(int64_t addr, int64_t size) const
{
    if (addr < 0 || size < 0 ||
            addr + size > static_cast<int64_t>(mem_.size())) {
        throw RunError(strFormat("out-of-bounds access at %lld size %lld",
                                 static_cast<long long>(addr),
                                 static_cast<long long>(size)));
    }
}

void
Interpreter::budget()
{
    if (++steps_ > stepBudget_)
        throw RunError("step budget exhausted (possible infinite loop)");
}

void
Interpreter::storeScalar(int64_t addr, const TypePtr &ty, Value v)
{
    if (ty->isChar()) {
        checkAddr(addr, 1);
        mem_[addr] = static_cast<uint8_t>(v.i);
        return;
    }
    checkAddr(addr, 8);
    if (ty->isDouble()) {
        double d = v.isFloat ? v.f : static_cast<double>(v.i);
        std::memcpy(&mem_[addr], &d, 8);
    } else {
        int64_t i = v.isFloat ? static_cast<int64_t>(v.f) : v.i;
        std::memcpy(&mem_[addr], &i, 8);
    }
}

Value
Interpreter::loadScalar(int64_t addr, const TypePtr &ty) const
{
    if (ty->isChar()) {
        checkAddr(addr, 1);
        return Value::ofInt(mem_[addr]); // unsigned char semantics
    }
    checkAddr(addr, 8);
    if (ty->isDouble()) {
        double d;
        std::memcpy(&d, &mem_[addr], 8);
        return Value::ofFloat(d);
    }
    int64_t i;
    std::memcpy(&i, &mem_[addr], 8);
    return Value::ofInt(i);
}

InterpResult
Interpreter::run(uint64_t stepBudget)
{
    stepBudget_ = stepBudget;
    steps_ = 0;
    InterpResult res;
    const FuncDecl *mainFn = unit_.findFunction("main");
    if (!mainFn || !mainFn->body) {
        res.error = "no main() defined";
        return res;
    }
    try {
        Value v = callFunction(*mainFn, {});
        res.ok = true;
        res.returnValue = v.isFloat ? static_cast<int64_t>(v.f) : v.i;
    } catch (const RunError &e) {
        res.error = e.what();
    }
    res.stepsExecuted = steps_;
    return res;
}

Value
Interpreter::callFunction(const FuncDecl &fn, std::vector<Value> args)
{
    if (++callDepth_ > 4000) {
        --callDepth_;
        throw RunError("call stack overflow");
    }
    Frame frame;
    frame.savedSp = sp_;

    WS_ASSERT(args.size() == fn.params.size(), "arg count mismatch");
    for (size_t i = 0; i < fn.params.size(); ++i) {
        const ParamDecl *p = fn.params[i].get();
        if (p->addressTaken) {
            sp_ -= 8;
            sp_ &= ~7;
            frame.slots[p] = sp_;
            storeScalar(sp_, p->type, args[i]);
        } else {
            frame.regs[p] = args[i];
        }
    }

    Value ret = Value::ofInt(0);
    Flow flow = execStmt(*fn.body, frame, ret);
    if (flow == Flow::Break || flow == Flow::Continue)
        throw RunError("break/continue outside loop");

    sp_ = frame.savedSp;
    --callDepth_;
    return ret;
}

Interpreter::Flow
Interpreter::execStmt(const Stmt &s, Frame &frame, Value &retVal)
{
    budget();
    switch (s.kind()) {
      case NodeKind::BlockStmt: {
        const auto &b = static_cast<const BlockStmt &>(s);
        for (const auto &st : b.stmts) {
            Flow f = execStmt(*st, frame, retVal);
            if (f != Flow::Normal)
                return f;
        }
        return Flow::Normal;
      }
      case NodeKind::DeclStmt: {
        const auto &d = static_cast<const DeclStmt &>(s);
        for (const auto &v : d.vars) {
            if (v->addressTaken || v->type->isArray()) {
                int64_t size = v->type->size();
                int64_t align = v->type->align();
                sp_ -= size;
                sp_ &= ~(align - 1);
                frame.slots[v.get()] = sp_;
                checkAddr(sp_, size);
                std::memset(&mem_[sp_], 0, size);
                if (!v->init.empty())
                    if (v->init.scalar) {
                        Value iv = evalExpr(*v->init.scalar, frame);
                        storeScalar(sp_, v->type, iv);
                    }
            } else {
                Value iv = Value::ofInt(0);
                if (v->type->isDouble())
                    iv = Value::ofFloat(0.0);
                if (v->init.scalar)
                    iv = evalExpr(*v->init.scalar, frame);
                if (v->type->isDouble() && !iv.isFloat)
                    iv = Value::ofFloat(static_cast<double>(iv.i));
                frame.regs[v.get()] = iv;
            }
        }
        return Flow::Normal;
      }
      case NodeKind::ExprStmt:
        evalExpr(*static_cast<const ExprStmt &>(s).expr, frame);
        return Flow::Normal;
      case NodeKind::IfStmt: {
        const auto &i = static_cast<const IfStmt &>(s);
        if (evalExpr(*i.cond, frame).truthy())
            return execStmt(*i.thenStmt, frame, retVal);
        if (i.elseStmt)
            return execStmt(*i.elseStmt, frame, retVal);
        return Flow::Normal;
      }
      case NodeKind::WhileStmt: {
        const auto &w = static_cast<const WhileStmt &>(s);
        while (evalExpr(*w.cond, frame).truthy()) {
            Flow f = execStmt(*w.body, frame, retVal);
            if (f == Flow::Break)
                break;
            if (f == Flow::Return)
                return f;
        }
        return Flow::Normal;
      }
      case NodeKind::DoWhileStmt: {
        const auto &w = static_cast<const DoWhileStmt &>(s);
        do {
            Flow f = execStmt(*w.body, frame, retVal);
            if (f == Flow::Break)
                break;
            if (f == Flow::Return)
                return f;
        } while (evalExpr(*w.cond, frame).truthy());
        return Flow::Normal;
      }
      case NodeKind::ForStmt: {
        const auto &fo = static_cast<const ForStmt &>(s);
        if (fo.init)
            evalExpr(*fo.init, frame);
        for (;;) {
            if (fo.cond && !evalExpr(*fo.cond, frame).truthy())
                break;
            Flow f = execStmt(*fo.body, frame, retVal);
            if (f == Flow::Break)
                break;
            if (f == Flow::Return)
                return f;
            if (fo.step)
                evalExpr(*fo.step, frame);
        }
        return Flow::Normal;
      }
      case NodeKind::ReturnStmt: {
        const auto &r = static_cast<const ReturnStmt &>(s);
        if (r.value)
            retVal = evalExpr(*r.value, frame);
        return Flow::Return;
      }
      case NodeKind::BreakStmt:
        return Flow::Break;
      case NodeKind::ContinueStmt:
        return Flow::Continue;
      default:
        WS_PANIC("execStmt: unexpected node kind");
    }
}

Interpreter::LValue
Interpreter::evalLValue(const Expr &e, Frame &frame)
{
    switch (e.kind()) {
      case NodeKind::Ident: {
        const auto &id = static_cast<const IdentExpr &>(e);
        const Decl *d = id.decl;
        LValue lv;
        lv.type = d->type;
        // Register-resident local/param?
        if (frame.regs.count(d)) {
            lv.reg = d;
            return lv;
        }
        if (auto it = frame.slots.find(d); it != frame.slots.end()) {
            lv.addr = it->second;
            return lv;
        }
        auto git = globalAddrs_.find(d->name);
        if (git == globalAddrs_.end())
            throw RunError("unbound identifier " + d->name);
        lv.addr = git->second;
        return lv;
      }
      case NodeKind::Index: {
        const auto &ix = static_cast<const IndexExpr &>(e);
        int64_t base;
        TypePtr bt = ix.base->type;
        if (bt->isArray()) {
            LValue blv = evalLValue(*ix.base, frame);
            WS_ASSERT(!blv.reg, "array in register");
            base = blv.addr;
        } else {
            base = evalExpr(*ix.base, frame).i;
        }
        int64_t idx = evalExpr(*ix.index, frame).i;
        LValue lv;
        lv.type = e.type;
        lv.addr = base + idx * e.type->size();
        // Arrays of arrays: size() above is element storage size, which
        // for a sub-array is the whole row, exactly what row indexing
        // needs.
        return lv;
      }
      case NodeKind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(e);
        WS_ASSERT(u.op == UnOp::Deref, "bad lvalue unary");
        LValue lv;
        lv.type = e.type;
        lv.addr = evalExpr(*u.operand, frame).i;
        return lv;
      }
      default:
        throw RunError("expression is not an lvalue");
    }
}

Value
Interpreter::loadLValue(const LValue &lv, Frame &frame)
{
    if (lv.reg)
        return frame.regs[lv.reg];
    return loadScalar(lv.addr, lv.type);
}

void
Interpreter::storeLValue(const LValue &lv, Value v, Frame &frame)
{
    if (lv.reg) {
        // Normalize representation to the declared type.
        if (lv.type->isDouble() && !v.isFloat)
            v = Value::ofFloat(static_cast<double>(v.i));
        else if (!lv.type->isDouble() && v.isFloat)
            v = Value::ofInt(static_cast<int64_t>(v.f));
        if (lv.type->isChar())
            v.i = static_cast<uint8_t>(v.i);
        frame.regs[lv.reg] = v;
        return;
    }
    storeScalar(lv.addr, lv.type, v);
}

Value
Interpreter::evalExpr(const Expr &e, Frame &frame)
{
    budget();
    switch (e.kind()) {
      case NodeKind::IntLit:
        return Value::ofInt(static_cast<const IntLitExpr &>(e).value);
      case NodeKind::FloatLit:
        return Value::ofFloat(static_cast<const FloatLitExpr &>(e).value);
      case NodeKind::StrLit: {
        const auto &s = static_cast<const StrLitExpr &>(e);
        return Value::ofInt(globalAddress(s.poolName));
      }
      case NodeKind::Ident: {
        const auto &id = static_cast<const IdentExpr &>(e);
        if (id.type->isArray()) {
            LValue lv = evalLValue(e, frame);
            return Value::ofInt(lv.addr); // arrays used directly in Index
        }
        LValue lv = evalLValue(e, frame);
        return loadLValue(lv, frame);
      }
      case NodeKind::Cast: {
        const auto &c = static_cast<const CastExpr &>(e);
        // Array decay: produce the array's address.
        if (c.operand->type && c.operand->type->isArray()) {
            if (c.operand->kind() == NodeKind::Ident ||
                    c.operand->kind() == NodeKind::Index) {
                LValue lv = evalLValue(*c.operand, frame);
                WS_ASSERT(!lv.reg, "array in register");
                return Value::ofInt(lv.addr);
            }
            WS_PANIC("array decay of non-lvalue");
        }
        Value v = evalExpr(*c.operand, frame);
        if (c.type->isDouble() && !v.isFloat)
            return Value::ofFloat(static_cast<double>(v.i));
        if (!c.type->isDouble() && v.isFloat)
            return Value::ofInt(static_cast<int64_t>(v.f));
        if (c.type->isChar())
            return Value::ofInt(static_cast<uint8_t>(v.i));
        return v;
      }
      case NodeKind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(e);
        switch (u.op) {
          case UnOp::Neg: {
            Value v = evalExpr(*u.operand, frame);
            return v.isFloat ? Value::ofFloat(-v.f)
                             : Value::ofInt(wrapSub(0, v.i));
          }
          case UnOp::LogNot:
            return Value::ofInt(!evalExpr(*u.operand, frame).truthy());
          case UnOp::BitNot:
            return Value::ofInt(~evalExpr(*u.operand, frame).i);
          case UnOp::Deref: {
            int64_t addr = evalExpr(*u.operand, frame).i;
            return loadScalar(addr, e.type);
          }
          case UnOp::AddrOf: {
            LValue lv = evalLValue(*u.operand, frame);
            if (lv.reg)
                throw RunError("address of register variable");
            return Value::ofInt(lv.addr);
          }
          case UnOp::PreInc:
          case UnOp::PreDec:
          case UnOp::PostInc:
          case UnOp::PostDec: {
            LValue lv = evalLValue(*u.operand, frame);
            Value old = loadLValue(lv, frame);
            int64_t delta = 1;
            if (lv.type->isPointer())
                delta = lv.type->base()->size();
            bool inc = u.op == UnOp::PreInc || u.op == UnOp::PostInc;
            Value nv;
            if (old.isFloat)
                nv = Value::ofFloat(old.f + (inc ? 1.0 : -1.0));
            else
                nv = Value::ofInt(wrapAdd(old.i, inc ? delta : -delta));
            storeLValue(lv, nv, frame);
            bool post = u.op == UnOp::PostInc || u.op == UnOp::PostDec;
            return post ? old : nv;
          }
        }
        WS_PANIC("bad unary op");
      }
      case NodeKind::Binary: {
        const auto &b = static_cast<const BinaryExpr &>(e);
        if (b.op == BinOp::LogAnd) {
            if (!evalExpr(*b.lhs, frame).truthy())
                return Value::ofInt(0);
            return Value::ofInt(evalExpr(*b.rhs, frame).truthy());
        }
        if (b.op == BinOp::LogOr) {
            if (evalExpr(*b.lhs, frame).truthy())
                return Value::ofInt(1);
            return Value::ofInt(evalExpr(*b.rhs, frame).truthy());
        }
        Value l = evalExpr(*b.lhs, frame);
        Value r = evalExpr(*b.rhs, frame);

        // Pointer arithmetic (Sema canonicalized ptr to the left).
        if (b.lhs->type->isPointer() &&
                (b.op == BinOp::Add || b.op == BinOp::Sub)) {
            int64_t esz = b.lhs->type->base()->size();
            if (b.rhs->type->isPointer())
                return Value::ofInt((l.i - r.i) / esz);
            int64_t off = wrapMul(r.i, esz);
            return Value::ofInt(b.op == BinOp::Add ? wrapAdd(l.i, off)
                                                   : wrapSub(l.i, off));
        }

        if (l.isFloat || r.isFloat) {
            double a = l.isFloat ? l.f : static_cast<double>(l.i);
            double c = r.isFloat ? r.f : static_cast<double>(r.i);
            switch (b.op) {
              case BinOp::Add: return Value::ofFloat(a + c);
              case BinOp::Sub: return Value::ofFloat(a - c);
              case BinOp::Mul: return Value::ofFloat(a * c);
              case BinOp::Div:
                if (c == 0.0)
                    throw RunError("floating division by zero");
                return Value::ofFloat(a / c);
              case BinOp::Eq: return Value::ofInt(a == c);
              case BinOp::Ne: return Value::ofInt(a != c);
              case BinOp::Lt: return Value::ofInt(a < c);
              case BinOp::Le: return Value::ofInt(a <= c);
              case BinOp::Gt: return Value::ofInt(a > c);
              case BinOp::Ge: return Value::ofInt(a >= c);
              default:
                throw RunError("invalid float operator");
            }
        }
        switch (b.op) {
          case BinOp::Add: return Value::ofInt(wrapAdd(l.i, r.i));
          case BinOp::Sub: return Value::ofInt(wrapSub(l.i, r.i));
          case BinOp::Mul: return Value::ofInt(wrapMul(l.i, r.i));
          case BinOp::Div:
            if (r.i == 0)
                throw RunError("integer division by zero");
            return Value::ofInt(l.i / r.i);
          case BinOp::Rem:
            if (r.i == 0)
                throw RunError("integer remainder by zero");
            return Value::ofInt(l.i % r.i);
          case BinOp::Shl: return Value::ofInt(l.i << (r.i & 63));
          case BinOp::Shr: return Value::ofInt(l.i >> (r.i & 63));
          case BinOp::BitAnd: return Value::ofInt(l.i & r.i);
          case BinOp::BitOr: return Value::ofInt(l.i | r.i);
          case BinOp::BitXor: return Value::ofInt(l.i ^ r.i);
          case BinOp::Eq: return Value::ofInt(l.i == r.i);
          case BinOp::Ne: return Value::ofInt(l.i != r.i);
          case BinOp::Lt: return Value::ofInt(l.i < r.i);
          case BinOp::Le: return Value::ofInt(l.i <= r.i);
          case BinOp::Gt: return Value::ofInt(l.i > r.i);
          case BinOp::Ge: return Value::ofInt(l.i >= r.i);
          default:
            WS_PANIC("bad binary op");
        }
      }
      case NodeKind::Assign: {
        const auto &a = static_cast<const AssignExpr &>(e);
        LValue lv = evalLValue(*a.lhs, frame);
        Value r = evalExpr(*a.rhs, frame);
        if (a.op != BinOp::None) {
            Value l = loadLValue(lv, frame);
            if (lv.type->isPointer()) {
                int64_t esz = lv.type->base()->size();
                int64_t off = wrapMul(r.i, esz);
                r = Value::ofInt(a.op == BinOp::Add ? wrapAdd(l.i, off)
                                                    : wrapSub(l.i, off));
            } else if (l.isFloat || r.isFloat) {
                double x = l.isFloat ? l.f : static_cast<double>(l.i);
                double y = r.isFloat ? r.f : static_cast<double>(r.i);
                switch (a.op) {
                  case BinOp::Add: r = Value::ofFloat(x + y); break;
                  case BinOp::Sub: r = Value::ofFloat(x - y); break;
                  case BinOp::Mul: r = Value::ofFloat(x * y); break;
                  case BinOp::Div:
                    if (y == 0.0)
                        throw RunError("floating division by zero");
                    r = Value::ofFloat(x / y);
                    break;
                  default:
                    throw RunError("invalid compound float operator");
                }
            } else {
                switch (a.op) {
                  case BinOp::Add: r = Value::ofInt(wrapAdd(l.i, r.i));
                    break;
                  case BinOp::Sub: r = Value::ofInt(wrapSub(l.i, r.i));
                    break;
                  case BinOp::Mul: r = Value::ofInt(wrapMul(l.i, r.i));
                    break;
                  case BinOp::Div:
                    if (r.i == 0)
                        throw RunError("integer division by zero");
                    r = Value::ofInt(l.i / r.i);
                    break;
                  case BinOp::Rem:
                    if (r.i == 0)
                        throw RunError("integer remainder by zero");
                    r = Value::ofInt(l.i % r.i);
                    break;
                  default:
                    throw RunError("invalid compound operator");
                }
            }
        }
        storeLValue(lv, r, frame);
        return loadLValue(lv, frame);
      }
      case NodeKind::Cond: {
        const auto &c = static_cast<const CondExpr &>(e);
        if (evalExpr(*c.cond, frame).truthy())
            return evalExpr(*c.thenExpr, frame);
        return evalExpr(*c.elseExpr, frame);
      }
      case NodeKind::Index: {
        LValue lv = evalLValue(e, frame);
        if (e.type->isArray())
            return Value::ofInt(lv.addr); // row of a 2-D array
        return loadScalar(lv.addr, e.type);
      }
      case NodeKind::Call: {
        const auto &c = static_cast<const CallExpr &>(e);
        WS_ASSERT(c.decl && c.decl->body,
                  "call to undefined function " + c.callee);
        std::vector<Value> args;
        args.reserve(c.args.size());
        for (const auto &a : c.args)
            args.push_back(evalExpr(*a, frame));
        return callFunction(*c.decl, std::move(args));
      }
      default:
        WS_PANIC("evalExpr: unexpected node kind");
    }
}

} // namespace wmstream::interp
