#include "frontend/type.h"

#include <sstream>

namespace wmstream::frontend {

int64_t
Type::size() const
{
    switch (kind_) {
      case Kind::Void: return 0;
      case Kind::Char: return 1;
      case Kind::Int: return 8;
      case Kind::Double: return 8;
      case Kind::Pointer: return 8;
      case Kind::Array: return arraySize_ * base_->size();
      case Kind::Function: return 0;
    }
    return 0;
}

int64_t
Type::align() const
{
    switch (kind_) {
      case Kind::Char: return 1;
      case Kind::Array: return base_->align();
      case Kind::Void:
      case Kind::Function: return 1;
      default: return 8;
    }
}

std::string
Type::str() const
{
    std::ostringstream os;
    switch (kind_) {
      case Kind::Void: os << "void"; break;
      case Kind::Char: os << "char"; break;
      case Kind::Int: os << "int"; break;
      case Kind::Double: os << "double"; break;
      case Kind::Pointer: os << base_->str() << "*"; break;
      case Kind::Array:
        os << base_->str() << "[" << arraySize_ << "]";
        break;
      case Kind::Function: {
        os << base_->str() << "(";
        for (size_t i = 0; i < params_.size(); ++i) {
            if (i)
                os << ",";
            os << params_[i]->str();
        }
        os << ")";
        break;
      }
    }
    return os.str();
}

bool
Type::equal(const TypePtr &a, const TypePtr &b)
{
    if (a == b)
        return true;
    if (!a || !b || a->kind() != b->kind())
        return false;
    switch (a->kind()) {
      case Kind::Void:
      case Kind::Char:
      case Kind::Int:
      case Kind::Double:
        return true;
      case Kind::Pointer:
        return equal(a->base(), b->base());
      case Kind::Array:
        return a->arraySize() == b->arraySize() &&
               equal(a->base(), b->base());
      case Kind::Function: {
        if (!equal(a->base(), b->base()) ||
                a->params().size() != b->params().size()) {
            return false;
        }
        for (size_t i = 0; i < a->params().size(); ++i)
            if (!equal(a->params()[i], b->params()[i]))
                return false;
        return true;
      }
    }
    return false;
}

TypePtr
Type::voidTy()
{
    static TypePtr t(new Type(Kind::Void));
    return t;
}

TypePtr
Type::charTy()
{
    static TypePtr t(new Type(Kind::Char));
    return t;
}

TypePtr
Type::intTy()
{
    static TypePtr t(new Type(Kind::Int));
    return t;
}

TypePtr
Type::doubleTy()
{
    static TypePtr t(new Type(Kind::Double));
    return t;
}

TypePtr
Type::pointerTo(TypePtr base)
{
    auto t = new Type(Kind::Pointer);
    t->base_ = std::move(base);
    return TypePtr(t);
}

TypePtr
Type::arrayOf(TypePtr elem, int64_t n)
{
    auto t = new Type(Kind::Array);
    t->base_ = std::move(elem);
    t->arraySize_ = n;
    return TypePtr(t);
}

TypePtr
Type::function(TypePtr ret, std::vector<TypePtr> params)
{
    auto t = new Type(Kind::Function);
    t->base_ = std::move(ret);
    t->params_ = std::move(params);
    return TypePtr(t);
}

} // namespace wmstream::frontend
