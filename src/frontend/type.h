/**
 * @file
 * The mini-C type system.
 *
 * The language implemented here covers what the paper's evaluation
 * programs need: `int` (64-bit signed in this implementation — the WM
 * register width; array indexing therefore scales by 8 exactly as the
 * paper's figures show for doubles), `char` (8-bit, unsigned load
 * semantics), `double` (IEEE 64-bit), `void`, pointers, sized arrays,
 * and functions. Types are immutable and shared.
 */

#ifndef WMSTREAM_FRONTEND_TYPE_H
#define WMSTREAM_FRONTEND_TYPE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wmstream::frontend {

class Type;
using TypePtr = std::shared_ptr<const Type>;

/** One mini-C type. */
class Type
{
  public:
    enum class Kind : uint8_t { Void, Char, Int, Double, Pointer, Array,
                                Function };

    Kind kind() const { return kind_; }

    bool isVoid() const { return kind_ == Kind::Void; }
    bool isChar() const { return kind_ == Kind::Char; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isDouble() const { return kind_ == Kind::Double; }
    bool isPointer() const { return kind_ == Kind::Pointer; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isFunction() const { return kind_ == Kind::Function; }
    /** char or int. */
    bool isIntegral() const { return isChar() || isInt(); }
    /** Anything usable in arithmetic. */
    bool isArithmetic() const { return isIntegral() || isDouble(); }
    /** Usable as a scalar condition or value. */
    bool isScalar() const { return isArithmetic() || isPointer(); }

    /** Pointee / element / return type. */
    const TypePtr &base() const { return base_; }
    /** Array element count. */
    int64_t arraySize() const { return arraySize_; }
    /** Function parameter types. */
    const std::vector<TypePtr> &params() const { return params_; }

    /** Storage size in bytes (arrays fully, functions 0). */
    int64_t size() const;
    /** Alignment in bytes. */
    int64_t align() const;

    /** Human-readable spelling, e.g. "double[100]", "int*". */
    std::string str() const;

    /** Structural equality. */
    static bool equal(const TypePtr &a, const TypePtr &b);

    /** @name Singleton/base constructors */
    /// @{
    static TypePtr voidTy();
    static TypePtr charTy();
    static TypePtr intTy();
    static TypePtr doubleTy();
    static TypePtr pointerTo(TypePtr base);
    static TypePtr arrayOf(TypePtr elem, int64_t n);
    static TypePtr function(TypePtr ret, std::vector<TypePtr> params);
    /// @}

  private:
    explicit Type(Kind k) : kind_(k) {}

    Kind kind_;
    TypePtr base_;
    int64_t arraySize_ = 0;
    std::vector<TypePtr> params_;
};

} // namespace wmstream::frontend

#endif // WMSTREAM_FRONTEND_TYPE_H
