#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace wmstream::frontend {

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::End: return "end of input";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::FloatLit: return "floating literal";
      case Tok::CharLit: return "character literal";
      case Tok::StrLit: return "string literal";
      case Tok::KwInt: return "'int'";
      case Tok::KwChar: return "'char'";
      case Tok::KwDouble: return "'double'";
      case Tok::KwVoid: return "'void'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwDo: return "'do'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Question: return "'?'";
      case Tok::Colon: return "':'";
      case Tok::Assign: return "'='";
      case Tok::PlusAssign: return "'+='";
      case Tok::MinusAssign: return "'-='";
      case Tok::StarAssign: return "'*='";
      case Tok::SlashAssign: return "'/='";
      case Tok::PercentAssign: return "'%='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::PlusPlus: return "'++'";
      case Tok::MinusMinus: return "'--'";
      case Tok::Amp: return "'&'";
      case Tok::AmpAmp: return "'&&'";
      case Tok::Pipe: return "'|'";
      case Tok::PipePipe: return "'||'";
      case Tok::Caret: return "'^'";
      case Tok::Tilde: return "'~'";
      case Tok::Bang: return "'!'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::Eq: return "'=='";
      case Tok::Ne: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
    }
    return "?";
}

Lexer::Lexer(std::string source, DiagEngine &diag)
    : src_(std::move(source)), diag_(diag)
{
}

char
Lexer::peek(int ahead) const
{
    size_t i = pos_ + ahead;
    return i < src_.size() ? src_[i] : '\0';
}

char
Lexer::advance()
{
    char c = peek();
    if (c == '\0')
        return c;
    ++pos_;
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

bool
Lexer::match(char c)
{
    if (peek() == c) {
        advance();
        return true;
    }
    return false;
}

void
Lexer::skipWhitespaceAndComments()
{
    for (;;) {
        char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '/' && peek(1) == '*') {
            SourcePos start = here();
            advance();
            advance();
            while (!(peek() == '*' && peek(1) == '/')) {
                if (peek() == '\0') {
                    diag_.error(start, "unterminated comment");
                    return;
                }
                advance();
            }
            advance();
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (peek() != '\n' && peek() != '\0')
                advance();
        } else {
            return;
        }
    }
}

Token
Lexer::make(Tok kind)
{
    Token t;
    t.kind = kind;
    t.pos = tokStart_;
    return t;
}

Token
Lexer::lexNumber()
{
    Token t = make(Tok::IntLit);
    std::string text;
    bool is_float = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        text.push_back(advance());
        text.push_back(advance());
        while (std::isxdigit(static_cast<unsigned char>(peek())))
            text.push_back(advance());
        t.ival = std::strtoll(text.c_str(), nullptr, 16);
        return t;
    }
    while (std::isdigit(static_cast<unsigned char>(peek())))
        text.push_back(advance());
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        text.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek())))
            text.push_back(advance());
    }
    if (peek() == 'e' || peek() == 'E') {
        char sign = peek(1);
        if (std::isdigit(static_cast<unsigned char>(sign)) ||
                ((sign == '+' || sign == '-') &&
                 std::isdigit(static_cast<unsigned char>(peek(2))))) {
            is_float = true;
            text.push_back(advance());
            if (peek() == '+' || peek() == '-')
                text.push_back(advance());
            while (std::isdigit(static_cast<unsigned char>(peek())))
                text.push_back(advance());
        }
    }
    if (is_float) {
        t.kind = Tok::FloatLit;
        t.fval = std::strtod(text.c_str(), nullptr);
    } else {
        t.ival = std::strtoll(text.c_str(), nullptr, 10);
    }
    return t;
}

Token
Lexer::lexIdent()
{
    static const std::unordered_map<std::string, Tok> keywords = {
        {"int", Tok::KwInt},       {"char", Tok::KwChar},
        {"double", Tok::KwDouble}, {"void", Tok::KwVoid},
        {"if", Tok::KwIf},         {"else", Tok::KwElse},
        {"while", Tok::KwWhile},   {"for", Tok::KwFor},
        {"do", Tok::KwDo},         {"return", Tok::KwReturn},
        {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
    };
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        text.push_back(advance());
    auto it = keywords.find(text);
    if (it != keywords.end())
        return make(it->second);
    Token t = make(Tok::Ident);
    t.text = std::move(text);
    return t;
}

int64_t
Lexer::lexEscape()
{
    char c = advance();
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        diag_.error(here(), std::string("unknown escape '\\") + c + "'");
        return c;
    }
}

Token
Lexer::lexCharLit()
{
    Token t = make(Tok::CharLit);
    advance(); // opening quote
    char c = peek();
    if (c == '\\') {
        advance();
        t.ival = lexEscape();
    } else {
        t.ival = static_cast<unsigned char>(advance());
    }
    if (!match('\''))
        diag_.error(tokStart_, "unterminated character literal");
    return t;
}

Token
Lexer::lexStrLit()
{
    Token t = make(Tok::StrLit);
    advance(); // opening quote
    std::string text;
    for (;;) {
        char c = peek();
        if (c == '"' || c == '\0')
            break;
        if (c == '\\') {
            advance();
            text.push_back(static_cast<char>(lexEscape()));
        } else {
            text.push_back(advance());
        }
    }
    if (!match('"'))
        diag_.error(tokStart_, "unterminated string literal");
    t.text = std::move(text);
    return t;
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> out;
    for (;;) {
        skipWhitespaceAndComments();
        tokStart_ = here();
        char c = peek();
        if (c == '\0') {
            out.push_back(make(Tok::End));
            return out;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            out.push_back(lexNumber());
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            out.push_back(lexIdent());
            continue;
        }
        if (c == '\'') {
            out.push_back(lexCharLit());
            continue;
        }
        if (c == '"') {
            out.push_back(lexStrLit());
            continue;
        }
        advance();
        switch (c) {
          case '(': out.push_back(make(Tok::LParen)); break;
          case ')': out.push_back(make(Tok::RParen)); break;
          case '{': out.push_back(make(Tok::LBrace)); break;
          case '}': out.push_back(make(Tok::RBrace)); break;
          case '[': out.push_back(make(Tok::LBracket)); break;
          case ']': out.push_back(make(Tok::RBracket)); break;
          case ',': out.push_back(make(Tok::Comma)); break;
          case ';': out.push_back(make(Tok::Semi)); break;
          case '?': out.push_back(make(Tok::Question)); break;
          case ':': out.push_back(make(Tok::Colon)); break;
          case '~': out.push_back(make(Tok::Tilde)); break;
          case '^': out.push_back(make(Tok::Caret)); break;
          case '+':
            out.push_back(make(match('+') ? Tok::PlusPlus
                               : match('=') ? Tok::PlusAssign : Tok::Plus));
            break;
          case '-':
            out.push_back(make(match('-') ? Tok::MinusMinus
                               : match('=') ? Tok::MinusAssign : Tok::Minus));
            break;
          case '*':
            out.push_back(make(match('=') ? Tok::StarAssign : Tok::Star));
            break;
          case '/':
            out.push_back(make(match('=') ? Tok::SlashAssign : Tok::Slash));
            break;
          case '%':
            out.push_back(make(match('=') ? Tok::PercentAssign
                                          : Tok::Percent));
            break;
          case '&':
            out.push_back(make(match('&') ? Tok::AmpAmp : Tok::Amp));
            break;
          case '|':
            out.push_back(make(match('|') ? Tok::PipePipe : Tok::Pipe));
            break;
          case '!':
            out.push_back(make(match('=') ? Tok::Ne : Tok::Bang));
            break;
          case '=':
            out.push_back(make(match('=') ? Tok::Eq : Tok::Assign));
            break;
          case '<':
            out.push_back(make(match('<') ? Tok::Shl
                               : match('=') ? Tok::Le : Tok::Lt));
            break;
          case '>':
            out.push_back(make(match('>') ? Tok::Shr
                               : match('=') ? Tok::Ge : Tok::Gt));
            break;
          default:
            diag_.error(tokStart_,
                        std::string("unexpected character '") + c + "'");
            break;
        }
    }
}

} // namespace wmstream::frontend
