/**
 * @file
 * Semantic analysis for mini-C.
 *
 * Sema resolves identifiers to declarations, types every expression,
 * inserts explicit CastExpr nodes for int<->double conversions and
 * array-to-pointer decay, marks address-taken variables (which forces
 * them into the stack frame instead of registers), verifies lvalue-ness
 * and global initializer constness, and moves string literals into the
 * translation unit's string pool.
 */

#ifndef WMSTREAM_FRONTEND_SEMA_H
#define WMSTREAM_FRONTEND_SEMA_H

#include <unordered_map>
#include <vector>

#include "frontend/ast.h"

namespace wmstream::frontend {

/** See file comment. */
class Sema
{
  public:
    explicit Sema(DiagEngine &diag) : diag_(diag) {}

    /** Check a whole unit in place. */
    void check(TranslationUnit &unit);

  private:
    // Scope management: a stack of name -> Decl maps.
    void pushScope();
    void popScope();
    void declare(Decl *d);
    Decl *lookup(const std::string &name);

    void checkFunction(FuncDecl &fn);
    void checkStmt(Stmt &s);
    void checkVarDecl(VarDecl &v);

    /** Type-check @p e (owned by @p owner, replaced if casts wrap it). */
    void checkExpr(ExprUP &e);
    void checkCondition(ExprUP &e);

    /** Wrap @p e in a CastExpr to @p to if types differ. */
    void convertTo(ExprUP &e, const TypePtr &to);
    /** Apply array-to-pointer decay if @p e has array type. */
    void decay(ExprUP &e);
    /** Usual arithmetic conversions over a binary op's operands. */
    TypePtr arithConvert(ExprUP &l, ExprUP &r, SourcePos pos);

    bool isLValue(const Expr &e) const;
    bool isConstInit(const Expr &e) const;
    /**
     * Diagnose integer division/remainder by a constant zero inside a
     * (constness-validated) global initializer, so the expander's
     * constant folder never sees one.
     */
    void checkConstDivisors(const Expr &e);

    std::string internString(const std::string &value);

    DiagEngine &diag_;
    TranslationUnit *unit_ = nullptr;
    FuncDecl *currentFn_ = nullptr;
    int loopDepth_ = 0; ///< break/continue are valid only when > 0
    std::vector<std::unordered_map<std::string, Decl *>> scopes_;
    std::unordered_map<std::string, FuncDecl *> functions_;
    int nextString_ = 0;
};

} // namespace wmstream::frontend

#endif // WMSTREAM_FRONTEND_SEMA_H
