/**
 * @file
 * Abstract syntax tree for the mini-C front end.
 *
 * Nodes carry a Kind tag and consumers dispatch with switch statements;
 * the tree is produced by the Parser, typed and resolved by Sema, and
 * then consumed by both the AST interpreter (the differential-testing
 * oracle) and the code expander.
 */

#ifndef WMSTREAM_FRONTEND_AST_H
#define WMSTREAM_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/type.h"
#include "support/diag.h"

namespace wmstream::frontend {

/** Binary operators (logical && / || lower to control flow later). */
enum class BinOp : uint8_t {
    Add, Sub, Mul, Div, Rem,
    Shl, Shr, BitAnd, BitOr, BitXor,
    Eq, Ne, Lt, Le, Gt, Ge,
    LogAnd, LogOr,
    None, ///< plain '=' in AssignExpr
};

/** Unary operators, including the four inc/dec forms. */
enum class UnOp : uint8_t {
    Neg, LogNot, BitNot, Deref, AddrOf,
    PreInc, PreDec, PostInc, PostDec,
};

class Decl;
class FuncDecl;

/** Node kind tags for switch dispatch. */
enum class NodeKind : uint8_t {
    // expressions
    IntLit, FloatLit, StrLit, Ident, Unary, Binary, Assign, Cond,
    Index, Call, Cast,
    // statements
    ExprStmt, IfStmt, WhileStmt, DoWhileStmt, ForStmt, ReturnStmt,
    BreakStmt, ContinueStmt, BlockStmt, DeclStmt,
    // declarations
    VarDecl, ParamDecl, FuncDecl,
};

/** Base of every AST node. */
class Node
{
  public:
    explicit Node(NodeKind k, SourcePos p) : kind_(k), pos_(p) {}
    virtual ~Node() = default;

    NodeKind kind() const { return kind_; }
    SourcePos pos() const { return pos_; }

  private:
    NodeKind kind_;
    SourcePos pos_;
};

/** Base of expressions; `type` is filled in by Sema. */
class Expr : public Node
{
  public:
    using Node::Node;
    TypePtr type;
};

using ExprUP = std::unique_ptr<Expr>;

class IntLitExpr : public Expr
{
  public:
    IntLitExpr(SourcePos p, int64_t v)
        : Expr(NodeKind::IntLit, p), value(v) {}
    int64_t value;
};

class FloatLitExpr : public Expr
{
  public:
    FloatLitExpr(SourcePos p, double v)
        : Expr(NodeKind::FloatLit, p), value(v) {}
    double value;
};

/** A string literal; Sema assigns it a constant-pool symbol name. */
class StrLitExpr : public Expr
{
  public:
    StrLitExpr(SourcePos p, std::string v)
        : Expr(NodeKind::StrLit, p), value(std::move(v)) {}
    std::string value;
    std::string poolName;
};

/** A name use; Sema links it to its declaration. */
class IdentExpr : public Expr
{
  public:
    IdentExpr(SourcePos p, std::string n)
        : Expr(NodeKind::Ident, p), name(std::move(n)) {}
    std::string name;
    Decl *decl = nullptr;
};

class UnaryExpr : public Expr
{
  public:
    UnaryExpr(SourcePos p, UnOp o, ExprUP x)
        : Expr(NodeKind::Unary, p), op(o), operand(std::move(x)) {}
    UnOp op;
    ExprUP operand;
};

class BinaryExpr : public Expr
{
  public:
    BinaryExpr(SourcePos p, BinOp o, ExprUP l, ExprUP r)
        : Expr(NodeKind::Binary, p), op(o), lhs(std::move(l)),
          rhs(std::move(r)) {}
    BinOp op;
    ExprUP lhs;
    ExprUP rhs;
};

/** `lhs = rhs` or compound `lhs op= rhs` (op != None). */
class AssignExpr : public Expr
{
  public:
    AssignExpr(SourcePos p, BinOp o, ExprUP l, ExprUP r)
        : Expr(NodeKind::Assign, p), op(o), lhs(std::move(l)),
          rhs(std::move(r)) {}
    BinOp op;
    ExprUP lhs;
    ExprUP rhs;
};

class CondExpr : public Expr
{
  public:
    CondExpr(SourcePos p, ExprUP c, ExprUP t, ExprUP e)
        : Expr(NodeKind::Cond, p), cond(std::move(c)),
          thenExpr(std::move(t)), elseExpr(std::move(e)) {}
    ExprUP cond;
    ExprUP thenExpr;
    ExprUP elseExpr;
};

class IndexExpr : public Expr
{
  public:
    IndexExpr(SourcePos p, ExprUP b, ExprUP i)
        : Expr(NodeKind::Index, p), base(std::move(b)),
          index(std::move(i)) {}
    ExprUP base;
    ExprUP index;
};

class CallExpr : public Expr
{
  public:
    CallExpr(SourcePos p, std::string c, std::vector<ExprUP> a)
        : Expr(NodeKind::Call, p), callee(std::move(c)),
          args(std::move(a)) {}
    std::string callee;
    std::vector<ExprUP> args;
    FuncDecl *decl = nullptr;
};

/** Implicit conversion inserted by Sema (int<->double, array decay). */
class CastExpr : public Expr
{
  public:
    CastExpr(SourcePos p, TypePtr to, ExprUP x)
        : Expr(NodeKind::Cast, p), operand(std::move(x))
    {
        type = std::move(to);
    }
    ExprUP operand;
};

/** Base of statements. */
class Stmt : public Node
{
  public:
    using Node::Node;
};

using StmtUP = std::unique_ptr<Stmt>;

class ExprStmt : public Stmt
{
  public:
    ExprStmt(SourcePos p, ExprUP e)
        : Stmt(NodeKind::ExprStmt, p), expr(std::move(e)) {}
    ExprUP expr;
};

class IfStmt : public Stmt
{
  public:
    IfStmt(SourcePos p, ExprUP c, StmtUP t, StmtUP e)
        : Stmt(NodeKind::IfStmt, p), cond(std::move(c)),
          thenStmt(std::move(t)), elseStmt(std::move(e)) {}
    ExprUP cond;
    StmtUP thenStmt;
    StmtUP elseStmt; ///< may be null
};

class WhileStmt : public Stmt
{
  public:
    WhileStmt(SourcePos p, ExprUP c, StmtUP b)
        : Stmt(NodeKind::WhileStmt, p), cond(std::move(c)),
          body(std::move(b)) {}
    ExprUP cond;
    StmtUP body;
};

class DoWhileStmt : public Stmt
{
  public:
    DoWhileStmt(SourcePos p, StmtUP b, ExprUP c)
        : Stmt(NodeKind::DoWhileStmt, p), body(std::move(b)),
          cond(std::move(c)) {}
    StmtUP body;
    ExprUP cond;
};

class ForStmt : public Stmt
{
  public:
    ForStmt(SourcePos p, ExprUP i, ExprUP c, ExprUP s, StmtUP b)
        : Stmt(NodeKind::ForStmt, p), init(std::move(i)),
          cond(std::move(c)), step(std::move(s)), body(std::move(b)) {}
    ExprUP init; ///< may be null
    ExprUP cond; ///< may be null (infinite)
    ExprUP step; ///< may be null
    StmtUP body;
};

class ReturnStmt : public Stmt
{
  public:
    ReturnStmt(SourcePos p, ExprUP v)
        : Stmt(NodeKind::ReturnStmt, p), value(std::move(v)) {}
    ExprUP value; ///< may be null
};

class BreakStmt : public Stmt
{
  public:
    explicit BreakStmt(SourcePos p) : Stmt(NodeKind::BreakStmt, p) {}
};

class ContinueStmt : public Stmt
{
  public:
    explicit ContinueStmt(SourcePos p) : Stmt(NodeKind::ContinueStmt, p) {}
};

class BlockStmt : public Stmt
{
  public:
    explicit BlockStmt(SourcePos p) : Stmt(NodeKind::BlockStmt, p) {}
    std::vector<StmtUP> stmts;
};

/** Base of declarations. */
class Decl : public Node
{
  public:
    Decl(NodeKind k, SourcePos p, std::string n, TypePtr t)
        : Node(k, p), name(std::move(n)), type(std::move(t)) {}
    std::string name;
    TypePtr type;
};

using DeclUP = std::unique_ptr<Decl>;

/** An array initializer list or a single scalar initializer. */
struct Initializer
{
    ExprUP scalar;                 ///< non-null for scalar init
    std::vector<ExprUP> list;      ///< non-empty for {..} init
    std::string stringInit;        ///< for char arrays from "..."
    bool isString = false;
    bool empty() const
    {
        return !scalar && list.empty() && !isString;
    }
};

class VarDecl : public Decl
{
  public:
    VarDecl(SourcePos p, std::string n, TypePtr t, bool global)
        : Decl(NodeKind::VarDecl, p, std::move(n), std::move(t)),
          isGlobal(global) {}
    bool isGlobal;
    Initializer init;
    /**
     * True when the variable's address is taken or it is an array; such
     * locals live in the stack frame, the rest live in virtual registers.
     */
    bool addressTaken = false;
};

/** A statement that introduces local variables. */
class DeclStmt : public Stmt
{
  public:
    explicit DeclStmt(SourcePos p) : Stmt(NodeKind::DeclStmt, p) {}
    std::vector<std::unique_ptr<VarDecl>> vars;
};

class ParamDecl : public Decl
{
  public:
    ParamDecl(SourcePos p, std::string n, TypePtr t, int idx)
        : Decl(NodeKind::ParamDecl, p, std::move(n), std::move(t)),
          index(idx) {}
    int index;
    bool addressTaken = false;
};

class FuncDecl : public Decl
{
  public:
    FuncDecl(SourcePos p, std::string n, TypePtr t)
        : Decl(NodeKind::FuncDecl, p, std::move(n), std::move(t)) {}
    std::vector<std::unique_ptr<ParamDecl>> params;
    std::unique_ptr<BlockStmt> body; ///< null for a prototype
    TypePtr returnType() const { return type->base(); }
};

/** A parsed compilation unit. */
struct TranslationUnit
{
    std::vector<std::unique_ptr<VarDecl>> globals;
    std::vector<std::unique_ptr<FuncDecl>> functions;
    /** String literals collected by Sema: pool name -> bytes (w/ NUL). */
    std::vector<std::pair<std::string, std::string>> stringPool;

    FuncDecl *findFunction(const std::string &name) const
    {
        for (const auto &f : functions)
            if (f->name == name)
                return f.get();
        return nullptr;
    }
};

} // namespace wmstream::frontend

#endif // WMSTREAM_FRONTEND_AST_H
