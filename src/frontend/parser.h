/**
 * @file
 * Recursive-descent parser for mini-C.
 */

#ifndef WMSTREAM_FRONTEND_PARSER_H
#define WMSTREAM_FRONTEND_PARSER_H

#include <memory>
#include <vector>

#include "frontend/ast.h"
#include "frontend/lexer.h"

namespace wmstream::frontend {

/**
 * Parses a token stream into a TranslationUnit.
 *
 * The grammar is the obvious C subset: global variables with constant
 * initializers, function definitions, the statement forms in ast.h, and
 * expressions with standard C precedence (assignment right-associative,
 * `?:`, `||`, `&&`, bitwise, equality, relational, shift, additive,
 * multiplicative, unary, postfix).
 */
class Parser
{
  public:
    Parser(std::vector<Token> tokens, DiagEngine &diag);

    /** Parse everything; check diag.hasErrors() afterwards. */
    std::unique_ptr<TranslationUnit> parseUnit();

  private:
    const Token &peek(int ahead = 0) const;
    const Token &advance();
    bool check(Tok t) const { return peek().kind == t; }
    bool accept(Tok t);
    const Token &expect(Tok t, const char *what);
    [[noreturn]] void fail(const std::string &msg);

    bool atTypeSpec() const;
    TypePtr parseTypeSpec();

    void parseTopLevel(TranslationUnit &unit);
    std::unique_ptr<FuncDecl> parseFunctionRest(TypePtr retBase,
                                                SourcePos pos);
    std::unique_ptr<VarDecl> parseVarRest(TypePtr base, bool global);
    Initializer parseInitializer();

    std::unique_ptr<BlockStmt> parseBlock();
    StmtUP parseStmt();
    std::unique_ptr<DeclStmt> parseDeclStmt();

    ExprUP parseExpr();           // assignment level
    ExprUP parseConditional();
    ExprUP parseLogicalOr();
    ExprUP parseLogicalAnd();
    ExprUP parseBitOr();
    ExprUP parseBitXor();
    ExprUP parseBitAnd();
    ExprUP parseEquality();
    ExprUP parseRelational();
    ExprUP parseShift();
    ExprUP parseAdditive();
    ExprUP parseMultiplicative();
    ExprUP parseUnary();
    ExprUP parsePostfix();
    ExprUP parsePrimary();

    std::vector<Token> toks_;
    size_t pos_ = 0;
    DiagEngine &diag_;
};

/**
 * Convenience: lex + parse + run Sema over @p source.
 * Returns null if any phase reported errors.
 */
std::unique_ptr<TranslationUnit> parseAndCheck(const std::string &source,
                                               DiagEngine &diag);

} // namespace wmstream::frontend

#endif // WMSTREAM_FRONTEND_PARSER_H
