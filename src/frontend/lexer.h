/**
 * @file
 * Tokenizer for the mini-C front end.
 */

#ifndef WMSTREAM_FRONTEND_LEXER_H
#define WMSTREAM_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/diag.h"

namespace wmstream::frontend {

/** Token kinds; single-character punctuators use their own entries. */
enum class Tok : uint8_t {
    End, Ident, IntLit, FloatLit, CharLit, StrLit,
    // keywords
    KwInt, KwChar, KwDouble, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwDo,
    KwReturn, KwBreak, KwContinue,
    // punctuation / operators
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi, Question, Colon,
    Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
    Plus, Minus, Star, Slash, Percent,
    PlusPlus, MinusMinus,
    Amp, AmpAmp, Pipe, PipePipe, Caret, Tilde, Bang,
    Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
};

/** Printable token-kind name for diagnostics. */
const char *tokName(Tok t);

/** One lexed token with its source position and literal payload. */
struct Token
{
    Tok kind = Tok::End;
    SourcePos pos;
    std::string text;   ///< identifier or string literal contents
    int64_t ival = 0;   ///< IntLit / CharLit value
    double fval = 0.0;  ///< FloatLit value
};

/**
 * Lexes a whole buffer up front; the parser indexes the token vector.
 *
 * Supports decimal and hexadecimal integers, floating literals with
 * optional exponent, character literals with the usual escapes, string
 * literals, and both comment styles.
 */
class Lexer
{
  public:
    Lexer(std::string source, DiagEngine &diag);

    /** Lex everything; the result always ends with a Tok::End token. */
    std::vector<Token> lexAll();

  private:
    char peek(int ahead = 0) const;
    char advance();
    bool match(char c);
    void skipWhitespaceAndComments();
    Token lexNumber();
    Token lexIdent();
    Token lexCharLit();
    Token lexStrLit();
    int64_t lexEscape();
    Token make(Tok kind);
    SourcePos here() const { return {line_, col_}; }

    std::string src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    SourcePos tokStart_;
    DiagEngine &diag_;
};

} // namespace wmstream::frontend

#endif // WMSTREAM_FRONTEND_LEXER_H
