#include "frontend/parser.h"

#include <stdexcept>

#include "frontend/sema.h"

namespace wmstream::frontend {

namespace {

/** Internal unwinding exception; never escapes parseUnit(). */
struct ParseError : std::runtime_error
{
    ParseError() : std::runtime_error("parse error") {}
};

} // anonymous namespace

Parser::Parser(std::vector<Token> tokens, DiagEngine &diag)
    : toks_(std::move(tokens)), diag_(diag)
{
    WS_ASSERT(!toks_.empty() && toks_.back().kind == Tok::End,
              "token stream must end with End");
}

const Token &
Parser::peek(int ahead) const
{
    size_t i = pos_ + ahead;
    if (i >= toks_.size())
        i = toks_.size() - 1;
    return toks_[i];
}

const Token &
Parser::advance()
{
    const Token &t = toks_[pos_];
    if (pos_ + 1 < toks_.size())
        ++pos_;
    return t;
}

bool
Parser::accept(Tok t)
{
    if (check(t)) {
        advance();
        return true;
    }
    return false;
}

const Token &
Parser::expect(Tok t, const char *what)
{
    if (!check(t)) {
        fail(std::string("expected ") + tokName(t) + " " + what +
             ", found " + tokName(peek().kind));
    }
    return advance();
}

void
Parser::fail(const std::string &msg)
{
    diag_.error(peek().pos, msg);
    throw ParseError();
}

bool
Parser::atTypeSpec() const
{
    switch (peek().kind) {
      case Tok::KwInt:
      case Tok::KwChar:
      case Tok::KwDouble:
      case Tok::KwVoid:
        return true;
      default:
        return false;
    }
}

TypePtr
Parser::parseTypeSpec()
{
    switch (advance().kind) {
      case Tok::KwInt: return Type::intTy();
      case Tok::KwChar: return Type::charTy();
      case Tok::KwDouble: return Type::doubleTy();
      case Tok::KwVoid: return Type::voidTy();
      default:
        fail("expected type specifier");
    }
}

std::unique_ptr<TranslationUnit>
Parser::parseUnit()
{
    auto unit = std::make_unique<TranslationUnit>();
    try {
        while (!check(Tok::End))
            parseTopLevel(*unit);
    } catch (const ParseError &) {
        // diagnostics already recorded
    }
    return unit;
}

void
Parser::parseTopLevel(TranslationUnit &unit)
{
    SourcePos pos = peek().pos;
    if (!atTypeSpec())
        fail("expected declaration at top level");
    TypePtr base = parseTypeSpec();

    // Peek past pointer stars to see if this is a function.
    size_t save = pos_;
    while (accept(Tok::Star)) {
    }
    bool isFunc = check(Tok::Ident) && peek(1).kind == Tok::LParen;
    pos_ = save;

    if (isFunc) {
        unit.functions.push_back(parseFunctionRest(base, pos));
        return;
    }

    // Global variable declaration list.
    do {
        unit.globals.push_back(parseVarRest(base, /*global=*/true));
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "after global declaration");
}

std::unique_ptr<FuncDecl>
Parser::parseFunctionRest(TypePtr retBase, SourcePos pos)
{
    TypePtr ret = retBase;
    while (accept(Tok::Star))
        ret = Type::pointerTo(ret);
    std::string name = expect(Tok::Ident, "in function definition").text;
    expect(Tok::LParen, "after function name");

    std::vector<std::unique_ptr<ParamDecl>> params;
    std::vector<TypePtr> paramTypes;
    if (!check(Tok::RParen)) {
        if (check(Tok::KwVoid) && peek(1).kind == Tok::RParen) {
            advance();
        } else {
            do {
                SourcePos ppos = peek().pos;
                if (!atTypeSpec())
                    fail("expected parameter type");
                TypePtr pt = parseTypeSpec();
                while (accept(Tok::Star))
                    pt = Type::pointerTo(pt);
                std::string pname =
                    expect(Tok::Ident, "in parameter list").text;
                if (accept(Tok::LBracket)) {
                    // Array parameter decays to pointer.
                    expect(Tok::RBracket, "in array parameter");
                    pt = Type::pointerTo(pt);
                }
                paramTypes.push_back(pt);
                params.push_back(std::make_unique<ParamDecl>(
                    ppos, pname, pt, static_cast<int>(params.size())));
            } while (accept(Tok::Comma));
        }
    }
    expect(Tok::RParen, "after parameter list");

    auto fn = std::make_unique<FuncDecl>(
        pos, name, Type::function(ret, std::move(paramTypes)));
    fn->params = std::move(params);
    if (accept(Tok::Semi))
        return fn; // prototype
    fn->body = parseBlock();
    return fn;
}

std::unique_ptr<VarDecl>
Parser::parseVarRest(TypePtr base, bool global)
{
    SourcePos pos = peek().pos;
    TypePtr ty = base;
    while (accept(Tok::Star))
        ty = Type::pointerTo(ty);
    std::string name = expect(Tok::Ident, "in variable declaration").text;

    // Array dimensions, innermost last.
    std::vector<int64_t> dims;
    while (accept(Tok::LBracket)) {
        const Token &n = expect(Tok::IntLit, "as array dimension");
        dims.push_back(n.ival);
        expect(Tok::RBracket, "after array dimension");
    }
    for (auto it = dims.rbegin(); it != dims.rend(); ++it)
        ty = Type::arrayOf(ty, *it);

    auto var = std::make_unique<VarDecl>(pos, name, ty, global);
    if (accept(Tok::Assign))
        var->init = parseInitializer();
    return var;
}

Initializer
Parser::parseInitializer()
{
    Initializer init;
    if (check(Tok::StrLit)) {
        init.isString = true;
        init.stringInit = advance().text;
        return init;
    }
    if (accept(Tok::LBrace)) {
        if (!check(Tok::RBrace)) {
            do {
                init.list.push_back(parseConditional());
            } while (accept(Tok::Comma) && !check(Tok::RBrace));
        }
        expect(Tok::RBrace, "after initializer list");
        return init;
    }
    init.scalar = parseExpr();
    return init;
}

std::unique_ptr<BlockStmt>
Parser::parseBlock()
{
    SourcePos pos = peek().pos;
    expect(Tok::LBrace, "to open block");
    auto block = std::make_unique<BlockStmt>(pos);
    while (!check(Tok::RBrace) && !check(Tok::End)) {
        if (atTypeSpec())
            block->stmts.push_back(parseDeclStmt());
        else
            block->stmts.push_back(parseStmt());
    }
    expect(Tok::RBrace, "to close block");
    return block;
}

std::unique_ptr<DeclStmt>
Parser::parseDeclStmt()
{
    SourcePos pos = peek().pos;
    TypePtr base = parseTypeSpec();
    auto ds = std::make_unique<DeclStmt>(pos);
    do {
        ds->vars.push_back(parseVarRest(base, /*global=*/false));
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "after declaration");
    return ds;
}

StmtUP
Parser::parseStmt()
{
    SourcePos pos = peek().pos;
    switch (peek().kind) {
      case Tok::LBrace:
        return parseBlock();
      case Tok::KwIf: {
        advance();
        expect(Tok::LParen, "after 'if'");
        ExprUP cond = parseExpr();
        expect(Tok::RParen, "after if condition");
        StmtUP thenS = parseStmt();
        StmtUP elseS;
        if (accept(Tok::KwElse))
            elseS = parseStmt();
        return std::make_unique<IfStmt>(pos, std::move(cond),
                                        std::move(thenS), std::move(elseS));
      }
      case Tok::KwWhile: {
        advance();
        expect(Tok::LParen, "after 'while'");
        ExprUP cond = parseExpr();
        expect(Tok::RParen, "after while condition");
        StmtUP body = parseStmt();
        return std::make_unique<WhileStmt>(pos, std::move(cond),
                                           std::move(body));
      }
      case Tok::KwDo: {
        advance();
        StmtUP body = parseStmt();
        expect(Tok::KwWhile, "after do body");
        expect(Tok::LParen, "after 'while'");
        ExprUP cond = parseExpr();
        expect(Tok::RParen, "after do-while condition");
        expect(Tok::Semi, "after do-while");
        return std::make_unique<DoWhileStmt>(pos, std::move(body),
                                             std::move(cond));
      }
      case Tok::KwFor: {
        advance();
        expect(Tok::LParen, "after 'for'");
        ExprUP init, cond, step;
        if (!check(Tok::Semi))
            init = parseExpr();
        expect(Tok::Semi, "after for initializer");
        if (!check(Tok::Semi))
            cond = parseExpr();
        expect(Tok::Semi, "after for condition");
        if (!check(Tok::RParen))
            step = parseExpr();
        expect(Tok::RParen, "after for step");
        StmtUP body = parseStmt();
        return std::make_unique<ForStmt>(pos, std::move(init),
                                         std::move(cond), std::move(step),
                                         std::move(body));
      }
      case Tok::KwReturn: {
        advance();
        ExprUP value;
        if (!check(Tok::Semi))
            value = parseExpr();
        expect(Tok::Semi, "after return");
        return std::make_unique<ReturnStmt>(pos, std::move(value));
      }
      case Tok::KwBreak:
        advance();
        expect(Tok::Semi, "after break");
        return std::make_unique<BreakStmt>(pos);
      case Tok::KwContinue:
        advance();
        expect(Tok::Semi, "after continue");
        return std::make_unique<ContinueStmt>(pos);
      case Tok::Semi:
        advance();
        return std::make_unique<BlockStmt>(pos); // empty statement
      default: {
        ExprUP e = parseExpr();
        expect(Tok::Semi, "after expression statement");
        return std::make_unique<ExprStmt>(pos, std::move(e));
      }
    }
}

ExprUP
Parser::parseExpr()
{
    ExprUP lhs = parseConditional();
    SourcePos pos = peek().pos;
    BinOp op;
    switch (peek().kind) {
      case Tok::Assign: op = BinOp::None; break;
      case Tok::PlusAssign: op = BinOp::Add; break;
      case Tok::MinusAssign: op = BinOp::Sub; break;
      case Tok::StarAssign: op = BinOp::Mul; break;
      case Tok::SlashAssign: op = BinOp::Div; break;
      case Tok::PercentAssign: op = BinOp::Rem; break;
      default:
        return lhs;
    }
    advance();
    ExprUP rhs = parseExpr(); // right associative
    return std::make_unique<AssignExpr>(pos, op, std::move(lhs),
                                        std::move(rhs));
}

ExprUP
Parser::parseConditional()
{
    ExprUP cond = parseLogicalOr();
    if (!check(Tok::Question))
        return cond;
    SourcePos pos = advance().pos;
    ExprUP thenE = parseExpr();
    expect(Tok::Colon, "in conditional expression");
    ExprUP elseE = parseConditional();
    return std::make_unique<CondExpr>(pos, std::move(cond),
                                      std::move(thenE), std::move(elseE));
}

namespace {

/** Helper to build left-associative binary chains. */
template <typename Sub, typename Match>
ExprUP
leftAssoc(Sub sub, Match match)
{
    ExprUP lhs = sub();
    for (;;) {
        BinOp op;
        SourcePos pos;
        if (!match(op, pos))
            return lhs;
        ExprUP rhs = sub();
        lhs = std::make_unique<BinaryExpr>(pos, op, std::move(lhs),
                                           std::move(rhs));
    }
}

} // anonymous namespace

ExprUP
Parser::parseLogicalOr()
{
    return leftAssoc([&] { return parseLogicalAnd(); },
                     [&](BinOp &op, SourcePos &pos) {
                         if (!check(Tok::PipePipe))
                             return false;
                         pos = advance().pos;
                         op = BinOp::LogOr;
                         return true;
                     });
}

ExprUP
Parser::parseLogicalAnd()
{
    return leftAssoc([&] { return parseBitOr(); },
                     [&](BinOp &op, SourcePos &pos) {
                         if (!check(Tok::AmpAmp))
                             return false;
                         pos = advance().pos;
                         op = BinOp::LogAnd;
                         return true;
                     });
}

ExprUP
Parser::parseBitOr()
{
    return leftAssoc([&] { return parseBitXor(); },
                     [&](BinOp &op, SourcePos &pos) {
                         if (!check(Tok::Pipe))
                             return false;
                         pos = advance().pos;
                         op = BinOp::BitOr;
                         return true;
                     });
}

ExprUP
Parser::parseBitXor()
{
    return leftAssoc([&] { return parseBitAnd(); },
                     [&](BinOp &op, SourcePos &pos) {
                         if (!check(Tok::Caret))
                             return false;
                         pos = advance().pos;
                         op = BinOp::BitXor;
                         return true;
                     });
}

ExprUP
Parser::parseBitAnd()
{
    return leftAssoc([&] { return parseEquality(); },
                     [&](BinOp &op, SourcePos &pos) {
                         if (!check(Tok::Amp))
                             return false;
                         pos = advance().pos;
                         op = BinOp::BitAnd;
                         return true;
                     });
}

ExprUP
Parser::parseEquality()
{
    return leftAssoc([&] { return parseRelational(); },
                     [&](BinOp &op, SourcePos &pos) {
                         if (check(Tok::Eq))
                             op = BinOp::Eq;
                         else if (check(Tok::Ne))
                             op = BinOp::Ne;
                         else
                             return false;
                         pos = advance().pos;
                         return true;
                     });
}

ExprUP
Parser::parseRelational()
{
    return leftAssoc([&] { return parseShift(); },
                     [&](BinOp &op, SourcePos &pos) {
                         switch (peek().kind) {
                           case Tok::Lt: op = BinOp::Lt; break;
                           case Tok::Le: op = BinOp::Le; break;
                           case Tok::Gt: op = BinOp::Gt; break;
                           case Tok::Ge: op = BinOp::Ge; break;
                           default: return false;
                         }
                         pos = advance().pos;
                         return true;
                     });
}

ExprUP
Parser::parseShift()
{
    return leftAssoc([&] { return parseAdditive(); },
                     [&](BinOp &op, SourcePos &pos) {
                         if (check(Tok::Shl))
                             op = BinOp::Shl;
                         else if (check(Tok::Shr))
                             op = BinOp::Shr;
                         else
                             return false;
                         pos = advance().pos;
                         return true;
                     });
}

ExprUP
Parser::parseAdditive()
{
    return leftAssoc([&] { return parseMultiplicative(); },
                     [&](BinOp &op, SourcePos &pos) {
                         if (check(Tok::Plus))
                             op = BinOp::Add;
                         else if (check(Tok::Minus))
                             op = BinOp::Sub;
                         else
                             return false;
                         pos = advance().pos;
                         return true;
                     });
}

ExprUP
Parser::parseMultiplicative()
{
    return leftAssoc([&] { return parseUnary(); },
                     [&](BinOp &op, SourcePos &pos) {
                         switch (peek().kind) {
                           case Tok::Star: op = BinOp::Mul; break;
                           case Tok::Slash: op = BinOp::Div; break;
                           case Tok::Percent: op = BinOp::Rem; break;
                           default: return false;
                         }
                         pos = advance().pos;
                         return true;
                     });
}

ExprUP
Parser::parseUnary()
{
    SourcePos pos = peek().pos;
    switch (peek().kind) {
      case Tok::Minus:
        advance();
        return std::make_unique<UnaryExpr>(pos, UnOp::Neg, parseUnary());
      case Tok::Bang:
        advance();
        return std::make_unique<UnaryExpr>(pos, UnOp::LogNot, parseUnary());
      case Tok::Tilde:
        advance();
        return std::make_unique<UnaryExpr>(pos, UnOp::BitNot, parseUnary());
      case Tok::Star:
        advance();
        return std::make_unique<UnaryExpr>(pos, UnOp::Deref, parseUnary());
      case Tok::Amp:
        advance();
        return std::make_unique<UnaryExpr>(pos, UnOp::AddrOf, parseUnary());
      case Tok::PlusPlus:
        advance();
        return std::make_unique<UnaryExpr>(pos, UnOp::PreInc, parseUnary());
      case Tok::MinusMinus:
        advance();
        return std::make_unique<UnaryExpr>(pos, UnOp::PreDec, parseUnary());
      default:
        return parsePostfix();
    }
}

ExprUP
Parser::parsePostfix()
{
    ExprUP e = parsePrimary();
    for (;;) {
        SourcePos pos = peek().pos;
        if (accept(Tok::LBracket)) {
            ExprUP idx = parseExpr();
            expect(Tok::RBracket, "after array index");
            e = std::make_unique<IndexExpr>(pos, std::move(e),
                                            std::move(idx));
        } else if (check(Tok::PlusPlus)) {
            advance();
            e = std::make_unique<UnaryExpr>(pos, UnOp::PostInc,
                                            std::move(e));
        } else if (check(Tok::MinusMinus)) {
            advance();
            e = std::make_unique<UnaryExpr>(pos, UnOp::PostDec,
                                            std::move(e));
        } else {
            return e;
        }
    }
}

ExprUP
Parser::parsePrimary()
{
    SourcePos pos = peek().pos;
    switch (peek().kind) {
      case Tok::IntLit:
        return std::make_unique<IntLitExpr>(pos, advance().ival);
      case Tok::CharLit:
        return std::make_unique<IntLitExpr>(pos, advance().ival);
      case Tok::FloatLit:
        return std::make_unique<FloatLitExpr>(pos, advance().fval);
      case Tok::StrLit:
        return std::make_unique<StrLitExpr>(pos, advance().text);
      case Tok::LParen: {
        advance();
        ExprUP e = parseExpr();
        expect(Tok::RParen, "after parenthesized expression");
        return e;
      }
      case Tok::Ident: {
        std::string name = advance().text;
        if (accept(Tok::LParen)) {
            std::vector<ExprUP> args;
            if (!check(Tok::RParen)) {
                do {
                    args.push_back(parseConditional());
                } while (accept(Tok::Comma));
            }
            expect(Tok::RParen, "after call arguments");
            return std::make_unique<CallExpr>(pos, std::move(name),
                                              std::move(args));
        }
        return std::make_unique<IdentExpr>(pos, std::move(name));
      }
      default:
        fail(std::string("expected expression, found ") +
             tokName(peek().kind));
    }
}

std::unique_ptr<TranslationUnit>
parseAndCheck(const std::string &source, DiagEngine &diag)
{
    Lexer lexer(source, diag);
    auto tokens = lexer.lexAll();
    if (diag.hasErrors())
        return nullptr;
    Parser parser(std::move(tokens), diag);
    auto unit = parser.parseUnit();
    if (diag.hasErrors())
        return nullptr;
    Sema sema(diag);
    sema.check(*unit);
    if (diag.hasErrors())
        return nullptr;
    return unit;
}

} // namespace wmstream::frontend
