#include "frontend/sema.h"

#include "support/str.h"

namespace wmstream::frontend {

void
Sema::check(TranslationUnit &unit)
{
    unit_ = &unit;
    pushScope(); // global scope

    // Register functions first so forward calls resolve.
    for (auto &fn : unit.functions) {
        auto [it, inserted] = functions_.emplace(fn->name, fn.get());
        if (!inserted && it->second->body && fn->body) {
            diag_.error(fn->pos(), "redefinition of function " + fn->name);
        } else if (!inserted && fn->body) {
            it->second = fn.get(); // definition supersedes prototype
        }
    }

    for (auto &g : unit.globals) {
        checkVarDecl(*g);
        declare(g.get());
    }

    for (auto &fn : unit.functions)
        if (fn->body)
            checkFunction(*fn);

    popScope();
}

void
Sema::pushScope()
{
    scopes_.emplace_back();
}

void
Sema::popScope()
{
    scopes_.pop_back();
}

void
Sema::declare(Decl *d)
{
    auto &top = scopes_.back();
    if (!top.emplace(d->name, d).second)
        diag_.error(d->pos(), "redeclaration of " + d->name);
}

Decl *
Sema::lookup(const std::string &name)
{
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        auto f = it->find(name);
        if (f != it->end())
            return f->second;
    }
    return nullptr;
}

void
Sema::checkVarDecl(VarDecl &v)
{
    if (v.type->isVoid() || v.type->isFunction()) {
        diag_.error(v.pos(), "variable " + v.name + " has invalid type " +
                                 v.type->str());
        return;
    }
    // Arrays always live in memory.
    if (v.type->isArray())
        v.addressTaken = true;

    if (v.init.empty())
        return;

    if ((v.init.isString || !v.init.list.empty()) && !v.isGlobal) {
        diag_.error(v.pos(), "initializer lists are only supported on "
                             "global arrays");
        return;
    }
    if (v.init.isString) {
        if (!v.type->isArray() || !v.type->base()->isChar()) {
            diag_.error(v.pos(), "string initializer requires char array");
            return;
        }
        if (static_cast<int64_t>(v.init.stringInit.size()) + 1 >
                v.type->arraySize()) {
            diag_.error(v.pos(), "string initializer too long for " +
                                     v.name);
        }
        return;
    }
    if (!v.init.list.empty()) {
        if (!v.type->isArray()) {
            diag_.error(v.pos(), "initializer list requires array type");
            return;
        }
        if (static_cast<int64_t>(v.init.list.size()) > v.type->arraySize())
            diag_.error(v.pos(), "too many initializers for " + v.name);
        for (auto &e : v.init.list) {
            checkExpr(e);
            if (v.isGlobal && !isConstInit(*e))
                diag_.error(e->pos(), "global initializer must be constant");
            else if (v.isGlobal)
                checkConstDivisors(*e);
            convertTo(e, v.type->base());
        }
        return;
    }
    // Scalar initializer.
    checkExpr(v.init.scalar);
    if (v.isGlobal && !isConstInit(*v.init.scalar))
        diag_.error(v.init.scalar->pos(),
                    "global initializer must be constant");
    else if (v.isGlobal)
        checkConstDivisors(*v.init.scalar);
    convertTo(v.init.scalar, v.type);
}

void
Sema::checkFunction(FuncDecl &fn)
{
    currentFn_ = &fn;
    pushScope();
    for (auto &p : fn.params) {
        if (p->type->isVoid())
            diag_.error(p->pos(), "parameter has void type");
        declare(p.get());
    }
    checkStmt(*fn.body);
    popScope();
    currentFn_ = nullptr;
}

void
Sema::checkStmt(Stmt &s)
{
    switch (s.kind()) {
      case NodeKind::BlockStmt: {
        auto &b = static_cast<BlockStmt &>(s);
        pushScope();
        for (auto &st : b.stmts)
            checkStmt(*st);
        popScope();
        break;
      }
      case NodeKind::DeclStmt: {
        auto &d = static_cast<DeclStmt &>(s);
        for (auto &v : d.vars) {
            checkVarDecl(*v);
            declare(v.get());
        }
        break;
      }
      case NodeKind::ExprStmt:
        checkExpr(static_cast<ExprStmt &>(s).expr);
        break;
      case NodeKind::IfStmt: {
        auto &i = static_cast<IfStmt &>(s);
        checkCondition(i.cond);
        checkStmt(*i.thenStmt);
        if (i.elseStmt)
            checkStmt(*i.elseStmt);
        break;
      }
      case NodeKind::WhileStmt: {
        auto &w = static_cast<WhileStmt &>(s);
        checkCondition(w.cond);
        ++loopDepth_;
        checkStmt(*w.body);
        --loopDepth_;
        break;
      }
      case NodeKind::DoWhileStmt: {
        auto &w = static_cast<DoWhileStmt &>(s);
        ++loopDepth_;
        checkStmt(*w.body);
        --loopDepth_;
        checkCondition(w.cond);
        break;
      }
      case NodeKind::ForStmt: {
        auto &f = static_cast<ForStmt &>(s);
        if (f.init)
            checkExpr(f.init);
        if (f.cond)
            checkCondition(f.cond);
        if (f.step)
            checkExpr(f.step);
        ++loopDepth_;
        checkStmt(*f.body);
        --loopDepth_;
        break;
      }
      case NodeKind::ReturnStmt: {
        auto &r = static_cast<ReturnStmt &>(s);
        TypePtr ret = currentFn_->returnType();
        if (r.value) {
            if (ret->isVoid()) {
                diag_.error(r.pos(), "return with value in void function");
            } else {
                checkExpr(r.value);
                convertTo(r.value, ret);
            }
        } else if (!ret->isVoid()) {
            diag_.error(r.pos(), "return without value in non-void "
                                 "function");
        }
        break;
      }
      case NodeKind::BreakStmt:
        // The expander asserts on loopless break/continue; reject
        // them here so malformed input gets a positioned diagnostic.
        if (loopDepth_ == 0)
            diag_.error(s.pos(), "break statement outside a loop");
        break;
      case NodeKind::ContinueStmt:
        if (loopDepth_ == 0)
            diag_.error(s.pos(), "continue statement outside a loop");
        break;
      default:
        WS_PANIC("checkStmt: unexpected node kind");
    }
}

void
Sema::convertTo(ExprUP &e, const TypePtr &to)
{
    decay(e);
    const TypePtr &from = e->type;
    if (Type::equal(from, to))
        return;
    // Integral types interconvert freely; int<->double via cast node;
    // pointer<->pointer allowed (mini-C is permissive, like K&R C).
    bool ok = (from->isArithmetic() && to->isArithmetic()) ||
              (from->isPointer() && to->isPointer()) ||
              (from->isIntegral() && to->isPointer()) ||
              (from->isPointer() && to->isIntegral());
    if (!ok) {
        diag_.error(e->pos(), "cannot convert " + from->str() + " to " +
                                  to->str());
        return;
    }
    e = std::make_unique<CastExpr>(e->pos(), to, std::move(e));
}

void
Sema::decay(ExprUP &e)
{
    if (e->type && e->type->isArray()) {
        TypePtr ptr = Type::pointerTo(e->type->base());
        e = std::make_unique<CastExpr>(e->pos(), ptr, std::move(e));
    }
}

TypePtr
Sema::arithConvert(ExprUP &l, ExprUP &r, SourcePos pos)
{
    decay(l);
    decay(r);
    if (!l->type->isArithmetic() || !r->type->isArithmetic()) {
        diag_.error(pos, "arithmetic operator requires arithmetic "
                         "operands");
        return Type::intTy();
    }
    if (l->type->isDouble() || r->type->isDouble()) {
        convertTo(l, Type::doubleTy());
        convertTo(r, Type::doubleTy());
        return Type::doubleTy();
    }
    // char promotes to int implicitly (values are int-width anyway).
    return Type::intTy();
}

bool
Sema::isLValue(const Expr &e) const
{
    switch (e.kind()) {
      case NodeKind::Ident: {
        const auto &id = static_cast<const IdentExpr &>(e);
        return id.decl && !id.decl->type->isArray() &&
               !id.decl->type->isFunction();
      }
      case NodeKind::Index:
        return true;
      case NodeKind::Unary:
        return static_cast<const UnaryExpr &>(e).op == UnOp::Deref;
      default:
        return false;
    }
}

bool
Sema::isConstInit(const Expr &e) const
{
    switch (e.kind()) {
      case NodeKind::IntLit:
      case NodeKind::FloatLit:
      case NodeKind::StrLit:
        return true;
      case NodeKind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(e);
        return u.op == UnOp::Neg && isConstInit(*u.operand);
      }
      case NodeKind::Cast:
        return isConstInit(*static_cast<const CastExpr &>(e).operand);
      case NodeKind::Binary: {
        const auto &b = static_cast<const BinaryExpr &>(e);
        return isConstInit(*b.lhs) && isConstInit(*b.rhs);
      }
      default:
        return false;
    }
}

namespace {

/** A constant value during initializer divisor checking. */
struct CVal
{
    bool isFloat = false;
    int64_t i = 0;
    double f = 0.0;
};

/**
 * Best-effort constant evaluation mirroring the expander's folder
 * (interp::evalConstExpr, which the frontend cannot link against).
 * Returns false for anything unknown — including division by zero,
 * which the caller diagnoses separately.
 */
bool
evalConst(const Expr &e, CVal &out)
{
    switch (e.kind()) {
      case NodeKind::IntLit:
        out = {false, static_cast<const IntLitExpr &>(e).value, 0.0};
        return true;
      case NodeKind::FloatLit:
        out = {true, 0, static_cast<const FloatLitExpr &>(e).value};
        return true;
      case NodeKind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(e);
        if (u.op != UnOp::Neg || !evalConst(*u.operand, out))
            return false;
        if (out.isFloat)
            out.f = -out.f;
        else
            out.i = -out.i;
        return true;
      }
      case NodeKind::Cast: {
        const auto &c = static_cast<const CastExpr &>(e);
        if (!evalConst(*c.operand, out))
            return false;
        if (c.type->isDouble() && !out.isFloat)
            out = {true, 0, static_cast<double>(out.i)};
        else if (!c.type->isDouble() && out.isFloat)
            out = {false, static_cast<int64_t>(out.f), 0.0};
        return true;
      }
      case NodeKind::Binary: {
        const auto &b = static_cast<const BinaryExpr &>(e);
        CVal l, r;
        if (!evalConst(*b.lhs, l) || !evalConst(*b.rhs, r))
            return false;
        if (l.isFloat || r.isFloat) {
            double a = l.isFloat ? l.f : static_cast<double>(l.i);
            double c = r.isFloat ? r.f : static_cast<double>(r.i);
            switch (b.op) {
              case BinOp::Add: out = {true, 0, a + c}; return true;
              case BinOp::Sub: out = {true, 0, a - c}; return true;
              case BinOp::Mul: out = {true, 0, a * c}; return true;
              default: return false;
            }
        }
        auto u = [](int64_t x) { return static_cast<uint64_t>(x); };
        int64_t a = l.i, c = r.i;
        switch (b.op) {
          case BinOp::Add:
            out = {false, static_cast<int64_t>(u(a) + u(c)), 0.0};
            return true;
          case BinOp::Sub:
            out = {false, static_cast<int64_t>(u(a) - u(c)), 0.0};
            return true;
          case BinOp::Mul:
            out = {false, static_cast<int64_t>(u(a) * u(c)), 0.0};
            return true;
          case BinOp::Div:
            if (c == 0)
                return false;
            out = {false, a / c, 0.0};
            return true;
          case BinOp::Rem:
            if (c == 0)
                return false;
            out = {false, a % c, 0.0};
            return true;
          case BinOp::Shl: out = {false, a << (c & 63), 0.0}; return true;
          case BinOp::Shr: out = {false, a >> (c & 63), 0.0}; return true;
          case BinOp::BitAnd: out = {false, a & c, 0.0}; return true;
          case BinOp::BitOr: out = {false, a | c, 0.0}; return true;
          case BinOp::BitXor: out = {false, a ^ c, 0.0}; return true;
          case BinOp::Eq: out = {false, a == c, 0.0}; return true;
          case BinOp::Ne: out = {false, a != c, 0.0}; return true;
          case BinOp::Lt: out = {false, a < c, 0.0}; return true;
          case BinOp::Le: out = {false, a <= c, 0.0}; return true;
          case BinOp::Gt: out = {false, a > c, 0.0}; return true;
          case BinOp::Ge: out = {false, a >= c, 0.0}; return true;
          default:
            return false;
        }
      }
      default:
        return false;
    }
}

} // anonymous namespace

void
Sema::checkConstDivisors(const Expr &e)
{
    switch (e.kind()) {
      case NodeKind::Unary:
        checkConstDivisors(*static_cast<const UnaryExpr &>(e).operand);
        break;
      case NodeKind::Cast:
        checkConstDivisors(*static_cast<const CastExpr &>(e).operand);
        break;
      case NodeKind::Binary: {
        const auto &b = static_cast<const BinaryExpr &>(e);
        checkConstDivisors(*b.lhs);
        checkConstDivisors(*b.rhs);
        if (b.op == BinOp::Div || b.op == BinOp::Rem) {
            CVal v;
            if (evalConst(*b.rhs, v) && !v.isFloat && v.i == 0)
                diag_.error(b.pos(), "division by zero in constant "
                                     "initializer");
        }
        break;
      }
      default:
        break;
    }
}

std::string
Sema::internString(const std::string &value)
{
    for (const auto &[name, bytes] : unit_->stringPool)
        if (bytes.size() == value.size() + 1 &&
                bytes.compare(0, value.size(), value) == 0) {
            return name;
        }
    std::string name = strFormat("__str%d", nextString_++);
    unit_->stringPool.emplace_back(name, value + '\0');
    return name;
}

void
Sema::checkCondition(ExprUP &e)
{
    checkExpr(e);
    decay(e);
    if (!e->type->isScalar())
        diag_.error(e->pos(), "condition must have scalar type");
}

void
Sema::checkExpr(ExprUP &e)
{
    switch (e->kind()) {
      case NodeKind::IntLit:
        e->type = Type::intTy();
        break;
      case NodeKind::FloatLit:
        e->type = Type::doubleTy();
        break;
      case NodeKind::StrLit: {
        auto &s = static_cast<StrLitExpr &>(*e);
        s.poolName = internString(s.value);
        s.type = Type::pointerTo(Type::charTy());
        break;
      }
      case NodeKind::Ident: {
        auto &id = static_cast<IdentExpr &>(*e);
        Decl *d = lookup(id.name);
        if (!d) {
            diag_.error(id.pos(), "use of undeclared identifier " +
                                      id.name);
            id.type = Type::intTy();
            break;
        }
        id.decl = d;
        id.type = d->type;
        break;
      }
      case NodeKind::Unary: {
        auto &u = static_cast<UnaryExpr &>(*e);
        checkExpr(u.operand);
        switch (u.op) {
          case UnOp::Neg:
            decay(u.operand);
            if (!u.operand->type->isArithmetic())
                diag_.error(u.pos(), "negation requires arithmetic type");
            u.type = u.operand->type->isDouble() ? Type::doubleTy()
                                                 : Type::intTy();
            break;
          case UnOp::LogNot:
            decay(u.operand);
            if (!u.operand->type->isScalar())
                diag_.error(u.pos(), "! requires scalar type");
            u.type = Type::intTy();
            break;
          case UnOp::BitNot:
            decay(u.operand);
            if (!u.operand->type->isIntegral())
                diag_.error(u.pos(), "~ requires integral type");
            u.type = Type::intTy();
            break;
          case UnOp::Deref:
            decay(u.operand);
            if (!u.operand->type->isPointer()) {
                diag_.error(u.pos(), "cannot dereference " +
                                         u.operand->type->str());
                u.type = Type::intTy();
            } else {
                u.type = u.operand->type->base();
            }
            break;
          case UnOp::AddrOf: {
            if (!isLValue(*u.operand) &&
                    !(u.operand->type && u.operand->type->isArray())) {
                diag_.error(u.pos(), "cannot take address of rvalue");
            }
            // Mark the underlying variable as address-taken.
            Expr *base = u.operand.get();
            while (base->kind() == NodeKind::Index)
                base = static_cast<IndexExpr *>(base)->base.get();
            if (base->kind() == NodeKind::Ident) {
                Decl *d = static_cast<IdentExpr *>(base)->decl;
                if (auto *v = dynamic_cast<VarDecl *>(d))
                    v->addressTaken = true;
                else if (auto *p = dynamic_cast<ParamDecl *>(d))
                    p->addressTaken = true;
            }
            u.type = Type::pointerTo(u.operand->type);
            break;
          }
          case UnOp::PreInc:
          case UnOp::PreDec:
          case UnOp::PostInc:
          case UnOp::PostDec:
            if (!isLValue(*u.operand))
                diag_.error(u.pos(), "++/-- requires an lvalue");
            if (!u.operand->type->isIntegral() &&
                    !u.operand->type->isPointer() &&
                    !u.operand->type->isDouble()) {
                diag_.error(u.pos(), "++/-- requires scalar type");
            }
            u.type = u.operand->type;
            break;
        }
        break;
      }
      case NodeKind::Binary: {
        auto &b = static_cast<BinaryExpr &>(*e);
        checkExpr(b.lhs);
        checkExpr(b.rhs);
        switch (b.op) {
          case BinOp::Add:
          case BinOp::Sub: {
            decay(b.lhs);
            decay(b.rhs);
            bool lp = b.lhs->type->isPointer();
            bool rp = b.rhs->type->isPointer();
            if (lp && rp) {
                if (b.op != BinOp::Sub)
                    diag_.error(b.pos(), "cannot add two pointers");
                b.type = Type::intTy();
            } else if (lp || rp) {
                if (rp && b.op == BinOp::Sub)
                    diag_.error(b.pos(), "cannot subtract pointer from "
                                         "integer");
                if (rp)
                    std::swap(b.lhs, b.rhs); // canonical: ptr on the left
                if (!b.rhs->type->isIntegral())
                    diag_.error(b.pos(), "pointer offset must be integral");
                b.type = b.lhs->type;
            } else {
                b.type = arithConvert(b.lhs, b.rhs, b.pos());
            }
            break;
          }
          case BinOp::Mul:
          case BinOp::Div:
            b.type = arithConvert(b.lhs, b.rhs, b.pos());
            break;
          case BinOp::Rem:
          case BinOp::Shl:
          case BinOp::Shr:
          case BinOp::BitAnd:
          case BinOp::BitOr:
          case BinOp::BitXor:
            decay(b.lhs);
            decay(b.rhs);
            if (!b.lhs->type->isIntegral() || !b.rhs->type->isIntegral())
                diag_.error(b.pos(), "operator requires integral operands");
            b.type = Type::intTy();
            break;
          case BinOp::Eq:
          case BinOp::Ne:
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge: {
            decay(b.lhs);
            decay(b.rhs);
            if (b.lhs->type->isPointer() || b.rhs->type->isPointer()) {
                // pointer comparison; allow pointer vs integral 0
            } else {
                arithConvert(b.lhs, b.rhs, b.pos());
            }
            b.type = Type::intTy();
            break;
          }
          case BinOp::LogAnd:
          case BinOp::LogOr:
            decay(b.lhs);
            decay(b.rhs);
            if (!b.lhs->type->isScalar() || !b.rhs->type->isScalar())
                diag_.error(b.pos(), "logical operator requires scalar "
                                     "operands");
            b.type = Type::intTy();
            break;
          case BinOp::None:
            WS_PANIC("BinOp::None in BinaryExpr");
        }
        break;
      }
      case NodeKind::Assign: {
        auto &a = static_cast<AssignExpr &>(*e);
        checkExpr(a.lhs);
        checkExpr(a.rhs);
        if (!isLValue(*a.lhs)) {
            diag_.error(a.pos(), "assignment target is not an lvalue");
            a.type = Type::intTy();
            break;
        }
        if (a.op != BinOp::None) {
            // Compound assignment: type-check as lhs op rhs.
            decay(a.rhs);
            if (a.lhs->type->isPointer()) {
                if ((a.op != BinOp::Add && a.op != BinOp::Sub) ||
                        !a.rhs->type->isIntegral()) {
                    diag_.error(a.pos(), "invalid compound assignment on "
                                         "pointer");
                }
            } else if (a.lhs->type->isDouble() ||
                       a.rhs->type->isDouble()) {
                if (a.op == BinOp::Rem || a.op == BinOp::Shl ||
                        a.op == BinOp::Shr) {
                    diag_.error(a.pos(), "invalid operator for double");
                }
                convertTo(a.rhs, Type::doubleTy());
            }
        } else {
            convertTo(a.rhs, a.lhs->type);
        }
        a.type = a.lhs->type;
        break;
      }
      case NodeKind::Cond: {
        auto &c = static_cast<CondExpr &>(*e);
        checkCondition(c.cond);
        checkExpr(c.thenExpr);
        checkExpr(c.elseExpr);
        decay(c.thenExpr);
        decay(c.elseExpr);
        if (c.thenExpr->type->isDouble() || c.elseExpr->type->isDouble()) {
            convertTo(c.thenExpr, Type::doubleTy());
            convertTo(c.elseExpr, Type::doubleTy());
            c.type = Type::doubleTy();
        } else if (c.thenExpr->type->isPointer()) {
            c.type = c.thenExpr->type;
        } else {
            c.type = Type::intTy();
        }
        break;
      }
      case NodeKind::Index: {
        auto &ix = static_cast<IndexExpr &>(*e);
        checkExpr(ix.base);
        checkExpr(ix.index);
        if (!ix.index->type->isIntegral())
            diag_.error(ix.pos(), "array index must be integral");
        TypePtr bt = ix.base->type;
        if (bt->isArray()) {
            ix.type = bt->base();
        } else if (bt->isPointer()) {
            ix.type = bt->base();
        } else {
            diag_.error(ix.pos(), "cannot index " + bt->str());
            ix.type = Type::intTy();
        }
        break;
      }
      case NodeKind::Call: {
        auto &c = static_cast<CallExpr &>(*e);
        auto it = functions_.find(c.callee);
        if (it == functions_.end()) {
            diag_.error(c.pos(), "call to undeclared function " + c.callee);
            c.type = Type::intTy();
            for (auto &a : c.args)
                checkExpr(a);
            break;
        }
        c.decl = it->second;
        const auto &params = c.decl->type->params();
        if (c.args.size() != params.size()) {
            diag_.error(c.pos(),
                        strFormat("%s expects %zu arguments, got %zu",
                                  c.callee.c_str(), params.size(),
                                  c.args.size()));
        }
        for (size_t i = 0; i < c.args.size(); ++i) {
            checkExpr(c.args[i]);
            if (i < params.size())
                convertTo(c.args[i], params[i]);
            else
                decay(c.args[i]);
        }
        c.type = c.decl->returnType();
        break;
      }
      case NodeKind::Cast: {
        auto &c = static_cast<CastExpr &>(*e);
        checkExpr(c.operand);
        break;
      }
      default:
        WS_PANIC("checkExpr: unexpected node kind");
    }
}

} // namespace wmstream::frontend
