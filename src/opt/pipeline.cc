#include "opt/passes.h"

namespace wmstream::opt {

void
runCleanupPipeline(rtl::Function &fn, const rtl::MachineTraits &traits,
                   const rtl::Program *prog)
{
    runLegalize(fn, traits);
    // The paper's optimizer reinvokes phases freely; this is the
    // standard cleanup round run between the structural phases.
    for (int round = 0; round < 4; ++round) {
        int changes = 0;
        changes += runBranchOpt(fn);
        changes += runCombine(fn, traits);
        changes += runCopyPropagate(fn, traits);
        changes += runLocalCSE(fn, traits);
        changes += runDeadCodeElim(fn, traits);
        if (!changes)
            break;
    }
    runLoopInvariantCodeMotion(fn, traits, prog);
    // Branch optimization must precede dead-code elimination inside a
    // round: deleting a fallthrough CondJump leaves its compare — on
    // WM a CC-FIFO enqueue nothing will ever dequeue — for DCE to
    // collect, and the round cap means a later round is not
    // guaranteed to run.
    for (int round = 0; round < 4; ++round) {
        int changes = 0;
        changes += runBranchOpt(fn);
        changes += runCombine(fn, traits);
        changes += runCopyPropagate(fn, traits);
        changes += runLocalCSE(fn, traits);
        changes += runDeadCodeElim(fn, traits);
        if (!changes)
            break;
    }
    fn.renumber();
}

} // namespace wmstream::opt
