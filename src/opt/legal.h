/**
 * @file
 * Target-legality predicates for RTL shapes.
 *
 * The combine phase merges RTLs only when the result is a real
 * instruction of the target: on WM a dual-operation
 * (R1 op1 R2) op2 R3 with register/immediate leaves; on the scalar
 * target a single three-address operation, with the richer 68020-style
 * addressing shapes allowed in load/store address fields.
 */

#ifndef WMSTREAM_OPT_LEGAL_H
#define WMSTREAM_OPT_LEGAL_H

#include "rtl/expr.h"
#include "rtl/machine.h"

namespace wmstream::opt {

/** True if @p e can sit in a register/immediate operand position. */
bool fitsOperand(const rtl::ExprPtr &e, const rtl::MachineTraits &traits);

/** True if @p e is a legal source for an Assign instruction. */
bool fitsAssignSrc(const rtl::ExprPtr &e, const rtl::MachineTraits &traits);

/** True if @p e is a legal compare source (Assign to a CC cell). */
bool fitsCompareSrc(const rtl::ExprPtr &e,
                    const rtl::MachineTraits &traits);

/** True if @p e is a legal load/store address expression. */
bool fitsAddr(const rtl::ExprPtr &e, const rtl::MachineTraits &traits);

} // namespace wmstream::opt

#endif // WMSTREAM_OPT_LEGAL_H
