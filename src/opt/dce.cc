#include "cfg/liveness.h"
#include "opt/passes.h"

namespace wmstream::opt {

using cfg::RegKey;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

namespace {

/** Instructions reading the data FIFOs must never be deleted: each
 *  read consumes one element of a hardware queue. */
bool
consumesFifo(const Inst &inst)
{
    for (const auto &r : rtl::instUses(inst)) {
        if ((r->regFile() == RegFile::Int ||
             r->regFile() == RegFile::Flt) &&
                (r->regIndex() == 0 || r->regIndex() == 1)) {
            return true;
        }
    }
    return false;
}

/** A FIFO-register destination is an enqueue: also a side effect. */
bool
producesFifo(const Inst &inst)
{
    auto d = rtl::instDef(inst);
    return d &&
           (d->regFile() == RegFile::Int || d->regFile() == RegFile::Flt) &&
           (d->regIndex() == 0 || d->regIndex() == 1);
}

} // anonymous namespace

int
runDeadCodeElim(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    int deleted = 0;
    for (int round = 0; round < 20; ++round) {
        cfg::Liveness live(fn, traits);
        int before = deleted;
        for (auto &bp : fn.blocks()) {
            rtl::Block *b = bp.get();
            cfg::RegSet liveSet = live.liveOut(b);
            // Backward scan with a precise local live set; collect
            // indexes to delete, then erase.
            std::vector<size_t> dead;
            for (size_t n = b->insts.size(); n-- > 0;) {
                const Inst &inst = b->insts[n];
                bool removable = (inst.kind == InstKind::Assign ||
                                  inst.kind == InstKind::Load) &&
                                 !consumesFifo(inst) &&
                                 !producesFifo(inst);
                if (removable) {
                    RegKey d{inst.dst->regFile(), inst.dst->regIndex()};
                    bool selfCopy =
                        inst.kind == InstKind::Assign &&
                        inst.src->isReg(d.file, d.index);
                    bool needed = liveSet.count(d) &&
                                  !cfg::isZeroReg(d, traits) && !selfCopy;
                    if (!needed) {
                        dead.push_back(n);
                        continue; // do not account its uses
                    }
                }
                for (const RegKey &k : cfg::instDefKeys(inst, traits))
                    liveSet.erase(k);
                for (const RegKey &k : cfg::instUseKeys(inst))
                    if (!cfg::isZeroReg(k, traits))
                        liveSet.insert(k);
            }
            for (size_t idx : dead) {
                b->insts.erase(b->insts.begin() +
                               static_cast<ptrdiff_t>(idx));
                ++deleted;
            }
        }
        if (deleted == before)
            break;
    }
    return deleted;
}

} // namespace wmstream::opt
