/**
 * @file
 * Induction-variable and linear-address-form analysis.
 *
 * Supplies what the paper's partition vectors need: for each memory
 * reference in a loop, the induction variable, the direction, and the
 * 'cee' / 'dee' values of the address expression addr = cee*iv + dee
 * (see AHO86 ch. 10 for the induction-variable framework).
 *
 * A basic induction variable is a register with exactly one definition
 * in the loop, of the form r := r +/- c, that executes once per
 * iteration (its block dominates every latch). Address expressions are
 * linearized into
 *
 *     coeff * iv + base + offset
 *
 * where base identifies the memory region: a global symbol (possibly
 * through a register that was loaded with the symbol's address outside
 * the loop), a loop-invariant register (e.g. a pointer parameter), or
 * unknown.
 */

#ifndef WMSTREAM_OPT_INDVARS_H
#define WMSTREAM_OPT_INDVARS_H

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cfg/dominators.h"
#include "cfg/liveness.h"
#include "cfg/loops.h"
#include "rtl/machine.h"

namespace wmstream::opt {

/** A basic induction variable of a loop. */
struct BasicIV
{
    rtl::ExprPtr reg;        ///< the register
    int64_t step = 0;        ///< signed per-iteration increment
    rtl::Block *defBlock = nullptr;
    size_t defIndex = 0;     ///< index of the increment in defBlock
};

/** A linearized value: coeff * iv + base + offset. */
struct LinForm
{
    enum class Base : uint8_t { None, Sym, Reg, Unknown };

    bool valid = false;
    int64_t coeff = 0;
    Base baseKind = Base::None;
    std::string sym;          ///< Base::Sym
    rtl::ExprPtr baseReg;     ///< Base::Reg (loop-invariant register)
    int64_t offset = 0;       ///< constant addend (includes sym offset)

    /** The paper's 'dee' printable form, e.g. "_x-8". */
    std::string deeStr() const;
};

/** A point in the program: block plus instruction index. */
struct InstPoint
{
    rtl::Block *block = nullptr;
    size_t index = 0;
};

/**
 * Induction-variable analysis for one loop.
 *
 * Construct once per loop (after the CFG and dominator tree are
 * current); then query basic IVs and linearize address expressions.
 */
class IndVarAnalysis
{
  public:
    IndVarAnalysis(rtl::Function &fn, cfg::Loop &loop,
                   const cfg::DominatorTree &dt,
                   const rtl::MachineTraits &traits);

    const std::vector<BasicIV> &basicIVs() const { return ivs_; }

    /** The IV whose register equals @p r, or nullptr. */
    const BasicIV *findIV(const rtl::ExprPtr &r) const;

    /** True if no register in @p e is defined inside the loop. */
    bool isInvariant(const rtl::ExprPtr &e) const;

    /** True if register (file,index) has no definition inside the loop. */
    bool regInvariant(rtl::RegFile file, int index) const;

    /**
     * Linearize @p e as evaluated at @p at with respect to @p iv.
     * Values of the IV refer to the IV at entry to the current
     * iteration; a use after the increment adds one step.
     */
    LinForm linearize(const rtl::ExprPtr &e, const BasicIV &iv,
                      InstPoint at) const;

    /**
     * Resolve a loop-invariant register to the symbol it addresses, by
     * chasing its unique reaching definitions (reg := _sym, reg :=
     * other_reg, reg := reg + const). Returns Base::Reg form when the
     * chain ends at an opaque value (parameter, call result).
     */
    LinForm resolveInvariantReg(const rtl::ExprPtr &r) const;

  private:
    struct DefSite
    {
        rtl::Block *block = nullptr;
        size_t index = 0;
        int count = 0;
    };

    void collectDefs();
    void findBasicIVs();

    /** Unique textual definition of a register in the whole function. */
    const rtl::Inst *uniqueDef(const cfg::RegKey &key,
                               InstPoint *where = nullptr) const;

    /** True if the IV increment executes before @p at in an iteration. */
    bool incrementedBefore(const BasicIV &iv, InstPoint at) const;

    static LinForm addForms(const LinForm &a, const LinForm &b, int sign);
    static LinForm scaleForm(const LinForm &a, int64_t factor);

    rtl::Function &fn_;
    cfg::Loop &loop_;
    const cfg::DominatorTree &dt_;
    const rtl::MachineTraits traits_;

    std::unordered_map<cfg::RegKey, DefSite, cfg::RegKeyHash> loopDefs_;
    std::unordered_map<cfg::RegKey, DefSite, cfg::RegKeyHash> allDefs_;
    std::vector<BasicIV> ivs_;
};

} // namespace wmstream::opt

#endif // WMSTREAM_OPT_INDVARS_H
