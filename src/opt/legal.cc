#include "opt/legal.h"

namespace wmstream::opt {

using rtl::Expr;
using rtl::ExprPtr;
using rtl::MachineTraits;
using rtl::Op;

namespace {

bool
isAluOp(Op op)
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Rem: case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::Shr: case Op::Sar:
        return true;
      default:
        return false;
    }
}

/** Simple (non-relational) two-leaf binary. */
bool
isSimpleBin(const ExprPtr &e, const MachineTraits &t)
{
    return e->kind() == Expr::Kind::Bin && isAluOp(e->op()) &&
           fitsOperand(e->lhs(), t) && fitsOperand(e->rhs(), t);
}

bool
isCommutative(Op op)
{
    switch (op) {
      case Op::Add: case Op::Mul: case Op::And:
      case Op::Or: case Op::Xor:
        return true;
      default:
        return false;
    }
}

/** Dual-operation shape: inner op on the left, or commuted right. */
bool
isDualShape(const ExprPtr &e, const MachineTraits &t)
{
    if (e->kind() != Expr::Kind::Bin)
        return false;
    if (isSimpleBin(e->lhs(), t) && fitsOperand(e->rhs(), t))
        return true;
    // The encoding swaps the operands of a commutative outer operator.
    return isCommutative(e->op()) && fitsOperand(e->lhs(), t) &&
           isSimpleBin(e->rhs(), t);
}

} // anonymous namespace

bool
fitsOperand(const ExprPtr &e, const MachineTraits &traits)
{
    switch (e->kind()) {
      case Expr::Kind::Reg:
        return e->regFile() != rtl::RegFile::CC;
      case Expr::Kind::Const:
        if (rtl::isFloatType(e->type()))
            return false; // float immediates come from the pool
        return e->ival() >= -traits.maxImmediate &&
               e->ival() < traits.maxImmediate;
      default:
        return false;
    }
}

bool
fitsAssignSrc(const ExprPtr &e, const MachineTraits &traits)
{
    // Leaves: registers and immediates; whole-source Sym/Const of any
    // size is a materialization (the llh/sll pair on WM).
    if (e->isSym())
        return true;
    if (e->isConst())
        return !rtl::isFloatType(e->type());
    if (fitsOperand(e, traits))
        return true;
    if (e->kind() == Expr::Kind::Un) {
        switch (e->op()) {
          case Op::CvtIF:
          case Op::CvtFI:
            return fitsOperand(e->lhs(), traits);
          default:
            return false;
        }
    }
    if (e->kind() != Expr::Kind::Bin || !isAluOp(e->op()))
        return false;
    // Single operation.
    if (fitsOperand(e->lhs(), traits) && fitsOperand(e->rhs(), traits))
        return true;
    if (!traits.hasDualOp)
        return false;
    return isDualShape(e, traits);
}

bool
fitsCompareSrc(const ExprPtr &e, const MachineTraits &traits)
{
    if (e->kind() != Expr::Kind::Bin || !rtl::isRelationalOp(e->op()))
        return false;
    if (!fitsOperand(e->rhs(), traits))
        return false;
    if (fitsOperand(e->lhs(), traits))
        return true;
    // WM allows a dual op with a relational outer operator, e.g.
    // r31 := (r21-1) <= 0 (paper Figure 7, line 1).
    return traits.hasDualOp && isSimpleBin(e->lhs(), traits);
}

bool
fitsAddr(const ExprPtr &e, const MachineTraits &traits)
{
    if (traits.isWM()) {
        // Addresses are computed by the ALU pair: same shapes as an
        // Assign source, but symbols must already be in registers.
        if (fitsOperand(e, traits))
            return true;
        if (e->kind() != Expr::Kind::Bin || !isAluOp(e->op()))
            return false;
        if (fitsOperand(e->lhs(), traits) && fitsOperand(e->rhs(), traits))
            return true;
        return isDualShape(e, traits);
    }

    // Scalar target: 68020-style modes.
    //   (reg), (d16,reg), abs, (reg,reg), (d8,reg,reg*scale)
    if (e->isSym() || fitsOperand(e, traits))
        return true;
    if (e->kind() != Expr::Kind::Bin || e->op() != Op::Add)
        return false;
    const ExprPtr &l = e->lhs();
    const ExprPtr &r = e->rhs();
    auto isBase = [&](const ExprPtr &x) {
        return x->isReg() || x->isSym();
    };
    auto isIndex = [&](const ExprPtr &x) {
        if (x->isReg())
            return true;
        // reg << k, k in 0..3 (scale 1,2,4,8)
        return x->kind() == Expr::Kind::Bin && x->op() == Op::Shl &&
               x->lhs()->isReg() && x->rhs()->isConst() &&
               x->rhs()->ival() >= 0 && x->rhs()->ival() <= 3;
    };
    if (isBase(r) && (isIndex(l) || l->isConst()))
        return true;
    if (isBase(l) && (isIndex(r) || r->isConst()))
        return true;
    // (index + base) + displacement
    if (r->isConst() && l->kind() == Expr::Kind::Bin &&
            l->op() == Op::Add) {
        const ExprPtr &ll = l->lhs();
        const ExprPtr &lr = l->rhs();
        if ((isBase(lr) && isIndex(ll)) || (isBase(ll) && isIndex(lr)))
            return true;
    }
    return false;
}

} // namespace wmstream::opt
