#include <string>
#include <unordered_map>
#include <vector>

#include "cfg/liveness.h"
#include "opt/passes.h"

namespace wmstream::opt {

using cfg::RegKey;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

namespace {

bool
exprReadsFifo(const ExprPtr &e)
{
    bool found = false;
    rtl::forEachNode(e, [&](const Expr &n) {
        if (n.kind() == Expr::Kind::Reg &&
                (n.regFile() == RegFile::Int ||
                 n.regFile() == RegFile::Flt) &&
                (n.regIndex() == 0 || n.regIndex() == 1)) {
            found = true;
        }
    });
    return found;
}

/** An available expression or load: key expr, holding register. */
struct AvailEntry
{
    ExprPtr expr;
    ExprPtr reg;
};

void
invalidate(std::vector<AvailEntry> &table, const RegKey &k)
{
    for (auto it = table.begin(); it != table.end();) {
        bool kill = rtl::usesReg(it->expr, k.file, k.index) ||
                    it->reg->isReg(k.file, k.index);
        it = kill ? table.erase(it) : ++it;
    }
}

const AvailEntry *
find(const std::vector<AvailEntry> &table, const ExprPtr &e)
{
    for (const auto &entry : table)
        if (rtl::exprEqual(entry.expr, e))
            return &entry;
    return nullptr;
}

} // anonymous namespace

int
runLocalCSE(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    int changes = 0;
    for (auto &bp : fn.blocks()) {
        std::vector<AvailEntry> exprs;
        std::vector<AvailEntry> loads; // expr = Mem(addr) of the load

        for (Inst &inst : bp->insts) {
            switch (inst.kind) {
              case InstKind::Assign: {
                if (inst.dst->regFile() != RegFile::CC &&
                        inst.src->kind() == Expr::Kind::Bin &&
                        !exprReadsFifo(inst.src)) {
                    if (const AvailEntry *hit = find(exprs, inst.src)) {
                        inst.src = hit->reg;
                        ++changes;
                    }
                }
                break;
              }
              case InstKind::Load: {
                if (!exprReadsFifo(inst.addr)) {
                    ExprPtr cell = rtl::makeMem(inst.addr, inst.memType);
                    if (const AvailEntry *hit = find(loads, cell)) {
                        // Same cell already in a register: turn the
                        // load into a copy.
                        Inst copy = rtl::makeAssign(inst.dst, hit->reg,
                                                    inst.comment);
                        copy.id = inst.id;
                        inst = std::move(copy);
                        ++changes;
                    }
                }
                break;
              }
              default:
                break;
            }

            // Kill table entries invalidated by this instruction.
            for (const RegKey &k : cfg::instDefKeys(inst, traits)) {
                invalidate(exprs, k);
                invalidate(loads, k);
            }
            switch (inst.kind) {
              case InstKind::Store:
              case InstKind::StreamIn:
              case InstKind::StreamOut:
              case InstKind::Call:
                loads.clear(); // conservative: any memory may change
                break;
              default:
                break;
            }

            // Record new availability.
            if (inst.kind == InstKind::Assign &&
                    inst.dst->regFile() != RegFile::CC &&
                    rtl::isVirtualFile(inst.dst->regFile()) &&
                    inst.src->kind() == Expr::Kind::Bin &&
                    !exprReadsFifo(inst.src) &&
                    !rtl::usesReg(inst.src, inst.dst->regFile(),
                                  inst.dst->regIndex())) {
                exprs.push_back({inst.src, inst.dst});
            }
            if (inst.kind == InstKind::Load &&
                    rtl::isVirtualFile(inst.dst->regFile()) &&
                    !exprReadsFifo(inst.addr) &&
                    !rtl::usesReg(inst.addr, inst.dst->regFile(),
                                  inst.dst->regIndex())) {
                loads.push_back(
                    {rtl::makeMem(inst.addr, inst.memType), inst.dst});
            }
            // Store-to-load forwarding within the block. Only full
            // 8-byte cells: a narrow store truncates, so the register
            // is not the stored value.
            if (inst.kind == InstKind::Store && inst.src->isReg() &&
                    rtl::dataTypeSize(inst.memType) == 8 &&
                    rtl::isVirtualFile(inst.src->regFile()) &&
                    !exprReadsFifo(inst.addr)) {
                loads.push_back(
                    {rtl::makeMem(inst.addr, inst.memType), inst.src});
            }
        }
    }
    return changes;
}

} // namespace wmstream::opt
