#include <unordered_map>
#include <unordered_set>

#include "opt/passes.h"
#include "support/diag.h"

namespace wmstream::opt {

using rtl::Block;
using rtl::Inst;
using rtl::InstKind;

namespace {

/**
 * Resolve @p label through empty blocks and trivial jump blocks to the
 * label ultimately reached.
 */
std::string
threadTarget(rtl::Function &fn, const std::string &label)
{
    std::string cur = label;
    std::unordered_set<std::string> seen;
    for (;;) {
        if (!seen.insert(cur).second)
            return cur; // cycle (e.g. empty infinite loop)
        Block *b = fn.findBlock(cur);
        if (!b)
            return cur;
        if (b->insts.empty()) {
            // Falls through: effective target is the next block.
            auto &blocks = fn.blocks();
            for (size_t i = 0; i + 1 < blocks.size(); ++i) {
                if (blocks[i].get() == b) {
                    cur = blocks[i + 1]->label();
                    goto next;
                }
            }
            return cur;
        }
        if (b->insts.size() == 1 && b->insts[0].kind == InstKind::Jump) {
            cur = b->insts[0].target;
            continue;
        }
        return cur;
      next:;
    }
}

} // anonymous namespace

int
runBranchOpt(rtl::Function &fn)
{
    int changes = 0;

    // 1. Thread branches through empty/jump-only blocks.
    for (auto &bp : fn.blocks()) {
        for (Inst &inst : bp->insts) {
            if (!inst.isBranch())
                continue;
            std::string t = threadTarget(fn, inst.target);
            if (t != inst.target) {
                inst.target = t;
                ++changes;
            }
        }
    }

    // 2. Delete jumps (conditional or not) to the next block in layout.
    auto &blocks = fn.blocks();
    for (size_t i = 0; i + 1 < blocks.size(); ++i) {
        Block *b = blocks[i].get();
        if (b->insts.empty())
            continue;
        Inst &last = b->insts.back();
        if ((last.kind == InstKind::Jump ||
             last.kind == InstKind::CondJump) &&
                last.target == blocks[i + 1]->label()) {
            // Removing a CondJump leaves its compare unconsumed — on
            // WM that is a CC-FIFO enqueue nothing will ever dequeue,
            // not just dead code. Every cleanup round therefore runs
            // dead-code elimination after this pass (never before it
            // as the round's last step), so the compare is always
            // collected before the verifier or the hardware sees it.
            b->insts.pop_back();
            ++changes;
        }
    }

    fn.removeUnreachable();

    // 3. Merge single-predecessor fallthrough/jump chains.
    bool merged = true;
    while (merged) {
        merged = false;
        fn.recomputeCfg();
        auto &bs = fn.blocks();
        for (size_t i = 0; i < bs.size(); ++i) {
            Block *b = bs[i].get();
            if (b->succs.size() != 1)
                continue;
            Block *s = b->succs[0];
            if (s == b || s->preds.size() != 1)
                continue;
            if (s == fn.entry())
                continue;
            // b's terminator must be nothing or a jump straight to s.
            const Inst *term = b->terminator();
            if (term && term->kind != InstKind::Jump)
                continue;
            // If s falls through, the merge is only safe when s sits
            // directly after b in layout (the fallthrough target would
            // change otherwise).
            bool sFalls = !s->terminator() ||
                          s->terminator()->kind == InstKind::CondJump ||
                          s->terminator()->kind == InstKind::JumpStream;
            if (sFalls && !(i + 1 < bs.size() && bs[i + 1].get() == s))
                continue;
            if (term)
                b->insts.pop_back();
            for (Inst &inst : s->insts)
                b->insts.push_back(std::move(inst));
            s->insts.clear();
            // Remove s from layout.
            for (size_t j = 0; j < bs.size(); ++j) {
                if (bs[j].get() == s) {
                    bs.erase(bs.begin() + static_cast<ptrdiff_t>(j));
                    break;
                }
            }
            ++changes;
            merged = true;
            break; // restart: structures invalidated
        }
    }

    fn.recomputeCfg();
    return changes;
}

} // namespace wmstream::opt
