/**
 * @file
 * The classic optimizer phases.
 *
 * Mirrors the paper's Figure 3 phase structure: every phase consumes
 * and produces the same RTL representation, so the driver may invoke
 * any phase at any time ("this largely eliminates phase ordering
 * problems"). All phases keep the CFG edges current on exit.
 */

#ifndef WMSTREAM_OPT_PASSES_H
#define WMSTREAM_OPT_PASSES_H

#include "rtl/machine.h"
#include "rtl/program.h"

namespace wmstream::opt {

/**
 * Instruction combination: fold a single-use register definition into
 * its use when the merged RTL is a legal target instruction. This is
 * what forms WM dual-operation instructions and 68020 addressing modes
 * out of the expander's naive code.
 * @return number of instructions eliminated.
 */
int runCombine(rtl::Function &fn, const rtl::MachineTraits &traits);

/**
 * Reshape expander output into legal target instructions: materialize
 * symbol/large-constant operands into registers and split expression
 * trees deeper than the target's instruction shapes (dual-operation on
 * WM, single-operation on the scalar target).
 * @return number of materialization instructions inserted.
 */
int runLegalize(rtl::Function &fn, const rtl::MachineTraits &traits);

/**
 * Block-local copy and constant propagation over register copies
 * (a := b) and immediates (a := c). Deleting the then-dead copies is
 * left to dead-code elimination.
 * @return number of operand replacements.
 */
int runCopyPropagate(rtl::Function &fn, const rtl::MachineTraits &traits);

/**
 * Global dead-code elimination of assignments and loads whose result
 * is never used (including unconsumed compares).
 * @return number of instructions deleted.
 */
int runDeadCodeElim(rtl::Function &fn, const rtl::MachineTraits &traits);

/**
 * Branch minimization: thread jumps to jumps, delete jumps to the next
 * block, merge single-predecessor fallthrough chains, drop unreachable
 * blocks.
 * @return number of simplifications.
 */
int runBranchOpt(rtl::Function &fn);

/**
 * Block-local common-subexpression elimination over pure assignments
 * and loads (loads are invalidated by stores, streams, and calls).
 * @return number of rewrites.
 */
int runLocalCSE(rtl::Function &fn, const rtl::MachineTraits &traits);

/**
 * Loop-invariant code motion of pure assignments into loop preheaders
 * (the paper performs "loop detection and code motion" before the
 * recurrence algorithm; this is what moves the _x/_y/_z address
 * materializations of Figure 4 out of the loop).
 * @return number of instructions hoisted.
 */
int runLoopInvariantCodeMotion(rtl::Function &fn,
                               const rtl::MachineTraits &traits,
                               const rtl::Program *prog = nullptr);

/**
 * Strength reduction of address computations (paper Step 3): rewrite
 * coeff*iv + base addresses into an incremented pointer register.
 * Applied on scalar targets, where it enables the 68020 auto-increment
 * addressing of Figure 6.
 * @return number of references rewritten.
 */
int runStrengthReduce(rtl::Function &fn, const rtl::MachineTraits &traits);

/**
 * Branch anticipation (WM): move each block's compare as early as its
 * operands allow, fusing a trailing induction-variable increment into
 * it (cc := (i+1) < n). The paper: "It is also the compiler's job to
 * arrange the code so that the computation of the condition code
 * occurs well before the result is needed. When this is done properly,
 * conditional jumps, like unconditional jumps, essentially have zero
 * cost."
 * @return number of compares moved.
 */
int runBranchAnticipate(rtl::Function &fn,
                        const rtl::MachineTraits &traits);

/**
 * Register assignment: map virtual registers onto the architectural
 * files, inserting spill code when needed, and emit prologue/epilogue
 * (stack-pointer adjustment plus callee-saved save/restore).
 * Panics if coloring fails after the spill-iteration cap.
 */
void runRegAlloc(rtl::Function &fn, const rtl::MachineTraits &traits);

/**
 * Run the standard pre-loop-optimization cleanup pipeline. When @p prog
 * is given, loop-invariant loads of unaliased globals (the classic
 * "loop bound lives in memory" case) are hoisted too.
 */
void runCleanupPipeline(rtl::Function &fn,
                        const rtl::MachineTraits &traits,
                        const rtl::Program *prog = nullptr);

} // namespace wmstream::opt

#endif // WMSTREAM_OPT_PASSES_H
