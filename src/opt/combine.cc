#include <unordered_map>

#include "cfg/liveness.h"
#include "opt/legal.h"
#include "opt/passes.h"
#include "support/diag.h"

namespace wmstream::opt {

using cfg::RegKey;
using cfg::RegKeyHash;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

namespace {

/** True if @p e reads a data-FIFO register (volatile on WM). */
bool
readsFifo(const ExprPtr &e)
{
    bool found = false;
    rtl::forEachNode(e, [&](const Expr &n) {
        if (n.kind() == Expr::Kind::Reg &&
                (n.regFile() == RegFile::Int ||
                 n.regFile() == RegFile::Flt) &&
                (n.regIndex() == 0 || n.regIndex() == 1)) {
            found = true;
        }
    });
    return found;
}

struct UseDefCounts
{
    std::unordered_map<RegKey, int, RegKeyHash> uses;
    std::unordered_map<RegKey, int, RegKeyHash> defs;
};

UseDefCounts
countUseDefs(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    UseDefCounts c;
    for (auto &bp : fn.blocks()) {
        for (auto &inst : bp->insts) {
            for (const RegKey &k : cfg::instUseKeys(inst))
                ++c.uses[k];
            for (const RegKey &k : cfg::instDefKeys(inst, traits))
                ++c.defs[k];
        }
    }
    return c;
}

/** Try to fold the definition at @p defIdx into a later use in @p b. */
bool
tryCombineAt(rtl::Block *b, size_t defIdx, const UseDefCounts &counts,
             const rtl::MachineTraits &traits)
{
    Inst &def = b->insts[defIdx];
    if (def.kind != InstKind::Assign)
        return false;
    const ExprPtr &dst = def.dst;
    if (!rtl::isVirtualFile(dst->regFile()))
        return false;
    RegKey dkey{dst->regFile(), dst->regIndex()};
    auto dit = counts.defs.find(dkey);
    auto uit = counts.uses.find(dkey);
    if (!dit->second || dit->second != 1 || uit == counts.uses.end() ||
            uit->second != 1) {
        return false;
    }
    // A source that dequeues a data FIFO may only move to the
    // immediately following instruction, and only when that instruction
    // reads none of the same queues (so no per-queue read reorders).
    bool fifoSrc = readsFifo(def.src);

    // Registers the source depends on; the fold is blocked if any is
    // redefined between the definition and the use.
    std::vector<RegKey> srcRegs;
    for (const auto &r : rtl::collectRegs(def.src))
        srcRegs.push_back({r->regFile(), r->regIndex()});

    for (size_t j = defIdx + 1; j < b->insts.size(); ++j) {
        Inst &use = b->insts[j];
        bool usesD = false;
        for (const RegKey &k : cfg::instUseKeys(use))
            if (k == dkey)
                usesD = true;

        if (usesD) {
            if (fifoSrc) {
                if (j != defIdx + 1)
                    return false;
                // The use must not touch any queue the source reads.
                for (const auto &r : rtl::instUses(use)) {
                    if ((r->regFile() == RegFile::Int ||
                         r->regFile() == RegFile::Flt) &&
                            (r->regIndex() == 0 || r->regIndex() == 1) &&
                            rtl::usesReg(def.src, r->regFile(),
                                         r->regIndex())) {
                        return false;
                    }
                }
            }
            ExprPtr merged;
            switch (use.kind) {
              case InstKind::Assign: {
                merged = rtl::substReg(use.src, dkey.file, dkey.index,
                                       def.src);
                bool legal = use.dst->regFile() == RegFile::CC
                                 ? fitsCompareSrc(merged, traits)
                                 : fitsAssignSrc(merged, traits);
                if (!legal)
                    return false;
                use.src = merged;
                break;
              }
              case InstKind::Load:
              case InstKind::Store: {
                // Only address folds; store data must stay a register.
                if (use.kind == InstKind::Store &&
                        rtl::usesReg(use.src, dkey.file, dkey.index)) {
                    return false;
                }
                merged = rtl::substReg(use.addr, dkey.file, dkey.index,
                                       def.src);
                if (!fitsAddr(merged, traits))
                    return false;
                use.addr = merged;
                break;
              }
              default:
                return false;
            }
            b->insts.erase(b->insts.begin() +
                           static_cast<ptrdiff_t>(defIdx));
            return true;
        }

        if (fifoSrc)
            return false; // FIFO reads cannot move past anything

        // Stop when an instruction between the def and the use
        // redefines an input of the source (or the destination).
        for (const RegKey &k : cfg::instDefKeys(use, traits)) {
            if (k == dkey)
                return false;
            for (const RegKey &s : srcRegs)
                if (k == s)
                    return false;
        }
    }
    return false;
}

} // anonymous namespace

int
runCombine(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    int total = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        UseDefCounts counts = countUseDefs(fn, traits);
        for (auto &bp : fn.blocks()) {
            rtl::Block *b = bp.get();
            for (size_t i = 0; i < b->insts.size(); ++i) {
                if (tryCombineAt(b, i, counts, traits)) {
                    ++total;
                    changed = true;
                    // Counts are stale after a fold; rebuild.
                    counts = countUseDefs(fn, traits);
                    if (i > 0)
                        --i;
                }
            }
        }
    }
    return total;
}

} // namespace wmstream::opt
