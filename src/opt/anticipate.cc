#include "cfg/liveness.h"
#include "opt/legal.h"
#include "opt/passes.h"

namespace wmstream::opt {

using cfg::RegKey;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;
using rtl::RegFile;

namespace {

bool
srcReadsFifo(const ExprPtr &e)
{
    bool found = false;
    rtl::forEachNode(e, [&](const Expr &n) {
        if (n.kind() == Expr::Kind::Reg &&
                (n.regFile() == RegFile::Int ||
                 n.regFile() == RegFile::Flt) &&
                (n.regIndex() == 0 || n.regIndex() == 1)) {
            found = true;
        }
    });
    return found;
}

} // anonymous namespace

int
runBranchAnticipate(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    int changes = 0;
    for (auto &bp : fn.blocks()) {
        rtl::Block *b = bp.get();
        const Inst *term = b->terminator();
        if (!term || term->kind != InstKind::CondJump)
            continue;

        // Exactly one condition-code write in the block.
        size_t cmpIdx = b->insts.size();
        int ccWrites = 0;
        for (size_t i = 0; i < b->insts.size(); ++i) {
            const Inst &inst = b->insts[i];
            if (inst.kind == InstKind::Assign &&
                    inst.dst->regFile() == RegFile::CC) {
                ++ccWrites;
                cmpIdx = i;
            }
        }
        if (ccWrites != 1 || cmpIdx + 1 >= b->insts.size() + 1)
            continue;
        Inst cmp = b->insts[cmpIdx];
        if (srcReadsFifo(cmp.src))
            continue; // dequeues cannot be reordered

        // Try to fuse a trailing induction-variable increment into the
        // compare: if the compare reads R whose only in-block def is
        // R := R +/- c (before the compare), substitute (R +/- c) and
        // require the compare to move above that increment. The fused
        // compare then reads the pre-increment value, which plus c is
        // exactly what the original compare saw.
        auto lastDefBefore = [&](const RegKey &key, size_t before) {
            size_t last = 0;
            for (size_t i = 0; i < before; ++i)
                for (const RegKey &d :
                         cfg::instDefKeys(b->insts[i], traits))
                    if (d == key)
                        last = std::max(last, i + 1);
            return last;
        };

        ExprPtr src = cmp.src;
        size_t positionCap = cmpIdx; // compare may sit at [earliest, cap]
        size_t earliest = 0;
        bool fusedAny = false;
        // Never move a pending condition code across a call: the
        // callee's own compare/branch pairs would dequeue it.
        for (size_t i = 0; i < cmpIdx; ++i)
            if (b->insts[i].kind == InstKind::Call)
                earliest = std::max(earliest, i + 1);
        for (const auto &r : rtl::collectRegs(cmp.src)) {
            RegKey key{r->regFile(), r->regIndex()};
            int defs = 0;
            size_t defIdx = 0;
            for (size_t i = 0; i < cmpIdx; ++i) {
                for (const RegKey &d :
                         cfg::instDefKeys(b->insts[i], traits)) {
                    if (d == key) {
                        ++defs;
                        defIdx = i;
                    }
                }
            }
            if (defs == 0)
                continue; // loop-carried or preheader value: free
            bool fused = false;
            if (defs == 1) {
                const Inst &def = b->insts[defIdx];
                if (def.kind == InstKind::Assign &&
                        def.src->kind() == Expr::Kind::Bin &&
                        (def.src->op() == Op::Add ||
                         def.src->op() == Op::Sub) &&
                        def.src->lhs()->isReg(key.file, key.index) &&
                        def.src->rhs()->isConst()) {
                    ExprPtr cand = rtl::substReg(src, key.file, key.index,
                                                 def.src);
                    if (fitsCompareSrc(cand, traits)) {
                        src = cand;
                        fused = true;
                        fusedAny = true;
                        // Must execute before the increment; its own
                        // pre-increment value has no earlier def.
                        positionCap = std::min(positionCap, defIdx);
                        earliest = std::max(earliest,
                                            lastDefBefore(key, defIdx));
                    }
                }
            }
            if (!fused)
                earliest = std::max(earliest,
                                    lastDefBefore(key, cmpIdx));
        }
        if (earliest > positionCap)
            continue; // conflicting constraints: leave it alone
        size_t target = earliest;
        if (target >= cmpIdx && !fusedAny)
            continue; // no improvement

        cmp.src = src;
        if (cmp.comment.empty())
            cmp.comment = "anticipated compare";
        b->insts.erase(b->insts.begin() + static_cast<ptrdiff_t>(cmpIdx));
        b->insts.insert(b->insts.begin() + static_cast<ptrdiff_t>(target),
                        std::move(cmp));
        ++changes;
    }
    return changes;
}

} // namespace wmstream::opt
