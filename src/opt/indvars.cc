#include "opt/indvars.h"

#include <sstream>

#include "support/diag.h"

namespace wmstream::opt {

using cfg::RegKey;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;
using rtl::RegFile;

std::string
LinForm::deeStr() const
{
    std::ostringstream os;
    switch (baseKind) {
      case Base::None: os << offset; return os.str();
      case Base::Sym: os << "_" << sym; break;
      case Base::Reg:
        os << rtl::regFilePrefix(baseReg->regFile()) << baseReg->regIndex();
        break;
      case Base::Unknown: os << "?"; break;
    }
    if (offset > 0)
        os << "+" << offset;
    else if (offset < 0)
        os << offset;
    return os.str();
}

IndVarAnalysis::IndVarAnalysis(rtl::Function &fn, cfg::Loop &loop,
                               const cfg::DominatorTree &dt,
                               const rtl::MachineTraits &traits)
    : fn_(fn), loop_(loop), dt_(dt), traits_(traits)
{
    collectDefs();
    findBasicIVs();
}

void
IndVarAnalysis::collectDefs()
{
    for (auto &bp : fn_.blocks()) {
        rtl::Block *b = bp.get();
        bool inLoop = loop_.contains(b);
        for (size_t i = 0; i < b->insts.size(); ++i) {
            for (const RegKey &k : cfg::instDefKeys(b->insts[i], traits_)) {
                auto &all = allDefs_[k];
                all.block = b;
                all.index = i;
                ++all.count;
                if (inLoop) {
                    auto &ld = loopDefs_[k];
                    ld.block = b;
                    ld.index = i;
                    ++ld.count;
                }
            }
        }
    }
}

void
IndVarAnalysis::findBasicIVs()
{
    for (const auto &[key, site] : loopDefs_) {
        if (site.count != 1)
            continue;
        if (key.file != RegFile::Int && key.file != RegFile::VInt)
            continue;
        const Inst &inst = site.block->insts[site.index];
        if (inst.kind != InstKind::Assign)
            continue;
        const ExprPtr &src = inst.src;
        if (!src || src->kind() != Expr::Kind::Bin)
            continue;
        if (!src->lhs()->isReg(key.file, key.index) ||
                !src->rhs()->isConst()) {
            continue;
        }
        int64_t step;
        if (src->op() == Op::Add)
            step = src->rhs()->ival();
        else if (src->op() == Op::Sub)
            step = -src->rhs()->ival();
        else
            continue;
        if (step == 0)
            continue;
        // Must execute exactly once per iteration.
        bool dominatesLatches = true;
        for (rtl::Block *latch : loop_.latches)
            if (!dt_.dominates(site.block, latch))
                dominatesLatches = false;
        if (!dominatesLatches)
            continue;
        BasicIV iv;
        iv.reg = inst.dst;
        iv.step = step;
        iv.defBlock = site.block;
        iv.defIndex = site.index;
        ivs_.push_back(std::move(iv));
    }
}

const BasicIV *
IndVarAnalysis::findIV(const ExprPtr &r) const
{
    for (const auto &iv : ivs_)
        if (iv.reg->regFile() == r->regFile() &&
                iv.reg->regIndex() == r->regIndex()) {
            return &iv;
        }
    return nullptr;
}

bool
IndVarAnalysis::regInvariant(RegFile file, int index) const
{
    if ((file == RegFile::Int || file == RegFile::Flt) &&
            index == traits_.zeroReg) {
        return true;
    }
    auto it = loopDefs_.find(RegKey{file, index});
    return it == loopDefs_.end() || it->second.count == 0;
}

bool
IndVarAnalysis::isInvariant(const ExprPtr &e) const
{
    bool inv = true;
    rtl::forEachNode(e, [&](const Expr &n) {
        if (n.kind() == Expr::Kind::Reg &&
                !regInvariant(n.regFile(), n.regIndex())) {
            inv = false;
        }
    });
    return inv;
}

const Inst *
IndVarAnalysis::uniqueDef(const RegKey &key, InstPoint *where) const
{
    auto it = allDefs_.find(key);
    if (it == allDefs_.end() || it->second.count != 1)
        return nullptr;
    if (where) {
        where->block = it->second.block;
        where->index = it->second.index;
    }
    return &it->second.block->insts[it->second.index];
}

bool
IndVarAnalysis::incrementedBefore(const BasicIV &iv, InstPoint at) const
{
    if (at.block == iv.defBlock)
        return iv.defIndex < at.index;
    // Cross-block: the increment precedes the use within an iteration
    // iff the increment's block dominates the use's block.
    return dt_.dominates(iv.defBlock, at.block);
}

LinForm
IndVarAnalysis::addForms(const LinForm &a, const LinForm &b, int sign)
{
    LinForm r;
    if (!a.valid || !b.valid)
        return r;
    r.valid = true;
    r.coeff = a.coeff + sign * b.coeff;
    r.offset = a.offset + sign * b.offset;

    if (a.baseKind == LinForm::Base::Unknown ||
            b.baseKind == LinForm::Base::Unknown) {
        r.baseKind = LinForm::Base::Unknown;
        return r;
    }
    if (b.baseKind == LinForm::Base::None) {
        r.baseKind = a.baseKind;
        r.sym = a.sym;
        r.baseReg = a.baseReg;
        return r;
    }
    if (a.baseKind == LinForm::Base::None) {
        if (sign < 0) {
            // Negative base (c - _sym): give up on identity.
            r.baseKind = LinForm::Base::Unknown;
            return r;
        }
        r.baseKind = b.baseKind;
        r.sym = b.sym;
        r.baseReg = b.baseReg;
        return r;
    }
    // Two bases: they cancel under subtraction of the same identity.
    bool same =
        a.baseKind == b.baseKind &&
        (a.baseKind == LinForm::Base::Sym
             ? a.sym == b.sym
             : (a.baseReg->regFile() == b.baseReg->regFile() &&
                a.baseReg->regIndex() == b.baseReg->regIndex()));
    if (sign < 0 && same) {
        r.baseKind = LinForm::Base::None;
        return r;
    }
    r.baseKind = LinForm::Base::Unknown;
    return r;
}

LinForm
IndVarAnalysis::scaleForm(const LinForm &a, int64_t factor)
{
    LinForm r;
    if (!a.valid)
        return r;
    if (a.baseKind == LinForm::Base::Sym ||
            a.baseKind == LinForm::Base::Reg) {
        if (factor == 1)
            return a;
        r.valid = true;
        r.baseKind = LinForm::Base::Unknown;
        return r;
    }
    r = a;
    r.coeff *= factor;
    r.offset *= factor;
    return r;
}

LinForm
IndVarAnalysis::resolveInvariantReg(const ExprPtr &reg) const
{
    LinForm r;
    r.valid = true;
    ExprPtr cur = reg;
    int64_t extra = 0;
    for (int depth = 0; depth < 16; ++depth) {
        RegKey key{cur->regFile(), cur->regIndex()};
        InstPoint where;
        const Inst *def = uniqueDef(key, &where);
        if (!def || def->kind != InstKind::Assign ||
                !dt_.dominates(where.block, loop_.header) ||
                loop_.contains(where.block)) {
            r.baseKind = LinForm::Base::Reg;
            r.baseReg = cur;
            r.offset = extra;
            return r;
        }
        const ExprPtr &src = def->src;
        if (src->isSym()) {
            r.baseKind = LinForm::Base::Sym;
            r.sym = src->symbol();
            r.offset = extra + src->symOffset();
            return r;
        }
        if (src->isConst() && !rtl::isFloatType(src->type())) {
            r.baseKind = LinForm::Base::None;
            r.offset = extra + src->ival();
            return r;
        }
        if (src->isReg()) {
            cur = src;
            continue;
        }
        if (src->kind() == Expr::Kind::Bin &&
                (src->op() == Op::Add || src->op() == Op::Sub)) {
            // reg := other +/- const, or reg := sym + const forms.
            if (src->lhs()->isReg() && src->rhs()->isConst()) {
                extra += src->op() == Op::Add ? src->rhs()->ival()
                                              : -src->rhs()->ival();
                cur = src->lhs();
                continue;
            }
            if (src->lhs()->isSym() && src->rhs()->isConst() &&
                    src->op() == Op::Add) {
                r.baseKind = LinForm::Base::Sym;
                r.sym = src->lhs()->symbol();
                r.offset = extra + src->lhs()->symOffset() +
                           src->rhs()->ival();
                return r;
            }
        }
        r.baseKind = LinForm::Base::Reg;
        r.baseReg = cur;
        r.offset = extra;
        return r;
    }
    r.baseKind = LinForm::Base::Reg;
    r.baseReg = cur;
    r.offset = extra;
    return r;
}

LinForm
IndVarAnalysis::linearize(const ExprPtr &e, const BasicIV &iv,
                          InstPoint at) const
{
    LinForm invalid;
    switch (e->kind()) {
      case Expr::Kind::Const: {
        if (rtl::isFloatType(e->type()))
            return invalid;
        LinForm r;
        r.valid = true;
        r.offset = e->ival();
        return r;
      }
      case Expr::Kind::Sym: {
        LinForm r;
        r.valid = true;
        r.baseKind = LinForm::Base::Sym;
        r.sym = e->symbol();
        r.offset = e->symOffset();
        return r;
      }
      case Expr::Kind::Reg: {
        if (e->regFile() == iv.reg->regFile() &&
                e->regIndex() == iv.reg->regIndex()) {
            LinForm r;
            r.valid = true;
            r.coeff = 1;
            if (incrementedBefore(iv, at))
                r.offset = iv.step;
            return r;
        }
        if ((e->regFile() == RegFile::Int ||
             e->regFile() == RegFile::Flt) &&
                e->regIndex() == traits_.zeroReg) {
            LinForm r;
            r.valid = true;
            return r;
        }
        if (regInvariant(e->regFile(), e->regIndex()))
            return resolveInvariantReg(e);

        // Defined inside the loop: chase a unique in-loop definition.
        RegKey key{e->regFile(), e->regIndex()};
        auto ait = allDefs_.find(key);
        if (ait == allDefs_.end() || ait->second.count != 1)
            return invalid;
        InstPoint where{ait->second.block, ait->second.index};
        const Inst &def = where.block->insts[where.index];
        if (def.kind != InstKind::Assign)
            return invalid;
        bool reaches =
            (where.block == at.block && where.index < at.index) ||
            (where.block != at.block &&
             dt_.dominates(where.block, at.block));
        if (!reaches)
            return invalid;
        // Evaluate the definition at its own point (any increment
        // between def and use is accounted for by the def-point
        // adjustment being smaller).
        return linearize(def.src, iv, where);
      }
      case Expr::Kind::Bin: {
        switch (e->op()) {
          case Op::Add:
            return addForms(linearize(e->lhs(), iv, at),
                            linearize(e->rhs(), iv, at), +1);
          case Op::Sub:
            return addForms(linearize(e->lhs(), iv, at),
                            linearize(e->rhs(), iv, at), -1);
          case Op::Mul: {
            if (e->rhs()->isConst())
                return scaleForm(linearize(e->lhs(), iv, at),
                                 e->rhs()->ival());
            if (e->lhs()->isConst())
                return scaleForm(linearize(e->rhs(), iv, at),
                                 e->lhs()->ival());
            return invalid;
          }
          case Op::Shl: {
            if (e->rhs()->isConst() && e->rhs()->ival() >= 0 &&
                    e->rhs()->ival() < 32) {
                return scaleForm(linearize(e->lhs(), iv, at),
                                 int64_t{1} << e->rhs()->ival());
            }
            return invalid;
          }
          default:
            return invalid;
        }
      }
      default:
        return invalid;
    }
}

} // namespace wmstream::opt
