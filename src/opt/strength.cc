#include <map>
#include <tuple>

#include "cfg/loops.h"
#include "opt/indvars.h"
#include "opt/passes.h"
#include "support/diag.h"

namespace wmstream::opt {

using rtl::DataType;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;

namespace {

struct RefInfo
{
    rtl::Block *block;
    size_t index;
    LinForm lin;
    int64_t adjOffset; ///< offset relative to the pointer register
};

/** Identity of a strength-reduction group. */
using GroupKey = std::tuple<int /*iv#*/, int64_t /*coeff*/,
                            int /*baseKind*/, std::string /*base id*/>;

std::string
baseIdOf(const LinForm &l)
{
    switch (l.baseKind) {
      case LinForm::Base::Sym:
        return "S:" + l.sym;
      case LinForm::Base::Reg:
        return std::string("R:") + rtl::regFilePrefix(l.baseReg->regFile()) +
               std::to_string(l.baseReg->regIndex());
      case LinForm::Base::None:
        return "N";
      default:
        return "?";
    }
}

int
reduceLoop(rtl::Function &fn, cfg::Loop &loop,
           const cfg::DominatorTree &dt, const rtl::MachineTraits &traits)
{
    IndVarAnalysis ivs(fn, loop, dt, traits);
    if (ivs.basicIVs().empty())
        return 0;

    std::map<GroupKey, std::vector<RefInfo>> groups;
    std::map<GroupKey, const BasicIV *> groupIV;

    for (rtl::Block *b : loop.blocks) {
        for (size_t i = 0; i < b->insts.size(); ++i) {
            Inst &inst = b->insts[i];
            if (inst.kind != InstKind::Load &&
                    inst.kind != InstKind::Store) {
                continue;
            }
            // An address that is already a plain register or
            // register+constant (a walking pointer) is already in
            // reduced form.
            if (inst.addr->isReg())
                continue;
            if (inst.addr->kind() == rtl::Expr::Kind::Bin &&
                    inst.addr->op() == Op::Add &&
                    inst.addr->lhs()->isReg() &&
                    inst.addr->rhs()->isConst()) {
                continue;
            }
            for (size_t v = 0; v < ivs.basicIVs().size(); ++v) {
                const BasicIV &iv = ivs.basicIVs()[v];
                LinForm lin = ivs.linearize(inst.addr, iv,
                                            {b, i});
                if (!lin.valid || lin.coeff == 0 ||
                        lin.baseKind == LinForm::Base::Unknown) {
                    continue;
                }
                RefInfo ref{b, i, lin, 0};
                bool incBefore = false;
                if (b == iv.defBlock)
                    incBefore = iv.defIndex < i;
                else
                    incBefore = dt.dominates(iv.defBlock, b);
                ref.adjOffset =
                    lin.offset - (incBefore ? lin.coeff * iv.step : 0);
                GroupKey key{static_cast<int>(v), lin.coeff,
                             static_cast<int>(lin.baseKind), baseIdOf(lin)};
                groups[key].push_back(ref);
                groupIV[key] = &iv;
                break;
            }
        }
    }

    // Process one group per invocation: preheader creation and bump
    // insertion invalidate the collected indexes, so the driver loop
    // reanalyzes between groups.
    int rewritten = 0;
    if (!groups.empty()) {
        const auto &key = groups.begin()->first;
        auto &refs = groups.begin()->second;
        const BasicIV *iv = groupIV[key];
        const LinForm &proto = refs[0].lin;
        int64_t coeff = proto.coeff;

        int64_t minAdj = refs[0].adjOffset;
        for (const RefInfo &r : refs)
            minAdj = std::min(minAdj, r.adjOffset);

        rtl::Block *pre = cfg::ensurePreheader(fn, loop);
        size_t at = pre->insts.size();
        if (pre->terminator())
            --at;
        auto insertPre = [&](Inst inst) {
            pre->insts.insert(pre->insts.begin() +
                              static_cast<ptrdiff_t>(at++),
                              std::move(inst));
        };

        // p := coeff*iv + base + minAdj, evaluated in the preheader
        // where the IV still holds its initial value.
        ExprPtr p = fn.newVReg(DataType::I64);
        ExprPtr scaled = iv->reg;
        if (coeff != 1) {
            int sh = -1;
            for (int k = 1; k < 32; ++k)
                if (coeff == (int64_t{1} << k))
                    sh = k;
            ExprPtr t = fn.newVReg(DataType::I64);
            insertPre(rtl::makeAssign(
                t, sh > 0 ? rtl::makeBin(Op::Shl, iv->reg,
                                         rtl::makeConst(sh))
                          : rtl::makeBin(Op::Mul, iv->reg,
                                         rtl::makeConst(coeff)),
                "strength-reduce scale"));
            scaled = t;
        }
        ExprPtr base;
        switch (proto.baseKind) {
          case LinForm::Base::Sym: {
            ExprPtr bt = fn.newVReg(DataType::I64);
            insertPre(rtl::makeAssign(bt, rtl::makeSym(proto.sym),
                                      "strength-reduce base"));
            base = bt;
            break;
          }
          case LinForm::Base::Reg:
            base = proto.baseReg;
            break;
          default:
            base = nullptr;
            break;
        }
        ExprPtr init = scaled;
        if (base) {
            ExprPtr t = fn.newVReg(DataType::I64);
            insertPre(rtl::makeAssign(t, rtl::makeBin(Op::Add, scaled,
                                                      base)));
            init = t;
        }
        // p := coeff*iv + base + minAdj (minAdj already folds in any
        // symbol offset through LinForm::offset).
        insertPre(rtl::makeAssign(
            p, rtl::makeBin(Op::Add, init, rtl::makeConst(minAdj)),
            "strength-reduce pointer"));

        // Rewrite references: addr = p + (adj - minAdj).
        for (const RefInfo &r : refs) {
            Inst &inst = r.block->insts[r.index];
            inst.addr = rtl::makeBin(Op::Add, p,
                                     rtl::makeConst(r.adjOffset - minAdj));
            ++rewritten;
        }

        // Advance the pointer right after the IV increment.
        Inst bump = rtl::makeAssign(
            p, rtl::makeBin(Op::Add, p, rtl::makeConst(coeff * iv->step)),
            "strength-reduce bump");
        iv->defBlock->insts.insert(
            iv->defBlock->insts.begin() +
                static_cast<ptrdiff_t>(iv->defIndex + 1),
            std::move(bump));
    }

    fn.recomputeCfg();
    return rewritten;
}

} // anonymous namespace

int
runStrengthReduce(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    int total = 0;
    // One loop at a time: preheader creation invalidates the analyses.
    for (int round = 0; round < 32; ++round) {
        fn.recomputeCfg();
        cfg::DominatorTree dt(fn);
        cfg::LoopInfo li(fn, dt);
        int changed = 0;
        for (auto &loop : li.loops()) {
            bool innermost = true;
            for (auto &other : li.loops())
                if (&other != &loop && loop.contains(other))
                    innermost = false;
            if (!innermost)
                continue;
            changed = reduceLoop(fn, loop, dt, traits);
            if (changed)
                break;
        }
        if (!changed)
            break;
        total += changed;
    }
    return total;
}

} // namespace wmstream::opt
