#include <unordered_map>
#include <unordered_set>

#include "cfg/liveness.h"
#include "cfg/loops.h"
#include "opt/passes.h"

namespace wmstream::opt {

using cfg::RegKey;
using cfg::RegKeyHash;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;
using rtl::RegFile;

namespace {

bool
hasTrapOrFifo(const ExprPtr &e)
{
    bool bad = false;
    rtl::forEachNode(e, [&](const Expr &n) {
        if (n.kind() == Expr::Kind::Bin &&
                (n.op() == Op::Div || n.op() == Op::Rem)) {
            bad = true; // hoisting may introduce a divide fault
        }
        if (n.kind() == Expr::Kind::Reg &&
                (n.regFile() == RegFile::Int ||
                 n.regFile() == RegFile::Flt) &&
                (n.regIndex() == 0 || n.regIndex() == 1)) {
            bad = true; // FIFO reads are not movable
        }
    });
    return bad;
}

/**
 * Syms reachable from @p e, chasing single-def register copies.
 * Sets @p unknown when an opaque register (load result, parameter)
 * feeds the address.
 */
void
collectBaseSyms(rtl::Function &fn, const ExprPtr &e,
                std::unordered_set<std::string> *syms, bool *unknown,
                int depth = 0)
{
    if (!e || depth > 8) {
        *unknown = true;
        return;
    }
    switch (e->kind()) {
      case Expr::Kind::Sym:
        syms->insert(e->symbol());
        return;
      case Expr::Kind::Const:
        return;
      case Expr::Kind::Reg: {
        if ((e->regFile() == RegFile::Int ||
             e->regFile() == RegFile::Flt) &&
                e->regIndex() >= 30) {
            return; // SP/zero never address globals of interest
        }
        // Unique textual definition?
        const Inst *def = nullptr;
        int count = 0;
        for (auto &bp : fn.blocks())
            for (auto &inst : bp->insts)
                if (auto d = rtl::instDef(inst))
                    if (d->isReg(e->regFile(), e->regIndex())) {
                        ++count;
                        def = &inst;
                    }
        if (count != 1 || def->kind != InstKind::Assign) {
            *unknown = true;
            return;
        }
        collectBaseSyms(fn, def->src, syms, unknown, depth + 1);
        return;
      }
      case Expr::Kind::Bin:
        collectBaseSyms(fn, e->lhs(), syms, unknown, depth + 1);
        collectBaseSyms(fn, e->rhs(), syms, unknown, depth + 1);
        return;
      case Expr::Kind::Un:
      case Expr::Kind::Mem:
        collectBaseSyms(fn, e->lhs(), syms, unknown, depth + 1);
        return;
    }
}

/**
 * Hoist loop-invariant loads of read-only or unaliased globals out of
 * @p loop. Safe because an unaliased global can only change through a
 * direct symbol-addressed store, and we verify none targets it here.
 */
int
hoistLoads(rtl::Function &fn, cfg::Loop &loop, const rtl::Program &prog)
{
    rtl::MachineTraits traits;
    // Registers defined in the loop (for invariance of addresses).
    std::unordered_set<RegKey, RegKeyHash> loopDefs;
    bool hasCall = false;
    for (rtl::Block *b : loop.blocks)
        for (auto &inst : b->insts) {
            if (inst.kind == InstKind::Call)
                hasCall = true;
            for (const RegKey &k : cfg::instDefKeys(inst, traits))
                loopDefs.insert(k);
        }

    // Symbols possibly stored to inside the loop.
    std::unordered_set<std::string> storedSyms;
    bool storeUnknown = false;
    for (rtl::Block *b : loop.blocks)
        for (auto &inst : b->insts)
            if (inst.kind == InstKind::Store ||
                    inst.kind == InstKind::StreamOut) {
                collectBaseSyms(fn, inst.addr, &storedSyms,
                                &storeUnknown);
            }

    std::unordered_map<RegKey, int, RegKeyHash> defCount;
    for (auto &bp : fn.blocks())
        for (auto &inst : bp->insts)
            for (const RegKey &k : cfg::instDefKeys(inst, traits))
                ++defCount[k];

    std::vector<std::pair<rtl::Block *, size_t>> order;
    for (rtl::Block *b : loop.blocks) {
        for (size_t i = 0; i < b->insts.size(); ++i) {
            Inst &inst = b->insts[i];
            if (inst.kind != InstKind::Load)
                continue;
            if (!rtl::isVirtualFile(inst.dst->regFile()))
                continue;
            RegKey d{inst.dst->regFile(), inst.dst->regIndex()};
            if (defCount[d] != 1)
                continue;
            // Address must be invariant.
            bool invariant = true;
            for (const auto &r : rtl::collectRegs(inst.addr))
                if (loopDefs.count(RegKey{r->regFile(), r->regIndex()}))
                    invariant = false;
            if (!invariant)
                continue;
            // The loaded global must be read-only, or unaliased with no
            // store to it and no call in the loop.
            std::unordered_set<std::string> syms;
            bool unknown = false;
            collectBaseSyms(fn, inst.addr, &syms, &unknown);
            if (unknown || syms.size() != 1)
                continue;
            const std::string &s = *syms.begin();
            auto *g = const_cast<rtl::Program &>(prog).findGlobal(s);
            if (!g)
                continue;
            bool safe = g->readOnly ||
                        (!g->mayBeAliased && !hasCall &&
                         !storedSyms.count(s));
            if (!safe)
                continue;
            order.emplace_back(b, i);
        }
    }
    if (order.empty())
        return 0;

    rtl::Block *pre = cfg::ensurePreheader(fn, loop);
    size_t at = pre->insts.size();
    if (pre->terminator())
        --at;
    std::vector<Inst> moved;
    for (auto &[b, i] : order)
        moved.push_back(b->insts[i]);
    for (auto &bp : fn.blocks()) {
        rtl::Block *b = bp.get();
        std::vector<size_t> del;
        for (auto &[ob, oi] : order)
            if (ob == b)
                del.push_back(oi);
        std::sort(del.rbegin(), del.rend());
        for (size_t idx : del)
            b->insts.erase(b->insts.begin() + static_cast<ptrdiff_t>(idx));
    }
    pre->insts.insert(pre->insts.begin() + static_cast<ptrdiff_t>(at),
                      moved.begin(), moved.end());
    fn.recomputeCfg();
    return static_cast<int>(moved.size());
}

/** One round: hoist everything possible out of one loop. */
int
hoistLoop(rtl::Function &fn, cfg::Loop &loop)
{
    // Count defs per register (whole function, to prove single-def).
    std::unordered_map<RegKey, int, RegKeyHash> defCount;
    rtl::MachineTraits traits; // clobber sets identical across targets
    for (auto &bp : fn.blocks())
        for (auto &inst : bp->insts)
            for (const RegKey &k : cfg::instDefKeys(inst, traits))
                ++defCount[k];

    // Registers defined anywhere in the loop.
    std::unordered_set<RegKey, RegKeyHash> loopDefs;
    for (rtl::Block *b : loop.blocks)
        for (auto &inst : b->insts)
            for (const RegKey &k : cfg::instDefKeys(inst, traits))
                loopDefs.insert(k);

    // Iteratively collect hoistable instructions.
    std::unordered_set<const Inst *> hoisted;
    std::vector<std::pair<rtl::Block *, size_t>> order;
    bool grew = true;
    while (grew) {
        grew = false;
        for (rtl::Block *b : loop.blocks) {
            for (size_t i = 0; i < b->insts.size(); ++i) {
                Inst &inst = b->insts[i];
                if (hoisted.count(&inst))
                    continue;
                if (inst.kind != InstKind::Assign)
                    continue;
                if (!rtl::isVirtualFile(inst.dst->regFile()))
                    continue;
                RegKey d{inst.dst->regFile(), inst.dst->regIndex()};
                if (defCount[d] != 1)
                    continue;
                if (hasTrapOrFifo(inst.src))
                    continue;
                bool invariant = true;
                for (const auto &r : rtl::collectRegs(inst.src)) {
                    RegKey k{r->regFile(), r->regIndex()};
                    if (!loopDefs.count(k))
                        continue; // defined outside: invariant
                    // Defined in loop: acceptable only if that def is
                    // itself being hoisted.
                    bool viaHoisted = false;
                    for (auto &[hb, hi] : order) {
                        const Inst &h = hb->insts[hi];
                        if (h.dst && h.dst->isReg(k.file, k.index))
                            viaHoisted = true;
                    }
                    if (!viaHoisted)
                        invariant = false;
                }
                if (!invariant)
                    continue;
                hoisted.insert(&inst);
                order.emplace_back(b, i);
                grew = true;
            }
        }
    }
    if (order.empty())
        return 0;

    rtl::Block *pre = cfg::ensurePreheader(fn, loop);
    // Insert in discovery order (dependencies first), before any
    // terminator the preheader may have.
    size_t at = pre->insts.size();
    if (pre->terminator())
        --at;
    std::vector<Inst> moved;
    for (auto &[b, i] : order)
        moved.push_back(b->insts[i]);
    // Delete from the loop blocks (per block, descending index).
    for (auto &bp : fn.blocks()) {
        rtl::Block *b = bp.get();
        std::vector<size_t> del;
        for (auto &[ob, oi] : order)
            if (ob == b)
                del.push_back(oi);
        std::sort(del.rbegin(), del.rend());
        for (size_t idx : del)
            b->insts.erase(b->insts.begin() + static_cast<ptrdiff_t>(idx));
    }
    pre->insts.insert(pre->insts.begin() + static_cast<ptrdiff_t>(at),
                      moved.begin(), moved.end());
    fn.recomputeCfg();
    return static_cast<int>(moved.size());
}

} // anonymous namespace

int
runLoopInvariantCodeMotion(rtl::Function &fn,
                           const rtl::MachineTraits &traits,
                           const rtl::Program *prog)
{
    (void)traits;
    int total = 0;
    // Loop structures change when preheaders are created, so reanalyze
    // after every successful hoist.
    for (int round = 0; round < 64; ++round) {
        fn.recomputeCfg();
        cfg::DominatorTree dt(fn);
        cfg::LoopInfo li(fn, dt);
        int moved = 0;
        for (auto &loop : li.loops()) {
            moved = hoistLoop(fn, loop);
            if (!moved && prog)
                moved = hoistLoads(fn, loop, *prog);
            if (moved)
                break; // structures stale; reanalyze
        }
        if (!moved)
            break;
        total += moved;
    }
    return total;
}

} // namespace wmstream::opt
