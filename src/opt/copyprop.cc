#include <unordered_map>

#include "cfg/liveness.h"
#include "dataflow/cfg_index.h"
#include "dataflow/pool.h"
#include "dataflow/solver.h"
#include "opt/legal.h"
#include "opt/passes.h"

namespace wmstream::opt {

using cfg::RegKey;
using cfg::RegKeyHash;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

namespace {

bool
isFifoReg(const ExprPtr &e)
{
    return e->isReg() &&
           (e->regFile() == RegFile::Int || e->regFile() == RegFile::Flt) &&
           (e->regIndex() == 0 || e->regIndex() == 1);
}

/** A forward map from register to an equivalent leaf. Seeded per
 *  block from the reaching-copies solve, then updated in-place while
 *  walking the block. */
class CopyTable
{
  public:
    void clear() { map_.clear(); }

    void
    invalidate(const RegKey &k)
    {
        map_.erase(k);
        for (auto it = map_.begin(); it != map_.end();) {
            const ExprPtr &v = it->second;
            if (v->isReg() && v->regFile() == k.file &&
                    v->regIndex() == k.index) {
                it = map_.erase(it);
            } else {
                ++it;
            }
        }
    }

    void
    record(const ExprPtr &dst, const ExprPtr &src)
    {
        map_[RegKey{dst->regFile(), dst->regIndex()}] = src;
    }

    ExprPtr
    apply(const ExprPtr &e) const
    {
        switch (e->kind()) {
          case Expr::Kind::Reg: {
            auto it = map_.find(RegKey{e->regFile(), e->regIndex()});
            return it != map_.end() ? it->second : e;
          }
          case Expr::Kind::Bin: {
            ExprPtr l = apply(e->lhs());
            ExprPtr r = apply(e->rhs());
            if (l == e->lhs() && r == e->rhs())
                return e;
            return rtl::makeBin(e->op(), l, r);
          }
          case Expr::Kind::Un: {
            ExprPtr x = apply(e->lhs());
            return x == e->lhs() ? e : rtl::makeUn(e->op(), x, e->type());
          }
          case Expr::Kind::Mem: {
            ExprPtr a = apply(e->addr());
            return a == e->addr() ? e : rtl::makeMem(a, e->type());
          }
          default:
            return e;
        }
    }

  private:
    std::unordered_map<RegKey, ExprPtr, RegKeyHash> map_;
};

/** True when an Assign qualifies as a propagatable copy: non-CC,
 *  non-FIFO destination; leaf source that is a same-file plain
 *  register or a non-float constant. */
bool
isCopyInst(const Inst &inst)
{
    if (inst.kind != InstKind::Assign ||
            inst.dst->regFile() == RegFile::CC || isFifoReg(inst.dst))
        return false;
    const ExprPtr &s = inst.src;
    bool leaf = (s->isReg() && !isFifoReg(s) &&
                 s->regFile() != RegFile::CC) ||
                (s->isConst() && !rtl::isFloatType(s->type()));
    if (!leaf)
        return false;
    // Only same-file copies propagate (no int<->float).
    return !s->isReg() ||
           rtl::isFloatType(s->type()) ==
               rtl::isFloatType(inst.dst->type());
}

/** One copy site in the universe of the reaching-copies solve. */
struct CopyRecord
{
    RegKey dst;
    ExprPtr src;   // leaf expression at analysis time
    bool srcIsReg = false;
    RegKey srcKey{RegFile::Int, -1};
};

/**
 * Whole-function must-reaching-copies: forward, intersect join, one
 * bit per copy site. A record is killed by any redefinition of its
 * destination or its source register (calls clobber per traits).
 */
class ReachingCopies
{
  public:
    ReachingCopies(rtl::Function &fn, const rtl::MachineTraits &traits)
        : cfg_(fn)
    {
        // Collect the universe in program order.
        for (size_t bi = 0; bi < cfg_.size(); ++bi)
            for (const Inst &inst : cfg_.block(bi)->insts)
                if (isCopyInst(inst)) {
                    CopyRecord r;
                    r.dst = RegKey{inst.dst->regFile(),
                                   inst.dst->regIndex()};
                    r.src = inst.src;
                    if (inst.src->isReg()) {
                        r.srcIsReg = true;
                        r.srcKey = RegKey{inst.src->regFile(),
                                          inst.src->regIndex()};
                    }
                    records_.push_back(r);
                }
        solver_ = std::make_unique<dataflow::BitsetSolver>(
            pool_, cfg_, records_.size(),
            dataflow::Direction::Forward,
            dataflow::Join::Intersect);
        if (records_.empty())
            return;

        // Key -> records mentioning it (as dst or src).
        std::unordered_map<RegKey, std::vector<size_t>, RegKeyHash>
            byKey;
        for (size_t i = 0; i < records_.size(); ++i) {
            byKey[records_[i].dst].push_back(i);
            if (records_[i].srcIsReg)
                byKey[records_[i].srcKey].push_back(i);
        }

        // gen/kill by forward simulation of each block.
        size_t nextRecord = 0;
        for (size_t bi = 0; bi < cfg_.size(); ++bi) {
            auto *gen = solver_->gen(bi);
            auto *kill = solver_->kill(bi);
            for (const Inst &inst : cfg_.block(bi)->insts) {
                for (const RegKey &k :
                     cfg::instDefKeys(inst, traits))
                    if (auto it = byKey.find(k); it != byKey.end())
                        for (size_t r : it->second) {
                            dataflow::bitsetReset(gen, r);
                            dataflow::bitsetSet(kill, r);
                        }
                if (isCopyInst(inst)) {
                    dataflow::bitsetSet(gen, nextRecord);
                    dataflow::bitsetReset(kill, nextRecord);
                    ++nextRecord;
                }
            }
        }
        solver_->solve();
    }

    /** Seed @p table with the copies that must reach @p bi 's entry. */
    void seed(size_t bi, CopyTable &table) const
    {
        table.clear();
        if (records_.empty())
            return;
        dataflow::bitsetForEach(
            solver_->words(), solver_->in(bi), [&](size_t r) {
                // Intersection semantics guarantee at most one
                // reaching record per destination key.
                table.record(recordDstExpr(r), records_[r].src);
            });
    }

    const dataflow::CfgIndex &cfg() const { return cfg_; }

  private:
    ExprPtr recordDstExpr(size_t r) const
    {
        const CopyRecord &rec = records_[r];
        // Reconstruct a Reg expr for the table key; type taken from
        // the source leaf (same file by construction).
        return rtl::makeReg(rec.dst.file, rec.dst.index,
                            rec.src->type());
    }

    dataflow::BitsetPool pool_;
    dataflow::CfgIndex cfg_;
    std::unique_ptr<dataflow::BitsetSolver> solver_;
    std::vector<CopyRecord> records_;
};

} // anonymous namespace

int
runCopyPropagate(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    int changes = 0;
    CopyTable table;
    ReachingCopies reaching(fn, traits);
    const dataflow::CfgIndex &cfg = reaching.cfg();

    for (size_t bi = 0; bi < cfg.size(); ++bi) {
        rtl::Block *bp = cfg.block(bi);
        reaching.seed(bi, table);
        for (Inst &inst : bp->insts) {
            // Substitute into operand positions when still legal.
            switch (inst.kind) {
              case InstKind::Assign: {
                ExprPtr ns = table.apply(inst.src);
                bool legal = inst.dst->regFile() == RegFile::CC
                                 ? fitsCompareSrc(ns, traits)
                                 : fitsAssignSrc(ns, traits);
                if (ns != inst.src && legal) {
                    inst.src = ns;
                    ++changes;
                }
                break;
              }
              case InstKind::Load: {
                ExprPtr na = table.apply(inst.addr);
                if (na != inst.addr && fitsAddr(na, traits)) {
                    inst.addr = na;
                    ++changes;
                }
                break;
              }
              case InstKind::Store: {
                ExprPtr na = table.apply(inst.addr);
                if (na != inst.addr && fitsAddr(na, traits)) {
                    inst.addr = na;
                    ++changes;
                }
                ExprPtr nsrc = table.apply(inst.src);
                if (nsrc != inst.src && nsrc->isReg()) {
                    inst.src = nsrc;
                    ++changes;
                }
                break;
              }
              case InstKind::StreamIn:
              case InstKind::StreamOut: {
                ExprPtr na = table.apply(inst.addr);
                if (na != inst.addr && na->isReg()) {
                    inst.addr = na;
                    ++changes;
                }
                if (inst.count) { // null count = unbounded stream
                    ExprPtr nc = table.apply(inst.count);
                    if (nc != inst.count && nc->isReg()) {
                        inst.count = nc;
                        ++changes;
                    }
                }
                break;
              }
              default:
                break;
            }

            // Update the table with this instruction's effect.
            for (const RegKey &k : cfg::instDefKeys(inst, traits))
                table.invalidate(k);
            if (isCopyInst(inst))
                table.record(inst.dst, inst.src);
        }
    }
    return changes;
}

} // namespace wmstream::opt
