#include <unordered_map>

#include "cfg/liveness.h"
#include "opt/legal.h"
#include "opt/passes.h"

namespace wmstream::opt {

using cfg::RegKey;
using cfg::RegKeyHash;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

namespace {

bool
isFifoReg(const ExprPtr &e)
{
    return e->isReg() &&
           (e->regFile() == RegFile::Int || e->regFile() == RegFile::Flt) &&
           (e->regIndex() == 0 || e->regIndex() == 1);
}

/** A forward, block-local map from register to an equivalent leaf. */
class CopyTable
{
  public:
    void clear() { map_.clear(); }

    void
    invalidate(const RegKey &k)
    {
        map_.erase(k);
        for (auto it = map_.begin(); it != map_.end();) {
            const ExprPtr &v = it->second;
            if (v->isReg() && v->regFile() == k.file &&
                    v->regIndex() == k.index) {
                it = map_.erase(it);
            } else {
                ++it;
            }
        }
    }

    void
    record(const ExprPtr &dst, const ExprPtr &src)
    {
        map_[RegKey{dst->regFile(), dst->regIndex()}] = src;
    }

    ExprPtr
    apply(const ExprPtr &e) const
    {
        switch (e->kind()) {
          case Expr::Kind::Reg: {
            auto it = map_.find(RegKey{e->regFile(), e->regIndex()});
            return it != map_.end() ? it->second : e;
          }
          case Expr::Kind::Bin: {
            ExprPtr l = apply(e->lhs());
            ExprPtr r = apply(e->rhs());
            if (l == e->lhs() && r == e->rhs())
                return e;
            return rtl::makeBin(e->op(), l, r);
          }
          case Expr::Kind::Un: {
            ExprPtr x = apply(e->lhs());
            return x == e->lhs() ? e : rtl::makeUn(e->op(), x, e->type());
          }
          case Expr::Kind::Mem: {
            ExprPtr a = apply(e->addr());
            return a == e->addr() ? e : rtl::makeMem(a, e->type());
          }
          default:
            return e;
        }
    }

  private:
    std::unordered_map<RegKey, ExprPtr, RegKeyHash> map_;
};

} // anonymous namespace

int
runCopyPropagate(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    int changes = 0;
    CopyTable table;

    for (auto &bp : fn.blocks()) {
        table.clear();
        for (Inst &inst : bp->insts) {
            // Substitute into operand positions when still legal.
            switch (inst.kind) {
              case InstKind::Assign: {
                ExprPtr ns = table.apply(inst.src);
                bool legal = inst.dst->regFile() == RegFile::CC
                                 ? fitsCompareSrc(ns, traits)
                                 : fitsAssignSrc(ns, traits);
                if (ns != inst.src && legal) {
                    inst.src = ns;
                    ++changes;
                }
                break;
              }
              case InstKind::Load: {
                ExprPtr na = table.apply(inst.addr);
                if (na != inst.addr && fitsAddr(na, traits)) {
                    inst.addr = na;
                    ++changes;
                }
                break;
              }
              case InstKind::Store: {
                ExprPtr na = table.apply(inst.addr);
                if (na != inst.addr && fitsAddr(na, traits)) {
                    inst.addr = na;
                    ++changes;
                }
                ExprPtr nsrc = table.apply(inst.src);
                if (nsrc != inst.src && nsrc->isReg()) {
                    inst.src = nsrc;
                    ++changes;
                }
                break;
              }
              case InstKind::StreamIn:
              case InstKind::StreamOut: {
                ExprPtr na = table.apply(inst.addr);
                if (na != inst.addr && na->isReg()) {
                    inst.addr = na;
                    ++changes;
                }
                if (inst.count) { // null count = unbounded stream
                    ExprPtr nc = table.apply(inst.count);
                    if (nc != inst.count && nc->isReg()) {
                        inst.count = nc;
                        ++changes;
                    }
                }
                break;
              }
              default:
                break;
            }

            // Update the table with this instruction's effect.
            for (const RegKey &k : cfg::instDefKeys(inst, traits))
                table.invalidate(k);
            if (inst.kind == InstKind::Assign &&
                    inst.dst->regFile() != RegFile::CC &&
                    !isFifoReg(inst.dst)) {
                const ExprPtr &s = inst.src;
                bool leaf = (s->isReg() && !isFifoReg(s) &&
                             s->regFile() != RegFile::CC) ||
                            (s->isConst() && !rtl::isFloatType(s->type()));
                // Only same-file copies propagate (no int<->float).
                if (leaf &&
                        (!s->isReg() ||
                         rtl::isFloatType(s->type()) ==
                             rtl::isFloatType(inst.dst->type()))) {
                    table.record(inst.dst, s);
                }
            }
        }
    }
    return changes;
}

} // namespace wmstream::opt
