#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "cfg/liveness.h"
#include "opt/passes.h"
#include "support/diag.h"
#include "support/str.h"

namespace wmstream::opt {

using cfg::RegKey;
using cfg::RegKeyHash;
using rtl::DataType;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

namespace {

/** Graph-coloring state for one virtual file (VInt or VFlt). */
struct Allocator
{
    RegFile vfile;
    RegFile pfile;
    // adjacency: vreg index -> set of interfering vreg indexes
    std::unordered_map<int, std::unordered_set<int>> adj;
    // forbidden physical indexes per vreg
    std::unordered_map<int, std::unordered_set<int>> forbidden;
    std::unordered_set<int> nodes;
};

void
addInterference(Allocator &ia, Allocator &fa, const RegKey &def,
                const RegKey &live)
{
    auto classify = [&](const RegKey &k) -> Allocator * {
        if (k.file == RegFile::VInt)
            return &ia;
        if (k.file == RegFile::VFlt)
            return &fa;
        return nullptr;
    };
    Allocator *da = classify(def);
    Allocator *la = classify(live);
    if (da && la && da == la && def.index != live.index) {
        da->adj[def.index].insert(live.index);
        da->adj[live.index].insert(def.index);
        da->nodes.insert(def.index);
        da->nodes.insert(live.index);
    } else if (da && !la && live.file == da->pfile) {
        da->forbidden[def.index].insert(live.index);
        da->nodes.insert(def.index);
    } else if (!da && la && def.file == la->pfile) {
        la->forbidden[live.index].insert(def.index);
        la->nodes.insert(live.index);
    }
}

ExprPtr
substAllRegs(const ExprPtr &e,
             const std::unordered_map<RegKey, int, RegKeyHash> &colors)
{
    if (!e)
        return e;
    switch (e->kind()) {
      case rtl::Expr::Kind::Reg: {
        RegKey k{e->regFile(), e->regIndex()};
        auto it = colors.find(k);
        if (it == colors.end())
            return e;
        RegFile pf = k.file == RegFile::VInt ? RegFile::Int : RegFile::Flt;
        return rtl::makeReg(pf, it->second, e->type());
      }
      case rtl::Expr::Kind::Bin: {
        ExprPtr l = substAllRegs(e->lhs(), colors);
        ExprPtr r = substAllRegs(e->rhs(), colors);
        if (l == e->lhs() && r == e->rhs())
            return e;
        return rtl::makeBinRaw(e->op(), l, r, e->type());
      }
      case rtl::Expr::Kind::Un: {
        ExprPtr x = substAllRegs(e->lhs(), colors);
        return x == e->lhs() ? e
                             : rtl::makeUnRaw(e->op(), x, e->type());
      }
      case rtl::Expr::Kind::Mem: {
        ExprPtr a = substAllRegs(e->addr(), colors);
        return a == e->addr() ? e : rtl::makeMem(a, e->type());
      }
      default:
        return e;
    }
}

/** Spill every use/def of @p victim through a fresh frame slot. */
void
spillRegister(rtl::Function &fn, const RegKey &victim,
              const rtl::MachineTraits &traits)
{
    int64_t off = fn.allocFrameSlot(8, 8);
    bool flt = victim.file == RegFile::VFlt;
    DataType dt = flt ? DataType::F64 : DataType::I64;
    ExprPtr sp = rtl::makeReg(RegFile::Int, traits.spReg, DataType::I64);

    for (auto &bp : fn.blocks()) {
        rtl::Block *b = bp.get();
        for (size_t i = 0; i < b->insts.size(); ++i) {
            bool uses = false;
            for (const RegKey &k : cfg::instUseKeys(b->insts[i]))
                if (k == victim)
                    uses = true;
            bool defs = false;
            if (auto d = rtl::instDef(b->insts[i]))
                if (d->isReg(victim.file, victim.index))
                    defs = true;

            if (uses) {
                ExprPtr t = fn.newVReg(dt);
                // Rewrite the use first (references into the vector
                // are invalidated by insertion).
                Inst &inst = b->insts[i];
                auto replace = [&](ExprPtr &field) {
                    if (field)
                        field = rtl::substReg(field, victim.file,
                                              victim.index, t);
                };
                replace(inst.src);
                replace(inst.addr);
                replace(inst.count);
                replace(inst.vecSrc2);
                for (auto &e : inst.extraUses)
                    e = rtl::substReg(e, victim.file, victim.index, t);
                ExprPtr addr = rtl::makeBin(rtl::Op::Add, sp,
                                            rtl::makeConst(off));
                b->insts.insert(b->insts.begin() +
                                static_cast<ptrdiff_t>(i),
                                rtl::makeLoad(t, addr, dt, "reload"));
                ++i; // index of the original instruction again
            }
            if (defs) {
                ExprPtr t = fn.newVReg(dt);
                b->insts[i].dst = t;
                ExprPtr addr = rtl::makeBin(rtl::Op::Add, sp,
                                            rtl::makeConst(off));
                b->insts.insert(b->insts.begin() +
                                static_cast<ptrdiff_t>(i + 1),
                                rtl::makeStore(addr, t, dt, "spill"));
                ++i;
            }
        }
    }
}

} // anonymous namespace

void
runRegAlloc(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    for (int attempt = 0; attempt < 200; ++attempt) {
        // ---- build interference ----
        Allocator ia{RegFile::VInt, RegFile::Int, {}, {}, {}};
        Allocator fa{RegFile::VFlt, RegFile::Flt, {}, {}, {}};
        cfg::Liveness live(fn, traits);

        for (auto &bp : fn.blocks()) {
            rtl::Block *b = bp.get();
            cfg::RegSet liveSet = live.liveOut(b);
            for (size_t n = b->insts.size(); n-- > 0;) {
                const Inst &inst = b->insts[n];
                auto defKeys = cfg::instDefKeys(inst, traits);
                for (const RegKey &d : defKeys) {
                    for (const RegKey &l : liveSet)
                        if (!(l == d))
                            addInterference(ia, fa, d, l);
                    // Make sure every vreg is a node even if it never
                    // interferes.
                    if (d.file == RegFile::VInt)
                        ia.nodes.insert(d.index);
                    if (d.file == RegFile::VFlt)
                        fa.nodes.insert(d.index);
                }
                for (const RegKey &k : defKeys)
                    liveSet.erase(k);
                for (const RegKey &k : cfg::instUseKeys(inst))
                    if (!cfg::isZeroReg(k, traits))
                        liveSet.insert(k);
            }
        }

        // ---- color ----
        std::unordered_map<RegKey, int, RegKeyHash> colors;
        RegKey spillCandidate{RegFile::VInt, -1};
        bool failed = false;

        auto colorFile = [&](Allocator &a, int lastAllocatable) {
            // Highest degree first.
            std::vector<int> order(a.nodes.begin(), a.nodes.end());
            std::sort(order.begin(), order.end(), [&](int x, int y) {
                size_t dx = a.adj[x].size(), dy = a.adj[y].size();
                if (dx != dy)
                    return dx > dy;
                return x < y;
            });
            for (int v : order) {
                std::unordered_set<int> used = a.forbidden[v];
                for (int w : a.adj[v]) {
                    auto it = colors.find(RegKey{a.vfile, w});
                    if (it != colors.end())
                        used.insert(it->second);
                }
                int chosen = -1;
                // Caller-saved first, callee-saved as fallback.
                for (int c = traits.firstAllocatable;
                         c <= lastAllocatable; ++c) {
                    if (!used.count(c)) {
                        chosen = c;
                        break;
                    }
                }
                if (chosen < 0) {
                    failed = true;
                    spillCandidate = RegKey{a.vfile, v};
                    return;
                }
                colors[RegKey{a.vfile, v}] = chosen;
            }
        };

        colorFile(ia, traits.lastAllocatableInt);
        if (!failed)
            colorFile(fa, traits.lastAllocatableFlt);

        if (failed) {
            spillRegister(fn, spillCandidate, traits);
            continue;
        }

        // ---- rewrite ----
        std::unordered_set<int> usedCalleeInt, usedCalleeFlt;
        for (const auto &[k, c] : colors) {
            if (c >= traits.firstCalleeSaved) {
                if (k.file == RegFile::VInt)
                    usedCalleeInt.insert(c);
                else
                    usedCalleeFlt.insert(c);
            }
        }

        for (auto &bp : fn.blocks()) {
            for (Inst &inst : bp->insts) {
                inst.dst = substAllRegs(inst.dst, colors);
                inst.src = substAllRegs(inst.src, colors);
                inst.addr = substAllRegs(inst.addr, colors);
                inst.count = substAllRegs(inst.count, colors);
                inst.vecSrc2 = substAllRegs(inst.vecSrc2, colors);
                for (auto &e : inst.extraUses)
                    e = substAllRegs(e, colors);
            }
        }

        // ---- prologue / epilogue ----
        std::vector<std::pair<RegFile, int>> saves;
        for (int c : usedCalleeInt)
            saves.emplace_back(RegFile::Int, c);
        for (int c : usedCalleeFlt)
            saves.emplace_back(RegFile::Flt, c);
        std::sort(saves.begin(), saves.end());

        std::unordered_map<int, int64_t> saveOffInt, saveOffFlt;
        for (auto &[file, c] : saves) {
            int64_t off = fn.allocFrameSlot(8, 8);
            (file == RegFile::Int ? saveOffInt : saveOffFlt)[c] = off;
        }

        int64_t frame = (fn.frameSize + 15) & ~int64_t{15};
        ExprPtr sp = rtl::makeReg(RegFile::Int, traits.spReg,
                                  DataType::I64);

        if (frame > 0 || !saves.empty()) {
            std::vector<Inst> pro;
            pro.push_back(rtl::makeAssign(
                sp, rtl::makeBin(rtl::Op::Sub, sp, rtl::makeConst(frame)),
                "prologue"));
            for (auto &[file, c] : saves) {
                int64_t off = (file == RegFile::Int ? saveOffInt
                                                    : saveOffFlt)[c];
                DataType dt = file == RegFile::Int ? DataType::I64
                                                   : DataType::F64;
                pro.push_back(rtl::makeStore(
                    rtl::makeBin(rtl::Op::Add, sp, rtl::makeConst(off)),
                    rtl::makeReg(file, c, dt), dt, "save callee-saved"));
            }
            rtl::Block *entry = fn.entry();
            entry->insts.insert(entry->insts.begin(), pro.begin(),
                                pro.end());

            for (auto &bp : fn.blocks()) {
                rtl::Block *b = bp.get();
                for (size_t i = 0; i < b->insts.size(); ++i) {
                    if (b->insts[i].kind != InstKind::Return)
                        continue;
                    std::vector<Inst> epi;
                    for (auto &[file, c] : saves) {
                        int64_t off = (file == RegFile::Int ? saveOffInt
                                                            : saveOffFlt)[c];
                        DataType dt = file == RegFile::Int ? DataType::I64
                                                           : DataType::F64;
                        epi.push_back(rtl::makeLoad(
                            rtl::makeReg(file, c, dt),
                            rtl::makeBin(rtl::Op::Add, sp,
                                         rtl::makeConst(off)),
                            dt, "restore callee-saved"));
                    }
                    epi.push_back(rtl::makeAssign(
                        sp, rtl::makeBin(rtl::Op::Add, sp,
                                         rtl::makeConst(frame)),
                        "epilogue"));
                    b->insts.insert(b->insts.begin() +
                                    static_cast<ptrdiff_t>(i),
                                    epi.begin(), epi.end());
                    i += epi.size();
                }
            }
        }
        fn.recomputeCfg();
        fn.renumber();
        return;
    }
    WS_PANIC("register allocation failed after spill iterations in " +
             fn.name());
}

} // namespace wmstream::opt
