#include "opt/legal.h"
#include "opt/passes.h"
#include "support/diag.h"

namespace wmstream::opt {

using rtl::DataType;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

namespace {

/** Emits materialization instructions while reshaping expressions. */
class Legalizer
{
  public:
    Legalizer(rtl::Function &fn, const rtl::MachineTraits &traits)
        : fn_(fn), traits_(traits)
    {
    }

    int
    run()
    {
        int changes = 0;
        for (auto &bp : fn_.blocks()) {
            rtl::Block *b = bp.get();
            for (size_t i = 0; i < b->insts.size(); ++i) {
                pre_.clear();
                Inst &inst = b->insts[i];
                switch (inst.kind) {
                  case InstKind::Assign: {
                    bool cmp = inst.dst->regFile() == RegFile::CC;
                    if (cmp ? !fitsCompareSrc(inst.src, traits_)
                            : !fitsAssignSrc(inst.src, traits_)) {
                        inst.src = legalSrc(inst.src, cmp);
                    }
                    break;
                  }
                  case InstKind::Load:
                  case InstKind::Store:
                    if (!fitsAddr(inst.addr, traits_))
                        inst.addr = legalAddr(inst.addr);
                    if (inst.kind == InstKind::Store &&
                            !inst.src->isReg()) {
                        inst.src = materialize(inst.src);
                    }
                    break;
                  case InstKind::StreamIn:
                  case InstKind::StreamOut:
                    if (!inst.addr->isReg())
                        inst.addr = materialize(inst.addr);
                    if (inst.count && !inst.count->isReg())
                        inst.count = materialize(inst.count);
                    break;
                  default:
                    break;
                }
                if (!pre_.empty()) {
                    b->insts.insert(b->insts.begin() +
                                    static_cast<ptrdiff_t>(i),
                                    pre_.begin(), pre_.end());
                    i += pre_.size();
                    changes += static_cast<int>(pre_.size());
                }
            }
        }
        return changes;
    }

  private:
    /** Emit `t := e` (legalizing e first) and return t. */
    ExprPtr
    materialize(const ExprPtr &e)
    {
        ExprPtr legal = fitsAssignSrc(e, traits_) ? e
                                                  : legalSrc(e, false);
        ExprPtr t = fn_.newVReg(rtl::isFloatType(e->type())
                                    ? DataType::F64
                                    : DataType::I64);
        pre_.push_back(rtl::makeAssign(t, legal));
        return t;
    }

    /** Make @p e a legal instruction operand (register/immediate). */
    ExprPtr
    legalOperand(const ExprPtr &e)
    {
        if (fitsOperand(e, traits_))
            return e;
        return materialize(e);
    }

    /** Reshape @p e into a legal Assign (or compare) source. */
    ExprPtr
    legalSrc(const ExprPtr &e, bool isCompare)
    {
        switch (e->kind()) {
          case Expr::Kind::Const:
          case Expr::Kind::Sym:
            return e; // whole-source materialization is one RTL
          case Expr::Kind::Reg:
            return e;
          case Expr::Kind::Mem:
            // Should not appear in Assign sources (loads are explicit),
            // but handle defensively by splitting out a load.
            WS_PANIC("Mem inside Assign source");
          case Expr::Kind::Un: {
            ExprPtr x = legalOperand(e->lhs());
            return x == e->lhs() ? e : rtl::makeUnRaw(e->op(), x,
                                                      e->type());
          }
          case Expr::Kind::Bin: {
            ExprPtr l = e->lhs();
            ExprPtr r = legalOperand(e->rhs());
            (void)isCompare; // dual inner is legal for compares too
            bool dualOk = traits_.hasDualOp &&
                          l->kind() == Expr::Kind::Bin &&
                          !rtl::isRelationalOp(l->op());
            if (dualOk) {
                ExprPtr il = legalOperand(l->lhs());
                ExprPtr ir = legalOperand(l->rhs());
                ExprPtr inner =
                    il == l->lhs() && ir == l->rhs()
                        ? l
                        : rtl::makeBinRaw(l->op(), il, ir, l->type());
                return rtl::makeBinRaw(e->op(), inner, r, e->type());
            }
            ExprPtr ll = legalOperand(l);
            return rtl::makeBinRaw(e->op(), ll, r, e->type());
          }
        }
        return e;
    }

    /** Reshape @p e into a legal load/store address. */
    ExprPtr
    legalAddr(const ExprPtr &e)
    {
        // Try cheap repairs first: replace offending leaves, then fall
        // back to computing the whole address into a register.
        if (e->kind() == Expr::Kind::Bin) {
            ExprPtr cand;
            if (traits_.isWM()) {
                cand = legalSrc(e, false);
                // A whole-source Sym/Const is not an address.
                if (!cand->isSym() && fitsAddr(cand, traits_))
                    return cand;
            } else {
                // Scalar: legalize the operands and retest the mode.
                ExprPtr l = e->lhs();
                ExprPtr r = e->rhs();
                auto fix = [&](const ExprPtr &x) -> ExprPtr {
                    if (x->isReg() || x->isSym() || x->isConst())
                        return x;
                    if (x->kind() == Expr::Kind::Bin &&
                            x->op() == rtl::Op::Shl && x->lhs()->isReg() &&
                            x->rhs()->isConst()) {
                        return x;
                    }
                    return materialize(x);
                };
                cand = rtl::makeBinRaw(e->op(), fix(l), fix(r), e->type());
                if (fitsAddr(cand, traits_))
                    return cand;
            }
        }
        return materialize(e);
    }

    rtl::Function &fn_;
    const rtl::MachineTraits traits_;
    std::vector<Inst> pre_;
};

} // anonymous namespace

int
runLegalize(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    Legalizer lg(fn, traits);
    int n = lg.run();
    fn.recomputeCfg();
    return n;
}

} // namespace wmstream::opt
