#include "recurrence/partitions.h"

#include <sstream>

#include "support/str.h"

namespace wmstream::recurrence {

using opt::BasicIV;
using opt::LinForm;
using rtl::Inst;
using rtl::InstKind;

std::string
MemRef::str() const
{
    std::ostringstream os;
    os << "(" << lno << "," << (isWrite ? "w" : "r") << ",";
    if (!analyzable) {
        os << "?,?,?,?)";
        return os.str();
    }
    if (iv) {
        os << rtl::regFilePrefix(iv->reg->regFile()) << iv->reg->regIndex()
           << (iv->step > 0 ? "+" : "-");
    } else {
        os << "-";
    }
    os << "," << cee << "," << dee.deeStr() << "," << roffset << ")";
    return os.str();
}

bool
Partition::hasWrite() const
{
    for (const MemRef &r : refs)
        if (r.isWrite)
            return true;
    return false;
}

bool
Partition::hasRead() const
{
    for (const MemRef &r : refs)
        if (!r.isWrite)
            return true;
    return false;
}

std::string
Partition::str() const
{
    std::ostringstream os;
    os << key << (safe ? "" : " [unsafe]") << " = {";
    for (size_t i = 0; i < refs.size(); ++i) {
        if (i)
            os << ", ";
        os << refs[i].str();
    }
    os << "}";
    return os.str();
}

std::string
PartitionSet::str() const
{
    std::ostringstream os;
    for (const Partition &p : parts)
        os << p.str() << "\n";
    if (!unknownRefs.empty()) {
        os << "unknown = {";
        for (size_t i = 0; i < unknownRefs.size(); ++i) {
            if (i)
                os << ", ";
            os << unknownRefs[i].str();
        }
        os << "}\n";
    }
    return os.str();
}

bool
PartitionSet::unknownWriteExists() const
{
    for (const MemRef &r : unknownRefs)
        if (r.isWrite)
            return true;
    return false;
}

bool
PartitionSet::unknownReadExists() const
{
    for (const MemRef &r : unknownRefs)
        if (!r.isWrite)
            return true;
    return false;
}

namespace {

/** Partition key for an analyzed reference. */
std::string
partitionKey(const MemRef &ref)
{
    switch (ref.dee.baseKind) {
      case LinForm::Base::Sym:
        return "_" + ref.dee.sym;
      case LinForm::Base::Reg:
        return std::string("reg:") +
               rtl::regFilePrefix(ref.dee.baseReg->regFile()) +
               std::to_string(ref.dee.baseReg->regIndex());
      case LinForm::Base::None:
        // A walking pointer: the region is identified by the IV itself.
        if (ref.iv) {
            return std::string("iv:") +
                   rtl::regFilePrefix(ref.iv->reg->regFile()) +
                   std::to_string(ref.iv->reg->regIndex());
        }
        return "absolute";
      default:
        return "?";
    }
}

} // anonymous namespace

PartitionSet
buildPartitions(rtl::Function &fn, cfg::Loop &loop,
                const cfg::DominatorTree &dt, opt::IndVarAnalysis &ivs,
                const rtl::MachineTraits &traits)
{
    (void)traits;
    fn.renumber();
    PartitionSet set;

    auto addRef = [&](MemRef ref) {
        if (!ref.analyzable) {
            set.unknownRefs.push_back(std::move(ref));
            return;
        }
        std::string key = partitionKey(ref);
        for (Partition &p : set.parts) {
            if (p.key == key) {
                p.refs.push_back(std::move(ref));
                return;
            }
        }
        Partition p;
        p.key = std::move(key);
        p.refs.push_back(std::move(ref));
        set.parts.push_back(std::move(p));
    };

    // Steps 1 and 2: collect references with their vectors.
    for (rtl::Block *b : loop.blocks) {
        for (size_t i = 0; i < b->insts.size(); ++i) {
            const Inst &inst = b->insts[i];
            if (inst.kind != InstKind::Load && inst.kind != InstKind::Store)
                continue;
            MemRef ref;
            ref.lno = inst.id;
            ref.isWrite = inst.kind == InstKind::Store;
            ref.block = b;
            ref.index = i;
            ref.type = inst.memType;

            // Find the IV (if any) the address varies with.
            const BasicIV *best = nullptr;
            LinForm bestLin;
            for (const BasicIV &iv : ivs.basicIVs()) {
                LinForm lin = ivs.linearize(inst.addr, iv, {b, i});
                if (!lin.valid || lin.baseKind == LinForm::Base::Unknown)
                    continue;
                if (lin.coeff != 0) {
                    best = &iv;
                    bestLin = lin;
                    break;
                }
                if (!best) {
                    bestLin = lin; // invariant address; keep looking
                    bestLin.valid = true;
                    best = nullptr;
                }
            }
            if (!best && !bestLin.valid) {
                // No IV matched: still classify invariant addresses.
                if (inst.addr->isSym()) {
                    bestLin.valid = true;
                    bestLin.baseKind = LinForm::Base::Sym;
                    bestLin.sym = inst.addr->symbol();
                    bestLin.offset = inst.addr->symOffset();
                } else if (inst.addr->isReg() &&
                           ivs.regInvariant(inst.addr->regFile(),
                                            inst.addr->regIndex())) {
                    bestLin = ivs.resolveInvariantReg(inst.addr);
                }
            }
            if (best) {
                ref.analyzable = true;
                ref.iv = best;
                ref.cee = bestLin.coeff;
                ref.dee = bestLin;
                ref.roffset = bestLin.offset;
            } else if (bestLin.valid &&
                       bestLin.baseKind != LinForm::Base::Unknown) {
                // Loop-invariant address (cee == 0).
                ref.analyzable = true;
                ref.iv = nullptr;
                ref.cee = 0;
                ref.dee = bestLin;
                ref.roffset = bestLin.offset;
            }
            addRef(std::move(ref));
        }
    }

    // Step 3: safety per partition.
    for (Partition &p : set.parts) {
        if (p.refs.size() <= 1)
            continue; // trivially safe
        const MemRef &first = p.refs[0];
        for (const MemRef &r : p.refs) {
            // Step 3a: same IV and same cee.
            if (r.iv != first.iv || r.cee != first.cee) {
                p.safe = false;
                break;
            }
            // Step 3b: relative offset evenly divisible by cee.
            if (r.cee != 0 && (r.roffset % r.cee) != 0) {
                p.safe = false;
                break;
            }
        }
    }

    (void)dt;
    return set;
}

} // namespace wmstream::recurrence
