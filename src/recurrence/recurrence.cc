#include "recurrence/recurrence.h"

#include <algorithm>

#include "support/diag.h"

namespace wmstream::recurrence {

using opt::BasicIV;
using opt::LinForm;
using rtl::DataType;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;

namespace {

/** Materialize `cee*iv + base + disp` at the end of @p pre. */
ExprPtr
materializeAddress(rtl::Function &fn, rtl::Block *pre, const BasicIV &iv,
                   int64_t cee, const LinForm &base, int64_t disp)
{
    size_t at = pre->insts.size();
    if (pre->terminator())
        --at;
    auto insert = [&](Inst inst) {
        pre->insts.insert(pre->insts.begin() + static_cast<ptrdiff_t>(at++),
                          std::move(inst));
    };

    ExprPtr scaled;
    if (cee == 0) {
        scaled = nullptr;
    } else if (cee == 1) {
        scaled = iv.reg;
    } else {
        int sh = -1;
        for (int k = 1; k < 32; ++k)
            if (cee == (int64_t{1} << k))
                sh = k;
        ExprPtr t = fn.newVReg(DataType::I64);
        insert(rtl::makeAssign(
            t, sh > 0 ? rtl::makeBin(Op::Shl, iv.reg, rtl::makeConst(sh))
                      : rtl::makeBin(Op::Mul, iv.reg, rtl::makeConst(cee)),
            "recurrence initial address"));
        scaled = t;
    }

    ExprPtr baseVal;
    switch (base.baseKind) {
      case LinForm::Base::Sym: {
        ExprPtr t = fn.newVReg(DataType::I64);
        insert(rtl::makeAssign(t, rtl::makeSym(base.sym),
                               "address of recurrence array"));
        baseVal = t;
        break;
      }
      case LinForm::Base::Reg:
        baseVal = base.baseReg;
        break;
      default:
        baseVal = nullptr;
        break;
    }

    ExprPtr sum = scaled;
    if (baseVal) {
        if (sum) {
            ExprPtr t = fn.newVReg(DataType::I64);
            insert(rtl::makeAssign(t, rtl::makeBin(Op::Add, sum, baseVal)));
            sum = t;
        } else {
            sum = baseVal;
        }
    }
    if (!sum)
        return rtl::makeConst(disp);
    if (disp == 0)
        return sum;
    ExprPtr t = fn.newVReg(DataType::I64);
    insert(rtl::makeAssign(t, rtl::makeBin(Op::Add, sum,
                                           rtl::makeConst(disp))));
    return t;
}

/** Count textual uses of a register in the whole function. */
int
countUses(rtl::Function &fn, const ExprPtr &reg)
{
    int n = 0;
    for (auto &bp : fn.blocks())
        for (auto &inst : bp->insts)
            for (const auto &u : rtl::instUses(inst))
                if (u->isReg(reg->regFile(), reg->regIndex()))
                    ++n;
    return n;
}

struct PairInfo
{
    MemRef *read;
    int distance; ///< iterations between write and read
};

/** Source position of a memory reference's instruction. */
SourcePos
refPos(const MemRef &ref)
{
    return ref.block->insts[ref.index].pos;
}

/** Remark factory bound to one pass/function/loop. */
struct RemarkSite
{
    obs::RemarkCollector *remarks = nullptr;
    std::string function;
    int loopId = -1;
    SourcePos loopLoc;

    obs::Remark make(obs::RemarkVerdict v, const char *reason,
                     SourcePos at = {}) const
    {
        obs::Remark r;
        r.pass = "recurrence";
        r.function = function;
        r.loopId = loopId;
        r.loc = at.valid() ? at : loopLoc;
        r.verdict = v;
        r.reason = reason;
        return r;
    }
    void missed(const char *reason, SourcePos at = {},
                const std::string &partition = "") const
    {
        if (!remarks)
            return;
        obs::Remark r = make(obs::RemarkVerdict::Missed, reason, at);
        if (!partition.empty())
            r.arg("partition", partition);
        remarks->add(std::move(r));
    }
};

bool
optimizePartition(rtl::Function &fn, cfg::Loop &loop,
                  const cfg::DominatorTree &dt, Partition &part,
                  int maxDegree, bool skipDistanceCheck,
                  RecurrenceReport &report, const RemarkSite &site)
{
    if (!part.hasWrite() || !part.hasRead())
        return false; // nothing to carry: not a recurrence candidate
    if (!part.safe) {
        site.missed("partition-not-safe", {}, part.key);
        return false;
    }

    // Single write, one or more reads; all same element type and a
    // moving (cee != 0) access pattern.
    MemRef *write = nullptr;
    std::vector<MemRef *> reads;
    for (MemRef &r : part.refs) {
        if (r.isWrite) {
            if (write) {
                site.missed("multiple-writes", refPos(r), part.key);
                return false; // multiple writes: skip
            }
            write = &r;
        } else {
            reads.push_back(&r);
        }
    }
    if (!write || !write->iv || write->cee == 0) {
        site.missed("address-not-induction",
                    write ? refPos(*write) : SourcePos{}, part.key);
        return false;
    }

    int64_t stride = write->cee * write->iv->step;
    WS_ASSERT(stride != 0, "zero stride with nonzero cee");

    // Step 4a: identify read/write pairs and the recurrence degree.
    std::vector<PairInfo> pairs;
    for (MemRef *r : reads) {
        if (r->type != write->type) {
            site.missed("mixed-element-types", refPos(*r), part.key);
            return false;
        }
        int64_t delta = write->roffset - r->roffset;
        if (delta == 0 && !skipDistanceCheck) {
            site.missed("same-cell-read-write", refPos(*r), part.key);
            return false; // same-cell read+write: ordering-sensitive
        }
        if (delta % stride != 0)
            continue; // interleaved, never the same cell
        int64_t dist = delta / stride;
        if (dist < 0) {
            site.missed("read-ahead-of-write", refPos(*r), part.key);
            return false; // read runs ahead of the write: a true
                          // dependence we must not break
        }
        pairs.push_back({r, static_cast<int>(dist)});
    }
    if (pairs.empty()) {
        site.missed("no-recurrence-found", refPos(*write), part.key);
        return false;
    }

    int degree = 0;
    for (const PairInfo &p : pairs)
        degree = std::max(degree, p.distance);
    if (degree > maxDegree) {
        if (site.remarks)
            site.remarks->add(
                site.make(obs::RemarkVerdict::Missed,
                          "degree-exceeds-registers", refPos(*write))
                    .arg("partition", part.key)
                    .arg("degree", degree)
                    .arg("max_degree", maxDegree));
        return false; // not enough registers (paper Step 2a remark)
    }

    // Every participating reference must execute on every iteration.
    auto everyIteration = [&](const MemRef &r) {
        for (rtl::Block *latch : loop.latches)
            if (!dt.dominates(r.block, latch))
                return false;
        return true;
    };
    if (!everyIteration(*write)) {
        site.missed("not-every-iteration", refPos(*write), part.key);
        return false;
    }
    for (const PairInfo &p : pairs)
        if (!everyIteration(*p.read)) {
            site.missed("not-every-iteration", refPos(*p.read), part.key);
            return false;
        }

    // The loaded registers must be replaceable: virtual, and defined
    // only by the load.
    for (const PairInfo &p : pairs) {
        const Inst &load = p.read->block->insts[p.read->index];
        if (!rtl::isVirtualFile(load.dst->regFile())) {
            site.missed("load-register-not-virtual", refPos(*p.read),
                        part.key);
            return false;
        }
    }

    // All checks passed; the rewrite below always completes. Record the
    // applied remark now, while block/index pairs are still valid.
    if (site.remarks)
        site.remarks->add(
            site.make(obs::RemarkVerdict::Applied, "recurrence-optimized",
                      refPos(*write))
                .arg("partition", part.key)
                .arg("degree", degree)
                .arg("stride", stride)
                .arg("loads_replaced",
                     static_cast<int64_t>(pairs.size())));

    // ---- rewrite ----
    SourcePos writePos = refPos(*write);
    bool flt = rtl::isFloatType(write->type);
    DataType dt2 = flt ? DataType::F64 : DataType::I64;
    std::vector<ExprPtr> chain; // chain[k] holds the value of k iterations ago
    for (int k = 0; k <= degree; ++k)
        chain.push_back(fn.newVReg(dt2));

    // Step 4b (write side): retain the stored value in chain[0].
    // Preferred form (the paper's): retarget the instruction computing
    // the stored value so it writes chain[0] directly. Fall back to an
    // extra copy when the producer cannot be retargeted.
    {
        Inst &store = write->block->insts[write->index];
        bool retargeted = false;
        if (store.src->isReg() &&
                rtl::isVirtualFile(store.src->regFile())) {
            // Find a unique producing Assign in the same block before
            // the store, with no other use or redefinition between.
            int uses = 0;
            for (auto &bp2 : fn.blocks())
                for (auto &inst2 : bp2->insts)
                    for (const auto &u : rtl::instUses(inst2))
                        if (u->isReg(store.src->regFile(),
                                     store.src->regIndex()))
                            ++uses;
            int defs = 0;
            size_t defIdx = 0;
            rtl::Block *defBlock = nullptr;
            for (auto &bp2 : fn.blocks())
                for (size_t k = 0; k < bp2->insts.size(); ++k)
                    if (auto d = rtl::instDef(bp2->insts[k]))
                        if (d->isReg(store.src->regFile(),
                                     store.src->regIndex())) {
                            ++defs;
                            defBlock = bp2.get();
                            defIdx = k;
                        }
            if (uses == 1 && defs == 1 && defBlock == write->block &&
                    defIdx < write->index) {
                Inst &producer = write->block->insts[defIdx];
                if (producer.kind == InstKind::Assign &&
                        producer.dst->isReg(store.src->regFile(),
                                            store.src->regIndex())) {
                    producer.dst = chain[0];
                    producer.comment = "compute into recurrence register";
                    store.src = chain[0];
                    retargeted = true;
                }
            }
        }
        if (!retargeted) {
            Inst keep = rtl::makeAssign(chain[0], store.src,
                                        "retain recurrence value");
            store.src = chain[0];
            store.comment = "store via recurrence register";
            write->block->insts.insert(
                write->block->insts.begin() +
                    static_cast<ptrdiff_t>(write->index),
                std::move(keep));
            // Indexes at or after the write shift by one.
            for (PairInfo &p : pairs)
                if (p.read->block == write->block &&
                        p.read->index >= write->index) {
                    ++p.read->index;
                }
            ++write->index;
        }
    }

    // Step 4b (read side): replace the loads with chain registers.
    // Process per block in descending index order so erases stay valid.
    // Label order, not pointer order: pointer values depend on the
    // process's allocation history, which must not influence the
    // emitted code (see the matching comment in streaming.cc).
    std::sort(pairs.begin(), pairs.end(),
              [](const PairInfo &a, const PairInfo &b) {
                  if (a.read->block != b.read->block)
                      return a.read->block->label() <
                             b.read->block->label();
                  return a.read->index > b.read->index;
              });
    for (PairInfo &p : pairs) {
        Inst &load = p.read->block->insts[p.read->index];
        WS_ASSERT(load.kind == InstKind::Load, "stale read index");
        Inst copy = rtl::makeAssign(load.dst, chain[p.distance],
                                    "recurrence value from register");
        copy.id = load.id;
        load = std::move(copy);
        ++report.loadsDeleted;
    }

    // Step 4c: shift the chain at the top of the loop, oldest first.
    {
        std::vector<Inst> shifts;
        for (int k = degree; k >= 1; --k)
            shifts.push_back(rtl::makeAssign(chain[k], chain[k - 1],
                                             "shift recurrence chain"));
        rtl::Block *header = loop.header;
        header->insts.insert(header->insts.begin(), shifts.begin(),
                             shifts.end());
        // Adjust recorded indexes in the header.
        for (MemRef &r : part.refs)
            if (r.block == header)
                r.index += static_cast<size_t>(degree);
    }

    // Step 4d: prime the chain in the preheader.
    {
        rtl::Block *pre = cfg::ensurePreheader(fn, loop);
        for (int k = 1; k <= degree; ++k) {
            // Address of the value written k iterations before the
            // first one: write address at iv0 minus k strides.
            ExprPtr addr = materializeAddress(
                fn, pre, *write->iv, write->cee, write->dee,
                write->roffset - static_cast<int64_t>(k) * stride);
            size_t at = pre->insts.size();
            if (pre->terminator())
                --at;
            Inst prime = rtl::makeLoad(chain[k - 1], addr, write->type,
                                       "prime recurrence chain");
            // Priming lives in the preheader but belongs to the loop
            // for per-loop attribution.
            prime.pos = writePos;
            prime.loopId = site.loopId;
            pre->insts.insert(
                pre->insts.begin() + static_cast<ptrdiff_t>(at),
                std::move(prime));
        }

        // Record the chain shape for the IR verifier, which checks it
        // right after this pass (cleanup may dissolve it later).
        RecurrenceChain meta;
        meta.function = fn.name();
        meta.header = loop.header->label();
        meta.preheader = pre->label();
        meta.flt = flt;
        meta.degree = degree;
        for (const ExprPtr &c : chain)
            meta.chainRegs.push_back(c->regIndex());
        report.chains.push_back(std::move(meta));
    }

    // The reads are now register references: drop them from the
    // partition (paper shows X reduced to the write alone).
    part.refs.erase(std::remove_if(part.refs.begin(), part.refs.end(),
                                   [](const MemRef &r) {
                                       return !r.isWrite;
                                   }),
                    part.refs.end());

    report.maxDegree = std::max(report.maxDegree, degree);
    ++report.recurrencesOptimized;
    (void)countUses;
    return true;
}

} // anonymous namespace

/** Best source position for a loop: first stamped inst in the header,
 *  else first stamped inst anywhere in the loop. */
static SourcePos
loopPos(const cfg::Loop &loop)
{
    for (const Inst &inst : loop.header->insts)
        if (inst.pos.valid())
            return inst.pos;
    for (rtl::Block *b : loop.blocks)
        for (const Inst &inst : b->insts)
            if (inst.pos.valid())
                return inst.pos;
    return {};
}

RecurrenceReport
runRecurrenceOpt(rtl::Function &fn, const rtl::MachineTraits &traits,
                 int maxDegree, bool skipDistanceCheck,
                 obs::RemarkCollector *remarks)
{
    RecurrenceReport report;
    // Loop structures change when preheaders appear; process one loop
    // per analysis round.
    std::vector<std::string> doneLoops;
    for (int round = 0; round < 64; ++round) {
        fn.recomputeCfg();
        cfg::DominatorTree dt(fn);
        cfg::LoopInfo li(fn, dt);
        bool changed = false;
        for (cfg::Loop &loop : li.loops()) {
            bool innermost = true;
            for (cfg::Loop &other : li.loops())
                if (&other != &loop && loop.contains(other))
                    innermost = false;
            if (!innermost)
                continue;
            if (std::find(doneLoops.begin(), doneLoops.end(),
                          loop.header->label()) != doneLoops.end()) {
                continue;
            }
            ++report.loopsExamined;

            RemarkSite site;
            site.remarks = remarks;
            site.function = fn.name();
            site.loopLoc = loopPos(loop);
            if (remarks) {
                site.loopId = remarks->loopId(
                    fn.name(), loop.header->label(), site.loopLoc);
                if (const obs::LoopRecord *lr =
                        remarks->findLoop(site.loopId);
                    lr && lr->loc.valid())
                    site.loopLoc = lr->loc;
            }

            opt::IndVarAnalysis ivs(fn, loop, dt, traits);
            PartitionSet parts = buildPartitions(fn, loop, dt, ivs,
                                                 traits);
            report.partitionDumps.push_back(parts.str());

            // The paper's aliasing caveat: an unknown write may alias
            // any partition, so no rewrite is safe.
            if (parts.unknownWriteExists()) {
                site.missed("unknown-memory-write");
                continue;
            }
            for (Partition &p : parts.parts) {
                // An unknown read may observe any write; rewriting a
                // write-carrying partition would change what it sees.
                if (parts.unknownReadExists() && p.hasWrite()) {
                    site.missed("unknown-memory-read", {}, p.key);
                    continue;
                }
                if (optimizePartition(fn, loop, dt, p, maxDegree,
                                      skipDistanceCheck, report, site)) {
                    changed = true;
                    break; // structures stale
                }
            }
            if (changed)
                break; // revisit this loop with fresh analyses
            doneLoops.push_back(loop.header->label());
        }
        if (!changed)
            break;
    }
    fn.recomputeCfg();
    fn.renumber();
    return report;
}

} // namespace wmstream::recurrence
