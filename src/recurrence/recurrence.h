/**
 * @file
 * Recurrence detection and optimization (paper, Step 4).
 *
 * For every safe partition containing both reads and writes, identify
 * read/write pairs where the read fetches a value written on a
 * previous iteration, and carry that value in registers instead:
 * the store's value is retained in register chain[0], the loads at
 * iteration-distance k are replaced by chain[k], the chain is shifted
 * at the top of the loop, and the loop preheader primes it with the
 * initial loads. One more register than the degree of the recurrence
 * is required.
 *
 * The algorithm is machine-independent; the machine-specific part
 * (how loads/stores are rewritten) lives in the RTL Load/Store
 * instruction shapes themselves.
 */

#ifndef WMSTREAM_RECURRENCE_RECURRENCE_H
#define WMSTREAM_RECURRENCE_RECURRENCE_H

#include <string>
#include <vector>

#include "obs/remarks.h"
#include "recurrence/partitions.h"
#include "rtl/machine.h"

namespace wmstream::recurrence {

/**
 * Metadata for one rewritten recurrence, recorded so the IR verifier
 * can check chain legality right after the pass runs (cleanup later
 * dissolves chains legitimately): the shift chain must sit at the top
 * of the loop header in oldest-first order — chain[k] := chain[k-1]
 * for k = degree..1, each old value read before it is clobbered — and
 * the preheader must prime chain[0..degree-1] from memory.
 */
struct RecurrenceChain
{
    std::string function;
    std::string header;         ///< loop header block label
    std::string preheader;      ///< block holding the priming loads
    bool flt = false;           ///< VFlt chain (else VInt)
    int degree = 0;             ///< iteration distance ("dee - cee")
    std::vector<int> chainRegs; ///< virtual indices, chain[0..degree]
};

/** What the pass did, for tests and the experiment harnesses. */
struct RecurrenceReport
{
    int loopsExamined = 0;
    int recurrencesOptimized = 0;  ///< partitions rewritten
    int loadsDeleted = 0;
    int maxDegree = 0;
    std::vector<std::string> partitionDumps; ///< per-loop Step 1-3 output
    std::vector<RecurrenceChain> chains;     ///< for the IR verifier
};

/**
 * Run the recurrence optimization over all innermost loops of @p fn.
 * @p maxRegisters caps the recurrence degree (degree + 1 registers are
 * needed; the paper notes recurrences may be skipped "because there may
 * not be enough registers").
 *
 * @p skipDistanceCheck is fault injection for the differential fuzzer's
 * self-test ONLY: it disables the same-cell (distance-0) legality
 * check, deliberately miscompiling loops whose write is read back at
 * the same cell in the same iteration. wmfuzz must catch, deduplicate,
 * and minimize the resulting divergences; nothing else may set it.
 *
 * When @p remarks is given, each partition-level accept/reject decision
 * is recorded with a stable reason code (`recurrence-optimized`,
 * `degree-exceeds-registers`, `read-ahead-of-write`, ...) at the source
 * position of the responsible memory reference.
 */
RecurrenceReport runRecurrenceOpt(rtl::Function &fn,
                                  const rtl::MachineTraits &traits,
                                  int maxDegree = 4,
                                  bool skipDistanceCheck = false,
                                  obs::RemarkCollector *remarks = nullptr);

} // namespace wmstream::recurrence

#endif // WMSTREAM_RECURRENCE_RECURRENCE_H
