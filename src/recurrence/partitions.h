/**
 * @file
 * Memory-reference partitions (paper, "Recurrence Detection and
 * Optimization Algorithm", Steps 1–3).
 *
 * Each memory reference executed in a loop is summarized by the
 * paper's vector
 *
 *     (lno, acc, iv^dir, cee, dee, roffset)
 *
 * and the references are grouped into partitions that touch disjoint
 * sections of memory: one partition per global symbol, per opaque
 * loop-invariant base register (pointer parameter), or per walking
 * pointer induction variable. References whose address cannot be
 * analyzed join every partition conceptually; we record them as
 * `unknownRefs` and the consumers apply the paper's conservative
 * treatment.
 *
 * Both the recurrence optimization and the streaming optimization
 * consume this structure ("the algorithm makes use of the memory
 * partition information collected in the previous algorithm").
 */

#ifndef WMSTREAM_RECURRENCE_PARTITIONS_H
#define WMSTREAM_RECURRENCE_PARTITIONS_H

#include <string>
#include <vector>

#include "cfg/dominators.h"
#include "cfg/loops.h"
#include "opt/indvars.h"
#include "rtl/machine.h"

namespace wmstream::recurrence {

/** One memory reference in the loop: the paper's partition vector. */
struct MemRef
{
    int lno = -1;               ///< instruction id where it occurs
    bool isWrite = false;       ///< 'acc': read or write
    rtl::Block *block = nullptr;
    size_t index = 0;           ///< instruction index within block
    const opt::BasicIV *iv = nullptr; ///< induction variable (or null)
    int64_t cee = 0;            ///< multiplier on the IV, in bytes
    opt::LinForm dee;           ///< base + constant part of the address
    int64_t roffset = 0;        ///< dee constant relative to the base
    rtl::DataType type = rtl::DataType::I64;
    bool analyzable = false;

    /** Render as the paper does: "(14,r,r22+,8,_x-8,-8)". */
    std::string str() const;
};

/** A partition: references into one disjoint region of memory. */
struct Partition
{
    std::string key;            ///< base identity
    std::vector<MemRef> refs;
    bool safe = true;           ///< paper Step 3a/3b result

    bool hasWrite() const;
    bool hasRead() const;
    std::string str() const;
};

/** All partitions of one loop. */
struct PartitionSet
{
    std::vector<Partition> parts;
    /** References whose region is unknown (join every partition). */
    std::vector<MemRef> unknownRefs;

    bool unknownWriteExists() const;
    bool unknownReadExists() const;
    std::string str() const;
};

/**
 * Build partitions for @p loop (Steps 1–3 of the paper's algorithm).
 *
 * @p ivs must be an analysis of the same loop. The function renumbers
 * @p fn first so MemRef::lno values are current.
 */
PartitionSet buildPartitions(rtl::Function &fn, cfg::Loop &loop,
                             const cfg::DominatorTree &dt,
                             opt::IndVarAnalysis &ivs,
                             const rtl::MachineTraits &traits);

} // namespace wmstream::recurrence

#endif // WMSTREAM_RECURRENCE_PARTITIONS_H
