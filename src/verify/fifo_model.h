/**
 * @file
 * Shared model of WM's architecturally visible queues.
 *
 * WM has ten queues: per execution unit (integer, float) an input
 * data FIFO pair (registers r0/r1, f0/f1 read side), an output data
 * FIFO pair (same register indices, write side — input and output
 * queues on one register index are DISTINCT hardware), and one
 * condition-code FIFO per unit. This header names the queues, derives
 * each instruction's push/pop shape from its operand positions, and
 * discovers streamed regions (loops fed by SCU streams primed in
 * their preheader).
 *
 * Both static queue analyses build on it: the per-pass FIFO
 * discipline linter (fifolint.cc) and the whole-program
 * deadlock/depth-requirement analysis (fifodepth.cc).
 */

#ifndef WMSTREAM_VERIFY_FIFO_MODEL_H
#define WMSTREAM_VERIFY_FIFO_MODEL_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cfg/loops.h"
#include "rtl/inst.h"
#include "rtl/machine.h"

namespace wmstream::verify::fifomodel {

// ---- queue identities ----------------------------------------------

constexpr int kDataQueues = 8; ///< {in,out} x {int,flt} x {fifo 0,1}
constexpr int kQueues = kDataQueues + 2; ///< + cc0, cc1

inline int
dataQ(bool output, int side, int fifo)
{
    return (output ? 4 : 0) + side * 2 + fifo;
}

inline int
ccQ(int side)
{
    return kDataQueues + side;
}

/** Stable display name: "in:r0", "out:f1", "cc0", ... */
std::string queueName(int q);

bool isDataFifoReg(const rtl::Expr &e);

inline int
fifoSide(const rtl::Expr &e)
{
    return e.regFile() == rtl::RegFile::Flt ? 1 : 0;
}

// ---- per-instruction transfer shape --------------------------------

enum class Field : uint8_t { Src, Addr, Extra };

const char *fieldName(Field f);

struct QueueUse
{
    int q;
    Field field;
};

struct InstQueueOps
{
    std::vector<QueueUse> pops;
    std::vector<int> pushes;
};

/**
 * Queue pushes/pops performed by @p inst, derived from operand shape:
 *
 *   pop  in(side,i):  any read of FIFO register i inside an operand
 *                     expression (Assign/Store sources, Load/Store
 *                     addresses, implicit uses);
 *   push in(side,i):  a scalar Load whose destination is FIFO reg i;
 *   push out(side,i): an Assign whose destination is FIFO reg i
 *                     (the lowered enqueue);
 *   pop  out(side,i): a Store whose source is EXACTLY FIFO reg i
 *                     (the lowered dequeue-to-memory);
 *   push cc(side):    an Assign whose destination is CC cell `side`;
 *   pop  cc(side):    a CondJump on that unit.
 *
 * Stream machinery (StreamIn/Out/Stop, JumpStream, VecOp) moves
 * elements on the SCU/VEU side and is inert here.
 */
InstQueueOps queueOps(const rtl::Inst &inst);

// ---- local backward value resolution -------------------------------

/**
 * Resolve @p e to the value it holds just before instruction @p idx
 * of @p b, by substituting straight-line Assign definitions backward
 * through the block. Registers defined by loads or clobbered by calls
 * freeze (stay symbolic, and earlier definitions of them must not
 * leak forward past the freeze point). Used to compare stream counts
 * that differ syntactically but were materialized from the same
 * preheader computation.
 */
rtl::ExprPtr resolveAt(const rtl::Block *b, size_t idx, rtl::ExprPtr e,
                       const rtl::MachineTraits &traits);

// ---- streamed regions ----------------------------------------------

struct StreamSite
{
    const rtl::Inst *inst = nullptr;
    const rtl::Block *block = nullptr;
    size_t index = 0;

    bool output() const
    {
        return inst->kind == rtl::InstKind::StreamOut;
    }
    int q() const
    {
        return dataQ(output(),
                     inst->side == rtl::UnitSide::Int ? 0 : 1,
                     inst->fifo);
    }
};

struct StreamRegion
{
    cfg::Loop *loop = nullptr;
    std::string header;
    std::vector<StreamSite> streams;
    bool finite = false;
    bool jumpStreamLatch = false;
    std::map<int, size_t> slotOf; ///< claimed queue -> streams index
    /** streams[] indices whose queue was already claimed (conflicts). */
    std::vector<size_t> claimConflicts;
};

/**
 * Discover the streamed region of every loop in @p li: stream sites
 * in the loop's preheader blocks, the claimed-queue map (first claim
 * wins; duplicates land in claimConflicts), the counted/finite flag,
 * and whether a latch is steered by a JumpStream. Loops with neither
 * streams nor a JumpStream latch are omitted.
 */
std::vector<StreamRegion> collectStreamRegions(cfg::LoopInfo &li);

/**
 * Compare two count expressions: structurally equal as written, or
 * equal after resolving both backward through their blocks. Fills
 * @p why with the rendered resolved pair on mismatch.
 */
bool countsAgree(const StreamSite &a, const rtl::Block *bBlock,
                 size_t bIndex, const rtl::ExprPtr &bCount,
                 const rtl::MachineTraits &traits, std::string *why);

} // namespace wmstream::verify::fifomodel

#endif // WMSTREAM_VERIFY_FIFO_MODEL_H
