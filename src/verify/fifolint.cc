/**
 * @file
 * The WM FIFO-discipline linter: abstract queue-depth dataflow.
 *
 * WM has ten architecturally visible queues: per execution unit
 * (integer, float) an input data FIFO pair (registers r0/r1, f0/f1
 * read side), an output data FIFO pair (same registers, write side —
 * input and output queues on one register index are DISTINCT pieces
 * of hardware), and one condition-code FIFO per unit (CC cells 0 and
 * 1). The FIFO-balance lattice is a vector of abstract depths, one
 * per queue; the transfer function of an instruction is derived from
 * its operand shape:
 *
 *   pop  in(side,i):  any read of FIFO register i inside an operand
 *                     expression (Assign/Store sources, Load/Store
 *                     addresses, implicit uses);
 *   push in(side,i):  a scalar Load whose destination is FIFO reg i;
 *   push out(side,i): an Assign whose destination is FIFO reg i
 *                     (the lowered enqueue);
 *   pop  out(side,i): a Store whose source is EXACTLY FIFO reg i
 *                     (the lowered dequeue-to-memory);
 *   push cc(side):    an Assign whose destination is CC cell `side`
 *                     (a compare);
 *   pop  cc(side):    a CondJump on that unit.
 *
 * Stream instructions (StreamIn/StreamOut/StreamStop/JumpStream/
 * VecOp) move elements on the SCU/VEU side and are inert in this
 * lattice; their balance is checked per streamed region instead: the
 * region analysis proves every iteration of a streamed loop pops
 * exactly one element from each claimed input queue and pushes
 * exactly one to each claimed output queue — so a loop running
 * `count` iterations consumes exactly the `count` elements its
 * preheader SinX primes — and that all stream counts feeding one
 * region agree (resolved through preheader copies, which is how the
 * deliberately injected under-count miscompile is caught statically).
 *
 * Joins require exact depth equality (a queue cannot hold a
 * path-dependent number of elements), calls and returns require all
 * depths zero, and no instruction may pop the same queue twice (the
 * relative order of two dequeues inside one instruction is
 * unspecified, so FIFO reads must never be reordered across a pop on
 * the same unit).
 */

#include "verify/verify.h"

#include <array>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "cfg/dominators.h"
#include "cfg/loops.h"
#include "rtl/inst.h"
#include "support/str.h"

namespace wmstream::verify {

namespace {

using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;
using rtl::UnitSide;

using detail::addViolation;

// ---- queue identities ----------------------------------------------

constexpr int kDataQueues = 8; ///< {in,out} x {int,flt} x {fifo 0,1}
constexpr int kQueues = kDataQueues + 2; ///< + cc0, cc1

int
dataQ(bool output, int side, int fifo)
{
    return (output ? 4 : 0) + side * 2 + fifo;
}

int
ccQ(int side)
{
    return kDataQueues + side;
}

std::string
queueName(int q)
{
    if (q >= kDataQueues)
        return strFormat("cc%d", q - kDataQueues);
    bool output = q >= 4;
    int side = (q / 2) % 2;
    int fifo = q % 2;
    return strFormat("%s:%c%d", output ? "out" : "in",
                     side ? 'f' : 'r', fifo);
}

bool
isDataFifoReg(const Expr &e)
{
    return e.kind() == Expr::Kind::Reg &&
           (e.regFile() == RegFile::Int ||
            e.regFile() == RegFile::Flt) &&
           (e.regIndex() == 0 || e.regIndex() == 1);
}

int
fifoSide(const Expr &e)
{
    return e.regFile() == RegFile::Flt ? 1 : 0;
}

// ---- per-instruction transfer shape --------------------------------

enum class Field : uint8_t { Src, Addr, Extra };

const char *
fieldName(Field f)
{
    switch (f) {
      case Field::Src: return "source";
      case Field::Addr: return "address";
      case Field::Extra: return "implicit-use";
    }
    return "?";
}

struct QueueUse
{
    int q;
    Field field;
};

struct InstQueueOps
{
    std::vector<QueueUse> pops;
    std::vector<int> pushes;
};

void
collectInputPops(const ExprPtr &e, Field field, InstQueueOps &ops)
{
    if (!e)
        return;
    rtl::forEachNode(e, [&](const Expr &n) {
        if (isDataFifoReg(n))
            ops.pops.push_back(
                {dataQ(false, fifoSide(n), n.regIndex()), field});
    });
}

/** Queue pushes/pops performed by @p inst (file comment, bullet
 *  list). Stream machinery is inert here. */
InstQueueOps
queueOps(const Inst &inst)
{
    InstQueueOps ops;
    switch (inst.kind) {
      case InstKind::StreamIn:
      case InstKind::StreamOut:
      case InstKind::StreamStop:
      case InstKind::JumpStream:
      case InstKind::VecOp:
        return ops; // SCU/VEU side: checked per streamed region
      case InstKind::Load:
        collectInputPops(inst.addr, Field::Addr, ops);
        if (inst.dst && inst.dst->isReg() && isDataFifoReg(*inst.dst))
            ops.pushes.push_back(
                dataQ(false, fifoSide(*inst.dst),
                      inst.dst->regIndex()));
        break;
      case InstKind::Assign:
        collectInputPops(inst.src, Field::Src, ops);
        if (inst.dst && inst.dst->isReg()) {
            if (isDataFifoReg(*inst.dst))
                ops.pushes.push_back(
                    dataQ(true, fifoSide(*inst.dst),
                          inst.dst->regIndex()));
            else if (inst.dst->regFile() == RegFile::CC)
                ops.pushes.push_back(
                    ccQ(inst.dst->regIndex() == 1 ? 1 : 0));
        }
        break;
      case InstKind::Store:
        collectInputPops(inst.addr, Field::Addr, ops);
        if (inst.src && inst.src->isReg() && isDataFifoReg(*inst.src))
            ops.pops.push_back(
                {dataQ(true, fifoSide(*inst.src),
                       inst.src->regIndex()),
                 Field::Src});
        else
            collectInputPops(inst.src, Field::Src, ops);
        break;
      case InstKind::CondJump:
        ops.pops.push_back(
            {ccQ(inst.side == UnitSide::Int ? 0 : 1), Field::Src});
        break;
      default:
        break;
    }
    for (const ExprPtr &e : inst.extraUses)
        collectInputPops(e, Field::Extra, ops);
    return ops;
}

// ---- local backward value resolution -------------------------------

/**
 * Resolve @p e to the value it holds just before instruction @p idx
 * of @p b, by substituting straight-line Assign definitions backward
 * through the block. Registers defined by loads or clobbered by calls
 * freeze (stay symbolic, and earlier definitions of them must not
 * leak forward past the freeze point). Used to compare stream counts
 * that differ syntactically but were materialized from the same
 * preheader computation.
 */
ExprPtr
resolveAt(const rtl::Block *b, size_t idx, ExprPtr e,
          const rtl::MachineTraits &traits)
{
    if (!e)
        return e;
    std::set<std::pair<int, int>> frozen;
    for (size_t i = idx; i-- > 0;) {
        const Inst &inst = b->insts[i];
        if (inst.kind == InstKind::Call)
            break; // clobbers caller-saved state: stop resolving
        ExprPtr d = rtl::instDef(inst);
        if (!d || !d->isReg())
            continue;
        RegFile f = d->regFile();
        int ri = d->regIndex();
        if ((f == RegFile::Int || f == RegFile::Flt) &&
                ri == traits.zeroReg)
            continue; // writes to the zero register are discarded
        if (!rtl::usesReg(e, f, ri))
            continue;
        auto key = std::make_pair(static_cast<int>(f), ri);
        if (frozen.count(key))
            continue;
        if (inst.kind == InstKind::Assign && inst.src &&
                !rtl::containsMem(inst.src))
            e = rtl::substReg(e, f, ri, inst.src);
        else
            frozen.insert(key); // load or non-copyable def
    }
    return e;
}

// ---- streamed regions ----------------------------------------------

struct StreamSite
{
    const Inst *inst = nullptr;
    const rtl::Block *block = nullptr;
    size_t index = 0;

    bool output() const { return inst->kind == InstKind::StreamOut; }
    int q() const
    {
        return dataQ(output(), inst->side == UnitSide::Int ? 0 : 1,
                     inst->fifo);
    }
};

struct StreamRegion
{
    cfg::Loop *loop = nullptr;
    std::string header;
    std::vector<StreamSite> streams;
    bool finite = false;
    std::map<int, size_t> slotOf; ///< claimed queue -> streams index
};

/** Fill the violation's loop context fields. */
void
inLoop(Violation &v, const StreamRegion &r)
{
    v.loopHeader = r.header;
}

/**
 * Compare two count expressions: structurally equal as written, or
 * equal after resolving both backward through their blocks. Returns
 * the rendered resolved pair on mismatch.
 */
bool
countsAgree(const StreamSite &a, const rtl::Block *bBlock,
            size_t bIndex, const ExprPtr &bCount,
            const rtl::MachineTraits &traits, std::string *why)
{
    if (rtl::exprEqual(a.inst->count, bCount))
        return true;
    ExprPtr ra = resolveAt(a.block, a.index, a.inst->count, traits);
    ExprPtr rb = resolveAt(bBlock, bIndex, bCount, traits);
    if (rtl::exprEqual(ra, rb))
        return true;
    *why = strFormat("counts resolve to %s vs %s",
                     ra ? ra->str().c_str() : "<null>",
                     rb ? rb->str().c_str() : "<null>");
    return false;
}

/** Per-iteration pop/push balance inside one streamed loop. */
void
checkRegionBalance(const StreamRegion &r, const rtl::Function &fn,
                   VerifyReport &out)
{
    const cfg::Loop &loop = *r.loop;
    size_t n = r.streams.size();
    if (n == 0)
        return;
    // State: per claimed stream, (pops, pushes) of its queue on the
    // path from the header to here, back edges excluded.
    using State = std::vector<int8_t>;
    State zero(2 * n, 0);

    auto transfer = [&](const rtl::Block *b, State s) {
        for (const Inst &inst : b->insts) {
            InstQueueOps ops = queueOps(inst);
            for (const QueueUse &p : ops.pops) {
                auto it = r.slotOf.find(p.q);
                if (it != r.slotOf.end() && s[2 * it->second] < 100)
                    ++s[2 * it->second];
            }
            for (int q : ops.pushes) {
                auto it = r.slotOf.find(q);
                if (it != r.slotOf.end() &&
                        s[2 * it->second + 1] < 100)
                    ++s[2 * it->second + 1];
            }
        }
        return s;
    };

    // Forward walk from the header, join = must-be-equal, keep-first.
    std::map<const rtl::Block *, State> inState;
    inState[loop.header] = zero;
    std::map<const rtl::Block *, std::set<size_t>> joinBad;
    bool grew = true;
    while (grew) {
        grew = false;
        for (const auto &bp : fn.blocks()) {
            rtl::Block *b = bp.get();
            auto it = inState.find(b);
            if (it == inState.end() || !loop.contains(b))
                continue;
            State s = transfer(b, it->second);
            for (rtl::Block *succ : b->succs) {
                if (!loop.contains(succ) || succ == loop.header)
                    continue;
                auto jt = inState.find(succ);
                if (jt == inState.end()) {
                    inState.emplace(succ, s);
                    grew = true;
                } else if (jt->second != s) {
                    for (size_t k = 0; k < n; ++k)
                        if (jt->second[2 * k] != s[2 * k] ||
                                jt->second[2 * k + 1] != s[2 * k + 1])
                            joinBad[succ].insert(k);
                }
            }
        }
    }

    for (const auto &bp : fn.blocks()) {
        rtl::Block *b = bp.get();
        auto jb = joinBad.find(b);
        if (jb == joinBad.end())
            continue;
        for (size_t k : jb->second) {
            Violation &v =
                addViolation(out, "fifo-join-mismatch", fn);
            v.block = b->label();
            inLoop(v, r);
            v.invariant = queueName(r.streams[k].q());
            v.detail = "streamed-loop paths disagree on elements "
                       "moved per iteration at this join";
        }
    }

    // Every latch must arrive with exactly one pop per claimed input
    // queue and one push per claimed output queue — the loop body
    // moves exactly one element per queue per iteration, so `count`
    // iterations consume exactly the `count` elements primed.
    for (rtl::Block *latch : loop.latches) {
        auto it = inState.find(latch);
        if (it == inState.end())
            continue; // unreachable from header without back edges
        State s = transfer(latch, it->second);
        for (size_t k = 0; k < n; ++k) {
            bool output = r.streams[k].output();
            int pops = s[2 * k];
            int pushes = s[2 * k + 1];
            std::string qn = queueName(r.streams[k].q());
            int want = output ? pushes : pops;
            if (want != 1) {
                Violation &v = addViolation(
                    out, output ? "fifo-push-imbalance"
                                : "fifo-pop-imbalance",
                    fn);
                v.block = latch->label();
                inLoop(v, r);
                v.invariant = qn;
                v.detail = strFormat(
                    "%d %s(s) of %s per iteration on the path "
                    "through latch %s; a streamed loop must %s "
                    "exactly one element per iteration",
                    want, output ? "push" : "pop", qn.c_str(),
                    latch->label().c_str(),
                    output ? "enqueue" : "dequeue");
            }
            int other = output ? pops : pushes;
            if (other != 0) {
                Violation &v = addViolation(
                    out, output ? "fifo-pop-imbalance"
                                : "fifo-push-imbalance",
                    fn);
                v.block = latch->label();
                inLoop(v, r);
                v.invariant = qn;
                v.detail = strFormat(
                    "%s %s inside the streamed loop that claims it "
                    "as a%s queue",
                    qn.c_str(), output ? "popped" : "pushed",
                    output ? "n output" : "n input");
            }
        }
    }
}

// ---- the global depth walk -----------------------------------------

using DepthState = std::array<int16_t, kQueues>;

struct WalkCtx
{
    bool trackData = false; ///< PostLower: scalar FIFO traffic legal
    const std::set<std::pair<const rtl::Block *, int>> *exempt;
};

DepthState
depthTransfer(const rtl::Block *b, DepthState s, const WalkCtx &ctx,
              const rtl::Function &fn, VerifyReport *out)
{
    auto emit = [&](std::string reason, const Inst &inst,
                    int q) -> Violation & {
        Violation &v = addViolation(*out, std::move(reason), fn);
        v.block = b->label();
        v.instId = inst.id;
        v.pos = inst.pos;
        v.invariant = queueName(q);
        return v;
    };
    for (const Inst &inst : b->insts) {
        InstQueueOps ops = queueOps(inst);
        for (const QueueUse &p : ops.pops) {
            bool cc = p.q >= kDataQueues;
            if (!cc) {
                if (ctx.exempt->count({b, p.q}))
                    continue;
                if (!ctx.trackData) {
                    if (out)
                        emit("fifo-outside-stream", inst, p.q)
                            .detail = strFormat(
                            "FIFO register read in %s operand outside "
                            "any streamed region before lowering",
                            fieldName(p.field));
                    continue;
                }
            }
            if (s[p.q] == 0) {
                if (out)
                    emit(cc ? "cc-underflow" : "fifo-underflow", inst,
                         p.q)
                        .detail = cc
                        ? std::string(
                              "branch consumes a condition code no "
                              "compare produced on this path")
                        : std::string(
                              "dequeue from an empty queue on this "
                              "path");
            } else {
                --s[p.q];
            }
        }
        for (int q : ops.pushes) {
            bool cc = q >= kDataQueues;
            if (!cc) {
                if (ctx.exempt->count({b, q}))
                    continue;
                if (!ctx.trackData) {
                    if (out)
                        emit("fifo-outside-stream", inst, q).detail =
                            "FIFO register written outside any "
                            "streamed region before lowering";
                    continue;
                }
            }
            if (s[q] < 1000)
                ++s[q];
        }
        if (inst.kind == InstKind::Call) {
            for (int q = 0; q < kQueues; ++q) {
                if (s[q] == 0)
                    continue;
                if (out)
                    emit(q >= kDataQueues ? "cc-held-across-call"
                                          : "fifo-held-across-call",
                         inst, q)
                        .detail = strFormat(
                        "%d element(s) in %s across a call; the "
                        "callee's queue traffic would interleave",
                        s[q], queueName(q).c_str());
                s[q] = 0;
            }
        }
        if (inst.kind == InstKind::Return) {
            for (int q = 0; q < kQueues; ++q) {
                if (s[q] == 0)
                    continue;
                if (out)
                    emit(q >= kDataQueues ? "cc-overproduction"
                                          : "fifo-leak",
                         inst, q)
                        .detail = strFormat(
                        "%d element(s) left in %s at return", s[q],
                        queueName(q).c_str());
                s[q] = 0;
            }
        }
    }
    return s;
}

void
depthWalk(rtl::Function &fn, const std::vector<rtl::Block *> &rpo,
          const WalkCtx &ctx, VerifyReport &out)
{
    std::map<const rtl::Block *, DepthState> inState;
    if (!fn.entry())
        return;
    DepthState zero{};
    inState[fn.entry()] = zero;
    std::map<const rtl::Block *, std::set<int>> joinBad;
    bool grew = true;
    while (grew) {
        grew = false;
        for (rtl::Block *b : rpo) {
            auto it = inState.find(b);
            if (it == inState.end())
                continue;
            DepthState s =
                depthTransfer(b, it->second, ctx, fn, nullptr);
            for (rtl::Block *succ : b->succs) {
                auto jt = inState.find(succ);
                if (jt == inState.end()) {
                    inState.emplace(succ, s);
                    grew = true;
                } else if (jt->second != s) {
                    for (int q = 0; q < kQueues; ++q)
                        if (jt->second[q] != s[q])
                            joinBad[succ].insert(q);
                }
            }
        }
    }
    // Emission pass: every reachable block once, from its (stable)
    // in-state, in reverse post-order for deterministic output.
    for (rtl::Block *b : rpo) {
        auto it = inState.find(b);
        if (it == inState.end())
            continue;
        (void)depthTransfer(b, it->second, ctx, fn, &out);
        auto jb = joinBad.find(b);
        if (jb == joinBad.end())
            continue;
        for (int q : jb->second) {
            Violation &v = addViolation(
                out, q >= kDataQueues ? "cc-join-mismatch"
                                      : "fifo-join-mismatch",
                fn);
            v.block = b->label();
            v.invariant = queueName(q);
            v.detail = "queue depth differs between predecessor "
                       "paths at this join";
        }
        joinBad.erase(jb);
    }
}

} // anonymous namespace

namespace detail {

void
checkQueueDiscipline(rtl::Function &fn,
                     const rtl::MachineTraits &traits,
                     const VerifyOptions &opts, VerifyReport &out)
{
    cfg::DominatorTree dt(fn);
    cfg::LoopInfo li(fn, dt);

    // ---- per-instruction: no double pop of one queue ----
    // Two dequeues of the same queue inside one instruction have an
    // unspecified relative order: FIFO reads must never be reordered
    // across a pop on the same unit.
    for (const auto &bp : fn.blocks()) {
        for (const Inst &inst : bp->insts) {
            InstQueueOps ops = queueOps(inst);
            std::map<int, int> perQueue;
            for (const QueueUse &p : ops.pops)
                ++perQueue[p.q];
            for (const auto &kv : perQueue) {
                if (kv.second < 2 || kv.first >= kDataQueues)
                    continue;
                Violation &v =
                    addViolation(out, "ambiguous-pop-order", fn);
                v.block = bp->label();
                v.instId = inst.id;
                v.pos = inst.pos;
                v.invariant = queueName(kv.first);
                v.detail = strFormat(
                    "%d dequeues of %s in one instruction; their "
                    "relative order is unspecified",
                    kv.second, queueName(kv.first).c_str());
            }
        }
    }

    // ---- streamed regions ----
    std::vector<StreamRegion> regions;
    std::set<const Inst *> matchedSteering;
    for (cfg::Loop &loop : li.loops()) {
        StreamRegion r;
        r.loop = &loop;
        r.header = loop.header->label();
        for (rtl::Block *p : loop.header->preds) {
            if (loop.contains(p))
                continue;
            for (size_t i = 0; i < p->insts.size(); ++i) {
                const Inst &inst = p->insts[i];
                if (inst.kind == InstKind::StreamIn ||
                        inst.kind == InstKind::StreamOut)
                    r.streams.push_back({&inst, p, i});
            }
        }
        bool jsLatch = false;
        for (rtl::Block *l : loop.latches)
            if (const Inst *t = l->terminator())
                if (t->kind == InstKind::JumpStream)
                    jsLatch = true;
        if (r.streams.empty() && !jsLatch)
            continue;

        // Claim queues; two streams on one queue cannot coexist.
        for (size_t i = 0; i < r.streams.size(); ++i) {
            int q = r.streams[i].q();
            if (!r.slotOf.emplace(q, i).second) {
                Violation &v =
                    addViolation(out, "stream-fifo-conflict", fn);
                v.block = r.streams[i].block->label();
                inLoop(v, r);
                v.invariant = queueName(q);
                v.detail = "two streams feeding one loop claim the "
                           "same queue";
            }
        }

        // All counts null (data-dependent, "infinite") or all
        // non-null (counted); a mix can never balance.
        size_t counted = 0;
        for (const StreamSite &s : r.streams)
            if (s.inst->count)
                ++counted;
        if (counted != 0 && counted != r.streams.size()) {
            Violation &v =
                addViolation(out, "stream-count-mismatch", fn);
            inLoop(v, r);
            v.block = r.streams[0].block->label();
            v.invariant = queueName(r.streams[0].q());
            v.detail = "counted and uncounted streams feed the same "
                       "loop";
        }
        r.finite = !r.streams.empty() && counted == r.streams.size();

        // Counted loops iterate under a JumpStream latch; uncounted
        // ones exit on a data-dependent CondJump.
        if (!r.streams.empty() && r.finite != jsLatch) {
            Violation &v =
                addViolation(out, "stream-loop-shape", fn);
            inLoop(v, r);
            v.block = r.header;
            v.invariant = queueName(r.streams[0].q());
            v.detail = r.finite
                ? "counted streams but the latch is not steered by "
                  "a jump-stream"
                : "jump-stream latch over uncounted streams";
        }

        // Counted streams feeding one loop must agree on the count —
        // the loop pops one element per queue per iteration, so
        // differing counts starve or wedge a queue. Resolved through
        // preheader copies so syntactic differences don't matter.
        if (r.finite) {
            const StreamSite &ref = r.streams[0];
            for (size_t i = 1; i < r.streams.size(); ++i) {
                const StreamSite &s = r.streams[i];
                std::string why;
                if (countsAgree(ref, s.block, s.index, s.inst->count,
                                traits, &why))
                    continue;
                Violation &v =
                    addViolation(out, "stream-count-mismatch", fn);
                v.block = s.block->label();
                inLoop(v, r);
                v.invariant = queueName(s.q());
                v.pos = s.inst->pos;
                v.detail = strFormat(
                    "stream on %s disagrees with the stream on %s: "
                    "%s",
                    queueName(s.q()).c_str(),
                    queueName(ref.q()).c_str(), why.c_str());
            }
        }

        // Each JumpStream latch must be steered by a claimed stream.
        for (rtl::Block *l : loop.latches) {
            const Inst *t = l->terminator();
            if (!t || t->kind != InstKind::JumpStream)
                continue;
            int side = t->side == UnitSide::Int ? 0 : 1;
            bool found = r.slotOf.count(dataQ(false, side, t->fifo)) ||
                         r.slotOf.count(dataQ(true, side, t->fifo));
            if (found) {
                matchedSteering.insert(t);
            } else {
                Violation &v =
                    addViolation(out, "jumpstream-no-stream", fn);
                v.block = l->label();
                inLoop(v, r);
                v.instId = t->id;
                v.pos = t->pos;
                v.invariant =
                    strFormat("%c%d", side ? 'f' : 'r', t->fifo);
                v.detail = "jump-stream latch steered by a FIFO no "
                           "stream feeds";
            }
        }

        // A counted streamed loop has exactly one way out: the
        // steering latch falling through when the stream is done.
        // Any other exit abandons unconsumed elements.
        if (r.finite) {
            for (rtl::Block *b : loop.exiting) {
                const Inst *t = b->terminator();
                if (t && t->kind == InstKind::JumpStream)
                    continue;
                for (const StreamSite &s : r.streams) {
                    Violation &v =
                        addViolation(out, "fifo-leak", fn);
                    v.block = b->label();
                    inLoop(v, r);
                    v.invariant = queueName(s.q());
                    v.detail = strFormat(
                        "counted stream loop can exit early via %s, "
                        "abandoning queued elements",
                        b->label().c_str());
                }
            }
        }

        // An uncounted stream runs until cancelled: every exit
        // target must stop every claimed stream.
        if (!r.finite && !r.streams.empty()) {
            for (rtl::Block *b : loop.exiting) {
                for (rtl::Block *succ : b->succs) {
                    if (loop.contains(succ))
                        continue;
                    for (const StreamSite &s : r.streams) {
                        bool input = !s.output();
                        bool stopped = false;
                        for (const Inst &inst : succ->insts)
                            if (inst.kind == InstKind::StreamStop &&
                                    inst.side == s.inst->side &&
                                    inst.fifo == s.inst->fifo &&
                                    inst.when == input)
                                stopped = true;
                        if (stopped)
                            continue;
                        Violation &v = addViolation(
                            out, "stream-stop-missing", fn);
                        v.block = succ->label();
                        inLoop(v, r);
                        v.invariant = queueName(s.q());
                        v.detail = strFormat(
                            "loop exit %s does not cancel the "
                            "uncounted stream on %s",
                            succ->label().c_str(),
                            queueName(s.q()).c_str());
                    }
                }
            }
        }

        checkRegionBalance(r, fn, out);
        regions.push_back(std::move(r));
    }

    // A JumpStream that is not the steering latch of any streamed
    // loop spins on a stream nothing primes.
    for (const auto &bp : fn.blocks()) {
        for (const Inst &inst : bp->insts) {
            if (inst.kind != InstKind::JumpStream ||
                    matchedSteering.count(&inst))
                continue;
            Violation &v =
                addViolation(out, "jumpstream-no-stream", fn);
            v.block = bp->label();
            v.instId = inst.id;
            v.pos = inst.pos;
            v.invariant =
                strFormat("%c%d",
                          inst.side == UnitSide::Flt ? 'f' : 'r',
                          inst.fifo);
            v.detail =
                "jump-stream outside any streamed loop latch";
        }
    }

    // ---- vectorized regions ----
    // A VecOp consumes whole streams on the VEU: every FIFO operand
    // must be fed by a stream in this or a predecessor block, and the
    // element counts must agree.
    const auto &blocks = fn.blocks();
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        rtl::Block *b = blocks[bi].get();
        for (size_t i = 0; i < b->insts.size(); ++i) {
            const Inst &inst = b->insts[i];
            if (inst.kind != InstKind::VecOp)
                continue;
            // Gather candidate stream sites: earlier in this block,
            // in CFG predecessors, and in the layout predecessor.
            std::vector<StreamSite> sites;
            auto scan = [&](const rtl::Block *sb, size_t limit) {
                for (size_t k = 0; k < limit; ++k) {
                    const Inst &cand = sb->insts[k];
                    if (cand.kind == InstKind::StreamIn ||
                            cand.kind == InstKind::StreamOut)
                        sites.push_back({&cand, sb, k});
                }
            };
            scan(b, i);
            for (const rtl::Block *p : b->preds)
                scan(p, p->insts.size());
            if (bi > 0)
                scan(blocks[bi - 1].get(),
                     blocks[bi - 1]->insts.size());

            auto need = [&](const ExprPtr &opnd, bool output) {
                if (!opnd || !opnd->isReg() || !isDataFifoReg(*opnd))
                    return;
                int q = dataQ(output, fifoSide(*opnd),
                              opnd->regIndex());
                const StreamSite *feed = nullptr;
                for (const StreamSite &s : sites)
                    if (s.q() == q)
                        feed = &s;
                if (!feed) {
                    Violation &v =
                        addViolation(out, "vec-no-stream", fn);
                    v.block = b->label();
                    v.instId = inst.id;
                    v.pos = inst.pos;
                    v.invariant = queueName(q);
                    v.detail = strFormat(
                        "vector operation %s %s but no stream feeds "
                        "it",
                        output ? "writes" : "reads",
                        queueName(q).c_str());
                    return;
                }
                std::string why;
                if (!inst.count || countsAgree(*feed, b, i, inst.count,
                                               traits, &why)) {
                    return;
                }
                Violation &v =
                    addViolation(out, "stream-count-mismatch", fn);
                v.block = b->label();
                v.instId = inst.id;
                v.pos = inst.pos;
                v.invariant = queueName(q);
                v.detail = strFormat(
                    "vector element count disagrees with the stream "
                    "on %s: %s",
                    queueName(q).c_str(), why.c_str());
            };
            need(inst.src, false);
            need(inst.vecSrc2, false);
            need(inst.dst, true);
        }
    }

    // ---- the global depth walk ----
    // Claimed queues inside their streamed loop are the streams'
    // business (checked per region above); exempt them here.
    std::set<std::pair<const rtl::Block *, int>> exempt;
    for (const StreamRegion &r : regions)
        for (rtl::Block *b : r.loop->blocks)
            for (const auto &kv : r.slotOf)
                exempt.insert({b, kv.first});

    WalkCtx ctx;
    ctx.trackData = opts.stage == Stage::PostLower;
    ctx.exempt = &exempt;
    depthWalk(fn, dt.reversePostOrder(), ctx, out);
}

} // namespace detail

} // namespace wmstream::verify
