/**
 * @file
 * The WM FIFO-discipline linter: abstract queue-depth dataflow.
 *
 * The queue model (identities, per-instruction push/pop shapes,
 * streamed-region discovery, count resolution) lives in fifo_model.h
 * and is shared with the whole-program depth analysis (fifodepth.cc).
 * This file holds the per-pass checks:
 *
 *  - streamed-region balance: every iteration of a streamed loop pops
 *    exactly one element from each claimed input queue and pushes
 *    exactly one to each claimed output queue — so a loop running
 *    `count` iterations consumes exactly the `count` elements its
 *    preheader SinX primes — and all stream counts feeding one region
 *    agree (resolved through preheader copies, which is how the
 *    deliberately injected under-count miscompile is caught
 *    statically);
 *  - the global depth walk: joins require exact depth equality (a
 *    queue cannot hold a path-dependent number of elements), calls
 *    and returns require all depths zero, and no instruction may pop
 *    the same queue twice (the relative order of two dequeues inside
 *    one instruction is unspecified, so FIFO reads must never be
 *    reordered across a pop on the same unit).
 *
 * Both fixpoints run on the pooled-bitset dataflow engine's general
 * solver (src/dataflow): the old hand-rolled "grew" full-rescan loops
 * are gone.
 */

#include "verify/verify.h"

#include <array>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "cfg/dominators.h"
#include "cfg/loops.h"
#include "dataflow/cfg_index.h"
#include "dataflow/solver.h"
#include "rtl/inst.h"
#include "support/str.h"
#include "verify/fifo_model.h"

namespace wmstream::verify {

namespace {

using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;
using rtl::UnitSide;

using detail::addViolation;

using namespace fifomodel;

/** Fill the violation's loop context fields. */
void
inLoop(Violation &v, const StreamRegion &r)
{
    v.loopHeader = r.header;
}

/** Per-iteration pop/push balance inside one streamed loop. */
void
checkRegionBalance(const StreamRegion &r, const rtl::Function &fn,
                   const dataflow::CfgIndex &cfg, VerifyReport &out)
{
    const cfg::Loop &loop = *r.loop;
    size_t n = r.streams.size();
    if (n == 0)
        return;
    // State: per claimed stream, (pops, pushes) of its queue on the
    // path from the header to here, back edges excluded.
    using State = std::vector<int8_t>;
    State zero(2 * n, 0);

    auto transfer = [&](size_t bi, State s) {
        for (const Inst &inst : cfg.block(bi)->insts) {
            InstQueueOps ops = queueOps(inst);
            for (const QueueUse &p : ops.pops) {
                auto it = r.slotOf.find(p.q);
                if (it != r.slotOf.end() && s[2 * it->second] < 100)
                    ++s[2 * it->second];
            }
            for (int q : ops.pushes) {
                auto it = r.slotOf.find(q);
                if (it != r.slotOf.end() &&
                        s[2 * it->second + 1] < 100)
                    ++s[2 * it->second + 1];
            }
        }
        return s;
    };

    // Forward walk from the header over loop blocks only, back edges
    // excluded; join = must-be-equal, keep-first, mismatches noted.
    std::map<const rtl::Block *, std::set<size_t>> joinBad;
    auto join = [&](State &accum, const State &incoming, size_t to) {
        if (accum != incoming)
            for (size_t k = 0; k < n; ++k)
                if (accum[2 * k] != incoming[2 * k] ||
                        accum[2 * k + 1] != incoming[2 * k + 1])
                    joinBad[cfg.block(to)].insert(k);
        return false; // keep-first: state never widens
    };
    auto edgeOk = [&](size_t from, size_t to) {
        (void)from;
        rtl::Block *tb = cfg.block(to);
        return loop.contains(tb) && tb != loop.header;
    };
    std::vector<std::pair<size_t, State>> seeds{
        {cfg.indexOf(loop.header), zero}};
    auto solved = dataflow::solveGeneralSeeded(
        cfg, dataflow::Direction::Forward, seeds, transfer, join,
        edgeOk);

    for (const auto &bp : fn.blocks()) {
        const rtl::Block *b = bp.get();
        auto jb = joinBad.find(b);
        if (jb == joinBad.end())
            continue;
        for (size_t k : jb->second) {
            Violation &v =
                addViolation(out, "fifo-join-mismatch", fn);
            v.block = b->label();
            inLoop(v, r);
            v.invariant = queueName(r.streams[k].q());
            v.detail = "streamed-loop paths disagree on elements "
                       "moved per iteration at this join";
        }
    }

    // Every latch must arrive with exactly one pop per claimed input
    // queue and one push per claimed output queue — the loop body
    // moves exactly one element per queue per iteration, so `count`
    // iterations consume exactly the `count` elements primed.
    for (rtl::Block *latch : loop.latches) {
        size_t li = cfg.indexOf(latch);
        if (!solved.reached[li])
            continue; // unreachable from header without back edges
        State s = transfer(li, solved.in[li]);
        for (size_t k = 0; k < n; ++k) {
            bool output = r.streams[k].output();
            int pops = s[2 * k];
            int pushes = s[2 * k + 1];
            std::string qn = queueName(r.streams[k].q());
            int want = output ? pushes : pops;
            if (want != 1) {
                Violation &v = addViolation(
                    out, output ? "fifo-push-imbalance"
                                : "fifo-pop-imbalance",
                    fn);
                v.block = latch->label();
                inLoop(v, r);
                v.invariant = qn;
                v.detail = strFormat(
                    "%d %s(s) of %s per iteration on the path "
                    "through latch %s; a streamed loop must %s "
                    "exactly one element per iteration",
                    want, output ? "push" : "pop", qn.c_str(),
                    latch->label().c_str(),
                    output ? "enqueue" : "dequeue");
            }
            int other = output ? pops : pushes;
            if (other != 0) {
                Violation &v = addViolation(
                    out, output ? "fifo-pop-imbalance"
                                : "fifo-push-imbalance",
                    fn);
                v.block = latch->label();
                inLoop(v, r);
                v.invariant = qn;
                v.detail = strFormat(
                    "%s %s inside the streamed loop that claims it "
                    "as a%s queue",
                    qn.c_str(), output ? "popped" : "pushed",
                    output ? "n output" : "n input");
            }
        }
    }
}

// ---- the global depth walk -----------------------------------------

using DepthState = std::array<int16_t, kQueues>;

struct WalkCtx
{
    bool trackData = false; ///< PostLower: scalar FIFO traffic legal
    const std::set<std::pair<const rtl::Block *, int>> *exempt;
};

DepthState
depthTransfer(const rtl::Block *b, DepthState s, const WalkCtx &ctx,
              const rtl::Function &fn, VerifyReport *out)
{
    auto emit = [&](std::string reason, const Inst &inst,
                    int q) -> Violation & {
        Violation &v = addViolation(*out, std::move(reason), fn);
        v.block = b->label();
        v.instId = inst.id;
        v.pos = inst.pos;
        v.invariant = queueName(q);
        return v;
    };
    for (const Inst &inst : b->insts) {
        InstQueueOps ops = queueOps(inst);
        for (const QueueUse &p : ops.pops) {
            bool cc = p.q >= kDataQueues;
            if (!cc) {
                if (ctx.exempt->count({b, p.q}))
                    continue;
                if (!ctx.trackData) {
                    if (out)
                        emit("fifo-outside-stream", inst, p.q)
                            .detail = strFormat(
                            "FIFO register read in %s operand outside "
                            "any streamed region before lowering",
                            fieldName(p.field));
                    continue;
                }
            }
            if (s[p.q] == 0) {
                if (out)
                    emit(cc ? "cc-underflow" : "fifo-underflow", inst,
                         p.q)
                        .detail = cc
                        ? std::string(
                              "branch consumes a condition code no "
                              "compare produced on this path")
                        : std::string(
                              "dequeue from an empty queue on this "
                              "path");
            } else {
                --s[p.q];
            }
        }
        for (int q : ops.pushes) {
            bool cc = q >= kDataQueues;
            if (!cc) {
                if (ctx.exempt->count({b, q}))
                    continue;
                if (!ctx.trackData) {
                    if (out)
                        emit("fifo-outside-stream", inst, q).detail =
                            "FIFO register written outside any "
                            "streamed region before lowering";
                    continue;
                }
            }
            if (s[q] < 1000)
                ++s[q];
        }
        if (inst.kind == InstKind::Call) {
            for (int q = 0; q < kQueues; ++q) {
                if (s[q] == 0)
                    continue;
                if (out)
                    emit(q >= kDataQueues ? "cc-held-across-call"
                                          : "fifo-held-across-call",
                         inst, q)
                        .detail = strFormat(
                        "%d element(s) in %s across a call; the "
                        "callee's queue traffic would interleave",
                        s[q], queueName(q).c_str());
                s[q] = 0;
            }
        }
        if (inst.kind == InstKind::Return) {
            for (int q = 0; q < kQueues; ++q) {
                if (s[q] == 0)
                    continue;
                if (out)
                    emit(q >= kDataQueues ? "cc-overproduction"
                                          : "fifo-leak",
                         inst, q)
                        .detail = strFormat(
                        "%d element(s) left in %s at return", s[q],
                        queueName(q).c_str());
                s[q] = 0;
            }
        }
    }
    return s;
}

void
depthWalk(rtl::Function &fn, const dataflow::CfgIndex &cfg,
          const WalkCtx &ctx, VerifyReport &out)
{
    if (!fn.entry())
        return;
    DepthState zero{};
    std::map<const rtl::Block *, std::set<int>> joinBad;
    auto transfer = [&](size_t bi, const DepthState &s) {
        return depthTransfer(cfg.block(bi), s, ctx, fn, nullptr);
    };
    auto join = [&](DepthState &accum, const DepthState &incoming,
                    size_t to) {
        if (accum != incoming)
            for (int q = 0; q < kQueues; ++q)
                if (accum[q] != incoming[q])
                    joinBad[cfg.block(to)].insert(q);
        return false; // keep-first: depths never widen
    };
    std::vector<std::pair<size_t, DepthState>> seeds{
        {cfg.indexOf(fn.entry()), zero}};
    auto solved = dataflow::solveGeneralSeeded(
        cfg, dataflow::Direction::Forward, seeds, transfer, join,
        [](size_t, size_t) { return true; });

    // Emission pass: every reachable block once, from its (stable)
    // in-state, in reverse post-order for deterministic output.
    for (size_t bi : cfg.rpo()) {
        if (!solved.reached[bi])
            continue;
        rtl::Block *b = cfg.block(bi);
        (void)depthTransfer(b, solved.in[bi], ctx, fn, &out);
        auto jb = joinBad.find(b);
        if (jb == joinBad.end())
            continue;
        for (int q : jb->second) {
            Violation &v = addViolation(
                out, q >= kDataQueues ? "cc-join-mismatch"
                                      : "fifo-join-mismatch",
                fn);
            v.block = b->label();
            v.invariant = queueName(q);
            v.detail = "queue depth differs between predecessor "
                       "paths at this join";
        }
        joinBad.erase(jb);
    }
}

} // anonymous namespace

namespace detail {

void
checkQueueDiscipline(rtl::Function &fn,
                     const rtl::MachineTraits &traits,
                     const VerifyOptions &opts, VerifyReport &out)
{
    cfg::DominatorTree dt(fn);
    cfg::LoopInfo li(fn, dt);
    dataflow::CfgIndex cfg(fn);

    // ---- per-instruction: no double pop of one queue ----
    // Two dequeues of the same queue inside one instruction have an
    // unspecified relative order: FIFO reads must never be reordered
    // across a pop on the same unit.
    for (const auto &bp : fn.blocks()) {
        for (const Inst &inst : bp->insts) {
            InstQueueOps ops = queueOps(inst);
            std::map<int, int> perQueue;
            for (const QueueUse &p : ops.pops)
                ++perQueue[p.q];
            for (const auto &kv : perQueue) {
                if (kv.second < 2 || kv.first >= kDataQueues)
                    continue;
                Violation &v =
                    addViolation(out, "ambiguous-pop-order", fn);
                v.block = bp->label();
                v.instId = inst.id;
                v.pos = inst.pos;
                v.invariant = queueName(kv.first);
                v.detail = strFormat(
                    "%d dequeues of %s in one instruction; their "
                    "relative order is unspecified",
                    kv.second, queueName(kv.first).c_str());
            }
        }
    }

    // ---- streamed regions ----
    std::vector<StreamRegion> regions = collectStreamRegions(li);
    std::set<const Inst *> matchedSteering;
    for (StreamRegion &r : regions) {
        cfg::Loop &loop = *r.loop;

        // Two streams on one queue cannot coexist.
        for (size_t i : r.claimConflicts) {
            Violation &v =
                addViolation(out, "stream-fifo-conflict", fn);
            v.block = r.streams[i].block->label();
            inLoop(v, r);
            v.invariant = queueName(r.streams[i].q());
            v.detail = "two streams feeding one loop claim the "
                       "same queue";
        }

        // All counts null (data-dependent, "infinite") or all
        // non-null (counted); a mix can never balance.
        size_t counted = 0;
        for (const StreamSite &s : r.streams)
            if (s.inst->count)
                ++counted;
        if (counted != 0 && counted != r.streams.size()) {
            Violation &v =
                addViolation(out, "stream-count-mismatch", fn);
            inLoop(v, r);
            v.block = r.streams[0].block->label();
            v.invariant = queueName(r.streams[0].q());
            v.detail = "counted and uncounted streams feed the same "
                       "loop";
        }

        // Counted loops iterate under a JumpStream latch; uncounted
        // ones exit on a data-dependent CondJump.
        if (!r.streams.empty() && r.finite != r.jumpStreamLatch) {
            Violation &v =
                addViolation(out, "stream-loop-shape", fn);
            inLoop(v, r);
            v.block = r.header;
            v.invariant = queueName(r.streams[0].q());
            v.detail = r.finite
                ? "counted streams but the latch is not steered by "
                  "a jump-stream"
                : "jump-stream latch over uncounted streams";
        }

        // Counted streams feeding one loop must agree on the count —
        // the loop pops one element per queue per iteration, so
        // differing counts starve or wedge a queue. Resolved through
        // preheader copies so syntactic differences don't matter.
        if (r.finite) {
            const StreamSite &ref = r.streams[0];
            for (size_t i = 1; i < r.streams.size(); ++i) {
                const StreamSite &s = r.streams[i];
                std::string why;
                if (countsAgree(ref, s.block, s.index, s.inst->count,
                                traits, &why))
                    continue;
                Violation &v =
                    addViolation(out, "stream-count-mismatch", fn);
                v.block = s.block->label();
                inLoop(v, r);
                v.invariant = queueName(s.q());
                v.pos = s.inst->pos;
                v.detail = strFormat(
                    "stream on %s disagrees with the stream on %s: "
                    "%s",
                    queueName(s.q()).c_str(),
                    queueName(ref.q()).c_str(), why.c_str());
            }
        }

        // Each JumpStream latch must be steered by a claimed stream.
        for (rtl::Block *l : loop.latches) {
            const Inst *t = l->terminator();
            if (!t || t->kind != InstKind::JumpStream)
                continue;
            int side = t->side == UnitSide::Int ? 0 : 1;
            bool found = r.slotOf.count(dataQ(false, side, t->fifo)) ||
                         r.slotOf.count(dataQ(true, side, t->fifo));
            if (found) {
                matchedSteering.insert(t);
            } else {
                Violation &v =
                    addViolation(out, "jumpstream-no-stream", fn);
                v.block = l->label();
                inLoop(v, r);
                v.instId = t->id;
                v.pos = t->pos;
                v.invariant =
                    strFormat("%c%d", side ? 'f' : 'r', t->fifo);
                v.detail = "jump-stream latch steered by a FIFO no "
                           "stream feeds";
            }
        }

        // A counted streamed loop has exactly one way out: the
        // steering latch falling through when the stream is done.
        // Any other exit abandons unconsumed elements.
        if (r.finite) {
            for (rtl::Block *b : loop.exiting) {
                const Inst *t = b->terminator();
                if (t && t->kind == InstKind::JumpStream)
                    continue;
                for (const StreamSite &s : r.streams) {
                    Violation &v =
                        addViolation(out, "fifo-leak", fn);
                    v.block = b->label();
                    inLoop(v, r);
                    v.invariant = queueName(s.q());
                    v.detail = strFormat(
                        "counted stream loop can exit early via %s, "
                        "abandoning queued elements",
                        b->label().c_str());
                }
            }
        }

        // An uncounted stream runs until cancelled: every exit
        // target must stop every claimed stream.
        if (!r.finite && !r.streams.empty()) {
            for (rtl::Block *b : loop.exiting) {
                for (rtl::Block *succ : b->succs) {
                    if (loop.contains(succ))
                        continue;
                    for (const StreamSite &s : r.streams) {
                        bool input = !s.output();
                        bool stopped = false;
                        for (const Inst &inst : succ->insts)
                            if (inst.kind == InstKind::StreamStop &&
                                    inst.side == s.inst->side &&
                                    inst.fifo == s.inst->fifo &&
                                    inst.when == input)
                                stopped = true;
                        if (stopped)
                            continue;
                        Violation &v = addViolation(
                            out, "stream-stop-missing", fn);
                        v.block = succ->label();
                        inLoop(v, r);
                        v.invariant = queueName(s.q());
                        v.detail = strFormat(
                            "loop exit %s does not cancel the "
                            "uncounted stream on %s",
                            succ->label().c_str(),
                            queueName(s.q()).c_str());
                    }
                }
            }
        }

        checkRegionBalance(r, fn, cfg, out);
    }

    // A JumpStream that is not the steering latch of any streamed
    // loop spins on a stream nothing primes.
    for (const auto &bp : fn.blocks()) {
        for (const Inst &inst : bp->insts) {
            if (inst.kind != InstKind::JumpStream ||
                    matchedSteering.count(&inst))
                continue;
            Violation &v =
                addViolation(out, "jumpstream-no-stream", fn);
            v.block = bp->label();
            v.instId = inst.id;
            v.pos = inst.pos;
            v.invariant =
                strFormat("%c%d",
                          inst.side == UnitSide::Flt ? 'f' : 'r',
                          inst.fifo);
            v.detail =
                "jump-stream outside any streamed loop latch";
        }
    }

    // ---- vectorized regions ----
    // A VecOp consumes whole streams on the VEU: every FIFO operand
    // must be fed by a stream in this or a predecessor block, and the
    // element counts must agree.
    const auto &blocks = fn.blocks();
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        rtl::Block *b = blocks[bi].get();
        for (size_t i = 0; i < b->insts.size(); ++i) {
            const Inst &inst = b->insts[i];
            if (inst.kind != InstKind::VecOp)
                continue;
            // Gather candidate stream sites: earlier in this block,
            // in CFG predecessors, and in the layout predecessor.
            std::vector<StreamSite> sites;
            auto scan = [&](const rtl::Block *sb, size_t limit) {
                for (size_t k = 0; k < limit; ++k) {
                    const Inst &cand = sb->insts[k];
                    if (cand.kind == InstKind::StreamIn ||
                            cand.kind == InstKind::StreamOut)
                        sites.push_back({&cand, sb, k});
                }
            };
            scan(b, i);
            for (const rtl::Block *p : b->preds)
                scan(p, p->insts.size());
            if (bi > 0)
                scan(blocks[bi - 1].get(),
                     blocks[bi - 1]->insts.size());

            auto need = [&](const ExprPtr &opnd, bool output) {
                if (!opnd || !opnd->isReg() || !isDataFifoReg(*opnd))
                    return;
                int q = dataQ(output, fifoSide(*opnd),
                              opnd->regIndex());
                const StreamSite *feed = nullptr;
                for (const StreamSite &s : sites)
                    if (s.q() == q)
                        feed = &s;
                if (!feed) {
                    Violation &v =
                        addViolation(out, "vec-no-stream", fn);
                    v.block = b->label();
                    v.instId = inst.id;
                    v.pos = inst.pos;
                    v.invariant = queueName(q);
                    v.detail = strFormat(
                        "vector operation %s %s but no stream feeds "
                        "it",
                        output ? "writes" : "reads",
                        queueName(q).c_str());
                    return;
                }
                std::string why;
                if (!inst.count || countsAgree(*feed, b, i, inst.count,
                                               traits, &why)) {
                    return;
                }
                Violation &v =
                    addViolation(out, "stream-count-mismatch", fn);
                v.block = b->label();
                v.instId = inst.id;
                v.pos = inst.pos;
                v.invariant = queueName(q);
                v.detail = strFormat(
                    "vector element count disagrees with the stream "
                    "on %s: %s",
                    queueName(q).c_str(), why.c_str());
            };
            need(inst.src, false);
            need(inst.vecSrc2, false);
            need(inst.dst, true);
        }
    }

    // ---- the global depth walk ----
    // Claimed queues inside their streamed loop are the streams'
    // business (checked per region above); exempt them here.
    std::set<std::pair<const rtl::Block *, int>> exempt;
    for (const StreamRegion &r : regions)
        for (rtl::Block *b : r.loop->blocks)
            for (const auto &kv : r.slotOf)
                exempt.insert({b, kv.first});

    WalkCtx ctx;
    ctx.trackData = opts.stage == Stage::PostLower;
    ctx.exempt = &exempt;
    depthWalk(fn, cfg, ctx, out);
}

} // namespace detail

} // namespace wmstream::verify
