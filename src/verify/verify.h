/**
 * @file
 * wmverify: the RTL/WM invariant verifier (DESIGN.md §12).
 *
 * Run in the spirit of LLVM's -verify-each: after expansion and after
 * every optimization pass the driver hands each function to
 * verifyFunction(), which checks three invariant families:
 *
 *  - structural IR validity: operand kinds and arity per opcode,
 *    branch targets resolve, terminators end blocks, the layout does
 *    not fall off the end of the function, no Mem nodes outside
 *    Load/Store, no virtual registers after register assignment, and
 *    def-before-use for virtual registers (a virtual register live
 *    into the entry block has a use no definition reaches);
 *
 *  - FIFO discipline (WM only): a forward dataflow analysis over
 *    abstract queue depths proving that condition-code production
 *    matches IFU branch consumption on every path, that every
 *    iteration of a streamed loop pops exactly one element from each
 *    claimed input FIFO and pushes exactly one to each claimed output
 *    FIFO (so the loop consumes exactly the `count` elements its
 *    preheader SinX primes), that the counts of all streams feeding
 *    one loop agree, that no instruction pops the same queue twice
 *    (FIFO reads may never be reordered across a pop on the same
 *    unit), and — after lowering — that scalar FIFO traffic balances:
 *    no underflow, no elements leaked at return, none held across a
 *    call;
 *
 *  - recurrence legality (verifyRecurrenceChains, run right after the
 *    recurrence pass, before cleanup legitimately dissolves chains):
 *    priming loads dominate the loop and the register shift chain is
 *    cycle-free and matches the recurrence distance.
 *
 * Violations carry a stable kebab-case reason code plus an invariant
 * identity (queue, register, or chain) so wmfuzz can deduplicate them
 * program-independently, and the driver mirrors them into the remarks
 * stream with pass provenance. A violation always means a compiler
 * bug, never a user error: wmc exits 70 on any verifier failure.
 */

#ifndef WMSTREAM_VERIFY_VERIFY_H
#define WMSTREAM_VERIFY_VERIFY_H

#include <string>
#include <vector>

#include "recurrence/recurrence.h"
#include "rtl/machine.h"
#include "rtl/program.h"
#include "support/diag.h"

namespace wmstream::verify {

/** Where in the pipeline the check runs; selects which invariants
 *  apply (virtual registers legal? FIFO references legal? is scalar
 *  FIFO traffic fully lowered?). */
enum class Stage : uint8_t {
    PostExpand,   ///< after code expansion: virtual regs, no FIFO refs
    PostOpt,      ///< after a mid-pipeline optimization pass
    PostRegalloc, ///< after register assignment: no virtual regs
    PostLower,    ///< after WM FIFO-form lowering: final code
};

const char *stageName(Stage s);

/** One invariant violation (a compiler bug, never a user error). */
struct Violation
{
    std::string reason;     ///< stable kebab-case reason code
    std::string function;
    std::string block;      ///< offending block label ("" = function)
    std::string loopHeader; ///< loop header label when loop-scoped
    /**
     * Program-independent identity of the violated invariant: the
     * queue ("in:f0", "cc1"), register ("vr7"), or chain ("vf3..vf5")
     * it concerns. signature() is the wmfuzz dedup key.
     */
    std::string invariant;
    std::string detail;     ///< human-readable explanation
    int instId = -1;        ///< Inst::id when instruction-scoped
    SourcePos pos;          ///< source provenance when stamped

    /** Dedup key: reason code + invariant identity. */
    std::string signature() const;
    /** One diagnostic line (no trailing newline). */
    std::string str() const;
};

/** All violations found at one pipeline checkpoint. */
struct VerifyReport
{
    std::string pass;  ///< provenance: the pass that ran just before
    Stage stage = Stage::PostOpt;
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
    /** Multi-line rendering (header + one line per violation). */
    std::string str() const;
};

struct VerifyOptions
{
    Stage stage = Stage::PostOpt;
    std::string pass; ///< provenance recorded into the report
};

/**
 * The sorted, deduplicated, comma-joined Violation::signature() set
 * across @p reports ("" when all are clean): a program-independent
 * dedup key, shared by the wmfuzz verify oracle and the serve batch
 * runner's typed failure records, so one compiler bug folds into one
 * finding across any number of translation units.
 */
std::string joinedSignature(const std::vector<VerifyReport> &reports);

/**
 * Verify one function. Recomputes the CFG (checking branch targets
 * first, so malformed IR yields a diagnostic rather than a panic).
 * FIFO-discipline checks run only when @p traits is the WM machine.
 * @p prog, when given, lets Call targets be resolved.
 */
VerifyReport verifyFunction(rtl::Function &fn,
                            const rtl::MachineTraits &traits,
                            const VerifyOptions &opts,
                            const rtl::Program *prog = nullptr);

/** Verify every function of @p prog into one merged report. */
VerifyReport verifyProgram(rtl::Program &prog,
                           const rtl::MachineTraits &traits,
                           const VerifyOptions &opts);

/** Per-queue result of the whole-program FIFO analysis. */
struct QueueRequirement
{
    int queue = 0;         ///< fifomodel queue id
    std::string name;      ///< "in:f0", "out:r1", "cc0", ...
    int minDepth = 0;      ///< inferred minimal depth for this queue
    bool streamed = false; ///< SCU-claimed somewhere (HW-throttled)
    bool bounded = true;   ///< false when occupancy hit the cap
};

/**
 * Whole-program static FIFO deadlock/depth verdict (fifodepth.cc).
 *
 * Produced by propagating per-queue occupancy intervals across the
 * full CFG — loop boundaries included — on top of a clean
 * queue-discipline report. `verdict` is "deadlock-free" only when
 * the structure and discipline checks pass, no pop targets a queue
 * that is provably never fed, and every inferred minimal depth fits
 * the configured depth; otherwise "not-proven" with the blocking
 * findings (reason codes static-starved-pop, fifo-depth-exceeded,
 * static-unproven) in `findings`.
 */
struct FifoRequirements
{
    bool analyzed = false;
    bool deadlockFree = false;
    std::string verdict = "not-analyzed";
    int configuredDepth = 0; ///< data FIFO depth checked against
    int minDepth = 0;        ///< max over data queues of minDepth
    std::vector<QueueRequirement> queues; ///< queues with traffic
    VerifyReport findings;   ///< pass "fifo-depth", stage PostLower

    bool depthSatisfied() const
    {
        return minDepth <= configuredDepth;
    }
};

/**
 * Run the whole-program FIFO analysis over lowered WM code. Performs
 * its own structure + queue-discipline checks (so it is safe on
 * arbitrary programs, e.g. straight from the fuzzer with verification
 * off) and then the occupancy-interval walk. @p configuredDepth is
 * the data-FIFO depth the hardware model will run with.
 */
FifoRequirements
analyzeFifoRequirements(rtl::Program &prog,
                        const rtl::MachineTraits &traits,
                        int configuredDepth);

/**
 * Check the chains the recurrence pass reports having built: shifts
 * present at the loop header in oldest-first (cycle-free) order, one
 * shift per distance step, and the preheader priming every chain
 * register below the degree from memory, dominating the header. Must
 * run before recurrence-cleanup, which legitimately dissolves chains.
 */
VerifyReport
verifyRecurrenceChains(rtl::Function &fn,
                       const rtl::MachineTraits &traits,
                       const std::vector<recurrence::RecurrenceChain> &chains,
                       const std::string &pass);

namespace detail {

/** Append a violation; caller fills the remaining fields. */
Violation &addViolation(VerifyReport &out, std::string reason,
                        const rtl::Function &fn);

/**
 * Structural checks (verify.cc). Returns true when every branch
 * target resolved — the CFG-dependent checks (liveness, queues) are
 * only sound, and recomputeCfg() only safe, in that case.
 */
bool checkStructure(rtl::Function &fn, const rtl::MachineTraits &traits,
                    const VerifyOptions &opts, const rtl::Program *prog,
                    VerifyReport &out);

/** FIFO/CC discipline checks (fifolint.cc). CFG must be current. */
void checkQueueDiscipline(rtl::Function &fn,
                          const rtl::MachineTraits &traits,
                          const VerifyOptions &opts, VerifyReport &out);

} // namespace detail

} // namespace wmstream::verify

#endif // WMSTREAM_VERIFY_VERIFY_H
