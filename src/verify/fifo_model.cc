#include "verify/fifo_model.h"

#include <algorithm>
#include <set>
#include <utility>

#include "support/str.h"

namespace wmstream::verify::fifomodel {

using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;
using rtl::UnitSide;

std::string
queueName(int q)
{
    if (q >= kDataQueues)
        return strFormat("cc%d", q - kDataQueues);
    bool output = q >= 4;
    int side = (q / 2) % 2;
    int fifo = q % 2;
    return strFormat("%s:%c%d", output ? "out" : "in",
                     side ? 'f' : 'r', fifo);
}

bool
isDataFifoReg(const Expr &e)
{
    return e.kind() == Expr::Kind::Reg &&
           (e.regFile() == RegFile::Int ||
            e.regFile() == RegFile::Flt) &&
           (e.regIndex() == 0 || e.regIndex() == 1);
}

const char *
fieldName(Field f)
{
    switch (f) {
      case Field::Src: return "source";
      case Field::Addr: return "address";
      case Field::Extra: return "implicit-use";
    }
    return "?";
}

namespace {

void
collectInputPops(const ExprPtr &e, Field field, InstQueueOps &ops)
{
    if (!e)
        return;
    rtl::forEachNode(e, [&](const Expr &n) {
        if (isDataFifoReg(n))
            ops.pops.push_back(
                {dataQ(false, fifoSide(n), n.regIndex()), field});
    });
}

} // anonymous namespace

InstQueueOps
queueOps(const Inst &inst)
{
    InstQueueOps ops;
    switch (inst.kind) {
      case InstKind::StreamIn:
      case InstKind::StreamOut:
      case InstKind::StreamStop:
      case InstKind::JumpStream:
      case InstKind::VecOp:
        return ops; // SCU/VEU side: checked per streamed region
      case InstKind::Load:
        collectInputPops(inst.addr, Field::Addr, ops);
        if (inst.dst && inst.dst->isReg() && isDataFifoReg(*inst.dst))
            ops.pushes.push_back(
                dataQ(false, fifoSide(*inst.dst),
                      inst.dst->regIndex()));
        break;
      case InstKind::Assign:
        collectInputPops(inst.src, Field::Src, ops);
        if (inst.dst && inst.dst->isReg()) {
            if (isDataFifoReg(*inst.dst))
                ops.pushes.push_back(
                    dataQ(true, fifoSide(*inst.dst),
                          inst.dst->regIndex()));
            else if (inst.dst->regFile() == RegFile::CC)
                ops.pushes.push_back(
                    ccQ(inst.dst->regIndex() == 1 ? 1 : 0));
        }
        break;
      case InstKind::Store:
        collectInputPops(inst.addr, Field::Addr, ops);
        if (inst.src && inst.src->isReg() && isDataFifoReg(*inst.src))
            ops.pops.push_back(
                {dataQ(true, fifoSide(*inst.src),
                       inst.src->regIndex()),
                 Field::Src});
        else
            collectInputPops(inst.src, Field::Src, ops);
        break;
      case InstKind::CondJump:
        ops.pops.push_back(
            {ccQ(inst.side == UnitSide::Int ? 0 : 1), Field::Src});
        break;
      default:
        break;
    }
    for (const ExprPtr &e : inst.extraUses)
        collectInputPops(e, Field::Extra, ops);
    return ops;
}

ExprPtr
resolveAt(const rtl::Block *b, size_t idx, ExprPtr e,
          const rtl::MachineTraits &traits)
{
    if (!e)
        return e;
    std::set<std::pair<int, int>> frozen;
    for (size_t i = idx; i-- > 0;) {
        const Inst &inst = b->insts[i];
        if (inst.kind == InstKind::Call)
            break; // clobbers caller-saved state: stop resolving
        ExprPtr d = rtl::instDef(inst);
        if (!d || !d->isReg())
            continue;
        RegFile f = d->regFile();
        int ri = d->regIndex();
        if ((f == RegFile::Int || f == RegFile::Flt) &&
                ri == traits.zeroReg)
            continue; // writes to the zero register are discarded
        if (!rtl::usesReg(e, f, ri))
            continue;
        auto key = std::make_pair(static_cast<int>(f), ri);
        if (frozen.count(key))
            continue;
        // A FIFO-read register in the source makes the assignment a
        // dequeue: two resolutions substituting through *different*
        // pops would wrongly look equal, so freeze the destination
        // instead (keeping its name visible to countsAgree's
        // redefinition scan).
        bool popsFifo = false;
        rtl::forEachNode(inst.src, [&](const Expr &n) {
            if (isDataFifoReg(n))
                popsFifo = true;
        });
        if (inst.kind == InstKind::Assign && inst.src &&
                !rtl::containsMem(inst.src) && !popsFifo)
            e = rtl::substReg(e, f, ri, inst.src);
        else
            frozen.insert(key); // load, pop, or non-copyable def
    }
    return e;
}

std::vector<StreamRegion>
collectStreamRegions(cfg::LoopInfo &li)
{
    std::vector<StreamRegion> regions;
    for (cfg::Loop &loop : li.loops()) {
        StreamRegion r;
        r.loop = &loop;
        r.header = loop.header->label();
        for (rtl::Block *p : loop.header->preds) {
            if (loop.contains(p))
                continue;
            for (size_t i = 0; i < p->insts.size(); ++i) {
                const Inst &inst = p->insts[i];
                if (inst.kind == InstKind::StreamIn ||
                        inst.kind == InstKind::StreamOut)
                    r.streams.push_back({&inst, p, i});
            }
        }
        for (rtl::Block *l : loop.latches)
            if (const Inst *t = l->terminator())
                if (t->kind == InstKind::JumpStream)
                    r.jumpStreamLatch = true;
        if (r.streams.empty() && !r.jumpStreamLatch)
            continue;

        // Claim queues; two streams on one queue cannot coexist.
        for (size_t i = 0; i < r.streams.size(); ++i)
            if (!r.slotOf.emplace(r.streams[i].q(), i).second)
                r.claimConflicts.push_back(i);

        size_t counted = 0;
        for (const StreamSite &s : r.streams)
            if (s.inst->count)
                ++counted;
        r.finite = !r.streams.empty() && counted == r.streams.size();
        regions.push_back(std::move(r));
    }
    return regions;
}

bool
countsAgree(const StreamSite &a, const rtl::Block *bBlock,
            size_t bIndex, const ExprPtr &bCount,
            const rtl::MachineTraits &traits, std::string *why)
{
    if (!a.inst->count || !bCount)
        return rtl::exprEqual(a.inst->count, bCount);
    // No syntactic fast path: two sites naming the same register can
    // still carry different values when a redefinition sits between
    // them (the --inject-deadlock-bug miscompile is exactly that
    // shape), so agreement is only ever decided on resolved counts.
    ExprPtr ra = resolveAt(a.block, a.index, a.inst->count, traits);
    ExprPtr rb = resolveAt(bBlock, bIndex, bCount, traits);
    if (!rtl::exprEqual(ra, rb)) {
        *why = strFormat("counts resolve to %s vs %s",
                         ra ? ra->str().c_str() : "<null>",
                         rb ? rb->str().c_str() : "<null>");
        return false;
    }
    // Equal resolved expressions prove equal values only when every
    // register still mentioned means the same value at both sites.
    // Defs that resolveAt substitutes through are already folded into
    // both resolved counts (a surviving name then denotes block-entry
    // state on both sides), but a def it *freezes* — a load, a FIFO
    // pop, a memory-dependent source — keeps the register's name
    // while changing its value, so such a def between same-block
    // sites (or a caller-state-clobbering call) breaks the proof.
    // Sites in different preheader blocks keep the best-effort answer.
    if (a.block == bBlock && a.index != bIndex) {
        size_t lo = std::min(a.index, bIndex);
        size_t hi = std::max(a.index, bIndex);
        for (size_t i = lo + 1; i < hi; ++i) {
            const Inst &inst = a.block->insts[i];
            if (inst.kind == InstKind::Call) {
                *why = "a call between the two stream sites clobbers "
                       "the count";
                return false;
            }
            ExprPtr d = rtl::instDef(inst);
            if (!d || !d->isReg())
                continue;
            RegFile f = d->regFile();
            int ri = d->regIndex();
            if ((f == RegFile::Int || f == RegFile::Flt) &&
                    ri == traits.zeroReg)
                continue;
            bool popsFifo = false;
            rtl::forEachNode(inst.src, [&](const Expr &n) {
                if (isDataFifoReg(n))
                    popsFifo = true;
            });
            if (inst.kind == InstKind::Assign && inst.src &&
                    !rtl::containsMem(inst.src) && !popsFifo)
                continue; // substituted through: folded into ra and rb
            if (rtl::usesReg(rb, f, ri)) {
                *why = strFormat(
                    "the count (%s) is redefined between the two "
                    "stream sites",
                    rb->str().c_str());
                return false;
            }
        }
    }
    return true;
}

} // namespace wmstream::verify::fifomodel
