/**
 * @file
 * Whole-program static FIFO deadlock & depth-requirement analysis.
 *
 * Where fifolint proves per-pass queue discipline (exact-depth joins,
 * per-iteration stream balance), this analysis answers two
 * whole-program questions about the final lowered code:
 *
 *  (a) deadlock-freedom: is there any path on which a unit blocks on
 *      a pop that can never be fed, or on a push into a queue the
 *      configured depth provably cannot absorb?
 *  (b) depth requirement: the minimal FIFO depth each queue needs so
 *      that no push ever blocks — the high-water mark of an
 *      occupancy-interval dataflow over the full CFG, loop
 *      boundaries included.
 *
 * The lattice is per-queue occupancy intervals [lo, hi], saturating
 * at a cap (so the lattice is finite and the general worklist solver
 * from src/dataflow terminates); joins take [min lo, max hi].
 * Stream-claimed queues are hardware-throttled (the SCU stops
 * filling a full FIFO and resumes as the loop drains it), so they
 * require depth 1 and are otherwise exempt from the scalar walk —
 * exactly the exemption fifolint's depth walk uses.
 *
 * The verdict is "deadlock-free" only when the structural and
 * queue-discipline checks pass, no pop targets a provably-never-fed
 * queue, and every inferred minimum fits the configured depth. A
 * clean verdict is the static half of the wmfuzz agreement oracle:
 * static deadlock-free must imply the simulator watchdog stays
 * silent.
 */

#include "verify/verify.h"

#include <algorithm>
#include <array>
#include <set>
#include <utility>

#include "cfg/dominators.h"
#include "cfg/loops.h"
#include "dataflow/cfg_index.h"
#include "dataflow/solver.h"
#include "support/str.h"
#include "verify/fifo_model.h"

namespace wmstream::verify {

namespace {

using rtl::Inst;
using rtl::InstKind;

using namespace fifomodel;

/** Occupancy interval of one queue. */
struct Interval
{
    int16_t lo = 0;
    int16_t hi = 0;
    bool operator==(const Interval &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

using OccState = std::array<Interval, kQueues>;

struct FnOccupancy
{
    std::array<int, kQueues> highWater{};  ///< max hi after any push
    std::array<bool, kQueues> touched{};   ///< any traffic seen
    std::array<bool, kQueues> capped{};    ///< hi hit the cap
    std::array<bool, kQueues> starved{};   ///< pop with hi == 0
};

/**
 * Run the occupancy-interval walk over one function. Assumes the CFG
 * is current (structure check passed). Emits static-starved-pop
 * findings into @p out; capacity findings are the caller's job (it
 * has the per-program maxima).
 */
FnOccupancy
occupancyWalk(rtl::Function &fn, const dataflow::CfgIndex &cfg,
              const std::set<std::pair<const rtl::Block *, int>> &exempt,
              int cap, VerifyReport &out)
{
    FnOccupancy occ;
    if (!fn.entry())
        return occ;

    auto clamp = [&](int v) {
        return static_cast<int16_t>(std::min(v, cap));
    };
    // note(highWater): called on the post-push hi, i.e. the number
    // of elements the queue must be able to hold at that point.
    auto transferInto = [&](size_t bi, OccState s,
                            FnOccupancy *record) {
        const rtl::Block *b = cfg.block(bi);
        for (const Inst &inst : b->insts) {
            InstQueueOps ops = queueOps(inst);
            for (const QueueUse &p : ops.pops) {
                if (p.q < kDataQueues && exempt.count({b, p.q}))
                    continue;
                if (record) {
                    occ.touched[p.q] = true;
                    if (s[p.q].hi == 0)
                        occ.starved[p.q] = true;
                }
                s[p.q].lo = std::max<int>(s[p.q].lo - 1, 0);
                s[p.q].hi = std::max<int>(s[p.q].hi - 1, 0);
            }
            for (int q : ops.pushes) {
                if (q < kDataQueues && exempt.count({b, q}))
                    continue;
                s[q].lo = clamp(s[q].lo + 1);
                s[q].hi = clamp(s[q].hi + 1);
                if (record) {
                    occ.touched[q] = true;
                    occ.highWater[q] =
                        std::max<int>(occ.highWater[q], s[q].hi);
                    if (s[q].hi >= cap)
                        occ.capped[q] = true;
                }
            }
            // Discipline requires all queues empty across calls and
            // at returns; force the interval to match so one
            // violation does not cascade into spurious depth noise.
            if (inst.kind == InstKind::Call ||
                    inst.kind == InstKind::Return)
                s.fill(Interval{});
        }
        return s;
    };

    OccState zero{};
    std::vector<std::pair<size_t, OccState>> seeds{
        {cfg.indexOf(fn.entry()), zero}};
    auto solved = dataflow::solveGeneralSeeded(
        cfg, dataflow::Direction::Forward, seeds,
        [&](size_t bi, const OccState &s) {
            return transferInto(bi, s, nullptr);
        },
        [&](OccState &accum, const OccState &incoming, size_t) {
            bool changed = false;
            for (int q = 0; q < kQueues; ++q) {
                int16_t lo =
                    std::min(accum[q].lo, incoming[q].lo);
                int16_t hi =
                    std::max(accum[q].hi, incoming[q].hi);
                if (lo != accum[q].lo || hi != accum[q].hi) {
                    accum[q] = {lo, hi};
                    changed = true;
                }
            }
            return changed;
        },
        [](size_t, size_t) { return true; });

    // Recording pass over the stable states, RPO for determinism.
    for (size_t bi : cfg.rpo()) {
        if (!solved.reached[bi])
            continue;
        (void)transferInto(bi, solved.in[bi], &occ);
    }

    // A pop whose interval is provably [0,0] can never be fed:
    // the unit blocks forever. (A merely-possibly-empty pop is
    // path-dependent depth, which the discipline checks flag.)
    for (int q = 0; q < kQueues; ++q) {
        if (!occ.starved[q])
            continue;
        Violation &v =
            detail::addViolation(out, "static-starved-pop", fn);
        v.invariant = queueName(q);
        v.detail = strFormat(
            "pop of %s whose occupancy is provably zero on every "
            "path: nothing ever feeds it, the unit blocks forever",
            queueName(q).c_str());
    }
    return occ;
}

} // anonymous namespace

FifoRequirements
analyzeFifoRequirements(rtl::Program &prog,
                        const rtl::MachineTraits &traits,
                        int configuredDepth)
{
    FifoRequirements result;
    result.configuredDepth = configuredDepth;
    result.findings.pass = "fifo-depth";
    result.findings.stage = Stage::PostLower;
    if (!traits.isWM())
        return result; // scalar targets have no visible queues
    result.analyzed = true;

    VerifyOptions opts;
    opts.stage = Stage::PostLower;
    opts.pass = "fifo-depth";

    // Saturation cap: far above any sensible configuration so the
    // inferred minimum is exact whenever it matters, yet the lattice
    // stays small.
    int cap = std::max(configuredDepth * 2, 64);

    std::array<int, kQueues> minDepth{};
    std::array<bool, kQueues> touched{};
    std::array<bool, kQueues> streamed{};
    std::array<bool, kQueues> capped{};
    bool disciplineClean = true;

    for (auto &fnp : prog.functions()) {
        rtl::Function &fn = *fnp;
        // Self-contained: the verdict must be trustworthy even when
        // the caller skipped the per-pass verifier (fuzzer configs
        // with planted bugs), so structure + discipline rerun here.
        VerifyReport discipline;
        discipline.pass = opts.pass;
        discipline.stage = opts.stage;
        bool cfgOk = detail::checkStructure(fn, traits, opts, &prog,
                                            discipline);
        if (cfgOk)
            detail::checkQueueDiscipline(fn, traits, opts,
                                         discipline);
        if (!discipline.ok()) {
            disciplineClean = false;
            Violation &v = detail::addViolation(
                result.findings, "static-unproven", fn);
            v.invariant = joinedSignature({discipline});
            v.detail = strFormat(
                "deadlock-freedom not provable: %zu queue-discipline "
                "finding(s) [%s]",
                discipline.violations.size(),
                joinedSignature({discipline}).c_str());
        }
        if (!cfgOk)
            continue; // CFG unusable: skip the interval walk

        cfg::DominatorTree dt(fn);
        cfg::LoopInfo li(fn, dt);
        dataflow::CfgIndex cfg(fn);
        std::vector<StreamRegion> regions = collectStreamRegions(li);
        std::set<std::pair<const rtl::Block *, int>> exempt;
        for (const StreamRegion &r : regions)
            for (rtl::Block *b : r.loop->blocks)
                for (const auto &kv : r.slotOf) {
                    exempt.insert({b, kv.first});
                    // The SCU throttles on a full FIFO: any depth
                    // >= 1 works, deeper only buffers further ahead.
                    streamed[kv.first] = true;
                    touched[kv.first] = true;
                    minDepth[kv.first] =
                        std::max(minDepth[kv.first], 1);
                }

        FnOccupancy occ =
            occupancyWalk(fn, cfg, exempt, cap, result.findings);
        for (int q = 0; q < kQueues; ++q) {
            if (!occ.touched[q])
                continue;
            touched[q] = true;
            minDepth[q] = std::max(minDepth[q], occ.highWater[q]);
            if (occ.capped[q])
                capped[q] = true;
        }
    }

    // Per-queue rollup, data queues first then cc, stable order.
    for (int q = 0; q < kQueues; ++q) {
        if (!touched[q])
            continue;
        QueueRequirement req;
        req.queue = q;
        req.name = queueName(q);
        req.minDepth = minDepth[q];
        req.streamed = streamed[q];
        req.bounded = !capped[q];
        result.queues.push_back(std::move(req));
        if (q < kDataQueues)
            result.minDepth = std::max(result.minDepth, minDepth[q]);
    }

    // Configured depth must absorb the high-water mark of every data
    // queue, or a push can block on a provably full FIFO.
    for (const QueueRequirement &req : result.queues) {
        if (req.queue >= kDataQueues)
            continue;
        if (req.minDepth <= configuredDepth && req.bounded)
            continue;
        Violation v;
        v.reason = "fifo-depth-exceeded";
        v.function = "";
        v.invariant = req.name;
        v.detail = req.bounded
            ? strFormat("queue %s needs depth %d but the configured "
                        "data FIFO depth is %d: a push can block on "
                        "a provably full queue",
                        req.name.c_str(), req.minDepth,
                        configuredDepth)
            : strFormat("occupancy of %s is unbounded (grew past "
                        "the analysis cap of %d)",
                        req.name.c_str(), cap);
        result.findings.violations.push_back(std::move(v));
    }

    bool starvedOrDeep = !result.findings.ok();
    result.deadlockFree = disciplineClean && !starvedOrDeep;
    result.verdict =
        result.deadlockFree ? "deadlock-free" : "not-proven";
    return result;
}

} // namespace wmstream::verify
