/**
 * @file
 * Recurrence-chain legality checks.
 *
 * The recurrence pass reports every chain it builds (RecurrenceChain
 * in recurrence.h). Right after the pass — before copy propagation
 * legitimately dissolves chains — the verifier re-derives the shape
 * the rewrite must have produced and checks it:
 *
 *  - the chain registers are pairwise distinct and the shift
 *    `chain[k] := chain[k-1]` exists in the loop header for every
 *    k = degree..1 (one shift per distance step, matching the
 *    (cee, dee) iteration distance);
 *
 *  - the shifts run oldest-first: chain[k] is written before
 *    chain[k-1], so every old value is read before it is clobbered —
 *    the property that makes the chain cycle-free. A reversed pair
 *    would feed this iteration's value to a slot meant to hold an
 *    older one;
 *
 *  - the preheader primes chain[0..degree-1] (the first iteration
 *    reads values written before the loop was entered) and dominates
 *    the loop header, so the primes execute on every path into the
 *    loop.
 */

#include "verify/verify.h"

#include "cfg/dominators.h"
#include "rtl/inst.h"
#include "support/str.h"

namespace wmstream::verify {

namespace {

using recurrence::RecurrenceChain;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

std::string
chainName(const RecurrenceChain &c)
{
    const char *p = c.flt ? "vf" : "vr";
    if (c.chainRegs.empty())
        return "<empty-chain>";
    return strFormat("%s%d..%s%d", p, c.chainRegs.front(), p,
                     c.chainRegs.back());
}

} // anonymous namespace

VerifyReport
verifyRecurrenceChains(rtl::Function &fn,
                       const rtl::MachineTraits &traits,
                       const std::vector<RecurrenceChain> &chains,
                       const std::string &pass)
{
    (void)traits;
    VerifyReport out;
    out.pass = pass;
    out.stage = Stage::PostOpt;

    bool cfgReady = false;
    for (const RecurrenceChain &c : chains) {
        if (c.function != fn.name())
            continue;
        RegFile file = c.flt ? RegFile::VFlt : RegFile::VInt;
        const std::string name = chainName(c);

        if (static_cast<int>(c.chainRegs.size()) != c.degree + 1) {
            Violation &v =
                detail::addViolation(out, "recurrence-shift-mismatch",
                                     fn);
            v.loopHeader = c.header;
            v.invariant = name;
            v.detail = strFormat(
                "chain has %d register(s) for degree %d; a degree-d "
                "recurrence needs d+1",
                static_cast<int>(c.chainRegs.size()), c.degree);
            continue;
        }
        for (size_t i = 0; i < c.chainRegs.size(); ++i)
            for (size_t j = i + 1; j < c.chainRegs.size(); ++j)
                if (c.chainRegs[i] == c.chainRegs[j]) {
                    Violation &v = detail::addViolation(
                        out, "recurrence-shift-cycle", fn);
                    v.loopHeader = c.header;
                    v.invariant = name;
                    v.detail = strFormat(
                        "chain register %s%d appears at distances "
                        "%d and %d: the shift chain has a cycle",
                        c.flt ? "vf" : "vr", c.chainRegs[i],
                        static_cast<int>(i), static_cast<int>(j));
                }

        rtl::Block *header = fn.findBlock(c.header);
        rtl::Block *pre = fn.findBlock(c.preheader);
        if (!header || !pre) {
            Violation &v = detail::addViolation(
                out, "recurrence-prime-missing", fn);
            v.loopHeader = c.header;
            v.invariant = name;
            v.detail = strFormat(
                "chain block %s no longer exists",
                (header ? c.preheader : c.header).c_str());
            continue;
        }

        // Locate each shift chain[k] := chain[k-1] in the header.
        std::vector<int> shiftAt(
            static_cast<size_t>(c.degree) + 1, -1);
        for (int k = c.degree; k >= 1; --k) {
            for (size_t i = 0; i < header->insts.size(); ++i) {
                const Inst &inst = header->insts[i];
                if (inst.kind == InstKind::Assign && inst.dst &&
                        inst.src &&
                        inst.dst->isReg(file, c.chainRegs[k]) &&
                        inst.src->isReg(file, c.chainRegs[k - 1])) {
                    shiftAt[static_cast<size_t>(k)] =
                        static_cast<int>(i);
                    break;
                }
            }
            if (shiftAt[static_cast<size_t>(k)] < 0) {
                Violation &v = detail::addViolation(
                    out, "recurrence-shift-mismatch", fn);
                v.block = header->label();
                v.loopHeader = c.header;
                v.invariant = name;
                v.detail = strFormat(
                    "missing shift %s%d := %s%d for distance %d",
                    c.flt ? "vf" : "vr", c.chainRegs[k],
                    c.flt ? "vf" : "vr", c.chainRegs[k - 1], k);
            }
        }

        // Oldest-first: chain[k] must be written before chain[k-1]
        // is, or the old value is clobbered before it is read.
        for (int k = c.degree; k >= 2; --k) {
            int a = shiftAt[static_cast<size_t>(k)];
            int b = shiftAt[static_cast<size_t>(k - 1)];
            if (a < 0 || b < 0)
                continue;
            if (a > b) {
                Violation &v = detail::addViolation(
                    out, "recurrence-shift-cycle", fn);
                v.block = header->label();
                v.loopHeader = c.header;
                v.invariant = name;
                v.detail = strFormat(
                    "shift of distance %d runs after the shift of "
                    "distance %d: %s%d is clobbered before it is "
                    "read",
                    k, k - 1, c.flt ? "vf" : "vr",
                    c.chainRegs[k - 1]);
            }
        }

        // The preheader primes chain[0..degree-1] and dominates the
        // header (the first iteration reads primed values on every
        // path into the loop).
        for (int k = 0; k < c.degree; ++k) {
            bool primed = false;
            for (const Inst &inst : pre->insts) {
                auto d = rtl::instDef(inst);
                if (d && d->isReg(file, c.chainRegs[k])) {
                    primed = true;
                    break;
                }
            }
            if (!primed) {
                Violation &v = detail::addViolation(
                    out, "recurrence-prime-missing", fn);
                v.block = pre->label();
                v.loopHeader = c.header;
                v.invariant = name;
                v.detail = strFormat(
                    "preheader %s does not prime %s%d (distance %d)",
                    pre->label().c_str(), c.flt ? "vf" : "vr",
                    c.chainRegs[k], k + 1);
            }
        }
        if (!cfgReady) {
            fn.recomputeCfg();
            cfgReady = true;
        }
        cfg::DominatorTree dt(fn);
        if (!dt.dominates(pre, header)) {
            Violation &v = detail::addViolation(
                out, "recurrence-prime-missing", fn);
            v.block = pre->label();
            v.loopHeader = c.header;
            v.invariant = name;
            v.detail = strFormat(
                "priming block %s does not dominate loop header %s",
                pre->label().c_str(), header->label().c_str());
        }
    }
    return out;
}

} // namespace wmstream::verify
