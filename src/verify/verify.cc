/**
 * @file
 * Structural IR validity checks plus the verifier entry points.
 *
 * The FIFO-discipline dataflow lives in fifolint.cc and the
 * recurrence-chain legality check in recurrence_check.cc; this file
 * owns everything that must hold for ANY rtl::Function regardless of
 * target: operand kinds and arity per opcode, resolvable branch and
 * call targets, terminators only at block ends, no fallthrough off
 * the end of the function, the Mem-only-in-Load/Store invariant,
 * register indexes within the target's files, no virtual registers
 * after register assignment, and def-before-use for virtual
 * registers.
 *
 * Ordering matters: branch targets are checked BEFORE
 * Function::recomputeCfg() is called, because recomputeCfg panics on
 * an unknown label — the verifier must turn malformed IR into a
 * diagnostic, not a crash.
 */

#include "verify/verify.h"

#include <algorithm>

#include "cfg/liveness.h"
#include "rtl/inst.h"
#include "support/str.h"

namespace wmstream::verify {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::PostExpand: return "post-expand";
      case Stage::PostOpt: return "post-opt";
      case Stage::PostRegalloc: return "post-regalloc";
      case Stage::PostLower: return "post-lower";
    }
    return "unknown";
}

std::string
Violation::signature() const
{
    return reason + '@' + invariant;
}

std::string
joinedSignature(const std::vector<VerifyReport> &reports)
{
    std::vector<std::string> sigs;
    for (const VerifyReport &rep : reports)
        for (const Violation &v : rep.violations)
            sigs.push_back(v.signature());
    std::sort(sigs.begin(), sigs.end());
    sigs.erase(std::unique(sigs.begin(), sigs.end()), sigs.end());
    std::string joined;
    for (size_t i = 0; i < sigs.size(); ++i) {
        if (i)
            joined += ',';
        joined += sigs[i];
    }
    return joined;
}

std::string
Violation::str() const
{
    std::string s = reason;
    s += " [";
    s += function;
    if (!block.empty()) {
        s += '.';
        s += block;
    }
    if (instId >= 0)
        s += strFormat("#%d", instId);
    s += ']';
    if (!invariant.empty()) {
        s += ' ';
        s += invariant;
    }
    if (!loopHeader.empty()) {
        s += " (loop ";
        s += loopHeader;
        s += ')';
    }
    if (!detail.empty()) {
        s += ": ";
        s += detail;
    }
    if (pos.valid()) {
        s += " @";
        s += pos.str();
    }
    return s;
}

std::string
VerifyReport::str() const
{
    std::string s =
        strFormat("verify %s after '%s': %d violation(s)\n",
                  stageName(stage), pass.c_str(),
                  static_cast<int>(violations.size()));
    for (const Violation &v : violations) {
        s += "  ";
        s += v.str();
        s += '\n';
    }
    return s;
}

namespace detail {

Violation &
addViolation(VerifyReport &out, std::string reason,
             const rtl::Function &fn)
{
    out.violations.emplace_back();
    Violation &v = out.violations.back();
    v.reason = std::move(reason);
    v.function = fn.name();
    return v;
}

} // namespace detail

namespace {

using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

using detail::addViolation;

std::string
regName(const Expr &r)
{
    return strFormat("%s%d", rtl::regFilePrefix(r.regFile()),
                     r.regIndex());
}

/** Stamp the common location fields of @p v from @p inst in @p b. */
void
locate(Violation &v, const rtl::Block &b, const Inst &inst)
{
    v.block = b.label();
    v.instId = inst.id;
    v.pos = inst.pos;
}

/** The operand fields an instruction kind is allowed to populate. */
struct FieldSpec
{
    bool dst, src, addr, count;
};

FieldSpec
fieldSpec(InstKind k)
{
    switch (k) {
      case InstKind::Assign: return {true, true, false, false};
      case InstKind::Load: return {true, false, true, false};
      case InstKind::Store: return {false, true, true, false};
      case InstKind::StreamIn:
      case InstKind::StreamOut: return {false, false, true, true};
      case InstKind::VecOp: return {true, true, false, true};
      default: return {false, false, false, false};
    }
}

/** Does this kind carry a branch/call label in Inst::target? */
bool
needsLabel(InstKind k)
{
    return k == InstKind::Jump || k == InstKind::CondJump ||
           k == InstKind::JumpStream;
}

bool
isDataFifoReg(const Expr &e)
{
    return e.kind() == Expr::Kind::Reg &&
           (e.regFile() == RegFile::Int ||
            e.regFile() == RegFile::Flt) &&
           (e.regIndex() == 0 || e.regIndex() == 1);
}

/**
 * Check every register node of @p e: index in range for its file, and
 * no virtual registers at or after the register-assignment stage.
 * @p what names the operand field for the diagnostic.
 */
void
checkRegs(const ExprPtr &e, const rtl::MachineTraits &traits,
          const VerifyOptions &opts, const rtl::Block &b,
          const Inst &inst, const char *what, const rtl::Function &fn,
          VerifyReport &out)
{
    if (!e)
        return;
    bool noVirtual = opts.stage == Stage::PostRegalloc ||
                     opts.stage == Stage::PostLower;
    rtl::forEachNode(e, [&](const Expr &n) {
        if (n.kind() != Expr::Kind::Reg)
            return;
        int idx = n.regIndex();
        bool bad = false;
        switch (n.regFile()) {
          case RegFile::Int:
            bad = idx < 0 || idx >= traits.numIntRegs;
            break;
          case RegFile::Flt:
            bad = idx < 0 || idx >= traits.numFltRegs;
            break;
          case RegFile::CC:
            bad = idx != 0 && idx != 1;
            break;
          case RegFile::VInt:
          case RegFile::VFlt:
            bad = idx < 0;
            if (!bad && noVirtual) {
                Violation &v = addViolation(
                    out, "virtual-reg-after-regalloc", fn);
                locate(v, b, inst);
                v.invariant = regName(n);
                v.detail = strFormat(
                    "virtual register in %s operand survives register "
                    "assignment", what);
            }
            break;
        }
        if (bad) {
            Violation &v = addViolation(out, "bad-operand", fn);
            locate(v, b, inst);
            v.invariant = regName(n);
            v.detail = strFormat("register index out of range in %s "
                                 "operand", what);
        }
    });
}

void
badOperand(VerifyReport &out, const rtl::Function &fn,
           const rtl::Block &b, const Inst &inst, std::string detail)
{
    Violation &v = addViolation(out, "bad-operand", fn);
    locate(v, b, inst);
    v.detail = std::move(detail);
}

/** Kind-specific operand arity/shape checks for one instruction. */
void
checkInstOperands(const Inst &inst, const rtl::MachineTraits &traits,
                  const VerifyOptions &opts, const rtl::Block &b,
                  const rtl::Function &fn, const rtl::Program *prog,
                  VerifyReport &out)
{
    const FieldSpec spec = fieldSpec(inst.kind);
    if (spec.dst && !inst.dst)
        badOperand(out, fn, b, inst, "missing destination operand");
    if (spec.src && !inst.src)
        badOperand(out, fn, b, inst, "missing source operand");
    if (spec.addr && !inst.addr)
        badOperand(out, fn, b, inst, "missing address operand");
    if (inst.dst && !inst.dst->isReg())
        badOperand(out, fn, b, inst,
                   "destination is not a register: " + inst.dst->str());

    // The Mem-node invariant: all memory traffic is a Load or Store
    // instruction; Mem must not appear in any expression operand
    // (Load/Store address expressions included — an embedded Mem
    // would be a second, invisible memory access).
    for (const ExprPtr &e : {inst.dst, inst.src, inst.addr, inst.count,
                             inst.vecSrc2}) {
        if (e && rtl::containsMem(e)) {
            Violation &v =
                addViolation(out, "mem-outside-loadstore", fn);
            locate(v, b, inst);
            v.detail = "Mem node in expression operand: " + e->str();
        }
    }

    switch (inst.kind) {
      case InstKind::Assign:
        if (inst.dst && inst.dst->isReg() &&
                inst.dst->regFile() == RegFile::CC) {
            // A CC write is a compare: the machine instruction
            // computes a relation. Allow a constant source too (a
            // compare constant-folded by the optimizer and awaiting
            // branch folding).
            bool relational =
                inst.src &&
                ((inst.src->kind() == Expr::Kind::Bin &&
                  rtl::isRelationalOp(inst.src->op())) ||
                 inst.src->isConst());
            if (!relational) {
                Violation &v = addViolation(out, "bad-cc-write", fn);
                locate(v, b, inst);
                v.invariant = strFormat("cc%d", inst.dst->regIndex());
                v.detail = "condition-code destination with "
                           "non-relational source: " +
                           (inst.src ? inst.src->str()
                                     : std::string("<null>"));
            }
        }
        break;
      case InstKind::Load:
        if (inst.dst && inst.dst->isReg() &&
                inst.dst->regFile() == RegFile::CC)
            badOperand(out, fn, b, inst,
                       "load into condition-code register");
        break;
      case InstKind::StreamIn:
      case InstKind::StreamOut:
      case InstKind::StreamStop:
      case InstKind::JumpStream:
      case InstKind::VecOp:
        if (!traits.hasStreams)
            badOperand(out, fn, b, inst,
                       "stream instruction on a target without "
                       "stream hardware");
        if (inst.kind != InstKind::VecOp &&
                (inst.fifo != 0 && inst.fifo != 1))
            badOperand(out, fn, b, inst,
                       strFormat("FIFO index %d out of range",
                                 inst.fifo));
        if (inst.kind == InstKind::VecOp) {
            if (inst.dst && inst.dst->isReg() &&
                    !isDataFifoReg(*inst.dst))
                badOperand(out, fn, b, inst,
                           "vector destination is not an output-FIFO "
                           "register");
            if (!inst.src || !inst.src->isReg() ||
                    !isDataFifoReg(*inst.src))
                badOperand(out, fn, b, inst,
                           "vector source is not an input-FIFO "
                           "register");
            if (!inst.count)
                badOperand(out, fn, b, inst,
                           "vector operation without element count");
            if (inst.vecSrc2 && !inst.vecSrc2->isReg())
                badOperand(out, fn, b, inst,
                           "second vector operand is not a register");
        }
        break;
      case InstKind::Call:
        if (inst.target.empty()) {
            badOperand(out, fn, b, inst, "call without a callee name");
        } else if (prog && !prog->findFunction(inst.target)) {
            Violation &v =
                addViolation(out, "call-target-unknown", fn);
            locate(v, b, inst);
            v.invariant = inst.target;
            v.detail = "no function named '" + inst.target + "'";
        }
        break;
      default:
        break;
    }

    checkRegs(inst.dst, traits, opts, b, inst, "destination", fn, out);
    checkRegs(inst.src, traits, opts, b, inst, "source", fn, out);
    checkRegs(inst.addr, traits, opts, b, inst, "address", fn, out);
    checkRegs(inst.count, traits, opts, b, inst, "count", fn, out);
    checkRegs(inst.vecSrc2, traits, opts, b, inst, "vector-src2", fn,
              out);
    for (const ExprPtr &e : inst.extraUses)
        checkRegs(e, traits, opts, b, inst, "implicit-use", fn, out);
}

} // anonymous namespace

namespace detail {

bool
checkStructure(rtl::Function &fn, const rtl::MachineTraits &traits,
               const VerifyOptions &opts, const rtl::Program *prog,
               VerifyReport &out)
{
    bool labelsOk = true;
    const auto &blocks = fn.blocks();
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        const rtl::Block &b = *blocks[bi];
        for (size_t i = 0; i < b.insts.size(); ++i) {
            const Inst &inst = b.insts[i];
            checkInstOperands(inst, traits, opts, b, fn, prog, out);

            if (inst.isTerminator() && i + 1 != b.insts.size()) {
                Violation &v =
                    addViolation(out, "terminator-mid-block", fn);
                locate(v, b, inst);
                v.detail = strFormat(
                    "%d instruction(s) after the terminator are "
                    "unreachable",
                    static_cast<int>(b.insts.size() - i - 1));
            }
            if (needsLabel(inst.kind)) {
                if (inst.target.empty() ||
                        !fn.findBlock(inst.target)) {
                    Violation &v =
                        addViolation(out, "branch-target-unknown", fn);
                    locate(v, b, inst);
                    v.invariant = inst.target;
                    v.detail =
                        "no block labelled '" + inst.target + "'";
                    labelsOk = false;
                }
            }
        }

        // Layout order is meaningful: a block whose last instruction
        // can fall through needs a next block to fall into.
        bool fallsThrough = true;
        if (const Inst *t = b.terminator())
            fallsThrough = t->kind == InstKind::CondJump ||
                           t->kind == InstKind::JumpStream;
        if (fallsThrough && bi + 1 == blocks.size()) {
            Violation &v =
                addViolation(out, "fallthrough-off-end", fn);
            v.block = b.label();
            if (!b.insts.empty()) {
                v.instId = b.insts.back().id;
                v.pos = b.insts.back().pos;
            }
            v.detail = "last block of the function can fall through "
                       "off the end";
        }
    }

    if (!labelsOk)
        return false;

    // CFG-dependent checks. recomputeCfg is safe now that every
    // branch target is known to resolve.
    fn.recomputeCfg();

    // Def-before-use: a VIRTUAL register live into the entry block
    // has a use along some path that no definition reaches. Physical
    // registers are exempt (arguments and the stack pointer are
    // live-in by convention); CC consumption is covered by the queue
    // discipline checks.
    if (opts.stage != Stage::PostRegalloc &&
            opts.stage != Stage::PostLower && fn.entry()) {
        cfg::Liveness live(fn, traits);
        std::vector<cfg::RegKey> bad;
        for (const cfg::RegKey &k : live.liveIn(fn.entry()))
            if (k.file == RegFile::VInt || k.file == RegFile::VFlt)
                bad.push_back(k);
        // Deterministic order for golden tests.
        std::sort(bad.begin(), bad.end(),
                  [](const cfg::RegKey &a, const cfg::RegKey &b2) {
                      if (a.file != b2.file)
                          return a.file < b2.file;
                      return a.index < b2.index;
                  });
        for (const cfg::RegKey &k : bad) {
            Violation &v = addViolation(out, "use-before-def", fn);
            v.block = fn.entry()->label();
            v.invariant = strFormat("%s%d", rtl::regFilePrefix(k.file),
                                    k.index);
            v.detail = "virtual register is live into the entry "
                       "block: some use is reached by no definition";
        }
    }
    return true;
}

} // namespace detail

VerifyReport
verifyFunction(rtl::Function &fn, const rtl::MachineTraits &traits,
               const VerifyOptions &opts, const rtl::Program *prog)
{
    VerifyReport out;
    out.pass = opts.pass;
    out.stage = opts.stage;
    bool cfgOk = detail::checkStructure(fn, traits, opts, prog, out);
    if (cfgOk && traits.isWM())
        detail::checkQueueDiscipline(fn, traits, opts, out);
    return out;
}

VerifyReport
verifyProgram(rtl::Program &prog, const rtl::MachineTraits &traits,
              const VerifyOptions &opts)
{
    VerifyReport out;
    out.pass = opts.pass;
    out.stage = opts.stage;
    for (auto &fn : prog.functions()) {
        VerifyReport one = verifyFunction(*fn, traits, opts, &prog);
        for (Violation &v : one.violations)
            out.violations.push_back(std::move(v));
    }
    return out;
}

} // namespace wmstream::verify
