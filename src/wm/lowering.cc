#include "wm/lowering.h"

#include <functional>

#include "cfg/liveness.h"
#include "support/diag.h"

namespace wmstream::wm {

using cfg::RegKey;
using rtl::DataType;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

namespace {

bool
instReadsQueue(const Inst &inst, RegFile file, int fifo)
{
    for (const auto &u : rtl::instUses(inst))
        if (u->isReg(file, fifo))
            return true;
    return false;
}

/** DFS (evaluation-order) positions of reads of (file,fifo) in @p e. */
void
fifoReadPositions(const ExprPtr &e, RegFile file, int fifo, int *counter,
                  std::vector<int> *positions, const Expr *marker,
                  int *markerPos)
{
    if (!e)
        return;
    switch (e->kind()) {
      case Expr::Kind::Reg:
        if (e->isReg(file, fifo))
            positions->push_back(*counter);
        if (e.get() == marker)
            *markerPos = *counter;
        ++*counter;
        return;
      case Expr::Kind::Const:
      case Expr::Kind::Sym:
        ++*counter;
        return;
      case Expr::Kind::Mem:
      case Expr::Kind::Un:
        fifoReadPositions(e->lhs(), file, fifo, counter, positions, marker,
                          markerPos);
        return;
      case Expr::Kind::Bin:
        fifoReadPositions(e->lhs(), file, fifo, counter, positions, marker,
                          markerPos);
        fifoReadPositions(e->rhs(), file, fifo, counter, positions, marker,
                          markerPos);
        return;
    }
}

/** Basic lowering: split every Load/Store into FIFO form. */
void
basicLower(rtl::Function &fn, LoweringReport &report)
{
    for (auto &bp : fn.blocks()) {
        rtl::Block *b = bp.get();
        for (size_t i = 0; i < b->insts.size(); ++i) {
            Inst &inst = b->insts[i];
            if (inst.kind == InstKind::Load) {
                bool flt = rtl::isFloatType(inst.memType);
                RegFile ff = flt ? RegFile::Flt : RegFile::Int;
                DataType fdt = flt ? DataType::F64 : DataType::I64;
                if (inst.dst->isReg(ff, 0))
                    continue; // already lowered
                WS_ASSERT(!rtl::isVirtualFile(inst.dst->regFile()),
                          "virtual register survived to lowering");
                ExprPtr dst = inst.dst;
                inst.dst = rtl::makeReg(ff, 0, fdt);
                Inst deq = rtl::makeAssign(
                    dst, rtl::makeReg(ff, 0, fdt),
                    inst.comment.empty() ? "dequeue" : "dequeue " +
                                                           inst.comment);
                b->insts.insert(b->insts.begin() +
                                static_cast<ptrdiff_t>(i + 1),
                                std::move(deq));
                ++i;
                ++report.loadsLowered;
            } else if (inst.kind == InstKind::Store) {
                bool flt = rtl::isFloatType(inst.memType);
                RegFile ff = flt ? RegFile::Flt : RegFile::Int;
                DataType fdt = flt ? DataType::F64 : DataType::I64;
                if (inst.src->isReg(ff, 0))
                    continue; // already lowered
                WS_ASSERT(!rtl::isVirtualFile(inst.src->regFile()),
                          "virtual register survived to lowering");
                Inst enq = rtl::makeAssign(rtl::makeReg(ff, 0, fdt),
                                           inst.src, "enqueue store data");
                inst.src = rtl::makeReg(ff, 0, fdt);
                b->insts.insert(b->insts.begin() +
                                static_cast<ptrdiff_t>(i),
                                std::move(enq));
                ++i;
                ++report.storesLowered;
            }
        }
    }
}

/**
 * Dequeue folding. For `rD := fifo` whose single later use can consume
 * the FIFO directly, delete the dequeue. Constraints documented in the
 * header.
 */
bool
foldDequeuesOnce(rtl::Function &fn, const rtl::MachineTraits &traits,
                 LoweringReport &report)
{
    cfg::Liveness live(fn, traits);
    for (auto &bp : fn.blocks()) {
        rtl::Block *b = bp.get();
        for (size_t i = 0; i < b->insts.size(); ++i) {
            Inst &deq = b->insts[i];
            if (deq.kind != InstKind::Assign || !deq.src->isReg())
                continue;
            RegFile ff = deq.src->regFile();
            int fifo = deq.src->regIndex();
            if ((ff != RegFile::Int && ff != RegFile::Flt) ||
                    (fifo != 0 && fifo != 1)) {
                continue;
            }
            const ExprPtr dst = deq.dst;
            if (dst->isReg(ff, fifo))
                continue;
            RegKey dkey{dst->regFile(), dst->regIndex()};

            // Find the single use, aborting on queue interference.
            size_t useIdx = 0;
            bool found = false, blocked = false;
            for (size_t j = i + 1; j < b->insts.size() && !found &&
                                   !blocked; ++j) {
                const Inst &cand = b->insts[j];
                if (cand.kind == InstKind::Call) {
                    blocked = true;
                    break;
                }
                int usesD = 0;
                for (const auto &u : rtl::instUses(cand))
                    if (u->isReg(dkey.file, dkey.index))
                        ++usesD;
                bool readsQ = instReadsQueue(cand, ff, fifo);
                if (usesD > 0) {
                    if (usesD > 1) {
                        blocked = true;
                        break;
                    }
                    useIdx = j;
                    found = true;
                    break;
                }
                if (readsQ) {
                    blocked = true;
                    break;
                }
                // Redefinition of rD before any use: dequeue needed
                // only if rD live elsewhere; stop either way.
                bool redef = false;
                for (const RegKey &k : cfg::instDefKeys(cand, traits))
                    if (k == dkey)
                        redef = true;
                if (redef) {
                    blocked = true;
                    break;
                }
            }
            if (!found || blocked)
                continue;

            Inst &use = b->insts[useIdx];
            // Only fold into Assign sources and Load/Store addresses
            // keep ordering analysis simple; stores' data field is
            // handled by the enqueue peephole.
            ExprPtr *field = nullptr;
            if (use.kind == InstKind::Assign &&
                    rtl::usesReg(use.src, dkey.file, dkey.index)) {
                field = &use.src;
            } else {
                continue;
            }

            // rD must be dead after the use.
            bool liveLater = live.liveAfter(b, useIdx, dkey);
            if (liveLater)
                continue;

            // Queue-order check: the new FIFO read must come after all
            // existing reads of the same queue in evaluation order.
            {
                // Locate rD's node in the use expression.
                const Expr *marker = nullptr;
                std::function<void(const ExprPtr &)> findMarker =
                    [&](const ExprPtr &e) {
                        if (!e || marker)
                            return;
                        if (e->isReg(dkey.file, dkey.index)) {
                            marker = e.get();
                            return;
                        }
                        findMarker(e->lhs());
                        if (e->kind() == Expr::Kind::Bin)
                            findMarker(e->rhs());
                    };
                findMarker(*field);
                int counter = 0, markerPos = -1;
                std::vector<int> positions;
                fifoReadPositions(*field, ff, fifo, &counter, &positions,
                                  marker, &markerPos);
                bool ok = markerPos >= 0;
                for (int p : positions)
                    if (p > markerPos)
                        ok = false;
                if (!ok)
                    continue;
            }

            *field = rtl::substReg(*field, dkey.file, dkey.index,
                                   deq.src);
            b->insts.erase(b->insts.begin() + static_cast<ptrdiff_t>(i));
            ++report.dequeuesFolded;
            return true; // liveness indexes are stale; restart
        }
    }
    return false;
}

void
foldDequeues(rtl::Function &fn, const rtl::MachineTraits &traits,
             LoweringReport &report)
{
    while (foldDequeuesOnce(fn, traits, report)) {
    }
}

/**
 * Enqueue folding: `rT := expr; fifoOut := rT` with rT dead afterwards
 * becomes `fifoOut := expr`.
 */
bool
foldEnqueuesOnce(rtl::Function &fn, const rtl::MachineTraits &traits,
                 LoweringReport &report)
{
    cfg::Liveness live(fn, traits);
    for (auto &bp : fn.blocks()) {
        rtl::Block *b = bp.get();
        for (size_t i = 1; i < b->insts.size(); ++i) {
            Inst &enq = b->insts[i];
            if (enq.kind != InstKind::Assign || !enq.dst->isReg())
                continue;
            RegFile ff = enq.dst->regFile();
            int fifo = enq.dst->regIndex();
            if ((ff != RegFile::Int && ff != RegFile::Flt) ||
                    (fifo != 0 && fifo != 1)) {
                continue;
            }
            if (!enq.src->isReg())
                continue;
            Inst &def = b->insts[i - 1];
            if (def.kind != InstKind::Assign || !def.dst->isReg())
                continue;
            if (!def.dst->isReg(enq.src->regFile(), enq.src->regIndex()))
                continue;
            if (def.dst->isReg(ff, fifo))
                continue;
            RegKey dkey{def.dst->regFile(), def.dst->regIndex()};
            if (live.liveAfter(b, i, dkey))
                continue;
            // Merge: fifoOut := def.src; delete def.
            enq.src = def.src;
            if (enq.comment.empty())
                enq.comment = def.comment;
            b->insts.erase(b->insts.begin() + static_cast<ptrdiff_t>(i - 1));
            ++report.enqueuesFolded;
            return true; // liveness indexes are stale; restart
        }
    }
    return false;
}

void
foldEnqueues(rtl::Function &fn, const rtl::MachineTraits &traits,
             LoweringReport &report)
{
    while (foldEnqueuesOnce(fn, traits, report)) {
    }
}

} // anonymous namespace

LoweringReport
lowerToFifoForm(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    LoweringReport report;
    basicLower(fn, report);
    foldDequeues(fn, traits, report);
    foldEnqueues(fn, traits, report);
    fn.recomputeCfg();
    fn.renumber();
    return report;
}

LoweringReport
lowerProgram(rtl::Program &prog, const rtl::MachineTraits &traits)
{
    LoweringReport total;
    for (auto &f : prog.functions()) {
        LoweringReport r = lowerToFifoForm(*f, traits);
        total.loadsLowered += r.loadsLowered;
        total.storesLowered += r.storesLowered;
        total.dequeuesFolded += r.dequeuesFolded;
        total.enqueuesFolded += r.enqueuesFolded;
    }
    return total;
}

} // namespace wmstream::wm
