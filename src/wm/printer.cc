#include "wm/printer.h"

#include <sstream>

#include "support/str.h"

namespace wmstream::wm {

using rtl::DataType;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;

namespace {

/** Render an expression WM-style: r22, f0, (r22<<3)+r24, _x. */
std::string
wmExpr(const ExprPtr &e)
{
    std::ostringstream os;
    switch (e->kind()) {
      case Expr::Kind::Const:
        if (rtl::isFloatType(e->type()))
            os << e->fval();
        else
            os << e->ival();
        break;
      case Expr::Kind::Sym:
        os << "_" << e->symbol();
        if (e->symOffset() > 0)
            os << "+" << e->symOffset();
        else if (e->symOffset() < 0)
            os << e->symOffset();
        break;
      case Expr::Kind::Reg:
        switch (e->regFile()) {
          case RegFile::Int: os << "r" << e->regIndex(); break;
          case RegFile::Flt: os << "f" << e->regIndex(); break;
          case RegFile::VInt: os << "vr" << e->regIndex(); break;
          case RegFile::VFlt: os << "vf" << e->regIndex(); break;
          case RegFile::CC:
            // Compares architecturally target register 31; the CC
            // enqueue is implicit (paper prints them as r31 := ...).
            os << (e->regIndex() == 0 ? "r31" : "f31");
            break;
        }
        break;
      case Expr::Kind::Mem:
        os << "M[" << wmExpr(e->addr()) << "]";
        break;
      case Expr::Kind::Bin:
        os << "(" << wmExpr(e->lhs()) << " " << rtl::opName(e->op()) << " "
           << wmExpr(e->rhs()) << ")";
        break;
      case Expr::Kind::Un:
        os << rtl::opName(e->op()) << "(" << wmExpr(e->lhs()) << ")";
        break;
    }
    return os.str();
}

char
streamTypeLetter(DataType t)
{
    switch (t) {
      case DataType::F64: return 'D';
      case DataType::F32: return 'F';
      case DataType::I64: return 'L';
      case DataType::I32: return 'W';
      case DataType::I16: return 'H';
      case DataType::I8: return 'B';
    }
    return '?';
}

std::string
loadOpcode(const Inst &inst)
{
    int bits = rtl::dataTypeSize(inst.memType) * 8;
    bool flt = rtl::isFloatType(inst.memType);
    return strFormat("%c%d%s", inst.kind == InstKind::Load ? 'l' : 's',
                     bits, flt ? "f" : "");
}

bool
isFloatAssign(const Inst &inst)
{
    if (inst.dst && (inst.dst->regFile() == RegFile::Flt ||
                     inst.dst->regFile() == RegFile::VFlt)) {
        return true;
    }
    if (inst.dst && inst.dst->regFile() == RegFile::CC &&
            inst.dst->regIndex() == 1) {
        return true;
    }
    return false;
}

} // anonymous namespace

std::string
opcodeOf(const Inst &inst)
{
    switch (inst.kind) {
      case InstKind::Assign:
        if (inst.src->isSym() ||
                (inst.src->isConst() && !rtl::isFloatType(inst.src->type()) &&
                 (inst.src->ival() < -32768 || inst.src->ival() >= 32768))) {
            return "llh/sll";
        }
        if (inst.src->kind() == Expr::Kind::Un &&
                (inst.src->op() == rtl::Op::CvtIF ||
                 inst.src->op() == rtl::Op::CvtFI)) {
            return inst.src->op() == rtl::Op::CvtIF ? "cvtif" : "cvtfi";
        }
        return isFloatAssign(inst) ? "double" : "";
      case InstKind::Load:
      case InstKind::Store:
        return loadOpcode(inst);
      case InstKind::Jump:
        return "Jump";
      case InstKind::CondJump:
        return inst.when ? "JumpIT" : "JumpIF";
      case InstKind::JumpStream:
        return strFormat("JNI%c%d",
                         inst.side == rtl::UnitSide::Int ? 'r' : 'f',
                         inst.fifo);
      case InstKind::StreamIn:
        return strFormat("Sin%c", streamTypeLetter(inst.memType));
      case InstKind::StreamOut:
        return strFormat("Sout%c", streamTypeLetter(inst.memType));
      case InstKind::StreamStop:
        return "Sstop";
      case InstKind::VecOp:
        return "Vop";
      case InstKind::Call:
        return "call";
      case InstKind::Return:
        return "ret";
    }
    return "?";
}

namespace {

std::string
operandsOf(const Inst &inst)
{
    std::ostringstream os;
    switch (inst.kind) {
      case InstKind::Assign:
        os << wmExpr(inst.dst) << " := " << wmExpr(inst.src);
        break;
      case InstKind::Load:
        // The architectural destination of an address generation is
        // r31; the datum goes to the input FIFO.
        os << "r31 := " << wmExpr(inst.addr);
        break;
      case InstKind::Store:
        os << "r31 := " << wmExpr(inst.addr);
        break;
      case InstKind::Jump:
      case InstKind::CondJump:
      case InstKind::JumpStream:
        os << inst.target;
        break;
      case InstKind::StreamIn:
      case InstKind::StreamOut:
        os << (inst.side == rtl::UnitSide::Int ? "r" : "f") << inst.fifo
           << "," << wmExpr(inst.addr) << ","
           << (inst.count ? wmExpr(inst.count) : "inf") << ","
           << inst.stride;
        break;
      case InstKind::StreamStop:
        os << (inst.side == rtl::UnitSide::Int ? "r" : "f") << inst.fifo;
        break;
      case InstKind::VecOp:
        os << wmExpr(inst.dst) << " := (" << wmExpr(inst.src) << " "
           << rtl::opName(inst.vecOp) << " "
           << (inst.vecSrc2 ? wmExpr(inst.vecSrc2) : std::string("-"))
           << "), " << wmExpr(inst.count);
        break;
      case InstKind::Call:
        os << inst.target;
        break;
      case InstKind::Return:
        break;
    }
    return os.str();
}

} // anonymous namespace

std::string
printFunction(const rtl::Function &fn)
{
    std::ostringstream os;
    os << "-- function " << fn.name() << "\n";
    int line = 1;
    for (const auto &bp : fn.blocks()) {
        bool first = true;
        for (const Inst &inst : bp->insts) {
            std::string label = first ? bp->label() + ":" : "";
            first = false;
            std::string op = opcodeOf(inst);
            std::string text = operandsOf(inst);
            os << strFormat("%3d. %-10s %-8s %-36s", line++, label.c_str(),
                            op.c_str(), text.c_str());
            if (!inst.comment.empty())
                os << " -- " << inst.comment;
            os << "\n";
        }
        if (first) {
            // Empty block: still print the label.
            os << strFormat("%3d. %-10s\n", line++,
                            (bp->label() + ":").c_str());
        }
    }
    return os.str();
}

std::string
printProgram(const rtl::Program &prog)
{
    std::ostringstream os;
    for (const auto &f : prog.functions())
        os << printFunction(*f) << "\n";
    return os.str();
}

} // namespace wmstream::wm
