/**
 * @file
 * WM assembly listing printer.
 *
 * Produces listings in the style of the paper's Figures 4, 5, and 7:
 * a line number, an opcode mnemonic column (llh/sll pairs for literal
 * materialization, l64f/s64f for loads/stores, `double` for FEU
 * operations, SinD/SoutD for streams, JumpIT/JumpIF/JNIfx for the
 * IFU-executed branches), the register-transfer itself, and the
 * carried comment.
 */

#ifndef WMSTREAM_WM_PRINTER_H
#define WMSTREAM_WM_PRINTER_H

#include <string>

#include "rtl/program.h"

namespace wmstream::wm {

/** Listing for one function (expects lowered or pre-lowered WM RTL). */
std::string printFunction(const rtl::Function &fn);

/** Listing for the whole program. */
std::string printProgram(const rtl::Program &prog);

/** Opcode mnemonic for one instruction (exposed for tests). */
std::string opcodeOf(const rtl::Inst &inst);

} // namespace wmstream::wm

#endif // WMSTREAM_WM_PRINTER_H
