/**
 * @file
 * WM FIFO-form lowering.
 *
 * On WM, "a load instruction only computes an address; the destination
 * is implicitly the input FIFO", and stores pair an address computation
 * with data enqueued by writing register 0. Through the optimizer we
 * keep loads/stores in the machine-independent register form; this late
 * pass converts post-register-assignment code to the real WM shape:
 *
 *     Load  rD := M[a]      becomes   Load (fifo0) := M[a]   (addr gen)
 *                                     rD := r0/f0            (dequeue)
 *     Store M[a] := rS      becomes   r0/f0 := rS            (enqueue)
 *                                     Store M[a] := (fifo0)  (addr gen)
 *
 * followed by two peepholes that reproduce the paper's figures: a
 * dequeue whose single use can consume the FIFO directly is folded into
 * the use (Figure 4's `f0 := (f0-f0)*f20`), and an enqueue immediately
 * after the computation of its value absorbs the computation.
 * Both peepholes preserve FIFO ordering: a dequeue is never moved past
 * another read of the same queue.
 */

#ifndef WMSTREAM_WM_LOWERING_H
#define WMSTREAM_WM_LOWERING_H

#include "rtl/machine.h"
#include "rtl/program.h"

namespace wmstream::wm {

/** Statistics from lowering (for tests). */
struct LoweringReport
{
    int loadsLowered = 0;
    int storesLowered = 0;
    int dequeuesFolded = 0;
    int enqueuesFolded = 0;
};

/**
 * Lower @p fn (which must already be register-assigned: no virtual
 * registers) to WM FIFO form. Panics on remaining virtual registers.
 */
LoweringReport lowerToFifoForm(rtl::Function &fn,
                               const rtl::MachineTraits &traits);

/** Convenience: lower every function of @p prog. */
LoweringReport lowerProgram(rtl::Program &prog,
                            const rtl::MachineTraits &traits);

} // namespace wmstream::wm

#endif // WMSTREAM_WM_LOWERING_H
