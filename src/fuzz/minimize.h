/**
 * @file
 * Delta-debugging minimizer for fuzz reproducers.
 *
 * Given a ProgramSpec that provokes a divergence and a predicate that
 * re-checks whether a candidate spec still provokes it, shrink the
 * spec to a local minimum by structural (AST-level) transformations:
 *
 *   - drop whole statements;
 *   - clear the conditional guard and the accumulator tap;
 *   - merge source arrays into the destination array (shrinks the set
 *     of live arrays, so declarations/initialization/checksum lines
 *     disappear from the rendering);
 *   - pull offsets toward zero / toward the destination offset
 *     (preserving any same-cell relation the divergence depends on);
 *   - canonicalize the operator to '+' and the direction to upward;
 *   - shrink the array size (and with it the trip count) to the
 *     smallest size that still diverges.
 *
 * Every transformation is validated by re-running the predicate; a
 * candidate that no longer diverges is discarded. The loop runs to a
 * fixpoint, so the result cannot be shrunk further by any single step
 * above.
 */

#ifndef WMSTREAM_FUZZ_MINIMIZE_H
#define WMSTREAM_FUZZ_MINIMIZE_H

#include <functional>

#include "fuzz/generator.h"

namespace wmstream::fuzz {

/** Re-check: does @p candidate still provoke the same divergence? */
using DivergePredicate = std::function<bool(const ProgramSpec &)>;

struct MinimizeResult
{
    ProgramSpec spec;  ///< fixpoint reproducer
    int attempts = 0;  ///< candidate re-checks performed
    int accepted = 0;  ///< transformations that kept the divergence
};

/**
 * Shrink @p start to a 1-minimal reproducer under @p stillDiverges.
 * @p start must satisfy the predicate.
 */
MinimizeResult minimizeSpec(const ProgramSpec &start,
                            const DivergePredicate &stillDiverges);

} // namespace wmstream::fuzz

#endif // WMSTREAM_FUZZ_MINIMIZE_H
