#include "fuzz/generator.h"

#include "support/diag.h"
#include "support/str.h"

namespace wmstream::fuzz {

namespace {

const char *const kArrayNames[kNumArrays] = {"A", "B", "C"};

/** The per-array initialization patterns (distinct small moduli so
 *  different cells rarely collide). */
struct InitPattern
{
    int mul, add, mod;
};
const InitPattern kInit[kNumArrays] = {
    {7, 3, 23}, {5, 1, 19}, {11, 7, 29}};

} // anonymous namespace

bool
ProgramSpec::usesArray(int a) const
{
    for (const StmtSpec &s : stmts)
        if (s.dst == a || s.src1 == a || s.src2 == a)
            return true;
    return false;
}

ProgramSpec
generateSpec(support::Rng &rng)
{
    ProgramSpec spec;
    spec.arraySize = 48;
    spec.countUp = rng.flip();
    int stmts = rng.range(1, 3);
    for (int k = 0; k < stmts; ++k) {
        StmtSpec s;
        s.dst = rng.range(0, kNumArrays - 1);
        s.dstOff = rng.range(-2, 2);
        s.src1 = rng.range(0, kNumArrays - 1);
        s.off1 = rng.range(-4, 4);
        s.src2 = rng.range(0, kNumArrays - 1);
        s.off2 = rng.range(-4, 4);
        s.subtract = rng.flip();
        // Conditional statements block streaming of the guarded refs.
        s.conditional = rng.range(0, 3) == 0;
        s.accumulate = rng.range(0, 2) == 0;
        spec.stmts.push_back(s);
    }
    return spec;
}

namespace {

/** Render `N[i + k]` with the `+ 0` elided. */
std::string
ref(int array, int off)
{
    if (off == 0)
        return strFormat("%s[i]", kArrayNames[array]);
    return strFormat("%s[i %s %d]", kArrayNames[array],
                     off < 0 ? "-" : "+", off < 0 ? -off : off);
}

} // anonymous namespace

std::string
renderProgram(const ProgramSpec &spec)
{
    WS_ASSERT(!spec.stmts.empty(), "spec with no statements");
    WS_ASSERT(spec.arraySize >= kMinArraySize, "array too small");

    bool used[kNumArrays] = {};
    int numUsed = 0;
    for (int a = 0; a < kNumArrays; ++a)
        if ((used[a] = spec.usesArray(a)))
            ++numUsed;

    std::string out = strFormat("int n = %d;\n", spec.arraySize);
    for (int a = 0; a < kNumArrays; ++a)
        if (used[a])
            out += strFormat("int %s[%d];\n", kArrayNames[a],
                             spec.arraySize);
    out += "int main(void)\n{\n    int i, acc;\n";

    // Initialization loop; braces only when more than one array.
    out += strFormat("    for (i = 0; i < n; i++)%s\n",
                     numUsed > 1 ? " {" : "");
    for (int a = 0; a < kNumArrays; ++a)
        if (used[a])
            out += strFormat("        %s[i] = (i * %d + %d) %% %d;\n",
                             kArrayNames[a], kInit[a].mul, kInit[a].add,
                             kInit[a].mod);
    if (numUsed > 1)
        out += "    }\n";
    out += "    acc = 0;\n";

    // The fuzzed loop.
    int bodyLines = 0;
    for (const StmtSpec &s : spec.stmts)
        bodyLines += 1 + (s.conditional ? 1 : 0) + (s.accumulate ? 1 : 0);
    bool braces = bodyLines > 1;
    if (spec.countUp)
        out += strFormat("    for (i = 4; i < n - 4; i++)%s\n",
                         braces ? " {" : "");
    else
        out += strFormat("    for (i = n - 5; i >= 4; i--)%s\n",
                         braces ? " {" : "");
    for (const StmtSpec &s : spec.stmts) {
        std::string assign = strFormat(
            "%s = %s %s %s;", ref(s.dst, s.dstOff).c_str(),
            ref(s.src1, s.off1).c_str(), s.subtract ? "-" : "+",
            ref(s.src2, s.off2).c_str());
        if (s.conditional) {
            out += "        if ((i & 1) == 0)\n";
            out += strFormat("            %s\n", assign.c_str());
        } else {
            out += strFormat("        %s\n", assign.c_str());
        }
        if (s.accumulate)
            out += strFormat("        acc = acc + %s;\n",
                             ref(s.dst, s.dstOff).c_str());
    }
    if (braces)
        out += "    }\n";

    // Checksum every live array so any corrupted cell is observable.
    out += "    for (i = 0; i < n; i++)\n";
    std::string sum = "acc";
    int weight = 1;
    for (int a = 0; a < kNumArrays; ++a) {
        if (!used[a])
            continue;
        if (weight == 1)
            sum += strFormat(" + %s[i]", kArrayNames[a]);
        else
            sum += strFormat(" + %s[i] * %d", kArrayNames[a], weight);
        ++weight;
    }
    out += strFormat("        acc = %s;\n", sum.c_str());
    out += "    return acc & 1048575;\n}\n";
    return out;
}

int
sourceLineCount(const std::string &source)
{
    int lines = 0;
    bool blank = true;
    for (char c : source) {
        if (c == '\n') {
            if (!blank)
                ++lines;
            blank = true;
        } else if (c != ' ' && c != '\t') {
            blank = false;
        }
    }
    if (!blank)
        ++lines;
    return lines;
}

} // namespace wmstream::fuzz
