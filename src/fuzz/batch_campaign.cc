#include "fuzz/batch_campaign.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "driver/compiler.h"
#include "fuzz/generator.h"
#include "m68k/printer.h"
#include "wm/printer.h"
#include "support/diag.h"
#include "support/rng.h"
#include "support/str.h"

namespace wmstream::fuzz {

namespace {

/** What the batch run must report for one TU, derived from solo
 *  sequential compiles so the audit is independent of serve's pool,
 *  watchdog, and retry machinery. */
struct Expectation
{
    serve::TuStatus status = serve::TuStatus::Ok;
    uint64_t hash = 0;        ///< expected artifact hash (ok statuses)
    std::string degradation;  ///< expected demotion reason code
    bool panicSignature = false; ///< failure must carry "panic@..."
};

driver::CompileOptions
campaignBase()
{
    driver::CompileOptions base;
    base.verify = driver::VerifyMode::Each;
    return base;
}

/** Replay the degradation ladder with plain sequential compiles. */
Expectation
soloExpect(const std::string &source, bool injectPanic,
           bool injectVerifierBug)
{
    Expectation exp;
    serve::LadderLevel level = serve::LadderLevel::Full;
    for (;;) {
        driver::CompileOptions co =
            serve::applyLadder(campaignBase(), level);
        co.injectPanicTu = injectPanic;
        co.injectVerifierBug = injectVerifierBug;

        bool failed = false;
        driver::CompileResult cr;
        try {
            cr = driver::compileSource(source, co);
            if (!cr.ok) {
                exp.status = serve::TuStatus::UserError;
                return exp;
            }
            failed = !cr.verifyClean();
        } catch (const InternalError &) {
            failed = true;
            exp.panicSignature = true;
        }

        if (!failed) {
            exp.status = level == serve::LadderLevel::Full
                             ? serve::TuStatus::Ok
                             : serve::TuStatus::OkDegraded;
            std::string text =
                co.target == rtl::MachineKind::WM
                    ? wm::printProgram(*cr.program)
                    : m68k::printProgram(*cr.program);
            exp.hash = serve::artifactHash(text);
            return exp;
        }
        if (level == serve::LadderLevel::ScalarOnly) {
            exp.status = serve::TuStatus::Failed;
            return exp;
        }
        level = level == serve::LadderLevel::Full
                    ? serve::LadderLevel::NoStreaming
                    : serve::LadderLevel::ScalarOnly;
        exp.degradation =
            level == serve::LadderLevel::NoStreaming
                ? "degraded-no-streaming"
                : "degraded-scalar-only";
    }
}

} // namespace

BatchCampaignResult
runBatchCampaign(const BatchCampaignOptions &opts)
{
    auto t0 = std::chrono::steady_clock::now();
    BatchCampaignResult res;

    // 1. Generate the TU set: one split PRNG stream per index, like
    // the differential campaign, so the set is reproducible for any
    // job count.
    support::Rng root(opts.seed);
    std::vector<serve::TuJob> jobs(
        static_cast<size_t>(opts.numTus < 0 ? 0 : opts.numTus));
    for (size_t i = 0; i < jobs.size(); i++) {
        support::Rng rng = root.split(i);
        jobs[i].id = strFormat("%04zu.c", i);
        jobs[i].source = renderProgram(generateSpec(rng));
    }
    res.tusGenerated = static_cast<int>(jobs.size());

    // 2. Deterministic poison assignment by index. Panic poison
    // always bites (the injection fires at every ladder level);
    // verifier poison only bites programs that stream, so candidates
    // where the solo compile shows no bite stay healthy — keeping
    // "quarantined == poisoned" an exact equality for CI.
    bool anyPoison =
        opts.faultRatePct > 0 &&
        (opts.injectPanicTu || opts.injectVerifierBug);
    int stride = anyPoison
                     ? (opts.faultRatePct >= 100
                            ? 1
                            : 100 / opts.faultRatePct)
                     : 0;
    int verifyNoBite = 0;
    bool nextIsPanic = opts.injectPanicTu;
    for (size_t i = 0; anyPoison && i < jobs.size(); i++) {
        if (static_cast<int>(i % stride) != stride - 1)
            continue;
        if (nextIsPanic) {
            jobs[i].injectPanic = true;
            res.poisonedPanic++;
        } else {
            Expectation probe = soloExpect(jobs[i].source, false, true);
            if (probe.status == serve::TuStatus::OkDegraded ||
                probe.status == serve::TuStatus::Failed) {
                jobs[i].injectVerifierBug = true;
                res.poisonedVerify++;
                if (probe.status == serve::TuStatus::OkDegraded)
                    res.verifyBit++;
            } else {
                verifyNoBite++;
            }
        }
        if (opts.injectPanicTu && opts.injectVerifierBug)
            nextIsPanic = !nextIsPanic;
    }
    res.healthy = res.tusGenerated - res.poisonedPanic -
                  res.poisonedVerify;

    // 3. Solo expectations for every TU (sequential, no pool).
    std::vector<Expectation> expect(jobs.size());
    for (size_t i = 0; i < jobs.size(); i++) {
        expect[i] = soloExpect(jobs[i].source, jobs[i].injectPanic,
                               jobs[i].injectVerifierBug);
        if (opts.progress && (i + 1) % 50 == 0)
            std::fprintf(stderr,
                         "wmfuzz: batch-campaign solo %zu/%zu\n",
                         i + 1, jobs.size());
    }

    // 4. Optionally materialize the TU set for `wmc --batch`.
    if (!opts.batchDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.batchDir, ec);
        std::string manifest;
        for (const serve::TuJob &j : jobs) {
            std::ofstream f(opts.batchDir + "/" + j.id);
            f << j.source;
            manifest += j.id;
            if (j.injectPanic)
                manifest += " inject-panic";
            if (j.injectVerifierBug)
                manifest += " inject-verifier-bug";
            manifest += "\n";
        }
        res.manifestPath = opts.batchDir + "/MANIFEST";
        std::ofstream mf(res.manifestPath);
        mf << "# wmfuzz --batch-campaign seed=" << opts.seed << "\n"
           << manifest;
    }

    // 5. The audited run: the whole set through the batch runner.
    serve::BatchOptions bo;
    bo.base = campaignBase();
    bo.jobs = opts.jobs;
    bo.tuTimeoutMs = opts.tuTimeoutMs;
    bo.maxRetries = opts.maxRetries;
    res.report = serve::runBatch(jobs, bo);

    // 6. Audit every TU against its solo expectation.
    auto problem = [&res](std::string p) {
        res.problems.push_back(std::move(p));
    };
    for (size_t i = 0; i < jobs.size(); i++) {
        const serve::TuRecord &r = res.report.tus[i];
        const Expectation &e = expect[i];
        if (r.id != jobs[i].id) {
            problem(strFormat("record %zu out of order: got %s", i,
                              r.id.c_str()));
            continue;
        }
        if (r.status != e.status) {
            problem(strFormat(
                "%s: expected %s, batch reported %s (%s)",
                r.id.c_str(), serve::tuStatusName(e.status),
                serve::tuStatusName(r.status),
                r.failure.signature.c_str()));
            continue;
        }
        if ((e.status == serve::TuStatus::Ok ||
             e.status == serve::TuStatus::OkDegraded) &&
            r.artifactHash != e.hash)
            problem(strFormat(
                "%s: artifact differs from solo compile "
                "(batch %016llx vs solo %016llx)",
                r.id.c_str(),
                static_cast<unsigned long long>(r.artifactHash),
                static_cast<unsigned long long>(e.hash)));
        if (r.degradation != e.degradation)
            problem(strFormat(
                "%s: expected degradation '%s', got '%s'",
                r.id.c_str(), e.degradation.c_str(),
                r.degradation.c_str()));
        if (e.panicSignature &&
            r.failure.signature.rfind("panic@", 0) != 0)
            problem(strFormat(
                "%s: expected a panic@ signature, got '%s'",
                r.id.c_str(), r.failure.signature.c_str()));
    }
    int expectedQuarantined = res.poisonedPanic + res.poisonedVerify;
    if (res.report.quarantined() != expectedQuarantined)
        problem(strFormat(
            "quarantine drift: batch quarantined %d, poisoned %d",
            res.report.quarantined(), expectedQuarantined));
    if (verifyNoBite > 0 && opts.progress)
        std::fprintf(stderr,
                     "wmfuzz: %d verifier-poison candidates did not "
                     "bite (left healthy)\n",
                     verifyNoBite);

    res.elapsedSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return res;
}

void
writeBatchCampaignJson(obs::JsonWriter &w,
                       const BatchCampaignOptions &opts,
                       const BatchCampaignResult &res)
{
    w.beginObject();
    w.field("schema_version", 1);
    w.field("kind", "wmfuzz-batch-campaign");
    w.key("options");
    w.beginObject();
    w.field("seed", static_cast<uint64_t>(opts.seed));
    w.field("num_tus", opts.numTus);
    w.field("jobs", opts.jobs);
    w.field("fault_rate_pct", opts.faultRatePct);
    w.field("inject_panic_tu", opts.injectPanicTu);
    w.field("inject_verifier_bug", opts.injectVerifierBug);
    w.field("tu_timeout_ms", opts.tuTimeoutMs);
    w.field("max_retries", opts.maxRetries);
    w.endObject();
    w.field("tus_generated", res.tusGenerated);
    w.field("poisoned_panic", res.poisonedPanic);
    w.field("poisoned_verify", res.poisonedVerify);
    w.field("verify_bit", res.verifyBit);
    w.field("healthy", res.healthy);
    w.field("expected_quarantined",
            res.poisonedPanic + res.poisonedVerify);
    w.field("clean", res.clean());
    w.field("elapsed_seconds", res.elapsedSeconds);
    if (!res.manifestPath.empty())
        w.field("manifest", res.manifestPath);
    w.key("problems");
    w.beginArray();
    for (const std::string &p : res.problems)
        w.value(p);
    w.endArray();
    w.key("batch_report");
    res.report.writeJson(w);
    w.endObject();
}

} // namespace wmstream::fuzz
