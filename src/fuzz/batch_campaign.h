/**
 * @file
 * Fault-injection campaign for the serve batch runner — wmfuzz's
 * fourth mode (`wmfuzz --batch-campaign`).
 *
 * Where the differential campaign asks "does the compiler miscompile
 * any generated program?", the batch campaign asks "does one broken
 * TU ever hurt its neighbours?". It generates N loop programs from a
 * seed, deterministically poisons a fixed fraction with the hidden
 * fault-injection flags (`--inject-panic-tu` plants an InternalError
 * mid-pipeline at every degradation level; `--inject-verifier-bug`
 * plants a dropped stream dequeue the verify-each oracle catches and
 * the ladder rescues by disabling streaming), then compiles the whole
 * set through serve::runBatch and checks three properties:
 *
 *  - isolation: every healthy TU compiles ok, with an artifact
 *    bit-identical (FNV-1a 64 over the printed assembly) to a solo
 *    driver::compile of the same source;
 *  - quarantine: every panic-poisoned TU lands in a typed `failed`
 *    record with a "panic@file:line" signature — and nothing else
 *    does;
 *  - rescue: every verifier-poisoned TU where the planted bug bites
 *    ends `ok_degraded` at the no-streaming rung, bit-identical to a
 *    solo no-streaming compile; where the bug cannot bite (the
 *    program never streamed) the TU stays plain `ok`.
 *
 * Expectations come from sequential solo compiles, so the check is
 * independent of the batch machinery it is auditing. Any violated
 * property becomes a line in `problems`; CI fails the campaign when
 * problems is non-empty or the quarantine count drifts from the
 * poison count.
 */

#ifndef WMSTREAM_FUZZ_BATCH_CAMPAIGN_H
#define WMSTREAM_FUZZ_BATCH_CAMPAIGN_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "serve/batch.h"

namespace wmstream::fuzz {

struct BatchCampaignOptions
{
    uint64_t seed = 1;
    int numTus = 300;
    int jobs = 1;
    /** Percentage of TUs to poison (deterministic by index); 0
     *  disables poisoning even when the inject flags are set. */
    int faultRatePct = 5;
    /** Arm `--inject-panic-tu` poisoning (unrescuable panics). */
    bool injectPanicTu = false;
    /** Arm `--inject-verifier-bug` poisoning (ladder-rescuable). */
    bool injectVerifierBug = false;
    int tuTimeoutMs = 0; ///< per-TU deadline forwarded to the batch
    int maxRetries = 2;
    /** When set, write each TU as NNNN.c plus a MANIFEST file (with
     *  poison tokens) into this directory, so `wmc --batch` can be
     *  pointed at exactly the campaign's input. */
    std::string batchDir;
    bool progress = false;
};

struct BatchCampaignResult
{
    int tusGenerated = 0;
    int poisonedPanic = 0;
    int poisonedVerify = 0;
    /** Verifier-poisoned TUs where the planted bug actually bit in
     *  the solo compile (the program streamed something). */
    int verifyBit = 0;
    int healthy = 0;
    serve::BatchReport report;          ///< the audited batch run
    std::vector<std::string> problems;  ///< violated properties
    double elapsedSeconds = 0;
    std::string manifestPath;           ///< written when batchDir set

    bool clean() const { return problems.empty(); }
};

/** Run the campaign: generate, poison, solo-compile expectations,
 *  batch, audit. Blocks until complete. */
BatchCampaignResult runBatchCampaign(const BatchCampaignOptions &opts);

/** Serialize the campaign report (options + audit + batch report). */
void writeBatchCampaignJson(obs::JsonWriter &w,
                            const BatchCampaignOptions &opts,
                            const BatchCampaignResult &res);

} // namespace wmstream::fuzz

#endif // WMSTREAM_FUZZ_BATCH_CAMPAIGN_H
