#include "fuzz/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>

#include "frontend/parser.h"
#include "fuzz/minimize.h"
#include "interp/interp.h"
#include "support/str.h"
#include "support/thread_pool.h"
#include "timing/scalar_sim.h"

namespace wmstream::fuzz {

namespace {

// Generated programs are tiny (<= 48-element arrays, <= 3-statement
// bodies), so a well-compiled program finishes in well under a
// million cycles at any simulated latency. A genuine wedge is caught
// by the simulator's no-progress watchdog within its window; the
// cycle budget only bounds true livelocks (still making progress),
// which then classify as livelock instead of burning minutes.
constexpr uint64_t kSimMaxCycles = 2'000'000ull;
constexpr uint64_t kScalarMaxInsts = 2'000'000ull;

struct OracleResult
{
    bool ok = false;
    int64_t value = 0;
    std::string error;
};

/** Parse + interpret: the ground truth every target must match. */
OracleResult
runOracle(const std::string &source)
{
    OracleResult res;
    DiagEngine diag;
    auto unit = frontend::parseAndCheck(source, diag);
    if (!unit) {
        res.error = diag.str();
        return res;
    }
    interp::Interpreter in(*unit);
    auto r = in.run();
    if (!r.ok) {
        res.error = r.error;
        return res;
    }
    res.ok = true;
    res.value = r.returnValue;
    return res;
}

uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Compile+run @p source under @p cfg and diff against @p expect. */
CheckOutcome
checkAgainstOracle(const std::string &source, int64_t expect,
                   const FuzzConfig &cfg)
{
    CheckOutcome out;
    out.expected = expect;
    // Panic containment: a compiler panic (InternalError) during a
    // fuzz check is itself a finding, deduplicated by its
    // panic@file:line signature — it must not kill the campaign's
    // worker thread (exceptions escaping a pool job terminate the
    // process per the ThreadPool contract).
    driver::CompileResult cr;
    try {
        cr = driver::compileSource(source, cfg.opts);
    } catch (const InternalError &e) {
        out.diverged = true;
        out.kind = DivergenceKind::CompileError;
        out.detail = e.what();
        out.faultSignature = e.signature();
        return out;
    }
    if (!cr.ok) {
        out.diverged = true;
        out.kind = DivergenceKind::CompileError;
        out.detail = cr.diagnostics;
        return out;
    }
    if (!cr.verifyClean()) {
        // Third oracle: the IR verifier flagged the compiled program.
        // A compile-time verdict — no simulation needed (and none
        // wanted: the code is known-broken). Dedup by the sorted
        // unique violation signatures (reason@invariant), which are
        // program-independent, so one compiler bug folds into one
        // finding across hundreds of generated programs.
        out.diverged = true;
        out.kind = DivergenceKind::VerifyError;
        out.detail = cr.verifyText();
        out.faultSignature = verify::joinedSignature(cr.verifyReports);
        return out;
    }
    if (cfg.opts.target == rtl::MachineKind::WM) {
        // Static half of the agreement oracle: the whole-program FIFO
        // analysis renders its verdict before the simulator runs. It
        // is self-contained (reruns discipline checks itself), so it
        // works even in configurations that disable --verify, e.g.
        // the --inject-deadlock-bug self-test.
        verify::FifoRequirements fifoReq =
            verify::analyzeFifoRequirements(*cr.program, cr.traits,
                                            cfg.simCfg.dataFifoDepth);
        out.staticAnalyzed = fifoReq.analyzed;
        out.staticDeadlockFree = fifoReq.deadlockFree;
        auto res = wmsim::simulate(*cr.program, cfg.simCfg);
        if (!res.ok) {
            out.diverged = true;
            if (res.fault == wmsim::SimFault::Deadlock ||
                res.fault == wmsim::SimFault::Livelock) {
                out.kind = DivergenceKind::Deadlock;
                out.faultSignature = res.faultReport.signature();
                // Statically proven deadlock-free yet the watchdog
                // found a true deadlock (livelocks make no FIFO
                // claim): the analysis was unsound or the simulator
                // is wrong — escalate.
                if (fifoReq.deadlockFree &&
                    res.fault == wmsim::SimFault::Deadlock) {
                    out.kind = DivergenceKind::StaticFifoBreak;
                    out.detail = strFormat(
                        "static verdict was deadlock-free but the "
                        "watchdog fired: %s",
                        res.error.c_str());
                    return out;
                }
            } else {
                out.kind = DivergenceKind::RunError;
            }
            out.detail = res.error;
            return out;
        }
        out.actual = res.returnValue;
        // Chaos oracle: the same program under perturbed timing must
        // return the same architectural result.
        for (int k = 1; k <= cfg.chaosSeeds; ++k) {
            wmsim::SimConfig cc = cfg.simCfg;
            cc.chaosSeed =
                mix64(cfg.chaosBaseSeed + static_cast<uint64_t>(k));
            if (cc.chaosSeed == 0)
                cc.chaosSeed = 1;
            auto cres = wmsim::simulate(*cr.program, cc);
            if (cres.ok && cres.returnValue == res.returnValue)
                continue;
            out.diverged = true;
            out.kind = DivergenceKind::ChaosBreak;
            if (!cres.ok) {
                out.detail = strFormat("chaos seed %llu: %s",
                                       static_cast<unsigned long long>(
                                           cc.chaosSeed),
                                       cres.error.c_str());
                if (cres.fault == wmsim::SimFault::Deadlock ||
                    cres.fault == wmsim::SimFault::Livelock)
                    out.faultSignature = cres.faultReport.signature();
            } else {
                out.detail = strFormat(
                    "chaos seed %llu: returned %lld, deterministic "
                    "run returned %lld",
                    static_cast<unsigned long long>(cc.chaosSeed),
                    static_cast<long long>(cres.returnValue),
                    static_cast<long long>(res.returnValue));
                out.actual = cres.returnValue;
            }
            return out;
        }
    } else {
        auto model = timing::m88100Model();
        auto res = timing::runScalar(*cr.program, model,
                                     kScalarMaxInsts);
        if (!res.ok) {
            out.diverged = true;
            out.kind = DivergenceKind::RunError;
            out.detail = res.error;
            return out;
        }
        out.actual = res.returnValue;
    }
    if (out.actual != expect) {
        out.diverged = true;
        out.kind = DivergenceKind::Mismatch;
    }
    return out;
}

std::string
wmcFlags(const FuzzConfig &cfg)
{
    std::string f;
    if (cfg.opts.target != rtl::MachineKind::WM)
        f += " --target=68020";
    if (!cfg.opts.optimize)
        f += " --no-opt";
    if (!cfg.opts.recurrence)
        f += " --no-recurrence";
    if (!cfg.opts.streaming)
        f += " --no-streaming";
    if (cfg.opts.vectorize)
        f += " --vectorize";
    if (cfg.opts.minStreamTripCount != 4)
        f += strFormat(" --min-trip=%d", cfg.opts.minStreamTripCount);
    if (cfg.opts.injectStreamCountBug)
        f += " --inject-deadlock-bug";
    if (cfg.opts.injectVerifierBug)
        f += " --inject-verifier-bug";
    if (cfg.opts.verify == driver::VerifyMode::Each)
        f += " --verify=each";
    else if (cfg.opts.verify == driver::VerifyMode::Final)
        f += " --verify=final";
    if (cfg.opts.target == rtl::MachineKind::WM)
        f += strFormat(" --mem-latency=%d --fifo-depth=%d",
                       cfg.simCfg.memLatency, cfg.simCfg.dataFifoDepth);
    return f;
}

} // anonymous namespace

const char *
divergenceKindName(DivergenceKind k)
{
    switch (k) {
      case DivergenceKind::Mismatch: return "mismatch";
      case DivergenceKind::CompileError: return "compile_error";
      case DivergenceKind::RunError: return "run_error";
      case DivergenceKind::OracleError: return "oracle_error";
      case DivergenceKind::Deadlock: return "deadlock";
      case DivergenceKind::ChaosBreak: return "chaos_break";
      case DivergenceKind::VerifyError: return "verify_error";
      case DivergenceKind::StaticFifoBreak: return "static_fifo_break";
    }
    return "unknown";
}

std::vector<FuzzConfig>
configMatrix(uint64_t programIndex, bool injectRecurrenceBug,
             bool injectStreamCountBug, int chaosSeeds,
             bool injectVerifierBug)
{
    std::vector<FuzzConfig> configs;

    // The verifier oracle runs in every configuration, except under
    // the fault-injection self-tests: each planted miscompile must
    // reach the oracle it exists to prove (the watchdog for the
    // deadlock bug, the differential diff for the recurrence bug),
    // and the static linter would now reject both at compile time
    // first — the stream under-count as stream-count-mismatch, the
    // illegal same-cell rewrite as use-before-def.
    driver::VerifyMode verify =
        injectStreamCountBug || injectRecurrenceBug
            ? driver::VerifyMode::Off
            : driver::VerifyMode::Each;

    wmsim::SimConfig simCfg;
    simCfg.maxCycles = kSimMaxCycles;
    // Vary the machine a little, keyed by the program index, exactly
    // like the original loopfuzz test varied it by seed.
    simCfg.memLatency = 1 + static_cast<int>(programIndex % 9);
    simCfg.dataFifoDepth = 2 + static_cast<int>(programIndex % 7);

    auto wm = [&](bool rec, bool stream) {
        FuzzConfig c;
        c.opts.target = rtl::MachineKind::WM;
        c.opts.recurrence = rec;
        c.opts.streaming = stream;
        c.opts.vectorize = stream && (programIndex & 1);
        // Stress the streaming threshold too.
        c.opts.minStreamTripCount = programIndex % 3 == 0 ? 0 : 4;
        c.opts.injectRecurrenceDistanceBug = injectRecurrenceBug;
        c.opts.injectStreamCountBug = injectStreamCountBug;
        c.opts.injectVerifierBug = injectVerifierBug;
        c.opts.verify = verify;
        c.simCfg = simCfg;
        c.chaosSeeds = chaosSeeds;
        c.chaosBaseSeed = mix64(programIndex ^ 0x5DEECE66Dull);
        c.key = "wm/";
        c.key += rec ? "rec" : "norec";
        c.key += stream ? "+stream" : "";
        c.key += c.opts.vectorize ? "+vec" : "";
        configs.push_back(std::move(c));
    };
    for (bool rec : {false, true})
        for (bool stream : {false, true})
            wm(rec, stream);

    {
        // Completely unoptimized WM compilation: the baseline no
        // transform should ever be able to break.
        FuzzConfig c;
        c.opts.target = rtl::MachineKind::WM;
        c.opts.optimize = false;
        c.opts.recurrence = false;
        c.opts.streaming = false;
        c.opts.injectRecurrenceDistanceBug = injectRecurrenceBug;
        c.opts.verify = verify;
        c.simCfg = simCfg;
        c.chaosSeeds = chaosSeeds;
        c.chaosBaseSeed = mix64(programIndex ^ 0x5DEECE66Dull);
        c.key = "wm/noopt";
        configs.push_back(std::move(c));
    }

    for (bool rec : {false, true}) {
        FuzzConfig c;
        c.opts.target = rtl::MachineKind::Scalar;
        c.opts.recurrence = rec;
        c.opts.streaming = false;
        c.opts.injectRecurrenceDistanceBug = injectRecurrenceBug;
        c.opts.verify = verify;
        c.key = rec ? "scalar/rec" : "scalar/norec";
        configs.push_back(std::move(c));
    }
    return configs;
}

CheckOutcome
checkSpec(const ProgramSpec &spec, const FuzzConfig &cfg)
{
    std::string source = renderProgram(spec);
    auto oracle = runOracle(source);
    if (!oracle.ok) {
        CheckOutcome out;
        out.diverged = true;
        out.kind = DivergenceKind::OracleError;
        out.detail = oracle.error;
        return out;
    }
    return checkAgainstOracle(source, oracle.value, cfg);
}

std::string
divergenceSignature(const ProgramSpec &spec, const FuzzConfig &cfg,
                    const CheckOutcome &outcome)
{
    // Deadlocks and livelocks dedup by the wait-for-graph shape the
    // watchdog reported, not by program structure: one FIFO-imbalance
    // bug wedges hundreds of generated programs the same way.
    if (!outcome.faultSignature.empty())
        return cfg.key + '/' + divergenceKindName(outcome.kind) + ':' +
               outcome.faultSignature;
    // Structural features the loop transforms key on. Offsets are
    // expressed as iteration distances (normalized by direction) so
    // an up-loop and a down-loop instance of the same bug collide.
    std::set<std::string> tags;
    for (const StmtSpec &s : spec.stmts) {
        auto srcTag = [&](int src, int off) {
            if (src != s.dst)
                return;
            int d = s.dstOff - off;
            if (d == 0) {
                tags.insert("cell0");
            } else {
                int dist = spec.countUp ? d : -d;
                tags.insert(strFormat("carry%+d", dist));
            }
        };
        srcTag(s.src1, s.off1);
        srcTag(s.src2, s.off2);
        if (s.conditional)
            tags.insert("cond");
        if (s.accumulate)
            tags.insert("acc");
    }
    std::string sig = cfg.key;
    sig += '/';
    sig += divergenceKindName(outcome.kind);
    for (const std::string &t : tags) {
        sig += ':';
        sig += t;
    }
    return sig;
}

CampaignResult
runCampaign(const CampaignOptions &opts)
{
    CampaignResult res;
    auto t0 = std::chrono::steady_clock::now();

    support::Rng root(opts.seed);
    support::ThreadPool pool(opts.jobs);

    struct RawDivergence
    {
        uint64_t programIndex;
        ProgramSpec spec;
        FuzzConfig config;
        CheckOutcome outcome;
        std::string signature;
    };
    std::mutex mu;
    std::vector<RawDivergence> raw;
    std::atomic<uint64_t> digest{0};
    std::atomic<int64_t> checks{0};
    std::atomic<int64_t> programsDone{0};
    std::atomic<int> divergenceCount{0};
    std::atomic<int64_t> staticFree{0};
    std::atomic<int64_t> staticFlagged{0};

    support::parallelFor(
        pool, opts.maxPrograms, [&](int64_t p) {
            auto idx = static_cast<uint64_t>(p);
            support::Rng rng = root.split(idx);
            ProgramSpec spec = generateSpec(rng);
            std::string source = renderProgram(spec);
            // XOR-accumulated so the digest is independent of the
            // order workers finish in.
            digest.fetch_xor(mix64(fnv1a64(source) ^ (idx * 2 + 1)),
                             std::memory_order_relaxed);

            auto oracle = runOracle(source);
            for (const FuzzConfig &cfg :
                 configMatrix(idx, opts.injectRecurrenceBug,
                              opts.injectStreamCountBug,
                              opts.chaosSeeds,
                              opts.injectVerifierBug)) {
                CheckOutcome out;
                if (!oracle.ok) {
                    out.diverged = true;
                    out.kind = DivergenceKind::OracleError;
                    out.detail = oracle.error;
                } else {
                    out = checkAgainstOracle(source, oracle.value, cfg);
                }
                checks.fetch_add(1, std::memory_order_relaxed);
                if (out.staticAnalyzed) {
                    auto &tally =
                        out.staticDeadlockFree ? staticFree
                                               : staticFlagged;
                    tally.fetch_add(1, std::memory_order_relaxed);
                }
                if (out.diverged) {
                    RawDivergence d{idx, spec, cfg, out,
                                    divergenceSignature(spec, cfg, out)};
                    divergenceCount.fetch_add(1);
                    std::lock_guard<std::mutex> lock(mu);
                    raw.push_back(std::move(d));
                }
                if (!oracle.ok)
                    break; // one oracle_error per program is enough
            }
            int64_t done = programsDone.fetch_add(1) + 1;
            if (opts.progress && done % 100 == 0)
                std::fprintf(stderr,
                             "wmfuzz: %lld/%d programs, %d divergences\n",
                             static_cast<long long>(done),
                             opts.maxPrograms, divergenceCount.load());
        });

    res.programsRun = opts.maxPrograms;
    res.checksRun = checks.load();
    res.streamDigest = digest.load();
    res.rawDivergences = static_cast<int>(raw.size());
    res.staticDeadlockFree = staticFree.load();
    res.staticFlagged = staticFlagged.load();

    // Deduplicate by signature; the exemplar is the lowest program
    // index so the report is deterministic for any worker count.
    std::map<std::string, Divergence> unique;
    for (RawDivergence &d : raw) {
        auto it = unique.find(d.signature);
        if (it == unique.end()) {
            Divergence u;
            u.programIndex = d.programIndex;
            u.signature = d.signature;
            u.kind = d.outcome.kind;
            u.expected = d.outcome.expected;
            u.actual = d.outcome.actual;
            u.detail = d.outcome.detail;
            u.spec = d.spec;
            u.config = d.config;
            unique.emplace(d.signature, std::move(u));
        } else {
            Divergence &u = it->second;
            ++u.duplicates;
            if (d.programIndex < u.programIndex) {
                int dup = u.duplicates;
                u = Divergence{};
                u.programIndex = d.programIndex;
                u.signature = d.signature;
                u.kind = d.outcome.kind;
                u.expected = d.outcome.expected;
                u.actual = d.outcome.actual;
                u.detail = d.outcome.detail;
                u.spec = d.spec;
                u.config = d.config;
                u.duplicates = dup;
            }
        }
    }
    for (auto &kv : unique)
        res.divergences.push_back(std::move(kv.second));

    // Minimize each unique divergence (in parallel; each minimization
    // is an independent sequence of compile+run probes).
    if (opts.minimize && !res.divergences.empty()) {
        support::parallelFor(
            pool, static_cast<int64_t>(res.divergences.size()),
            [&](int64_t i) {
                Divergence &d =
                    res.divergences[static_cast<size_t>(i)];
                auto pred = [&d](const ProgramSpec &cand) {
                    auto out = checkSpec(cand, d.config);
                    return out.diverged && out.kind == d.kind;
                };
                // The raw divergence re-checks deterministically, so
                // pred(spec) holds; minimize from there.
                auto m = minimizeSpec(d.spec, pred);
                d.minimizedSpec = m.spec;
                d.minimizeAttempts = m.attempts;
                // Refresh expected/actual for the minimized program.
                auto out = checkSpec(d.minimizedSpec, d.config);
                d.expected = out.expected;
                d.actual = out.actual;
                d.detail = out.detail;
            });
    } else {
        for (Divergence &d : res.divergences)
            d.minimizedSpec = d.spec;
    }

    // Emit reproducer files.
    if (!opts.reproDir.empty() && !res.divergences.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.reproDir, ec);
        int n = 0;
        for (Divergence &d : res.divergences) {
            d.reproPath = strFormat("%s/repro-%03d-%s.c",
                                    opts.reproDir.c_str(), n++,
                                    divergenceKindName(d.kind));
            std::ofstream f(d.reproPath);
            f << renderReproducer(d, opts);
        }
    }

    res.elapsedSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return res;
}

std::string
renderReproducer(const Divergence &d, const CampaignOptions &opts)
{
    std::string out = "/*\n";
    out += strFormat(" * wmfuzz reproducer: %s under %s\n",
                     divergenceKindName(d.kind), d.config.key.c_str());
    out += strFormat(" * signature: %s\n", d.signature.c_str());
    if (d.kind == DivergenceKind::Mismatch)
        out += strFormat(" * oracle (interp) says %lld, target says "
                         "%lld\n",
                         static_cast<long long>(d.expected),
                         static_cast<long long>(d.actual));
    else if (!d.detail.empty())
        out += strFormat(" * error: %s\n",
                         trimString(d.detail).c_str());
    std::string extraFlags;
    if (opts.injectRecurrenceBug)
        extraFlags += " --inject-recurrence-bug";
    if (opts.injectStreamCountBug)
        extraFlags += " --inject-deadlock-bug";
    if (opts.injectVerifierBug)
        extraFlags += " --inject-verifier-bug";
    if (opts.chaosSeeds > 0)
        extraFlags += strFormat(" --chaos-seeds=%d", opts.chaosSeeds);
    out += strFormat(" * found by: wmfuzz --seed=%llu "
                     "--max-programs=%d%s (program #%llu, %d "
                     "duplicates folded)\n",
                     static_cast<unsigned long long>(opts.seed),
                     opts.maxPrograms, extraFlags.c_str(),
                     static_cast<unsigned long long>(d.programIndex),
                     d.duplicates);
    out += strFormat(" * re-check: wmc --run%s <this file>\n",
                     wmcFlags(d.config).c_str());
    out += " */\n";
    out += renderProgram(d.minimizedSpec);
    return out;
}

void
writeCampaignJson(obs::JsonWriter &w, const CampaignOptions &opts,
                  const CampaignResult &res)
{
    w.beginObject();
    w.field("schema_version", int64_t{1});
    w.key("campaign");
    w.beginObject();
    w.field("seed", static_cast<uint64_t>(opts.seed));
    w.field("max_programs", opts.maxPrograms);
    w.field("jobs", opts.jobs);
    w.field("inject_recurrence_bug", opts.injectRecurrenceBug);
    w.field("inject_deadlock_bug", opts.injectStreamCountBug);
    w.field("inject_verifier_bug", opts.injectVerifierBug);
    w.field("chaos_seeds", static_cast<int64_t>(opts.chaosSeeds));
    w.field("minimize", opts.minimize);
    w.endObject();
    w.field("programs_run", res.programsRun);
    w.field("checks_run", res.checksRun);
    w.field("elapsed_seconds", res.elapsedSeconds);
    w.field("programs_per_second",
            res.elapsedSeconds > 0
                ? res.programsRun / res.elapsedSeconds
                : 0.0);
    w.field("stream_digest",
            strFormat("%016llx", static_cast<unsigned long long>(
                                     res.streamDigest)));
    w.field("static_deadlock_free", res.staticDeadlockFree);
    w.field("static_flagged", res.staticFlagged);
    w.field("raw_divergences", res.rawDivergences);
    w.field("unique_divergences",
            static_cast<int64_t>(res.divergences.size()));
    w.key("divergences");
    w.beginArray();
    for (const Divergence &d : res.divergences) {
        w.beginObject();
        w.field("signature", d.signature);
        w.field("config", d.config.key);
        w.field("kind", divergenceKindName(d.kind));
        w.field("program_index", static_cast<uint64_t>(d.programIndex));
        w.field("duplicates", d.duplicates);
        if (d.kind == DivergenceKind::Mismatch) {
            w.field("expected", d.expected);
            w.field("actual", d.actual);
        }
        if (!d.detail.empty())
            w.field("detail", d.detail);
        w.field("original_lines",
                sourceLineCount(renderProgram(d.spec)));
        w.field("minimized_lines",
                sourceLineCount(renderProgram(d.minimizedSpec)));
        w.field("minimize_attempts", d.minimizeAttempts);
        if (!d.reproPath.empty())
            w.field("repro_path", d.reproPath);
        w.field("minimized_source", renderProgram(d.minimizedSpec));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace wmstream::fuzz
