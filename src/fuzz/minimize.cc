#include "fuzz/minimize.h"

#include <cmath>
#include <cstddef>
#include <cstdlib>

#include "support/diag.h"

namespace wmstream::fuzz {

namespace {

/** Try @p candidate; on success commit it to @p spec. */
bool
tryCandidate(ProgramSpec &spec, const ProgramSpec &candidate,
             const DivergePredicate &stillDiverges, MinimizeResult &res)
{
    ++res.attempts;
    if (!stillDiverges(candidate))
        return false;
    spec = candidate;
    ++res.accepted;
    return true;
}

} // anonymous namespace

MinimizeResult
minimizeSpec(const ProgramSpec &start, const DivergePredicate &stillDiverges)
{
    WS_ASSERT(stillDiverges(start),
              "minimizeSpec: input does not diverge");
    MinimizeResult res;
    res.spec = start;
    ProgramSpec &spec = res.spec;

    bool changed = true;
    while (changed) {
        changed = false;

        // 1. Drop whole statements, last first (erase indexes stay
        //    valid), keeping at least one.
        for (size_t i = spec.stmts.size(); i-- > 0 &&
                                           spec.stmts.size() > 1;) {
            ProgramSpec cand = spec;
            cand.stmts.erase(cand.stmts.begin() +
                             static_cast<ptrdiff_t>(i));
            changed |= tryCandidate(spec, cand, stillDiverges, res);
        }

        // 2. Clear per-statement decorations.
        for (size_t i = 0; i < spec.stmts.size(); ++i) {
            if (spec.stmts[i].conditional) {
                ProgramSpec cand = spec;
                cand.stmts[i].conditional = false;
                changed |= tryCandidate(spec, cand, stillDiverges, res);
            }
            if (spec.stmts[i].accumulate) {
                ProgramSpec cand = spec;
                cand.stmts[i].accumulate = false;
                changed |= tryCandidate(spec, cand, stillDiverges, res);
            }
        }

        // 3. Merge source arrays into the destination: a reproducer
        //    that touches one array renders to far fewer lines.
        //    (Fields are re-read from `spec` after every commit; a
        //    successful tryCandidate replaces the whole spec.)
        for (size_t i = 0; i < spec.stmts.size(); ++i) {
            if (spec.stmts[i].src1 != spec.stmts[i].dst) {
                ProgramSpec cand = spec;
                cand.stmts[i].src1 = cand.stmts[i].dst;
                changed |= tryCandidate(spec, cand, stillDiverges, res);
            }
            if (spec.stmts[i].src2 != spec.stmts[i].dst) {
                ProgramSpec cand = spec;
                cand.stmts[i].src2 = cand.stmts[i].dst;
                changed |= tryCandidate(spec, cand, stillDiverges, res);
            }
        }

        // 4. Canonicalize offsets. Termination note: every offset
        //    transform strictly decreases sum(|offset|) over the
        //    spec (the other passes strictly decrease statement
        //    count, set flags to false, or merge arrays), so the
        //    outer fixpoint loop is well-founded.
        auto offField = [](StmtSpec &s, int which) -> int & {
            return which == 0 ? s.dstOff : which == 1 ? s.off1 : s.off2;
        };
        for (size_t i = 0; i < spec.stmts.size(); ++i) {
            // 4a. Translate the whole statement so the destination
            //     offset becomes 0: relative (loop-carried) distances
            //     are preserved, so a divergence that keys on them
            //     usually survives.
            {
                int d = spec.stmts[i].dstOff;
                int a0 = std::abs(d) + std::abs(spec.stmts[i].off1) +
                         std::abs(spec.stmts[i].off2);
                int a1 = std::abs(spec.stmts[i].off1 - d) +
                         std::abs(spec.stmts[i].off2 - d);
                if (d != 0 && a1 < a0) {
                    ProgramSpec cand = spec;
                    cand.stmts[i].dstOff = 0;
                    cand.stmts[i].off1 -= d;
                    cand.stmts[i].off2 -= d;
                    changed |=
                        tryCandidate(spec, cand, stillDiverges, res);
                }
            }
            // 4b. Zero individual offsets.
            for (int which = 0; which < 3; ++which) {
                if (offField(spec.stmts[i], which) == 0)
                    continue;
                ProgramSpec cand = spec;
                offField(cand.stmts[i], which) = 0;
                changed |= tryCandidate(spec, cand, stillDiverges, res);
            }
            // 4c. Pull source offsets onto the destination offset
            //     (collapses a near-miss into a same-cell pair); only
            //     when that shrinks the magnitude, or 4b/4c would
            //     oscillate.
            for (int which = 1; which < 3; ++which) {
                int d = spec.stmts[i].dstOff;
                int off = offField(spec.stmts[i], which);
                if (off == d || std::abs(d) >= std::abs(off))
                    continue;
                ProgramSpec cand = spec;
                offField(cand.stmts[i], which) = d;
                changed |= tryCandidate(spec, cand, stillDiverges, res);
            }
        }

        // 5. Canonicalize operator and loop direction.
        for (size_t i = 0; i < spec.stmts.size(); ++i) {
            if (spec.stmts[i].subtract) {
                ProgramSpec cand = spec;
                cand.stmts[i].subtract = false;
                changed |= tryCandidate(spec, cand, stillDiverges, res);
            }
        }
        if (!spec.countUp) {
            ProgramSpec cand = spec;
            cand.countUp = true;
            changed |= tryCandidate(spec, cand, stillDiverges, res);
        }

        // 6. Shrink the arrays (and with them the trip count):
        //    smallest first, then coarse intermediate sizes.
        for (int size : {kMinArraySize, 12, 16, 24, 32}) {
            if (size >= spec.arraySize)
                break;
            ProgramSpec cand = spec;
            cand.arraySize = size;
            if (tryCandidate(spec, cand, stillDiverges, res)) {
                changed = true;
                break;
            }
        }
    }
    return res;
}

} // namespace wmstream::fuzz
