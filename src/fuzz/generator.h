/**
 * @file
 * Random loop-program generation for differential fuzzing.
 *
 * Lifted out of tests/loopfuzz_test.cc so the bounded in-gtest fuzz,
 * the wmfuzz campaign runner, and the reproducer minimizer all share
 * one generator. The generator is split into two stages:
 *
 *   1. generateSpec(rng)  — draw a structured ProgramSpec: loop
 *      direction, array size, and a list of statement descriptors
 *      (destination/source arrays, affine offsets, operator,
 *      conditional guard, accumulator tap);
 *   2. renderProgram(spec) — deterministically render the spec to
 *      mini-C source.
 *
 * The split is what makes delta-debugging minimization possible: the
 * minimizer edits the spec (drop a statement, shrink the arrays,
 * merge source arrays into the destination) and re-renders, instead
 * of fighting with text.
 *
 * Programs are adversarial for the recurrence and streaming passes:
 * random loop-carried distances, negative-direction loops, multiple
 * arrays, conditional bodies, and reductions. Index expressions stay
 * in bounds by construction: the loop runs over [4, n-4) and offsets
 * are in [-4, 4].
 */

#ifndef WMSTREAM_FUZZ_GENERATOR_H
#define WMSTREAM_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"

namespace wmstream::fuzz {

/** Number of arrays a spec can reference (named A, B, C). */
constexpr int kNumArrays = 3;

/** Smallest legal array size: the loop body [4, n-4) runs once. */
constexpr int kMinArraySize = 9;

/** One loop-body statement: dst[i+dstOff] = src1[i+off1] op src2[i+off2]. */
struct StmtSpec
{
    int dst = 0;             ///< destination array, 0..kNumArrays-1
    int dstOff = 0;          ///< in [-2, 2]
    int src1 = 0, off1 = 0;  ///< first operand, offset in [-4, 4]
    int src2 = 0, off2 = 0;  ///< second operand, offset in [-4, 4]
    bool subtract = false;   ///< op: false '+', true '-'
    bool conditional = false;///< guard with `if ((i & 1) == 0)`
    bool accumulate = false; ///< follow with `acc = acc + dst[i+dstOff]`
};

/** A whole generated program, ready to render or to minimize. */
struct ProgramSpec
{
    int arraySize = 48;         ///< n; all arrays have this size
    bool countUp = true;        ///< loop direction
    std::vector<StmtSpec> stmts;

    bool usesArray(int a) const;
};

/** Draw a random spec from @p rng (advances it). */
ProgramSpec generateSpec(support::Rng &rng);

/**
 * Render @p spec to mini-C source. Deterministic; only arrays the
 * spec references are declared, initialized, and checksummed, so
 * minimized reproducers stay small.
 */
std::string renderProgram(const ProgramSpec &spec);

/**
 * Count the non-blank lines of @p source — the "size" the minimizer
 * and its golden tests talk about.
 */
int sourceLineCount(const std::string &source);

} // namespace wmstream::fuzz

#endif // WMSTREAM_FUZZ_GENERATOR_H
