/**
 * @file
 * Parallel differential-fuzzing campaigns.
 *
 * A campaign draws `maxPrograms` random loop programs from a single
 * seed (one split PRNG stream per program index, so the program
 * stream is identical for any worker count), compiles each in every
 * CompileOptions configuration for both targets — the WM machine run
 * on the cycle simulator and the scalar target run on the executing
 * timing model — and diffs every result against the AST interpreter
 * oracle.
 *
 * Divergences (checksum mismatches, compile errors, runtime errors)
 * are deduplicated by (pass configuration, divergence signature); one
 * exemplar per signature is shrunk by the delta-debugging minimizer
 * (fuzz/minimize.h) and optionally written out as a self-contained
 * reproducer .c file. The whole campaign serializes to JSON via the
 * src/obs writer for CI artifact upload.
 *
 * Thread model: program indices are claimed from an atomic counter by
 * a support::ThreadPool; each worker compiles and simulates with
 * function-local state only (the compiler builds one DiagEngine per
 * compile; see DESIGN.md §9 for the reentrancy audit), so the only
 * shared mutations are the divergence list (mutex) and a couple of
 * atomic counters.
 */

#ifndef WMSTREAM_FUZZ_CAMPAIGN_H
#define WMSTREAM_FUZZ_CAMPAIGN_H

#include <cstdint>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "fuzz/generator.h"
#include "obs/json.h"
#include "wmsim/sim.h"

namespace wmstream::fuzz {

/** One compile-and-run configuration to diff against the oracle. */
struct FuzzConfig
{
    std::string key;             ///< stable id, e.g. "wm/rec+stream"
    driver::CompileOptions opts;
    wmsim::SimConfig simCfg;     ///< used when opts.target == WM
    /**
     * Chaos oracle: after a clean deterministic WM run, re-simulate
     * with this many chaos seeds (derived from chaosBaseSeed) and
     * require bit-identical return values — timing perturbation must
     * never change architectural results.
     */
    int chaosSeeds = 0;
    uint64_t chaosBaseSeed = 0;
};

/**
 * The standard configuration matrix for program @p programIndex:
 * WM with recurrence × streaming (plus vectorization and trip-count
 * threshold variation keyed off the index), and the scalar target
 * with recurrence on/off. Simulator parameters (memory latency, FIFO
 * depth) are varied deterministically by index, like the original
 * loopfuzz test. @p injectRecurrenceBug threads the fault-injection
 * flag into every configuration (it only bites where recurrence runs);
 * @p injectStreamCountBug likewise threads the deadlock self-test
 * miscompile (it only bites where streaming runs). @p chaosSeeds > 0
 * arms the chaos determinism oracle on every WM configuration.
 * @p injectVerifierBug threads the IR verifier's self-test miscompile
 * (a dropped stream dequeue; it only bites where streaming runs).
 *
 * Every configuration also arms the IR verifier (--verify=each) as a
 * third oracle — a verifier violation is a divergence even when the
 * program would have simulated correctly — except when
 * @p injectStreamCountBug or @p injectRecurrenceBug is set: those
 * self-tests need their planted miscompiles to reach the watchdog and
 * the differential diff respectively, and the verifier would now
 * catch both statically first.
 */
std::vector<FuzzConfig> configMatrix(uint64_t programIndex,
                                     bool injectRecurrenceBug,
                                     bool injectStreamCountBug = false,
                                     int chaosSeeds = 0,
                                     bool injectVerifierBug = false);

enum class DivergenceKind : uint8_t {
    Mismatch,     ///< compiled result != oracle checksum
    CompileError, ///< compiler rejected a generator-valid program
    RunError,     ///< simulator/timing model failed or timed out
    OracleError,  ///< the interpreter itself failed (generator bug)
    Deadlock,     ///< watchdog fault (deadlock or livelock) in wmsim
    ChaosBreak,   ///< chaos-perturbed run changed the result
    VerifyError,  ///< IR verifier violation (compile-time oracle)
    /**
     * Agreement oracle: the static FIFO analysis proved the program
     * deadlock-free, yet the simulator watchdog reported a deadlock.
     * One of the two is wrong — an unsoundness in the static
     * analysis or a simulator bug — so this outranks a plain
     * Deadlock. Deduplicated by the watchdog's wait-for-graph
     * signature, like Deadlock. (The converse — statically
     * not-proven but a clean run — is expected incompleteness, not
     * a divergence.)
     */
    StaticFifoBreak,
};

const char *divergenceKindName(DivergenceKind k);

/** Outcome of checking one spec under one configuration. */
struct CheckOutcome
{
    bool diverged = false;
    DivergenceKind kind = DivergenceKind::Mismatch;
    int64_t expected = 0;
    int64_t actual = 0;
    std::string detail; ///< compiler/simulator error text
    /**
     * FaultReport::signature() when the simulator reported a deadlock
     * or livelock: the wait-for-graph shape, used as the dedup key so
     * one FIFO-imbalance bug folds into one finding across programs.
     * For VerifyError: the sorted unique verifier-violation signatures
     * (reason@invariant), program-independent for the same dedup
     * purpose.
     */
    std::string faultSignature;
    /**
     * Static FIFO agreement oracle (WM configurations): whether
     * analyzeFifoRequirements ran on the compiled program, and its
     * verdict. Aggregated into CampaignResult so CI can assert the
     * sweep really exercised both verdicts (e.g. that every
     * --inject-deadlock-bug compile was flagged statically).
     */
    bool staticAnalyzed = false;
    bool staticDeadlockFree = false;
};

/**
 * Compile @p spec under @p cfg, run it, and diff against the oracle.
 * Self-contained (runs its own oracle); this is the minimizer's
 * predicate building block.
 */
CheckOutcome checkSpec(const ProgramSpec &spec, const FuzzConfig &cfg);

/**
 * Dedup key: configuration key + divergence kind + the structural
 * features of the program that the loop transforms key on (same-cell
 * pairs, loop-carried distances, conditional guards, direction). Two
 * divergences with equal signatures are near-certainly the same bug.
 */
std::string divergenceSignature(const ProgramSpec &spec,
                                const FuzzConfig &cfg,
                                const CheckOutcome &outcome);

/** One deduplicated divergence, with its minimized reproducer. */
struct Divergence
{
    uint64_t programIndex = 0; ///< first program that hit it
    std::string signature;
    DivergenceKind kind = DivergenceKind::Mismatch;
    int64_t expected = 0;
    int64_t actual = 0;
    std::string detail;
    ProgramSpec spec;          ///< original failing program
    FuzzConfig config;
    int duplicates = 0;        ///< further raw hits folded into this

    ProgramSpec minimizedSpec; ///< == spec when minimization is off
    int minimizeAttempts = 0;
    std::string reproPath;     ///< written .c file (when reproDir set)
};

struct CampaignOptions
{
    uint64_t seed = 1;
    int maxPrograms = 1000;
    int jobs = 1;
    bool injectRecurrenceBug = false; ///< self-test fault injection
    /** Self-test for the deadlock watchdog: under-count streams. */
    bool injectStreamCountBug = false;
    /** Self-test for the IR verifier: drop one stream dequeue. */
    bool injectVerifierBug = false;
    /** Chaos seeds per WM config (0 disables the chaos oracle). */
    int chaosSeeds = 0;
    bool minimize = true;
    std::string reproDir;  ///< write reproducer .c files here if set
    bool progress = false; ///< print a progress line per 100 programs
};

struct CampaignResult
{
    int programsRun = 0;
    int64_t checksRun = 0;     ///< (program, config) pairs diffed
    int rawDivergences = 0;    ///< before deduplication
    std::vector<Divergence> divergences; ///< deduplicated, minimized
    /**
     * Order-independent digest over every generated source: equal
     * seeds yield equal digests for any job count, which is how the
     * tests pin down reproducibility.
     */
    uint64_t streamDigest = 0;
    double elapsedSeconds = 0;
    /**
     * Static-FIFO agreement tallies over every WM check: verdicts of
     * "deadlock-free" vs flagged ("not-proven"). A disagreement in
     * the dangerous direction (proven free, then the watchdog fired)
     * is a StaticFifoBreak divergence, not just a count.
     */
    int64_t staticDeadlockFree = 0;
    int64_t staticFlagged = 0;

    bool clean() const { return divergences.empty(); }
};

/** Run a campaign. Blocks until generation, checking, dedup, and
 *  minimization complete. */
CampaignResult runCampaign(const CampaignOptions &opts);

/** Serialize the campaign report (options + result + reproducers). */
void writeCampaignJson(obs::JsonWriter &w, const CampaignOptions &opts,
                       const CampaignResult &res);

/** Render the self-contained reproducer file for @p d. */
std::string renderReproducer(const Divergence &d,
                             const CampaignOptions &opts);

} // namespace wmstream::fuzz

#endif // WMSTREAM_FUZZ_CAMPAIGN_H
