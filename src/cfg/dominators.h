/**
 * @file
 * Dominator tree computation over rtl::Function CFGs.
 *
 * Uses the Cooper–Harvey–Kennedy iterative algorithm on a reverse
 * post-order numbering. The streaming pass needs dominance twice: a
 * memory reference may be streamed only if its block dominates every
 * block that branches back to the loop header (it executes on every
 * iteration), and its execution count depends on whether it dominates
 * the loop exits.
 */

#ifndef WMSTREAM_CFG_DOMINATORS_H
#define WMSTREAM_CFG_DOMINATORS_H

#include <unordered_map>
#include <vector>

#include "rtl/inst.h"

namespace wmstream::cfg {

/** Immediate-dominator map and dominance queries for one function. */
class DominatorTree
{
  public:
    /** Build for @p fn; the function's CFG edges must be current. */
    explicit DominatorTree(rtl::Function &fn);

    /** Immediate dominator of @p b (null for the entry block). */
    rtl::Block *idom(const rtl::Block *b) const;

    /** True if @p a dominates @p b (reflexive). */
    bool dominates(const rtl::Block *a, const rtl::Block *b) const;

    /** Blocks in reverse post-order. */
    const std::vector<rtl::Block *> &reversePostOrder() const
    {
        return rpo_;
    }

  private:
    std::unordered_map<const rtl::Block *, rtl::Block *> idom_;
    std::unordered_map<const rtl::Block *, int> rpoNum_;
    std::vector<rtl::Block *> rpo_;
};

} // namespace wmstream::cfg

#endif // WMSTREAM_CFG_DOMINATORS_H
