#include "cfg/loops.h"

#include <algorithm>

#include "support/diag.h"

namespace wmstream::cfg {

using rtl::Block;
using rtl::Inst;
using rtl::InstKind;

bool
Loop::contains(const Loop &other) const
{
    if (other.blocks.size() >= blocks.size())
        return false;
    for (Block *b : other.blocks)
        if (!blocks.count(b))
            return false;
    return true;
}

LoopInfo::LoopInfo(rtl::Function &fn, const DominatorTree &dt)
{
    // Find back edges and build the natural loop of each.
    for (auto &bp : fn.blocks()) {
        Block *tail = bp.get();
        for (Block *head : tail->succs) {
            if (!dt.dominates(head, tail))
                continue;
            // Natural loop: head plus all blocks that reach tail
            // without passing through head.
            Loop *loop = nullptr;
            for (auto &l : loops_)
                if (l.header == head)
                    loop = &l;
            if (!loop) {
                loops_.emplace_back();
                loop = &loops_.back();
                loop->header = head;
                loop->blocks.insert(head);
            }
            std::vector<Block *> work;
            if (loop->blocks.insert(tail))
                work.push_back(tail);
            else if (tail != head)
                work.push_back(tail); // revisit preds anyway
            while (!work.empty()) {
                Block *b = work.back();
                work.pop_back();
                for (Block *p : b->preds)
                    if (loop->blocks.insert(p))
                        work.push_back(p);
            }
        }
    }

    // Latches and exits.
    for (auto &loop : loops_) {
        for (Block *p : loop.header->preds)
            if (loop.contains(p))
                loop.latches.push_back(p);
        for (Block *b : loop.blocks) {
            for (Block *s : b->succs) {
                if (!loop.contains(s)) {
                    loop.exiting.push_back(b);
                    break;
                }
            }
        }
    }

    // Innermost first: fewer blocks first, and containment as a tie
    // breaker for robustness.
    std::sort(loops_.begin(), loops_.end(),
              [](const Loop &a, const Loop &b) {
                  if (a.blocks.size() != b.blocks.size())
                      return a.blocks.size() < b.blocks.size();
                  return a.header->label() < b.header->label();
              });
}

rtl::Block *
ensurePreheader(rtl::Function &fn, Loop &loop)
{
    Block *header = loop.header;

    // Existing preheader?
    Block *outPred = nullptr;
    int numOut = 0;
    for (Block *p : header->preds) {
        if (!loop.contains(p)) {
            outPred = p;
            ++numOut;
        }
    }
    if (numOut == 1 && outPred->succs.size() == 1 &&
            outPred->succs[0] == header) {
        return outPred;
    }

    // Layout-predecessor handling: if the block laid out just before the
    // header falls through into it and is *inside* the loop, give it an
    // explicit jump (via a stub block) so the new preheader does not
    // capture the back edge.
    auto &blocks = fn.blocks();
    size_t hIdx = 0;
    for (size_t i = 0; i < blocks.size(); ++i)
        if (blocks[i].get() == header)
            hIdx = i;
    if (hIdx > 0) {
        Block *prev = blocks[hIdx - 1].get();
        bool fallsThrough = true;
        if (const Inst *t = prev->terminator())
            fallsThrough = t->kind != InstKind::Jump &&
                           t->kind != InstKind::Return;
        if (fallsThrough && loop.contains(prev)) {
            if (!prev->terminator()) {
                prev->insts.push_back(rtl::makeJump(header->label()));
            } else {
                // Conditional fallthrough: route it through a stub.
                Block *stub = fn.insertBlockBefore(header);
                stub->insts.push_back(rtl::makeJump(header->label()));
                ++hIdx;
            }
        }
    }

    Block *pre = fn.insertBlockBefore(header);

    // Redirect out-of-loop branches aimed at the header.
    for (auto &bp : fn.blocks()) {
        Block *b = bp.get();
        if (b == pre || loop.contains(b))
            continue;
        for (auto &inst : b->insts)
            if (inst.isBranch() && inst.target == header->label())
                inst.target = pre->label();
    }

    fn.recomputeCfg();
    return pre;
}

} // namespace wmstream::cfg
