#include "cfg/liveness.h"

namespace wmstream::cfg {

using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;
using rtl::UnitSide;

std::vector<RegKey>
instUseKeys(const Inst &inst)
{
    std::vector<RegKey> keys;
    for (const auto &r : rtl::instUses(inst))
        keys.push_back({r->regFile(), r->regIndex()});
    if (inst.kind == InstKind::CondJump)
        keys.push_back({RegFile::CC,
                        inst.side == UnitSide::Int ? 0 : 1});
    return keys;
}

std::vector<RegKey>
instDefKeys(const Inst &inst, const rtl::MachineTraits &traits)
{
    std::vector<RegKey> keys;
    if (auto d = rtl::instDef(inst))
        keys.push_back({d->regFile(), d->regIndex()});
    if (inst.kind == InstKind::Call) {
        // Calls clobber every caller-saved register and both CC cells.
        for (int i = traits.firstAllocatable; i < traits.firstCalleeSaved;
                 ++i) {
            keys.push_back({RegFile::Int, i});
            keys.push_back({RegFile::Flt, i});
        }
        keys.push_back({RegFile::CC, 0});
        keys.push_back({RegFile::CC, 1});
    }
    return keys;
}

bool
isZeroReg(const RegKey &key, const rtl::MachineTraits &traits)
{
    return (key.file == RegFile::Int || key.file == RegFile::Flt) &&
           key.index == traits.zeroReg;
}

Liveness::Liveness(rtl::Function &fn, const rtl::MachineTraits &traits)
    : traits_(traits)
{
    // Number every register key in first-encounter order (a pure
    // function of the RTL, so results are deterministic).
    auto intern = [&](const RegKey &k) {
        auto [it, inserted] =
            keyIndex_.emplace(k, static_cast<int>(keys_.size()));
        if (inserted)
            keys_.push_back(k);
        return static_cast<size_t>(it->second);
    };
    for (auto &b : fn.blocks())
        for (const Inst &inst : b->insts) {
            for (const RegKey &k : instUseKeys(inst))
                if (!isZeroReg(k, traits_))
                    intern(k);
            for (const RegKey &k : instDefKeys(inst, traits_))
                intern(k);
        }

    cfg_ = std::make_unique<dataflow::CfgIndex>(fn);
    solver_ = std::make_unique<dataflow::BitsetSolver>(
        pool_, *cfg_, keys_.size(), dataflow::Direction::Backward,
        dataflow::Join::Union);

    // gen = upward-exposed uses, kill = defs; a forward scan adding
    // uses not yet killed gives exactly the backward-transfer gen set.
    for (size_t bi = 0; bi < cfg_->size(); ++bi) {
        rtl::Block *b = cfg_->block(bi);
        dataflow::BitsetWord *gen = solver_->gen(bi);
        dataflow::BitsetWord *kill = solver_->kill(bi);
        for (const Inst &inst : b->insts) {
            for (const RegKey &k : instUseKeys(inst)) {
                if (isZeroReg(k, traits_))
                    continue;
                size_t i = intern(k);
                if (!dataflow::bitsetTest(kill, i))
                    dataflow::bitsetSet(gen, i);
            }
            for (const RegKey &k : instDefKeys(inst, traits_))
                dataflow::bitsetSet(kill, intern(k));
        }
    }

    solver_->solve();
}

const RegSet &
Liveness::materialize(
    std::unordered_map<const rtl::Block *, RegSet> &cache,
    const rtl::Block *b, bool wantIn) const
{
    auto it = cache.find(b);
    if (it != cache.end())
        return it->second;
    RegSet &set = cache[b];
    size_t bi = cfg_->indexOf(b);
    const dataflow::BitsetWord *bits =
        wantIn ? solver_->in(bi) : solver_->out(bi);
    dataflow::bitsetForEach(solver_->words(), bits, [&](size_t i) {
        set.insert(keys_[i]);
    });
    return set;
}

bool
Liveness::liveAfter(const rtl::Block *b, size_t idx, const RegKey &key) const
{
    // Scan forward from idx+1 within the block.
    for (size_t i = idx + 1; i < b->insts.size(); ++i) {
        const Inst &inst = b->insts[i];
        for (const RegKey &k : instUseKeys(inst))
            if (k == key)
                return true;
        for (const RegKey &k : instDefKeys(inst, traits_))
            if (k == key)
                return false;
    }
    int ki = keyIndex(key);
    if (ki < 0)
        return false;
    return dataflow::bitsetTest(solver_->out(cfg_->indexOf(b)),
                                static_cast<size_t>(ki));
}

} // namespace wmstream::cfg
