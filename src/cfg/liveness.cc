#include "cfg/liveness.h"

namespace wmstream::cfg {

using rtl::Inst;
using rtl::InstKind;
using rtl::RegFile;
using rtl::UnitSide;

std::vector<RegKey>
instUseKeys(const Inst &inst)
{
    std::vector<RegKey> keys;
    for (const auto &r : rtl::instUses(inst))
        keys.push_back({r->regFile(), r->regIndex()});
    if (inst.kind == InstKind::CondJump)
        keys.push_back({RegFile::CC,
                        inst.side == UnitSide::Int ? 0 : 1});
    return keys;
}

std::vector<RegKey>
instDefKeys(const Inst &inst, const rtl::MachineTraits &traits)
{
    std::vector<RegKey> keys;
    if (auto d = rtl::instDef(inst))
        keys.push_back({d->regFile(), d->regIndex()});
    if (inst.kind == InstKind::Call) {
        // Calls clobber every caller-saved register and both CC cells.
        for (int i = traits.firstAllocatable; i < traits.firstCalleeSaved;
                 ++i) {
            keys.push_back({RegFile::Int, i});
            keys.push_back({RegFile::Flt, i});
        }
        keys.push_back({RegFile::CC, 0});
        keys.push_back({RegFile::CC, 1});
    }
    return keys;
}

bool
isZeroReg(const RegKey &key, const rtl::MachineTraits &traits)
{
    return (key.file == RegFile::Int || key.file == RegFile::Flt) &&
           key.index == traits.zeroReg;
}

Liveness::Liveness(rtl::Function &fn, const rtl::MachineTraits &traits)
    : traits_(traits)
{
    for (auto &b : fn.blocks()) {
        in_[b.get()];
        out_[b.get()];
    }

    bool changed = true;
    while (changed) {
        changed = false;
        // Backward over layout order (order only affects iteration
        // count, not the fixed point).
        auto &blocks = fn.blocks();
        for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
            rtl::Block *b = it->get();
            RegSet out;
            for (rtl::Block *s : b->succs)
                for (const RegKey &k : in_[s])
                    out.insert(k);
            RegSet live = out;
            for (auto ii = b->insts.rbegin(); ii != b->insts.rend(); ++ii) {
                for (const RegKey &k : instDefKeys(*ii, traits_))
                    live.erase(k);
                for (const RegKey &k : instUseKeys(*ii))
                    if (!isZeroReg(k, traits_))
                        live.insert(k);
            }
            if (out != out_[b]) {
                out_[b] = std::move(out);
                changed = true;
            }
            if (live != in_[b]) {
                in_[b] = std::move(live);
                changed = true;
            }
        }
    }
}

bool
Liveness::liveAfter(const rtl::Block *b, size_t idx, const RegKey &key) const
{
    // Scan forward from idx+1 within the block.
    for (size_t i = idx + 1; i < b->insts.size(); ++i) {
        const Inst &inst = b->insts[i];
        for (const RegKey &k : instUseKeys(inst))
            if (k == key)
                return true;
        for (const RegKey &k : instDefKeys(inst, traits_))
            if (k == key)
                return false;
    }
    return out_.at(b).count(key) != 0;
}

} // namespace wmstream::cfg
