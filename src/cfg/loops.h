/**
 * @file
 * Natural loop detection.
 *
 * Finds back edges (tail -> header where the header dominates the
 * tail), builds the natural loop of each back edge, and merges loops
 * sharing a header. Provides the loop preheader (creating one when
 * needed), latch and exit sets — the scaffolding both the recurrence
 * and streaming passes operate on.
 */

#ifndef WMSTREAM_CFG_LOOPS_H
#define WMSTREAM_CFG_LOOPS_H

#include <memory>
#include <unordered_set>
#include <vector>

#include "cfg/dominators.h"
#include "rtl/inst.h"

namespace wmstream::cfg {

/**
 * Set of blocks with deterministic (insertion-order) iteration.
 *
 * Passes iterate loop blocks and emit code in that order; a plain
 * unordered_set of pointers would make the iteration order depend on
 * heap addresses, so two compiles of the same source in one process
 * could produce differently-ordered (but equivalent) output. The
 * vector preserves the discovery order, which is a pure function of
 * the CFG; the hash set keeps membership tests O(1).
 */
class BlockSet
{
  public:
    /** Insert @p b; returns true when it was not already present. */
    bool insert(rtl::Block *b)
    {
        if (!set_.insert(b).second)
            return false;
        vec_.push_back(b);
        return true;
    }
    size_t count(const rtl::Block *b) const
    {
        return set_.count(const_cast<rtl::Block *>(b));
    }
    size_t size() const { return vec_.size(); }
    bool empty() const { return vec_.empty(); }
    std::vector<rtl::Block *>::const_iterator begin() const
    {
        return vec_.begin();
    }
    std::vector<rtl::Block *>::const_iterator end() const
    {
        return vec_.end();
    }

  private:
    std::vector<rtl::Block *> vec_;
    std::unordered_set<rtl::Block *> set_;
};

/** One natural loop. */
struct Loop
{
    rtl::Block *header = nullptr;
    /** Blocks in the loop, header included; iterates in discovery order. */
    BlockSet blocks;
    /** In-loop predecessors of the header (sources of back edges). */
    std::vector<rtl::Block *> latches;
    /** In-loop blocks with a successor outside the loop. */
    std::vector<rtl::Block *> exiting;

    bool contains(const rtl::Block *b) const
    {
        return blocks.count(const_cast<rtl::Block *>(b)) != 0;
    }
    /** Strict containment of another loop (for innermost-first order). */
    bool contains(const Loop &other) const;
};

/** All natural loops of a function, innermost first. */
class LoopInfo
{
  public:
    /** Analyze @p fn using @p dt (CFG must be current). */
    LoopInfo(rtl::Function &fn, const DominatorTree &dt);

    std::vector<Loop> &loops() { return loops_; }
    const std::vector<Loop> &loops() const { return loops_; }

  private:
    std::vector<Loop> loops_;
};

/**
 * Return the preheader of @p loop: the unique out-of-loop predecessor
 * of the header whose only successor is the header. Creates one (and
 * fixes up CFG edges) when it does not exist.
 */
rtl::Block *ensurePreheader(rtl::Function &fn, Loop &loop);

} // namespace wmstream::cfg

#endif // WMSTREAM_CFG_LOOPS_H
