/**
 * @file
 * Natural loop detection.
 *
 * Finds back edges (tail -> header where the header dominates the
 * tail), builds the natural loop of each back edge, and merges loops
 * sharing a header. Provides the loop preheader (creating one when
 * needed), latch and exit sets — the scaffolding both the recurrence
 * and streaming passes operate on.
 */

#ifndef WMSTREAM_CFG_LOOPS_H
#define WMSTREAM_CFG_LOOPS_H

#include <memory>
#include <unordered_set>
#include <vector>

#include "cfg/dominators.h"
#include "rtl/inst.h"

namespace wmstream::cfg {

/** One natural loop. */
struct Loop
{
    rtl::Block *header = nullptr;
    /** Blocks in the loop, header included. */
    std::unordered_set<rtl::Block *> blocks;
    /** In-loop predecessors of the header (sources of back edges). */
    std::vector<rtl::Block *> latches;
    /** In-loop blocks with a successor outside the loop. */
    std::vector<rtl::Block *> exiting;

    bool contains(const rtl::Block *b) const
    {
        return blocks.count(const_cast<rtl::Block *>(b)) != 0;
    }
    /** Strict containment of another loop (for innermost-first order). */
    bool contains(const Loop &other) const;
};

/** All natural loops of a function, innermost first. */
class LoopInfo
{
  public:
    /** Analyze @p fn using @p dt (CFG must be current). */
    LoopInfo(rtl::Function &fn, const DominatorTree &dt);

    std::vector<Loop> &loops() { return loops_; }
    const std::vector<Loop> &loops() const { return loops_; }

  private:
    std::vector<Loop> loops_;
};

/**
 * Return the preheader of @p loop: the unique out-of-loop predecessor
 * of the header whose only successor is the header. Creates one (and
 * fixes up CFG edges) when it does not exist.
 */
rtl::Block *ensurePreheader(rtl::Function &fn, Loop &loop);

} // namespace wmstream::cfg

#endif // WMSTREAM_CFG_LOOPS_H
