/**
 * @file
 * Live-variable analysis over registers (virtual, physical, and CC).
 *
 * The classic backward may-analysis. Used by dead-code elimination,
 * the streaming pass's dead-induction-variable deletion (paper Step 2j),
 * and register assignment.
 *
 * Internally this runs on the pooled-bitset worklist engine
 * (src/dataflow): registers are numbered densely per function, block
 * gen/kill sets are bit vectors, and the backward union solve is
 * word-parallel. The RegSet accessors materialize lazily so existing
 * clients keep their set-based view while the hot fixpoint never
 * touches a hash table.
 */

#ifndef WMSTREAM_CFG_LIVENESS_H
#define WMSTREAM_CFG_LIVENESS_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dataflow/cfg_index.h"
#include "dataflow/pool.h"
#include "dataflow/solver.h"
#include "rtl/inst.h"
#include "rtl/machine.h"

namespace wmstream::cfg {

/** A register identity: file plus index, hashable. */
struct RegKey
{
    rtl::RegFile file;
    int index;

    bool operator==(const RegKey &o) const
    {
        return file == o.file && index == o.index;
    }
};

struct RegKeyHash
{
    size_t operator()(const RegKey &k) const
    {
        return static_cast<size_t>(k.file) * 1000003u +
               static_cast<size_t>(k.index);
    }
};

using RegSet = std::unordered_set<RegKey, RegKeyHash>;

/** Register keys read by @p inst (includes CC for conditional jumps). */
std::vector<RegKey> instUseKeys(const rtl::Inst &inst);

/**
 * Register keys written by @p inst. A Call clobbers all caller-saved
 * registers of both files plus both CC cells per @p traits.
 */
std::vector<RegKey> instDefKeys(const rtl::Inst &inst,
                                const rtl::MachineTraits &traits);

/** True if @p key is a hardwired zero register per @p traits. */
bool isZeroReg(const RegKey &key, const rtl::MachineTraits &traits);

/** Per-block liveness sets for one function. */
class Liveness
{
  public:
    Liveness(rtl::Function &fn, const rtl::MachineTraits &traits);

    const RegSet &liveIn(const rtl::Block *b) const
    {
        return materialize(inCache_, b, /*wantIn=*/true);
    }
    const RegSet &liveOut(const rtl::Block *b) const
    {
        return materialize(outCache_, b, /*wantIn=*/false);
    }

    /**
     * True if @p key is live immediately after instruction @p idx of
     * block @p b (i.e. some later use may read the value present there).
     */
    bool liveAfter(const rtl::Block *b, size_t idx, const RegKey &key) const;

    /** Dense index of @p key, or -1 when the key never appears in the
     *  function (such a key is trivially dead everywhere). */
    int keyIndex(const RegKey &key) const
    {
        auto it = keyIndex_.find(key);
        return it == keyIndex_.end() ? -1 : it->second;
    }
    size_t numKeys() const { return keys_.size(); }
    const RegKey &key(size_t i) const { return keys_[i]; }

    /** Raw live-out bit vector of @p b (numKeys() bits). */
    const dataflow::BitsetWord *liveOutBits(const rtl::Block *b) const
    {
        return solver_->out(cfg_->indexOf(b));
    }
    const dataflow::BitsetWord *liveInBits(const rtl::Block *b) const
    {
        return solver_->in(cfg_->indexOf(b));
    }
    size_t bitsetWords() const { return solver_->words(); }

  private:
    const RegSet &materialize(
        std::unordered_map<const rtl::Block *, RegSet> &cache,
        const rtl::Block *b, bool wantIn) const;

    const rtl::MachineTraits traits_;
    std::vector<RegKey> keys_;
    std::unordered_map<RegKey, int, RegKeyHash> keyIndex_;
    dataflow::BitsetPool pool_;
    std::unique_ptr<dataflow::CfgIndex> cfg_;
    std::unique_ptr<dataflow::BitsetSolver> solver_;
    mutable std::unordered_map<const rtl::Block *, RegSet> inCache_;
    mutable std::unordered_map<const rtl::Block *, RegSet> outCache_;
};

} // namespace wmstream::cfg

#endif // WMSTREAM_CFG_LIVENESS_H
